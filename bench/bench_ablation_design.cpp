// Ablation benches for the design choices DESIGN.md calls out:
//
//   A1  signature size     — the 2048-bit/4-line Bloom filter vs smaller /
//                            larger filters: false-conflict rate and
//                            throughput of the partitioned path.
//   A2  ring size          — rollover aborts vs memory for the global ring.
//   A3  in-flight validation after *every* sub-HTM commit (paper default,
//                            Sec. 5.3.6) vs only at global commit.
//   A4  partition granularity — segments per oversized transaction.
//
// A1 sweeps the analytic core directly (the Signature type is compile-time
// sized); A2-A4 run the partitioned path under a write-heavy NRW workload.
#include "bench_common.hpp"

#include <cmath>

#include "apps/nrw.hpp"
#include "core/adaptive.hpp"
#include "sig/signature.hpp"
#include "tm/heap.hpp"
#include "util/rng.hpp"

namespace {

using namespace phtm;
using namespace phtm::bench;

// --- A1: signature size --> false conflict probability ---------------------

template <unsigned Bits>
void sig_rates(benchmark::State& st) {
  Rng rng(42);
  const unsigned read_lines = static_cast<unsigned>(st.range(0));
  for (auto _ : st) {
    BloomSig<Bits> rsig;
    for (unsigned i = 0; i < read_lines; ++i)
      rsig.add(reinterpret_cast<void*>(rng.next() << 6));
    // Probability that a disjoint 32-line write set aliases into the
    // read signature (one in-flight validation against one commit).
    int hits = 0;
    const int kTrials = 200;
    for (int t = 0; t < kTrials; ++t) {
      BloomSig<Bits> wsig;
      for (int w = 0; w < 32; ++w)
        wsig.add(reinterpret_cast<void*>(rng.next() << 6));
      if (rsig.intersects(wsig)) ++hits;
    }
    st.counters["false_conflict_pct"] = 100.0 * hits / kTrials;
  }
}

// --- A2/A3/A4 workload -----------------------------------------------------

ThroughputResult run_nrw_partitioned(const tm::BackendConfig& bcfg,
                                     unsigned reads_per_segment) {
  apps::NrwApp::Config cfg;
  cfg.n_reads = 4096;  // oversized for one HTM transaction once concurrent
  cfg.m_writes = 64;
  cfg.reads_per_segment = reads_per_segment;
  const unsigned threads = max_threads(4);
  apps::NrwApp app(cfg, threads);
  return run_throughput(
      tm::Algo::kPartHtmNoFast, sim::HtmConfig::haswell4c8t(), bcfg, threads,
      bench_ms(),
      [&](unsigned tid, tm::Backend& be, tm::Worker& w, std::atomic<bool>& stop) {
        apps::NrwApp::Locals l;
        while (!stop.load(std::memory_order_relaxed)) {
          tm::Txn txn = app.make_txn(tid, l);
          be.execute(w, txn);
        }
      });
}

void ring_size(benchmark::State& st) {
  tm::BackendConfig bcfg;
  bcfg.ring_entries = static_cast<unsigned>(st.range(0));
  for (auto _ : st) {
    const auto r = run_nrw_partitioned(bcfg, 512);
    st.counters["tx_per_sec"] = r.tx_per_sec;
    st.counters["rollovers"] = static_cast<double>(r.stats.total.ring_rollovers);
  }
}

void validation_policy(benchmark::State& st) {
  tm::BackendConfig bcfg;
  bcfg.validate_after_each_sub = st.range(0) != 0;
  for (auto _ : st) {
    const auto r = run_nrw_partitioned(bcfg, 512);
    st.counters["tx_per_sec"] = r.tx_per_sec;
    st.counters["validations"] = static_cast<double>(r.stats.total.validations);
    st.counters["global_aborts"] =
        static_cast<double>(r.stats.total.global_aborts);
  }
}

void partition_granularity(benchmark::State& st) {
  for (auto _ : st) {
    const auto r = run_nrw_partitioned({}, static_cast<unsigned>(st.range(0)));
    st.counters["tx_per_sec"] = r.tx_per_sec;
    st.counters["sub_commits_per_tx"] =
        r.stats.total.total_commits()
            ? static_cast<double>(r.stats.total.sub_htm_commits) /
                  static_cast<double>(r.stats.total.total_commits())
            : 0.0;
    st.counters["capacity_aborts"] =
        static_cast<double>(r.stats.total.aborts[1]);
  }
}

// --- A5: adaptive vs static partition sizing --------------------------------
// Starting deliberately mis-tuned (whole transaction in one segment), the
// adaptive controller must converge to a viable granularity and approach
// statically well-tuned throughput.

void adaptive_partitioning(benchmark::State& st) {
  const bool adaptive = st.range(0) == 0;
  const unsigned fixed_rps = adaptive ? 0 : static_cast<unsigned>(st.range(0));
  for (auto _ : st) {
    apps::NrwApp::Config cfg;
    cfg.n_reads = 512;
    cfg.m_writes = 8192;  // 1024 contiguous lines: 2x the simulated L1
    cfg.reads_per_segment = adaptive ? 1u << 20 : fixed_rps;
    cfg.writes_per_segment = adaptive ? 1u << 20 : (fixed_rps + 7) / 8;
    const unsigned threads = max_threads(4);
    apps::NrwApp app(cfg, threads);
    core::AdaptivePartitioner part(/*initial=*/1u << 20, /*min=*/64);
    const ThroughputResult r = run_throughput(
        tm::Algo::kPartHtmNoFast, sim::HtmConfig::haswell4c8t(), {}, threads,
        bench_ms(),
        [&](unsigned tid, tm::Backend& be, tm::Worker& w,
            std::atomic<bool>& stop) {
          apps::NrwApp::Locals l;
          while (!stop.load(std::memory_order_relaxed)) {
            tm::Txn txn = app.make_txn(tid, l);
            if (adaptive) {
              l.rps = part.ops_per_segment();
              l.wps = (part.ops_per_segment() + 7) / 8;
              core::AdaptiveFeedback fb(part, w.stats());
              be.execute(w, txn);
            } else {
              be.execute(w, txn);
            }
          }
        });
    st.counters["tx_per_sec"] = r.tx_per_sec;
    if (adaptive)
      st.counters["converged_ops_per_seg"] =
          static_cast<double>(part.ops_per_segment());
  }
}

}  // namespace

BENCHMARK(adaptive_partitioning)
    ->Arg(0)      // adaptive, mis-tuned start
    ->Arg(512)    // statically well-tuned
    ->Arg(1 << 20)  // statically mis-tuned (never partitions usefully)
    ->Iterations(1)
    ->Name("A5/partitioning");

BENCHMARK(sig_rates<256>)->Arg(64)->Arg(512)->Iterations(1)->Name("A1/sig256");
BENCHMARK(sig_rates<1024>)->Arg(64)->Arg(512)->Iterations(1)->Name("A1/sig1024");
BENCHMARK(sig_rates<2048>)->Arg(64)->Arg(512)->Iterations(1)->Name("A1/sig2048");
BENCHMARK(sig_rates<4096>)->Arg(64)->Arg(512)->Iterations(1)->Name("A1/sig4096");
BENCHMARK(ring_size)->Arg(16)->Arg(256)->Arg(1024)->Iterations(1)->Name("A2/ring");
BENCHMARK(validation_policy)->Arg(0)->Arg(1)->Iterations(1)->Name("A3/validate_each_sub");
BENCHMARK(partition_granularity)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Iterations(1)
    ->Name("A4/reads_per_segment");

BENCHMARK_MAIN();
