// SpHT vs PART-HTM on resource-limited transactions (paper Sec. 3).
//
// The paper's argument: SpHT's lazy splitting helps when transactions
// abort because of ancillary *computation* (the redo replay stays small),
// but when they abort because of transactional *work* — a large write set —
// every later SpHT sub-transaction replays the accumulated write set, so
// the footprint that caused the abort never shrinks. PART-HTM's eager
// sub-transactions write in place and stay small.
//
// Two workloads make both halves of the claim measurable:
//   compute-bound — long transactions, small write set (SpHT competitive);
//   write-bound   — write set ~2x the simulated L1 (SpHT cannot commit its
//                   final sub-transaction in hardware and degrades to the
//                   global lock; PART-HTM stays on the partitioned path).
#include "bench_common.hpp"

#include "apps/nrw.hpp"

namespace {

using namespace phtm;
using namespace phtm::bench;

SeriesTable g_compute("SpHT ablation: duration-bound (small writes)", "K tx/sec");
SeriesTable g_writes("SpHT ablation: write-set-bound (2x L1 writes)", "tx/sec");

void reg(const char* fig, const apps::NrwApp::Config& cfg, SeriesTable* table,
         double scale, std::vector<tm::Algo> algos) {
  const std::vector<unsigned> threads{1, 2, 4};
  for (const auto algo : algos) {
    for (const unsigned t : threads) {
      if (t > max_threads(4)) continue;
      const std::string name = std::string(fig) + "/" + tm::to_string(algo) +
                               "/threads:" + std::to_string(t);
      benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
        for (auto _ : st) {
          apps::NrwApp app(cfg, t);
          const ThroughputResult r = run_throughput(
              algo, sim::HtmConfig::haswell4c8t(), {}, t, bench_ms(),
              [&](unsigned tid, tm::Backend& be, tm::Worker& w,
                  std::atomic<bool>& stop) {
                apps::NrwApp::Locals l;
                while (!stop.load(std::memory_order_relaxed)) {
                  tm::Txn txn = app.make_txn(tid, l);
                  be.execute(w, txn);
                }
              });
          st.counters["tx_per_sec"] = r.tx_per_sec;
          st.counters["pct_GL"] = r.stats.commit_pct(CommitPath::kGlobalLock);
          table->set(tm::to_string(algo), t, r.tx_per_sec * scale);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<tm::Algo> algos{tm::Algo::kPartHtm, tm::Algo::kSpht,
                                    tm::Algo::kHtmGl};

  // Duration-bound: config C (100 x read/work/write) — writes are tiny.
  reg("SpHT-compute", apps::NrwApp::Config::c(), &g_compute, 1e-3, algos);

  // Write-set-bound: 1024 lines of writes, twice the simulated L1.
  apps::NrwApp::Config wb;
  wb.n_reads = 64;
  wb.m_writes = 8192;  // contiguous words -> 1024 lines
  wb.array_size = 100'000;
  wb.reads_per_segment = 512;
  reg("SpHT-writes", wb, &g_writes, 1.0, algos);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_compute.print();
  g_writes.print();
  return 0;
}
