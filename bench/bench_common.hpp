// Shared harness for the per-figure benchmark binaries.
//
// Every binary registers google-benchmark entries named
//     <FigureId>/<Algorithm>/threads:<N>
// each of which performs one measured run (its own worker threads inside)
// and reports the paper's metric as a counter: `Mtx_per_sec` for the
// throughput micro-benchmarks (Figs. 3-4) or `speedup` over the sequential
// baseline (Figs. 5-6). After the google-benchmark report, binaries print a
// paper-shaped series table via print_series().
//
// Environment knobs:
//   PHTM_BENCH_MS      duration of each throughput measurement (default 700)
//   PHTM_MAX_THREADS   cap on the thread sweep (default: figure's maximum)
//   PHTM_BENCH_THREADS explicit sweep axis, comma-separated (e.g. "1,4,16,64");
//                      replaces a figure's default thread list
//   PHTM_QUICK=1       shorthand for fast smoke runs
//   PHTM_BENCH_JSON    path: append every printed series as a JSON line
//                      (tools/bench_report.py folds these into BENCH_*.json)
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/stamp/stamp.hpp"
#include "sim/config.hpp"
#include "sim/runtime.hpp"
#include "tm/backend.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/threads.hpp"

namespace phtm::bench {

inline int env_int(const char* name, int dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0' || parsed < INT_MIN ||
      parsed > INT_MAX) {
    // A typo'd knob silently parsing as 0 (atoi semantics) yields plausible
    // garbage measurements; refuse loudly instead.
    std::fprintf(stderr, "bench: %s=\"%s\" is not an integer\n", name, v);
    std::exit(2);
  }
  return static_cast<int>(parsed);
}

inline int bench_ms() {
  if (env_int("PHTM_QUICK", 0)) return 150;
  return env_int("PHTM_BENCH_MS", 700);
}

inline unsigned max_threads(unsigned figure_max) {
  const int cap = env_int("PHTM_MAX_THREADS", static_cast<int>(figure_max));
  return cap < 1 ? 1u : (static_cast<unsigned>(cap) < figure_max
                             ? static_cast<unsigned>(cap)
                             : figure_max);
}

/// Thread-sweep axis. PHTM_BENCH_THREADS, a comma-separated list of counts
/// in [1, 64] (the runtime's slot ceiling), replaces `dflt` — sorted and
/// deduplicated, so "16,1,4,4" sweeps {1,4,16}. Unset/empty keeps the
/// figure's default; PHTM_MAX_THREADS still caps whichever axis wins.
/// Malformed values abort loudly, like every other knob (see env_int).
inline std::vector<unsigned> sweep_threads(std::vector<unsigned> dflt) {
  const char* v = std::getenv("PHTM_BENCH_THREADS");
  if (v == nullptr || *v == '\0') return dflt;
  std::vector<unsigned> out;
  const char* p = v;
  while (*p != '\0') {
    char* end = nullptr;
    errno = 0;
    const long n = std::strtol(p, &end, 10);
    if (errno != 0 || end == p || n < 1 || n > 64 ||
        (*end != '\0' && *end != ',')) {
      std::fprintf(stderr,
                   "bench: PHTM_BENCH_THREADS=\"%s\" is not a comma-separated "
                   "list of thread counts in [1, 64]\n",
                   v);
      std::exit(2);
    }
    out.push_back(static_cast<unsigned>(n));
    p = *end == ',' ? end + 1 : end;
  }
  if (out.empty()) return dflt;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

struct ThroughputResult {
  double tx_per_sec = 0;
  StatSummary stats;
};

/// Timed throughput run: `per_thread(tid, backend, worker, stop)` loops
/// transactions until `stop`; committed transactions are taken from the
/// workers' stat sheets.
inline ThroughputResult run_throughput(
    tm::Algo algo, const sim::HtmConfig& scfg, const tm::BackendConfig& bcfg,
    unsigned threads, int duration_ms,
    const std::function<void(unsigned, tm::Backend&, tm::Worker&,
                             std::atomic<bool>&)>& per_thread) {
  sim::HtmRuntime rt(scfg);
  auto backend = tm::make_backend(algo, rt, bcfg);
  std::vector<StatSheet> sheets(threads);
  const double secs = run_timed(
      threads, std::chrono::milliseconds(duration_ms),
      [&](unsigned tid, std::atomic<bool>& stop) {
        auto w = backend->make_worker(tid);
        per_thread(tid, *backend, *w, stop);
        sheets[tid] = w->stats();
      });
  ThroughputResult r;
  r.stats = StatSummary::aggregate(sheets);
  r.tx_per_sec = static_cast<double>(r.stats.total.total_commits()) / secs;
  return r;
}

/// Fixed-work run of a STAMP-style app; returns wall seconds (and asserts
/// the app verifies). `stats_out`, when given, receives the aggregated
/// per-thread stat sheets (Table 1).
inline double run_fixed(apps::StampApp& app, tm::Algo algo,
                        const sim::HtmConfig& scfg, unsigned threads,
                        std::uint64_t seed, bool* verified = nullptr,
                        StatSummary* stats_out = nullptr) {
  sim::HtmRuntime rt(scfg);
  auto backend = tm::make_backend(algo, rt, {});
  app.init(threads, seed);
  std::vector<StatSheet> sheets(threads);
  const auto t0 = std::chrono::steady_clock::now();
  run_threads(threads, [&](unsigned tid) {
    auto w = backend->make_worker(tid);
    app.run_thread(*backend, *w, tid, threads);
    sheets[tid] = w->stats();
  });
  const auto t1 = std::chrono::steady_clock::now();
  const bool ok = app.verify();
  if (verified) *verified = ok;
  if (stats_out) *stats_out = StatSummary::aggregate(sheets);
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Collects series (algo -> thread -> value) and prints the paper-shaped
/// table at exit.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::string metric)
      : title_(std::move(title)), metric_(std::move(metric)) {}

  void set(const std::string& algo, unsigned threads, double value) {
    data_[algo][threads] = value;
    thread_cols_.insert(threads);
  }

  void print() const {
    std::printf("\n=== %s  (%s) ===\n", title_.c_str(), metric_.c_str());
    std::vector<std::string> header{"algorithm"};
    for (const auto t : thread_cols_) header.push_back(std::to_string(t) + "T");
    Table tbl(header);
    for (const auto& [algo, row] : data_) {
      std::vector<std::string> cells{algo};
      for (const auto t : thread_cols_) {
        const auto it = row.find(t);
        cells.push_back(it == row.end() ? "-" : Table::num(it->second, 3));
      }
      tbl.add_row(cells);
    }
    tbl.print();
    emit_json();
  }

  /// Append every series as one JSON line per algorithm to the file named
  /// by PHTM_BENCH_JSON (no-op when unset). Machine consumption only —
  /// schema: {"figure","metric","algo","series":{"<threads>":value}}.
  void emit_json() const {
    const char* path = std::getenv("PHTM_BENCH_JSON");
    if (path == nullptr || *path == '\0') return;
    std::FILE* f = std::fopen(path, "a");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open PHTM_BENCH_JSON=%s\n", path);
      std::exit(2);
    }
    for (const auto& [algo, row] : data_) {
      std::fprintf(f, "{\"figure\":\"%s\",\"metric\":\"%s\",\"algo\":\"%s\",\"series\":{",
                   title_.c_str(), metric_.c_str(), algo.c_str());
      bool first = true;
      for (const auto& [threads, value] : row) {
        std::fprintf(f, "%s\"%u\":%.6g", first ? "" : ",", threads, value);
        first = false;
      }
      std::fprintf(f, "}}\n");
    }
    std::fclose(f);
  }

 private:
  std::string title_;
  std::string metric_;
  std::map<std::string, std::map<unsigned, double>> data_;
  std::set<unsigned> thread_cols_;
};

/// Abort/commit breakdown table (Table 1 shape).
inline void print_breakdown(const std::string& title,
                            const std::vector<std::pair<std::string, StatSummary>>& rows) {
  std::printf("\n=== %s ===\n", title.c_str());
  Table tbl({"algorithm", "%conflict", "%capacity", "%explicit", "%other",
             "%GL", "%HTM", "%SW", "aborts/commit"});
  for (const auto& [name, s] : rows) {
    const double apc = s.total.total_commits()
                           ? static_cast<double>(s.total.total_aborts()) /
                                 static_cast<double>(s.total.total_commits())
                           : 0.0;
    tbl.add_row({name, Table::num(s.abort_pct(AbortCause::kConflict), 2),
                 Table::num(s.abort_pct(AbortCause::kCapacity), 2),
                 Table::num(s.abort_pct(AbortCause::kExplicit), 2),
                 Table::num(s.abort_pct(AbortCause::kOther), 2),
                 Table::num(s.commit_pct(CommitPath::kGlobalLock), 1),
                 Table::num(s.commit_pct(CommitPath::kHtm), 1),
                 Table::num(s.commit_pct(CommitPath::kSoftware), 1),
                 Table::num(apc, 2)});
  }
  tbl.print();
}

/// The paper's competitor set for the throughput figures.
inline std::vector<tm::Algo> figure_algos(bool include_no_fast = false) {
  std::vector<tm::Algo> v{tm::Algo::kRingStm, tm::Algo::kNorec, tm::Algo::kNorecRh,
                          tm::Algo::kHtmGl,   tm::Algo::kPartHtm, tm::Algo::kPartHtmO};
  if (include_no_fast) v.push_back(tm::Algo::kPartHtmNoFast);
  return v;
}

}  // namespace phtm::bench
