// Durable-mode micro-benchmarks (persist library flavor: PHTM_FAULTS=1 +
// PHTM_PERSIST=1).
//
// Pins the cost model of the crash-consistent commit protocol
// (DESIGN.md "Durability & recovery"):
//
//   Commit/*     one single-segment partitioned commit, volatile vs.
//                durable — the delta is the WAL tax (undo-chunk append,
//                two pfences, data pwbs, commit record);
//   PersistOps/* the raw simulated-NVM primitives;
//   Recover/*    a freeze + seeded crash + full recover() pass over a
//                committed-transaction log.
//
// The volatile control runs the same no-fast-path backend so both sides
// pay the identical partitioned software path; only the persistence
// calls differ. The default build's hot path is unaffected by all of
// this by construction (persist_compiled_out_symbols), so the regression
// budget this file guards is the *durable flavor's own* overhead, not
// the plain build's.
//
// In a PHTM_TRACE=ON tree the run registers its persistence counters
// with the tracer (stats_persists_* / stats_crashes / stats_recoveries),
// so tools/trace_view.py --check reconciles them 1:1 against the
// persist/crash/recovery events.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/part_htm.hpp"
#include "obs/trace.hpp"
#include "sim/config.hpp"
#include "sim/persist.hpp"
#include "tm/heap.hpp"

namespace {

using namespace phtm;

// Ops recorded outside any worker's sheet (domain driven directly).
StatSheet g_direct;

sim::HtmConfig bench_cfg() {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  return cfg;
}

/// One backend + worker + one durable word, persist on or off. The
/// durable rig's log is reset (volatile cursor only) before it can fill;
/// the amortized branch is noise next to the WAL work being measured.
struct Rig {
  explicit Rig(bool durable)
      : rt(bench_cfg()),
        backend(rt, tm::BackendConfig{}, core::PartHtmBackend::Mode::kSerializable,
                /*no_fast=*/true),
        dlog(std::size_t{1} << 14) {
    cell = tm::TmHeap::instance().alloc_array<std::uint64_t>(8);
    cell[0] = 0;
    if (durable) {
      dom.configure(bench_cfg().persist);
      dom.format(cell, 0);
      backend.set_persist(&dom, &dlog);
    }
    worker = backend.make_worker(0);
  }
  sim::HtmRuntime rt;
  core::PartHtmBackend backend;
  persist::PersistDomain dom;
  persist::DurableLog dlog;
  std::unique_ptr<tm::Worker> worker;
  std::uint64_t* cell = nullptr;
  std::uint64_t iters = 0;
};

Rig& volatile_rig() {
  static Rig r(/*durable=*/false);
  return r;
}

Rig& durable_rig() {
  static Rig r(/*durable=*/true);
  return r;
}

void run_one_txn(Rig& rig) {
  std::uint64_t scratch = 0;
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* e, void*, unsigned) {
    std::uint64_t* cell = const_cast<std::uint64_t*>(
        static_cast<const std::uint64_t*>(e));
    c.write(cell, c.read(cell) + 1);
    return false;  // single segment
  };
  t.env = rig.cell;
  t.locals = &scratch;
  t.locals_bytes = sizeof(scratch);
  rig.backend.execute(*rig.worker, t);
}

/// Control: the identical partitioned software commit with no persistence
/// domain attached — the baseline the WAL tax is measured against.
void BM_CommitVolatile(benchmark::State& state) {
  Rig& rig = volatile_rig();
  for (auto _ : state) run_one_txn(rig);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitVolatile);

/// Durable commit: chunk append + fence, data pwbs, fence, commit record,
/// fence (part_htm.cpp persist_sub_commit / persist_commit_record).
void BM_CommitDurable(benchmark::State& state) {
  Rig& rig = durable_rig();
  for (auto _ : state) {
    // ~2 cells per txn; reset the volatile cursor well before the 2^14
    // cells fill (the durable image just gets overwritten in place).
    if ((++rig.iters & 4095) == 0) rig.dlog.reset_volatile(0, 1);
    run_one_txn(rig);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitDurable);

/// Raw primitive costs: four line write-backs and the fence that drains
/// them (the per-sub-commit pattern for a 4-write segment).
void BM_PersistOps(benchmark::State& state) {
  persist::PersistDomain dom(bench_cfg().persist);
  std::uint64_t words[4] = {};
  for (auto _ : state) {
    for (auto& w : words) dom.pwb(&w, &g_direct);
    dom.pfence(&g_direct);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_PersistOps);

/// Freeze + seeded crash + full recovery over a log of range(0) committed
/// single-word transactions. Items = transactions scanned per pass.
void BM_Recover(benchmark::State& state) {
  const unsigned txns = static_cast<unsigned>(state.range(0));
  persist::PersistDomain dom(bench_cfg().persist);
  persist::DurableLog log(std::size_t{2} * txns + 8);
  std::vector<std::uint64_t> words(txns, 0);
  for (unsigned i = 0; i < txns; ++i) {
    dom.format(&words[i], 0);
    const std::uint64_t seq = log.alloc_seq();
    core::UndoLog::Entry e{&words[i], 0};
    words[i] = i + 1;
    log.append_undo_chunk(dom, &g_direct, seq, &e, 1);
    dom.pfence(&g_direct);
    dom.pwb(&words[i], &g_direct);
    dom.pfence(&g_direct);
    log.append_outcome(dom, &g_direct, persist::RecordKind::kCommit, seq,
                       nullptr);
    dom.pfence(&g_direct);
  }
  for (auto _ : state) {
    dom.freeze(&g_direct);
    dom.crash(/*seed=*/state.iterations() + 1);
    const persist::RecoveryReport rep =
        persist::recover(dom, log, &g_direct);
    benchmark::DoNotOptimize(rep.committed.size());
  }
  state.SetItemsProcessed(state.iterations() * txns);
}
BENCHMARK(BM_Recover)->Arg(16)->Arg(256);

// Register the run's persistence counters with the tracer so an
// instrumented build's trace reconciles under trace_view.py --check
// (exact 1:1 with the persist/crash/recovery events when nothing was
// dropped). No-op in untraced builds.
void register_trace_counters() {
  StatSheet total = g_direct;
  total += volatile_rig().worker->stats();
  total += durable_rig().worker->stats();
  (void)total;  // untraced builds: the macros compile out
  PHTM_TRACE_META("stats_persists_pwb",
                  total.persists[static_cast<unsigned>(PersistOp::kPwb)]);
  PHTM_TRACE_META("stats_persists_pfence",
                  total.persists[static_cast<unsigned>(PersistOp::kPfence)]);
  PHTM_TRACE_META("stats_persists_psync",
                  total.persists[static_cast<unsigned>(PersistOp::kPsync)]);
  PHTM_TRACE_META("stats_crashes", total.crashes);
  PHTM_TRACE_META("stats_recoveries", total.recoveries);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  register_trace_counters();
  benchmark::Shutdown();
  return 0;
}
