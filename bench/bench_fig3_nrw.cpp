// Figure 3 — N-Reads M-Writes throughput (paper Sec. 7.1).
//
//   Fig3a: N = M = 10           — HTM-friendly; HTM-GL expected on top with
//                                  PART-HTM the closest competitor.
//   Fig3b: N = 100K, M = 100    — read-capacity bound; HTM-GL holds until
//                                  its capacity cliff, PART-HTM(-no-fast)
//                                  takes over; pure STMs pay instrumentation.
//   Fig3c: 100 x (read, FP work, write) — duration bound; PART-HTM well
//                                  ahead, HTM-GL degenerates to the lock.
//
// Figs. 3a/3b ran on the 18-core Xeon in the paper; 3c on the 4c/8t
// Haswell. The machine profiles mirror that.
#include "bench_common.hpp"

#include "apps/nrw.hpp"

namespace {

using namespace phtm;
using namespace phtm::bench;

SeriesTable g_a("Fig3a: NRW N=M=10 (xeon18c)", "M tx/sec");
SeriesTable g_b("Fig3b: NRW N=100K M=100 (xeon18c)", "tx/sec");
SeriesTable g_c("Fig3c: NRW 100x(read,work,write) (haswell4c8t)", "K tx/sec");
SeriesTable g_s("Fig3s: NRW N=64 M=2 read-dominated (sim64c)", "M tx/sec");

/// Fig3s workload: read-dominated disjoint-access NRW for the sharded
/// commit pipeline's 16+-thread sweep — commits stay on the fast path, so
/// the series isolates ring/lock-table metadata contention.
apps::NrwApp::Config read_dominated() {
  apps::NrwApp::Config c;
  c.n_reads = 64;
  c.m_writes = 2;
  return c;
}

void register_config(const char* fig, const apps::NrwApp::Config& cfg,
                     const std::vector<unsigned>& dflt_threads,
                     bool include_no_fast, const sim::HtmConfig& scfg,
                     SeriesTable* table, double scale) {
  const std::vector<unsigned> threads = sweep_threads(dflt_threads);
  for (const auto algo : figure_algos(include_no_fast)) {
    for (const unsigned t : threads) {
      if (t > max_threads(threads.back())) continue;
      const std::string name = std::string(fig) + "/" + tm::to_string(algo) +
                               "/threads:" + std::to_string(t);
      benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
        for (auto _ : st) {
          apps::NrwApp app(cfg, t);
          const ThroughputResult r = run_throughput(
              algo, scfg, {}, t, bench_ms(),
              [&](unsigned tid, tm::Backend& be, tm::Worker& w,
                  std::atomic<bool>& stop) {
                apps::NrwApp::Locals l;
                while (!stop.load(std::memory_order_relaxed)) {
                  tm::Txn txn = app.make_txn(tid, l);
                  be.execute(w, txn);
                }
              });
          st.counters["tx_per_sec"] = r.tx_per_sec;
          table->set(tm::to_string(algo), t, r.tx_per_sec * scale);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<unsigned> xeon_threads{1, 2, 4, 8, 12, 18};
  const std::vector<unsigned> haswell_threads{1, 2, 4, 8};
  const std::vector<unsigned> sim64_threads{1, 2, 4, 8, 16, 32, 64};

  register_config("Fig3a", apps::NrwApp::Config::a(), xeon_threads,
                  /*no_fast=*/false, sim::HtmConfig::xeon18c(), &g_a, 1e-6);
  register_config("Fig3b", apps::NrwApp::Config::b(), xeon_threads,
                  /*no_fast=*/true, sim::HtmConfig::xeon18c(), &g_b, 1.0);
  register_config("Fig3c", apps::NrwApp::Config::c(), haswell_threads,
                  /*no_fast=*/false, sim::HtmConfig::haswell4c8t(), &g_c, 1e-3);
  register_config("Fig3s", read_dominated(), sim64_threads,
                  /*no_fast=*/true, sim::HtmConfig::sim64c(), &g_s, 1e-6);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_a.print();
  g_b.print();
  g_c.print();
  g_s.print();
  return 0;
}
