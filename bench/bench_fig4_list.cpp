// Figure 4 — sorted linked-list throughput, 50% writes (paper Sec. 7.1).
//
//   Fig4a: 1K elements  — traversals fit best-effort HTM: HTM-GL on top,
//                         PART-HTM the closest competitor.
//   Fig4b: 10K elements — traversal read sets exceed the per-transaction
//                         budget: resource failures dominate and PART-HTM's
//                         partitioned path takes the lead (paper: +74% over
//                         HTM-GL).
#include "bench_common.hpp"

#include "apps/list.hpp"

namespace {

using namespace phtm;
using namespace phtm::bench;

SeriesTable g_a("Fig4a: linked list 1K, 50% writes (haswell4c8t)", "K tx/sec");
SeriesTable g_b("Fig4b: linked list 10K, 50% writes (haswell4c8t)", "K tx/sec");

void register_size(const char* fig, unsigned size, SeriesTable* table) {
  const std::vector<unsigned> threads{1, 2, 4, 8};
  for (const auto algo : figure_algos()) {
    for (const unsigned t : threads) {
      if (t > max_threads(8)) continue;
      const std::string name = std::string(fig) + "/" + tm::to_string(algo) +
                               "/threads:" + std::to_string(t);
      benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
        for (auto _ : st) {
          apps::ListApp::Config cfg;
          cfg.initial_size = size;
          cfg.write_pct = 50;
          apps::ListApp app(cfg);
          const ThroughputResult r = run_throughput(
              algo, sim::HtmConfig::haswell4c8t(), {}, t, bench_ms(),
              [&](unsigned, tm::Backend& be, tm::Worker& w,
                  std::atomic<bool>& stop) {
                apps::ListApp::NodePool pool;
                apps::ListApp::Locals l;
                while (!stop.load(std::memory_order_relaxed)) {
                  tm::Txn txn = app.make_txn(w.rng(), pool, l);
                  be.execute(w, txn);
                  app.finish(l, pool);
                }
              });
          st.counters["tx_per_sec"] = r.tx_per_sec;
          table->set(tm::to_string(algo), t, r.tx_per_sec / 1e3);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_size("Fig4a", 1000, &g_a);
  register_size("Fig4b", 10000, &g_b);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_a.print();
  g_b.print();
  return 0;
}
