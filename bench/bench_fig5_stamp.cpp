// Figure 5 — STAMP applications: speed-up over sequential (non-
// transactional) execution (paper Sec. 7.2).
//
// Expected shapes per the paper:
//   kmeans-low/high, ssca2, intruder, vacation-low, genome — short
//     transactions, no resource failures: HTM-GL best, PART-HTM closest;
//   labyrinth, yada — resource-failure-bound: PART-HTM best, NOrec(RH)
//     next, HTM-GL worst (degenerates to the global lock);
//   vacation-high — capacity pressure appears with hyper-threading.
//
// Run a single app with --app <name> (positional also works); default all.
#include "bench_common.hpp"

#include "util/cli.hpp"

namespace {

using namespace phtm;
using namespace phtm::bench;

std::map<std::string, SeriesTable*> g_tables;
std::map<std::string, double> g_seq_secs;

void register_app(const std::string& app_name) {
  auto* table = new SeriesTable("Fig5: " + app_name + " (haswell4c8t)",
                                "speed-up over sequential");
  g_tables[app_name] = table;

  // Sequential baseline runs lazily inside the first benchmark that needs it.
  const std::vector<unsigned> threads{1, 2, 4, 8};
  for (const auto algo : figure_algos()) {
    for (const unsigned t : threads) {
      if (t > max_threads(8)) continue;
      const std::string name = "Fig5/" + app_name + "/" + tm::to_string(algo) +
                               "/threads:" + std::to_string(t);
      benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
        for (auto _ : st) {
          if (g_seq_secs.find(app_name) == g_seq_secs.end()) {
            auto seq_app = apps::make_stamp_app(app_name);
            bool ok = false;
            double best = 1e100;
            // Best of 2 to de-noise the baseline everything is divided by.
            for (int rep = 0; rep < 2; ++rep) {
              const double s = run_fixed(*seq_app, tm::Algo::kSeq,
                                         sim::HtmConfig::haswell4c8t(), 1,
                                         /*seed=*/7, &ok);
              if (s < best) best = s;
              if (!ok) st.SkipWithError("sequential verify failed");
            }
            g_seq_secs[app_name] = best;
          }
          auto app = apps::make_stamp_app(app_name);
          bool ok = false;
          const double secs = run_fixed(*app, algo, sim::HtmConfig::haswell4c8t(),
                                        t, /*seed=*/7, &ok);
          if (!ok) st.SkipWithError("verification failed");
          const double speedup = g_seq_secs[app_name] / secs;
          st.counters["speedup"] = speedup;
          table->set(tm::to_string(algo), t, speedup);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  phtm::Cli cli(argc, argv);
  std::string only = cli.get("app", "");
  for (const auto& name : apps::stamp_app_names()) {
    if (!only.empty() && name != only) continue;
    register_app(name);
  }
  // Strip our own flags before handing argv to google-benchmark.
  std::vector<char*> bargs;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--app") {
      ++i;  // skip value
      continue;
    }
    if (a.rfind("--app=", 0) == 0) continue;
    bargs.push_back(argv[i]);
  }
  int bargc = static_cast<int>(bargs.size());
  benchmark::Initialize(&bargc, bargs.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (const auto& name : apps::stamp_app_names()) {
    const auto it = g_tables.find(name);
    if (it != g_tables.end()) it->second->print();
  }
  return 0;
}
