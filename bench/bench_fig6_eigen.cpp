// Figure 6 — EigenBench: speed-up over sequential execution (Sec. 7.3).
//
//   Fig6a (mixed): 50% long transactions with non-transactional computation
//     between operations + 50% short. PART-HTM expected best: it runs the
//     computation segments in the software framework, outside sub-HTM
//     transactions; PART-HTM-O trails by ~15%.
//   Fig6b (hot): shared 32K hot array, 10K reads + 100 writes, 50% repeats —
//     very high contention. HTM-GL degenerates to the lock; PART-HTM's
//     committed sub-HTM locks let it progress.
#include "bench_common.hpp"

#include "apps/eigenbench.hpp"

namespace {

using namespace phtm;
using namespace phtm::bench;

SeriesTable g_a("Fig6a: EigenBench 50% long / 50% short (haswell4c8t)",
                "speed-up over sequential");
SeriesTable g_b("Fig6b: EigenBench high contention (haswell4c8t)",
                "speed-up over sequential");

/// Fixed-work EigenBench run: `total_txns` split across threads.
double run_eigen(tm::Algo algo, const apps::EigenApp::Config& cfg,
                 unsigned threads, unsigned total_txns) {
  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
  auto backend = tm::make_backend(algo, rt, {});
  apps::EigenApp app(cfg, threads);
  const unsigned per_thread = total_txns / threads;
  const auto t0 = std::chrono::steady_clock::now();
  run_threads(threads, [&](unsigned tid) {
    auto w = backend->make_worker(tid);
    Rng rng(1234u + tid);
    apps::EigenApp::Locals l;
    for (unsigned i = 0; i < per_thread; ++i) {
      tm::Txn t = app.make_txn(tid, rng, l);
      backend->execute(*w, t);
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void register_cfg(const char* fig, const apps::EigenApp::Config& cfg,
                  unsigned total_txns, SeriesTable* table, double* seq_secs) {
  const std::vector<unsigned> threads{1, 2, 4, 8};
  for (const auto algo : figure_algos()) {
    for (const unsigned t : threads) {
      if (t > max_threads(8)) continue;
      const std::string name = std::string(fig) + "/" + tm::to_string(algo) +
                               "/threads:" + std::to_string(t);
      benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
        for (auto _ : st) {
          if (*seq_secs == 0.0)
            *seq_secs = run_eigen(tm::Algo::kSeq, cfg, 1, total_txns);
          const double secs = run_eigen(algo, cfg, t, total_txns);
          const double speedup = *seq_secs / secs;
          st.counters["speedup"] = speedup;
          table->set(tm::to_string(algo), t, speedup);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

double g_seq_a = 0.0, g_seq_b = 0.0;

}  // namespace

int main(int argc, char** argv) {
  const unsigned quick = env_int("PHTM_QUICK", 0);
  register_cfg("Fig6a", apps::EigenApp::Config::mixed(), quick ? 400 : 2000,
               &g_a, &g_seq_a);
  register_cfg("Fig6b", apps::EigenApp::Config::hot(), quick ? 48 : 160, &g_b,
               &g_seq_b);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_a.print();
  g_b.print();
  return 0;
}
