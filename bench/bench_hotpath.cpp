// Hot-path micro-benchmarks: signature ops, monitor-table registration and
// ring validation in isolation.
//
// These are the per-access costs the figure benches (Figs. 3-6) pay on every
// transactional read/write; the paper's premise is that this instrumentation
// stays "slight" (Sec. 5.1). Each benchmark pins one primitive:
//
//   Sig/*        BloomSig operations at sparse (a handful of set bits, the
//                common transactional footprint) and dense occupancies;
//   Monitor/*    simulator monitor-table read/write registration, private
//                and read-read shared (the Fig. 3 read-dominated case);
//   Ring/*       in-flight validation windows against published entries
//                whose signatures are disjoint from the validator's.
//
// tools/bench_report.py runs this binary with --benchmark_out to fold the
// ns/op numbers into BENCH_<label>.json; CI runs it as a smoke test under
// the `bench` ctest label.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/policy.hpp"
#include "core/ring.hpp"
#include "obs/trace.hpp"
#include "sig/signature.hpp"
#include "sim/config.hpp"
#include "sim/runtime.hpp"

namespace {

using phtm::Signature;
using phtm::core::GlobalRing;
using phtm::sim::HtmConfig;
using phtm::sim::HtmOps;
using phtm::sim::HtmRuntime;

// ---------------------------------------------------------------------------
// Signature ops
// ---------------------------------------------------------------------------

/// Build a signature with exactly `nbits` set bits, all of whose words fall
/// in [wlo, whi). Driving word placement lets the disjoint benchmarks
/// guarantee a miss without relying on hash luck.
Signature sig_in_words(unsigned nbits, unsigned wlo, unsigned whi,
                       std::uintptr_t salt) {
  Signature s;
  s.clear();
  unsigned added = 0;
  for (std::uintptr_t p = (salt + 1) * 64; added < nbits; p += 64) {
    const void* addr = reinterpret_cast<const void*>(p);
    const unsigned w = Signature::bit_of(addr) / 64;
    if (w >= wlo && w < whi && !s.maybe_contains(addr)) {
      s.add(addr);
      ++added;
    }
  }
  return s;
}

/// Addresses (one per cache line) whose signature words fall in [wlo, whi).
std::vector<std::uintptr_t> addrs_in_words(unsigned n, unsigned wlo,
                                           unsigned whi, std::uintptr_t salt) {
  std::vector<std::uintptr_t> v;
  for (std::uintptr_t p = (salt + 1) * 64; v.size() < n; p += 64) {
    const unsigned w =
        Signature::bit_of(reinterpret_cast<const void*>(p)) / 64;
    if (w >= wlo && w < whi) v.push_back(p);
  }
  return v;
}

constexpr unsigned kHalf = Signature::kWords / 2;

/// Intersection miss: the protocol's dominant case (validation against a
/// disjoint write signature). range(0) = set bits per signature.
void BM_SigIntersectsMiss(benchmark::State& state) {
  const unsigned bits = static_cast<unsigned>(state.range(0));
  Signature a = sig_in_words(bits, 0, kHalf, 1);
  Signature b = sig_in_words(bits, kHalf, Signature::kWords, 2);
  benchmark::DoNotOptimize(&a);
  benchmark::DoNotOptimize(&b);
  for (auto _ : state) {
    bool hit = a.intersects(b);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_SigIntersectsMiss)->Arg(4)->Arg(256);

/// Word-atomic snapshot of a shared signature (commit-path lock-table read)
/// into a worker-persistent destination — the protocol's usage pattern. The
/// by-value form is floored by materializing a fresh multi-cache-line
/// object per call regardless of sparsity; the into-form touches only
/// occupied words.
void BM_SigSnapshot(benchmark::State& state) {
  const unsigned bits = static_cast<unsigned>(state.range(0));
  Signature src = sig_in_words(bits, 0, Signature::kWords, 3);
  Signature dst;
  benchmark::DoNotOptimize(&src);
  for (auto _ : state) {
    src.atomic_snapshot_into(dst);
    benchmark::DoNotOptimize(&dst);
  }
}
BENCHMARK(BM_SigSnapshot)->Arg(4)->Arg(256);

/// Aggregate-signature accumulation (Fig. 1 line 32): agg |= write_sig.
void BM_SigUnionWith(benchmark::State& state) {
  const unsigned bits = static_cast<unsigned>(state.range(0));
  Signature dst = sig_in_words(bits, 0, kHalf, 4);
  Signature src = sig_in_words(bits, kHalf, Signature::kWords, 5);
  benchmark::DoNotOptimize(&dst);
  benchmark::DoNotOptimize(&src);
  for (auto _ : state) {
    dst.union_with(src);
    benchmark::DoNotOptimize(&dst);
  }
}
BENCHMARK(BM_SigUnionWith)->Arg(4)->Arg(256);

/// Lock-masking subtraction (Fig. 1 line 26) with disjoint operands.
void BM_SigSubtractMiss(benchmark::State& state) {
  const unsigned bits = static_cast<unsigned>(state.range(0));
  Signature a = sig_in_words(bits, 0, kHalf, 6);
  Signature b = sig_in_words(bits, kHalf, Signature::kWords, 7);
  benchmark::DoNotOptimize(&a);
  benchmark::DoNotOptimize(&b);
  for (auto _ : state) {
    a.subtract(b);
    benchmark::DoNotOptimize(&a);
  }
}
BENCHMARK(BM_SigSubtractMiss)->Arg(4)->Arg(256);

/// Per-transaction signature reset + re-population (begin-path cost).
void BM_SigClearAdd(benchmark::State& state) {
  const unsigned bits = static_cast<unsigned>(state.range(0));
  const auto addrs = addrs_in_words(bits, 0, Signature::kWords, 8);
  Signature s;
  benchmark::DoNotOptimize(&s);
  for (auto _ : state) {
    s.clear();
    for (const auto p : addrs) s.add(reinterpret_cast<const void*>(p));
    benchmark::DoNotOptimize(&s);
  }
}
BENCHMARK(BM_SigClearAdd)->Arg(4)->Arg(256);

void BM_SigPopcount(benchmark::State& state) {
  const unsigned bits = static_cast<unsigned>(state.range(0));
  Signature s = sig_in_words(bits, 0, Signature::kWords, 9);
  benchmark::DoNotOptimize(&s);
  for (auto _ : state) {
    unsigned n = s.popcount();
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_SigPopcount)->Arg(4)->Arg(256);

// ---------------------------------------------------------------------------
// Monitor-table registration
// ---------------------------------------------------------------------------

constexpr unsigned kMonLines = 16;
constexpr unsigned kMonMaxThreads = 8;

struct alignas(64) BenchLine {
  std::uint64_t w[8];
};

BenchLine g_shared[kMonLines];
BenchLine g_private[kMonMaxThreads][kMonLines];

HtmRuntime& monitor_rt() {
  static HtmRuntime rt{HtmConfig::testing()};
  return rt;
}

/// One transaction subscribing `kMonLines` lines every thread also reads:
/// the read-read sharing case a Fig. 3 read-dominated mix lives in. Reported
/// items = line registrations (each paid once more at unregistration).
void BM_MonitorReadShared(benchmark::State& state) {
  HtmRuntime& rt = monitor_rt();
  HtmRuntime::Thread th(rt);
  for (auto _ : state) {
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      for (unsigned i = 0; i < kMonLines; ++i) ops.subscribe(&g_shared[i].w[0]);
    });
    benchmark::DoNotOptimize(r.committed);
  }
  state.SetItemsProcessed(state.iterations() * kMonLines);
}
BENCHMARK(BM_MonitorReadShared)->Threads(1)->Threads(4)->UseRealTime();

/// Same shape, thread-private lines: the uncontended registration cost.
void BM_MonitorReadPrivate(benchmark::State& state) {
  HtmRuntime& rt = monitor_rt();
  HtmRuntime::Thread th(rt);
  const unsigned me = static_cast<unsigned>(state.thread_index()) % kMonMaxThreads;
  for (auto _ : state) {
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      for (unsigned i = 0; i < kMonLines; ++i)
        ops.subscribe(&g_private[me][i].w[0]);
    });
    benchmark::DoNotOptimize(r.committed);
  }
  state.SetItemsProcessed(state.iterations() * kMonLines);
}
BENCHMARK(BM_MonitorReadPrivate)->Threads(1)->Threads(4)->UseRealTime();

/// Write registration keeps the bucket lock by design (dooming must be
/// atomic against the doom-latch protocol); this is the control group.
void BM_MonitorWritePrivate(benchmark::State& state) {
  HtmRuntime& rt = monitor_rt();
  HtmRuntime::Thread th(rt);
  const unsigned me = static_cast<unsigned>(state.thread_index()) % kMonMaxThreads;
  for (auto _ : state) {
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      for (unsigned i = 0; i < kMonLines; ++i)
        ops.write(&g_private[me][i].w[0], i);
    });
    benchmark::DoNotOptimize(r.committed);
  }
  state.SetItemsProcessed(state.iterations() * kMonLines);
}
BENCHMARK(BM_MonitorWritePrivate)->Threads(1)->UseRealTime();

// ---------------------------------------------------------------------------
// Ring validation
// ---------------------------------------------------------------------------

/// Validate a window of range(0) published entries whose write signatures
/// are word-disjoint from the validator's read signature — the common case
/// for an in-flight validation that passes. Items = entries scanned.
void BM_RingValidateDisjoint(benchmark::State& state) {
  const unsigned window = static_cast<unsigned>(state.range(0));
  static HtmRuntime rt{HtmConfig::testing()};
  GlobalRing ring(1024);
  const Signature wsig = sig_in_words(32, 0, kHalf, 10);
  for (unsigned i = 0; i < window; ++i) {
    const std::uint64_t ts = ring.reserve(rt);
    ring.fill_slot(rt, ts, wsig);
  }
  const std::uint64_t top = rt.nontx_load(ring.timestamp_addr());
  const Signature rsig = sig_in_words(2, kHalf, Signature::kWords, 11);
  for (auto _ : state) {
    std::uint64_t start = top - window;
    const auto v = ring.validate(rt, start, rsig);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * window);
}
BENCHMARK(BM_RingValidateDisjoint)->Arg(16)->Arg(64);

/// Same window, empty read signature: a write-only partitioned transaction
/// revalidating after each sub-commit can never conflict.
void BM_RingValidateEmptyRsig(benchmark::State& state) {
  const unsigned window = static_cast<unsigned>(state.range(0));
  static HtmRuntime rt{HtmConfig::testing()};
  GlobalRing ring(1024);
  const Signature wsig = sig_in_words(32, 0, Signature::kWords, 12);
  for (unsigned i = 0; i < window; ++i) {
    const std::uint64_t ts = ring.reserve(rt);
    ring.fill_slot(rt, ts, wsig);
  }
  const std::uint64_t top = rt.nontx_load(ring.timestamp_addr());
  Signature rsig;
  rsig.clear();
  for (auto _ : state) {
    std::uint64_t start = top - window;
    const auto v = ring.validate(rt, start, rsig);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * window);
}
BENCHMARK(BM_RingValidateEmptyRsig)->Arg(64);

// ---------------------------------------------------------------------------
// Sharded commit pipeline (core::ShardedRing)
// ---------------------------------------------------------------------------
// The sharded ring splits commit traffic by signature word group; the cost
// model the design leans on: a shard validation window scans exactly like
// the unsharded ring (BM_RingValidateDisjoint is the control), shards the
// reader does not occupy are an O(1) watermark bump, and the fast-path
// publish fan-out is one ring entry per intersected shard.

using phtm::core::ShardedRing;
constexpr unsigned kShardWords = Signature::kWordsPerShard;

/// One shard's validation window, read signature disjoint from the entries
/// but inside the same shard — per-entry cost must match the unsharded
/// BM_RingValidateDisjoint (same scan, same two-load disjoint fast path).
void BM_ShardedRingValidateOwnShard(benchmark::State& state) {
  const unsigned window = static_cast<unsigned>(state.range(0));
  static HtmRuntime rt{HtmConfig::testing()};
  ShardedRing ring(1024);
  const std::uint64_t wmask = Signature::shard_word_mask(0);
  const Signature wsig = sig_in_words(32, 0, kShardWords / 2, 13);
  GlobalRing& sh = ring.shard(0);
  for (unsigned i = 0; i < window; ++i) {
    const std::uint64_t ts = sh.reserve(rt);
    sh.fill_slot(rt, ts, wsig, wmask);
  }
  const std::uint64_t top = rt.nontx_load(ring.timestamp_addr(0));
  const Signature rsig = sig_in_words(2, kShardWords / 2, kShardWords, 14);
  for (auto _ : state) {
    std::uint64_t start = top - window;
    const auto v = sh.validate(rt, start, rsig, ~std::uint64_t{0}, wmask);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * window);
}
BENCHMARK(BM_ShardedRingValidateOwnShard)->Arg(16)->Arg(64);

/// Full cross-shard validation sweep for a reader occupying one shard:
/// every shard carries a `window`-deep committed load, but only the
/// occupied shard is scanned — the other three advance in O(1) because the
/// masked read occupancy is empty. Items = entries actually scanned.
void BM_ShardedRingValidateSweep(benchmark::State& state) {
  const unsigned window = static_cast<unsigned>(state.range(0));
  static HtmRuntime rt{HtmConfig::testing()};
  ShardedRing ring(1024);
  for (unsigned s = 0; s < ShardedRing::kShards; ++s) {
    const Signature wsig = sig_in_words(
        32, s * kShardWords, s * kShardWords + kShardWords / 2, 15 + s);
    GlobalRing& sh = ring.shard(s);
    for (unsigned i = 0; i < window; ++i) {
      const std::uint64_t ts = sh.reserve(rt);
      sh.fill_slot(rt, ts, wsig, Signature::shard_word_mask(s));
    }
  }
  std::uint64_t tops[ShardedRing::kShards];
  for (unsigned s = 0; s < ShardedRing::kShards; ++s)
    tops[s] = rt.nontx_load(ring.timestamp_addr(s));
  const Signature rsig = sig_in_words(2, kShardWords / 2, kShardWords, 19);
  for (auto _ : state) {
    for (unsigned s = 0; s < ShardedRing::kShards; ++s) {
      std::uint64_t start = tops[s] - window;
      const auto v = ring.shard(s).validate(rt, start, rsig,
                                            ~std::uint64_t{0},
                                            Signature::shard_word_mask(s));
      benchmark::DoNotOptimize(v);
    }
  }
  state.SetItemsProcessed(state.iterations() * window);
}
BENCHMARK(BM_ShardedRingValidateSweep)->Arg(64);

/// Fast-path publication fan-out: one (simulated) hardware transaction
/// publishing a write signature that intersects range(0) shards. The
/// attempt scaffolding is constant across args, so the slope is the
/// per-shard publication cost (one ring entry + timestamp per shard).
void BM_ShardedRingPublishHtm(benchmark::State& state) {
  const unsigned nshards = static_cast<unsigned>(state.range(0));
  static HtmRuntime rt{HtmConfig::testing()};
  HtmRuntime::Thread th(rt);
  ShardedRing ring(1024);
  Signature wsig;
  wsig.clear();
  for (unsigned s = 0; s < nshards; ++s)
    wsig.union_with(sig_in_words(8, s * kShardWords, (s + 1) * kShardWords,
                                 23 + s));
  for (auto _ : state) {
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      ring.publish_in_htm(ops, wsig, /*busy_xabort_code=*/0x7f);
    });
    benchmark::DoNotOptimize(r.committed);
  }
  state.SetItemsProcessed(state.iterations() * nshards);
}
BENCHMARK(BM_ShardedRingPublishHtm)->Arg(1)->Arg(4);

// ---------------------------------------------------------------------------
// Contention-manager overhead (src/core/policy.hpp)
// ---------------------------------------------------------------------------
// The policy engine's footprint on an *uncontended* fast-path commit is one
// SiteTable hash + quarantine probe before the attempt and two relaxed
// stores after it (on_hw_commit); the budget/backoff objects are
// constructed once per execute(). These pins bound that added cost: the
// acceptance budget is <= 2 ns over the pre-policy fast path (DESIGN.md
// "Robustness & contention management").

/// Per-execute site consultation: hash lookup + should_skip_fast on a
/// healthy site + the commit-side reset. Everything the uncontended fast
/// path pays the policy engine per transaction.
void BM_PolicySiteConsult(benchmark::State& state) {
  const phtm::tm::PolicyConfig pc;
  phtm::core::SiteTable sites;
  int dummy;  // stands in for the step-function pointer
  const void* key = &dummy;
  for (auto _ : state) {
    phtm::core::SiteState& site = sites.of(key);
    bool skip = site.should_skip_fast(pc);
    benchmark::DoNotOptimize(skip);
    site.on_hw_commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicySiteConsult);

/// Per-execute control-object setup: the per-cause budget and the jittered
/// backoff are stack objects rebuilt every transaction.
void BM_PolicyBudgetSetup(benchmark::State& state) {
  const phtm::tm::PolicyConfig pc;
  std::uint64_t jitter = 0x9e3779b97f4a7c15ull | 1;
  for (auto _ : state) {
    phtm::core::CauseBudget budget(5, pc.htm_capacity_retries, 5,
                                   pc.htm_other_retries);
    phtm::core::JitterBackoff backoff(pc, &jitter);
    benchmark::DoNotOptimize(&budget);
    benchmark::DoNotOptimize(&backoff);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyBudgetSetup);

// ---------------------------------------------------------------------------
// Tracer emit cost (src/obs)
// ---------------------------------------------------------------------------
// The obs library is always compiled, so the per-event cost is measurable
// from any build; what PHTM_TRACE gates is whether the protocol's macro
// sites expand to these calls at all. OBSERVABILITY.md quotes these numbers
// as the instrumented-build overhead bound per event.

/// Direct ring store: clock read + record store + relaxed cursor bump.
void BM_ObsEmit(benchmark::State& state) {
  for (auto _ : state) {
    phtm::obs::emit(phtm::obs::EventKind::kRingValidate, 0, 1, 2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsEmit);

/// Deferred path the simulator uses inside a (simulated) hardware
/// transaction: one event parked in the thread-local pending array by
/// txn_enter()/txn_exit() and flushed to the ring on exit.
void BM_ObsEmitDeferred(benchmark::State& state) {
  for (auto _ : state) {
    phtm::obs::txn_enter();
    phtm::obs::emit(phtm::obs::EventKind::kRingValidate, 0, 1, 2);
    phtm::obs::txn_exit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsEmitDeferred);

}  // namespace

BENCHMARK_MAIN();
