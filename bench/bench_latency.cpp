// Transaction latency distribution (beyond-paper measurement).
//
// Throughput averages hide what the partitioned path does to *individual*
// transactions: a resource-bound transaction under HTM-GL waits for and
// then holds the global lock (long, serialized), while under PART-HTM it
// commits as a chain of sub-transactions (bounded work per retry). This
// bench records per-transaction commit latency on the Labyrinth-style
// grid-router workload and reports p50/p95/p99/max per algorithm.
#include "bench_common.hpp"

#include <chrono>

#include "apps/stamp/stamp.hpp"
#include "util/histogram.hpp"

namespace {

using namespace phtm;
using namespace phtm::bench;

struct Row {
  std::string algo;
  Histogram hist;
};
std::vector<Row> g_rows;

void register_algo(tm::Algo algo) {
  const std::string name =
      std::string("Latency/labyrinth/") + tm::to_string(algo) + "/threads:4";
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    for (auto _ : st) {
      auto app = apps::make_stamp_app("labyrinth");
      sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
      auto backend = tm::make_backend(algo, rt, {});
      app->init(4, /*seed=*/21);
      std::vector<Histogram> hists(4);
      // Wrap run_thread's transaction executions indirectly: the app drives
      // its own loop, so measure whole-route latency by timing each claim
      // via a thin backend shim.
      struct Shim final : tm::Backend {
        tm::Backend* inner;
        Histogram* hist;
        const char* name() const override { return inner->name(); }
        std::unique_ptr<tm::Worker> make_worker(unsigned tid) override {
          return inner->make_worker(tid);
        }
        void execute(tm::Worker& w, const tm::Txn& t) override {
          const auto t0 = std::chrono::steady_clock::now();
          inner->execute(w, t);
          const auto t1 = std::chrono::steady_clock::now();
          hist->record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
        }
      };
      run_threads(4, [&](unsigned tid) {
        Shim shim;
        shim.inner = backend.get();
        shim.hist = &hists[tid];
        auto w = backend->make_worker(tid);
        app->run_thread(shim, *w, tid, 4);
      });
      if (!app->verify()) st.SkipWithError("verification failed");
      Histogram all;
      for (const auto& h : hists) all.merge(h);
      st.counters["p50_us"] = static_cast<double>(all.quantile(0.5)) / 1e3;
      st.counters["p99_us"] = static_cast<double>(all.quantile(0.99)) / 1e3;
      st.counters["max_us"] = static_cast<double>(all.max()) / 1e3;
      g_rows.push_back({tm::to_string(algo), all});
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto algo : {tm::Algo::kHtmGl, tm::Algo::kPartHtm,
                          tm::Algo::kPartHtmO, tm::Algo::kNorec, tm::Algo::kSpht})
    register_algo(algo);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Per-transaction commit latency, grid routing, 4 threads ===\n");
  Table t({"algorithm", "p50 us", "p95 us", "p99 us", "max us", "mean us"});
  for (const auto& r : g_rows) {
    t.add_row({r.algo, Table::num(r.hist.quantile(0.50) / 1e3, 1),
               Table::num(r.hist.quantile(0.95) / 1e3, 1),
               Table::num(r.hist.quantile(0.99) / 1e3, 1),
               Table::num(static_cast<double>(r.hist.max()) / 1e3, 1),
               Table::num(r.hist.mean() / 1e3, 1)});
  }
  t.print();
  return 0;
}
