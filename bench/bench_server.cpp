// Server soak — sustained-rate serving benchmark for the transaction
// server (src/server), EXPERIMENTS.md "Server soak".
//
// An open-loop Poisson generator drives the five-phase schedule
//   warmup -> sustained -> burst -> overload -> drain
// against a TxnServer over PART-HTM on the simulated Haswell runtime.
// Per phase it reports offered/accepted/committed/shed/rejected counts,
// committed throughput, and the accepted-request latency tail (p50 /
// p99 / p999, measured from the *scheduled* arrival instant — see
// src/server/traffic.hpp on why closed-loop numbers would lie) against
// the latency SLO.
//
// The process exit code judges only harness invariants (request
// conservation), never the timings: like every bench here, wall-clock
// results are for humans and BENCH_server.json, not for CI gating.
//
// Environment knobs (on top of bench_common's PHTM_QUICK):
//   PHTM_SERVER_WORKERS   worker threads (default 2)
//   PHTM_SERVER_RATE      sustained offered load, txn/s (default 4000)
//   PHTM_SERVER_SLO_MS    p99 latency objective, ms (default 10)
//   PHTM_SERVER_JSON      path: write the schema-1 server report
//                         (tools/bench_report.py --server folds it into
//                         BENCH_server.json)
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/nrw.hpp"
#include "bench_common.hpp"
#include "obs/trace.hpp"
#include "server/server.hpp"
#include "server/traffic.hpp"

namespace {

using namespace phtm;

struct PhaseReport {
  server::Phase phase;
  std::uint64_t offered = 0;
  server::PhaseTotals totals;
  double throughput = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
  bool slo_ok = true;
};

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

// Register the run's aggregate counters with the tracer so the exported
// trace carries them: trace_view.py --check reconciles abort/commit/
// fallback event counts AND the server's shed/degrade events against
// these (exact when nothing was dropped). No-op in plain builds.
void register_trace_counters(const StatSheet& total,
                             const server::ServerTotals& st) {
  (void)total;
  (void)st;  // plain builds: the PHTM_TRACE_META macros compile out
  PHTM_TRACE_META("stats_aborts_conflict",
                  total.aborts[static_cast<unsigned>(AbortCause::kConflict)]);
  PHTM_TRACE_META("stats_aborts_capacity",
                  total.aborts[static_cast<unsigned>(AbortCause::kCapacity)]);
  PHTM_TRACE_META("stats_aborts_explicit",
                  total.aborts[static_cast<unsigned>(AbortCause::kExplicit)]);
  PHTM_TRACE_META("stats_aborts_other",
                  total.aborts[static_cast<unsigned>(AbortCause::kOther)]);
  PHTM_TRACE_META("stats_commits_HTM",
                  total.commits[static_cast<unsigned>(CommitPath::kHtm)]);
  PHTM_TRACE_META("stats_commits_SW",
                  total.commits[static_cast<unsigned>(CommitPath::kSoftware)]);
  PHTM_TRACE_META("stats_commits_GL",
                  total.commits[static_cast<unsigned>(CommitPath::kGlobalLock)]);
  for (unsigned r = 0; r < static_cast<unsigned>(FallbackReason::kReasonCount);
       ++r) {
    const std::string key = std::string("stats_fallbacks_") +
                            to_string(static_cast<FallbackReason>(r));
    PHTM_TRACE_META(key.c_str(), total.fallbacks[r]);
  }
  for (unsigned s = 0; s < StatSheet::kRingShards; ++s) {
    const std::string suffix = std::string("_s") + std::to_string(s);
    PHTM_TRACE_META((std::string("stats_ring_publishes") + suffix).c_str(),
                    total.ring_publishes_by_shard[s]);
    PHTM_TRACE_META((std::string("stats_ring_validates") + suffix).c_str(),
                    total.ring_validates_by_shard[s]);
  }
  PHTM_TRACE_META("stats_server_sheds", st.shed);
  for (unsigned i = 0;
       i < static_cast<unsigned>(server::OverloadState::kStateCount); ++i) {
    const std::string key =
        std::string("stats_server_degrades_") +
        server::to_string(static_cast<server::OverloadState>(i));
    PHTM_TRACE_META(key.c_str(), st.degrades[i]);
  }
}

void write_json(const char* path, unsigned workers, double slo_ms,
                const std::vector<PhaseReport>& reps,
                const server::ServerTotals& t, bool conservation_ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_server: cannot open PHTM_SERVER_JSON=%s\n",
                 path);
    std::exit(2);
  }
  std::fprintf(f, "{\"schema\":1,\"workers\":%u,\"slo_p99_ms\":%g,", workers,
               slo_ms);
  std::fprintf(f, "\"phases\":[");
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const PhaseReport& r = reps[i];
    std::fprintf(
        f,
        "%s{\"name\":\"%s\",\"rate_tps\":%g,\"duration_s\":%g,"
        "\"offered\":%" PRIu64 ",\"accepted\":%" PRIu64 ",\"committed\":%" PRIu64
        ",\"shed\":%" PRIu64 ",\"rejected\":%" PRIu64
        ",\"throughput\":%.6g,\"p50_us\":%.6g,\"p99_us\":%.6g,"
        "\"p999_us\":%.6g,\"slo_ok\":%s}",
        i ? "," : "", r.phase.name.c_str(), r.phase.rate_tps,
        r.phase.duration_s, r.offered, r.totals.accepted, r.totals.committed,
        r.totals.shed, r.totals.rejected, r.throughput, r.p50_us, r.p99_us,
        r.p999_us, r.slo_ok ? "true" : "false");
  }
  std::fprintf(f,
               "],\"totals\":{\"submitted\":%" PRIu64 ",\"accepted\":%" PRIu64
               ",\"rejected\":%" PRIu64 ",\"committed\":%" PRIu64
               ",\"shed\":%" PRIu64 ",\"degrades\":{",
               t.submitted, t.accepted, t.rejected(), t.committed, t.shed);
  for (unsigned i = 0;
       i < static_cast<unsigned>(server::OverloadState::kStateCount); ++i)
    std::fprintf(f, "%s\"%s\":%" PRIu64, i ? "," : "",
                 server::to_string(static_cast<server::OverloadState>(i)),
                 t.degrades[i]);
  std::fprintf(f, "}},\"conservation_ok\":%s}\n",
               conservation_ok ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main() {
  using namespace phtm;
  const unsigned workers =
      static_cast<unsigned>(bench::env_int("PHTM_SERVER_WORKERS", 2));
  const double rate = bench::env_int("PHTM_SERVER_RATE", 4'000);
  const double slo_ms = bench::env_int("PHTM_SERVER_SLO_MS", 10);
  const bool quick = bench::env_int("PHTM_QUICK", 0) != 0;
  const double unit_s = quick ? 0.3 : 2.0;

  // The overload phase offers 6x the sustained rate: far past what the
  // worker pool absorbs, so the pending queue fills and the controller
  // must shed. The drain phase offers a trickle so the recovery
  // (shedding -> degraded -> normal via the calm hysteresis) is visible.
  const std::vector<server::Phase> phases{
      {"warmup", rate, 0.25 * unit_s},  {"sustained", rate, unit_s},
      {"burst", 3 * rate, 0.5 * unit_s}, {"overload", 6 * rate, unit_s},
      {"drain", 0.25 * rate, 0.5 * unit_s},
  };

  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
  auto backend = tm::make_backend(tm::Algo::kPartHtm, rt, {});

  server::ServerConfig scfg;
  scfg.workers = workers;
  // The queue bound is the other half of the latency story: even when
  // the controller is between states, an accepted request can wait at
  // most capacity/service-rate in queue.
  scfg.queue_capacity = 64;
  scfg.limits.max_pending = 64;
  // Shed bound well inside the SLO: whatever the server still executes
  // under shedding spent at most a quarter of the objective in queue,
  // leaving the rest for the service-time tail.
  scfg.shed_delay_ns =
      static_cast<std::uint64_t>(slo_ms * 1e6 / 4.0);
  // Slower de-escalation than the library default: a soak's overload
  // phase has brief calm windows (generator catch-up gaps), and stepping
  // down on each one thrashes the degrade toggle and lets stale backlog
  // through between shedding windows.
  scfg.overload.cool_polls = 10;
  server::TxnServer srv(*backend, scfg);

  // Heavier than Fig. 3a: a read footprint big enough that the hardware
  // fast path sees genuine capacity pressure (the degrade trigger's
  // signal) and per-request service time is long enough that the
  // overload phase actually outruns the worker pool (the shed trigger).
  apps::NrwApp::Config acfg;
  acfg.n_reads = 2000;
  acfg.m_writes = 100;
  apps::NrwApp app(acfg, workers);
  srv.start();
  const std::vector<std::uint64_t> offered = server::run_open_loop(
      phases, /*seed=*/42,
      [&](unsigned phase, std::uint64_t sched_ns) {
        apps::NrwApp::Locals l;
        // Round-robin the disjoint write slices across requests; the
        // server copies the locals, so the stack instance may die.
        const tm::Txn txn =
            app.make_txn(static_cast<unsigned>(sched_ns) % workers, l);
        srv.submit(txn, phase, sched_ns);
      },
      [&](unsigned phase) {
        std::fprintf(stderr, "bench_server: phase %s (%.0f tps, %.2fs)\n",
                     phases[phase].name.c_str(), phases[phase].rate_tps,
                     phases[phase].duration_s);
      });
  srv.stop();

  const server::ServerTotals totals = srv.counters();
  const StatSheet sheet = srv.backend_stats();

  std::vector<PhaseReport> reps;
  for (unsigned p = 0; p < phases.size(); ++p) {
    PhaseReport r;
    r.phase = phases[p];
    r.offered = offered[p];
    r.totals = srv.phase_totals(p);
    r.throughput =
        static_cast<double>(r.totals.committed) / phases[p].duration_s;
    r.p50_us = us(r.totals.latency_ns.quantile(0.50));
    r.p99_us = us(r.totals.latency_ns.quantile(0.99));
    r.p999_us = us(r.totals.latency_ns.quantile(0.999));
    r.slo_ok = r.totals.committed == 0 || r.p99_us <= slo_ms * 1000.0;
    reps.push_back(r);
  }

  std::printf("\n=== Server soak: PART-HTM, %u workers, SLO p99 <= %g ms ===\n",
              workers, slo_ms);
  Table tbl({"phase", "offered", "accepted", "committed", "shed", "rejected",
             "tx/s", "p50_us", "p99_us", "p999_us", "SLO"});
  for (const PhaseReport& r : reps)
    tbl.add_row({r.phase.name, std::to_string(r.offered),
                 std::to_string(r.totals.accepted),
                 std::to_string(r.totals.committed),
                 std::to_string(r.totals.shed),
                 std::to_string(r.totals.rejected),
                 Table::num(r.throughput, 0), Table::num(r.p50_us, 1),
                 Table::num(r.p99_us, 1), Table::num(r.p999_us, 1),
                 r.slo_ok ? "ok" : "MISS"});
  tbl.print();
  std::printf("totals: submitted=%" PRIu64 " accepted=%" PRIu64
              " rejected=%" PRIu64 " committed=%" PRIu64 " shed=%" PRIu64
              " degrades(normal/degraded/shedding)=%" PRIu64 "/%" PRIu64
              "/%" PRIu64 "\n",
              totals.submitted, totals.accepted, totals.rejected(),
              totals.committed, totals.shed, totals.degrades[0],
              totals.degrades[1], totals.degrades[2]);

  // Harness invariants — the only thing the exit code judges.
  const bool conservation_ok =
      totals.submitted == totals.accepted + totals.rejected() &&
      totals.accepted == totals.committed + totals.shed;
  if (!conservation_ok)
    std::fprintf(stderr, "bench_server: REQUEST CONSERVATION VIOLATED\n");

  if (const char* path = std::getenv("PHTM_SERVER_JSON");
      path != nullptr && *path != '\0')
    write_json(path, workers, slo_ms, reps, totals, conservation_ok);

  register_trace_counters(sheet, totals);
  return conservation_ok ? 0 : 1;
}
