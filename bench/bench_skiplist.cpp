// Skip list vs linked list at 10K elements (beyond-paper ablation).
//
// Same element count and operation mix as Fig. 4b, but logarithmic
// traversals: read sets shrink from ~5 000 lines to ~30, putting the
// structure back inside best-effort HTM budgets. If PART-HTM's Fig. 4b
// advantage comes from resource failures (the paper's thesis), it must
// evaporate here and the ordering must revert to the Fig. 4a / Fig. 3a
// pattern (HTM-GL best, PART-HTM the closest competitor).
#include "bench_common.hpp"

#include "apps/list.hpp"
#include "apps/skiplist.hpp"

namespace {

using namespace phtm;
using namespace phtm::bench;

SeriesTable g_skip("Skip list 10K, 50% writes (haswell4c8t)", "K tx/sec");

void register_algo(tm::Algo algo) {
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    if (t > max_threads(8)) continue;
    const std::string name = std::string("SkipList10K/") + tm::to_string(algo) +
                             "/threads:" + std::to_string(t);
    benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
      for (auto _ : st) {
        apps::SkipListApp::Config cfg;
        cfg.initial_size = 10'000;
        apps::SkipListApp app(cfg);
        const ThroughputResult r = run_throughput(
            algo, sim::HtmConfig::haswell4c8t(), {}, t, bench_ms(),
            [&](unsigned, tm::Backend& be, tm::Worker& w,
                std::atomic<bool>& stop) {
              apps::SkipListApp::NodePool pool;
              apps::SkipListApp::Locals l;
              while (!stop.load(std::memory_order_relaxed)) {
                tm::Txn txn = app.make_txn(w.rng(), pool, l);
                be.execute(w, txn);
                app.finish(l, pool);
              }
            });
        st.counters["tx_per_sec"] = r.tx_per_sec;
        g_skip.set(tm::to_string(algo), t, r.tx_per_sec / 1e3);
      }
    })->Iterations(1)->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto algo : figure_algos()) register_algo(algo);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_skip.print();
  return 0;
}
