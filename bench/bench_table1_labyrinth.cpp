// Table 1 — abort-cause and committed-path breakdown for HTM-GL vs
// PART-HTM on Labyrinth with 4 threads (paper Sec. 2).
//
// Paper's rows (Intel Haswell):
//   HTM-GL:   conflict 10.11% | capacity 70.76% | explicit 0.04% | other 19.09%
//             commits: GL 49.6% | HTM 50.4%
//   PART-HTM: conflict 93.95% | capacity  1.09% | explicit 1.14% | other 3.82%
//             commits: GL 0.1% | HTM 50.3% | SW 49.6%
//
// The headline claim to reproduce: under HTM-GL the resource causes
// (capacity+other) dominate aborts and half the commits fall back to the
// global lock; under PART-HTM resource aborts nearly vanish (the remaining
// aborts are conflicts, largely on metadata) and the global-lock path is
// almost never taken — its share moves to the partitioned (SW) path.
#include "bench_common.hpp"
#include "obs/trace.hpp"

namespace {

using namespace phtm;
using namespace phtm::bench;

std::vector<std::pair<std::string, StatSummary>> g_rows;

void register_algo(tm::Algo algo) {
  const std::string name =
      std::string("Table1/labyrinth/") + tm::to_string(algo) + "/threads:4";
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    for (auto _ : st) {
      auto app = apps::make_stamp_app("labyrinth");
      sim::HtmConfig cfg = sim::HtmConfig::haswell4c8t();
      // Asynchronous interrupts contribute the paper's "other" bucket on
      // top of timer-quantum aborts.
      cfg.random_other_per_access = 1e-5;
      bool ok = false;
      StatSummary stats;
      run_fixed(*app, algo, cfg, 4, /*seed=*/7, &ok, &stats);
      if (!ok) st.SkipWithError("verification failed");
      st.counters["aborts"] = static_cast<double>(stats.total.total_aborts());
      st.counters["pct_capacity"] = stats.abort_pct(AbortCause::kCapacity);
      st.counters["pct_other"] = stats.abort_pct(AbortCause::kOther);
      st.counters["pct_GL_commits"] = stats.commit_pct(CommitPath::kGlobalLock);
      g_rows.emplace_back(tm::to_string(algo), stats);
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);
}

// In trace-enabled builds, register the run's aggregate StatSheet totals
// with the tracer so the exported trace carries them: trace_view.py --check
// cross-verifies the per-cause abort and per-path commit event counts
// against these (exact when nothing was dropped). No-op otherwise.
void register_trace_counters() {
  StatSheet total;
  for (const auto& row : g_rows) total += row.second.total;
  PHTM_TRACE_META("stats_aborts_conflict",
                  total.aborts[static_cast<unsigned>(AbortCause::kConflict)]);
  PHTM_TRACE_META("stats_aborts_capacity",
                  total.aborts[static_cast<unsigned>(AbortCause::kCapacity)]);
  PHTM_TRACE_META("stats_aborts_explicit",
                  total.aborts[static_cast<unsigned>(AbortCause::kExplicit)]);
  PHTM_TRACE_META("stats_aborts_other",
                  total.aborts[static_cast<unsigned>(AbortCause::kOther)]);
  PHTM_TRACE_META("stats_commits_HTM",
                  total.commits[static_cast<unsigned>(CommitPath::kHtm)]);
  PHTM_TRACE_META("stats_commits_SW",
                  total.commits[static_cast<unsigned>(CommitPath::kSoftware)]);
  PHTM_TRACE_META("stats_commits_GL",
                  total.commits[static_cast<unsigned>(CommitPath::kGlobalLock)]);
  for (unsigned r = 0; r < static_cast<unsigned>(FallbackReason::kReasonCount);
       ++r) {
    const std::string key =
        std::string("stats_fallbacks_") + to_string(static_cast<FallbackReason>(r));
    PHTM_TRACE_META(key.c_str(), total.fallbacks[r]);
  }
  // Per-shard ring activity for the sharded commit pipeline: publishes
  // match that shard's ring/publish/s<k> instants, validates match the sum
  // of its ok/conflict/rollover outcomes.
  for (unsigned s = 0; s < StatSheet::kRingShards; ++s) {
    const std::string suffix = std::string("_s") + std::to_string(s);
    PHTM_TRACE_META((std::string("stats_ring_publishes") + suffix).c_str(),
                    total.ring_publishes_by_shard[s]);
    PHTM_TRACE_META((std::string("stats_ring_validates") + suffix).c_str(),
                    total.ring_validates_by_shard[s]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_algo(tm::Algo::kHtmGl);
  register_algo(tm::Algo::kPartHtm);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_breakdown(
      "Table 1: Labyrinth abort causes & committed paths, 4 threads "
      "(A=HTM-GL, B=Part-HTM)",
      g_rows);
  register_trace_counters();
  return 0;
}
