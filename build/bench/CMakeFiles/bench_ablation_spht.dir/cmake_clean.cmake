file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spht.dir/bench_ablation_spht.cpp.o"
  "CMakeFiles/bench_ablation_spht.dir/bench_ablation_spht.cpp.o.d"
  "bench_ablation_spht"
  "bench_ablation_spht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
