# Empty compiler generated dependencies file for bench_ablation_spht.
# This may be replaced when dependencies are built.
