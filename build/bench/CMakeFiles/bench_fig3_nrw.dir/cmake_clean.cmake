file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_nrw.dir/bench_fig3_nrw.cpp.o"
  "CMakeFiles/bench_fig3_nrw.dir/bench_fig3_nrw.cpp.o.d"
  "bench_fig3_nrw"
  "bench_fig3_nrw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_nrw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
