
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_list.cpp" "bench/CMakeFiles/bench_fig4_list.dir/bench_fig4_list.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_list.dir/bench_fig4_list.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/phtm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/phtm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/phtm_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phtm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
