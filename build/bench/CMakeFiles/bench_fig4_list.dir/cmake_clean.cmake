file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_list.dir/bench_fig4_list.cpp.o"
  "CMakeFiles/bench_fig4_list.dir/bench_fig4_list.cpp.o.d"
  "bench_fig4_list"
  "bench_fig4_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
