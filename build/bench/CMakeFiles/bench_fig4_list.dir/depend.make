# Empty dependencies file for bench_fig4_list.
# This may be replaced when dependencies are built.
