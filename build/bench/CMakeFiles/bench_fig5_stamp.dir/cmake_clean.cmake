file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_stamp.dir/bench_fig5_stamp.cpp.o"
  "CMakeFiles/bench_fig5_stamp.dir/bench_fig5_stamp.cpp.o.d"
  "bench_fig5_stamp"
  "bench_fig5_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
