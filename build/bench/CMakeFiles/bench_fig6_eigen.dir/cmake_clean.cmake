file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_eigen.dir/bench_fig6_eigen.cpp.o"
  "CMakeFiles/bench_fig6_eigen.dir/bench_fig6_eigen.cpp.o.d"
  "bench_fig6_eigen"
  "bench_fig6_eigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
