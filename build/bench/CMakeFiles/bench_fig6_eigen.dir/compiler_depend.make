# Empty compiler generated dependencies file for bench_fig6_eigen.
# This may be replaced when dependencies are built.
