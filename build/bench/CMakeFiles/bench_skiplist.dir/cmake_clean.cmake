file(REMOVE_RECURSE
  "CMakeFiles/bench_skiplist.dir/bench_skiplist.cpp.o"
  "CMakeFiles/bench_skiplist.dir/bench_skiplist.cpp.o.d"
  "bench_skiplist"
  "bench_skiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
