# Empty dependencies file for bench_skiplist.
# This may be replaced when dependencies are built.
