file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_labyrinth.dir/bench_table1_labyrinth.cpp.o"
  "CMakeFiles/bench_table1_labyrinth.dir/bench_table1_labyrinth.cpp.o.d"
  "bench_table1_labyrinth"
  "bench_table1_labyrinth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_labyrinth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
