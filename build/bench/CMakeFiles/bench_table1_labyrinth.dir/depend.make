# Empty dependencies file for bench_table1_labyrinth.
# This may be replaced when dependencies are built.
