
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/stamp/genome.cpp" "src/apps/CMakeFiles/phtm_apps.dir/stamp/genome.cpp.o" "gcc" "src/apps/CMakeFiles/phtm_apps.dir/stamp/genome.cpp.o.d"
  "/root/repo/src/apps/stamp/intruder.cpp" "src/apps/CMakeFiles/phtm_apps.dir/stamp/intruder.cpp.o" "gcc" "src/apps/CMakeFiles/phtm_apps.dir/stamp/intruder.cpp.o.d"
  "/root/repo/src/apps/stamp/kmeans.cpp" "src/apps/CMakeFiles/phtm_apps.dir/stamp/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/phtm_apps.dir/stamp/kmeans.cpp.o.d"
  "/root/repo/src/apps/stamp/labyrinth.cpp" "src/apps/CMakeFiles/phtm_apps.dir/stamp/labyrinth.cpp.o" "gcc" "src/apps/CMakeFiles/phtm_apps.dir/stamp/labyrinth.cpp.o.d"
  "/root/repo/src/apps/stamp/registry.cpp" "src/apps/CMakeFiles/phtm_apps.dir/stamp/registry.cpp.o" "gcc" "src/apps/CMakeFiles/phtm_apps.dir/stamp/registry.cpp.o.d"
  "/root/repo/src/apps/stamp/ssca2.cpp" "src/apps/CMakeFiles/phtm_apps.dir/stamp/ssca2.cpp.o" "gcc" "src/apps/CMakeFiles/phtm_apps.dir/stamp/ssca2.cpp.o.d"
  "/root/repo/src/apps/stamp/vacation.cpp" "src/apps/CMakeFiles/phtm_apps.dir/stamp/vacation.cpp.o" "gcc" "src/apps/CMakeFiles/phtm_apps.dir/stamp/vacation.cpp.o.d"
  "/root/repo/src/apps/stamp/yada.cpp" "src/apps/CMakeFiles/phtm_apps.dir/stamp/yada.cpp.o" "gcc" "src/apps/CMakeFiles/phtm_apps.dir/stamp/yada.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/phtm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/phtm_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phtm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
