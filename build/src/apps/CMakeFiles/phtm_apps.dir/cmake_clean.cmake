file(REMOVE_RECURSE
  "CMakeFiles/phtm_apps.dir/stamp/genome.cpp.o"
  "CMakeFiles/phtm_apps.dir/stamp/genome.cpp.o.d"
  "CMakeFiles/phtm_apps.dir/stamp/intruder.cpp.o"
  "CMakeFiles/phtm_apps.dir/stamp/intruder.cpp.o.d"
  "CMakeFiles/phtm_apps.dir/stamp/kmeans.cpp.o"
  "CMakeFiles/phtm_apps.dir/stamp/kmeans.cpp.o.d"
  "CMakeFiles/phtm_apps.dir/stamp/labyrinth.cpp.o"
  "CMakeFiles/phtm_apps.dir/stamp/labyrinth.cpp.o.d"
  "CMakeFiles/phtm_apps.dir/stamp/registry.cpp.o"
  "CMakeFiles/phtm_apps.dir/stamp/registry.cpp.o.d"
  "CMakeFiles/phtm_apps.dir/stamp/ssca2.cpp.o"
  "CMakeFiles/phtm_apps.dir/stamp/ssca2.cpp.o.d"
  "CMakeFiles/phtm_apps.dir/stamp/vacation.cpp.o"
  "CMakeFiles/phtm_apps.dir/stamp/vacation.cpp.o.d"
  "CMakeFiles/phtm_apps.dir/stamp/yada.cpp.o"
  "CMakeFiles/phtm_apps.dir/stamp/yada.cpp.o.d"
  "libphtm_apps.a"
  "libphtm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phtm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
