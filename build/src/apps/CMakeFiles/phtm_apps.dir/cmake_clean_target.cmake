file(REMOVE_RECURSE
  "libphtm_apps.a"
)
