# Empty compiler generated dependencies file for phtm_apps.
# This may be replaced when dependencies are built.
