
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/factory.cpp" "src/core/CMakeFiles/phtm_core.dir/factory.cpp.o" "gcc" "src/core/CMakeFiles/phtm_core.dir/factory.cpp.o.d"
  "/root/repo/src/core/part_htm.cpp" "src/core/CMakeFiles/phtm_core.dir/part_htm.cpp.o" "gcc" "src/core/CMakeFiles/phtm_core.dir/part_htm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tm/CMakeFiles/phtm_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phtm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
