file(REMOVE_RECURSE
  "CMakeFiles/phtm_core.dir/factory.cpp.o"
  "CMakeFiles/phtm_core.dir/factory.cpp.o.d"
  "CMakeFiles/phtm_core.dir/part_htm.cpp.o"
  "CMakeFiles/phtm_core.dir/part_htm.cpp.o.d"
  "libphtm_core.a"
  "libphtm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phtm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
