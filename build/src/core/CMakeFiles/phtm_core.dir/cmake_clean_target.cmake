file(REMOVE_RECURSE
  "libphtm_core.a"
)
