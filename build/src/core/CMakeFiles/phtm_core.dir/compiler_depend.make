# Empty compiler generated dependencies file for phtm_core.
# This may be replaced when dependencies are built.
