file(REMOVE_RECURSE
  "CMakeFiles/phtm_sim.dir/runtime.cpp.o"
  "CMakeFiles/phtm_sim.dir/runtime.cpp.o.d"
  "libphtm_sim.a"
  "libphtm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phtm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
