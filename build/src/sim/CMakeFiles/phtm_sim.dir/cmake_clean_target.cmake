file(REMOVE_RECURSE
  "libphtm_sim.a"
)
