# Empty compiler generated dependencies file for phtm_sim.
# This may be replaced when dependencies are built.
