
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tm/algo.cpp" "src/tm/CMakeFiles/phtm_tm.dir/algo.cpp.o" "gcc" "src/tm/CMakeFiles/phtm_tm.dir/algo.cpp.o.d"
  "/root/repo/src/tm/heap.cpp" "src/tm/CMakeFiles/phtm_tm.dir/heap.cpp.o" "gcc" "src/tm/CMakeFiles/phtm_tm.dir/heap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/phtm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
