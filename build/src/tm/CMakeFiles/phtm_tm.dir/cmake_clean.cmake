file(REMOVE_RECURSE
  "CMakeFiles/phtm_tm.dir/algo.cpp.o"
  "CMakeFiles/phtm_tm.dir/algo.cpp.o.d"
  "CMakeFiles/phtm_tm.dir/heap.cpp.o"
  "CMakeFiles/phtm_tm.dir/heap.cpp.o.d"
  "libphtm_tm.a"
  "libphtm_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phtm_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
