file(REMOVE_RECURSE
  "libphtm_tm.a"
)
