# Empty compiler generated dependencies file for phtm_tm.
# This may be replaced when dependencies are built.
