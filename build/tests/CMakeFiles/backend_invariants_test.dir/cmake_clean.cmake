file(REMOVE_RECURSE
  "CMakeFiles/backend_invariants_test.dir/backend_invariants_test.cpp.o"
  "CMakeFiles/backend_invariants_test.dir/backend_invariants_test.cpp.o.d"
  "backend_invariants_test"
  "backend_invariants_test.pdb"
  "backend_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
