# Empty dependencies file for backend_invariants_test.
# This may be replaced when dependencies are built.
