file(REMOVE_RECURSE
  "CMakeFiles/histogram_builder_test.dir/histogram_builder_test.cpp.o"
  "CMakeFiles/histogram_builder_test.dir/histogram_builder_test.cpp.o.d"
  "histogram_builder_test"
  "histogram_builder_test.pdb"
  "histogram_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
