# Empty compiler generated dependencies file for histogram_builder_test.
# This may be replaced when dependencies are built.
