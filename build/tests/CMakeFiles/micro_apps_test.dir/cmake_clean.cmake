file(REMOVE_RECURSE
  "CMakeFiles/micro_apps_test.dir/micro_apps_test.cpp.o"
  "CMakeFiles/micro_apps_test.dir/micro_apps_test.cpp.o.d"
  "micro_apps_test"
  "micro_apps_test.pdb"
  "micro_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
