# Empty compiler generated dependencies file for micro_apps_test.
# This may be replaced when dependencies are built.
