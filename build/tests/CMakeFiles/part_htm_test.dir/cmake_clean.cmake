file(REMOVE_RECURSE
  "CMakeFiles/part_htm_test.dir/part_htm_test.cpp.o"
  "CMakeFiles/part_htm_test.dir/part_htm_test.cpp.o.d"
  "part_htm_test"
  "part_htm_test.pdb"
  "part_htm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/part_htm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
