# Empty dependencies file for part_htm_test.
# This may be replaced when dependencies are built.
