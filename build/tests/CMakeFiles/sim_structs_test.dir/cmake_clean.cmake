file(REMOVE_RECURSE
  "CMakeFiles/sim_structs_test.dir/sim_structs_test.cpp.o"
  "CMakeFiles/sim_structs_test.dir/sim_structs_test.cpp.o.d"
  "sim_structs_test"
  "sim_structs_test.pdb"
  "sim_structs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_structs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
