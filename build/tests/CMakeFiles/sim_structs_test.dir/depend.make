# Empty dependencies file for sim_structs_test.
# This may be replaced when dependencies are built.
