file(REMOVE_RECURSE
  "CMakeFiles/stamp_apps_test.dir/stamp_apps_test.cpp.o"
  "CMakeFiles/stamp_apps_test.dir/stamp_apps_test.cpp.o.d"
  "stamp_apps_test"
  "stamp_apps_test.pdb"
  "stamp_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
