file(REMOVE_RECURSE
  "CMakeFiles/stm_backends_test.dir/stm_backends_test.cpp.o"
  "CMakeFiles/stm_backends_test.dir/stm_backends_test.cpp.o.d"
  "stm_backends_test"
  "stm_backends_test.pdb"
  "stm_backends_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_backends_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
