# Empty dependencies file for stm_backends_test.
# This may be replaced when dependencies are built.
