# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sig_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sim_structs_test[1]_include.cmake")
include("/root/repo/build/tests/core_ring_test[1]_include.cmake")
include("/root/repo/build/tests/heap_test[1]_include.cmake")
include("/root/repo/build/tests/part_htm_test[1]_include.cmake")
include("/root/repo/build/tests/stm_backends_test[1]_include.cmake")
include("/root/repo/build/tests/backend_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/micro_apps_test[1]_include.cmake")
include("/root/repo/build/tests/stamp_apps_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/serializability_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_builder_test[1]_include.cmake")
include("/root/repo/build/tests/skiplist_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_edge_test[1]_include.cmake")
