// Bank example: classic transfer workload with an online auditor.
//
// Demonstrates serializability guarantees under a mixed workload: transfer
// transactions move money between accounts while audit transactions sum the
// whole bank — a large read-only transaction that exceeds best-effort HTM
// budgets when the bank is big, exercising PART-HTM's partitioned path on
// the reader side.
//
// Run:  ./bank [--accounts 4096] [--threads 4] [--ops 2000] [--algo part-htm]
#include <atomic>
#include <cstdio>

#include "sim/runtime.hpp"
#include "tm/backend.hpp"
#include "tm/heap.hpp"
#include "util/cli.hpp"
#include "util/threads.hpp"

using namespace phtm;

namespace {

struct Bank {
  std::uint64_t* accounts;
  std::uint64_t n;
};

struct TransferLocals {
  std::uint64_t from, to, amount;
};

bool transfer_step(tm::Ctx& c, const void* env, void* lp, unsigned) {
  const Bank& bank = *static_cast<const Bank*>(env);
  auto& l = *static_cast<TransferLocals*>(lp);
  const std::uint64_t balance = c.read(&bank.accounts[l.from]);
  if (balance >= l.amount) {
    c.write(&bank.accounts[l.from], balance - l.amount);
    c.write(&bank.accounts[l.to], c.read(&bank.accounts[l.to]) + l.amount);
  }
  return false;
}

struct AuditLocals {
  std::uint64_t pos;
  std::uint64_t sum;
};

// The audit reads every account, one 512-account segment per sub-HTM
// transaction. In-flight validation aborts it whenever a transfer commits
// under it, so a committed audit is a true snapshot.
bool audit_step(tm::Ctx& c, const void* env, void* lp, unsigned) {
  const Bank& bank = *static_cast<const Bank*>(env);
  auto& l = *static_cast<AuditLocals*>(lp);
  const std::uint64_t hi = std::min(l.pos + 512, bank.n);
  for (; l.pos < hi; ++l.pos) l.sum += c.read(&bank.accounts[l.pos]);
  return l.pos < bank.n;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::uint64_t n_accounts = cli.get_int("accounts", 4096);
  const unsigned threads = static_cast<unsigned>(cli.get_int("threads", 4));
  const int ops = static_cast<int>(cli.get_int("ops", 2000));
  tm::Algo algo = tm::Algo::kPartHtm;
  if (cli.has("algo") && !tm::parse_algo(cli.get("algo"), algo)) {
    std::fprintf(stderr, "unknown --algo %s\n", cli.get("algo").c_str());
    return 2;
  }

  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
  auto backend = tm::make_backend(algo, rt, {});
  auto& heap = tm::TmHeap::instance();
  Bank bank{heap.alloc_array<std::uint64_t>(n_accounts), n_accounts};
  constexpr std::uint64_t kInitial = 100;
  for (std::uint64_t i = 0; i < bank.n; ++i) bank.accounts[i] = kInitial;
  const std::uint64_t expected_total = kInitial * bank.n;

  std::atomic<std::uint64_t> bad_audits{0}, audits{0};
  run_threads(threads, [&](unsigned tid) {
    auto w = backend->make_worker(tid);
    for (int i = 0; i < ops; ++i) {
      if (i % 10 == 9) {
        AuditLocals l{};
        tm::Txn t;
        t.step = &audit_step;
        t.env = &bank;
        t.locals = &l;
        t.locals_bytes = sizeof(l);
        backend->execute(*w, t);
        audits.fetch_add(1);
        if (l.sum != expected_total) bad_audits.fetch_add(1);
      } else {
        TransferLocals l{w->rng().below(bank.n), w->rng().below(bank.n),
                         w->rng().below(30)};
        tm::Txn t;
        t.step = &transfer_step;
        t.env = &bank;
        t.locals = &l;
        t.locals_bytes = sizeof(l);
        backend->execute(*w, t);
      }
    }
  });

  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < bank.n; ++i) total += bank.accounts[i];
  std::printf("%s: %llu audits, %llu inconsistent, final total %llu (expected %llu)\n",
              tm::to_string(algo), static_cast<unsigned long long>(audits.load()),
              static_cast<unsigned long long>(bad_audits.load()),
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(expected_total));
  return (bad_audits.load() == 0 && total == expected_total) ? 0 : 1;
}
