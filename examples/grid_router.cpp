// grid_router: Labyrinth-style circuit routing as a library client — the
// workload class PART-HTM was designed for (large, long, rarely-conflicting
// transactions).
//
// Routes a batch of nets on a shared 2-layer grid and prints, per
// algorithm, how the three execution paths split and how long the batch
// took. With HTM-GL nearly every routing transaction exceeds the simulated
// L1 and serializes on the global lock; PART-HTM commits the same
// transactions as chains of sub-HTM transactions.
//
// Run:  ./grid_router [--threads 4] [--routes 48]
#include <cstdio>

#include "apps/stamp/stamp.hpp"
#include "sim/runtime.hpp"
#include "tm/backend.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/threads.hpp"

using namespace phtm;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const unsigned threads = static_cast<unsigned>(cli.get_int("threads", 4));

  Table table({"algorithm", "batch ms", "HTM %", "partitioned %", "lock %",
               "aborts/commit"});

  for (const auto algo :
       {tm::Algo::kHtmGl, tm::Algo::kPartHtm, tm::Algo::kPartHtmO,
        tm::Algo::kNorec}) {
    auto app = apps::make_stamp_app("labyrinth");
    sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
    auto backend = tm::make_backend(algo, rt, {});
    app->init(threads, /*seed=*/11);

    std::vector<StatSheet> sheets(threads);
    const auto t0 = std::chrono::steady_clock::now();
    run_threads(threads, [&](unsigned tid) {
      auto w = backend->make_worker(tid);
      app->run_thread(*backend, *w, tid, threads);
      sheets[tid] = w->stats();
    });
    const auto t1 = std::chrono::steady_clock::now();
    if (!app->verify()) {
      std::fprintf(stderr, "%s: verification FAILED\n", tm::to_string(algo));
      return 1;
    }
    const auto s = StatSummary::aggregate(sheets);
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double apc =
        s.total.total_commits()
            ? static_cast<double>(s.total.total_aborts()) /
                  static_cast<double>(s.total.total_commits())
            : 0.0;
    table.add_row({tm::to_string(algo), Table::num(ms, 1),
                   Table::num(s.commit_pct(CommitPath::kHtm), 1),
                   Table::num(s.commit_pct(CommitPath::kSoftware), 1),
                   Table::num(s.commit_pct(CommitPath::kGlobalLock), 1),
                   Table::num(apc, 2)});
  }

  std::printf("Routing a fixed batch of nets, %u threads:\n", threads);
  table.print();
  return 0;
}
