// kv_store: a concurrent open-addressing hash map built on the public TM
// API, with multi-key transactions.
//
// Shows how composite operations (multi-put across several keys) stay
// atomic regardless of which path executes them, and how a full-table scan
// — far beyond best-effort HTM capacity — still avoids the global lock
// under PART-HTM.
//
// Run:  ./kv_store [--threads 4] [--algo part-htm]
#include <atomic>
#include <cstdio>

#include "sim/runtime.hpp"
#include "tm/backend.hpp"
#include "tm/heap.hpp"
#include "util/cli.hpp"
#include "util/hash.hpp"
#include "util/threads.hpp"

using namespace phtm;

namespace {

constexpr std::uint64_t kCap = 1 << 14;  // slots (power of two)

// One slot per cache line: key (0 = empty) + value.
struct Slot {
  std::uint64_t key;
  std::uint64_t val;
  std::uint64_t pad[6];
};
static_assert(sizeof(Slot) == 64);

struct Store {
  Slot* slots;
};

/// Transactional probe: returns the slot index for `key` (claiming an empty
/// slot if absent). The probe chain is part of the transaction's read set,
/// so concurrent claims serialize correctly.
std::uint64_t probe(tm::Ctx& c, const Store& s, std::uint64_t key) {
  std::uint64_t i = mix64(key) & (kCap - 1);
  for (;;) {
    const std::uint64_t k = c.read(&s.slots[i].key);
    if (k == key) return i;
    if (k == 0) {
      c.write(&s.slots[i].key, key);
      return i;
    }
    i = (i + 1) & (kCap - 1);
  }
}

struct MultiPutLocals {
  std::uint64_t keys[4];
  std::uint64_t vals[4];
};

/// Atomic multi-put: all four key/value pairs land together or not at all.
bool multi_put_step(tm::Ctx& c, const void* env, void* lp, unsigned) {
  const Store& s = *static_cast<const Store*>(env);
  auto& l = *static_cast<MultiPutLocals*>(lp);
  for (int k = 0; k < 4; ++k)
    c.write(&s.slots[probe(c, s, l.keys[k])].val, l.vals[k]);
  return false;
}

struct ScanLocals {
  std::uint64_t pos;
  std::uint64_t sum;
  std::uint64_t count;
};

/// Snapshot scan of the whole table, one 1024-slot segment at a time.
bool scan_step(tm::Ctx& c, const void* env, void* lp, unsigned) {
  const Store& s = *static_cast<const Store*>(env);
  auto& l = *static_cast<ScanLocals*>(lp);
  const std::uint64_t hi = std::min(l.pos + 1024, kCap);
  for (; l.pos < hi; ++l.pos) {
    if (c.read(&s.slots[l.pos].key) != 0) {
      l.sum += c.read(&s.slots[l.pos].val);
      ++l.count;
    }
  }
  return l.pos < kCap;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const unsigned threads = static_cast<unsigned>(cli.get_int("threads", 4));
  tm::Algo algo = tm::Algo::kPartHtm;
  if (cli.has("algo") && !tm::parse_algo(cli.get("algo"), algo)) {
    std::fprintf(stderr, "unknown --algo %s\n", cli.get("algo").c_str());
    return 2;
  }

  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
  auto backend = tm::make_backend(algo, rt, {});
  Store store{tm::TmHeap::instance().alloc_array<Slot>(kCap)};

  // Invariant: every multi-put writes the same value to 4 related keys, so
  // any committed scan must see sum divisible by the group value pattern.
  std::atomic<std::uint64_t> scans{0}, broken_groups{0};
  run_threads(threads, [&](unsigned tid) {
    auto w = backend->make_worker(tid);
    for (int i = 0; i < 500; ++i) {
      if (i % 25 == 24) {
        ScanLocals l{};
        tm::Txn t;
        t.step = &scan_step;
        t.env = &store;
        t.locals = &l;
        t.locals_bytes = sizeof(l);
        backend->execute(*w, t);
        scans.fetch_add(1);
        // Each group contributes 4 entries with equal values: entry count
        // must be a multiple of 4 in any snapshot.
        if (l.count % 4 != 0) broken_groups.fetch_add(1);
      } else {
        const std::uint64_t g = w->rng().next() | 1;
        MultiPutLocals l{};
        for (int k = 0; k < 4; ++k) {
          l.keys[k] = mix64(g + k) | 1;  // 4 distinct nonzero keys per group
          l.vals[k] = g;
        }
        tm::Txn t;
        t.step = &multi_put_step;
        t.env = &store;
        t.locals = &l;
        t.locals_bytes = sizeof(l);
        backend->execute(*w, t);
      }
    }
  });

  std::printf("%s: %llu scans, %llu saw a torn multi-put group\n",
              tm::to_string(algo), static_cast<unsigned long long>(scans.load()),
              static_cast<unsigned long long>(broken_groups.load()));
  return broken_groups.load() == 0 ? 0 : 1;
}
