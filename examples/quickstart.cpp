// Quickstart: the smallest complete PART-HTM program.
//
// Builds a runtime (the simulated best-effort HTM device), a PART-HTM
// backend on top of it, and runs concurrent transactions of three sizes so
// all three execution paths appear:
//   - a small counter increment      -> fast path (one hardware txn)
//   - a multi-segment bulk update    -> partitioned path (sub-HTM txns)
//   - an irrevocable operation       -> slow path (global lock)
//
// Run:  ./quickstart [--threads 4]
#include <cstdio>

#include "sim/runtime.hpp"
#include "tm/backend.hpp"
#include "tm/heap.hpp"
#include "util/cli.hpp"
#include "util/threads.hpp"

using namespace phtm;

namespace {

struct Shared {
  std::uint64_t* counter;
  std::uint64_t* bulk;  // 1024 cache lines: larger than the simulated L1
};

// Small transaction: read-modify-write one word.
bool increment_step(tm::Ctx& c, const void* env, void*, unsigned) {
  auto* counter = static_cast<const Shared*>(env)->counter;
  c.write(counter, c.read(counter) + 1);
  return false;  // single segment
}

// Oversized transaction: 1024 lines of writes, expressed as 16 segments.
// Under PART-HTM each segment becomes one sub-HTM transaction; every other
// backend simply runs the segments back to back.
bool bulk_step(tm::Ctx& c, const void* env, void* locals, unsigned seg) {
  auto* bulk = static_cast<const Shared*>(env)->bulk;
  const std::uint64_t stamp = *static_cast<std::uint64_t*>(locals);
  constexpr unsigned kSegments = 16;
  constexpr unsigned kLinesPerSeg = 64;
  for (unsigned i = 0; i < kLinesPerSeg; ++i)
    c.write(bulk + (seg * kLinesPerSeg + i) * 8, stamp);
  return seg + 1 < kSegments;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const unsigned threads = static_cast<unsigned>(cli.get_int("threads", 4));

  // 1. The simulated HTM device (Haswell-like resource limits).
  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());

  // 2. The TM backend. Swap the enum to compare algorithms.
  auto backend = tm::make_backend(tm::Algo::kPartHtm, rt, {});

  // 3. Shared data lives in the TM heap (cache-line aligned, shadow locks
  //    for PART-HTM-O).
  auto& heap = tm::TmHeap::instance();
  Shared shared{heap.alloc_array<std::uint64_t>(1),
                heap.alloc_array<std::uint64_t>(1024 * 8)};

  std::vector<StatSheet> sheets(threads);
  run_threads(threads, [&](unsigned tid) {
    auto worker = backend->make_worker(tid);
    for (int i = 0; i < 200; ++i) {
      // Fast-path-sized transaction.
      tm::Txn inc;
      inc.step = &increment_step;
      inc.env = &shared;
      backend->execute(*worker, inc);

      if (i % 20 == 0) {
        // Resource-limited transaction: PART-HTM partitions it instead of
        // grabbing the global lock.
        std::uint64_t stamp = (std::uint64_t{tid} << 32) | i;
        tm::Txn bulk;
        bulk.step = &bulk_step;
        bulk.env = &shared;
        bulk.locals = &stamp;
        bulk.locals_bytes = sizeof(stamp);
        backend->execute(*worker, bulk);
      }

      if (i == 100) {
        // Irrevocable work must run in mutual exclusion.
        tm::Txn irrevocable;
        irrevocable.step = &increment_step;
        irrevocable.env = &shared;
        irrevocable.irrevocable = true;
        backend->execute(*worker, irrevocable);
      }
    }
    sheets[tid] = worker->stats();
  });

  const auto s = StatSummary::aggregate(sheets);
  std::printf("counter = %llu (expected %u)\n",
              static_cast<unsigned long long>(*shared.counter), threads * 201);
  std::printf("commits: HTM %.1f%%  partitioned(SW) %.1f%%  global-lock %.1f%%\n",
              s.commit_pct(CommitPath::kHtm), s.commit_pct(CommitPath::kSoftware),
              s.commit_pct(CommitPath::kGlobalLock));
  std::printf("aborts: conflict %.1f%%  capacity %.1f%%  other %.1f%%\n",
              s.abort_pct(AbortCause::kConflict), s.abort_pct(AbortCause::kCapacity),
              s.abort_pct(AbortCause::kOther));
  return *shared.counter == threads * 201ull ? 0 : 1;
}
