// EigenBench-style configurable TM workload [18] (paper Sec. 7.3, Fig. 6).
//
// Two configurations from the paper:
//   mixed — 50% short transactions (50 reads + 5 writes on a disjoint
//           1024-word slice) and 50% long transactions that interleave
//           non-transactional computation between their operations. The
//           long transactions are duration-bound in HTM; PART-HTM's
//           partitioned path additionally runs the computation segments
//           *outside* sub-HTM transactions (SegKind::kSw).
//   hot   — high contention: a shared 32K-word hot array, 10K reads and
//           100 writes per transaction with 50% repeated accesses.
#pragma once

#include <cstdint>

#include "tm/api.hpp"
#include "tm/heap.hpp"
#include "util/rng.hpp"

namespace phtm::apps {

class EigenApp {
 public:
  enum class Mode { kMixed, kHot };

  struct Config {
    Mode mode = Mode::kMixed;
    // mixed
    unsigned slice_words = 1024;
    unsigned short_reads = 50;
    unsigned short_writes = 5;
    unsigned long_ops = 400;        ///< reads+writes of a long transaction
    /// Compute between operation bursts: 8 gaps x 9000 = 72k ticks, beyond
    /// the 50k quantum — long transactions are duration-bound in HTM, the
    /// property Fig. 6a turns on.
    unsigned long_work_per_gap = 9000;
    unsigned ops_per_segment = 50;
    // hot
    unsigned hot_words = 32 * 1024;
    unsigned hot_reads = 10'000;
    unsigned hot_writes = 100;
    unsigned repeat_pct = 50;
    unsigned hot_ops_per_segment = 1024;

    static Config mixed() { return Config{}; }
    static Config hot() {
      Config c;
      c.mode = Mode::kHot;
      return c;
    }
  };

  struct Locals {
    std::uint64_t base;   ///< thread-private slice offset (mixed)
    std::uint64_t seed;   ///< per-transaction deterministic access stream
    std::uint64_t is_long;
    std::uint64_t acc;
  };

  EigenApp(const Config& cfg, unsigned nthreads) : cfg_(cfg), nthreads_(nthreads) {
    auto& heap = tm::TmHeap::instance();
    const std::size_t words = cfg_.mode == Mode::kHot
                                  ? cfg_.hot_words
                                  : std::size_t{cfg_.slice_words} * nthreads;
    array_ = heap.alloc_array<std::uint64_t>(words);
    env_ = Env{array_, cfg_};
  }

  tm::Txn make_txn(unsigned tid, Rng& rng, Locals& l) const {
    l.base = std::uint64_t{tid} * cfg_.slice_words;
    l.seed = rng.next() | 1;
    l.is_long = (cfg_.mode == Mode::kMixed) ? rng.below(2) : 0;
    l.acc = 0;

    tm::Txn t;
    t.env = &env_;
    t.locals = &l;
    t.locals_bytes = sizeof(Locals);
    if (cfg_.mode == Mode::kHot) {
      t.step = &step_hot;
    } else {
      t.step = &step_mixed;
      t.seg_kind = &seg_kind_mixed;
    }
    return t;
  }

 private:
  struct Env {
    std::uint64_t* array;
    Config cfg;
  };

  static std::uint64_t next_rand(std::uint64_t& s) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }

  // --- mixed: short txns are single-segment; long txns alternate
  //     [ops segment][compute segment] pairs -------------------------------

  static tm::SegKind seg_kind_mixed(const void*, const void*, unsigned seg) {
    // Odd segments of long transactions are pure computation. Short
    // transactions never reach seg 1, so the classification is harmless.
    return (seg % 2 == 1) ? tm::SegKind::kSw : tm::SegKind::kHw;
  }

  static bool step_mixed(tm::Ctx& c, const void* envp, void* lp, unsigned seg) {
    const Env& e = *static_cast<const Env*>(envp);
    Locals& l = *static_cast<Locals*>(lp);
    std::uint64_t* a = e.array;

    if (!l.is_long) {
      // Short transaction: disjoint reads then writes in the private slice.
      std::uint64_t s = l.seed;
      std::uint64_t acc = 0;
      for (unsigned i = 0; i < e.cfg.short_reads; ++i)
        acc += c.read(a + l.base + next_rand(s) % e.cfg.slice_words);
      for (unsigned i = 0; i < e.cfg.short_writes; ++i)
        c.write(a + l.base + next_rand(s) % e.cfg.slice_words, acc + i);
      return false;
    }

    if (seg % 2 == 1) {
      // Non-transactional computation between operation bursts.
      c.work(e.cfg.long_work_per_gap);
      return (seg + 1) * e.cfg.ops_per_segment / 2 < e.cfg.long_ops;
    }

    // Operation burst: ops_per_segment accesses (1 write per 10 reads).
    std::uint64_t s = l.seed + seg;
    std::uint64_t acc = l.acc;
    for (unsigned i = 0; i < e.cfg.ops_per_segment; ++i) {
      const std::uint64_t idx = l.base + next_rand(s) % e.cfg.slice_words;
      if (i % 10 == 9)
        c.write(a + idx, acc);
      else
        acc += c.read(a + idx);
    }
    l.acc = acc;
    return true;  // a compute segment always follows
  }

  // --- hot: large conflicting transactions over the shared array ----------

  static bool step_hot(tm::Ctx& c, const void* envp, void* lp, unsigned seg) {
    const Env& e = *static_cast<const Env*>(envp);
    Locals& l = *static_cast<Locals*>(lp);
    std::uint64_t* a = e.array;
    const unsigned total_ops = e.cfg.hot_reads + e.cfg.hot_writes;
    const unsigned per_seg = e.cfg.hot_ops_per_segment;
    const unsigned lo = seg * per_seg;
    unsigned hi = lo + per_seg;
    if (hi > total_ops) hi = total_ops;

    std::uint64_t s = l.seed + seg * 0x9e37u;
    std::uint64_t last = 0;
    std::uint64_t acc = l.acc;
    for (unsigned i = lo; i < hi; ++i) {
      std::uint64_t idx;
      if (next_rand(s) % 100 < e.cfg.repeat_pct && i != lo) {
        idx = last;  // repeated access
      } else {
        idx = next_rand(s) % e.cfg.hot_words;
        last = idx;
      }
      // Writes are spread uniformly through the transaction.
      if (next_rand(s) % total_ops < e.cfg.hot_writes)
        c.write(a + idx, acc + i);
      else
        acc += c.read(a + idx);
    }
    l.acc = acc;
    return hi < total_ops;
  }

  Config cfg_;
  unsigned nthreads_;
  std::uint64_t* array_ = nullptr;
  Env env_{};
};

}  // namespace phtm::apps
