// Sorted linked-list set micro-benchmark (paper Sec. 7.1, Fig. 4).
//
// Transactions traverse from the head to the requested key, which makes the
// read set proportional to list size: small lists (1K) fit best-effort HTM,
// large lists (10K) are resource-failure bound — the contrast Fig. 4 draws.
// Write operations (insert/remove) are balanced so size stays stable.
//
// The transaction body is a traversal state machine: each segment advances
// up to `nodes_per_segment` hops (a partition point every K nodes — the
// manual static-profiler partitioning of Sec. 5.3.1), then the final
// segment performs the mutation.
#pragma once

#include <cstdint>
#include <vector>

#include "tm/api.hpp"
#include "tm/heap.hpp"
#include "util/rng.hpp"

namespace phtm::apps {

class ListApp {
 public:
  struct Config {
    unsigned initial_size = 1000;
    unsigned write_pct = 50;        ///< % of insert+remove (balanced halves)
    unsigned nodes_per_segment = 64;
    unsigned key_space = 0;         ///< default: 2 * initial_size
  };

  enum Op : std::uint64_t { kContains = 0, kInsert = 1, kRemove = 2 };

  /// One node per cache line so traversals have hardware-realistic
  /// footprints and neighboring nodes never share a conflict line.
  struct alignas(64) Node {
    std::uint64_t key;
    std::uint64_t next;  ///< encoded Node* (0 = null)
    std::uint64_t pad[6];
  };
  static_assert(sizeof(Node) == 64);

  struct Locals {
    std::uint64_t key;
    std::uint64_t op;
    std::uint64_t prev;      ///< address of the next-field being followed
    std::uint64_t cur;       ///< encoded Node* under inspection
    std::uint64_t new_node;  ///< preallocated node for insert (encoded)
    std::uint64_t result;    ///< 1 if op took effect / key found
  };

  explicit ListApp(const Config& cfg) : cfg_(cfg) {
    if (cfg_.key_space == 0) cfg_.key_space = cfg_.initial_size * 2;
    auto& heap = tm::TmHeap::instance();
    head_ = heap.alloc_array<std::uint64_t>(1);
    // Populate with every other key so inserts and removes both succeed.
    Node* prev = nullptr;
    for (unsigned i = 0; i < cfg_.initial_size; ++i) {
      Node* n = heap.alloc_array<Node>(1);
      n->key = 2 * i + 1;
      n->next = 0;
      if (prev == nullptr)
        *head_ = enc(n);
      else
        prev->next = enc(n);
      prev = n;
    }
    env_ = Env{head_, cfg_.nodes_per_segment};
  }

  /// Node pool for one worker thread: inserts draw from it, removes return
  /// to it (safe reuse — all node-field accesses are transactional).
  class NodePool {
   public:
    std::uint64_t take() {
      if (free_.empty()) {
        Node* n = tm::TmHeap::instance().alloc_array<Node>(1);
        return enc(n);
      }
      const std::uint64_t p = free_.back();
      free_.pop_back();
      return p;
    }
    void give(std::uint64_t p) { free_.push_back(p); }

   private:
    std::vector<std::uint64_t> free_;
  };

  /// Prepare one random operation. Caller executes the returned Txn and then
  /// calls finish() to recycle nodes.
  tm::Txn make_txn(Rng& rng, NodePool& pool, Locals& l) const {
    const std::uint64_t r = rng.below(100);
    if (r < cfg_.write_pct / 2)
      l.op = kInsert;
    else if (r < cfg_.write_pct)
      l.op = kRemove;
    else
      l.op = kContains;
    l.key = rng.below(cfg_.key_space);
    l.prev = reinterpret_cast<std::uint64_t>(env_.head);
    l.cur = 0;
    l.new_node = (l.op == kInsert) ? pool.take() : 0;
    l.result = 0;

    tm::Txn t;
    t.step = &step;
    t.env = &env_;
    t.locals = &l;
    t.locals_bytes = sizeof(Locals);
    return t;
  }

  /// Recycle nodes after the transaction committed.
  void finish(const Locals& l, NodePool& pool) const {
    if (l.op == kInsert && !l.result && l.new_node) pool.give(l.new_node);
    if (l.op == kRemove && l.result) pool.give(l.cur);
  }

  /// Non-transactional audit (quiescent state only).
  std::uint64_t size() const {
    std::uint64_t n = 0;
    for (std::uint64_t p = *head_; p; p = dec(p)->next) ++n;
    return n;
  }
  bool sorted_and_unique() const {
    std::uint64_t last = 0;
    bool first = true;
    for (std::uint64_t p = *head_; p; p = dec(p)->next) {
      if (!first && dec(p)->key <= last) return false;
      last = dec(p)->key;
      first = false;
    }
    return true;
  }
  bool contains_seq(std::uint64_t key) const {
    for (std::uint64_t p = *head_; p; p = dec(p)->next)
      if (dec(p)->key == key) return true;
    return false;
  }

 private:
  struct Env {
    std::uint64_t* head;
    unsigned nodes_per_segment;
  };

  static std::uint64_t enc(Node* n) { return reinterpret_cast<std::uint64_t>(n); }
  static Node* dec(std::uint64_t p) { return reinterpret_cast<Node*>(p); }

  static bool step(tm::Ctx& c, const void* envp, void* lp, unsigned seg) {
    const Env& e = *static_cast<const Env*>(envp);
    Locals& l = *static_cast<Locals*>(lp);
    if (seg == 0) {
      l.prev = reinterpret_cast<std::uint64_t>(e.head);
      l.cur = c.read(e.head);
    }
    // Traverse up to K hops, then either continue in the next segment or
    // finish the operation here.
    for (unsigned hop = 0; hop < e.nodes_per_segment; ++hop) {
      if (l.cur == 0 || c.read(&dec(l.cur)->key) >= l.key) {
        apply(c, l);
        return false;
      }
      l.prev = reinterpret_cast<std::uint64_t>(&dec(l.cur)->next);
      l.cur = c.read(&dec(l.cur)->next);
    }
    return true;  // partition point: next segment keeps walking
  }

  static void apply(tm::Ctx& c, Locals& l) {
    auto* prev_field = reinterpret_cast<std::uint64_t*>(l.prev);
    const bool found = l.cur != 0 && c.read(&dec(l.cur)->key) == l.key;
    switch (l.op) {
      case kContains:
        l.result = found;
        break;
      case kInsert:
        if (!found) {
          Node* n = dec(l.new_node);
          c.write(&n->key, l.key);
          c.write(&n->next, l.cur);
          c.write(prev_field, l.new_node);
          l.result = 1;
        }
        break;
      case kRemove:
        if (found) {
          c.write(prev_field, c.read(&dec(l.cur)->next));
          l.result = 1;
        }
        break;
    }
  }

  Config cfg_;
  std::uint64_t* head_ = nullptr;
  Env env_{};
};

}  // namespace phtm::apps
