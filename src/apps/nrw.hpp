// N-Reads M-Writes micro-benchmark (RSTM [36]; paper Sec. 7.1, Fig. 3).
//
// Two fixed 100k-element arrays; each transaction reads N elements from the
// source and writes M into the destination. Accesses are disjoint across
// threads (writes always; reads disjoint in configs a/c, whole-array in b),
// so all HTM aborts stem from resource limits or metadata false conflicts —
// exactly what Fig. 3 isolates.
//
// Configurations:
//   A (Fig. 3a): N = M = 10               — everything fits in HTM
//   B (Fig. 3b): N = 100'000, M = 100     — read-capacity bound
//   C (Fig. 3c): 100 x (read, FP work, write) — duration bound
#pragma once

#include <cstdint>

#include "tm/api.hpp"
#include "tm/backend.hpp"
#include "tm/heap.hpp"

namespace phtm::apps {

class NrwApp {
 public:
  struct Config {
    unsigned array_size = 100'000;
    unsigned n_reads = 10;
    unsigned m_writes = 10;
    bool read_whole_array = false;   ///< config B: every txn scans the source
    unsigned iter_work = 0;          ///< config C: FP work ticks per iteration
    bool interleaved = false;        ///< config C: read/work/write loop
    unsigned reads_per_segment = 512;   ///< partition sizing (static profiler)
    unsigned writes_per_segment = 256;  ///< write-phase partition sizing
    unsigned iters_per_segment = 25;    ///< config C: per paper, 100/4

    static Config a() { return Config{}; }
    static Config b() {
      Config c;
      c.n_reads = 100'000;
      c.m_writes = 100;
      c.read_whole_array = true;
      return c;
    }
    static Config c() {
      Config c;
      c.n_reads = 100;
      c.m_writes = 100;
      c.interleaved = true;
      c.iter_work = 600;  // 100 iters x 600 > the 50k tick quantum
      return c;
    }
  };

  struct Locals {
    std::uint64_t base;  ///< this thread's disjoint slice offset
    std::uint64_t n, m;
    std::uint64_t rps;   ///< reads per segment (partition granularity)
    std::uint64_t wps;   ///< writes per segment
    std::uint64_t acc;
  };

  NrwApp(const Config& cfg, unsigned nthreads) : cfg_(cfg), nthreads_(nthreads) {
    auto& heap = tm::TmHeap::instance();
    src_ = heap.alloc_array<std::uint64_t>(cfg_.array_size);
    dst_ = heap.alloc_array<std::uint64_t>(cfg_.array_size);
    for (unsigned i = 0; i < cfg_.array_size; ++i) src_[i] = i;
    env_ = Env{src_, dst_, cfg_};
  }

  /// Build this thread's transaction. `locals` must outlive execute().
  tm::Txn make_txn(unsigned tid, Locals& l) const {
    const std::uint64_t slice = cfg_.array_size / nthreads_;
    l.base = std::uint64_t{tid} * slice;
    l.n = cfg_.read_whole_array ? cfg_.array_size : cfg_.n_reads;
    l.m = cfg_.m_writes;
    l.rps = cfg_.reads_per_segment;
    l.wps = cfg_.writes_per_segment;
    l.acc = 0;

    tm::Txn t;
    t.env = &env_;
    t.locals = &l;
    t.locals_bytes = sizeof(Locals);
    t.step = cfg_.interleaved ? &step_interleaved : &step_bulk;
    return t;
  }

  std::uint64_t* dst() const { return dst_; }
  const Config& config() const { return cfg_; }

 private:
  struct Env {
    std::uint64_t* src;
    std::uint64_t* dst;
    Config cfg;
  };

  /// Configs A/B: read phase chunked into segments, then one write segment
  /// per `reads_per_segment` writes.
  static bool step_bulk(tm::Ctx& c, const void* envp, void* lp, unsigned seg) {
    const Env& e = *static_cast<const Env*>(envp);
    Locals& l = *static_cast<Locals*>(lp);
    const unsigned rps = static_cast<unsigned>(l.rps);
    const unsigned read_segs = (l.n + rps - 1) / rps;
    if (seg < read_segs) {
      const std::uint64_t lo = std::uint64_t{seg} * rps;
      const std::uint64_t hi = lo + rps < l.n ? lo + rps : l.n;
      // Config B scans the array from 0; A reads the private slice.
      const std::uint64_t base = e.cfg.read_whole_array ? 0 : l.base;
      std::uint64_t acc = l.acc;
      for (std::uint64_t i = lo; i < hi; ++i)
        acc += c.read(e.src + (base + i) % e.cfg.array_size);
      l.acc = acc;
      return true;
    }
    // Write phase: M disjoint writes into this thread's slice, chunked.
    const unsigned wps = static_cast<unsigned>(l.wps);
    const std::uint64_t wseg = seg - read_segs;
    const std::uint64_t lo = wseg * wps;
    const std::uint64_t hi = lo + wps < l.m ? lo + wps : l.m;
    for (std::uint64_t i = lo; i < hi; ++i)
      c.write(e.dst + l.base + i, l.acc + i);
    return hi < l.m;
  }

  /// Config C: 100 x { read one element, FP work, write it back }, with a
  /// partition point every iters_per_segment iterations.
  static bool step_interleaved(tm::Ctx& c, const void* envp, void* lp, unsigned seg) {
    const Env& e = *static_cast<const Env*>(envp);
    Locals& l = *static_cast<Locals*>(lp);
    const unsigned ips = e.cfg.iters_per_segment;
    const std::uint64_t lo = std::uint64_t{seg} * ips;
    std::uint64_t hi = lo + ips;
    if (hi > l.n) hi = l.n;
    for (std::uint64_t i = lo; i < hi; ++i) {
      const std::uint64_t v = c.read(e.src + l.base + i);
      c.work(e.cfg.iter_work);  // floating-point computation
      c.write(e.dst + l.base + i, v * 3 + 1);
    }
    return hi < l.n;
  }

  Config cfg_;
  unsigned nthreads_;
  std::uint64_t* src_ = nullptr;
  std::uint64_t* dst_ = nullptr;
  Env env_{};
};

}  // namespace phtm::apps
