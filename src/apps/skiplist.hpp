// Skip-list set benchmark (beyond-paper workload).
//
// The linked list of Fig. 4 makes read-set size linear in the element
// count; a skip list makes it logarithmic, which puts large structures
// *back inside* best-effort HTM budgets. Comparing Fig. 4b (list, 10K)
// with the same-size skip list separates "PART-HTM wins because traversals
// are resource-bound" from data-structure-independent overheads — an
// ablation the paper's conclusions invite.
//
// Same operation mix and state-machine style as ListApp: per-segment bound
// on traversal hops, mutation in the final segment. Tower updates of an
// insert/remove happen in one segment (towers are <= kMaxLevel cells).
#pragma once

#include <cstdint>
#include <vector>

#include "tm/api.hpp"
#include "tm/heap.hpp"
#include "util/rng.hpp"

namespace phtm::apps {

class SkipListApp {
 public:
  static constexpr unsigned kMaxLevel = 12;

  struct Config {
    unsigned initial_size = 10'000;
    unsigned write_pct = 50;
    unsigned hops_per_segment = 64;
    unsigned key_space = 0;  ///< default 2 * initial_size
  };

  enum Op : std::uint64_t { kContains = 0, kInsert = 1, kRemove = 2 };

  /// Node: key + tower of next pointers; one cache line for key+low levels,
  /// a second for the upper tower.
  struct alignas(64) Node {
    std::uint64_t key;
    std::uint64_t level;  // number of valid next[] entries
    std::uint64_t next[kMaxLevel];
    std::uint64_t pad[2];
  };
  static_assert(sizeof(Node) == 128);

  struct Locals {
    std::uint64_t key, op, result;
    std::uint64_t lvl;                 // current search level
    std::uint64_t pred;                // encoded Node* under inspection
    std::uint64_t preds[kMaxLevel];    // per-level predecessors
    std::uint64_t new_node;            // preallocated (insert)
    std::uint64_t new_level;
    std::uint64_t victim;              // found node (remove)
  };

  explicit SkipListApp(const Config& cfg, std::uint64_t seed = 99) : cfg_(cfg) {
    if (cfg_.key_space == 0) cfg_.key_space = cfg_.initial_size * 2;
    head_ = alloc_node();
    head_->key = 0;
    head_->level = kMaxLevel;
    Rng rng(seed);
    // Deterministic pre-population with every other key.
    for (unsigned i = 0; i < cfg_.initial_size; ++i)
      seq_insert(2 * i + 1, random_level(rng));
    env_ = Env{enc(head_), cfg_.hops_per_segment};
  }

  class NodePool {
   public:
    std::uint64_t take() {
      if (free_.empty()) return enc(alloc_node());
      const std::uint64_t p = free_.back();
      free_.pop_back();
      return p;
    }
    void give(std::uint64_t p) { free_.push_back(p); }

   private:
    std::vector<std::uint64_t> free_;
  };

  static unsigned random_level(Rng& rng) {
    unsigned lvl = 1;
    while (lvl < kMaxLevel && rng.chance(1, 2)) ++lvl;
    return lvl;
  }

  tm::Txn make_txn(Rng& rng, NodePool& pool, Locals& l) const {
    const std::uint64_t r = rng.below(100);
    l.op = r < cfg_.write_pct / 2 ? kInsert
           : r < cfg_.write_pct  ? kRemove
                                 : kContains;
    // Keys start at 1 (head holds the sentinel minimum).
    l.key = 1 + rng.below(cfg_.key_space);
    l.result = 0;
    l.lvl = kMaxLevel - 1;
    l.pred = env_.head;
    l.victim = 0;
    l.new_node = l.op == kInsert ? pool.take() : 0;
    l.new_level = random_level(rng);

    tm::Txn t;
    t.step = &step;
    t.env = &env_;
    t.locals = &l;
    t.locals_bytes = sizeof(Locals);
    return t;
  }

  void finish(const Locals& l, NodePool& pool) const {
    if (l.op == kInsert && !l.result && l.new_node) pool.give(l.new_node);
    if (l.op == kRemove && l.result) pool.give(l.victim);
  }

  // Quiescent audits.
  std::uint64_t size() const {
    std::uint64_t n = 0;
    for (std::uint64_t p = head_->next[0]; p; p = dec(p)->next[0]) ++n;
    return n;
  }
  bool sorted_and_unique() const {
    std::uint64_t last = 0;
    for (std::uint64_t p = head_->next[0]; p; p = dec(p)->next[0]) {
      if (dec(p)->key <= last) return false;
      last = dec(p)->key;
    }
    return true;
  }
  /// Every tower level must be a sub-sequence of level 0.
  bool towers_consistent() const {
    for (unsigned lvl = 1; lvl < kMaxLevel; ++lvl) {
      std::uint64_t p0 = head_->next[0];
      for (std::uint64_t p = head_->next[lvl]; p; p = dec(p)->next[lvl]) {
        while (p0 && p0 != p) p0 = dec(p0)->next[0];
        if (p0 != p) return false;  // node linked at lvl but not at 0
      }
    }
    return true;
  }
  bool contains_seq(std::uint64_t key) const {
    for (std::uint64_t p = head_->next[0]; p; p = dec(p)->next[0])
      if (dec(p)->key == key) return true;
    return false;
  }

 private:
  struct Env {
    std::uint64_t head;
    unsigned hops_per_segment;
  };

  static Node* alloc_node() {
    Node* n = tm::TmHeap::instance().alloc_array<Node>(1);
    return n;
  }
  static std::uint64_t enc(Node* n) { return reinterpret_cast<std::uint64_t>(n); }
  static Node* dec(std::uint64_t p) { return reinterpret_cast<Node*>(p); }

  void seq_insert(std::uint64_t key, unsigned level) {
    Node* n = alloc_node();
    n->key = key;
    n->level = level;
    Node* pred = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      while (pred->next[lvl] && dec(pred->next[lvl])->key < key)
        pred = dec(pred->next[lvl]);
      if (lvl < static_cast<int>(level)) {
        n->next[lvl] = pred->next[lvl];
        pred->next[lvl] = enc(n);
      }
    }
  }

  /// Traversal state machine: descend levels recording predecessors, at
  /// most hops_per_segment pointer chases per segment.
  static bool step(tm::Ctx& c, const void* envp, void* lp, unsigned) {
    const Env& e = *static_cast<const Env*>(envp);
    Locals& l = *static_cast<Locals*>(lp);
    unsigned hops = 0;
    while (hops < e.hops_per_segment) {
      Node* pred = dec(l.pred);
      const std::uint64_t nxt = c.read(&pred->next[l.lvl]);
      if (nxt != 0 && c.read(&dec(nxt)->key) < l.key) {
        l.pred = nxt;
        ++hops;
        continue;
      }
      l.preds[l.lvl] = l.pred;
      if (l.lvl > 0) {
        --l.lvl;
        continue;
      }
      apply(c, l);
      return false;
    }
    return true;  // partition point
  }

  static void apply(tm::Ctx& c, Locals& l) {
    Node* pred0 = dec(l.preds[0]);
    const std::uint64_t cur = c.read(&pred0->next[0]);
    const bool found = cur != 0 && c.read(&dec(cur)->key) == l.key;
    switch (l.op) {
      case kContains:
        l.result = found;
        break;
      case kInsert: {
        if (found) break;
        Node* n = dec(l.new_node);
        c.write(&n->key, l.key);
        c.write(&n->level, l.new_level);
        for (unsigned lvl = 0; lvl < l.new_level; ++lvl) {
          Node* pred = dec(l.preds[lvl]);
          c.write(&n->next[lvl], c.read(&pred->next[lvl]));
          c.write(&pred->next[lvl], l.new_node);
        }
        l.result = 1;
        break;
      }
      case kRemove: {
        if (!found) break;
        Node* victim = dec(cur);
        const std::uint64_t vlevel = c.read(&victim->level);
        for (unsigned lvl = 0; lvl < vlevel; ++lvl) {
          Node* pred = dec(l.preds[lvl]);
          // The recorded predecessor is exact for level 0; for upper levels
          // the victim may not be linked past pred (shorter tower) — only
          // unlink where pred actually points at it.
          if (c.read(&pred->next[lvl]) == cur)
            c.write(&pred->next[lvl], c.read(&victim->next[lvl]));
        }
        l.victim = cur;
        l.result = 1;
        break;
      }
    }
  }

  Config cfg_;
  Node* head_ = nullptr;
  Env env_{};
};

}  // namespace phtm::apps
