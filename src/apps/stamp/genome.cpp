// Genome (STAMP): gene sequencing. Phase 1 deduplicates DNA segments
// through a shared hash set (short insert transactions, conflicts only on
// hash-neighborhood collisions); phase 2 links unique segments into a
// chain by matching overlaps (short read-modify-write transactions).
// HTM-friendly workload (Fig. 5i).
#include "apps/stamp/stamp.hpp"

#include <vector>

namespace phtm::apps {
namespace {

constexpr unsigned kUnique = 4096;
constexpr unsigned kDuplication = 4;  // each segment appears this many times
constexpr unsigned kSetCap = 16384;   // power of two

struct Env {
  std::uint64_t* set_keys;   // open addressing; 0 = empty
  std::uint64_t* set_links;  // successor chain built in phase 2
};

struct Locals {
  std::uint64_t key;
  std::uint64_t succ;
  std::uint64_t inserted;
};

bool step_insert(tm::Ctx& c, const void* envp, void* lp, unsigned) {
  const Env& e = *static_cast<const Env*>(envp);
  Locals& l = *static_cast<Locals*>(lp);
  std::uint64_t slot = mix64(l.key) & (kSetCap - 1);
  for (;;) {
    const std::uint64_t k = c.read(&e.set_keys[slot]);
    if (k == l.key) {
      l.inserted = 0;  // duplicate
      return false;
    }
    if (k == 0) {
      c.write(&e.set_keys[slot], l.key);
      l.inserted = 1;
      return false;
    }
    slot = (slot + 1) & (kSetCap - 1);
  }
}

bool step_link(tm::Ctx& c, const void* envp, void* lp, unsigned) {
  const Env& e = *static_cast<const Env*>(envp);
  Locals& l = *static_cast<Locals*>(lp);
  // Find the key's slot, then record its successor (one write).
  std::uint64_t slot = mix64(l.key) & (kSetCap - 1);
  for (;;) {
    const std::uint64_t k = c.read(&e.set_keys[slot]);
    if (k == l.key) break;
    if (k == 0) return false;  // should not happen after phase 1
    slot = (slot + 1) & (kSetCap - 1);
  }
  c.write(&e.set_links[slot], l.succ);
  return false;
}

class GenomeApp final : public StampApp {
 public:
  const char* name() const override { return "genome"; }

  void init(unsigned nthreads, std::uint64_t seed) override {
    auto& heap = tm::TmHeap::instance();
    Rng rng(seed);
    keys_.resize(kUnique);
    for (auto& k : keys_) k = rng.next() | 1;  // nonzero keys
    pool_.clear();
    for (unsigned d = 0; d < kDuplication; ++d)
      for (const auto k : keys_) pool_.push_back(k);
    for (std::size_t i = pool_.size(); i > 1; --i)
      std::swap(pool_[i - 1], pool_[rng.below(i)]);

    set_keys_ = heap.alloc_array<std::uint64_t>(kSetCap);
    set_links_ = heap.alloc_array<std::uint64_t>(kSetCap);
    env_ = Env{set_keys_, set_links_};
    insert_q_.reset(pool_.size());
    link_q_.reset(kUnique - 1);
    inserted_.store(0);
    barrier_ = std::make_unique<Barrier>(nthreads);
  }

  void run_thread(tm::Backend& be, tm::Worker& w, unsigned, unsigned) override {
    // Phase 1: dedup through the shared set.
    std::uint64_t idx;
    std::uint64_t mine = 0;
    while (insert_q_.claim(idx)) {
      Locals l{};
      l.key = pool_[idx];
      tm::Txn t;
      t.step = &step_insert;
      t.env = &env_;
      t.locals = &l;
      t.locals_bytes = sizeof(l);
      be.execute(w, t);
      mine += l.inserted;
    }
    // relaxed: result tally, read only after the run's barrier/joins.
    inserted_.fetch_add(mine, std::memory_order_relaxed);
    barrier_->arrive_and_wait();

    // Phase 2: chain segment i -> i+1 (overlap matching).
    while (link_q_.claim(idx)) {
      Locals l{};
      l.key = keys_[idx];
      l.succ = keys_[idx + 1];
      tm::Txn t;
      t.step = &step_link;
      t.env = &env_;
      t.locals = &l;
      t.locals_bytes = sizeof(l);
      be.execute(w, t);
      sim::burn_work(100);  // overlap computation
    }
  }

  bool verify() override {
    if (inserted_.load() != kUnique) return false;
    // Walk the chain from keys_[0]; it must visit every unique segment.
    std::uint64_t count = 1;
    std::uint64_t cur = keys_[0];
    while (count < kUnique) {
      std::uint64_t slot = mix64(cur) & (kSetCap - 1);
      while (set_keys_[slot] != cur) {
        if (set_keys_[slot] == 0) return false;
        slot = (slot + 1) & (kSetCap - 1);
      }
      const std::uint64_t next = set_links_[slot];
      if (next == 0) return false;
      cur = next;
      ++count;
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> pool_;
  std::uint64_t* set_keys_ = nullptr;
  std::uint64_t* set_links_ = nullptr;
  Env env_{};
  WorkCounter insert_q_, link_q_;
  std::atomic<std::uint64_t> inserted_{0};
  std::unique_ptr<Barrier> barrier_;
};

}  // namespace

std::unique_ptr<StampApp> make_genome() { return std::make_unique<GenomeApp>(); }

}  // namespace phtm::apps
