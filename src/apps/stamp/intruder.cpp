// Intruder (STAMP): network intrusion detection. Threads pull packet
// fragments off a shared queue (short, head-contended transaction),
// assemble them in a shared flow table (medium transaction over an open
// hash), and run signature detection on completed flows (local compute).
// Short conflicting transactions, no resource failures (Fig. 5e).
#include "apps/stamp/stamp.hpp"

#include <vector>

namespace phtm::apps {
namespace {

constexpr unsigned kFlows = 2048;
constexpr unsigned kMaxFrags = 8;
constexpr unsigned kTableCap = 8192;  // open-addressing slots (power of two)

struct FlowSlot {
  std::uint64_t flow_id;   // 0 = empty, else id+1
  std::uint64_t frag_mask;
  std::uint64_t nfrags;
  std::uint64_t done;
  std::uint64_t pad[4];
};
static_assert(sizeof(FlowSlot) == 64);

struct Env {
  std::uint64_t* queue;     // packed fragments
  std::uint64_t* head;      // shared dequeue cursor
  std::uint64_t* qsize;
  FlowSlot* table;
};

struct Locals {
  std::uint64_t frag;       // packed fragment (0 = queue empty)
  std::uint64_t completed;  // flow id+1 if this insert completed the flow
};

// fragment encoding: flow_id (32) | nfrags (16) | frag_idx (16)
std::uint64_t pack(std::uint64_t flow, std::uint64_t n, std::uint64_t i) {
  return (flow << 32) | (n << 16) | i;
}

bool step_dequeue(tm::Ctx& c, const void* envp, void* lp, unsigned) {
  const Env& e = *static_cast<const Env*>(envp);
  Locals& l = *static_cast<Locals*>(lp);
  const std::uint64_t h = c.read(e.head);
  if (h >= c.read(e.qsize)) {
    l.frag = 0;
    return false;
  }
  l.frag = c.read(e.queue + h);
  c.write(e.head, h + 1);
  return false;
}

bool step_assemble(tm::Ctx& c, const void* envp, void* lp, unsigned) {
  const Env& e = *static_cast<const Env*>(envp);
  Locals& l = *static_cast<Locals*>(lp);
  const std::uint64_t flow = l.frag >> 32;
  const std::uint64_t nfrags = (l.frag >> 16) & 0xffff;
  const std::uint64_t fidx = l.frag & 0xffff;
  // Open-addressing probe keyed by flow id.
  std::uint64_t slot = mix64(flow) & (kTableCap - 1);
  for (;;) {
    FlowSlot& s = e.table[slot];
    const std::uint64_t id = c.read(&s.flow_id);
    if (id == flow + 1) break;
    if (id == 0) {
      c.write(&s.flow_id, flow + 1);
      c.write(&s.nfrags, nfrags);
      break;
    }
    slot = (slot + 1) & (kTableCap - 1);
  }
  FlowSlot& s = e.table[slot];
  const std::uint64_t mask = c.read(&s.frag_mask) | (std::uint64_t{1} << fidx);
  c.write(&s.frag_mask, mask);
  if (mask == (std::uint64_t{1} << nfrags) - 1 && c.read(&s.done) == 0) {
    c.write(&s.done, 1);
    l.completed = flow + 1;
  }
  return false;
}

class IntruderApp final : public StampApp {
 public:
  const char* name() const override { return "intruder"; }

  void init(unsigned /*nthreads*/, std::uint64_t seed) override {
    auto& heap = tm::TmHeap::instance();
    Rng rng(seed);
    std::vector<std::uint64_t> frags;
    for (unsigned f = 0; f < kFlows; ++f) {
      const unsigned n = 1 + rng.below(kMaxFrags);
      for (unsigned i = 0; i < n; ++i) frags.push_back(pack(f, n, i));
    }
    // Shuffle so fragments of one flow arrive interleaved.
    for (std::size_t i = frags.size(); i > 1; --i)
      std::swap(frags[i - 1], frags[rng.below(i)]);

    queue_ = heap.alloc_array<std::uint64_t>(frags.size());
    for (std::size_t i = 0; i < frags.size(); ++i) queue_[i] = frags[i];
    head_ = heap.alloc_array<std::uint64_t>(1);
    qsize_ = heap.alloc_array<std::uint64_t>(1);
    *qsize_ = frags.size();
    table_ = heap.alloc_array<FlowSlot>(kTableCap);
    env_ = Env{queue_, head_, qsize_, table_};
    detected_.store(0);
  }

  void run_thread(tm::Backend& be, tm::Worker& w, unsigned, unsigned) override {
    std::uint64_t detected = 0;
    for (;;) {
      Locals l{};
      tm::Txn deq;
      deq.step = &step_dequeue;
      deq.env = &env_;
      deq.locals = &l;
      deq.locals_bytes = sizeof(l);
      be.execute(w, deq);
      if (l.frag == 0) break;  // queue drained

      tm::Txn asm_;
      asm_.step = &step_assemble;
      asm_.env = &env_;
      asm_.locals = &l;
      asm_.locals_bytes = sizeof(l);
      be.execute(w, asm_);

      if (l.completed) {
        sim::burn_work(500);  // signature detection on the complete flow
        ++detected;
      }
    }
    // relaxed: result tally, read only after the run's barrier/joins.
    detected_.fetch_add(detected, std::memory_order_relaxed);
  }

  bool verify() override {
    // Every flow assembled exactly once.
    if (detected_.load() != kFlows) return false;
    std::uint64_t done = 0;
    for (unsigned i = 0; i < kTableCap; ++i)
      if (table_[i].done) ++done;
    return done == kFlows;
  }

 private:
  std::uint64_t* queue_ = nullptr;
  std::uint64_t* head_ = nullptr;
  std::uint64_t* qsize_ = nullptr;
  FlowSlot* table_ = nullptr;
  Env env_{};
  std::atomic<std::uint64_t> detected_{0};
};

}  // namespace

std::unique_ptr<StampApp> make_intruder() { return std::make_unique<IntruderApp>(); }

}  // namespace phtm::apps
