// Kmeans (STAMP): iterative clustering. The transactional kernel updates the
// per-cluster accumulator (D sums + a count) after a non-transactional
// nearest-center search. Contention is governed by the cluster count: the
// "low" configuration spreads updates over many clusters, "high" funnels
// them through a few — short transactions, real conflicts, no resource
// failures (Fig. 5a/5b: HTM-GL wins, PART-HTM must stay closest).
#include "apps/stamp/stamp.hpp"

namespace phtm::apps {
namespace {

constexpr unsigned kDims = 4;
constexpr unsigned kPoints = 4096;
constexpr unsigned kIters = 3;

struct ClusterAcc {
  std::uint64_t count;
  std::uint64_t sum[kDims];
  std::uint64_t pad[3];
};
static_assert(sizeof(ClusterAcc) == 64);

class KmeansApp final : public StampApp {
 public:
  explicit KmeansApp(unsigned clusters, const char* nm) : k_(clusters), name_(nm) {}

  const char* name() const override { return name_; }

  void init(unsigned nthreads, std::uint64_t seed) override {
    auto& heap = tm::TmHeap::instance();
    points_ = heap.alloc_array<std::uint64_t>(std::size_t{kPoints} * kDims);
    acc_ = heap.alloc_array<ClusterAcc>(k_);
    centers_.assign(std::size_t{k_} * kDims, 0);
    Rng rng(seed);
    for (std::size_t i = 0; i < std::size_t{kPoints} * kDims; ++i)
      points_[i] = rng.below(1 << 16);
    for (std::size_t i = 0; i < centers_.size(); ++i)
      centers_[i] = rng.below(1 << 16);
    barrier_ = std::make_unique<Barrier>(nthreads);
    updates_.store(0);
  }

  void run_thread(tm::Backend& be, tm::Worker& w, unsigned tid,
                  unsigned nthreads) override {
    struct Env {
      ClusterAcc* acc;
      const std::uint64_t* point;
    };
    struct Locals {
      std::uint64_t cluster;
    };

    const unsigned chunk = (kPoints + nthreads - 1) / nthreads;
    const unsigned lo = tid * chunk;
    const unsigned hi = lo + chunk < kPoints ? lo + chunk : kPoints;

    for (unsigned iter = 0; iter < kIters; ++iter) {
      for (unsigned p = lo; p < hi; ++p) {
        const std::uint64_t* pt = points_ + std::size_t{p} * kDims;
        // Nearest-center search on the stable snapshot: non-transactional,
        // as in STAMP.
        std::uint64_t best = 0, best_d = ~std::uint64_t{0};
        for (unsigned c = 0; c < k_; ++c) {
          std::uint64_t d = 0;
          for (unsigned j = 0; j < kDims; ++j) {
            const std::int64_t diff = static_cast<std::int64_t>(pt[j]) -
                                      static_cast<std::int64_t>(centers_[c * kDims + j]);
            d += static_cast<std::uint64_t>(diff * diff);
          }
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
        Env env{acc_, pt};
        Locals l{best};
        tm::Txn t;
        t.env = &env;
        t.locals = &l;
        t.locals_bytes = sizeof(l);
        t.step = +[](tm::Ctx& c, const void* e, void* lp, unsigned) {
          const Env& env = *static_cast<const Env*>(e);
          ClusterAcc& a = env.acc[static_cast<Locals*>(lp)->cluster];
          c.write(&a.count, c.read(&a.count) + 1);
          for (unsigned j = 0; j < kDims; ++j)
            c.write(&a.sum[j], c.read(&a.sum[j]) + env.point[j]);
          return false;
        };
        be.execute(w, t);
        // relaxed: result tally, read only after the run's barrier/joins.
        updates_.fetch_add(1, std::memory_order_relaxed);
      }
      barrier_->arrive_and_wait();
      if (tid == 0) recompute_centers();
      barrier_->arrive_and_wait();
    }
  }

  bool verify() override {
    return updates_.load() == std::uint64_t{kPoints} * kIters;
  }

 private:
  void recompute_centers() {
    for (unsigned c = 0; c < k_; ++c) {
      const std::uint64_t n = acc_[c].count;
      for (unsigned j = 0; j < kDims; ++j)
        if (n) centers_[c * kDims + j] = acc_[c].sum[j] / n;
      acc_[c].count = 0;
      for (unsigned j = 0; j < kDims; ++j) acc_[c].sum[j] = 0;
    }
  }

  unsigned k_;
  const char* name_;
  std::uint64_t* points_ = nullptr;
  ClusterAcc* acc_ = nullptr;
  std::vector<std::uint64_t> centers_;
  std::unique_ptr<Barrier> barrier_;
  std::atomic<std::uint64_t> updates_{0};
};

}  // namespace

std::unique_ptr<StampApp> make_kmeans(bool high_contention) {
  return std::make_unique<KmeansApp>(high_contention ? 4 : 32,
                                     high_contention ? "kmeans-high" : "kmeans-low");
}

}  // namespace phtm::apps
