// Labyrinth (STAMP): Lee path routing on a shared grid — the paper's
// resource-failure showcase (Table 1, Fig. 5d).
//
// Each transaction routes one point-to-point path:
//   1. copy   — snapshot the bounding-box region around the endpoints into
//               a thread-private buffer. As in STAMP, the copy is
//               *uninstrumented* (raw accesses): software TMs pay nothing,
//               but hardware transactions still monitor every line, so
//               long routes blow the simulated L1 write capacity while
//               short routes fit — reproducing Table 1, where roughly half
//               of Labyrinth's transactions exceed the HTM budget (70%+
//               capacity aborts, ~50/50 HTM vs lock commits under HTM-GL).
//               PART-HTM's partitioned path spreads the copy over many
//               sub-HTM transactions instead.
//   2. route  — breadth-first expansion + backtrace on the private copy
//               (pure computation; a software segment for PART-HTM).
//   3. write  — transactionally validate that the path cells are still free
//               (reads only), then claim them. The instrumented footprint
//               is just the path, so transactions are large yet *rarely
//               conflict* — the workload class PART-HTM targets (Sec. 4).
#include "apps/stamp/stamp.hpp"

#include <mutex>
#include <vector>

namespace phtm::apps {
namespace {

constexpr unsigned kW = 64, kH = 64, kD = 2;
constexpr unsigned kCells = kW * kH * kD;
constexpr unsigned kRoutes = 64;
constexpr unsigned kMargin = 8;            // bbox expansion around endpoints
constexpr unsigned kCopyCellsPerSeg = 512;  // partition sizing (sub-HTM fit)
constexpr unsigned kMaxPath = 320;
constexpr unsigned kPathCellsPerSeg = 128;
constexpr std::uint64_t kFree = 0;

unsigned idx_of(unsigned x, unsigned y, unsigned z) { return (z * kH + y) * kW + x; }

struct Env {
  std::uint64_t* grid;   // shared grid: 0 = free, else route id
  std::uint64_t* copy;   // this thread's private snapshot buffer
};

enum Phase : std::uint64_t { kCopy = 0, kRoute, kValidate, kClaim };

struct Locals {
  std::uint64_t src, dst, route_id;
  std::uint64_t phase;
  std::uint64_t bx0, by0, bx1, by1;  // bounding box (inclusive)
  std::uint64_t copy_pos;            // progress through the bbox copy
  std::uint64_t blocked;             // validation found an occupied cell
  std::uint64_t no_path;             // expansion found no route
  std::uint64_t path_len;
  std::uint64_t pos;                 // progress through validate/claim
  std::uint16_t dist[kCells];
  std::uint16_t queue[kCells];
  std::uint16_t path[kMaxPath];
};

/// The routing phase is pure computation over private data: PART-HTM's
/// software framework runs it outside any hardware transaction.
tm::SegKind seg_kind(const void*, const void* lp, unsigned) {
  return static_cast<const Locals*>(lp)->phase == kRoute ? tm::SegKind::kSw
                                                         : tm::SegKind::kHw;
}

std::uint64_t bbox_cells(const Locals& l) {
  return (l.bx1 - l.bx0 + 1) * (l.by1 - l.by0 + 1) * kD;
}

unsigned bbox_cell(const Locals& l, std::uint64_t ci) {
  const std::uint64_t bw = l.bx1 - l.bx0 + 1;
  const std::uint64_t bh = l.by1 - l.by0 + 1;
  const std::uint64_t z = ci / (bw * bh);
  const std::uint64_t rem = ci % (bw * bh);
  return idx_of(static_cast<unsigned>(l.bx0 + rem % bw),
                static_cast<unsigned>(l.by0 + rem / bw),
                static_cast<unsigned>(z));
}

bool route_on_copy(Locals& l, const std::uint64_t* copy);

bool step(tm::Ctx& c, const void* envp, void* lp, unsigned seg) {
  const Env& e = *static_cast<const Env*>(envp);
  Locals& l = *static_cast<Locals*>(lp);

  if (l.phase == kCopy) {
    if (seg == 0) {
      // Bounding box of the endpoints, expanded by the routing margin.
      const unsigned sx = l.src % kW, sy = (l.src / kW) % kH;
      const unsigned tx = l.dst % kW, ty = (l.dst / kW) % kH;
      l.bx0 = std::min(sx, tx) > kMargin ? std::min(sx, tx) - kMargin : 0;
      l.by0 = std::min(sy, ty) > kMargin ? std::min(sy, ty) - kMargin : 0;
      l.bx1 = std::max(sx, tx) + kMargin < kW ? std::max(sx, tx) + kMargin : kW - 1;
      l.by1 = std::max(sy, ty) + kMargin < kH ? std::max(sy, ty) + kMargin : kH - 1;
      l.copy_pos = 0;
    }
    // Uninstrumented snapshot of the next chunk (STAMP's racy grid_copy).
    const std::uint64_t total = bbox_cells(l);
    std::uint64_t i = l.copy_pos;
    const std::uint64_t hi = i + kCopyCellsPerSeg < total ? i + kCopyCellsPerSeg : total;
    for (; i < hi; ++i) {
      const unsigned cell = bbox_cell(l, i);
      c.raw_write(e.copy + cell, c.raw_read(e.grid + cell));
    }
    l.copy_pos = hi;
    if (hi < total) return true;
    l.phase = kRoute;
    return true;
  }

  if (l.phase == kRoute) {
    c.work(2000);  // expansion bookkeeping the grid walk does not capture
    l.no_path = route_on_copy(l, e.copy) ? 0 : 1;
    l.phase = kValidate;
    l.pos = 0;
    return l.no_path == 0;  // nothing to claim if unroutable
  }

  if (l.phase == kValidate) {
    // Reads only: a blocked route commits having written nothing; the TM
    // protocol protects the validate->claim window.
    std::uint64_t i = l.pos;
    const std::uint64_t hi =
        i + kPathCellsPerSeg < l.path_len ? i + kPathCellsPerSeg : l.path_len;
    for (; i < hi; ++i) {
      if (c.read(e.grid + l.path[i]) != kFree) {
        l.blocked = 1;
        return false;
      }
    }
    l.pos = hi;
    if (hi < l.path_len) return true;
    l.phase = kClaim;
    l.pos = 0;
    return true;
  }

  // kClaim: write the validated path.
  std::uint64_t i = l.pos;
  const std::uint64_t hi =
      i + kPathCellsPerSeg < l.path_len ? i + kPathCellsPerSeg : l.path_len;
  for (; i < hi; ++i) c.write(e.grid + l.path[i], l.route_id);
  l.pos = hi;
  return hi < l.path_len;
}

/// BFS expansion from src within the bounding box, backtrace into l.path.
bool route_on_copy(Locals& l, const std::uint64_t* copy) {
  constexpr std::uint16_t kInf = 0xffff;
  constexpr std::uint16_t kOcc = 0xfffe;
  // Outside the bbox counts as occupied; inside, occupancy from the copy.
  for (unsigned i = 0; i < kCells; ++i) l.dist[i] = kOcc;
  for (std::uint64_t ci = 0, n = bbox_cells(l); ci < n; ++ci) {
    const unsigned cell = bbox_cell(l, ci);
    l.dist[cell] = (copy[cell] == kFree) ? kInf : kOcc;
  }
  if (l.dist[l.dst] == kOcc) return false;  // destination already claimed
  l.dist[l.src] = 0;
  unsigned qh = 0, qt = 0;
  l.queue[qt++] = static_cast<std::uint16_t>(l.src);
  const int dx[6] = {1, -1, 0, 0, 0, 0};
  const int dy[6] = {0, 0, 1, -1, 0, 0};
  const int dz[6] = {0, 0, 0, 0, 1, -1};
  bool found = false;
  while (qh < qt && !found) {
    const unsigned cur = l.queue[qh++];
    const unsigned x = cur % kW, y = (cur / kW) % kH, z = cur / (kW * kH);
    for (unsigned d = 0; d < 6 && !found; ++d) {
      const int nx = static_cast<int>(x) + dx[d];
      const int ny = static_cast<int>(y) + dy[d];
      const int nz = static_cast<int>(z) + dz[d];
      if (nx < 0 || ny < 0 || nz < 0 || nx >= static_cast<int>(kW) ||
          ny >= static_cast<int>(kH) || nz >= static_cast<int>(kD))
        continue;
      const unsigned n = idx_of(nx, ny, nz);
      if (l.dist[n] != kInf) continue;  // occupied, outside bbox, or visited
      l.dist[n] = static_cast<std::uint16_t>(l.dist[cur] + 1);
      if (n == l.dst)
        found = true;
      else if (qt < kCells)
        l.queue[qt++] = static_cast<std::uint16_t>(n);
    }
  }
  if (!found) return false;
  // Backtrace dst -> src following strictly decreasing distance.
  unsigned cur = l.dst;
  unsigned len = 0;
  while (cur != l.src && len < kMaxPath) {
    l.path[len++] = static_cast<std::uint16_t>(cur);
    const unsigned x = cur % kW, y = (cur / kW) % kH, z = cur / (kW * kH);
    unsigned next = cur;
    for (unsigned d = 0; d < 6; ++d) {
      const int nx = static_cast<int>(x) + dx[d];
      const int ny = static_cast<int>(y) + dy[d];
      const int nz = static_cast<int>(z) + dz[d];
      if (nx < 0 || ny < 0 || nz < 0 || nx >= static_cast<int>(kW) ||
          ny >= static_cast<int>(kH) || nz >= static_cast<int>(kD))
        continue;
      const unsigned n = idx_of(nx, ny, nz);
      if (l.dist[n] < l.dist[cur]) {
        next = n;
        break;
      }
    }
    if (next == cur) return false;  // broken gradient (snapshot raced)
    cur = next;
  }
  if (cur != l.src || len == 0 || len >= kMaxPath) return false;
  l.path[len++] = static_cast<std::uint16_t>(l.src);
  l.path_len = len;
  return true;
}

class LabyrinthApp final : public StampApp {
 public:
  const char* name() const override { return "labyrinth"; }

  void init(unsigned nthreads, std::uint64_t seed) override {
    auto& heap = tm::TmHeap::instance();
    grid_ = heap.alloc_array<std::uint64_t>(kCells);
    copies_.clear();
    for (unsigned t = 0; t < nthreads; ++t)
      copies_.push_back(heap.alloc_array<std::uint64_t>(kCells));
    Rng rng(seed);
    routes_.clear();
    for (unsigned r = 0; r < kRoutes; ++r) {
      const unsigned sx = rng.below(kW), sy = rng.below(kH), sz = rng.below(kD);
      const unsigned tx = rng.below(kW), ty = rng.below(kH), tz = rng.below(kD);
      routes_.push_back({idx_of(sx, sy, sz), idx_of(tx, ty, tz)});
    }
    queue_.reset(kRoutes);
    routed_.clear();
    routed_.resize(kRoutes, 0);
  }

  void run_thread(tm::Backend& be, tm::Worker& w, unsigned tid, unsigned) override {
    Env env{grid_, copies_[tid]};
    auto locals = std::make_unique<Locals>();
    std::uint64_t r;
    while (queue_.claim(r)) {
      if (routes_[r].first == routes_[r].second) continue;
      Locals& l = *locals;
      l = Locals{};
      l.src = routes_[r].first;
      l.dst = routes_[r].second;
      l.route_id = r + 1;
      tm::Txn t;
      t.step = &step;
      t.seg_kind = &seg_kind;
      t.env = &env;
      t.locals = &l;
      t.locals_bytes = sizeof(Locals);
      be.execute(w, t);
      if (!l.blocked && !l.no_path && l.path_len > 0) {
        std::lock_guard<std::mutex> g(mu_);
        routed_[r] = l.path_len;
      }
      // Blocked routes are dropped (STAMP retries bounded times; one
      // attempt keeps run length deterministic across backends).
    }
  }

  bool verify() override {
    // Every successfully routed path's cells must carry its id and no cell
    // may carry an id that was not routed.
    std::vector<std::uint64_t> counts(kRoutes + 1, 0);
    for (unsigned i = 0; i < kCells; ++i) {
      const std::uint64_t v = grid_[i];
      if (v > kRoutes) return false;
      if (v) ++counts[v];
    }
    unsigned ok = 0;
    for (unsigned r = 0; r < kRoutes; ++r) {
      if (routed_[r] == 0) {
        if (counts[r + 1] != 0) return false;  // ghost path
        continue;
      }
      if (counts[r + 1] != routed_[r]) return false;  // torn path
      ++ok;
    }
    return ok > 0;
  }

 private:
  std::uint64_t* grid_ = nullptr;
  std::vector<std::uint64_t*> copies_;
  std::vector<std::pair<unsigned, unsigned>> routes_;
  std::vector<std::uint64_t> routed_;
  WorkCounter queue_;
  std::mutex mu_;
};

}  // namespace

std::unique_ptr<StampApp> make_labyrinth() { return std::make_unique<LabyrinthApp>(); }

}  // namespace phtm::apps
