#include "apps/stamp/stamp.hpp"

#include <vector>

namespace phtm::apps {

std::unique_ptr<StampApp> make_kmeans(bool high_contention);
std::unique_ptr<StampApp> make_ssca2();
std::unique_ptr<StampApp> make_labyrinth();
std::unique_ptr<StampApp> make_intruder();
std::unique_ptr<StampApp> make_vacation(bool high_contention);
std::unique_ptr<StampApp> make_yada();
std::unique_ptr<StampApp> make_genome();

std::unique_ptr<StampApp> make_stamp_app(const std::string& name) {
  if (name == "kmeans-low") return make_kmeans(false);
  if (name == "kmeans-high") return make_kmeans(true);
  if (name == "ssca2") return make_ssca2();
  if (name == "labyrinth") return make_labyrinth();
  if (name == "intruder") return make_intruder();
  if (name == "vacation-low") return make_vacation(false);
  if (name == "vacation-high") return make_vacation(true);
  if (name == "yada") return make_yada();
  if (name == "genome") return make_genome();
  return nullptr;
}

const std::vector<std::string>& stamp_app_names() {
  static const std::vector<std::string> names = {
      "kmeans-low", "kmeans-high", "ssca2",         "labyrinth", "intruder",
      "vacation-low", "vacation-high", "yada", "genome"};
  return names;
}

}  // namespace phtm::apps
