// SSCA2 (STAMP): graph kernel 1 — parallel construction of adjacency
// arrays. Each transaction appends one directed edge to its source node's
// adjacency list (read count, write slot, bump count): very short
// transactions whose conflicts come from edges sharing a source node.
// No resource failures — Fig. 5c is an instrumentation-overhead test.
#include "apps/stamp/stamp.hpp"

#include <vector>

namespace phtm::apps {
namespace {

constexpr unsigned kNodes = 8192;
constexpr unsigned kEdgesPerNode = 4;
constexpr unsigned kEdges = kNodes * kEdgesPerNode;
constexpr unsigned kAdjCap = 64;

class Ssca2App final : public StampApp {
 public:
  const char* name() const override { return "ssca2"; }

  void init(unsigned /*nthreads*/, std::uint64_t seed) override {
    auto& heap = tm::TmHeap::instance();
    counts_ = heap.alloc_array<std::uint64_t>(kNodes);
    adj_ = heap.alloc_array<std::uint64_t>(std::size_t{kNodes} * kAdjCap);
    edges_.resize(kEdges);
    Rng rng(seed);
    for (auto& e : edges_) {
      // Power-law-ish source selection: a few hot nodes carry contention.
      const std::uint64_t r = rng.below(100);
      const std::uint64_t src = r < 20 ? rng.below(kNodes / 256 + 1)
                                       : rng.below(kNodes);
      e = (src << 32) | rng.below(kNodes);
    }
    queue_.reset(kEdges);
    added_.store(0);
  }

  void run_thread(tm::Backend& be, tm::Worker& w, unsigned, unsigned) override {
    struct Env {
      std::uint64_t* counts;
      std::uint64_t* adj;
    };
    struct Locals {
      std::uint64_t src, dst, added;
    };
    Env env{counts_, adj_};
    std::uint64_t idx;
    std::uint64_t added = 0;
    while (queue_.claim(idx)) {
      Locals l{edges_[idx] >> 32, edges_[idx] & 0xffffffffu, 0};
      tm::Txn t;
      t.env = &env;
      t.locals = &l;
      t.locals_bytes = sizeof(l);
      t.step = +[](tm::Ctx& c, const void* e, void* lp, unsigned) {
        const Env& env = *static_cast<const Env*>(e);
        Locals& loc = *static_cast<Locals*>(lp);
        const std::uint64_t n = c.read(&env.counts[loc.src]);
        if (n < kAdjCap) {
          c.write(&env.adj[loc.src * kAdjCap + n], loc.dst);
          c.write(&env.counts[loc.src], n + 1);
          loc.added = 1;
        }
        return false;
      };
      be.execute(w, t);
      added += l.added;
    }
    // relaxed: result tally, read only after the run's barrier/joins.
    added_.fetch_add(added, std::memory_order_relaxed);
  }

  bool verify() override {
    std::uint64_t total = 0;
    for (unsigned n = 0; n < kNodes; ++n) total += counts_[n];
    return total == added_.load() && total > 0;
  }

 private:
  std::uint64_t* counts_ = nullptr;
  std::uint64_t* adj_ = nullptr;
  std::vector<std::uint64_t> edges_;
  WorkCounter queue_;
  std::atomic<std::uint64_t> added_{0};
};

}  // namespace

std::unique_ptr<StampApp> make_ssca2() { return std::make_unique<Ssca2App>(); }

}  // namespace phtm::apps
