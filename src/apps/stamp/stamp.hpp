// Common interface of the STAMP-style applications (paper Sec. 7.2, Fig. 5
// and Table 1).
//
// Each app re-implements the *transactional kernel* of its STAMP namesake
// with a workload generator sized so the transaction footprint class
// (short/conflicting, long/large/rarely-conflicting, ...) matches what the
// original exhibits on real best-effort HTM — see DESIGN.md's substitution
// table. Work is fixed per run: the Fig. 5 harness measures wall time and
// reports speed-up over the sequential baseline.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "tm/api.hpp"
#include "tm/backend.hpp"
#include "tm/heap.hpp"
#include "util/rng.hpp"
#include "util/threads.hpp"

namespace phtm::apps {

class StampApp {
 public:
  virtual ~StampApp() = default;

  virtual const char* name() const = 0;

  /// Allocate state and generate the (deterministic) workload.
  virtual void init(unsigned nthreads, std::uint64_t seed) = 0;

  /// Execute thread `tid`'s share of the fixed workload to completion.
  virtual void run_thread(tm::Backend& be, tm::Worker& w, unsigned tid,
                          unsigned nthreads) = 0;

  /// Post-run invariant check (quiescent state).
  virtual bool verify() = 0;
};

/// kmeans-low | kmeans-high | ssca2 | labyrinth | intruder | vacation-low |
/// vacation-high | yada | genome
std::unique_ptr<StampApp> make_stamp_app(const std::string& name);

/// Names in Fig. 5 order.
const std::vector<std::string>& stamp_app_names();

/// Shared atomic work queue for self-scheduling loops (work distribution is
/// outside transactions, as in STAMP's thread pools).
class WorkCounter {
 public:
  void reset(std::uint64_t total) {
    // relaxed: reset happens before workers start (barrier-ordered).
    next_.store(0, std::memory_order_relaxed);
    total_ = total;
  }
  /// Claims the next index; returns false when the work is exhausted.
  bool claim(std::uint64_t& idx) {
    // relaxed: work-stealing ticket; only atomicity of the claim matters.
    idx = next_.fetch_add(1, std::memory_order_relaxed);
    return idx < total_;
  }

 private:
  std::atomic<std::uint64_t> next_{0};
  std::uint64_t total_ = 0;
};

}  // namespace phtm::apps
