// Vacation (STAMP): an in-memory travel reservation database. Each
// transaction queries several records across the car/room/flight tables,
// reserves the cheapest available one per table, and updates the customer's
// reservation count — a medium OLTP-style transaction. The "low" and "high"
// configurations differ in table size and queries per transaction, which
// controls the conflict probability (Fig. 5f/5g).
#include "apps/stamp/stamp.hpp"

namespace phtm::apps {
namespace {

constexpr unsigned kTables = 3;  // cars, rooms, flights

struct Record {
  std::uint64_t total;
  std::uint64_t used;
  std::uint64_t price;
  std::uint64_t pad[5];
};
static_assert(sizeof(Record) == 64);

struct Params {
  unsigned records;      // per table
  unsigned queries;      // records examined per table per txn
  unsigned transactions; // total workload
};

struct Env {
  Record* tables[kTables];
  std::uint64_t* customers;
  unsigned records;
  unsigned queries;
};

struct Locals {
  std::uint64_t customer;
  std::uint64_t cand[kTables * 8];  // pre-drawn candidate record ids
  std::uint64_t reserved;           // bitmask: table t reserved
};

bool step_reserve(tm::Ctx& c, const void* envp, void* lp, unsigned) {
  const Env& e = *static_cast<const Env*>(envp);
  Locals& l = *static_cast<Locals*>(lp);
  std::uint64_t made = 0;
  for (unsigned t = 0; t < kTables; ++t) {
    // Query phase: find the cheapest candidate with free capacity.
    std::uint64_t best = ~std::uint64_t{0}, best_price = ~std::uint64_t{0};
    for (unsigned q = 0; q < e.queries; ++q) {
      Record& r = e.tables[t][l.cand[t * 8 + q]];
      const std::uint64_t used = c.read(&r.used);
      const std::uint64_t total = c.read(&r.total);
      const std::uint64_t price = c.read(&r.price);
      if (used < total && price < best_price) {
        best_price = price;
        best = l.cand[t * 8 + q];
      }
    }
    if (best != ~std::uint64_t{0}) {
      Record& r = e.tables[t][best];
      c.write(&r.used, c.read(&r.used) + 1);
      made |= std::uint64_t{1} << t;
    }
  }
  if (made) {
    std::uint64_t* cust = e.customers + l.customer;
    c.write(cust, c.read(cust) + __builtin_popcountll(made));
  }
  l.reserved = made;
  return false;
}

class VacationApp final : public StampApp {
 public:
  VacationApp(const Params& p, const char* nm) : p_(p), name_(nm) {}

  const char* name() const override { return name_; }

  void init(unsigned /*nthreads*/, std::uint64_t seed) override {
    auto& heap = tm::TmHeap::instance();
    Rng rng(seed);
    for (unsigned t = 0; t < kTables; ++t) {
      tables_[t] = heap.alloc_array<Record>(p_.records);
      for (unsigned r = 0; r < p_.records; ++r) {
        tables_[t][r].total = 2 + rng.below(6);
        tables_[t][r].used = 0;
        tables_[t][r].price = 50 + rng.below(450);
      }
    }
    customers_ = heap.alloc_array<std::uint64_t>(p_.transactions);
    queue_.reset(p_.transactions);
    seed_ = seed;
  }

  void run_thread(tm::Backend& be, tm::Worker& w, unsigned, unsigned) override {
    Env env{};
    for (unsigned t = 0; t < kTables; ++t) env.tables[t] = tables_[t];
    env.customers = customers_;
    env.records = p_.records;
    env.queries = p_.queries;

    std::uint64_t idx;
    while (queue_.claim(idx)) {
      // Deterministic per-transaction candidates, independent of executing
      // thread, so all backends process identical workloads.
      Rng rng(seed_ ^ (idx * 0x9e3779b97f4a7c15ull));
      Locals l{};
      l.customer = idx;
      for (unsigned t = 0; t < kTables; ++t)
        for (unsigned q = 0; q < p_.queries; ++q)
          l.cand[t * 8 + q] = rng.below(p_.records);
      tm::Txn txn;
      txn.step = &step_reserve;
      txn.env = &env;
      txn.locals = &l;
      txn.locals_bytes = sizeof(l);
      be.execute(w, txn);
    }
  }

  bool verify() override {
    // Conservation: total seats used == total reservations recorded.
    std::uint64_t used = 0;
    for (unsigned t = 0; t < kTables; ++t)
      for (unsigned r = 0; r < p_.records; ++r) {
        if (tables_[t][r].used > tables_[t][r].total) return false;
        used += tables_[t][r].used;
      }
    std::uint64_t reserved = 0;
    for (unsigned i = 0; i < p_.transactions; ++i) reserved += customers_[i];
    return used == reserved && used > 0;
  }

 private:
  Params p_;
  const char* name_;
  Record* tables_[kTables] = {};
  std::uint64_t* customers_ = nullptr;
  WorkCounter queue_;
  std::uint64_t seed_ = 0;
};

}  // namespace

std::unique_ptr<StampApp> make_vacation(bool high_contention) {
  // STAMP: high contention = smaller relation, more queried items.
  const Params low{16384, 2, 8192};
  const Params high{512, 8, 8192};
  return std::make_unique<VacationApp>(high_contention ? high : low,
                                       high_contention ? "vacation-high"
                                                       : "vacation-low");
}

}  // namespace phtm::apps
