// Yada (STAMP): Delaunay mesh refinement. The kernel is modelled as
// cavity-style region refinement on a shared mesh grid: a transaction pops
// a "bad" element from the shared work list, reads a neighborhood cavity
// around it, rewrites the cavity, and may push newly created bad elements.
// Long transactions with genuinely high contention (overlapping cavities +
// the shared work list): the workload where the paper observes every TM
// slower than sequential yet PART-HTM ahead of the rest (Fig. 5h).
#include "apps/stamp/stamp.hpp"

namespace phtm::apps {
namespace {

constexpr unsigned kN = 64;                 // mesh is kN x kN
constexpr unsigned kCells = kN * kN;
constexpr int kRadius = 3;                  // cavity half-width (7x7 region)
constexpr unsigned kInitialBad = 512;
constexpr unsigned kWorkCap = 16384;        // shared work-list capacity
constexpr std::uint64_t kQualityBad = 100;  // quality below this needs work
constexpr unsigned kMaxGeneration = 2;      // bounds spawned refinements

struct Env {
  std::uint64_t* mesh;      // quality per cell
  std::uint64_t* worklist;  // packed (cell | generation<<32)
  std::uint64_t* wl_head;
  std::uint64_t* wl_tail;
};

struct Locals {
  std::uint64_t item;    // packed work item; 0 = list empty
  std::uint64_t refined; // count of cells this txn improved
  std::uint64_t spawned;
};

bool step_refine(tm::Ctx& c, const void* envp, void* lp, unsigned seg) {
  const Env& e = *static_cast<const Env*>(envp);
  Locals& l = *static_cast<Locals*>(lp);

  if (seg == 0) {
    // Pop one bad element from the shared list.
    const std::uint64_t h = c.read(e.wl_head);
    if (h >= c.read(e.wl_tail)) {
      l.item = 0;
      return false;
    }
    l.item = c.read(e.worklist + (h % kWorkCap));
    c.write(e.wl_head, h + 1);
    return true;
  }

  // Refine the cavity in one (sizeable) segment.
  const std::uint64_t cell = l.item & 0xffffffffu;
  const std::uint64_t gen = l.item >> 32;
  const int cx = static_cast<int>(cell % kN);
  const int cy = static_cast<int>(cell / kN);

  // Read the whole cavity, compute (geometry work), rewrite it.
  std::uint64_t acc = 0;
  for (int dy = -kRadius; dy <= kRadius; ++dy) {
    for (int dx = -kRadius; dx <= kRadius; ++dx) {
      const int x = cx + dx, y = cy + dy;
      if (x < 0 || y < 0 || x >= static_cast<int>(kN) || y >= static_cast<int>(kN))
        continue;
      acc += c.read(&e.mesh[y * kN + x]);
    }
  }
  c.work(3000);  // retriangulation geometry

  std::uint64_t spawned = 0;
  for (int dy = -kRadius; dy <= kRadius; ++dy) {
    for (int dx = -kRadius; dx <= kRadius; ++dx) {
      const int x = cx + dx, y = cy + dy;
      if (x < 0 || y < 0 || x >= static_cast<int>(kN) || y >= static_cast<int>(kN))
        continue;
      const unsigned i = y * kN + x;
      const std::uint64_t q = c.read(&e.mesh[i]);
      // Improve quality deterministically; the center gets fully fixed.
      std::uint64_t nq = (dx == 0 && dy == 0) ? kQualityBad + 50 + acc % 100
                                              : q + 20;
      c.write(&e.mesh[i], nq);
      // Refinement may degrade a border neighbor, spawning new work.
      if (gen < kMaxGeneration && spawned < 2 &&
          (dx == kRadius || dy == kRadius) && (acc + i) % 7 == 0) {
        const std::uint64_t t = c.read(e.wl_tail);
        if (t - c.read(e.wl_head) < kWorkCap) {
          c.write(e.worklist + (t % kWorkCap), i | ((gen + 1) << 32));
          c.write(e.wl_tail, t + 1);
          ++spawned;
        }
      }
    }
  }
  l.refined = 1;
  l.spawned = spawned;
  return false;
}

class YadaApp final : public StampApp {
 public:
  const char* name() const override { return "yada"; }

  void init(unsigned /*nthreads*/, std::uint64_t seed) override {
    auto& heap = tm::TmHeap::instance();
    Rng rng(seed);
    mesh_ = heap.alloc_array<std::uint64_t>(kCells);
    for (unsigned i = 0; i < kCells; ++i) mesh_[i] = kQualityBad + rng.below(200);
    worklist_ = heap.alloc_array<std::uint64_t>(kWorkCap);
    wl_head_ = heap.alloc_array<std::uint64_t>(1);
    wl_tail_ = heap.alloc_array<std::uint64_t>(1);
    for (unsigned i = 0; i < kInitialBad; ++i) {
      const std::uint64_t cell = rng.below(kCells);
      mesh_[cell] = rng.below(kQualityBad);  // make it bad
      worklist_[i] = cell;                   // generation 0
    }
    *wl_tail_ = kInitialBad;
    env_ = Env{mesh_, worklist_, wl_head_, wl_tail_};
    refined_.store(0);
  }

  void run_thread(tm::Backend& be, tm::Worker& w, unsigned, unsigned) override {
    std::uint64_t refined = 0;
    for (;;) {
      Locals l{};
      tm::Txn t;
      t.step = &step_refine;
      t.env = &env_;
      t.locals = &l;
      t.locals_bytes = sizeof(l);
      be.execute(w, t);
      if (l.item == 0) break;
      refined += l.refined;
    }
    // relaxed: result tally, read only after the run's barrier/joins.
    refined_.fetch_add(refined, std::memory_order_relaxed);
  }

  bool verify() override {
    // Work conservation: every popped item was refined, and the list
    // drained completely.
    if (*wl_head_ < kInitialBad) return false;
    if (*wl_head_ != *wl_tail_) return false;
    return refined_.load() == *wl_head_;
  }

 private:
  std::uint64_t* mesh_ = nullptr;
  std::uint64_t* worklist_ = nullptr;
  std::uint64_t* wl_head_ = nullptr;
  std::uint64_t* wl_tail_ = nullptr;
  Env env_{};
  std::atomic<std::uint64_t> refined_{0};
};

}  // namespace

std::unique_ptr<StampApp> make_yada() { return std::make_unique<YadaApp>(); }

}  // namespace phtm::apps
