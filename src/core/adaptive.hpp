// Runtime-adaptive partition sizing.
//
// The paper places partition points manually from a static profiler and
// defers automation to compiler techniques; its Related Work (ref. [25])
// sketches statically-inserted breaking points *activated at run time* by a
// policy. This utility is that policy: one controller per transaction site
// tunes how many operations a segment should carry, from commit/abort
// feedback, with an AIMD-style rule:
//
//   - a capacity or duration abort (in the fast path or a sub-HTM
//     transaction) halves the segment size — the footprint must shrink;
//   - a streak of fast-path (unpartitioned) hardware commits doubles it —
//     partitioning was unnecessary, stop paying for it;
//   - conflict aborts leave the size unchanged (partitioning neither causes
//     nor cures them).
//
// Thread-safe; shared by all workers executing the same site.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.hpp"
#include "util/stats.hpp"

namespace phtm::core {

class alignas(kCacheLineBytes) AdaptivePartitioner {
 public:
  explicit AdaptivePartitioner(unsigned initial_ops = 4096, unsigned min_ops = 64,
                               unsigned max_ops = 1u << 20,
                               unsigned grow_streak = 16)
      : min_(min_ops), max_(max_ops), grow_streak_(grow_streak), cur_(initial_ops) {}

  /// Operations the next transaction should put in one segment.
  unsigned ops_per_segment() const noexcept {
    // relaxed: tuning hint; any recently-published value is acceptable and
    // no other data is ordered against it.
    return cur_.load(std::memory_order_relaxed);
  }

  /// Feed back one executed transaction's outcome. Fast-path (whole-txn
  /// hardware) commits are strong evidence the granularity is too fine;
  /// clean partitioned commits are weak evidence, so they probe upward
  /// slowly (AIMD).
  void on_commit(CommitPath path) noexcept {
    unsigned weight = 0;
    switch (path) {
      case CommitPath::kHtm: weight = 4; break;
      case CommitPath::kSoftware: weight = 1; break;
      default: break;  // global-lock commits say nothing about granularity
    }
    // relaxed: streak_ is an approximate vote counter — lost or reordered
    // updates merely delay an AIMD step; nothing is ordered against it.
    if (weight == 0) {
      streak_.store(0, std::memory_order_relaxed);
      return;
    }
    if (streak_.fetch_add(weight, std::memory_order_relaxed) + weight >=
        4 * grow_streak_) {
      // relaxed: see streak_ note above.
      streak_.store(0, std::memory_order_relaxed);
      grow();
    }
  }

  void on_abort(AbortCause cause) noexcept {
    // relaxed: see streak_ note in on_commit().
    streak_.store(0, std::memory_order_relaxed);
    if (cause == AbortCause::kCapacity || cause == AbortCause::kOther) shrink();
  }

 private:
  void shrink() noexcept {
    // relaxed: cur_ is a self-contained tuning knob (see ops_per_segment);
    // the CAS loop needs atomicity, not ordering.
    unsigned c = cur_.load(std::memory_order_relaxed);
    for (;;) {
      const unsigned next = c / 2 < min_ ? min_ : c / 2;
      if (next == c) return;
      if (cur_.compare_exchange_weak(c, next, std::memory_order_relaxed)) return;
    }
  }
  void grow() noexcept {
    // relaxed: see shrink().
    unsigned c = cur_.load(std::memory_order_relaxed);
    for (;;) {
      const unsigned next = c * 2 > max_ ? max_ : c * 2;
      if (next == c) return;
      if (cur_.compare_exchange_weak(c, next, std::memory_order_relaxed)) return;
    }
  }

  const unsigned min_, max_, grow_streak_;
  // shared-atomic: self-contained tuning state, not protocol data — no
  // other memory is ordered against these words (see the relaxed notes).
  std::atomic<unsigned> cur_;
  std::atomic<unsigned> streak_{0};
};

/// Convenience: derive the feedback from a worker's stat-sheet delta around
/// one execute() call.
class AdaptiveFeedback {
 public:
  AdaptiveFeedback(AdaptivePartitioner& p, const StatSheet& sheet)
      : p_(p), sheet_(sheet), before_(sheet) {}

  ~AdaptiveFeedback() {
    for (unsigned c = 0; c < static_cast<unsigned>(AbortCause::kCauseCount); ++c) {
      const auto delta = sheet_.aborts[c] - before_.aborts[c];
      for (std::uint64_t i = 0; i < delta; ++i)
        p_.on_abort(static_cast<AbortCause>(c));
    }
    for (unsigned c = 0; c < static_cast<unsigned>(CommitPath::kPathCount); ++c) {
      if (sheet_.commits[c] > before_.commits[c])
        p_.on_commit(static_cast<CommitPath>(c));
    }
  }

 private:
  AdaptivePartitioner& p_;
  const StatSheet& sheet_;
  StatSheet before_;
};

}  // namespace phtm::core
