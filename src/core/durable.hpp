// Durable commit log + crash recovery for persistent PART-HTM (durable
// flavor, PHTM_PERSIST=1).
//
// Write-ahead protocol (DESIGN.md "Durability & recovery"):
//
//   per sub-HTM commit     append UndoChunk cells (old values of the
//                          segment's writes) -> pwb cells -> pfence ->
//                          pwb the data words (unfenced)
//   global commit          pfence (data now durable) -> append Commit
//                          record {seq, shard timestamps} -> pwb ->
//                          pfence -> ONLY THEN release locks
//   global abort           volatile rollback -> pwb rolled-back words ->
//                          pfence -> append Abort record -> pwb ->
//                          pfence -> ONLY THEN release locks
//
// The lock-release-after-outcome-record invariant is what makes recovery
// sound: a transaction that is unresolved at the crash (undo chunks but
// no durable outcome record) still held every write lock when the domain
// froze, so unresolved transactions are pairwise address-disjoint and
// disjoint from every resolved transaction — their undo chunks can be
// replayed in any per-transaction order.
//
// Torn-write safety is structural, not assumed: each record is one
// fixed-size cell with a magic-tagged head and a whole-cell checksum. A
// crash that persists only part of a cell's words leaves a cell that
// fails validation and is treated as absent; the WAL ordering above
// guarantees absence is always the conservative direction (a torn
// UndoChunk implies its data words were never even flushed; a torn
// Commit record implies the locks were never released).
//
// The log's cell array is "persistent memory": its words are pwb'd
// through the PersistDomain and recovery reads ONLY their durable image
// (volatile cell contents may be arbitrary garbage after a crash).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/undo.hpp"
#include "obs/trace.hpp"
#include "sim/persist.hpp"
#include "util/cacheline.hpp"
#include "util/stats.hpp"

namespace phtm::persist {

/// What a log cell records.
enum class RecordKind : std::uint8_t {
  kNone = 0,
  kUndoChunk = 1,  ///< up to kCellPairs (addr, displaced value) pairs
  kCommit = 2,     ///< transaction durably committed (carries shard ts)
  kAbort = 3,      ///< transaction durably rolled back
};

inline const char* to_string(RecordKind k) noexcept {
  switch (k) {
    case RecordKind::kNone: return "none";
    case RecordKind::kUndoChunk: return "undo_chunk";
    case RecordKind::kCommit: return "commit";
    case RecordKind::kAbort: return "abort";
  }
  return "?";
}

/// Append-only cell log in simulated persistent memory.
///
/// Cell layout (kCellWords = 34 words):
///   word 0      head: magic(16) | kind(8) | pair count(8) | seq(32)
///   words 1-4   shard timestamps (Commit records; zero otherwise)
///   words 5-32  kCellPairs (addr, old value) pairs (UndoChunk records)
///   word 33     checksum over words 0-32 (never zero)
///
/// Cells are claimed with a wait-free cursor fetch-add, filled privately,
/// then pwb'd whole; a cell becomes visible to recovery only once its
/// words reach the durable image intact (checksum). The cursor and the
/// sequence counter are volatile — recovery rebuilds both from the scan.
class alignas(kCacheLineBytes) DurableLog {
 public:
  static constexpr unsigned kCellWords = 34;
  static constexpr unsigned kCellPairs = 14;
  static constexpr std::uint64_t kCellMagic = 0xD17A;  ///< nonzero, 16 bits

  explicit DurableLog(std::size_t cells = std::size_t{1} << 16)
      : cells_(cells), words_(cells * kCellWords, 0) {}

  std::size_t cells() const noexcept { return cells_; }

  /// First word of cell `i` (recovery reads its *durable* image).
  const std::uint64_t* cell(std::size_t i) const noexcept {
    return &words_[i * kCellWords];
  }

  /// Allocate a fresh durable sequence number (1-based; 0 = "none").
  std::uint64_t alloc_seq() noexcept {
    // relaxed: the sequence number is an identity, not an ordering edge —
    // the WAL fences order everything that matters.
    return next_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Append `n` undo pairs for transaction `seq` as one or more UndoChunk
  /// cells, pwb-ing every cell word. NO fence: the caller fences once per
  /// sub-commit (chunk-before-data ordering), which also covers all cells
  /// of the chunk.
  void append_undo_chunk(PersistDomain& dom, StatSheet* st, std::uint64_t seq,
                         const core::UndoLog::Entry* entries, std::size_t n) {
    while (n > 0) {
      const unsigned take =
          static_cast<unsigned>(n < kCellPairs ? n : kCellPairs);
      std::uint64_t* c = claim(dom, st);
      c[0] = head_word(RecordKind::kUndoChunk, take, seq);
      for (unsigned t = 1; t <= 4; ++t) c[t] = 0;
      for (unsigned p = 0; p < kCellPairs; ++p) {
        if (p < take) {
          c[5 + 2 * p] = reinterpret_cast<std::uint64_t>(entries[p].addr);
          c[5 + 2 * p + 1] = entries[p].old_val;
        } else {
          c[5 + 2 * p] = 0;
          c[5 + 2 * p + 1] = 0;
        }
      }
      c[kCellWords - 1] = checksum(c);
      for (unsigned wi = 0; wi < kCellWords; ++wi) dom.pwb(&c[wi], st);
      entries += take;
      n -= take;
    }
  }

  /// Append a Commit or Abort outcome record for `seq`, pwb-ing the cell.
  /// `shard_ts` (4 words) is recorded for Commit records when non-null.
  /// NO fence: the caller fences (outcome-before-unlock ordering).
  void append_outcome(PersistDomain& dom, StatSheet* st, RecordKind kind,
                      std::uint64_t seq, const std::uint64_t* shard_ts) {
    std::uint64_t* c = claim(dom, st);
    c[0] = head_word(kind, 0, seq);
    for (unsigned t = 0; t < 4; ++t) c[1 + t] = shard_ts ? shard_ts[t] : 0;
    for (unsigned wi = 5; wi < kCellWords - 1; ++wi) c[wi] = 0;
    c[kCellWords - 1] = checksum(c);
    for (unsigned wi = 0; wi < kCellWords; ++wi) dom.pwb(&c[wi], st);
  }

  /// Recovery: rebase the volatile cursor/sequence state rebuilt from the
  /// durable scan so post-recovery appends neither collide with surviving
  /// cells nor reuse a surviving sequence number.
  void reset_volatile(std::uint64_t next_cell, std::uint64_t next_seq) noexcept {
    // relaxed: recovery runs quiesced (workload joined); these are plain
    // reinitializations, kept atomic only to pair with the hot-path RMWs.
    cursor_.store(next_cell, std::memory_order_relaxed);
    next_seq_.store(next_seq < 1 ? 1 : next_seq, std::memory_order_relaxed);
  }

  // --- cell encode/decode (shared by append and recovery scan) ---

  static std::uint64_t head_word(RecordKind kind, unsigned count,
                                 std::uint64_t seq) noexcept {
    return (kCellMagic << 48) |
           (static_cast<std::uint64_t>(kind) << 40) |
           (static_cast<std::uint64_t>(count & 0xffu) << 32) |
           (seq & 0xffffffffull);
  }

  static RecordKind head_kind(std::uint64_t head) noexcept {
    const std::uint64_t k = (head >> 40) & 0xffu;
    return k >= 1 && k <= 3 ? static_cast<RecordKind>(k) : RecordKind::kNone;
  }
  static unsigned head_count(std::uint64_t head) noexcept {
    return static_cast<unsigned>((head >> 32) & 0xffu);
  }
  static std::uint64_t head_seq(std::uint64_t head) noexcept {
    return head & 0xffffffffull;
  }

  /// Whole-cell checksum over words 0..32. Never zero, so a torn cell
  /// whose checksum word did not persist (reads as 0) can never validate.
  static std::uint64_t checksum(const std::uint64_t* w) noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (unsigned i = 0; i < kCellWords - 1; ++i) {
      h ^= w[i] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdull;
    }
    return h | 1;
  }

  /// Validate a cell's durable image: magic, kind, pair count, checksum.
  static bool valid_cell(const std::uint64_t* d) noexcept {
    if ((d[0] >> 48) != kCellMagic) return false;
    if (head_kind(d[0]) == RecordKind::kNone) return false;
    if (head_count(d[0]) > kCellPairs) return false;
    return checksum(d) == d[kCellWords - 1];
  }

 private:
  std::uint64_t* claim(PersistDomain& dom, StatSheet* st) {
    (void)dom;
    (void)st;
    // relaxed: cell claiming only needs uniqueness; the cell's contents
    // are private until pwb'd and recovery orders by seq, not cell index.
    const std::uint64_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= cells_)
      throw std::runtime_error("phtm::persist::DurableLog: log full");
    return &words_[static_cast<std::size_t>(i) * kCellWords];
  }

  std::size_t cells_;
  std::vector<std::uint64_t> words_;  ///< simulated persistent region
  // shared-atomic: wait-free cell cursor and sequence counter, fetch-added
  // by concurrently committing workers; volatile by design (rebuilt from
  // the durable scan on recovery).
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint64_t> next_seq_{1};
};

/// What recover() found and did.
struct RecoveryReport {
  std::vector<std::uint64_t> committed;    ///< seqs with a durable Commit
  std::vector<std::uint64_t> aborted;      ///< seqs with a durable Abort
  std::vector<std::uint64_t> rolled_back;  ///< unresolved seqs undone here
  std::uint64_t scanned_cells = 0;  ///< cells with any durable content
  std::uint64_t valid_cells = 0;    ///< cells passing magic+checksum
  std::uint64_t torn_cells = 0;     ///< present but invalid (torn writes)
  std::uint64_t next_cell = 0;      ///< rebuilt append cursor
  std::uint64_t next_seq = 1;       ///< rebuilt sequence counter
  bool complete = false;            ///< false = step budget exhausted
};

/// Crash recovery: restore volatile memory from the durable image, scan
/// the log's durable cells, and roll back every unresolved transaction
/// (undo chunks present, no outcome record) by replaying its chunks in
/// reverse — appending a durable Abort record per rollback so a re-crash
/// during or after recovery finds the transaction resolved (idempotence:
/// replaying a rollback writes the same old values again).
///
/// `max_steps` bounds the number of mutation steps (one per restored undo
/// pair or appended record) — a deliberately small budget models a crash
/// in the middle of recovery: the pass returns complete=false and the
/// harness can crash the domain again and re-run recovery from scratch.
///
/// Runs quiesced: the workload must be joined (or never started) — this
/// is the post-restart single-threaded recovery pass of a real PTM.
inline RecoveryReport recover(PersistDomain& dom, DurableLog& log,
                              StatSheet* st = nullptr,
                              std::uint64_t max_steps = ~std::uint64_t{0}) {
  RecoveryReport rep;

  // Phase 1 — discard volatile state: every word the durable image knows
  // about (heap data and log cells alike) is reset to its durable value.
  // Words never persisted keep their formatted/initial contents, exactly
  // like real persistent memory that was never written back.
  for (const auto& [addr, val] : dom.snapshot_durable()) {
    // raw-atomic: relaxed: quiesced single-threaded restore; atomic only
    // so TSan pairs it with the workload's (joined) transactional stores.
    __atomic_store_n(addr, val, __ATOMIC_RELAXED);
  }

  // Phase 2 — scan: collect every valid cell by transaction seq, reading
  // ONLY the durable image (volatile cell contents are untrusted).
  struct TxnRec {
    std::vector<std::size_t> chunk_cells;  ///< ascending = append order
    bool committed = false;
    bool aborted = false;
  };
  // Ordered map: recovery visits transactions in ascending seq, making
  // reports and replay deterministic for tests.
  std::vector<std::pair<std::uint64_t, TxnRec>> txns;  // sorted by seq
  auto rec_of = [&txns](std::uint64_t seq) -> TxnRec& {
    auto it = txns.begin();
    while (it != txns.end() && it->first < seq) ++it;
    if (it == txns.end() || it->first != seq)
      it = txns.insert(it, {seq, TxnRec{}});
    return it->second;
  };

  std::vector<std::uint64_t> dcell(DurableLog::kCellWords);
  std::uint64_t max_valid = 0;
  bool any_valid = false;
  for (std::size_t i = 0; i < log.cells(); ++i) {
    const std::uint64_t* c = log.cell(i);
    bool present = false;
    for (unsigned wi = 0; wi < DurableLog::kCellWords; ++wi) {
      dcell[wi] = dom.durable(&c[wi]);
      present = present || dcell[wi] != 0;
    }
    if (!present) continue;
    ++rep.scanned_cells;
    if (!DurableLog::valid_cell(dcell.data())) {
      ++rep.torn_cells;
      continue;
    }
    ++rep.valid_cells;
    if (i + 1 > max_valid) max_valid = i + 1;
    any_valid = true;
    const std::uint64_t seq = DurableLog::head_seq(dcell[0]);
    if (seq + 1 > rep.next_seq) rep.next_seq = seq + 1;
    TxnRec& tr = rec_of(seq);
    switch (DurableLog::head_kind(dcell[0])) {
      case RecordKind::kNone: break;  // unreachable (valid_cell rejects it)
      case RecordKind::kUndoChunk: tr.chunk_cells.push_back(i); break;
      case RecordKind::kCommit: tr.committed = true; break;
      case RecordKind::kAbort: tr.aborted = true; break;
    }
  }
  rep.next_cell = any_valid ? max_valid : 0;
  log.reset_volatile(rep.next_cell, rep.next_seq);

  // Phase 3 — resolve: a durable outcome record settles the transaction
  // (Commit: its data was fenced durable before the record existed;
  // Abort: its rollback was). No outcome = unresolved: replay its undo
  // chunks newest-first (reverse cell order, reverse pairs within a
  // cell) so the oldest displaced value lands last, then write a durable
  // Abort record before anything else may touch those words.
  std::uint64_t steps = 0;
  for (auto& [seq, tr] : txns) {
    if (tr.committed) {
      rep.committed.push_back(seq);
      continue;
    }
    if (tr.aborted) {
      rep.aborted.push_back(seq);
      continue;
    }
    for (auto ci = tr.chunk_cells.rbegin(); ci != tr.chunk_cells.rend(); ++ci) {
      const std::uint64_t* c = log.cell(*ci);
      std::uint64_t head = dom.durable(&c[0]);
      const unsigned count = DurableLog::head_count(head);
      for (unsigned p = count; p-- > 0;) {
        if (steps >= max_steps) goto budget_exhausted;
        ++steps;
        auto* addr = reinterpret_cast<std::uint64_t*>(
            dom.durable(&c[5 + 2 * p]));
        const std::uint64_t old_val = dom.durable(&c[5 + 2 * p + 1]);
        // raw-atomic: relaxed: quiesced undo replay (see phase 1).
        __atomic_store_n(addr, old_val, __ATOMIC_RELAXED);
        dom.pwb(addr, st);
      }
    }
    if (steps >= max_steps) goto budget_exhausted;
    ++steps;
    dom.pfence(st);  // rolled-back values durable before the verdict
    log.append_outcome(dom, st, RecordKind::kAbort, seq, nullptr);
    dom.pfence(st);
    rep.rolled_back.push_back(seq);
  }
  dom.psync(st);
  rep.complete = true;

budget_exhausted:
  if (st != nullptr) st->add_recovery();
  PHTM_TRACE_RECOVERY(rep.rolled_back.size(), rep.torn_cells);
  return rep;
}

}  // namespace phtm::persist
