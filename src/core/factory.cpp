#include "core/part_htm.hpp"
#include "stm/htm_gl.hpp"
#include "stm/norec.hpp"
#include "stm/norec_rh.hpp"
#include "stm/ringstm.hpp"
#include "stm/spht.hpp"
#include "tm/backend.hpp"
#include "tm/direct.hpp"

namespace phtm::tm {

std::unique_ptr<Backend> make_backend(Algo algo, sim::HtmRuntime& rt,
                                      const BackendConfig& cfg) {
  using core::PartHtmBackend;
  switch (algo) {
    case Algo::kSeq:
      return std::make_unique<SeqBackend>();
    case Algo::kHtmGl:
      return std::make_unique<stm::HtmGlBackend>(rt, cfg);
    case Algo::kPartHtm:
      return std::make_unique<PartHtmBackend>(rt, cfg, PartHtmBackend::Mode::kSerializable,
                                              /*no_fast=*/false);
    case Algo::kPartHtmO:
      return std::make_unique<PartHtmBackend>(rt, cfg, PartHtmBackend::Mode::kOpaque,
                                              /*no_fast=*/false);
    case Algo::kPartHtmNoFast:
      return std::make_unique<PartHtmBackend>(rt, cfg, PartHtmBackend::Mode::kSerializable,
                                              /*no_fast=*/true);
    case Algo::kRingStm:
      return std::make_unique<stm::RingStmBackend>(rt, cfg);
    case Algo::kNorec:
      return std::make_unique<stm::NorecBackend>(rt);
    case Algo::kNorecRh:
      return std::make_unique<stm::NorecRhBackend>(rt, cfg);
    case Algo::kSpht:
      return std::make_unique<stm::SphtBackend>(rt, cfg);
    default:
      return nullptr;
  }
}

}  // namespace phtm::tm
