#include "core/part_htm.hpp"

#include <bit>
#include <cassert>

#include "obs/trace.hpp"
#include "stm/common.hpp"
#include "tm/direct.hpp"
#include "tm/heap.hpp"
#include "util/mc_hooks.hpp"

namespace phtm::core {

using stm::to_cause;

// The per-shard stats and trace-summary counters mirror the commit-pipeline
// shard count without util/ or obs/ depending on sig/ (see
// StatSheet::kRingShards, obs::TraceSummary::kRingShards).
static_assert(StatSheet::kRingShards == Signature::kShards,
              "per-shard stats arrays must match the signature shard count");
static_assert(obs::TraceSummary::kRingShards == Signature::kShards,
              "per-shard trace-summary arrays must match the signature shard "
              "count");

/// Explicit-abort codes private to PART-HTM's hardware transactions.
enum PartXCode : std::uint32_t {
  kXGlock = 101,      ///< global-lock subscription fired at begin
  kXLocked,           ///< pre-commit validation intersected the lock table
  kXLockedByOther,    ///< PART-HTM-O encounter-time lock hit
  kXRingBusy,         ///< ring slot's previous occupant still publishing
  kXTsChanged,        ///< PART-HTM-O timestamp subscription fired at begin
};

/// Signature maintained inside a hardware transaction.
///
/// `storage` is the worker's signature in ordinary memory. The body
/// accumulates bits in a private `mirror` (register-cheap, discarded on
/// abort exactly like hardware rollback) and flush() publishes the changed
/// words through the transaction at commit time. Publishing transactionally
/// keeps the paper's semantics — the signature lines join the write set
/// (capacity cost) and become visible only if the hardware transaction
/// commits — while per-access updates stay as cheap as the register
/// operations they are on real hardware.
class TxSig {
 public:
  TxSig(sim::HtmOps& ops, Signature& storage)
      : ops_(ops), storage_(storage), mirror_(storage) {}

  void add(const void* addr) { mirror_.set_bit(Signature::bit_of(addr)); }

  const Signature& view() const noexcept { return mirror_; }

  /// Write the accumulated bits into storage (inside the transaction). The
  /// mirror starts as a copy of storage, so its occupancy is a superset and
  /// every changed word carries a mirror occupancy bit — scanning only those
  /// words is exact.
  void flush() {
    const std::uint64_t mocc = mirror_.occupancy();
    // tmfoot: bound(32) — the occupancy mask has one bit per nonzero
    // signature word, so at most Signature::kWords (32 for BloomSig<2048>).
    for (std::uint64_t rest = mocc; rest != 0; rest &= rest - 1) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(rest));
      if (mirror_.words()[w] != storage_.words()[w])
        ops_.write(&storage_.words()[w], mirror_.words()[w]);
    }
    if (mocc != storage_.occupancy()) ops_.write(storage_.occ_addr(), mocc);
  }

 private:
  sim::HtmOps& ops_;
  Signature& storage_;
  Signature mirror_;
};

struct PartHtmBackend::W final : tm::Worker {
  W(unsigned tid, sim::HtmRuntime& rt)
      : Worker(tid),
        th(rt),
        jitter_state((tid + 1) * 0x9e3779b97f4a7c15ull | 1) {}

  sim::HtmRuntime::Thread th;

  /// Backoff-jitter stream (JitterBackoff), owner-only. Seeded from the
  /// tid so pause sequences are deterministic per thread and distinct
  /// across threads (convoys desynchronize).
  std::uint64_t jitter_state;

  // Local metadata (paper Sec. 5.1). read_sig/write_sig are the in-HTM
  // updated stores; agg_sig aggregates committed sub-HTM write signatures.
  Signature read_sig;
  Signature write_sig;
  Signature agg_sig;
  UndoLog undo;

  /// Incremental-validation watermarks, one per commit-pipeline shard: the
  /// highest timestamp of each shard ring this global transaction's read
  /// signature is known to be consistent with. Seeded from the shard
  /// timestamps at global begin (an eager snapshot — four uncontended
  /// loads) and advanced on every successful validation, so repeated
  /// in-flight validations only scan ring entries published since the
  /// previous one; shards the read signature never touches advance in O(1)
  /// without any ring traffic. Owner-private: never read or written by
  /// other threads.
  std::uint64_t validated_ts[ShardedRing::kShards] = {};
  bool wrote = false;

  tm::LocalsSnapshot txn_snap;  // whole-transaction rollback state
  tm::LocalsSnapshot seg_snap;  // per-segment rollback state

#if defined(PHTM_PERSIST) && PHTM_PERSIST
  /// Durable sequence number of the in-flight global transaction: 0 until
  /// its first undo chunk hits the log (read-only transactions and
  /// transactions that abort before any sub-commit never consume one).
  std::uint64_t dseq = 0;
#endif
};

// ---------------------------------------------------------------------------
// Contexts
// ---------------------------------------------------------------------------

/// Fast path (Fig. 1 lines 1-15 / Fig. 2 lines 1-13).
class PartHtmBackend::FastCtx final : public tm::Ctx {
 public:
  FastCtx(PartHtmBackend& b, W& w, sim::HtmOps& ops)
      : b_(b), ops_(ops), rs_(ops, w.read_sig), ws_(ops, w.write_sig) {}

  std::uint64_t read(const std::uint64_t* addr) override {
    if (b_.mode_ == Mode::kOpaque) {
      // Encounter-time lock detection replaces the read signature.
      if (ops_.read(tm::TmHeap::instance().shadow_of(addr)) != 0)
        ops_.xabort(kXLockedByOther);
    } else {
      rs_.add(addr);
    }
    return ops_.read(addr);
  }

  void write(std::uint64_t* addr, std::uint64_t val) override {
    if (b_.mode_ == Mode::kOpaque) {
      if (ops_.read(tm::TmHeap::instance().shadow_of(addr)) != 0)
        ops_.xabort(kXLockedByOther);
    }
    ws_.add(addr);
    wrote_ = true;
    ops_.write(addr, val);
  }

  void work(std::uint64_t n) override { ops_.work(n); }

  // Uninstrumented accesses stay hardware-monitored but skip signatures
  // and lock checks (see tm::Ctx::raw_read).
  std::uint64_t raw_read(const std::uint64_t* addr) override { return ops_.read(addr); }
  void raw_write(std::uint64_t* addr, std::uint64_t val) override {
    ops_.write(addr, val);
  }

  /// Pre-commit validation + ring publication (still inside the txn).
  ///
  /// Gated on the paper's own `active_tx` counter: locks can only be held,
  /// and ring validators can only exist, while some transaction occupies
  /// the partitioned path. Subscribing the counter makes the shortcut
  /// sound — a transaction *entering* the partitioned path increments it
  /// with a non-transactional RMW, which aborts every fast-path transaction
  /// that took the shortcut. This keeps the fast path's instrumentation
  /// footprint at its paper-intended "slight" level when the workload is
  /// HTM-friendly.
  void commit_epilogue() {
    ops_.subscribe(&b_.active_tx_.value);
    if (aload(&b_.active_tx_.value) == 0) return;

    if (b_.mode_ == Mode::kSerializable) {
      // The transaction must neither have read nor be about to overwrite a
      // non-visible (locked) location (Fig. 1 lines 7-8). Subscribe to the
      // intersected shards' lock-table cache lines once, then read their
      // words plainly: the monitor guarantees a latched committer's lock
      // publication is either fully visible or blocks/dooms this
      // transaction first. Only words this transaction has bits in can
      // intersect a lock, so the occupancy masks bound the subscription set
      // and the scan — and the shard mask bounds which per-shard tables are
      // touched at all.
      const std::uint64_t occ = rs_.view().occupancy() | ws_.view().occupancy();
      // tmfoot: bound(4) — one commit-pipeline shard per word group
      // (Signature::kShards = 4 for BloomSig<2048>).
      for (std::uint64_t sm = Signature::shard_mask_of(occ); sm != 0;
           sm &= sm - 1) {
        const unsigned s = static_cast<unsigned>(std::countr_zero(sm));
        Signature& locks = b_.write_locks_[s];
        const std::uint64_t socc = occ & Signature::shard_word_mask(s);
        // tmfoot: bound(1) — a shard's word group is one cache line
        // (kWordsPerShard = 8 words).
        for (unsigned w = s * Signature::kWordsPerShard;
             w < (s + 1) * Signature::kWordsPerShard; w += 8)
          if (((socc >> w) & 0xffu) != 0) ops_.subscribe(&locks.words()[w]);
        for (std::uint64_t rest = socc; rest != 0; rest &= rest - 1) {
          const unsigned i = static_cast<unsigned>(std::countr_zero(rest));
          const std::uint64_t wl = aload(&locks.words()[i]);
          if (wl & (rs_.view().words()[i] | ws_.view().words()[i]))
            ops_.xabort(kXLocked);
        }
      }
    }
    if (wrote_) b_.ring_.publish_in_htm(ops_, ws_.view(), kXRingBusy);
    // Note: the fast path's local signatures live only in the mirrors —
    // nothing reads their memory copies after a fast commit, so no flush.
  }

 private:
  PartHtmBackend& b_;
  sim::HtmOps& ops_;
  TxSig rs_, ws_;
  bool wrote_ = false;
};

/// Sub-HTM transaction context (Fig. 1 lines 20-29 / Fig. 2 lines 22-35).
class PartHtmBackend::SubCtx final : public tm::Ctx {
 public:
  SubCtx(PartHtmBackend& b, W& w, sim::HtmOps& ops)
      : b_(b), w_(w), ops_(ops), rs_(ops, w.read_sig), ws_(ops, w.write_sig) {}

  std::uint64_t read(const std::uint64_t* addr) override {
    if (b_.mode_ == Mode::kOpaque) {
      const std::uint64_t lk = ops_.read(tm::TmHeap::instance().shadow_of(addr));
      if (lk != 0 && !self_locked(addr)) ops_.xabort(kXLockedByOther);
    }
    rs_.add(addr);
    return ops_.read(addr);
  }

  void write(std::uint64_t* addr, std::uint64_t val) override {
    if (b_.mode_ == Mode::kOpaque) {
      const std::uint64_t lk = ops_.read(tm::TmHeap::instance().shadow_of(addr));
      if (lk != 0) {
        if (!self_locked(addr)) ops_.xabort(kXLockedByOther);
        // Already locked by this global transaction: the pre-lock value is
        // in the undo log (Fig. 2 lines 29-31) — just write.
#if defined(PHTM_PERSIST) && PHTM_PERSIST
        // Durable mode: re-log the displaced value anyway, so the segment
        // that re-writes an address still covers it with a data
        // write-back (the durable image must end at the LAST committed
        // value). Reverse-order replay keeps rollback correct with the
        // extra intermediate entries, exactly as in serializable mode.
        w_.undo.stage(addr, ops_.read(addr));
#endif
      } else {
        w_.undo.stage(addr, ops_.read(addr));
        ops_.write(tm::TmHeap::instance().shadow_of(addr), 1);  // acquire
      }
      ws_.add(addr);
    } else {
      // Eager write: log the displaced value first (Fig. 1 line 23). Reads
      // served through HtmOps see this transaction's own earlier write, so
      // repeated writes log intermediate values; reverse-order rollback
      // restores the oldest.
      w_.undo.stage(addr, ops_.read(addr));
      ws_.add(addr);
    }
    w_.wrote = true;
    ops_.write(addr, val);
  }

  void work(std::uint64_t n) override { ops_.work(n); }

  // Hardware-monitored but software-invisible: no undo log, no locks, no
  // signatures. Private scratch only (the paper's non-transactional-code
  // contract, Sec. 4).
  std::uint64_t raw_read(const std::uint64_t* addr) override { return ops_.read(addr); }
  void raw_write(std::uint64_t* addr, std::uint64_t val) override {
    ops_.write(addr, val);
  }

  /// Pre-commit validation + write-lock acquisition inside the sub-HTM
  /// transaction (Fig. 1 lines 26-29). PART-HTM-O needs neither: its locks
  /// are per-address and checked at encounter time (Sec. 5.5).
  void commit_epilogue() {
    // Publish signatures first: the software framework reads them from
    // storage after the sub-HTM commit (aggregation, in-flight validation).
    rs_.flush();
    ws_.flush();
    if (b_.mode_ != Mode::kSerializable) return;
    // Lock checks and announcements only matter in words this transaction
    // has bits in (see the fast path's epilogue for the argument), and each
    // word lives in exactly one per-shard lock table — untouched shards see
    // no subscription, no scan, and no occupancy traffic from this commit.
    const std::uint64_t occ = rs_.view().occupancy() | ws_.view().occupancy();
    // tmfoot: bound(4) — one commit-pipeline shard per word group
    // (Signature::kShards = 4 for BloomSig<2048>).
    for (std::uint64_t sm = Signature::shard_mask_of(occ); sm != 0;
         sm &= sm - 1) {
      const unsigned s = static_cast<unsigned>(std::countr_zero(sm));
      Signature& locks = b_.write_locks_[s];
      const std::uint64_t socc = occ & Signature::shard_word_mask(s);
      // tmfoot: bound(1) — a shard's word group is one cache line
      // (kWordsPerShard = 8 words).
      for (unsigned w = s * Signature::kWordsPerShard;
           w < (s + 1) * Signature::kWordsPerShard; w += 8)
        if (((socc >> w) & 0xffu) != 0) ops_.subscribe(&locks.words()[w]);
      // tmfoot: bound(8) — one occupancy bit per nonzero word in the shard's
      // word group.
      for (std::uint64_t rest = socc; rest != 0; rest &= rest - 1) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(rest));
        const std::uint64_t wl = aload(&locks.words()[i]);
        // Mask this global transaction's own locks out first (Fig. 1 line 26).
        const std::uint64_t others = wl & ~w_.agg_sig.words()[i];
        if (others & (rs_.view().words()[i] | ws_.view().words()[i]))
          ops_.xabort(kXLocked);
        // Announce newly written locations (Fig. 1 line 29). A concurrent
        // sub-HTM committer OR-ing the same word is a hardware write-write
        // conflict: one of the two aborts, so the read-modify-write is safe.
        const std::uint64_t mine = ws_.view().words()[i];
        if (mine & ~wl) ops_.write(&locks.words()[i], wl | mine);
      }
      // Keep the shard lock table's occupancy a superset of its set words.
      // The read is monitored, so a concurrent committer updating the mask
      // dooms this transaction instead of having its bits overwritten.
      const std::uint64_t wocc =
          ws_.view().occupancy() & Signature::shard_word_mask(s);
      if (wocc != 0) {
        const std::uint64_t cur = ops_.read(locks.occ_addr());
        if ((wocc & ~cur) != 0) ops_.write(locks.occ_addr(), cur | wocc);
      }
    }
  }

 private:
  bool self_locked(const std::uint64_t* addr) const {
    return w_.undo.self_locked(addr) || w_.undo.staged_contains(addr);
  }

  PartHtmBackend& b_;
  W& w_;
  sim::HtmOps& ops_;
  TxSig rs_, ws_;
};

// ---------------------------------------------------------------------------
// Backend
// ---------------------------------------------------------------------------

PartHtmBackend::PartHtmBackend(sim::HtmRuntime& rt, const tm::BackendConfig& cfg,
                               Mode mode, bool no_fast)
    : rt_(rt), cfg_(cfg), mode_(mode), no_fast_(no_fast), ring_(cfg.ring_entries) {}

const char* PartHtmBackend::name() const {
  if (no_fast_) return "Part-HTM-no-fast";
  return mode_ == Mode::kOpaque ? "Part-HTM-O" : "Part-HTM";
}

std::unique_ptr<tm::Worker> PartHtmBackend::make_worker(unsigned tid) {
  return std::make_unique<W>(tid, rt_);
}

void PartHtmBackend::dec_active() {
  rt_.nontx_fetch_add(&active_tx_.value, ~std::uint64_t{0});  // -1
}

bool PartHtmBackend::fast_once(W& w, const tm::Txn& txn, sim::AbortStatus& status) {
  const sim::HtmResult r = rt_.attempt(w.th, [&](sim::HtmOps& ops) {
    // Global-lock subscription (Fig. 1 lines 1-2).
    if (ops.read(&glock_.value) != 0) ops.xabort(kXGlock);
    FastCtx ctx(*this, w, ops);
    tm::run_all_segments(ctx, txn);
    ctx.commit_epilogue();
  });
  if (r.committed) return true;  // signatures lived in mirrors only
  status = r.abort;
  return false;
}

PartHtmBackend::FastOutcome PartHtmBackend::run_fast(W& w, const tm::Txn& txn,
                                                     SiteState& site) {
  // Per-cause attempt budgets, halved per step of the site's failure
  // streak (floor 1): a site that keeps failing in hardware gets fewer
  // fast attempts before failover, and eventually quarantines (execute()).
  const unsigned shift = site.budget_shift();
  const auto scaled = [shift](unsigned base) {
    const unsigned b = base >> shift;
    return b == 0 ? 1u : b;
  };
  const tm::PolicyConfig& pol = cfg_.policy;
  CauseBudget budget(scaled(cfg_.htm_retries), scaled(pol.htm_capacity_retries),
                     scaled(cfg_.htm_retries), scaled(pol.htm_other_retries));
  JitterBackoff backoff(pol, &w.jitter_state);
  PHTM_TRACE_PATH(CommitPath::kHtm);
  for (;;) {
    // Lemming guard (bounded): don't start a hardware attempt that the
    // glock subscription would immediately kill — but a convoy of
    // slow-path holders must not pin us here forever either.
    BoundedSpin lemming_guard(pol.spin_escalation_bound);
    while (rt_.nontx_load(&glock_.value) != 0) {
      // mc-yield: glock held by a slow-path committer; only its release
      // store can unblock us.
      PHTM_MC_SPIN(&glock_.value);
      if (lemming_guard.exhausted()) return FastOutcome::kStarved;
    }
    sim::AbortStatus st;
    if (fast_once(w, txn, st)) {
      w.stats().record_commit(CommitPath::kHtm);
      PHTM_TRACE_TX_COMMIT(CommitPath::kHtm);
      site.on_hw_commit();
      return FastOutcome::kCommitted;
    }
    const AbortCause cause = to_cause(st);
    w.stats().record_abort(cause);
    PHTM_TRACE_TX_ABORT(cause, st.xabort_code, st.conflict_line);
    w.txn_snap.restore(txn);
    if (!budget.spend(cause)) {
      // Resource-shaped exhaustion steers to the partitioned path (the
      // remedy for footprints that don't fit, Sec. 4); conflict-shaped
      // exhaustion to the slow path (partitioning would not help).
      return (cause == AbortCause::kCapacity || cause == AbortCause::kOther)
                 ? FastOutcome::kResource
                 : FastOutcome::kExhausted;
    }
    backoff.pause();
  }
}

ValResult PartHtmBackend::validate_shards(W& w, const std::uint64_t* limits) {
  // One logical in-flight validation (Fig. 1 lines 34-41) spanning every
  // shard: `validations` counts the pass, the per-shard counters count the
  // shards whose ring was actually scanned. Shards the read signature does
  // not intersect advance their watermark in O(1) (one timestamp load, the
  // empty-rocc early-out in GlobalRing::validate) — advancing them is not
  // optional: PART-HTM-O's begin subscription compares every shard
  // timestamp against its watermark, so a stale untouched-shard watermark
  // would re-fire kXTsChanged forever.
  w.stats().add_validation();
  const std::uint64_t rocc = w.read_sig.occupancy();
  // tmfoot: bound(4) — one iteration per commit-pipeline shard.
  for (unsigned s = 0; s < ShardedRing::kShards; ++s) {
    const std::uint64_t limit = limits ? limits[s] : ~std::uint64_t{0};
    const std::uint64_t mask = Signature::shard_word_mask(s);
    if ((rocc & mask) == 0) {
      // Untouched shard: vacuous watermark advance, no ring traffic — not
      // counted or traced as a shard validation (the 1:1 event/counter
      // invariant tracks real scans).
      (void)ring_.shard(s).validate(rt_, w.validated_ts[s], w.read_sig, limit,
                                    mask);
      continue;
    }
    w.stats().add_ring_validate(s);
    const ValResult v =
        ring_.shard(s).validate(rt_, w.validated_ts[s], w.read_sig, limit, mask);
    PHTM_TRACE_RING_VALIDATE(v, w.validated_ts[s], s);
    if (v != ValResult::kOk) return v;
  }
  return ValResult::kOk;
}

bool PartHtmBackend::is_shard_ts_line(std::uint64_t line) noexcept {
  // tmfoot: bound(4) — one comparison per commit-pipeline shard.
  for (unsigned s = 0; s < ShardedRing::kShards; ++s)
    if (line == line_of(ring_.timestamp_addr(s))) return true;
  return false;
}

PartHtmBackend::POutcome PartHtmBackend::partitioned_once(W& w, const tm::Txn& txn) {
  // --- global begin (Fig. 1 lines 16-19) ---
  // Bounded wait: a glock convoy (repeated slow-path holders) would
  // otherwise spin this transaction forever. Escalating *before* the
  // active_tx increment leaves nothing to clean up.
  BoundedSpin begin_guard(cfg_.policy.spin_escalation_bound);
  while (rt_.nontx_load(&glock_.value) != 0) {
    // mc-yield: glock held by a slow-path committer; only its release
    // store can unblock us — force a deschedule.
    PHTM_MC_SPIN(&glock_.value);
    if (begin_guard.exhausted()) return POutcome::kStarved;
  }
  rt_.nontx_fetch_add(&active_tx_.value, 1);
  if (rt_.nontx_load(&glock_.value) != 0) {
    dec_active();
    return POutcome::kAborted;
  }
  // Begin snapshot: seed every shard watermark eagerly (four uncontended
  // loads); validation then touches only the shards the read signature
  // intersects.
  for (unsigned s = 0; s < ShardedRing::kShards; ++s)
    w.validated_ts[s] = rt_.nontx_load(ring_.timestamp_addr(s));
  w.read_sig.clear();
  w.write_sig.clear();
  w.agg_sig.clear();
  w.undo.clear();
  w.wrote = false;
#if defined(PHTM_PERSIST) && PHTM_PERSIST
  w.dseq = 0;
#endif

  unsigned seg = 0;
  bool more = true;
  while (more) {
#if defined(PHTM_FAULTS) && PHTM_FAULTS
    // Chaos: between sub-transactions the framework runs plain software —
    // the window where a preempted ("stalled") partitioned transaction
    // holds locks while making no progress, and where a rogue committer
    // can burn ring slots toward wraparound.
    if (auto* eng = rt_.fault_engine()) {
      const sim::FaultDecision fd =
          eng->visit(sim::FaultSite::kSubBoundary, w.th.slot());
      if (fd.kind == sim::FaultKind::kStall)
        sim::burn_work(fd.arg != 0 ? fd.arg : 10'000);
      if (fd.kind == sim::FaultKind::kRingPressure) {
        // Burn one slot in every shard ring: wraparound pressure is
        // per-shard now, so uniform pressure keeps the injector's reach.
        static const Signature kNoSig{};
        for (unsigned s = 0; s < ShardedRing::kShards; ++s) {
          GlobalRing& shard = ring_.shard(s);
          shard.fill_slot(rt_, shard.reserve(rt_), kNoSig);
        }
      }
    }
#endif
    // Compute-only segments run in the software framework, outside any
    // hardware transaction (paper Sec. 4, "Non-transactional Code").
    if (txn.seg_kind != nullptr &&
        txn.seg_kind(txn.env, txn.locals, seg) == tm::SegKind::kSw) {
      tm::DirectCtx soft;
      more = txn.step(soft, txn.env, txn.locals, seg);
      ++seg;
      continue;
    }

    w.seg_snap.save(txn);
    bool more_out = false;
    // Cause-aware sub-HTM budgets: conflicts retry up to the paper's
    // sub_htm_retries; resource-shaped aborts get short budgets (a
    // segment that does not fit will not fit next attempt either).
    CauseBudget sub_budget(cfg_.sub_htm_retries, cfg_.policy.sub_capacity_retries,
                           cfg_.sub_htm_retries, cfg_.policy.sub_other_retries);
    JitterBackoff sub_backoff(cfg_.policy, &w.jitter_state);
    unsigned ts_restarts = 0;
    for (;;) {
      PHTM_TRACE_SUB_BEGIN(seg);
      const sim::HtmResult r = rt_.attempt(w.th, [&](sim::HtmOps& ops) {
        if (mode_ == Mode::kOpaque) {
          // Timestamp subscription (Fig. 2 lines 23-24): any global commit
          // from now on — in any shard — aborts this sub-HTM transaction in
          // hardware. The comparison is against the validation watermarks,
          // not the begin snapshot: commits the last validation already
          // covered need not abort this sub-transaction.
          // tmfoot: bound(4) — one subscription per commit-pipeline shard.
          for (unsigned s = 0; s < ShardedRing::kShards; ++s)
            if (ops.read(ring_.timestamp_addr(s)) != w.validated_ts[s])
              ops.xabort(kXTsChanged);
        }
        SubCtx ctx(*this, w, ops);
        more_out = txn.step(ctx, txn.env, txn.locals, seg);
        ctx.commit_epilogue();
      });
      if (r.committed) {
        w.stats().add_sub_htm_commit();
        PHTM_TRACE_SUB_COMMIT(seg);
        break;
      }

      // --- sub-HTM abort handling (Sec. 5.3.5 / Fig. 2 lines 36-39) ---
      w.stats().add_sub_htm_abort();
      w.stats().record_abort(to_cause(r.abort));
      PHTM_TRACE_SUB_ABORT(seg, to_cause(r.abort));
      PHTM_TRACE_TX_ABORT(to_cause(r.abort), r.abort.xabort_code,
                          r.abort.conflict_line);
      w.seg_snap.restore(txn);
      w.undo.discard_staged();

      const bool locked_hit =
          r.abort.code == sim::AbortCode::kExplicit &&
          (r.abort.xabort_code == kXLocked || r.abort.xabort_code == kXLockedByOther);
      if (locked_hit) {
        // Conflict on the global write-lock: propagate to the enclosing
        // global transaction.
        global_abort(w);
        return POutcome::kAborted;
      }

      const bool ts_changed =
          (r.abort.code == sim::AbortCode::kExplicit &&
           r.abort.xabort_code == kXTsChanged) ||
          (mode_ == Mode::kOpaque && r.abort.code == sim::AbortCode::kConflict &&
           is_shard_ts_line(r.abort.conflict_line));
      if (ts_changed) {
        // PART-HTM-O: a global transaction committed in some shard;
        // re-validate and, if the snapshot still holds, restart only the
        // sub-HTM transaction. validate_shards advances *every* shard's
        // watermark (untouched shards in O(1)), so the subscription above
        // does not re-fire on the same commit.
        const ValResult v = validate_shards(w, nullptr);
        if (v != ValResult::kOk) {
          if (v == ValResult::kRollover) w.stats().add_ring_rollover();
          global_abort(w);
          return POutcome::kAborted;
        }
        // Fig. 2 restarts the sub-HTM transaction unconditionally; a high
        // bound only guards against pathological livelock.
        if (++ts_restarts > 1000) {
          global_abort(w);
          return POutcome::kAborted;
        }
        continue;
      }

      if (!sub_budget.spend(to_cause(r.abort))) {
        global_abort(w);
        return POutcome::kAborted;
      }
      sub_backoff.pause();
    }

    // --- sub post-commit, in software (Fig. 1 lines 31-33) ---
    // The undo log and aggregate signature absorb the just-committed
    // sub-transaction *before* validating, so a failing validation's abort
    // handler rolls back and unlocks everything including this segment.
#if defined(PHTM_PERSIST) && PHTM_PERSIST
    const std::size_t undo_mark = w.undo.committed().size();
#endif
    w.undo.promote_staged();
#if defined(PHTM_PERSIST) && PHTM_PERSIST
    persist_sub_commit(w, undo_mark);
#endif
    w.agg_sig.union_with(w.write_sig);
    w.write_sig.clear();
    if (cfg_.validate_after_each_sub || mode_ == Mode::kOpaque) {
      const ValResult v = validate_shards(w, nullptr);
      if (v != ValResult::kOk) {
        if (v == ValResult::kRollover) w.stats().add_ring_rollover();
        global_abort(w);
        return POutcome::kAborted;
      }
    }
    more = more_out;
    ++seg;
  }

  // --- global commit (Fig. 1 lines 42-52) ---
  if (!w.wrote) {
    dec_active();
    w.stats().record_commit(CommitPath::kSoftware);
    PHTM_TRACE_TX_COMMIT(CommitPath::kSoftware);
    return POutcome::kCommitted;
  }
  // Ring publication exists for *other* partitioned transactions to
  // validate against. If we are the only occupant of the partitioned path,
  // there is no validator: any partitioned transaction beginning later
  // takes a start time at or after this commit (our eager writes are
  // already published), so reserving a slot would be dead weight.
  const bool solo = rt_.nontx_load(&active_tx_.value) == 1;
  if (solo) {
    const ValResult v = validate_shards(w, nullptr);
    if (v != ValResult::kOk) {
      if (v == ValResult::kRollover) w.stats().add_ring_rollover();
      global_abort(w);
      return POutcome::kAborted;
    }
#if defined(PHTM_PERSIST) && PHTM_PERSIST
    persist_commit_record(w, nullptr);  // solo: no reserved timestamps
#endif
    release_locks(w);
#if defined(PHTM_PERSIST) && PHTM_PERSIST
    crash_seam(w);  // seam: commit durable, locks released
#endif
    w.read_sig.clear();
    w.agg_sig.clear();
    dec_active();
    w.stats().record_commit(CommitPath::kSoftware);
    PHTM_TRACE_TX_COMMIT(CommitPath::kSoftware);
    return POutcome::kCommitted;
  }
  // Cross-shard commit protocol: reserve a timestamp in *every* written
  // shard first, then fill every reserved slot with the real signature,
  // then validate *all* shards. The reserve-all-before-validate-any order
  // is what makes the independent per-shard timestamps jointly
  // serializable (see ShardedRing's class comment for the pairwise
  // argument); validation of a written shard is bounded by its reserved
  // timestamp (everything ordered before us), while read-only shards
  // validate to their current timestamp.
  const std::uint64_t wmask = Signature::shard_mask_of(w.agg_sig.occupancy());
  std::uint64_t ts[ShardedRing::kShards] = {};  // unwritten shards stay 0
  std::uint64_t limits[ShardedRing::kShards];
  for (unsigned s = 0; s < ShardedRing::kShards; ++s)
    limits[s] = ~std::uint64_t{0};
  // tmfoot: bound(4) — one reservation per written commit-pipeline shard.
  for (std::uint64_t m = wmask; m != 0; m &= m - 1) {
    const unsigned s = static_cast<unsigned>(std::countr_zero(m));
    ts[s] = ring_.shard(s).reserve(rt_);
    limits[s] = ts[s] - 1;
  }
  // Fill *before* validating — this is what keeps cross-shard commits
  // deadlock-free. Validation spins on reserved-but-unfilled slots, so a
  // committer that validated while holding unfilled slots could deadlock
  // with a peer whose per-shard reservation orders cross (see ShardedRing's
  // liveness comment). Publishing the signature of a not-yet-validated
  // commit is safe: the eager writes it describes are already in memory
  // (undo-logged), and a validator that intersects it either aborts
  // conservatively or — if this commit fails validation and revokes the
  // entry below — skips the retracted mask.
  // tmfoot: bound(4) — one slot fill per written commit-pipeline shard.
  for (std::uint64_t m = wmask; m != 0; m &= m - 1) {
    const unsigned s = static_cast<unsigned>(std::countr_zero(m));
    ring_.shard(s).fill_slot(rt_, ts[s], w.agg_sig,
                             Signature::shard_word_mask(s));
    w.stats().add_ring_publish(s);
    PHTM_TRACE_RING_PUBLISH(
        ts[s], w.agg_sig.popcount(Signature::shard_word_mask(s)), s);
  }
  // Commit-time validation of everything serialized before our reserved
  // timestamps. The paper argues the last in-flight validation suffices;
  // performing one more after the reservation closes the publication window
  // exactly (see DESIGN.md) at the cost the paper already accounts to the
  // in-flight mechanism.
  const ValResult v = validate_shards(w, limits);
  if (v != ValResult::kOk) {
    // Retract the published entries: this commit aborts and rolls back, so
    // its signature must stop producing (now-phantom) conflicts.
    // tmfoot: bound(4) — one revocation per written commit-pipeline shard.
    for (std::uint64_t m = wmask; m != 0; m &= m - 1) {
      const unsigned s = static_cast<unsigned>(std::countr_zero(m));
      ring_.shard(s).revoke_slot(rt_, ts[s]);
    }
    if (v == ValResult::kRollover) w.stats().add_ring_rollover();
    global_abort(w);
    return POutcome::kAborted;
  }
#if defined(PHTM_PERSIST) && PHTM_PERSIST
  persist_commit_record(w, ts);  // records the shard serialization point
#endif
  release_locks(w);
#if defined(PHTM_PERSIST) && PHTM_PERSIST
  crash_seam(w);  // seam: commit durable, locks released
#endif
  w.read_sig.clear();
  w.agg_sig.clear();
  dec_active();
  w.stats().record_commit(CommitPath::kSoftware);
  PHTM_TRACE_TX_COMMIT(CommitPath::kSoftware);
  return POutcome::kCommitted;
}

void PartHtmBackend::release_locks(W& w) {
  if (mode_ == Mode::kSerializable) {
    // Fig. 1 lines 48-49: clear this transaction's bits from the sharded
    // lock table (each word lives in exactly one shard's table). Aliased
    // bits may be cleared too — the paper's protocol has the same property.
    // The tables' occupancy masks are left alone (a stale superset is
    // benign; clearing one could race a committer).
    for (std::uint64_t rest = w.agg_sig.occupancy(); rest != 0; rest &= rest - 1) {
      const unsigned i = static_cast<unsigned>(std::countr_zero(rest));
      const std::uint64_t bits = w.agg_sig.words()[i];
      if (bits)
        rt_.nontx_fetch_and(
            &write_locks_[Signature::shard_of_word(i)].words()[i], ~bits);
    }
  } else {
    // Fig. 2 lines 55-56 / 61-62: unlock every written address.
    for (const auto& e : w.undo.committed())
      rt_.nontx_store(tm::TmHeap::instance().shadow_of(e.addr), 0);
  }
}

void PartHtmBackend::global_abort(W& w) {
  // Fig. 1 lines 53-58: restore displaced values (reverse order so the
  // oldest value lands last), release locks, leave the path.
  const auto& log = w.undo.committed();
  for (auto it = log.rbegin(); it != log.rend(); ++it)
    rt_.nontx_store(it->addr, it->old_val);
#if defined(PHTM_PERSIST) && PHTM_PERSIST
  persist_abort_record(w);
#endif
  release_locks(w);
  w.read_sig.clear();
  w.write_sig.clear();
  w.agg_sig.clear();
  w.undo.clear();
  w.stats().add_global_abort();
  PHTM_TRACE_GLOBAL_ABORT();
  dec_active();
}

#if defined(PHTM_PERSIST) && PHTM_PERSIST

void PartHtmBackend::crash_seam(W& w) {
#if defined(PHTM_FAULTS) && PHTM_FAULTS
  if (pdom_ == nullptr) return;
  if (auto* eng = rt_.fault_engine()) {
    const sim::FaultDecision fd =
        eng->visit(sim::FaultSite::kCrashPoint, w.th.slot());
    if (fd.kind == sim::FaultKind::kCrash) pdom_->freeze(&w.stats());
  }
#else
  (void)w;  // persist without faults: no crash seams, durability only
#endif
}

void PartHtmBackend::persist_sub_commit(W& w, std::size_t mark) {
  if (pdom_ == nullptr) return;
  const auto& log = w.undo.committed();
  if (log.size() == mark) return;  // read-only segment: nothing durable
  if (w.dseq == 0) w.dseq = dlog_->alloc_seq();
  // WAL order: chunk cells first, fence, THEN the data words — so a torn
  // chunk implies its data never reached the durable image (recovery
  // treats the chunk as absent and the data is still old; see durable.hpp).
  dlog_->append_undo_chunk(*pdom_, &w.stats(), w.dseq, &log[mark],
                           log.size() - mark);
  pdom_->pfence(&w.stats());
  crash_seam(w);  // seam: chunk durable, data write-backs not yet issued
  for (std::size_t i = mark; i < log.size(); ++i)
    pdom_->pwb(log[i].addr, &w.stats());
  crash_seam(w);  // seam: data write-backs pending, not yet fenced
}

void PartHtmBackend::persist_commit_record(W& w, const std::uint64_t* shard_ts) {
  if (pdom_ == nullptr || w.dseq == 0) return;
  // Drain the data write-backs of every chunk, then make the verdict
  // durable. Locks are still held: release happens only after the record
  // fence below, which is what keeps unresolved-at-crash transactions
  // address-disjoint from everything resolved.
  pdom_->pfence(&w.stats());
  crash_seam(w);  // seam: data durable, commit record not yet appended
  dlog_->append_outcome(*pdom_, &w.stats(), persist::RecordKind::kCommit,
                        w.dseq, shard_ts);
  pdom_->pfence(&w.stats());
  crash_seam(w);  // seam: commit durable, locks still held
}

void PartHtmBackend::persist_abort_record(W& w) {
  if (pdom_ == nullptr || w.dseq == 0) return;
  // The volatile rollback has already restored the displaced values; make
  // the restoration durable, then the verdict, then (caller) the unlock.
  const auto& log = w.undo.committed();
  for (const auto& e : log) pdom_->pwb(e.addr, &w.stats());
  pdom_->pfence(&w.stats());
  dlog_->append_outcome(*pdom_, &w.stats(), persist::RecordKind::kAbort,
                        w.dseq, nullptr);
  pdom_->pfence(&w.stats());
}

/// Durable slow path context: DirectCtx's strong-atomicity routing plus a
/// value undo record per write, so the glock holder can run the same WAL
/// protocol as the partitioned path before releasing the lock.
class PersistDirectCtx final : public tm::Ctx {
 public:
  explicit PersistDirectCtx(sim::HtmRuntime& rt) : rt_(rt) {}

  std::uint64_t read(const std::uint64_t* addr) override {
    sim::burn_work(tm::kDirectAccessCost);
    return rt_.nontx_load(addr);
  }
  void write(std::uint64_t* addr, std::uint64_t val) override {
    sim::burn_work(tm::kDirectAccessCost);
    // span-waiver: slow-path-only context — runs under the global lock,
    // never inside a hardware transaction.
    undo.push_back({addr, rt_.nontx_load(addr)});
    rt_.nontx_store(addr, val);
  }
  void work(std::uint64_t n) override { sim::burn_work(n); }

  std::vector<UndoLog::Entry> undo;

 private:
  sim::HtmRuntime& rt_;
};

#endif  // PHTM_PERSIST

void PartHtmBackend::slow_path(W& w, const tm::Txn& txn) {
  // Fig. 1 lines 61-65: acquire the global lock (aborting every hardware
  // subscriber via strong atomicity), wait out the partitioned population,
  // then run uninstrumented.
  //
  // Admission is a FIFO ticket queue: transactions reach here because every
  // other path failed them — a bare CAS race would let a fresh arrival
  // overtake a starvation victim indefinitely. glock_ stays the single word
  // the hardware paths subscribe to; only the serving ticket asserts it.
  PHTM_TRACE_PATH(CommitPath::kGlobalLock);
  const std::uint64_t ticket = rt_.nontx_fetch_add(&gl_ticket_.value, 1);
  while (rt_.nontx_load(&gl_serving_.value) != ticket) {
    // mc-yield: FIFO admission — only the predecessor's hand-off
    // (gl_serving_ increment) can admit us.
    PHTM_MC_SPIN(&gl_serving_.value);
    // spin-waiver: starvation-free by construction — each predecessor
    // holds the lock for one finite transaction and then increments the
    // serving counter, which reaches every ticket in bounded hand-offs.
    cpu_relax();
  }
  rt_.nontx_store(&glock_.value, 1);
  while (rt_.nontx_load(&active_tx_.value) != 0) {
    // mc-yield: quiescence wait — only partitioned transactions draining
    // (commit or global_abort) can decrement active_tx.
    PHTM_MC_SPIN(&active_tx_.value);
    // spin-waiver: monotone drain — glock_ is already up, so no new
    // partitioned transaction can enter; active_tx_ only counts down and
    // the wait is bounded by the in-flight population.
    cpu_relax();
  }
#if defined(PHTM_FAULTS) && PHTM_FAULTS
  // Chaos: a stall injected here models a slow-path holder preempted while
  // every other thread convoys behind the asserted glock.
  if (auto* eng = rt_.fault_engine()) {
    const sim::FaultDecision fd =
        eng->visit(sim::FaultSite::kGlockHeld, w.th.slot());
    if (fd.kind == sim::FaultKind::kStall)
      sim::burn_work(fd.arg != 0 ? fd.arg : 10'000);
  }
#endif
#if defined(PHTM_PERSIST) && PHTM_PERSIST
  if (pdom_ != nullptr) {
    // Durable slow path: same WAL shape as the partitioned path, run in
    // one piece while the global lock is held (the glock IS the lock that
    // must outlive the outcome record — an unresolved slow transaction at
    // crash is trivially disjoint from every concurrent one).
    PersistDirectCtx ctx(rt_);
    tm::run_all_segments(ctx, txn);
    if (!ctx.undo.empty()) {
      w.dseq = dlog_->alloc_seq();
      dlog_->append_undo_chunk(*pdom_, &w.stats(), w.dseq, ctx.undo.data(),
                               ctx.undo.size());
      pdom_->pfence(&w.stats());
      crash_seam(w);  // seam: chunk durable, data write-backs pending
      for (const auto& e : ctx.undo) pdom_->pwb(e.addr, &w.stats());
      pdom_->pfence(&w.stats());
      crash_seam(w);  // seam: data durable, commit record not appended
      dlog_->append_outcome(*pdom_, &w.stats(), persist::RecordKind::kCommit,
                            w.dseq, nullptr);
      pdom_->pfence(&w.stats());
      crash_seam(w);  // seam: commit durable, glock still held
      w.dseq = 0;
    }
  } else {
    tm::DirectCtx ctx(rt_);  // strong-atomicity routed (see DirectCtx)
    tm::run_all_segments(ctx, txn);
  }
#else
  tm::DirectCtx ctx(rt_);  // strong-atomicity routed (see DirectCtx)
  tm::run_all_segments(ctx, txn);
#endif
  rt_.nontx_store(&glock_.value, 0);
  // Hand off after the release store: the successor re-asserts glock_
  // itself, and the short free window lets hardware transactions slip
  // through between back-to-back slow-path commits.
  rt_.nontx_fetch_add(&gl_serving_.value, 1);
  w.stats().record_commit(CommitPath::kGlobalLock);
  PHTM_TRACE_TX_COMMIT(CommitPath::kGlobalLock);
}

void PartHtmBackend::execute(tm::Worker& wb, const tm::Txn& txn) {
  W& w = static_cast<W&>(wb);
  PHTM_TRACE_TX_BEGIN();
  if (txn.irrevocable) {
    w.stats().record_fallback(FallbackReason::kIrrevocable);
    PHTM_TRACE_FALLBACK(FallbackReason::kIrrevocable);
    slow_path(w, txn);
    return;
  }
  w.txn_snap.save(txn);

  // The transaction's step function identifies its site for the
  // degradation heuristics (one logical transaction type per call site).
  SiteState& site = sites_.of(reinterpret_cast<const void*>(txn.step));
  bool skip_fast = no_fast_ || degraded();
#if defined(PHTM_PERSIST) && PHTM_PERSIST
  // Durable mode: fast-path hardware commits publish writes without undo
  // chunks, so they cannot be WAL-ordered — route everything through the
  // partitioned (or slow) path, the same plumbing as degraded mode.
  skip_fast = skip_fast || pdom_ != nullptr;
#endif
  if (!skip_fast) {
    if (site.should_skip_fast(cfg_.policy)) {
      // Quarantined site (persistent hardware failure): go straight to
      // the software paths until a probe re-admits it.
      w.stats().record_fallback(FallbackReason::kQuarantine);
      PHTM_TRACE_FALLBACK(FallbackReason::kQuarantine);
    } else {
      switch (run_fast(w, txn, site)) {
        case FastOutcome::kCommitted:
          return;
        case FastOutcome::kStarved:
          // A slow-path convoy starved the lemming guard; the ticketed
          // queue is exactly the fair admission that convoy drains through.
          w.stats().record_fallback(FallbackReason::kStarvation);
          PHTM_TRACE_FALLBACK(FallbackReason::kStarvation);
          slow_path(w, txn);
          return;
        case FastOutcome::kExhausted:
          // Repeated failures for reasons other than resource limitation
          // (extreme conflicts): the paper reserves the global lock for
          // exactly this class (Sec. 4, "Slow Path") — partitioning would
          // not help.
          site.on_hw_exhausted(cfg_.policy);
          w.stats().record_fallback(FallbackReason::kConflictExhaustion);
          PHTM_TRACE_FALLBACK(FallbackReason::kConflictExhaustion);
          slow_path(w, txn);
          return;
        case FastOutcome::kResource:
          // Resource failure: partitioning is the remedy — stop burning
          // fast attempts (Sec. 4, "Partitioned Path").
          site.on_hw_exhausted(cfg_.policy);
          break;
      }
    }
  }

  JitterBackoff backoff(cfg_.policy, &w.jitter_state);
  PHTM_TRACE_PATH(CommitPath::kSoftware);
  for (unsigned g = 0; g < cfg_.partitioned_retries; ++g) {
    const POutcome o = partitioned_once(w, txn);
    if (o == POutcome::kCommitted) return;
    if (o == POutcome::kStarved) {
      // The global-begin glock wait hit its bound (convoy): escalate to
      // the fair queue rather than re-spinning the same wait.
      w.stats().record_fallback(FallbackReason::kStarvation);
      PHTM_TRACE_FALLBACK(FallbackReason::kStarvation);
      slow_path(w, txn);
      return;
    }
    w.txn_snap.restore(txn);
    backoff.pause();  // Fig. 1 line 59
  }
  // Extreme contention (or a pathological ring): mutual exclusion wins.
  w.stats().record_fallback(FallbackReason::kPartitionedExhaustion);
  PHTM_TRACE_FALLBACK(FallbackReason::kPartitionedExhaustion);
  slow_path(w, txn);
}

}  // namespace phtm::core
