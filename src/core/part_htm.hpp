// PART-HTM and PART-HTM-O (paper Secs. 4-5): the hybrid TM that rescues
// transactions aborted by best-effort HTM resource limitations by splitting
// them into sub-HTM transactions glued together by a software framework.
//
// Three-path execution:
//   fast        — whole transaction as one hardware transaction with light
//                 instrumentation (signatures + lock-table check + ring
//                 publication);
//   partitioned — one sub-HTM transaction per segment, eager writes with a
//                 value undo-log, Bloom write-lock table, in-flight
//                 validation against the global ring;
//   slow        — global lock, mutually exclusive with everything via the
//                 active_tx handshake.
//
// Mode::kOpaque implements PART-HTM-O (Fig. 2): per-address
// encounter-time write locks in the TM heap's shadow words (the repo's
// address-embedded-lock equivalent, see DESIGN.md) and global-timestamp
// subscription at every sub-HTM begin.
#pragma once

#include "core/policy.hpp"
#include "core/ring.hpp"
#include "core/undo.hpp"
#include "sig/signature.hpp"
#include "sim/runtime.hpp"
#include "tm/backend.hpp"
#include "util/cacheline.hpp"

#if defined(PHTM_PERSIST) && PHTM_PERSIST
#include "core/durable.hpp"
#include "sim/persist.hpp"
#endif

namespace phtm::core {

class PartHtmBackend final : public tm::Backend {
 public:
  enum class Mode { kSerializable, kOpaque };

  PartHtmBackend(sim::HtmRuntime& rt, const tm::BackendConfig& cfg, Mode mode,
                 bool no_fast);

  const char* name() const override;
  std::unique_ptr<tm::Worker> make_worker(unsigned tid) override;
  void execute(tm::Worker& w, const tm::Txn& txn) override;

  /// Overload-controller degrade hook (tm::Backend): while set, every
  /// transaction skips the hardware fast path and runs force-partitioned —
  /// the same routing as the no-fast construction flavor, but toggled at
  /// runtime by the serving layer's controller thread.
  void set_degraded(bool on) noexcept override {
    // relaxed: advisory path-selection flag — a worker that misses the
    // flip by one transaction merely burns (or skips) one more fast
    // attempt; no protocol ordering runs through it.
    degraded_.store(on ? 1u : 0u, std::memory_order_relaxed);
  }
  bool degraded() const noexcept override {
    // relaxed: see set_degraded.
    return degraded_.load(std::memory_order_relaxed) != 0;
  }

  // Introspection for tests/benches.
  const Signature& write_locks(unsigned shard) const noexcept {
    return write_locks_[shard];
  }
  /// True when no shard's lock table holds any lock bit. Snapshot-based so
  /// it is safe to call while other threads are still running (tests).
  bool write_locks_empty() const noexcept {
    for (unsigned s = 0; s < Signature::kShards; ++s)
      if (!write_locks_[s].atomic_snapshot().empty()) return false;
    return true;
  }
  ShardedRing& ring() noexcept { return ring_; }

#if defined(PHTM_PERSIST) && PHTM_PERSIST
  /// Durable mode (PHTM_PERSIST flavor only): run the write-ahead durable
  /// commit protocol against `dom`/`log`. The harness owns both — they are
  /// the "persistent memory" that survives an injected crash while this
  /// backend's own state (locks, ring, tickets) is volatile and must be
  /// quiescent (threads joined) when the crash is taken. Durable mode
  /// routes every transaction through the partitioned or slow path: fast
  /// hardware commits are not undo-logged, so they cannot be WAL-ordered.
  void set_persist(persist::PersistDomain* dom,
                   persist::DurableLog* log) noexcept {
    pdom_ = dom;
    dlog_ = log;
  }
  bool persist_on() const noexcept { return pdom_ != nullptr; }
  persist::PersistDomain* persist_domain() noexcept { return pdom_; }
  persist::DurableLog* durable_log() noexcept { return dlog_; }

  /// Post-crash recovery entry point (see persist::recover). Call after
  /// PersistDomain::crash() with all workers joined; afterwards the same
  /// backend may resume executing transactions (its volatile protocol
  /// state is clean by quiescence, and memory now equals the recovered
  /// durable image).
  persist::RecoveryReport recover_durable(
      StatSheet* st = nullptr, std::uint64_t max_steps = ~std::uint64_t{0}) {
    return persist::recover(*pdom_, *dlog_, st, max_steps);
  }
#endif

 private:
  struct W;
  class FastCtx;
  class SubCtx;

  enum class POutcome { kCommitted, kAborted, kStarved };

  /// Terminal verdict of the fast-path retry loop (the contention
  /// manager's first decision; DESIGN.md "Robustness & contention
  /// management").
  enum class FastOutcome {
    kCommitted,  ///< hardware commit
    kResource,   ///< resource-shaped budget spent -> partitioned path
    kExhausted,  ///< conflict/explicit budget spent -> slow path
    kStarved,    ///< lemming guard escalated -> ticketed slow path
  };

  /// One fast-path hardware attempt; true = committed.
  bool fast_once(W& w, const tm::Txn& txn, sim::AbortStatus& status);

  /// Fast-path retry loop under per-cause budgets and jittered backoff.
  FastOutcome run_fast(W& w, const tm::Txn& txn, SiteState& site);

  /// One partitioned-path execution (global begin .. commit/abort).
  POutcome partitioned_once(W& w, const tm::Txn& txn);

  /// Validate the read signature against every shard ring, advancing the
  /// per-shard watermarks. Shards the (occupancy-masked) read signature
  /// does not intersect advance in O(1); `limits`, when non-null, bounds
  /// each shard's validation range (commit-time validation of reserved
  /// timestamps). Returns the first non-kOk shard verdict.
  ValResult validate_shards(W& w, const std::uint64_t* limits);

  /// Whether `line` is one of the shard timestamps' cache lines (PART-HTM-O
  /// timestamp-subscription conflict detection).
  bool is_shard_ts_line(std::uint64_t line) noexcept;

  void slow_path(W& w, const tm::Txn& txn);

#if defined(PHTM_PERSIST) && PHTM_PERSIST
  /// Consult the fault engine at the kCrashPoint seam; a kCrash decision
  /// freezes the persist domain (the crash instant — execution continues,
  /// see PersistDomain::freeze).
  void crash_seam(W& w);
  /// WAL steps for one committed sub-transaction: undo chunks -> fence ->
  /// data write-backs (entries [mark, end) of the promoted undo log).
  void persist_sub_commit(W& w, std::size_t mark);
  /// Durable commit point: drain data, append the Commit record
  /// (shard_ts = 4 reserved timestamps, or null for solo commits), fence.
  /// Must run BEFORE release_locks.
  void persist_commit_record(W& w, const std::uint64_t* shard_ts);
  /// Durable abort point: write back the rolled-back words, fence, append
  /// the Abort record, fence. Must run BEFORE release_locks.
  void persist_abort_record(W& w);
#endif

  /// Undo committed sub-HTM writes, release locks, leave the path.
  void global_abort(W& w);
  void release_locks(W& w);
  void dec_active();

  sim::HtmRuntime& rt_;
  tm::BackendConfig cfg_;
  Mode mode_;
  bool no_fast_;

  ShardedRing ring_;                   ///< per-shard commit rings + timestamps
  /// Shared Bloom lock table (Fig. 1), sharded by signature word group:
  /// shard s owns the global word indices in Signature::shard_word_mask(s)
  /// and only those words (plus its own occupancy mask) are ever populated
  /// in write_locks_[s]. Committers in disjoint shards therefore touch
  /// disjoint cache lines — including the occupancy word, which in the
  /// unsharded table was a single line every writing sub-commit contended
  /// on.
  Signature write_locks_[Signature::kShards];
  // glock_ deliberately carries no PHTM_CAPABILITY annotation: it is a
  // plain word acquired by CAS through the simulator's strong-atomicity
  // helpers and *subscribed to* by hardware transactions (ops.read at
  // begin), a protocol Clang's -Wthread-safety cannot model. Its
  // discipline is checked dynamically (TSan + the doom/subscription
  // machinery) and structurally by tools/tmcheck instead.
  Padded<std::uint64_t> glock_{0};     ///< slow-path global lock (held flag)
  Padded<std::uint64_t> active_tx_{0}; ///< partitioned-path population count
  // FIFO ticket pair in front of the glock: escalating transactions are
  // starvation victims by definition, so slow-path entry is served in
  // arrival order. glock_ stays the single word hardware transactions
  // subscribe to; only the serving ticket holder asserts it.
  Padded<std::uint64_t> gl_ticket_{0};   ///< next ticket to hand out
  Padded<std::uint64_t> gl_serving_{0};  ///< ticket currently admitted
  SiteTable sites_;                      ///< per-site degradation state
  // shared-atomic: overload-controller degrade flag — written by the
  // serving layer's controller thread, read by every worker at execute()
  // entry. Pure path selection (fast vs force-partitioned); correctness
  // never depends on when a worker observes a flip.
  alignas(kCacheLineBytes) std::atomic<std::uint32_t> degraded_{0};
#if defined(PHTM_PERSIST) && PHTM_PERSIST
  persist::PersistDomain* pdom_ = nullptr;  ///< harness-owned; null = off
  persist::DurableLog* dlog_ = nullptr;     ///< harness-owned; null = off
#endif
};

}  // namespace phtm::core
