// Cause-aware contention management for PART-HTM (the policy engine the
// DESIGN.md "Robustness & contention management" section describes).
//
// Four small mechanisms, composed by part_htm.cpp:
//
//   - CauseBudget: per-cause attempt budgets. Resource-shaped aborts
//     (capacity, duration) fail over immediately by default — re-burning
//     a footprint that cannot fit is the pathology the paper's
//     partitioned path exists to avoid — while conflict-shaped aborts
//     retry under backoff.
//   - JitterBackoff: capped exponential backoff with deterministic
//     per-thread jitter. The jitter stream lives in the worker (not a
//     global RNG), so runs replay exactly and convoying threads desync.
//   - BoundedSpin: the starvation detector. Every wait loop in the
//     backend polls it; when the bound is spent the caller escalates to
//     the ticketed slow path instead of spinning forever (lint rule R8:
//     unbounded spins must escalate or carry an explicit waiver).
//   - SiteTable/SiteState: graceful degradation. A transaction site
//     (hashed step function) with a persistent hardware-failure streak is
//     quarantined to the software paths; periodic probe transactions
//     re-try the hardware and one clean commit re-admits the site.
#pragma once

#include <atomic>
#include <cstdint>

#include "tm/backend.hpp"
#include "util/cacheline.hpp"
#include "util/hash.hpp"
#include "util/stats.hpp"

namespace phtm::core {

/// Capped exponential backoff with deterministic per-thread jitter.
/// `jitter_state` is the owning worker's xorshift64 word: same seed, same
/// pause sequence, regardless of cross-thread timing.
class JitterBackoff {
 public:
  JitterBackoff(const tm::PolicyConfig& pc,
                std::uint64_t* jitter_state) noexcept
      : cur_(pc.backoff_min_spins),
        max_(pc.backoff_max_spins),
        state_(jitter_state) {}

  void pause() noexcept {
    std::uint64_t x = *state_;  // xorshift64; never zero (seeded | 1)
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state_ = x;
    const std::uint64_t n = cur_ + (x % cur_) / 2;
    for (std::uint64_t i = 0; i < n; ++i) {
      // spin-waiver: a bounded pause (<= 1.5 * backoff_max_spins polls),
      // not a wait loop — it observes no other thread's state and cannot
      // be starved.
      cpu_relax();
    }
    if (cur_ < max_) cur_ *= 2;
  }

 private:
  std::uint64_t cur_;
  std::uint64_t max_;
  std::uint64_t* state_;
};

/// Bounded-wait starvation detector: wraps the polls of a spin loop and
/// reports when the caller must stop waiting and escalate.
class BoundedSpin {
 public:
  explicit BoundedSpin(std::uint64_t bound) noexcept : left_(bound) {}

  /// One poll. True when the wait bound is spent: the caller escalates
  /// (fair slow path) instead of spinning on.
  bool exhausted() noexcept {
    if (left_ == 0) return true;
    --left_;
    // spin-escalates: every loop polling this detector gives up after
    // `bound` iterations and takes the ticketed slow path.
    cpu_relax();
    return false;
  }

 private:
  std::uint64_t left_;
};

/// Per-cause attempt budgets for one transaction's retry loop. A budget
/// of N means N total attempts charged to that cause; 1 reproduces the
/// historical "resource aborts fail over immediately" behavior.
class CauseBudget {
 public:
  CauseBudget(unsigned conflict, unsigned capacity, unsigned xplicit,
              unsigned other) noexcept {
    n_[static_cast<unsigned>(AbortCause::kConflict)] = conflict;
    n_[static_cast<unsigned>(AbortCause::kCapacity)] = capacity;
    n_[static_cast<unsigned>(AbortCause::kExplicit)] = xplicit;
    n_[static_cast<unsigned>(AbortCause::kOther)] = other;
  }

  /// Charge one failed attempt to `c`; false when the cause's budget is
  /// now spent and the caller must leave this path.
  bool spend(AbortCause c) noexcept {
    unsigned& n = n_[static_cast<unsigned>(c)];
    if (n == 0) return false;
    return --n != 0;
  }

 private:
  unsigned n_[static_cast<unsigned>(AbortCause::kCauseCount)] = {};
};

/// Degradation state of one transaction site. Sites are hashed, so two
/// step functions may share a state; that only blends their failure
/// heuristics, never correctness.
struct alignas(kCacheLineBytes) SiteState {
  // shared-atomic: contention-manager heuristic inputs (failure streak,
  // quarantine flag, probe clock) shared by every worker hashing to this
  // site. They tune path selection only — a stale read mis-tunes one
  // decision; no protocol ordering runs through them.
  std::atomic<std::uint32_t> hw_fail_streak{0};
  std::atomic<std::uint32_t> quarantined{0};
  std::atomic<std::uint32_t> probe_clock{0};

  /// A hardware fast-path commit: the site is healthy; lift quarantine.
  void on_hw_commit() noexcept {
    // relaxed: heuristic state (see shared-atomic note above).
    hw_fail_streak.store(0, std::memory_order_relaxed);
    if (quarantined.load(std::memory_order_relaxed) != 0)
      quarantined.store(0, std::memory_order_relaxed);
  }

  /// The fast path gave up on hardware grounds (budget exhausted on a
  /// resource- or conflict-shaped cause — not a starvation escalation,
  /// which says nothing about the hardware).
  void on_hw_exhausted(const tm::PolicyConfig& pc) noexcept {
    // relaxed: heuristic state (see shared-atomic note above).
    const std::uint32_t s =
        hw_fail_streak.fetch_add(1, std::memory_order_relaxed) + 1;
    if (s >= pc.quarantine_after) quarantined.store(1, std::memory_order_relaxed);
  }

  /// Shift applied to the fast-path budgets: a failing site gets fewer
  /// hardware attempts before failover (halved per streak step, floor 1).
  unsigned budget_shift() const noexcept {
    // relaxed: heuristic state (see shared-atomic note above).
    const std::uint32_t s = hw_fail_streak.load(std::memory_order_relaxed);
    return s < 3 ? s : 3;
  }

  /// True when this transaction should skip the hardware fast path:
  /// the site is quarantined and this is not a probe (every
  /// `quarantine_probe_period`-th arrival retries the hardware).
  bool should_skip_fast(const tm::PolicyConfig& pc) noexcept {
    // relaxed: heuristic state (see shared-atomic note above).
    if (quarantined.load(std::memory_order_relaxed) == 0) return false;
    const std::uint32_t t =
        probe_clock.fetch_add(1, std::memory_order_relaxed) + 1;
    return pc.quarantine_probe_period == 0 ||
           t % pc.quarantine_probe_period != 0;
  }
};

/// Fixed-size hashed table of site states (one per backend instance).
class SiteTable {
 public:
  static constexpr unsigned kSites = 64;

  /// State for the site identified by `key` (the transaction's step
  /// function pointer: one logical transaction type per call site).
  SiteState& of(const void* key) noexcept {
    const std::uint64_t h =
        mix64(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(key)));
    return sites_[h & (kSites - 1)];
  }

  /// Number of currently quarantined sites — the overload controller's
  /// "quarantine pressure" input (src/core/signals.hpp). A moving count:
  /// sites may flip while the scan runs; the consumer is a heuristic.
  unsigned quarantined_count() const noexcept {
    unsigned n = 0;
    for (const SiteState& s : sites_)
      // relaxed: heuristic introspection of the quarantine flag (see the
      // shared-atomic note on SiteState) — a stale read skews one poll.
      if (s.quarantined.load(std::memory_order_relaxed) != 0) ++n;
    return n;
  }

 private:
  SiteState sites_[kSites];
};

}  // namespace phtm::core
