// PART-HTM's global ring and timestamp (paper Sec. 5.1, "global-ring" /
// "global-timestamp"), shared by the fast and partitioned paths.
//
// The ring stores the write signature of every committed writing
// transaction, indexed by commit timestamp, and backs the in-flight
// validation (Fig. 1 lines 34-41). Two kinds of committers fill it:
//
//  - fast-path transactions publish *inside* their hardware transaction
//    (Fig. 1 lines 9-11): they read the timestamp, claim the next slot and
//    write entry + timestamp transactionally, so hardware conflict
//    detection serializes concurrent claims (the metadata false-conflict
//    cost the paper measures at high thread counts);
//  - partitioned-path commits reserve a timestamp with a software
//    fetch-add (the paper's "atomic" block, Fig. 1 lines 45-47) and then
//    fill their slot; per-slot sequence numbers let validators wait for
//    in-flight fills and detect slot reuse (rollover) instead of reading
//    torn signatures.
//
// The strong-atomicity helpers make the two sides interact exactly as on
// real hardware: a software fetch-add on the timestamp aborts every
// hardware transaction that has subscribed to or claimed it.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sig/signature.hpp"
#include "sim/runtime.hpp"
#include "util/annotations.hpp"
#include "util/cacheline.hpp"
#include "util/mc_hooks.hpp"

namespace phtm::core {

// raw-atomic: designated acquire-load helper for ring/lock-table words that
// are *stable* while being read (seq-validated or subscription-protected);
// going through nontx_load here would re-run conflict invalidation per word.
inline std::uint64_t aload(const std::uint64_t* p) noexcept {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

enum class ValResult { kOk, kConflict, kRollover };

class GlobalRing {
 public:
  static constexpr std::uint64_t kBusy = std::uint64_t{1} << 63;

  explicit GlobalRing(unsigned entries) : slots_(entries) {}

  std::uint64_t* timestamp_addr() noexcept { return &timestamp_.value; }
  unsigned size() const noexcept { return static_cast<unsigned>(slots_.size()); }

  /// Final seq value the slot for `ts` holds before `ts` claims it.
  std::uint64_t expected_prev(std::uint64_t ts) const noexcept {
    return ts >= slots_.size() ? ts - slots_.size() : 0;
  }

  /// Fast-path publication, executed inside a hardware transaction at
  /// commit time. Explicitly aborts (retryable) if the slot's previous
  /// occupant is still publishing. Only nonzero signature words are
  /// written; the per-entry word mask tells validators which words are
  /// live, so stale slot contents need not be cleared — this keeps the
  /// commit-time footprint proportional to the write-set size, as on real
  /// hardware where the published signature is a handful of lines.
  ///
  /// `word_mask` restricts which signature words participate: a shard of a
  /// ShardedRing only publishes (and only validates) the word group it
  /// owns, so a cross-shard write set is split across shard rings without
  /// materializing per-shard signature copies.
  void publish_in_htm(sim::HtmOps& ops, const Signature& wsig,
                      std::uint32_t busy_xabort_code,
                      std::uint64_t word_mask = ~std::uint64_t{0}) {
    const std::uint64_t ts = ops.read(&timestamp_.value) + 1;
    Slot& s = slot_of(ts);
    if (ops.read(&s.seq) != expected_prev(ts)) ops.xabort(busy_xabort_code);
    ops.write(&s.seq, ts | kBusy);
    std::uint64_t mask = 0;
    // tmfoot: bound(32) — one occupancy bit per nonzero signature word
    // (Signature::kWords = 32 for BloomSig<2048>).
    for (std::uint64_t rest = wsig.occupancy() & word_mask; rest != 0;
         rest &= rest - 1) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(rest));
      if (wsig.words()[w] == 0) continue;  // occupancy may be a superset
      mask |= std::uint64_t{1} << w;
      ops.write(&s.sig.words()[w], wsig.words()[w]);
    }
    ops.write(&s.mask, mask);
    ops.write(&s.seq, ts);
    // Timestamp last: in publication order the entry is complete before the
    // new timestamp becomes visible to validators.
    ops.write(&timestamp_.value, ts);
  }

  /// Software-side timestamp reservation (partitioned-path commit).
  std::uint64_t reserve(sim::HtmRuntime& rt) {
    return rt.nontx_fetch_add(&timestamp_.value, 1) + 1;
  }

  /// Fill the slot reserved for `ts`. Waits for the retired occupant.
  /// `word_mask` restricts the published words (see publish_in_htm).
  ///
  /// The slot is acquired with a CAS (not a wait-then-store) so that the
  /// acquisition serializes against revoke_slot: the previous occupant's
  /// revocation and the next occupant's claim both CAS on seq, and exactly
  /// one of them wins each race.
  void fill_slot(sim::HtmRuntime& rt, std::uint64_t ts, const Signature& sig,
                 std::uint64_t word_mask = ~std::uint64_t{0}) {
    Slot& s = slot_of(ts);
    const std::uint64_t prev = expected_prev(ts);
    while (aload(&s.seq) != prev ||
           !rt.nontx_cas(&s.seq, prev, ts | kBusy)) {
      // mc-yield: waiting for the retired occupant's final seq store (or
      // the end of its revocation window); only that publisher can change
      // seq, so this must deschedule under mc.
      PHTM_MC_SPIN(&s.seq);
      // spin-waiver: the occupant is a committer running a finite,
      // lock-free fill (or revocation) that ends in its seq store
      // unconditionally — the wait is bounded by one publication, with no
      // starvation mode.
      cpu_relax();
    }
    std::uint64_t mask = 0;
    for (std::uint64_t rest = sig.occupancy() & word_mask; rest != 0;
         rest &= rest - 1) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(rest));
      if (sig.words()[w] == 0) continue;  // occupancy may be a superset
      mask |= std::uint64_t{1} << w;
      rt.nontx_store(&s.sig.words()[w], sig.words()[w]);
    }
    rt.nontx_store(&s.mask, mask);
    // Ring-publication edge, release side: the seq store below (release via
    // nontx_store) completes the entry; validators that observe seq == ts
    // are ordered after every sig/mask word written above.
    PHTM_ANNOTATE_HAPPENS_BEFORE(&s.seq);
    rt.nontx_store(&s.seq, ts);
  }

  /// Retract the entry filled for `ts` after a failed commit-time
  /// validation: the publisher is aborting and rolling back, so its
  /// signature should stop producing conflicts. Clearing the word mask
  /// under the slot's seqlock suffices — a validator either already read
  /// the old mask (a conservative abort, safe because aborting is always
  /// safe) or reads the empty one and skips the stale signature words.
  /// The CAS guards against the slot's next occupant (a committer at
  /// `ts + size` whose fill CAS expects seq == ts): if the slot has
  /// already been reclaimed the stale signature is gone anyway, and the
  /// revocation is a no-op.
  void revoke_slot(sim::HtmRuntime& rt, std::uint64_t ts) {
    Slot& s = slot_of(ts);
    if (!rt.nontx_cas(&s.seq, ts, ts | kBusy)) return;  // slot reclaimed
    rt.nontx_store(&s.mask, 0);
    // Same release edge as fill_slot: validators that observe seq == ts
    // again are ordered after the mask clear.
    PHTM_ANNOTATE_HAPPENS_BEFORE(&s.seq);
    rt.nontx_store(&s.seq, ts);
  }

  /// In-flight validation (Fig. 1 lines 34-41): intersect `rsig` with every
  /// entry committed in (start, min(now, limit)]; advance `start` on
  /// success. `limit` bounds the range for the commit-time validation of a
  /// reserved timestamp (validate everything ordered before us).
  /// `word_mask` restricts the read-signature words considered — a shard
  /// ring only ever holds entries in its own word group, so a reader whose
  /// masked occupancy is empty advances in O(1).
  ValResult validate(sim::HtmRuntime& rt, std::uint64_t& start, const Signature& rsig,
                     std::uint64_t limit = ~std::uint64_t{0},
                     std::uint64_t word_mask = ~std::uint64_t{0}) {
    std::uint64_t ts = rt.nontx_load(&timestamp_.value);
    if (ts > limit) ts = limit;
    if (ts == start) return ValResult::kOk;
    // An empty read signature is vacuously consistent with every entry —
    // even a reused (rolled-over) slot — so the watermark advances without
    // touching the ring (write-only transactions validate in O(1)).
    const std::uint64_t rocc = rsig.occupancy() & word_mask;
    if (rocc == 0) {
      start = ts;
      return ValResult::kOk;
    }
    if (ts - start >= slots_.size()) return ValResult::kRollover;
    for (std::uint64_t i = start + 1; i <= ts; ++i) {
      Slot& s = slot_of(i);
      // mc-yield: seqlock read side — this load races the slot's publisher
      // (busy store, signature fill, final seq store).
      PHTM_MC_YIELD(kRawLoad, &s.seq);
      for (;;) {
        const std::uint64_t q = aload(&s.seq);
        if (q == i) {
          // Ring-publication edge, acquire side: seq == i was read with
          // acquire, so the entry's sig/mask words read below are the ones
          // the publisher wrote before its final seq store.
          PHTM_ANNOTATE_HAPPENS_AFTER(&s.seq);
          break;
        }
        if ((q & ~kBusy) > i) return ValResult::kRollover;  // slot reused
        // mc-yield: waiting out an in-flight publication; only the
        // publisher can complete the entry, so force a deschedule.
        PHTM_MC_SPIN(&s.seq);
        // spin-waiver: publication in flight — the publisher's fill is a
        // finite lock-free sequence ending in the final seq store, so the
        // wait is bounded by one publication.
        cpu_relax();
      }
      bool hit = false;
      // mc-yield: the mask/signature scan races a reusing publisher; the
      // seq recheck below is the read side of that seqlock.
      PHTM_MC_YIELD(kRawLoad, &s.mask);
      // Words the entry populates AND the validator occupies: only those can
      // intersect, so a disjoint entry costs two word loads (seq + mask) and
      // no signature traffic at all.
      std::uint64_t both = aload(&s.mask) & rocc;
      for (; both != 0; both &= both - 1) {
        const unsigned w = static_cast<unsigned>(std::countr_zero(both));
        if (aload(&s.sig.words()[w]) & rsig.words()[w]) {
          hit = true;
          break;
        }
      }
      // mc-yield: seqlock recheck — discovers a reuse that began after the
      // scan above started.
      PHTM_MC_YIELD(kRawLoad, &s.seq);
      if (aload(&s.seq) != i) return ValResult::kRollover;  // torn: reused
      if (hit) return ValResult::kConflict;
    }
    start = ts;
    return ValResult::kOk;
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::uint64_t seq = 0;
    std::uint64_t mask = 0;  ///< bitmap: which sig words the entry populates
    Signature sig;
  };

  Slot& slot_of(std::uint64_t ts) noexcept { return slots_[ts % slots_.size()]; }

  Padded<std::uint64_t> timestamp_{0};
  std::vector<Slot> slots_;
};

/// Sharded commit pipeline (DESIGN.md, "Sharded commit pipeline"): one
/// independent GlobalRing per signature word group. The shard of an address
/// is a pure function of its signature bit (Signature::shard_of), so a
/// transaction's occupancy mask tells it exactly which shard rings its
/// write set must publish into and which its read set must validate
/// against — commit traffic in disjoint address partitions serializes on
/// different timestamps, touches different slot arrays, and rolls over
/// independently.
///
/// Cross-shard writers reserve a timestamp in *every* written shard before
/// validating *any* shard (see PartHtmBackend's commit): within each shard
/// the ring totally orders the two writers, and whichever is later there
/// validates against — and therefore observes — the earlier one's entry,
/// so a conflicting pair is always caught by at least one side. The
/// pairwise argument makes the per-shard timestamps jointly serializable
/// without a global sequence.
///
/// Liveness requires that reserved slots are *filled before* commit-time
/// validation (fill-then-validate, with revoke_slot retracting the entry
/// if validation then fails). Validation spins on reserved-but-unfilled
/// slots; if committers validated first, two of them with crossed
/// per-shard reservation orders (A:x B:x B:y A:y) would each spin forever
/// on the other's unfilled slot. With fill-then-validate the window in
/// which a committer holds an unfilled slot contains only reservations and
/// fills: fills proceed in ascending shard index and a fill only ever
/// waits on the strictly older occupant of the same slot, so every
/// wait chain descends a well-founded order and terminates — validators
/// then wait at most one bounded publication per slot.
class ShardedRing {
 public:
  static constexpr unsigned kShards = Signature::kShards;

  /// `entries` is the per-shard ring size (a shard sees only its partition
  /// of the commit traffic, so sizing per shard keeps rollover pressure
  /// comparable to the unsharded ring at equal load).
  // span-waiver: backend construction — runs once at setup, never inside a
  // hardware transaction; only publish_in_htm executes speculatively.
  explicit ShardedRing(unsigned entries) {
    shards_.reserve(kShards);
    for (unsigned s = 0; s < kShards; ++s) shards_.emplace_back(entries);
  }

  GlobalRing& shard(unsigned s) noexcept { return shards_[s]; }
  const GlobalRing& shard(unsigned s) const noexcept { return shards_[s]; }

  std::uint64_t* timestamp_addr(unsigned s) noexcept {
    return shards_[s].timestamp_addr();
  }

  /// Per-shard entry count (uniform across shards).
  unsigned size() const noexcept { return shards_[0].size(); }

  /// Fast-path publication of a write signature into every shard it
  /// intersects, inside one hardware transaction — the hardware commit
  /// makes the multi-shard publication atomic, so no reservation protocol
  /// is needed on this side.
  void publish_in_htm(sim::HtmOps& ops, const Signature& wsig,
                      std::uint32_t busy_xabort_code) {
    // tmfoot: bound(4) — one iteration per commit-pipeline shard
    // (Signature::kShards = 4 for BloomSig<2048>).
    for (std::uint64_t m = wsig.shard_mask(); m != 0; m &= m - 1) {
      const unsigned s = static_cast<unsigned>(std::countr_zero(m));
      shards_[s].publish_in_htm(ops, wsig, busy_xabort_code,
                                Signature::shard_word_mask(s));
    }
  }

 private:
  std::vector<GlobalRing> shards_;
};

}  // namespace phtm::core
