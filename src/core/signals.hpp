// Per-cause contention signals exported to the serving layer.
//
// The contention manager (core/policy.hpp) makes *per-transaction*
// decisions; the admission layer (src/server) needs the same evidence at
// *population* scale: is this process's hardware capacity flapping, are
// commits convoying on the global lock, are sites being quarantined? The
// answer is already in the per-thread StatSheets — this header turns a
// snapshot delta into the three named rates the overload controller
// consumes (DESIGN.md "Serving architecture").
//
// All rates are normalized per committed transaction so they are
// load-independent: a fixed abort mix reads the same at 1k and 100k tps.
#pragma once

#include <cstdint>

#include "util/stats.hpp"

namespace phtm::core {

/// Population-scale contention signals over an observation window.
struct PolicySignals {
  std::uint64_t commits = 0;  ///< transactions committed in the window

  /// Capacity flap: hardware capacity aborts per commit. High values mean
  /// fast-path attempts are being burned on footprints that cannot fit —
  /// the remedy is force-partitioned execution (degrade), not shedding.
  double capacity_flap = 0.0;

  /// Glock convoy: global-lock commits plus the fallback decisions that
  /// route transactions there (conflict exhaustion, starvation
  /// escalations), per commit. The global lock serializes everything, so
  /// a convoy caps throughput no matter how many workers drain queues —
  /// the only remedy left is admission-level shedding.
  double glock_convoy = 0.0;

  /// Quarantine pressure: quarantine fallbacks per commit. Sites with
  /// persistent hardware failure streaks are already being degraded
  /// per-site; population-wide pressure says the whole process should
  /// stop probing the hardware (degrade).
  double quarantine_pressure = 0.0;

  /// Signals over the window `delta` = (current totals) - (previous
  /// totals), both obtained via StatSheet::snapshot() aggregation, so the
  /// computation is mid-run safe. An empty window (no commits) yields all
  /// zeros: no evidence, no pressure.
  static PolicySignals from_delta(const StatSheet& delta) noexcept {
    PolicySignals s;
    s.commits = delta.total_commits();
    if (s.commits == 0) return s;
    const double per = 1.0 / static_cast<double>(s.commits);
    s.capacity_flap =
        static_cast<double>(
            delta.aborts[static_cast<unsigned>(AbortCause::kCapacity)]) *
        per;
    s.glock_convoy =
        static_cast<double>(
            delta.commits[static_cast<unsigned>(CommitPath::kGlobalLock)] +
            delta.fallbacks[static_cast<unsigned>(
                FallbackReason::kConflictExhaustion)] +
            delta.fallbacks[static_cast<unsigned>(
                FallbackReason::kStarvation)]) *
        per;
    s.quarantine_pressure =
        static_cast<double>(delta.fallbacks[static_cast<unsigned>(
            FallbackReason::kQuarantine)]) *
        per;
    return s;
  }
};

/// delta = a - b fieldwise, for totals taken from the same sheets at two
/// poll instants (a later than b). snapshot() is a moving picture, so a
/// field may transiently read lower than the previous poll; clamp at zero
/// rather than wrapping.
inline StatSheet stat_delta(const StatSheet& a, const StatSheet& b) noexcept {
  const auto sub = [](std::uint64_t x, std::uint64_t y) {
    return x > y ? x - y : 0;
  };
  StatSheet d;
  for (unsigned i = 0; i < static_cast<unsigned>(AbortCause::kCauseCount); ++i)
    d.aborts[i] = sub(a.aborts[i], b.aborts[i]);
  for (unsigned i = 0; i < static_cast<unsigned>(CommitPath::kPathCount); ++i)
    d.commits[i] = sub(a.commits[i], b.commits[i]);
  for (unsigned i = 0;
       i < static_cast<unsigned>(FallbackReason::kReasonCount); ++i)
    d.fallbacks[i] = sub(a.fallbacks[i], b.fallbacks[i]);
  return d;
}

}  // namespace phtm::core
