// Value-based undo log of the partitioned path (paper Sec. 4,
// "a value-based undo-log is kept for handling the abort of a transaction
// having sub-HTM transactions already committed").
//
// Entries written by the *current* sub-HTM attempt are staged separately:
// real HTM rolls the log's memory back automatically on abort, and the
// staging area emulates that (discarded on sub-abort, folded into the
// durable log on sub-commit).
#pragma once

#include <cstdint>
#include <vector>

#include "util/hash.hpp"

namespace phtm::core {

class UndoLog {
 public:
  struct Entry {
    std::uint64_t* addr;
    std::uint64_t old_val;
  };

  void clear() noexcept {
    committed_.clear();
    staged_.clear();
    lock_set_.assign(lock_set_.size(), nullptr);
    lock_count_ = 0;
  }

  void stage(std::uint64_t* addr, std::uint64_t old_val) {
    // span-waiver: the undo log is PART-HTM's own global-path metadata;
    // staged_ keeps its capacity across clear(), so steady-state staging
    // is allocation-free.
    staged_.push_back({addr, old_val});
  }

  void discard_staged() noexcept { staged_.clear(); }

  /// Sub-HTM commit: staged entries become durable, and their addresses
  /// enter the self-lock set (PART-HTM-O's `not_self_lock`, Fig. 2 lines
  /// 18-21, implemented as a hash set instead of a linear walk).
  void promote_staged() {
    for (const auto& e : staged_) {
      committed_.push_back(e);
      lock_add(e.addr);
    }
    staged_.clear();
  }

  /// True iff `addr` was written (and hence locked) by a *committed*
  /// sub-HTM transaction of this global transaction.
  bool self_locked(const std::uint64_t* addr) const noexcept {
    if (lock_count_ == 0) return false;
    std::size_t i = phtm::hash_addr(addr) & (lock_set_.size() - 1);
    for (;;) {
      if (lock_set_[i] == nullptr) return false;
      if (lock_set_[i] == addr) return true;
      i = (i + 1) & (lock_set_.size() - 1);
    }
  }

  /// True iff `addr` was locked by the *current* (uncommitted) sub-HTM
  /// attempt. Staged sets are small, so a linear walk — the shape of the
  /// paper's `not_self_lock` — is fine here.
  bool staged_contains(const std::uint64_t* addr) const noexcept {
    for (const auto& e : staged_)
      if (e.addr == addr) return true;
    return false;
  }

  /// Committed entries in append order; roll back by traversing in reverse
  /// so the oldest value is restored last.
  const std::vector<Entry>& committed() const noexcept { return committed_; }

  bool empty() const noexcept { return committed_.empty() && staged_.empty(); }

 private:
  void lock_add(const std::uint64_t* addr) {
    if (lock_set_.empty()) lock_set_.assign(64, nullptr);
    if ((lock_count_ + 1) * 10 >= lock_set_.size() * 7) {
      std::vector<const std::uint64_t*> old = std::move(lock_set_);
      lock_set_.assign(old.size() * 2, nullptr);
      for (const auto* p : old)
        if (p) insert_nogrow(p);
    }
    if (insert_nogrow(addr)) ++lock_count_;
  }

  bool insert_nogrow(const std::uint64_t* addr) {
    std::size_t i = phtm::hash_addr(addr) & (lock_set_.size() - 1);
    for (;;) {
      if (lock_set_[i] == nullptr) {
        lock_set_[i] = addr;
        return true;
      }
      if (lock_set_[i] == addr) return false;
      i = (i + 1) & (lock_set_.size() - 1);
    }
  }

  std::vector<Entry> committed_;
  std::vector<Entry> staged_;
  std::vector<const std::uint64_t*> lock_set_;
  std::size_t lock_count_ = 0;
};

}  // namespace phtm::core
