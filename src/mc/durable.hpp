// Durable opacity over crash-recovery outcomes (src/mc).
//
// After an injected crash and a recover() pass, the durable (= restored
// volatile) state must be explainable by a *prefix* of the committed
// transaction history: there must exist a subset S of the transactions
// the pre-crash execution committed, and a serialization of S, such that
//
//   (a) S contains every transaction the harness confirmed durable before
//       the freeze (its commit record was fenced while the domain was
//       still live — "the user saw the commit complete"),
//   (b) the serialization respects real-time order among S's members,
//   (c) every read in S is explained by S alone (own writes shadowing the
//       initial durable image) — this is the prefix-closure property: a
//       surviving transaction must not have read from a dropped one, and
//   (d) replaying S over the initial durable image reproduces the
//       recovered memory exactly.
//
// Transactions outside S are the crash's prerogative: committed in the
// volatile world, lost durably — allowed only if nothing surviving
// depended on them. Re-crash-during-recovery scenarios feed the state
// after the *final* recovery pass through the same predicate (recovery
// idempotence: extra passes must not change the explicable set).
//
// Scenario scale is the model checker's (≤ ~5 transactions), so the
// subset × permutation search is exact and instant.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "mc/opacity.hpp"

namespace phtm::mc {

struct DurableInput {
  /// Transactions the pre-crash execution committed (volatile view), with
  /// the same op/stamp contract as HistoryInput.
  std::vector<CommittedTx> txns;
  /// Indices into `txns` of transactions confirmed durable before the
  /// freeze; every admissible survivor set must contain them.
  std::vector<unsigned> must_include;
  /// Initial durable image of every tracked word.
  std::vector<std::pair<const std::uint64_t*, std::uint64_t>> initial;
  /// Memory after crash + recover() (durable image == restored volatile).
  std::vector<std::pair<const std::uint64_t*, std::uint64_t>> recovered;
};

struct DurableVerdict {
  bool ok = true;
  std::string diagnosis;
  std::vector<unsigned> survivors;  ///< tids of S in witness order (if ok)
};

inline DurableVerdict check_durable(const DurableInput& in) {
  DurableVerdict v;
  const std::size_t n = in.txns.size();
  std::uint64_t must_mask = 0;
  for (unsigned i : in.must_include) must_mask |= std::uint64_t{1} << i;

  std::string first_fail = "empty survivor set does not match";
  for (std::uint64_t sub = 0; sub < (std::uint64_t{1} << n); ++sub) {
    if ((sub & must_mask) != must_mask) continue;  // (a)
    std::vector<unsigned> members;
    for (std::size_t i = 0; i < n; ++i)
      if (sub & (std::uint64_t{1} << i)) members.push_back(static_cast<unsigned>(i));
    std::sort(members.begin(), members.end());
    do {
      // (b) real-time order among the survivors.
      bool rt_ok = true;
      for (std::size_t p = 0; p < members.size() && rt_ok; ++p)
        for (std::size_t q = p + 1; q < members.size() && rt_ok; ++q)
          if (in.txns[members[q]].end_step < in.txns[members[p]].begin_step)
            rt_ok = false;
      if (!rt_ok) continue;
      // (c) reads explained by the survivor prefix alone.
      detail::Mem mem(in.initial.begin(), in.initial.end());
      bool ok = true;
      std::string why;
      for (unsigned idx : members) {
        if (!detail::sim_ops(in.txns[idx].ops, mem, /*commit=*/true, &why)) {
          std::ostringstream os;
          os << "survivor tid=" << in.txns[idx].tid << ": " << why;
          first_fail = os.str();
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      // (d) the recovered image is exactly this prefix's outcome.
      for (const auto& [a, rv] : in.recovered) {
        auto it = mem.find(a);
        const std::uint64_t wv = it == mem.end() ? 0 : it->second;
        if (wv != rv) {
          std::ostringstream os;
          os << "recovered memory at " << a << " is " << rv
             << " but the survivor prefix produces " << wv;
          first_fail = os.str();
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      v.ok = true;
      v.survivors.clear();
      for (unsigned idx : members) v.survivors.push_back(in.txns[idx].tid);
      return v;
    } while (std::next_permutation(members.begin(), members.end()));
  }

  v.ok = false;
  v.diagnosis =
      "durable opacity violation: no confirmed-superset survivor subset of "
      "the committed history explains the recovered state (last failure: " +
      first_fail + ")";
  return v;
}

}  // namespace phtm::mc
