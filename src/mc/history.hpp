// Transactional history capture for the schedule explorer (src/mc).
//
// Scenario step functions route every tracked access through rec_read /
// rec_write, which perform the access via the backend's Ctx and append an
// McOp both to a TxLog embedded in the transaction's *locals* blob and to a
// Recorder-side mirror. The split is the whole trick:
//
//  - the in-locals TxLog is trivially copyable, so every abort path in
//    every backend rolls its count back for free through the existing
//    LocalsSnapshot save/restore (hardware rollback emulation) — no backend
//    cooperation needed;
//  - the Recorder mirror is never rolled back, so comparing the two at the
//    next recorded event reveals exactly which suffix of the attempt was
//    rolled back. That suffix (plus the surviving prefix the attempt had
//    observed) becomes a *fragment*: the history of an aborted attempt,
//    which the opacity checker must also be able to place consistently.
//
// Events are stamped with a global step counter. Under the cooperative
// scheduler exactly one thread runs at a time and a recorded access plus
// its note() call happen within one atomic step, so stamps are totally
// ordered in execution order; they stand in for real-time order in the
// checker. The counter itself is a relaxed atomic so preemptively
// scheduled harnesses (the chaos tests, tests/chaos_*) can reuse the
// recorder from real threads with tid-partitioned records: there the
// stamps carry no cross-thread ordering claim and the checkers must be
// run with real-time constraints disabled (zeroed begin/end stamps).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "tm/api.hpp"

namespace phtm::mc {

/// One tracked access, as the transaction observed it.
struct McOp {
  const std::uint64_t* addr = nullptr;
  std::uint64_t val = 0;    ///< value read, or value written
  std::uint64_t step = 0;   ///< global event stamp (execution order)
  bool is_write = false;
};

inline constexpr unsigned kMaxTxOps = 32;

/// Lives at the head of a scenario's locals blob (trivially copyable).
struct TxLog {
  std::uint32_t nops = 0;
  McOp ops[kMaxTxOps];
};
static_assert(std::is_trivially_copyable_v<TxLog>);

/// History of one aborted attempt: every op the attempt had observed when
/// it was rolled back (surviving prefix included — that prefix is what the
/// attempt's later reads were judged against).
struct Fragment {
  std::vector<McOp> ops;
  std::uint64_t begin_step = 0;
  std::uint64_t end_step = 0;
};

struct TxRecord {
  std::vector<McOp> mirror;        ///< ops of the attempt in progress
  std::vector<Fragment> fragments; ///< rolled-back attempts (zombies)
  std::uint64_t end_step = 0;      ///< stamp of execute() returning
  bool committed = false;
};

class Recorder {
 public:
  void reset(unsigned nthreads) {
    recs_.assign(nthreads, TxRecord{});
    // relaxed: stamp counter (see below).
    step_.store(0, std::memory_order_relaxed);
  }

  /// Record one performed access for thread `tid`. Detects rollbacks by
  /// comparing the snapshot-restored in-locals count against the mirror.
  void note(unsigned tid, TxLog& log, McOp op) {
    TxRecord& r = recs_[tid];
    harvest_rollback(r, log);
    assert(log.nops < kMaxTxOps && "raise kMaxTxOps for this scenario");
    // relaxed: stamp counter (see member note).
    op.step = step_.fetch_add(1, std::memory_order_relaxed) + 1;
    log.ops[log.nops++] = op;
    r.mirror.push_back(op);
  }

  /// Mark thread `tid`'s transaction committed (call when execute returns).
  void finish(unsigned tid, TxLog& log) {
    TxRecord& r = recs_[tid];
    harvest_rollback(r, log);
    // relaxed: stamp counter (see member note).
    r.end_step = step_.fetch_add(1, std::memory_order_relaxed) + 1;
    r.committed = true;
  }

  const TxRecord& record(unsigned tid) const { return recs_[tid]; }
  unsigned threads() const { return static_cast<unsigned>(recs_.size()); }

 private:
  static void harvest_rollback(TxRecord& r, const TxLog& log) {
    if (log.nops >= r.mirror.size()) return;
    Fragment f;
    f.ops = r.mirror;
    f.begin_step = f.ops.front().step;
    f.end_step = f.ops.back().step;
    r.fragments.push_back(std::move(f));
    r.mirror.resize(log.nops);
  }

  std::vector<TxRecord> recs_;
  // shared-atomic: global stamp counter. Under the cooperative scheduler
  // only one thread runs at a time; under the preemptive chaos harness
  // concurrent note() calls race on it, and a unique (not ordered) stamp
  // per event is all the checkers need there — relaxed fetch_add provides
  // exactly that.
  std::atomic<std::uint64_t> step_{0};
};

/// Tracked accessors for scenario step functions.
inline std::uint64_t rec_read(tm::Ctx& c, Recorder& rec, unsigned tid,
                              TxLog& log, const std::uint64_t* addr) {
  const std::uint64_t v = c.read(addr);
  rec.note(tid, log, McOp{addr, v, 0, /*is_write=*/false});
  return v;
}

inline void rec_write(tm::Ctx& c, Recorder& rec, unsigned tid, TxLog& log,
                      std::uint64_t* addr, std::uint64_t val) {
  c.write(addr, val);
  rec.note(tid, log, McOp{addr, val, 0, /*is_write=*/true});
}

}  // namespace phtm::mc
