// mc_explore: command-line driver for the schedule explorer.
//
//   mc_explore --list
//   mc_explore --scenario <name> [--bound N] [--no-sleep-sets]
//              [--max-schedules N] [--max-steps N] [--replay SEED]
//
// Exit code 0 = exploration clean, 1 = violation found, 2 = usage error.
// On a violation the replay seed is printed; feed it back via --replay to
// re-execute exactly that schedule (e.g. under a debugger).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mc/sched.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --list\n"
               "       %s --scenario <name> [--bound N] [--no-sleep-sets]\n"
               "          [--max-schedules N] [--max-steps N] [--replay SEED]\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using phtm::mc::ExploreOptions;
  using phtm::mc::ExploreStats;

  std::string name;
  ExploreOptions opt;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--list") list = true;
    else if (a == "--scenario") name = next("--scenario");
    else if (a == "--bound") opt.preemption_bound = std::strtoul(next("--bound"), nullptr, 10);
    else if (a == "--no-sleep-sets") opt.sleep_sets = false;
    else if (a == "--max-schedules") opt.max_schedules = std::strtoull(next("--max-schedules"), nullptr, 10);
    else if (a == "--max-steps") opt.max_steps_per_run = std::strtoull(next("--max-steps"), nullptr, 10);
    else if (a == "--replay") opt.replay = next("--replay");
    else return usage(argv[0]);
  }

  if (list) {
    for (const auto& s : phtm::mc::scenarios())
      std::printf("%s (%u threads%s)\n", s.name.c_str(), s.nthreads,
                  s.check_opacity ? ", opacity" : "");
    return 0;
  }
  if (name.empty()) return usage(argv[0]);

  const phtm::mc::McScenario* sc = phtm::mc::find_scenario(name);
  if (sc == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n", name.c_str());
    return 2;
  }

  const ExploreStats st = phtm::mc::explore(*sc, opt);
  std::printf("scenario=%s schedules=%llu decisions=%llu sleep_pruned=%llu "
              "complete=%d\n",
              sc->name.c_str(), static_cast<unsigned long long>(st.schedules),
              static_cast<unsigned long long>(st.decisions),
              static_cast<unsigned long long>(st.sleep_pruned),
              st.complete ? 1 : 0);
  if (st.violation) {
    std::printf("VIOLATION (%s): %s\nreplay seed: %s\n",
                st.violation_kind.c_str(), st.violation_detail.c_str(),
                st.violation_seed.c_str());
    return 1;
  }
  std::printf("clean\n");
  return 0;
}
