// Serializability / opacity verdicts over explored histories (src/mc).
//
// Input: the committed transactions' op lists (reads with the values they
// returned, writes with the values they stored), the aborted attempts'
// fragments, the initial values of every tracked word and the final memory
// state after the schedule ran.
//
// Serializability: search for a *sequential witness* — a permutation of the
// committed transactions that (a) respects real-time order (if T1's commit
// stamp precedes T2's first op stamp, T1 must come first), (b) makes every
// read return the value the sequential execution would produce (own earlier
// writes shadow the global state), and (c) reproduces the observed final
// memory. With at most 4 transactions per scenario the n! search is exact
// and instant.
//
// Opacity (PART-HTM-O scenarios): additionally, every aborted attempt must
// have observed some consistent prefix of *some* valid witness — i.e. there
// is a witness order and an insertion point k such that the fragment's
// reads are explained by the first k committed transactions plus the
// fragment's own earlier writes, with the insertion point compatible with
// the fragment's real-time interval. A fragment that mixes two committed
// transactions' half-states (the classic zombie) has no such k.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "mc/history.hpp"

namespace phtm::mc {

struct CommittedTx {
  unsigned tid = 0;
  std::vector<McOp> ops;
  std::uint64_t begin_step = 0;  ///< stamp of first op of the final attempt
  std::uint64_t end_step = 0;    ///< stamp of execute() returning
};

struct HistoryInput {
  std::vector<CommittedTx> txns;
  std::vector<Fragment> fragments;
  std::vector<std::pair<const std::uint64_t*, std::uint64_t>> initial;
  std::vector<std::pair<const std::uint64_t*, std::uint64_t>> final_mem;
  bool check_opacity = false;
};

struct HistoryVerdict {
  bool ok = true;
  std::string diagnosis;
  std::vector<unsigned> witness;  ///< tids in serialization order (if ok)
};

namespace detail {

using Mem = std::map<const std::uint64_t*, std::uint64_t>;

/// Simulate one op list against `mem`; reads must match recorded values
/// (own earlier writes shadow `mem`). On success and if `commit` is set,
/// the writes are merged into `mem`.
inline bool sim_ops(const std::vector<McOp>& ops, Mem& mem, bool commit,
                    std::string* why) {
  Mem own;
  for (const McOp& op : ops) {
    if (op.is_write) {
      own[op.addr] = op.val;
      continue;
    }
    std::uint64_t expect;
    if (auto it = own.find(op.addr); it != own.end()) {
      expect = it->second;
    } else if (auto it2 = mem.find(op.addr); it2 != mem.end()) {
      expect = it2->second;
    } else {
      if (why) {
        std::ostringstream os;
        os << "read of untracked address " << op.addr
           << " (register it in the scenario's initial set)";
        *why = os.str();
      }
      return false;
    }
    if (expect != op.val) {
      if (why) {
        std::ostringstream os;
        os << "read at step " << op.step << " of " << op.addr << " returned "
           << op.val << " but the sequential witness holds " << expect;
        *why = os.str();
      }
      return false;
    }
  }
  if (commit)
    for (const auto& [a, v] : own) mem[a] = v;
  return true;
}

/// Real-time admissibility of a permutation: no transaction placed later
/// may have committed before an earlier-placed one began.
inline bool respects_real_time(const std::vector<CommittedTx>& txns,
                               const std::vector<unsigned>& perm) {
  for (std::size_t p = 0; p < perm.size(); ++p)
    for (std::size_t q = p + 1; q < perm.size(); ++q)
      if (txns[perm[q]].end_step < txns[perm[p]].begin_step) return false;
  return true;
}

/// Can `f` be explained by some prefix of the witness `perm`? Prefix k is
/// admissible only if it contains every transaction that committed before
/// the fragment began and none that began after the fragment died.
inline bool fragment_fits(const HistoryInput& in,
                          const std::vector<unsigned>& perm,
                          const Fragment& f) {
  for (std::size_t k = 0; k <= perm.size(); ++k) {
    bool rt_ok = true;
    for (std::size_t p = 0; p < perm.size() && rt_ok; ++p) {
      const CommittedTx& t = in.txns[perm[p]];
      if (p >= k && t.end_step < f.begin_step) rt_ok = false;  // must be in
      if (p < k && t.begin_step > f.end_step) rt_ok = false;   // must be out
    }
    if (!rt_ok) continue;
    Mem mem(in.initial.begin(), in.initial.end());
    bool prefix_ok = true;
    for (std::size_t p = 0; p < k && prefix_ok; ++p)
      prefix_ok = sim_ops(in.txns[perm[p]].ops, mem, /*commit=*/true, nullptr);
    if (!prefix_ok) continue;
    if (sim_ops(f.ops, mem, /*commit=*/false, nullptr)) return true;
  }
  return false;
}

}  // namespace detail

inline HistoryVerdict check_history(const HistoryInput& in) {
  HistoryVerdict v;
  std::vector<unsigned> perm(in.txns.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end());

  std::string first_fail = "no committed transactions";
  bool committed_ok = false;
  do {
    if (!detail::respects_real_time(in.txns, perm)) continue;
    detail::Mem mem(in.initial.begin(), in.initial.end());
    std::string why;
    bool ok = true;
    for (unsigned idx : perm) {
      if (!detail::sim_ops(in.txns[idx].ops, mem, /*commit=*/true, &why)) {
        std::ostringstream os;
        os << "tx tid=" << in.txns[idx].tid << ": " << why;
        if (first_fail == "no committed transactions" || !committed_ok)
          first_fail = os.str();
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const auto& [a, fv] : in.final_mem) {
        auto it = mem.find(a);
        const std::uint64_t wv = it == mem.end() ? 0 : it->second;
        if (wv != fv) {
          std::ostringstream os;
          os << "final memory at " << a << " is " << fv
             << " but the witness produces " << wv;
          first_fail = os.str();
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    committed_ok = true;
    if (in.check_opacity) {
      bool all_frag = true;
      for (const Fragment& f : in.fragments)
        if (!detail::fragment_fits(in, perm, f)) {
          all_frag = false;
          break;
        }
      if (!all_frag) continue;  // another witness may place the fragments
    }
    // Accepted.
    v.ok = true;
    v.witness.clear();
    for (unsigned idx : perm) v.witness.push_back(in.txns[idx].tid);
    return v;
  } while (std::next_permutation(perm.begin(), perm.end()));

  v.ok = false;
  if (!committed_ok) {
    v.diagnosis = "not serializable: no real-time-respecting sequential "
                  "witness explains the committed reads and final memory "
                  "(first failure: " + first_fail + ")";
  } else {
    v.diagnosis = "opacity violation: committed transactions serialize, but "
                  "some aborted attempt observed a snapshot no witness "
                  "prefix can explain";
  }
  return v;
}

}  // namespace phtm::mc
