// Scenario library for the schedule explorer (see sched.hpp).
//
// Every scenario is a closed 2-3 thread world over a handful of padded
// words. All protocol-visible storage lives in static objects that are
// destroyed and rebuilt in the same order on every execution, so addresses
// repeat and the DFS replay of a decision prefix is deterministic; the
// scheduler cross-checks this with per-step fingerprints.
//
// Path forcing uses the duration model, not capacity: tick_budget is set so
// a whole-transaction fast attempt overruns the quantum (resource abort ->
// partitioned path) while each individual segment, including the sub-HTM
// commit epilogue, fits comfortably. This keeps the hardware abort pattern
// deterministic across interleavings.
#include <optional>

#include "core/part_htm.hpp"
#include "mc/sched.hpp"
#include "sig/signature.hpp"
#include "sim/config.hpp"
#include "sim/runtime.hpp"
#include "stm/ringstm.hpp"
#include "tm/backend.hpp"
#include "util/cacheline.hpp"

namespace phtm::mc {
namespace {

using core::PartHtmBackend;
using phtm::CommitPath;
using sim::HtmConfig;
using sim::HtmRuntime;

constexpr unsigned kScenarioWords = 4;

struct alignas(kCacheLineBytes) PadWord {
  std::uint64_t v = 0;
};
PadWord g_data[kScenarioWords];

std::uint64_t* word(unsigned i) { return &g_data[i].v; }

struct SLocals {
  TxLog log;
};
static_assert(std::is_trivially_copyable_v<SLocals>);
SLocals g_locals[kMaxMcThreads];

struct SEnv {
  unsigned tid = 0;
};
SEnv g_env[kMaxMcThreads];

// ---- sharded-commit scenario world --------------------------------------
// The sharded commit pipeline partitions addresses by signature word group
// (Signature::shard_of), so the cross-shard scenario needs two words whose
// shards differ. They are probed out of a static pool at world build:
// addresses are stable within the process, so the selection — like every
// other address in the scenario world — is identical on every DFS replay.
constexpr unsigned kShardPoolWords = 32;
PadWord g_shard_pool[kShardPoolWords];
unsigned g_shard_sel[2] = {0, 1};

std::uint64_t* shard_word(unsigned i) { return &g_shard_pool[g_shard_sel[i]].v; }

void select_shard_words() {
  g_shard_sel[0] = 0;
  g_shard_sel[1] = 1;
  const unsigned s0 = Signature::shard_of(shard_word(0));
  for (unsigned i = 1; i < kShardPoolWords; ++i) {
    if (Signature::shard_of(&g_shard_pool[i].v) != s0) {
      g_shard_sel[1] = i;
      return;
    }
  }
  // 32 hashed lines all in one of 4 shards: practically impossible; the
  // scenario invariant reports it loudly rather than testing nothing.
}

// Second word pair for the two-writer scenario: same two shards as
// g_shard_sel, but distinct signature bits, so two committers can span the
// same shard rings with disjoint footprints.
unsigned g_shard_sel2[2] = {0, 1};

std::uint64_t* shard_word2(unsigned i) { return &g_shard_pool[g_shard_sel2[i]].v; }

void select_shard_words2() {
  select_shard_words();
  for (unsigned i = 0; i < 2; ++i) {
    g_shard_sel2[i] = g_shard_sel[i];  // probe failure: invariant reports it
    const unsigned shard = Signature::shard_of(shard_word(i));
    for (unsigned j = 0; j < kShardPoolWords; ++j) {
      if (j == g_shard_sel[0] || j == g_shard_sel[1]) continue;
      if (Signature::shard_of(&g_shard_pool[j].v) != shard) continue;
      if (Signature::bit_of(&g_shard_pool[j].v) ==
          Signature::bit_of(shard_word(i)))
        continue;
      g_shard_sel2[i] = j;
      break;
    }
  }
}

Recorder g_rec;
std::optional<HtmRuntime> g_rt;
std::optional<PartHtmBackend> g_part;
std::optional<stm::RingStmBackend> g_ringstm;
std::vector<std::unique_ptr<tm::Worker>> g_workers;

void destroy_world() {
  g_workers.clear();  // workers hold HTM slots: destroy before the runtime
  g_part.reset();
  g_ringstm.reset();
  g_rt.reset();
#if defined(PHTM_MC) && PHTM_MC
  stm::RingStmBackend::mc_fault_torn_writeback = false;
#endif
}

void reset_common(unsigned nthreads) {
  destroy_world();
  for (auto& w : g_data) w.v = 0;
  for (auto& w : g_shard_pool) w.v = 0;
  for (auto& l : g_locals) l = SLocals{};
  for (unsigned t = 0; t < kMaxMcThreads; ++t) g_env[t] = SEnv{t};
  g_rec.reset(nthreads);
}

/// Duration quantum such that one segment (ops + work(50) + sub-HTM commit
/// epilogue) fits but any two segments — or a whole heavy transaction on
/// the fast path — overrun.
constexpr std::uint64_t kQuantum = 80;
constexpr std::uint64_t kSegWork = 50;

HtmConfig mc_htm_config() {
  HtmConfig c = HtmConfig::testing();
  c.tick_budget = kQuantum;
  c.random_other_per_access = 0.0;  // determinism: no async-interrupt draws
  c.seed = 42;
  return c;
}

tm::BackendConfig mc_backend_config() {
  tm::BackendConfig b;
  // Small retry counts keep the bounded exploration tree tight; every
  // fallback path is still reachable.
  b.htm_retries = 2;
  b.partitioned_retries = 1;
  b.sub_htm_retries = 2;
  b.ring_entries = 8;
  return b;
}

void build_part(unsigned nthreads, PartHtmBackend::Mode mode) {
  reset_common(nthreads);
  g_rt.emplace(mc_htm_config());
  g_part.emplace(*g_rt, mc_backend_config(), mode, /*no_fast=*/false);
  for (unsigned t = 0; t < nthreads; ++t)
    g_workers.push_back(g_part->make_worker(t));
}

void build_ringstm(unsigned nthreads) {
  reset_common(nthreads);
  g_rt.emplace(mc_htm_config());
  g_ringstm.emplace(*g_rt, mc_backend_config());
  for (unsigned t = 0; t < nthreads; ++t)
    g_workers.push_back(g_ringstm->make_worker(t));
}

void run_txn(tm::Backend& b, unsigned tid, decltype(tm::Txn::step) step,
             bool irrevocable = false) {
  tm::Txn t;
  t.step = step;
  t.env = &g_env[tid];
  t.locals = &g_locals[tid];
  t.locals_bytes = sizeof(SLocals);
  t.irrevocable = irrevocable;
  b.execute(*g_workers[tid], t);
  g_rec.finish(tid, g_locals[tid].log);
}

HistoryInput collect_common(unsigned nthreads, bool opacity) {
  HistoryInput in;
  in.check_opacity = opacity;
  for (unsigned t = 0; t < nthreads; ++t) {
    const TxRecord& r = g_rec.record(t);
    CommittedTx ct;
    ct.tid = t;
    ct.ops = r.mirror;
    ct.begin_step = ct.ops.empty() ? r.end_step : ct.ops.front().step;
    ct.end_step = r.end_step;
    in.txns.push_back(std::move(ct));
    for (const Fragment& f : r.fragments) in.fragments.push_back(f);
  }
  for (unsigned i = 0; i < kScenarioWords; ++i) {
    in.initial.emplace_back(word(i), 0);
    // Plain load: all workers have joined, the world is quiescent.
    in.final_mem.emplace_back(word(i),
                              __atomic_load_n(word(i), __ATOMIC_ACQUIRE));
  }
  return in;
}

unsigned env_tid(const void* e) { return static_cast<const SEnv*>(e)->tid; }
TxLog& log_of(void* lp) { return static_cast<SLocals*>(lp)->log; }

// ---- step functions (plain functions: no captures, fully deterministic) --

/// Fast-path increment of word 0.
bool step_inc_x(tm::Ctx& c, const void* e, void* lp, unsigned) {
  TxLog& log = log_of(lp);
  const std::uint64_t v = rec_read(c, g_rec, env_tid(e), log, word(0));
  rec_write(c, g_rec, env_tid(e), log, word(0), v + 1);
  return false;
}

/// Fast-path: copy word 0 into word 1 (conflicts with step_inc_x on x).
bool step_copy_x_to_y(tm::Ctx& c, const void* e, void* lp, unsigned) {
  TxLog& log = log_of(lp);
  const std::uint64_t v = rec_read(c, g_rec, env_tid(e), log, word(0));
  rec_write(c, g_rec, env_tid(e), log, word(1), v + 100);
  return false;
}

/// Two heavy segments incrementing words 2 then 3: overruns the quantum as
/// one transaction, fits per segment — deterministic partitioned fallback.
bool step_part_heavy_zw(tm::Ctx& c, const void* e, void* lp, unsigned seg) {
  TxLog& log = log_of(lp);
  const std::uint64_t v = rec_read(c, g_rec, env_tid(e), log, word(2 + seg));
  rec_write(c, g_rec, env_tid(e), log, word(2 + seg), v + 1);
  c.work(kSegWork);
  return seg == 0;
}

/// Two heavy segments eagerly writing x (word 0) then y (word 1).
bool step_part_write_xy(tm::Ctx& c, const void* e, void* lp, unsigned seg) {
  TxLog& log = log_of(lp);
  rec_write(c, g_rec, env_tid(e), log, word(seg), 1);
  c.work(kSegWork);
  return seg == 0;
}

/// Fast-path read of x then y: the invariant probe against eager writes.
bool step_read_xy(tm::Ctx& c, const void* e, void* lp, unsigned) {
  TxLog& log = log_of(lp);
  rec_read(c, g_rec, env_tid(e), log, word(0));
  rec_read(c, g_rec, env_tid(e), log, word(1));
  return false;
}

/// Irrevocable writer of x and y (global-lock path by construction).
bool step_slow_write_xy(tm::Ctx& c, const void* e, void* lp, unsigned) {
  TxLog& log = log_of(lp);
  rec_write(c, g_rec, env_tid(e), log, word(0), 7);
  rec_write(c, g_rec, env_tid(e), log, word(1), 7);
  return false;
}

/// Segment 0 eagerly writes x and announces its write lock; segment 1 can
/// never fit the quantum, so the sub-HTM retries exhaust and the attempt
/// global-aborts: the undo log must retract the eager write and the lock.
/// The transaction then commits on the slow path.
bool step_undo_rollback_xy(tm::Ctx& c, const void* e, void* lp, unsigned seg) {
  TxLog& log = log_of(lp);
  if (seg == 0) {
    rec_write(c, g_rec, env_tid(e), log, word(0), 1);
    return true;
  }
  c.work(4 * kQuantum);  // guaranteed duration abort in any sub-HTM attempt
  rec_write(c, g_rec, env_tid(e), log, word(1), 1);
  return false;
}

/// Two heavy segments eagerly writing one word in each commit-pipeline
/// shard: the partitioned commit must reserve a timestamp in *both* shard
/// rings before validating either (ShardedRing's cross-shard protocol).
bool step_part_write_two_shards(tm::Ctx& c, const void* e, void* lp,
                                unsigned seg) {
  TxLog& log = log_of(lp);
  rec_write(c, g_rec, env_tid(e), log, shard_word(seg), 1);
  c.work(kSegWork);
  return seg == 0;
}

/// Cross-shard committer with a per-thread private footprint: each heavy
/// segment reads and eagerly writes this thread's own word in one of the
/// two probed shards. Two such committers' read signatures span both shard
/// rings while their footprints stay disjoint, so both reach the
/// cross-shard commit concurrently and each commit-time validation scans
/// the other's reserved slots — the crossed-reservation-order liveness
/// regression (ring.hpp's fill-then-validate; a validate-then-fill
/// protocol deadlocks here when the per-shard reservation orders cross).
bool step_part_rw_two_shards(tm::Ctx& c, const void* e, void* lp,
                             unsigned seg) {
  TxLog& log = log_of(lp);
  const unsigned tid = env_tid(e);
  std::uint64_t* w = tid == 0 ? shard_word(seg) : shard_word2(seg);
  const std::uint64_t v = rec_read(c, g_rec, tid, log, w);
  rec_write(c, g_rec, tid, log, w, v + 1);
  c.work(kSegWork);
  return seg == 0;
}

/// Fast-path read across both shard words: with opacity checking on, a
/// snapshot that caught the cross-shard commit in one shard ring but not
/// the other is a reported violation.
bool step_read_two_shards(tm::Ctx& c, const void* e, void* lp, unsigned) {
  TxLog& log = log_of(lp);
  rec_read(c, g_rec, env_tid(e), log, shard_word(0));
  rec_read(c, g_rec, env_tid(e), log, shard_word(1));
  return false;
}

/// RingSTM write-only transaction stamping words 0 and 1 with a per-thread
/// value: any serial order leaves them equal, a torn write-back does not.
bool step_ringstm_stamp(tm::Ctx& c, const void* e, void* lp, unsigned) {
  TxLog& log = log_of(lp);
  const std::uint64_t stamp = 101 * (std::uint64_t{env_tid(e)} + 1);
  rec_write(c, g_rec, env_tid(e), log, word(0), stamp);
  rec_write(c, g_rec, env_tid(e), log, word(1), stamp);
  return false;
}

// ---- scenario registry ---------------------------------------------------

McScenario make_fast_fast_ring() {
  McScenario s;
  s.name = "fast_fast_ring";
  s.nthreads = 3;
  s.setup = [] { build_part(3, PartHtmBackend::Mode::kSerializable); };
  s.body = [](unsigned tid) {
    switch (tid) {
      case 0: run_txn(*g_part, 0, &step_inc_x); break;
      case 1: run_txn(*g_part, 1, &step_copy_x_to_y); break;
      default: run_txn(*g_part, 2, &step_part_heavy_zw); break;
    }
  };
  s.collect = [] { return collect_common(3, false); };
  s.teardown = [] { destroy_world(); };
  s.invariant = [] {
    // The heavy transaction can never fit one hardware attempt.
    if (g_workers[2]->stats().commits[static_cast<unsigned>(CommitPath::kHtm)] != 0)
      return std::string("heavy txn committed on the fast path");
    return std::string{};
  };
  return s;
}

McScenario make_part_vs_fast() {
  McScenario s;
  s.name = "part_vs_fast";
  s.nthreads = 2;
  s.setup = [] { build_part(2, PartHtmBackend::Mode::kSerializable); };
  s.body = [](unsigned tid) {
    if (tid == 0)
      run_txn(*g_part, 0, &step_part_write_xy);
    else
      run_txn(*g_part, 1, &step_read_xy);
  };
  s.collect = [] { return collect_common(2, false); };
  s.teardown = [] { destroy_world(); };
  s.invariant = [] {
    if (g_workers[0]->stats().commits[static_cast<unsigned>(CommitPath::kHtm)] != 0)
      return std::string("heavy txn committed on the fast path");
    return std::string{};
  };
  return s;
}

McScenario make_slow_quiesce() {
  McScenario s;
  s.name = "slow_quiesce";
  s.nthreads = 3;
  s.setup = [] { build_part(3, PartHtmBackend::Mode::kSerializable); };
  s.body = [](unsigned tid) {
    switch (tid) {
      case 0: run_txn(*g_part, 0, &step_slow_write_xy, /*irrevocable=*/true); break;
      case 1: run_txn(*g_part, 1, &step_read_xy); break;
      default: run_txn(*g_part, 2, &step_part_heavy_zw); break;
    }
  };
  s.collect = [] { return collect_common(3, false); };
  s.teardown = [] { destroy_world(); };
  return s;
}

McScenario make_undo_rollback() {
  McScenario s;
  s.name = "undo_rollback";
  s.nthreads = 2;
  s.setup = [] { build_part(2, PartHtmBackend::Mode::kSerializable); };
  s.body = [](unsigned tid) {
    if (tid == 0)
      run_txn(*g_part, 0, &step_undo_rollback_xy);
    else
      run_txn(*g_part, 1, &step_read_xy);
  };
  s.collect = [] { return collect_common(2, false); };
  s.teardown = [] { destroy_world(); };
  s.invariant = [] {
    const auto& st = g_workers[0]->stats();
    if (st.global_aborts == 0)
      return std::string("writer never exercised the global-abort rollback");
    if (st.commits[static_cast<unsigned>(CommitPath::kGlobalLock)] != 1)
      return std::string("writer was expected to commit on the slow path");
    if (!g_part->write_locks_empty())
      return std::string("write-locks signatures not retracted after commit");
    return std::string{};
  };
  return s;
}

McScenario make_opaque_zombie() {
  McScenario s;
  s.name = "opaque_zombie";
  s.nthreads = 2;
  s.check_opacity = true;
  s.setup = [] { build_part(2, PartHtmBackend::Mode::kOpaque); };
  s.body = [](unsigned tid) {
    if (tid == 0)
      run_txn(*g_part, 0, &step_part_write_xy);
    else
      run_txn(*g_part, 1, &step_read_xy);
  };
  s.collect = [] { return collect_common(2, true); };
  s.teardown = [] { destroy_world(); };
  return s;
}

/// Two-shard conflicting-commit opacity check: an eager cross-shard writer
/// against a fast-path reader of the same two words, under the opaque mode
/// and the history checker's opacity bar. Every interleaving of the two
/// shard rings' reservations, fills and validations must leave the reader
/// an all-or-nothing view of the commit.
McScenario make_two_shard_opacity() {
  McScenario s;
  s.name = "two_shard_opacity";
  s.nthreads = 2;
  s.check_opacity = true;
  s.setup = [] {
    select_shard_words();
    build_part(2, PartHtmBackend::Mode::kOpaque);
  };
  s.body = [](unsigned tid) {
    if (tid == 0)
      run_txn(*g_part, 0, &step_part_write_two_shards);
    else
      run_txn(*g_part, 1, &step_read_two_shards);
  };
  s.collect = [] {
    HistoryInput in = collect_common(2, true);
    for (unsigned i = 0; i < 2; ++i) {
      in.initial.emplace_back(shard_word(i), 0);
      // Plain load: all workers have joined, the world is quiescent.
      in.final_mem.emplace_back(
          shard_word(i), __atomic_load_n(shard_word(i), __ATOMIC_ACQUIRE));
    }
    return in;
  };
  s.teardown = [] { destroy_world(); };
  s.invariant = [] {
    if (Signature::shard_of(shard_word(0)) ==
        Signature::shard_of(shard_word(1)))
      return std::string("shard-word probe failed: both words in one shard");
    if (g_workers[0]->stats().commits[static_cast<unsigned>(CommitPath::kHtm)] != 0)
      return std::string("heavy txn committed on the fast path");
    return std::string{};
  };
  return s;
}

/// Two concurrent cross-shard committers with disjoint footprints: every
/// interleaving of their per-shard reservations, fills and validations
/// must terminate with a serializable history. This is the liveness
/// regression for the commit protocol — validate-before-fill deadlocked
/// both committers on each other's unfilled slots whenever the per-shard
/// reservation orders crossed (A:x B:x B:y A:y).
McScenario make_two_shard_writers() {
  McScenario s;
  s.name = "two_shard_writers";
  s.nthreads = 2;
  s.setup = [] {
    select_shard_words2();
    build_part(2, PartHtmBackend::Mode::kSerializable);
  };
  s.body = [](unsigned tid) {
    run_txn(*g_part, tid, &step_part_rw_two_shards);
  };
  s.collect = [] {
    HistoryInput in = collect_common(2, false);
    for (unsigned i = 0; i < 2; ++i) {
      in.initial.emplace_back(shard_word(i), 0);
      in.initial.emplace_back(shard_word2(i), 0);
      // Plain loads: all workers have joined, the world is quiescent.
      in.final_mem.emplace_back(
          shard_word(i), __atomic_load_n(shard_word(i), __ATOMIC_ACQUIRE));
      in.final_mem.emplace_back(
          shard_word2(i), __atomic_load_n(shard_word2(i), __ATOMIC_ACQUIRE));
    }
    return in;
  };
  s.teardown = [] { destroy_world(); };
  s.invariant = [] {
    if (Signature::shard_of(shard_word(0)) ==
        Signature::shard_of(shard_word(1)))
      return std::string("shard-word probe failed: both words in one shard");
    for (unsigned i = 0; i < 2; ++i) {
      if (g_shard_sel2[i] == g_shard_sel[i])
        return std::string("shard-word probe failed: no disjoint second word");
      if (Signature::shard_of(shard_word2(i)) !=
          Signature::shard_of(shard_word(i)))
        return std::string(
            "shard-word probe failed: second word in the wrong shard");
    }
    for (unsigned t = 0; t < 2; ++t)
      if (g_workers[t]->stats().commits[static_cast<unsigned>(CommitPath::kHtm)] != 0)
        return std::string("heavy txn committed on the fast path");
    return std::string{};
  };
  return s;
}

McScenario make_ringstm_writeback(bool fault) {
  McScenario s;
  s.name = fault ? "ringstm_writeback_fault" : "ringstm_writeback";
  s.nthreads = 2;
  s.setup = [fault] {
    build_ringstm(2);
#if defined(PHTM_MC) && PHTM_MC
    stm::RingStmBackend::mc_fault_torn_writeback = fault;
#else
    (void)fault;
#endif
  };
  s.body = [](unsigned tid) { run_txn(*g_ringstm, tid, &step_ringstm_stamp); };
  s.collect = [] { return collect_common(2, false); };
  s.teardown = [] { destroy_world(); };
  return s;
}

}  // namespace

const std::vector<McScenario>& scenarios() {
  static const std::vector<McScenario> all = [] {
    std::vector<McScenario> v;
    v.push_back(make_fast_fast_ring());
    v.push_back(make_part_vs_fast());
    v.push_back(make_slow_quiesce());
    v.push_back(make_undo_rollback());
    v.push_back(make_opaque_zombie());
    v.push_back(make_two_shard_opacity());
    v.push_back(make_two_shard_writers());
    v.push_back(make_ringstm_writeback(false));
    v.push_back(make_ringstm_writeback(true));
    return v;
  }();
  return all;
}

const McScenario* find_scenario(const std::string& name) {
  for (const McScenario& s : scenarios())
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace phtm::mc
