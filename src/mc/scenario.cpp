// Scenario library for the schedule explorer (see sched.hpp).
//
// Every scenario is a closed 2-3 thread world over a handful of padded
// words. All protocol-visible storage lives in static objects that are
// destroyed and rebuilt in the same order on every execution, so addresses
// repeat and the DFS replay of a decision prefix is deterministic; the
// scheduler cross-checks this with per-step fingerprints.
//
// Path forcing uses the duration model, not capacity: tick_budget is set so
// a whole-transaction fast attempt overruns the quantum (resource abort ->
// partitioned path) while each individual segment, including the sub-HTM
// commit epilogue, fits comfortably. This keeps the hardware abort pattern
// deterministic across interleavings.
#include <optional>

#include "core/part_htm.hpp"
#include "mc/sched.hpp"
#include "sim/config.hpp"
#include "sim/runtime.hpp"
#include "stm/ringstm.hpp"
#include "tm/backend.hpp"
#include "util/cacheline.hpp"

namespace phtm::mc {
namespace {

using core::PartHtmBackend;
using phtm::CommitPath;
using sim::HtmConfig;
using sim::HtmRuntime;

constexpr unsigned kScenarioWords = 4;

struct alignas(kCacheLineBytes) PadWord {
  std::uint64_t v = 0;
};
PadWord g_data[kScenarioWords];

std::uint64_t* word(unsigned i) { return &g_data[i].v; }

struct SLocals {
  TxLog log;
};
static_assert(std::is_trivially_copyable_v<SLocals>);
SLocals g_locals[kMaxMcThreads];

struct SEnv {
  unsigned tid = 0;
};
SEnv g_env[kMaxMcThreads];

Recorder g_rec;
std::optional<HtmRuntime> g_rt;
std::optional<PartHtmBackend> g_part;
std::optional<stm::RingStmBackend> g_ringstm;
std::vector<std::unique_ptr<tm::Worker>> g_workers;

void destroy_world() {
  g_workers.clear();  // workers hold HTM slots: destroy before the runtime
  g_part.reset();
  g_ringstm.reset();
  g_rt.reset();
#if defined(PHTM_MC) && PHTM_MC
  stm::RingStmBackend::mc_fault_torn_writeback = false;
#endif
}

void reset_common(unsigned nthreads) {
  destroy_world();
  for (auto& w : g_data) w.v = 0;
  for (auto& l : g_locals) l = SLocals{};
  for (unsigned t = 0; t < kMaxMcThreads; ++t) g_env[t] = SEnv{t};
  g_rec.reset(nthreads);
}

/// Duration quantum such that one segment (ops + work(50) + sub-HTM commit
/// epilogue) fits but any two segments — or a whole heavy transaction on
/// the fast path — overrun.
constexpr std::uint64_t kQuantum = 80;
constexpr std::uint64_t kSegWork = 50;

HtmConfig mc_htm_config() {
  HtmConfig c = HtmConfig::testing();
  c.tick_budget = kQuantum;
  c.random_other_per_access = 0.0;  // determinism: no async-interrupt draws
  c.seed = 42;
  return c;
}

tm::BackendConfig mc_backend_config() {
  tm::BackendConfig b;
  // Small retry counts keep the bounded exploration tree tight; every
  // fallback path is still reachable.
  b.htm_retries = 2;
  b.partitioned_retries = 1;
  b.sub_htm_retries = 2;
  b.ring_entries = 8;
  return b;
}

void build_part(unsigned nthreads, PartHtmBackend::Mode mode) {
  reset_common(nthreads);
  g_rt.emplace(mc_htm_config());
  g_part.emplace(*g_rt, mc_backend_config(), mode, /*no_fast=*/false);
  for (unsigned t = 0; t < nthreads; ++t)
    g_workers.push_back(g_part->make_worker(t));
}

void build_ringstm(unsigned nthreads) {
  reset_common(nthreads);
  g_rt.emplace(mc_htm_config());
  g_ringstm.emplace(*g_rt, mc_backend_config());
  for (unsigned t = 0; t < nthreads; ++t)
    g_workers.push_back(g_ringstm->make_worker(t));
}

void run_txn(tm::Backend& b, unsigned tid, decltype(tm::Txn::step) step,
             bool irrevocable = false) {
  tm::Txn t;
  t.step = step;
  t.env = &g_env[tid];
  t.locals = &g_locals[tid];
  t.locals_bytes = sizeof(SLocals);
  t.irrevocable = irrevocable;
  b.execute(*g_workers[tid], t);
  g_rec.finish(tid, g_locals[tid].log);
}

HistoryInput collect_common(unsigned nthreads, bool opacity) {
  HistoryInput in;
  in.check_opacity = opacity;
  for (unsigned t = 0; t < nthreads; ++t) {
    const TxRecord& r = g_rec.record(t);
    CommittedTx ct;
    ct.tid = t;
    ct.ops = r.mirror;
    ct.begin_step = ct.ops.empty() ? r.end_step : ct.ops.front().step;
    ct.end_step = r.end_step;
    in.txns.push_back(std::move(ct));
    for (const Fragment& f : r.fragments) in.fragments.push_back(f);
  }
  for (unsigned i = 0; i < kScenarioWords; ++i) {
    in.initial.emplace_back(word(i), 0);
    // Plain load: all workers have joined, the world is quiescent.
    in.final_mem.emplace_back(word(i),
                              __atomic_load_n(word(i), __ATOMIC_ACQUIRE));
  }
  return in;
}

unsigned env_tid(const void* e) { return static_cast<const SEnv*>(e)->tid; }
TxLog& log_of(void* lp) { return static_cast<SLocals*>(lp)->log; }

// ---- step functions (plain functions: no captures, fully deterministic) --

/// Fast-path increment of word 0.
bool step_inc_x(tm::Ctx& c, const void* e, void* lp, unsigned) {
  TxLog& log = log_of(lp);
  const std::uint64_t v = rec_read(c, g_rec, env_tid(e), log, word(0));
  rec_write(c, g_rec, env_tid(e), log, word(0), v + 1);
  return false;
}

/// Fast-path: copy word 0 into word 1 (conflicts with step_inc_x on x).
bool step_copy_x_to_y(tm::Ctx& c, const void* e, void* lp, unsigned) {
  TxLog& log = log_of(lp);
  const std::uint64_t v = rec_read(c, g_rec, env_tid(e), log, word(0));
  rec_write(c, g_rec, env_tid(e), log, word(1), v + 100);
  return false;
}

/// Two heavy segments incrementing words 2 then 3: overruns the quantum as
/// one transaction, fits per segment — deterministic partitioned fallback.
bool step_part_heavy_zw(tm::Ctx& c, const void* e, void* lp, unsigned seg) {
  TxLog& log = log_of(lp);
  const std::uint64_t v = rec_read(c, g_rec, env_tid(e), log, word(2 + seg));
  rec_write(c, g_rec, env_tid(e), log, word(2 + seg), v + 1);
  c.work(kSegWork);
  return seg == 0;
}

/// Two heavy segments eagerly writing x (word 0) then y (word 1).
bool step_part_write_xy(tm::Ctx& c, const void* e, void* lp, unsigned seg) {
  TxLog& log = log_of(lp);
  rec_write(c, g_rec, env_tid(e), log, word(seg), 1);
  c.work(kSegWork);
  return seg == 0;
}

/// Fast-path read of x then y: the invariant probe against eager writes.
bool step_read_xy(tm::Ctx& c, const void* e, void* lp, unsigned) {
  TxLog& log = log_of(lp);
  rec_read(c, g_rec, env_tid(e), log, word(0));
  rec_read(c, g_rec, env_tid(e), log, word(1));
  return false;
}

/// Irrevocable writer of x and y (global-lock path by construction).
bool step_slow_write_xy(tm::Ctx& c, const void* e, void* lp, unsigned) {
  TxLog& log = log_of(lp);
  rec_write(c, g_rec, env_tid(e), log, word(0), 7);
  rec_write(c, g_rec, env_tid(e), log, word(1), 7);
  return false;
}

/// Segment 0 eagerly writes x and announces its write lock; segment 1 can
/// never fit the quantum, so the sub-HTM retries exhaust and the attempt
/// global-aborts: the undo log must retract the eager write and the lock.
/// The transaction then commits on the slow path.
bool step_undo_rollback_xy(tm::Ctx& c, const void* e, void* lp, unsigned seg) {
  TxLog& log = log_of(lp);
  if (seg == 0) {
    rec_write(c, g_rec, env_tid(e), log, word(0), 1);
    return true;
  }
  c.work(4 * kQuantum);  // guaranteed duration abort in any sub-HTM attempt
  rec_write(c, g_rec, env_tid(e), log, word(1), 1);
  return false;
}

/// RingSTM write-only transaction stamping words 0 and 1 with a per-thread
/// value: any serial order leaves them equal, a torn write-back does not.
bool step_ringstm_stamp(tm::Ctx& c, const void* e, void* lp, unsigned) {
  TxLog& log = log_of(lp);
  const std::uint64_t stamp = 101 * (std::uint64_t{env_tid(e)} + 1);
  rec_write(c, g_rec, env_tid(e), log, word(0), stamp);
  rec_write(c, g_rec, env_tid(e), log, word(1), stamp);
  return false;
}

// ---- scenario registry ---------------------------------------------------

McScenario make_fast_fast_ring() {
  McScenario s;
  s.name = "fast_fast_ring";
  s.nthreads = 3;
  s.setup = [] { build_part(3, PartHtmBackend::Mode::kSerializable); };
  s.body = [](unsigned tid) {
    switch (tid) {
      case 0: run_txn(*g_part, 0, &step_inc_x); break;
      case 1: run_txn(*g_part, 1, &step_copy_x_to_y); break;
      default: run_txn(*g_part, 2, &step_part_heavy_zw); break;
    }
  };
  s.collect = [] { return collect_common(3, false); };
  s.teardown = [] { destroy_world(); };
  s.invariant = [] {
    // The heavy transaction can never fit one hardware attempt.
    if (g_workers[2]->stats().commits[static_cast<unsigned>(CommitPath::kHtm)] != 0)
      return std::string("heavy txn committed on the fast path");
    return std::string{};
  };
  return s;
}

McScenario make_part_vs_fast() {
  McScenario s;
  s.name = "part_vs_fast";
  s.nthreads = 2;
  s.setup = [] { build_part(2, PartHtmBackend::Mode::kSerializable); };
  s.body = [](unsigned tid) {
    if (tid == 0)
      run_txn(*g_part, 0, &step_part_write_xy);
    else
      run_txn(*g_part, 1, &step_read_xy);
  };
  s.collect = [] { return collect_common(2, false); };
  s.teardown = [] { destroy_world(); };
  s.invariant = [] {
    if (g_workers[0]->stats().commits[static_cast<unsigned>(CommitPath::kHtm)] != 0)
      return std::string("heavy txn committed on the fast path");
    return std::string{};
  };
  return s;
}

McScenario make_slow_quiesce() {
  McScenario s;
  s.name = "slow_quiesce";
  s.nthreads = 3;
  s.setup = [] { build_part(3, PartHtmBackend::Mode::kSerializable); };
  s.body = [](unsigned tid) {
    switch (tid) {
      case 0: run_txn(*g_part, 0, &step_slow_write_xy, /*irrevocable=*/true); break;
      case 1: run_txn(*g_part, 1, &step_read_xy); break;
      default: run_txn(*g_part, 2, &step_part_heavy_zw); break;
    }
  };
  s.collect = [] { return collect_common(3, false); };
  s.teardown = [] { destroy_world(); };
  return s;
}

McScenario make_undo_rollback() {
  McScenario s;
  s.name = "undo_rollback";
  s.nthreads = 2;
  s.setup = [] { build_part(2, PartHtmBackend::Mode::kSerializable); };
  s.body = [](unsigned tid) {
    if (tid == 0)
      run_txn(*g_part, 0, &step_undo_rollback_xy);
    else
      run_txn(*g_part, 1, &step_read_xy);
  };
  s.collect = [] { return collect_common(2, false); };
  s.teardown = [] { destroy_world(); };
  s.invariant = [] {
    const auto& st = g_workers[0]->stats();
    if (st.global_aborts == 0)
      return std::string("writer never exercised the global-abort rollback");
    if (st.commits[static_cast<unsigned>(CommitPath::kGlobalLock)] != 1)
      return std::string("writer was expected to commit on the slow path");
    if (!g_part->write_locks().empty())
      return std::string("write-locks signature not retracted after commit");
    return std::string{};
  };
  return s;
}

McScenario make_opaque_zombie() {
  McScenario s;
  s.name = "opaque_zombie";
  s.nthreads = 2;
  s.check_opacity = true;
  s.setup = [] { build_part(2, PartHtmBackend::Mode::kOpaque); };
  s.body = [](unsigned tid) {
    if (tid == 0)
      run_txn(*g_part, 0, &step_part_write_xy);
    else
      run_txn(*g_part, 1, &step_read_xy);
  };
  s.collect = [] { return collect_common(2, true); };
  s.teardown = [] { destroy_world(); };
  return s;
}

McScenario make_ringstm_writeback(bool fault) {
  McScenario s;
  s.name = fault ? "ringstm_writeback_fault" : "ringstm_writeback";
  s.nthreads = 2;
  s.setup = [fault] {
    build_ringstm(2);
#if defined(PHTM_MC) && PHTM_MC
    stm::RingStmBackend::mc_fault_torn_writeback = fault;
#else
    (void)fault;
#endif
  };
  s.body = [](unsigned tid) { run_txn(*g_ringstm, tid, &step_ringstm_stamp); };
  s.collect = [] { return collect_common(2, false); };
  s.teardown = [] { destroy_world(); };
  return s;
}

}  // namespace

const std::vector<McScenario>& scenarios() {
  static const std::vector<McScenario> all = [] {
    std::vector<McScenario> v;
    v.push_back(make_fast_fast_ring());
    v.push_back(make_part_vs_fast());
    v.push_back(make_slow_quiesce());
    v.push_back(make_undo_rollback());
    v.push_back(make_opaque_zombie());
    v.push_back(make_ringstm_writeback(false));
    v.push_back(make_ringstm_writeback(true));
    return v;
  }();
  return all;
}

const McScenario* find_scenario(const std::string& name) {
  for (const McScenario& s : scenarios())
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace phtm::mc
