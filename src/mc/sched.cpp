// Cooperative virtual scheduler + stateless DFS explorer. See sched.hpp.
//
// Execution model: each worker is a ucontext fiber multiplexed onto the
// scheduler's OS thread, so a context switch is a userspace register swap
// (~100ns) rather than a futex round trip — exhaustive enumeration stays
// fast even on a single-core host. Exactly one worker runs at a time by
// construction. A worker parks at every PHTM_MC yield point; when the
// scheduler picks it, it performs the pending shared-memory action plus all
// purely thread-local code up to its next yield as one atomic step. The
// worker bodies themselves still use std::atomic for protocol state — the
// instrumented stack is the production code — but no two fibers ever run
// concurrently, so histories depend only on the schedule. Exploration is
// stateless (CHESS-style): the decision stack records, per step, the
// candidate threads and the index taken; backtracking truncates the stack
// to the deepest node with an untried candidate and re-executes from the
// start, replaying the prefix. Determinism of re-execution is what makes
// the recorded prefix meaningful — scenarios keep all protocol-visible
// state in storage whose addresses repeat across executions, and every
// replayed decision re-validates the observed enabled set against the
// recorded one, failing loudly on divergence.
//
// Spin handling: a thread that parks at PHTM_MC_SPIN re-ran a wait-loop
// check that failed. Re-scheduling it before anything else writes the
// watched line cannot change the outcome, so a spin-parked thread is not
// eligible until some other thread performs a write-capable op on that line
// (null footprints wake everyone). If no thread is eligible the schedule is a
// genuine deadlock: the explorer prints the replay seed and aborts (the
// worker threads are parked forever; there is no clean unwind).
//
// Preemption bounding (CHESS): switching away from a thread that is parked
// at a normal yield (i.e. still able to run) consumes one unit of the
// bound; switches forced by spins or thread completion are free.
//
// Sleep sets (Godefroid): after fully exploring candidate u at a node, u
// joins the node's sleep set; a child reached by choosing w inherits the
// sleep threads whose pending ops are independent of w's. Sleeping threads
// are dropped from the candidate list — schedules that merely commute two
// independent actions are visited once. Dependence is cache-line granular;
// ops with null footprints are dependent with everything, and only
// read-only kinds commute on the same line.
#include "mc/sched.hpp"

#include <ucontext.h>

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/cacheline.hpp"
#include "util/mc_hooks.hpp"

namespace phtm::mc {
namespace {

struct PendingOp {
  YieldKind kind = YieldKind::kRawLoad;
  const void* addr = nullptr;
};

bool read_only_kind(YieldKind k) {
  switch (k) {
    case YieldKind::kHwRead:
    case YieldKind::kHwSubscribe:
    case YieldKind::kNtLoad:
    case YieldKind::kRawLoad:
    case YieldKind::kSpin:
      return true;
    default:
      return false;
  }
}

bool same_line(const void* a, const void* b) {
  return phtm::line_of(a) == phtm::line_of(b);
}

bool dependent(const PendingOp& a, const PendingOp& b) {
  if (a.addr == nullptr || b.addr == nullptr) return true;
  if (!same_line(a.addr, b.addr)) return false;
  return !(read_only_kind(a.kind) && read_only_kind(b.kind));
}

// Stable across executions: the cells double as the synthetic footprints of
// the per-thread "about to start" pseudo-ops, which must be mutually
// independent (prologues touch no shared protocol state before their first
// real yield), hence one cache line each.
struct alignas(kCacheLineBytes) Cell {
  unsigned tid = 0;
  bool done = false;
  PendingOp pending;
  bool spin_parked = false;
  bool spin_woken = false;
  std::exception_ptr err;
  ucontext_t uc;  ///< the fiber's saved context while parked
};

Cell g_cells[kMaxMcThreads];
ucontext_t g_sched_uc;              ///< scheduler context while a fiber runs
Cell* g_running = nullptr;          ///< fiber currently scheduled (or null)
const McScenario* g_scenario = nullptr;

// 256 KiB per fiber: protocol code is shallow, but leave generous room for
// backend internals (logs, vectors) that live on the worker stack.
constexpr std::size_t kFiberStackBytes = 256 * 1024;
alignas(64) char g_stacks[kMaxMcThreads][kFiberStackBytes];

/// Park the running fiber at a yield point and switch to the scheduler.
void park(Cell& c, YieldKind kind, const void* addr) {
  c.pending = PendingOp{kind, addr};
  c.spin_parked = (kind == YieldKind::kSpin);
  c.spin_woken = false;
  swapcontext(&c.uc, &g_sched_uc);
}

/// Fiber entry point (makecontext passes the tid as an int).
void fiber_main(int tid) {
  Cell& c = g_cells[tid];
  try {
    g_scenario->body(static_cast<unsigned>(tid));
  } catch (...) {
    c.err = std::current_exception();
  }
  c.done = true;
  g_running = nullptr;
  swapcontext(&c.uc, &g_sched_uc);  // never resumed
  std::abort();                     // unreachable
}

/// Let `c` perform its pending action and run to its next park (or done).
void run_until_park(Cell& c) {
  g_running = &c;
  swapcontext(&g_sched_uc, &c.uc);
  g_running = nullptr;
}

/// (Re)create thread `t`'s fiber, parked at the synthetic start pseudo-op.
void spawn_fiber(unsigned t) {
  Cell& c = g_cells[t];
  c.tid = t;
  c.done = false;
  c.err = nullptr;
  c.pending = PendingOp{YieldKind::kRawLoad, &c};
  c.spin_parked = false;
  c.spin_woken = false;
  getcontext(&c.uc);
  c.uc.uc_stack.ss_sp = g_stacks[t];
  c.uc.uc_stack.ss_size = kFiberStackBytes;
  c.uc.uc_link = &g_sched_uc;
  makecontext(&c.uc, reinterpret_cast<void (*)()>(&fiber_main), 1,
              static_cast<int>(t));
}

struct Node {
  std::vector<unsigned> cands;   ///< allowed candidates, default first
  unsigned cur = 0;              ///< index of the choice taken
  std::uint64_t sleep = 0;       ///< sleep set (tid bitmask) at node entry
  std::uint64_t explored = 0;    ///< siblings fully explored at this node
  PendingOp ops[kMaxMcThreads];  ///< pending op of every thread here
  std::uint32_t live_mask = 0;   ///< fingerprint: not-done threads
};

std::string seed_of(const std::vector<unsigned>& trace) {
  std::ostringstream os;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i) os << ',';
    os << trace[i];
  }
  return os.str();
}

std::vector<unsigned> parse_seed(const std::string& s) {
  std::vector<unsigned> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) out.push_back(std::stoul(tok));
  return out;
}

[[noreturn]] void die_deadlocked(const std::vector<unsigned>& trace) {
  std::fprintf(stderr,
               "mc: DEADLOCK — every live thread is spin-parked with no "
               "possible waker.\nmc: replay seed: %s\n",
               seed_of(trace).c_str());
  std::fflush(stderr);
  std::abort();  // workers are parked forever; no clean unwind exists
}

}  // namespace

// Called from the instrumented protocol stack (util/mc_hooks.hpp). Calls
// from the scheduler thread itself (scenario setup/collect/teardown run the
// instrumented code paths too) are no-ops: only fiber code is scheduled.
void yield_hook(YieldKind kind, const void* addr) noexcept {
  Cell* c = g_running;
  if (c != nullptr) park(*c, kind, addr);
}

ExploreStats explore(const McScenario& sc, const ExploreOptions& opt) {
  assert(sc.nthreads >= 1 && sc.nthreads <= kMaxMcThreads);
  ExploreStats st;
  std::vector<Node> stack;
  bool truncated_any = false;
  const bool replay_mode = !opt.replay.empty();
  const std::vector<unsigned> seed =
      replay_mode ? parse_seed(opt.replay) : std::vector<unsigned>{};

  while (st.schedules < opt.max_schedules) {
    // ---------- one execution ----------
    g_scenario = &sc;
    sc.setup();
    for (unsigned t = 0; t < sc.nthreads; ++t) spawn_fiber(t);

    std::vector<unsigned> trace;
    int prev = -1;
    unsigned preempts = 0;
    std::uint64_t steps = 0;
    bool runaway = false;      // execution exceeded max_steps_per_run
    bool divergence = false;
    std::string diverge_why;

    for (;;) {
      std::uint32_t live = 0;
      std::uint64_t eligible = 0;
      for (unsigned t = 0; t < sc.nthreads; ++t) {
        Cell& c = g_cells[t];
        if (c.done) continue;
        live |= 1u << t;
        if (!c.spin_parked || c.spin_woken) eligible |= 1u << t;
      }
      if (live == 0) break;  // all committed: schedule complete
      if (eligible == 0) die_deadlocked(trace);
      if (steps >= opt.max_steps_per_run) {
        // Runaway execution (a schedule-dependent livelock, or the limit is
        // too small for the scenario). Parked fibers cannot be unwound;
        // abandon them — spawn_fiber reinitializes the stacks next run.
        runaway = truncated_any = true;
        std::fprintf(stderr,
                     "mc: runaway execution (> %llu steps); live threads:\n",
                     static_cast<unsigned long long>(opt.max_steps_per_run));
        for (unsigned t = 0; t < sc.nthreads; ++t) {
          const Cell& c = g_cells[t];
          if (c.done) continue;
          std::fprintf(stderr, "mc:   t%u pending kind=%d addr=%p%s\n", t,
                       static_cast<int>(c.pending.kind), c.pending.addr,
                       c.spin_parked ? " (spin)" : "");
        }
        std::fprintf(stderr, "mc:   trace tail:");
        const std::size_t tail =
            trace.size() > 64 ? trace.size() - 64 : std::size_t{0};
        for (std::size_t i = tail; i < trace.size(); ++i)
          std::fprintf(stderr, " %u", trace[i]);
        std::fprintf(stderr, "\nmc: replay seed: %s\n", seed_of(trace).c_str());
        break;
      }

      // Preemption bound: abandoning a thread parked at a normal yield
      // costs one unit; switches forced by spins/completion are free.
      const bool prev_holds =
          prev >= 0 && !g_cells[prev].done && !g_cells[prev].spin_parked;
      std::uint64_t allowed = eligible;
      if (prev_holds && preempts >= opt.preemption_bound)
        allowed = std::uint64_t{1} << prev;

      unsigned chosen;
      const std::size_t depth = trace.size();
      if (replay_mode) {
        if (depth < seed.size()) {
          chosen = seed[depth];
          if (chosen >= sc.nthreads || !((eligible >> chosen) & 1)) {
            divergence = true;
            std::ostringstream os;
            os << "replay seed chooses thread " << chosen << " at step "
               << depth << " but it is not eligible";
            diverge_why = os.str();
            chosen = static_cast<unsigned>(std::countr_zero(eligible));
          }
        } else {
          // Past the seed: default = stick with prev when possible.
          if (prev >= 0 && ((allowed >> prev) & 1))
            chosen = static_cast<unsigned>(prev);
          else
            chosen = static_cast<unsigned>(std::countr_zero(allowed));
        }
      } else if (depth < stack.size()) {
        // Replaying the decided prefix of the DFS.
        Node& n = stack[depth];
        chosen = n.cands[n.cur];
        if (n.live_mask != live || !((eligible >> chosen) & 1)) {
          divergence = true;
          std::ostringstream os;
          os << "nondeterministic re-execution at step " << depth
             << ": recorded choice/live set no longer matches; scenario "
                "state is not reset deterministically";
          diverge_why = os.str();
          chosen = static_cast<unsigned>(std::countr_zero(eligible));
        }
      } else if (divergence) {
        chosen = (prev >= 0 && ((allowed >> prev) & 1))
                     ? static_cast<unsigned>(prev)
                     : static_cast<unsigned>(std::countr_zero(allowed));
      } else {
        // Fresh decision point: build the node.
        Node n;
        n.live_mask = live;
        for (unsigned t = 0; t < sc.nthreads; ++t)
          n.ops[t] = g_cells[t].pending;
        if (!stack.empty()) {
          const Node& p = stack.back();
          const unsigned pc = p.cands[p.cur];
          const std::uint64_t src = p.sleep | p.explored;
          for (unsigned t = 0; t < sc.nthreads; ++t)
            if (((src >> t) & 1) && t != pc &&
                !dependent(p.ops[t], p.ops[pc]))
              n.sleep |= std::uint64_t{1} << t;
        }
        std::uint64_t pick_from = allowed;
        if (opt.sleep_sets) {
          const std::uint64_t filtered = allowed & ~n.sleep;
          if (filtered != 0) {
            st.sleep_pruned += std::popcount(allowed) - std::popcount(filtered);
            pick_from = filtered;
          } else {
            // Classic sleep sets would prune this whole branch; keeping it
            // (with a cleared filter) is sound, merely redundant.
            n.sleep = 0;
          }
        }
        // Default first = stay on prev (fewest preemptions), then by tid.
        if (prev >= 0 && ((pick_from >> prev) & 1))
          n.cands.push_back(static_cast<unsigned>(prev));
        for (unsigned t = 0; t < sc.nthreads; ++t)
          if (((pick_from >> t) & 1) && static_cast<int>(t) != prev)
            n.cands.push_back(t);
        n.cur = 0;
        chosen = n.cands[0];
        stack.push_back(std::move(n));
      }

      if (prev_holds && static_cast<int>(chosen) != prev) ++preempts;

      // The chosen thread is about to perform its pending op: wake any
      // spin-parked thread whose watched line this op may change. Only
      // write-capable ops qualify — loads cannot change the spinner's
      // condition, and waking on them lets two spin loops watching the same
      // line ping-pong forever through their recheck loads (each recheck is
      // itself an instrumented load on the watched line).
      Cell& cc = g_cells[chosen];
      if (!cc.spin_parked && !read_only_kind(cc.pending.kind)) {
        for (unsigned t = 0; t < sc.nthreads; ++t) {
          Cell& s = g_cells[t];
          if (t == chosen || s.done || !s.spin_parked || s.spin_woken)
            continue;
          if (cc.pending.addr == nullptr || s.pending.addr == nullptr ||
              same_line(cc.pending.addr, s.pending.addr))
            s.spin_woken = true;
        }
      }

      // PHTM_MC_TRACE=N: dump the first N scheduled ops of every execution.
      static const long trace_limit = [] {
        const char* e = std::getenv("PHTM_MC_TRACE");
        return e ? std::atol(e) : 0L;
      }();
      if (trace_limit > 0 && static_cast<long>(depth) < trace_limit)
        std::fprintf(stderr, "mc-trace: %4zu t%u kind=%d addr=%p%s\n", depth,
                     chosen, static_cast<int>(cc.pending.kind), cc.pending.addr,
                     cc.spin_parked ? " spin" : "");

      trace.push_back(chosen);
      ++st.decisions;
      ++steps;
      run_until_park(cc);
      prev = static_cast<int>(chosen);
    }

    ++st.schedules;

    if (runaway) {
      sc.teardown();
      st.violation = true;
      st.violation_kind = "internal";
      st.violation_detail =
          "runaway execution: exceeded max_steps_per_run (livelock under "
          "this schedule, or limit too small for the scenario)";
      st.violation_seed = seed_of(trace);
      return st;
    }

    std::string internal_err;
    for (unsigned t = 0; t < sc.nthreads; ++t) {
      if (!g_cells[t].err) continue;
      try {
        std::rethrow_exception(g_cells[t].err);
      } catch (const std::exception& e) {
        internal_err = std::string("thread ") + std::to_string(t) +
                       " threw: " + e.what();
      } catch (...) {
        internal_err =
            std::string("thread ") + std::to_string(t) + " threw (unknown)";
      }
    }

    HistoryInput hi = sc.collect();
    const HistoryVerdict verdict = check_history(hi);
    std::string inv = sc.invariant ? sc.invariant() : std::string{};
    sc.teardown();

    if (!internal_err.empty() || divergence) {
      st.violation = true;
      st.violation_kind = "internal";
      st.violation_detail = divergence ? diverge_why : internal_err;
      st.violation_seed = seed_of(trace);
      return st;
    }
    if (!verdict.ok || !inv.empty()) {
      st.violation = true;
      st.violation_kind = verdict.ok ? "invariant" : "history";
      st.violation_detail = verdict.ok ? inv : verdict.diagnosis;
      st.violation_seed = seed_of(trace);
      return st;
    }
    if (replay_mode) {
      st.complete = true;
      return st;
    }

    // ---------- backtrack ----------
    bool advanced = false;
    while (!stack.empty()) {
      Node& n = stack.back();
      n.explored |= std::uint64_t{1} << n.cands[n.cur];
      if (n.cur + 1 < n.cands.size()) {
        ++n.cur;
        advanced = true;
        break;
      }
      stack.pop_back();
    }
    if (!advanced) {
      st.complete = !truncated_any;
      return st;
    }
  }
  return st;  // hit max_schedules
}

}  // namespace phtm::mc
