// Deterministic schedule-exploration harness (Loom/CHESS-style) for the
// PART-HTM protocol stack. See DESIGN.md, "Model checking".
//
// A scenario describes a small closed world: setup() builds the runtime,
// backend and workers into stable storage, body(tid) drives one thread's
// transactions, collect() harvests the transactional history and memory
// state, teardown() destroys the world. explore() then runs the scenario
// once per schedule, context-switching the worker threads only at the
// PHTM_MC yield points the protocol stack exposes, and enumerates every
// interleaving up to a preemption bound with sleep-set pruning. Each
// completed schedule's history is handed to the serializability/opacity
// checker; the first violation stops the search and reports a replay seed
// (the comma-separated list of thread ids chosen at each decision point)
// that reproduces the schedule deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mc/history.hpp"
#include "mc/opacity.hpp"

namespace phtm::mc {

inline constexpr unsigned kMaxMcThreads = 4;

struct McScenario {
  std::string name;
  unsigned nthreads = 2;
  bool check_opacity = false;
  std::function<void()> setup;
  std::function<void(unsigned)> body;
  std::function<HistoryInput()> collect;
  std::function<void()> teardown;
  /// Optional scenario-specific invariant checked after every schedule
  /// (empty string = holds). Runs on the scheduler thread after collect().
  std::function<std::string()> invariant;
};

struct ExploreOptions {
  unsigned preemption_bound = 2;
  bool sleep_sets = true;
  std::uint64_t max_schedules = 1u << 20;
  std::uint64_t max_steps_per_run = 200000;
  /// Non-empty: replay exactly this one schedule ("3,0,0,1,...") and stop.
  /// After the seed is exhausted the run continues with default choices.
  std::string replay;
};

struct ExploreStats {
  std::uint64_t schedules = 0;   ///< completed executions
  std::uint64_t decisions = 0;   ///< scheduling decision points visited
  std::uint64_t sleep_pruned = 0;///< candidates removed by sleep sets
  bool complete = false;         ///< bounded tree fully enumerated
  bool violation = false;
  std::string violation_kind;    ///< "history" | "invariant" | "internal"
  std::string violation_detail;
  std::string violation_seed;    ///< replayable schedule
};

/// Exhaustively explore (or replay) `sc` under `opt`.
ExploreStats explore(const McScenario& sc, const ExploreOptions& opt);

/// The scenario library (see src/mc/scenario.cpp). Names:
///   fast_fast_ring, part_vs_fast, slow_quiesce, undo_rollback,
///   opaque_zombie, ringstm_writeback, ringstm_writeback_fault
const std::vector<McScenario>& scenarios();
const McScenario* find_scenario(const std::string& name);

}  // namespace phtm::mc
