#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "util/spinlock.hpp"
#include "util/stats.hpp"

namespace phtm::obs {

namespace {

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;
constexpr std::size_t kMinCapacity = std::size_t{1} << 10;
constexpr std::size_t kMaxCapacity = std::size_t{1} << 24;

/// In-txn pending array size. Per hardware transaction only monitor-table
/// dooms defer (≤ one successful doom per victim slot per attempt, 64
/// slots); the bound is generous and overflow is *accounted*, not silent.
constexpr unsigned kPendingCap = 128;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t round_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::size_t capacity_from_env() {
  const char* s = std::getenv("PHTM_TRACE_BUF");
  if (s == nullptr || *s == '\0') return kDefaultCapacity;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return kDefaultCapacity;
  std::size_t cap = round_pow2(static_cast<std::size_t>(v));
  if (cap < kMinCapacity) cap = kMinCapacity;
  if (cap > kMaxCapacity) cap = kMaxCapacity;
  return cap;
}

/// Process-wide registry. Owns every thread's buffer (buffers outlive their
/// threads so post-join drains see everything); registration is the only
/// locked operation on the emission side and happens once per thread.
struct Registry {
  Spinlock lock;
  std::vector<std::unique_ptr<TraceBuffer>> buffers PHTM_GUARDED_BY(lock);
  std::map<std::string, std::uint64_t> meta_counters PHTM_GUARDED_BY(lock);
  std::size_t capacity = capacity_from_env();
  unsigned next_tid PHTM_GUARDED_BY(lock) = 0;
  bool atexit_registered PHTM_GUARDED_BY(lock) = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Per-thread emission state. The buffer pointer is owned by the registry;
/// pending[] holds events deferred while inside a simulated hardware
/// transaction (see trace.hpp file comment).
struct TlsState {
  TraceBuffer* buf = nullptr;
  std::uint32_t txn = 0;
  bool in_txn = false;
  unsigned npending = 0;
  Event pending[kPendingCap];
};

thread_local TlsState g_tls;

void atexit_finalize() { finalize_from_env(); }

TraceBuffer* acquire_buffer() {
  Registry& r = registry();
  LockGuard<Spinlock> g(r.lock);
  r.buffers.push_back(
      std::make_unique<TraceBuffer>(r.next_tid++, r.capacity));
  if (!r.atexit_registered) {
    r.atexit_registered = true;
    std::atexit(atexit_finalize);
  }
  return r.buffers.back().get();
}

TlsState& tls() {
  TlsState& t = g_tls;
  if (t.buf == nullptr) t.buf = acquire_buffer();
  return t;
}

}  // namespace

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kTxBegin: return "tx_begin";
    case EventKind::kTxCommit: return "tx_commit";
    case EventKind::kTxAbort: return "tx_abort";
    case EventKind::kPathEnter: return "path_enter";
    case EventKind::kSubBegin: return "sub_begin";
    case EventKind::kSubCommit: return "sub_commit";
    case EventKind::kSubAbort: return "sub_abort";
    case EventKind::kRingPublish: return "ring_publish";
    case EventKind::kRingValidate: return "ring_validate";
    case EventKind::kDoom: return "doom";
    case EventKind::kGlobalAbort: return "global_abort";
    case EventKind::kFallback: return "fallback";
    case EventKind::kServerShed: return "server_shed";
    case EventKind::kServerDegrade: return "server_degrade";
    case EventKind::kPersist: return "persist";
    case EventKind::kCrash: return "crash";
    case EventKind::kRecovery: return "recovery";
    default: return "?";
  }
}

TraceBuffer::TraceBuffer(unsigned tid, std::size_t capacity)
    : ring_(round_pow2(capacity < 2 ? 2 : capacity)),
      mask_(ring_.size() - 1),
      tid_(tid) {}

std::vector<Event> TraceBuffer::snapshot_events() const {
  // relaxed: quiescent read — the owner is joined (or is the caller), so
  // the join/program edge already ordered every record store before us.
  const std::uint64_t c = cursor_.load(std::memory_order_relaxed);
  const std::uint64_t n = c < capacity() ? c : capacity();
  const std::uint64_t first = c - n;
  std::vector<Event> out;
  out.reserve(n);
  for (std::uint64_t i = first; i < c; ++i) out.push_back(ring_[i & mask_]);
  return out;
}

void TraceBuffer::reset() noexcept {
  // relaxed: quiescent (see snapshot_events).
  cursor_.store(0, std::memory_order_relaxed);
  pending_drops_.store(0, std::memory_order_relaxed);
}

void emit(EventKind kind, std::uint8_t aux, std::uint64_t a0,
          std::uint64_t a1) noexcept {
  TlsState& t = tls();
  Event e;
  e.ns = now_ns();
  e.a0 = a0;
  e.a1 = a1;
  e.txn = t.txn;
  e.kind = kind;
  e.aux = aux;
  e.pad = 0;
  if (t.in_txn) {
    if (t.npending < kPendingCap) {
      t.pending[t.npending++] = e;
    } else {
      t.buf->count_pending_drop();
    }
    return;
  }
  t.buf->push(e);
}

void tx_begin() noexcept {
  TlsState& t = tls();
  ++t.txn;
  emit(EventKind::kTxBegin, 0, 0, 0);
}

void txn_enter() noexcept { tls().in_txn = true; }

void txn_exit() noexcept {
  TlsState& t = g_tls;
  t.in_txn = false;
  if (t.npending == 0) return;
  // tls() not needed: pending is only non-empty if emit() ran, which
  // registered the buffer.
  for (unsigned i = 0; i < t.npending; ++i) t.buf->push(t.pending[i]);
  t.npending = 0;
}

void set_meta(const char* key, std::uint64_t value) {
  Registry& r = registry();
  LockGuard<Spinlock> g(r.lock);
  r.meta_counters[key] = value;
}

std::map<std::string, std::uint64_t> meta() {
  Registry& r = registry();
  LockGuard<Spinlock> g(r.lock);
  return r.meta_counters;
}

Telemetry telemetry() {
  Registry& r = registry();
  LockGuard<Spinlock> g(r.lock);
  Telemetry t;
  t.threads = static_cast<unsigned>(r.buffers.size());
  for (const auto& b : r.buffers) {
    t.emitted += b->emitted();
    t.dropped += b->dropped();
  }
  return t;
}

std::vector<ThreadTrace> drain() {
  Registry& r = registry();
  LockGuard<Spinlock> g(r.lock);
  std::vector<ThreadTrace> out;
  out.reserve(r.buffers.size());
  for (const auto& b : r.buffers) {
    ThreadTrace t;
    t.tid = b->tid();
    t.emitted = b->emitted();
    t.dropped = b->dropped();
    t.events = b->snapshot_events();
    t.first_seq = t.emitted - t.events.size();
    out.push_back(std::move(t));
  }
  return out;
}

void reset() {
  Registry& r = registry();
  LockGuard<Spinlock> g(r.lock);
  for (const auto& b : r.buffers) b->reset();
  r.meta_counters.clear();
}

TraceSummary summarize(const std::vector<ThreadTrace>& traces) {
  TraceSummary s;
  s.threads = static_cast<unsigned>(traces.size());
  for (const auto& t : traces) {
    s.events += t.events.size();
    s.dropped += t.dropped;
    // Latency attribution: events are in per-thread emission order, so the
    // last kTxBegin with a matching ordinal anchors commit/abort deltas.
    // A begin lost to ring rollover simply yields no latency sample.
    std::uint64_t begin_ns = 0;
    std::uint32_t begin_txn = 0;
    bool have_begin = false;
    for (const Event& e : t.events) {
      switch (e.kind) {
        case EventKind::kTxBegin:
          ++s.tx_begins;
          begin_ns = e.ns;
          begin_txn = e.txn;
          have_begin = true;
          break;
        case EventKind::kTxCommit:
          if (e.aux < 3) {
            ++s.commits[e.aux];
            if (have_begin && e.txn == begin_txn)
              s.commit_latency_ns[e.aux].record(e.ns - begin_ns);
          }
          break;
        case EventKind::kTxAbort:
          if (e.aux < 4) {
            ++s.aborts[e.aux];
            if (have_begin && e.txn == begin_txn)
              s.abort_latency_ns[e.aux].record(e.ns - begin_ns);
          }
          break;
        case EventKind::kPathEnter:
          if (e.aux < 3) ++s.path_enters[e.aux];
          break;
        case EventKind::kSubBegin: ++s.sub_begins; break;
        case EventKind::kSubCommit: ++s.sub_commits; break;
        case EventKind::kSubAbort: ++s.sub_aborts; break;
        case EventKind::kRingPublish:
          ++s.ring_publishes;
          if (e.aux < TraceSummary::kRingShards)
            ++s.ring_publishes_by_shard[e.aux];
          break;
        case EventKind::kRingValidate:
          if (e.aux < 3) ++s.ring_validates[e.aux];
          if (e.a1 < TraceSummary::kRingShards)
            ++s.ring_validates_by_shard[e.a1];
          break;
        case EventKind::kDoom: ++s.dooms; break;
        case EventKind::kGlobalAbort: ++s.global_aborts; break;
        case EventKind::kFallback:
          if (e.aux < 5) ++s.fallbacks[e.aux];
          break;
        case EventKind::kServerShed: ++s.server_sheds; break;
        case EventKind::kServerDegrade:
          if (e.aux < TraceSummary::kServerStates) ++s.server_degrades[e.aux];
          break;
        case EventKind::kPersist:
          if (e.aux < TraceSummary::kPersistOps) ++s.persists[e.aux];
          break;
        case EventKind::kCrash: ++s.crashes; break;
        case EventKind::kRecovery: ++s.recoveries; break;
        default: break;
      }
    }
  }
  return s;
}

namespace {

const char* cause_name(std::uint8_t aux) noexcept {
  return aux < 4 ? to_string(static_cast<AbortCause>(aux)) : "?";
}

const char* path_name(std::uint8_t aux) noexcept {
  return aux < 3 ? to_string(static_cast<CommitPath>(aux)) : "?";
}

// kDoom's aux is a sim::AbortCode (kNone first), not an AbortCause —
// mirror its value order without dragging sim headers into the tracer.
const char* abort_code_name(std::uint8_t aux) noexcept {
  switch (aux) {
    case 0: return "none";
    case 1: return "conflict";
    case 2: return "capacity";
    case 3: return "explicit";
    case 4: return "other";
    default: return "?";
  }
}

const char* reason_name(std::uint8_t aux) noexcept {
  return aux < 5 ? to_string(static_cast<FallbackReason>(aux)) : "?";
}

const char* val_name(std::uint8_t aux) noexcept {
  switch (aux) {
    case 0: return "ok";
    case 1: return "conflict";
    case 2: return "rollover";
    default: return "?";
  }
}

// Persistence-domain ops (util/stats.hpp PersistOp) by value.
const char* persist_op_name(std::uint8_t aux) noexcept {
  return aux < 3 ? to_string(static_cast<PersistOp>(aux)) : "?";
}

// Serving-layer overload-controller states (src/server/admission.hpp
// OverloadState) — mirrored by value, like abort_code_name above.
const char* server_state_name(std::uint8_t aux) noexcept {
  switch (aux) {
    case 0: return "normal";
    case 1: return "degraded";
    case 2: return "shedding";
    default: return "?";
  }
}

double us_of(std::uint64_t ns, std::uint64_t base) noexcept {
  return static_cast<double>(ns - base) / 1000.0;
}

}  // namespace

bool write_chrome_trace(const std::string& path,
                        const std::vector<ThreadTrace>& traces,
                        const std::map<std::string, std::uint64_t>& meta_counters) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::uint64_t base = ~std::uint64_t{0};
  std::uint64_t events = 0, dropped = 0;
  for (const auto& t : traces) {
    dropped += t.dropped;
    events += t.events.size();
    if (!t.events.empty() && t.events.front().ns < base)
      base = t.events.front().ns;
  }
  if (base == ~std::uint64_t{0}) base = 0;

  std::fputs("{\"traceEvents\":[\n", f);
  std::fputs(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"phtm\"}}", f);
  // Run-level metadata record: exact loss accounting plus whatever
  // aggregate counters the run registered via PHTM_TRACE_META. Offline
  // checkers (tools/trace_view.py --check) compare event counts against
  // these; dropped==0 upgrades the comparison to exact equality. `schema`
  // versions the record's shape — bump it on any incompatible change and
  // teach tools/trace_view.py the new version (it rejects unknown ones).
  std::fprintf(f,
               ",\n{\"name\":\"phtm_meta\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,"
               "\"tid\":0,\"ts\":0,\"args\":{\"schema\":1,"
               "\"events\":%llu,\"dropped\":%llu,"
               "\"threads\":%u",
               static_cast<unsigned long long>(events),
               static_cast<unsigned long long>(dropped),
               static_cast<unsigned>(traces.size()));
  for (const auto& [k, v] : meta_counters)
    std::fprintf(f, ",\"%s\":%llu", k.c_str(),
                 static_cast<unsigned long long>(v));
  std::fputs("}}", f);

  for (const auto& t : traces) {
    std::fprintf(f,
                 ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                 "\"tid\":%u,\"args\":{\"name\":\"trace-%u\"}}",
                 t.tid, t.tid);
    std::uint64_t begin_ns = 0;
    std::uint32_t begin_txn = 0;
    bool have_begin = false;
    for (const Event& e : t.events) {
      switch (e.kind) {
        case EventKind::kTxBegin:
          begin_ns = e.ns;
          begin_txn = e.txn;
          have_begin = true;
          break;
        case EventKind::kTxCommit: {
          // Transactions render as complete ("X") spans named by their
          // commit path; a begin lost to rollover degrades to an instant.
          if (have_begin && e.txn == begin_txn) {
            std::fprintf(f,
                         ",\n{\"name\":\"tx/%s\",\"ph\":\"X\",\"pid\":0,"
                         "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                         "\"args\":{\"txn\":%u}}",
                         path_name(e.aux), t.tid, us_of(begin_ns, base),
                         static_cast<double>(e.ns - begin_ns) / 1000.0, e.txn);
          } else {
            std::fprintf(f,
                         ",\n{\"name\":\"tx/%s\",\"ph\":\"i\",\"s\":\"t\","
                         "\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                         "\"args\":{\"txn\":%u}}",
                         path_name(e.aux), t.tid, us_of(e.ns, base), e.txn);
          }
          break;
        }
        case EventKind::kTxAbort:
          std::fprintf(f,
                       ",\n{\"name\":\"abort/%s\",\"ph\":\"i\",\"s\":\"t\","
                       "\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                       "\"args\":{\"txn\":%u,\"code\":%llu,\"line\":%llu}}",
                       cause_name(e.aux), t.tid, us_of(e.ns, base), e.txn,
                       static_cast<unsigned long long>(e.a0),
                       static_cast<unsigned long long>(e.a1));
          break;
        case EventKind::kPathEnter:
          std::fprintf(f,
                       ",\n{\"name\":\"path/%s\",\"ph\":\"i\",\"s\":\"t\","
                       "\"pid\":0,\"tid\":%u,\"ts\":%.3f,\"args\":{\"txn\":%u}}",
                       path_name(e.aux), t.tid, us_of(e.ns, base), e.txn);
          break;
        case EventKind::kSubBegin:
        case EventKind::kSubCommit:
        case EventKind::kSubAbort:
          std::fprintf(f,
                       ",\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                       "\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                       "\"args\":{\"txn\":%u,\"seg\":%llu%s%s}}",
                       to_string(e.kind), t.tid, us_of(e.ns, base), e.txn,
                       static_cast<unsigned long long>(e.a0),
                       e.kind == EventKind::kSubAbort ? ",\"cause\":\"" : "",
                       e.kind == EventKind::kSubAbort
                           ? (std::string(cause_name(e.aux)) + "\"").c_str()
                           : "");
          break;
        case EventKind::kRingPublish:
          std::fprintf(f,
                       ",\n{\"name\":\"ring/publish/s%u\",\"ph\":\"i\",\"s\":\"t\","
                       "\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                       "\"args\":{\"txn\":%u,\"ring_ts\":%llu,\"sig_bits\":%llu,"
                       "\"shard\":%u}}",
                       static_cast<unsigned>(e.aux), t.tid, us_of(e.ns, base),
                       e.txn, static_cast<unsigned long long>(e.a0),
                       static_cast<unsigned long long>(e.a1),
                       static_cast<unsigned>(e.aux));
          break;
        case EventKind::kRingValidate:
          std::fprintf(f,
                       ",\n{\"name\":\"ring/validate/%s/s%llu\",\"ph\":\"i\","
                       "\"s\":\"t\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                       "\"args\":{\"txn\":%u,\"watermark\":%llu,\"shard\":%llu}}",
                       val_name(e.aux), static_cast<unsigned long long>(e.a1),
                       t.tid, us_of(e.ns, base), e.txn,
                       static_cast<unsigned long long>(e.a0),
                       static_cast<unsigned long long>(e.a1));
          break;
        case EventKind::kDoom:
          std::fprintf(f,
                       ",\n{\"name\":\"doom/%s\",\"ph\":\"i\",\"s\":\"t\","
                       "\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                       "\"args\":{\"txn\":%u,\"victim\":%llu,\"line\":%llu}}",
                       abort_code_name(e.aux), t.tid, us_of(e.ns, base), e.txn,
                       static_cast<unsigned long long>(e.a0),
                       static_cast<unsigned long long>(e.a1));
          break;
        case EventKind::kGlobalAbort:
          std::fprintf(f,
                       ",\n{\"name\":\"global_abort\",\"ph\":\"i\",\"s\":\"t\","
                       "\"pid\":0,\"tid\":%u,\"ts\":%.3f,\"args\":{\"txn\":%u}}",
                       t.tid, us_of(e.ns, base), e.txn);
          break;
        case EventKind::kFallback:
          std::fprintf(f,
                       ",\n{\"name\":\"fallback/%s\",\"ph\":\"i\",\"s\":\"t\","
                       "\"pid\":0,\"tid\":%u,\"ts\":%.3f,\"args\":{\"txn\":%u}}",
                       reason_name(e.aux), t.tid, us_of(e.ns, base), e.txn);
          break;
        case EventKind::kServerShed:
          std::fprintf(f,
                       ",\n{\"name\":\"server/shed\",\"ph\":\"i\",\"s\":\"t\","
                       "\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                       "\"args\":{\"req\":%llu,\"delay_ns\":%llu}}",
                       t.tid, us_of(e.ns, base),
                       static_cast<unsigned long long>(e.a0),
                       static_cast<unsigned long long>(e.a1));
          break;
        case EventKind::kServerDegrade:
          std::fprintf(f,
                       ",\n{\"name\":\"server/degrade/%s\",\"ph\":\"i\","
                       "\"s\":\"t\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                       "\"args\":{}}",
                       server_state_name(e.aux), t.tid, us_of(e.ns, base));
          break;
        case EventKind::kPersist:
          std::fprintf(f,
                       ",\n{\"name\":\"persist/%s\",\"ph\":\"i\",\"s\":\"t\","
                       "\"pid\":0,\"tid\":%u,\"ts\":%.3f,\"args\":{\"txn\":%u}}",
                       persist_op_name(e.aux), t.tid, us_of(e.ns, base), e.txn);
          break;
        case EventKind::kCrash:
          std::fprintf(f,
                       ",\n{\"name\":\"crash\",\"ph\":\"i\",\"s\":\"g\","
                       "\"pid\":0,\"tid\":%u,\"ts\":%.3f,\"args\":{}}",
                       t.tid, us_of(e.ns, base));
          break;
        case EventKind::kRecovery:
          std::fprintf(f,
                       ",\n{\"name\":\"recovery\",\"ph\":\"i\",\"s\":\"g\","
                       "\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                       "\"args\":{\"rolled_back\":%llu,\"torn_cells\":%llu}}",
                       t.tid, us_of(e.ns, base),
                       static_cast<unsigned long long>(e.a0),
                       static_cast<unsigned long long>(e.a1));
          break;
        default:
          break;
      }
    }
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

namespace {

void write_hist(std::FILE* f, const Histogram& h) {
  std::fprintf(f,
               "{\"count\":%llu,\"mean\":%.1f,\"p50\":%llu,\"p95\":%llu,"
               "\"p99\":%llu,\"max\":%llu}",
               static_cast<unsigned long long>(h.count()), h.mean(),
               static_cast<unsigned long long>(h.quantile(0.50)),
               static_cast<unsigned long long>(h.quantile(0.95)),
               static_cast<unsigned long long>(h.quantile(0.99)),
               static_cast<unsigned long long>(h.max()));
}

}  // namespace

bool write_telemetry_json(const std::string& path, const TraceSummary& s,
                          const std::map<std::string, std::uint64_t>& meta_counters) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n"
               "  \"schema\": 1,\n"
               "  \"events\": %llu,\n"
               "  \"dropped\": %llu,\n"
               "  \"threads\": %u,\n"
               "  \"tx_begins\": %llu,\n",
               static_cast<unsigned long long>(s.events),
               static_cast<unsigned long long>(s.dropped), s.threads,
               static_cast<unsigned long long>(s.tx_begins));
  std::fputs("  \"aborts\": {", f);
  for (unsigned i = 0; i < 4; ++i)
    std::fprintf(f, "%s\"%s\": %llu", i ? ", " : "",
                 to_string(static_cast<AbortCause>(i)),
                 static_cast<unsigned long long>(s.aborts[i]));
  std::fputs("},\n  \"commits\": {", f);
  for (unsigned i = 0; i < 3; ++i)
    std::fprintf(f, "%s\"%s\": %llu", i ? ", " : "",
                 to_string(static_cast<CommitPath>(i)),
                 static_cast<unsigned long long>(s.commits[i]));
  std::fputs("},\n  \"path_enters\": {", f);
  for (unsigned i = 0; i < 3; ++i)
    std::fprintf(f, "%s\"%s\": %llu", i ? ", " : "",
                 to_string(static_cast<CommitPath>(i)),
                 static_cast<unsigned long long>(s.path_enters[i]));
  std::fprintf(f,
               "},\n"
               "  \"sub_htm\": {\"begins\": %llu, \"commits\": %llu, "
               "\"aborts\": %llu},\n"
               "  \"ring\": {\"publishes\": %llu, \"validates_ok\": %llu, "
               "\"validates_conflict\": %llu, \"validates_rollover\": %llu,\n"
               "           \"publishes_by_shard\": [",
               static_cast<unsigned long long>(s.sub_begins),
               static_cast<unsigned long long>(s.sub_commits),
               static_cast<unsigned long long>(s.sub_aborts),
               static_cast<unsigned long long>(s.ring_publishes),
               static_cast<unsigned long long>(s.ring_validates[0]),
               static_cast<unsigned long long>(s.ring_validates[1]),
               static_cast<unsigned long long>(s.ring_validates[2]));
  for (unsigned i = 0; i < TraceSummary::kRingShards; ++i)
    std::fprintf(f, "%s%llu", i ? ", " : "",
                 static_cast<unsigned long long>(s.ring_publishes_by_shard[i]));
  std::fputs("], \"validates_by_shard\": [", f);
  for (unsigned i = 0; i < TraceSummary::kRingShards; ++i)
    std::fprintf(f, "%s%llu", i ? ", " : "",
                 static_cast<unsigned long long>(s.ring_validates_by_shard[i]));
  std::fprintf(f,
               "]},\n"
               "  \"dooms\": %llu,\n"
               "  \"global_aborts\": %llu,\n",
               static_cast<unsigned long long>(s.dooms),
               static_cast<unsigned long long>(s.global_aborts));
  std::fputs("  \"fallbacks\": {", f);
  for (unsigned i = 0; i < 5; ++i)
    std::fprintf(f, "%s\"%s\": %llu", i ? ", " : "",
                 to_string(static_cast<FallbackReason>(i)),
                 static_cast<unsigned long long>(s.fallbacks[i]));
  std::fprintf(f, "},\n  \"server\": {\"sheds\": %llu, \"degrades\": {",
               static_cast<unsigned long long>(s.server_sheds));
  for (unsigned i = 0; i < TraceSummary::kServerStates; ++i)
    std::fprintf(f, "%s\"%s\": %llu", i ? ", " : "",
                 server_state_name(static_cast<std::uint8_t>(i)),
                 static_cast<unsigned long long>(s.server_degrades[i]));
  std::fputs("}},\n  \"persist\": {\"ops\": {", f);
  for (unsigned i = 0; i < TraceSummary::kPersistOps; ++i)
    std::fprintf(f, "%s\"%s\": %llu", i ? ", " : "",
                 persist_op_name(static_cast<std::uint8_t>(i)),
                 static_cast<unsigned long long>(s.persists[i]));
  std::fprintf(f, "}, \"crashes\": %llu, \"recoveries\": %llu},\n",
               static_cast<unsigned long long>(s.crashes),
               static_cast<unsigned long long>(s.recoveries));
  std::fputs("  \"commit_latency_ns\": {", f);
  for (unsigned i = 0; i < 3; ++i) {
    std::fprintf(f, "%s\"%s\": ", i ? ", " : "",
                 to_string(static_cast<CommitPath>(i)));
    write_hist(f, s.commit_latency_ns[i]);
  }
  std::fputs("},\n  \"abort_latency_ns\": {", f);
  for (unsigned i = 0; i < 4; ++i) {
    std::fprintf(f, "%s\"%s\": ", i ? ", " : "",
                 to_string(static_cast<AbortCause>(i)));
    write_hist(f, s.abort_latency_ns[i]);
  }
  std::fputs("},\n  \"counters\": {", f);
  bool first = true;
  for (const auto& [k, v] : meta_counters) {
    std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ", k.c_str(),
                 static_cast<unsigned long long>(v));
    first = false;
  }
  std::fputs("}\n}\n", f);
  return std::fclose(f) == 0;
}

bool finalize_from_env() {
  const char* out = std::getenv("PHTM_TRACE_OUT");
  const char* tel = std::getenv("PHTM_TRACE_TELEMETRY");
  if ((out == nullptr || *out == '\0') && (tel == nullptr || *tel == '\0'))
    return false;
  const std::vector<ThreadTrace> traces = drain();
  const std::map<std::string, std::uint64_t> m = meta();
  bool ok = true;
  if (out != nullptr && *out != '\0') ok &= write_chrome_trace(out, traces, m);
  if (tel != nullptr && *tel != '\0')
    ok &= write_telemetry_json(tel, summarize(traces), m);
  return ok;
}

}  // namespace phtm::obs
