// Transaction-event tracer: per-thread lock-free ring buffers of POD event
// records, drained post-run, plus the `PHTM_TRACE_*` macro layer the
// protocol stack is instrumented with.
//
// Mirrors the util/mc_hooks.hpp pattern: in ordinary builds every macro
// expands to `((void)0)` — zero argument evaluations, zero codegen — so the
// production libraries carry no trace of the instrumentation (pinned by
// tests/obs_macros_test.cpp and the symbol check in tests/CMakeLists.txt).
// Trace-enabled builds compile the protocol translation units with
// `PHTM_TRACE=1`; like the model checker, the flag changes inline functions
// in protocol headers, so instrumented binaries link the `*_obs` library
// flavor (src/obs/CMakeLists.txt) and never mix flavors in one binary.
//
// Hot-path contract (the reason this is usable for measurement at all):
//
//  - emission is owner-only: each thread appends to its own fixed-size ring
//    with plain stores plus one *relaxed* atomic cursor bump — no fences,
//    no RMWs, no locks, no allocation (the buffer is allocated once, on the
//    thread's first event);
//  - the ring wraps: when a run outgrows the capacity (PHTM_TRACE_BUF
//    events per thread, default 64Ki) the oldest records are overwritten
//    and the loss is accounted exactly (`dropped`), never silently;
//  - mid-run readers (the telemetry poller) may read only the relaxed
//    cursor and drop counters; draining the records themselves requires
//    quiescence (threads joined — the join edge publishes the plain
//    stores).
//
// Events emitted while the simulator is inside a hardware transaction are
// buffered in a small thread-local pending array and flushed after the
// outcome (commit or abort) — see PHTM_TRACE_TXN_ENTER/EXIT and lint rule
// R7 (tools/lint_tm.py), which forbids direct emission from HTM-simulated
// critical sections. In practice only monitor-table dooms fire in-txn
// (a transactional access dooming a conflicting victim): a doom is a real
// side effect even if the dooming transaction later aborts, so deferred
// flushing keeps the event without ever touching the ring mid-speculation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/cacheline.hpp"
#include "util/histogram.hpp"

namespace phtm::obs {

/// Typed event taxonomy. The aux byte and the two argument words are
/// per-kind (see the emission macros below); OBSERVABILITY.md carries the
/// full table including the mapping onto the paper's Table 1 categories.
enum class EventKind : std::uint8_t {
  kTxBegin = 0,    ///< backend execute() entry; bumps the per-thread tx uid
  kTxCommit,       ///< aux = CommitPath; 1:1 with StatSheet::record_commit
  kTxAbort,        ///< aux = AbortCause; 1:1 with StatSheet::record_abort;
                   ///< a0 = xabort code, a1 = conflict line
  kPathEnter,      ///< aux = path (CommitPath encoding: HTM/SW/GL)
  kSubBegin,       ///< a0 = segment index (partitioned path sub-HTM attempt)
  kSubCommit,      ///< a0 = segment index
  kSubAbort,       ///< a0 = segment index, aux = AbortCause
  kRingPublish,    ///< a0 = shard ring timestamp, a1 = published signature
                   ///< popcount (shard-restricted), aux = shard id
  kRingValidate,   ///< aux = ValResult (ok/conflict/rollover), a0 = shard
                   ///< watermark, a1 = shard id
  kDoom,           ///< a0 = victim slot, aux = AbortCode, a1 = cache line
  kGlobalAbort,    ///< partitioned-path global abort (rollback + unlock)
  kFallback,       ///< aux = FallbackReason; 1:1 with record_fallback
  kServerShed,     ///< admission layer dropped an accepted request before
                   ///< execution; a0 = request id, a1 = queue delay ns
  kServerDegrade,  ///< overload-controller state transition; aux = new
                   ///< state (0 normal / 1 degraded / 2 shedding)
  kPersist,        ///< persistence-domain op; aux = PersistOp
                   ///< (0 pwb / 1 pfence / 2 psync)
  kCrash,          ///< injected crash (persist-domain freeze)
  kRecovery,       ///< recovery pass; a0 = rolled-back txns, a1 = torn cells
  kKindCount,
};

const char* to_string(EventKind k) noexcept;

/// One trace record. 32 bytes, trivially copyable: records are written into
/// the ring with plain stores and drained by memcpy-like copies, so they
/// must carry no vtables, no owners, no invariants.
struct Event {
  std::uint64_t ns;    ///< steady-clock nanoseconds at emission
  std::uint64_t a0;    ///< per-kind argument (see EventKind)
  std::uint64_t a1;    ///< per-kind argument (see EventKind)
  std::uint32_t txn;   ///< per-thread transaction ordinal (kTxBegin bumps it)
  EventKind kind;
  std::uint8_t aux;    ///< per-kind small enum (cause / path / result)
  std::uint16_t pad;
};
static_assert(sizeof(Event) == 32, "Event must stay 4 words");
static_assert(std::is_trivially_copyable_v<Event>);

/// One thread's event ring. Owner-only writes; see the file comment for the
/// reader discipline. Padded to a cache line so the cursor of one thread's
/// buffer never false-shares with another's.
class alignas(kCacheLineBytes) TraceBuffer {
 public:
  /// `capacity` is rounded up to a power of two (masking beats modulo on
  /// the emission path).
  TraceBuffer(unsigned tid, std::size_t capacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Owner-only append. Plain record store + relaxed cursor bump: the only
  /// concurrent readers by contract read the cursor, not the records.
  void push(const Event& e) noexcept {
    // relaxed: single-writer cursor — the owner is the only mutator, and
    // mid-run readers use the value purely as a monotonic progress counter
    // (record contents are only read after a join edge).
    const std::uint64_t c = cursor_.load(std::memory_order_relaxed);
    ring_[c & mask_] = e;
    // relaxed: see above — publication of the record itself rides the
    // drainer's thread-join edge, not this store.
    cursor_.store(c + 1, std::memory_order_relaxed);
  }

  /// Accounts an event discarded before reaching the ring (the in-txn
  /// pending array overflowed).
  void count_pending_drop() noexcept {
    // relaxed: single-writer counter, same discipline as the cursor.
    pending_drops_.store(pending_drops_.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  }

  /// Total events ever emitted (monotonic; safe to poll mid-run).
  std::uint64_t emitted() const noexcept {
    // relaxed: monotonic progress counter (see push).
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Events lost so far: ring overwrites plus pending-array overflow.
  /// Exact, never an estimate. Safe to poll mid-run.
  std::uint64_t dropped() const noexcept {
    const std::uint64_t c = emitted();
    const std::uint64_t lost = c > capacity() ? c - capacity() : 0;
    // relaxed: see count_pending_drop.
    return lost + pending_drops_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }
  unsigned tid() const noexcept { return tid_; }

  /// Copies the surviving records out in emission order. Requires
  /// quiescence: the owning thread must have been joined (or be the
  /// caller).
  std::vector<Event> snapshot_events() const;

  /// Zeroes the cursor and drop counters. Requires quiescence.
  void reset() noexcept;

 private:
  std::vector<Event> ring_;
  std::uint64_t mask_;
  unsigned tid_;
  // shared-atomic: owner-written, poller-read progress/loss counters — the
  // whole mid-run-visible state of a buffer.
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint64_t> pending_drops_{0};
};

/// A drained per-thread trace.
struct ThreadTrace {
  unsigned tid = 0;
  std::uint64_t emitted = 0;    ///< total events the thread ever emitted
  std::uint64_t dropped = 0;    ///< of those, how many were lost (exact)
  std::uint64_t first_seq = 0;  ///< emission ordinal of events.front()
  std::vector<Event> events;    ///< surviving records, emission order
};

/// Mid-run-safe aggregate counters (cursor/drop reads only).
struct Telemetry {
  unsigned threads = 0;
  std::uint64_t emitted = 0;
  std::uint64_t dropped = 0;
};

/// Post-run aggregate: event counts by kind/cause/path plus per-cause and
/// per-path latency histograms (nanoseconds from kTxBegin).
struct TraceSummary {
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  unsigned threads = 0;
  std::uint64_t tx_begins = 0;
  std::uint64_t aborts[4]{};          ///< kTxAbort count by AbortCause
  std::uint64_t commits[3]{};         ///< kTxCommit count by CommitPath
  std::uint64_t path_enters[3]{};     ///< kPathEnter count by path
  std::uint64_t sub_begins = 0;
  std::uint64_t sub_commits = 0;
  std::uint64_t sub_aborts = 0;
  /// Commit-pipeline shard count (mirrors StatSheet::kRingShards, pinned
  /// to Signature::kShards by a static_assert in core/part_htm.cpp; events
  /// carrying a larger shard id are counted in the totals only).
  static constexpr unsigned kRingShards = 4;
  std::uint64_t ring_publishes = 0;
  std::uint64_t ring_validates[3]{};  ///< by ValResult (ok/conflict/rollover)
  std::uint64_t ring_publishes_by_shard[kRingShards]{};
  std::uint64_t ring_validates_by_shard[kRingShards]{};
  std::uint64_t dooms = 0;
  std::uint64_t global_aborts = 0;
  std::uint64_t fallbacks[5]{};       ///< kFallback count by FallbackReason
  /// Serving-layer overload events (src/server): sheds plus controller
  /// state transitions by new state (normal/degraded/shedding).
  static constexpr unsigned kServerStates = 3;
  std::uint64_t server_sheds = 0;
  std::uint64_t server_degrades[kServerStates]{};
  /// Durability events (persist flavor): ops by PersistOp, crash freezes,
  /// recovery passes.
  static constexpr unsigned kPersistOps = 3;
  std::uint64_t persists[kPersistOps]{};
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  Histogram commit_latency_ns[3];     ///< by CommitPath
  Histogram abort_latency_ns[4];      ///< by AbortCause
};

// --- emission runtime (implemented in trace.cpp) --------------------------
//
// Declared unconditionally: the obs library itself and its tests always
// compile this API. Only the macros below are gated on PHTM_TRACE, so an
// uninstrumented build that never calls the API links no obs code at all.

/// Appends one event to the calling thread's buffer (registering the thread
/// with the process-wide registry on first use), or to the thread's pending
/// array while the simulator is inside a hardware transaction.
void emit(EventKind kind, std::uint8_t aux, std::uint64_t a0,
          std::uint64_t a1) noexcept;

/// Bumps the per-thread transaction ordinal and emits kTxBegin.
void tx_begin() noexcept;

/// Simulator guard: between txn_enter() and txn_exit(), emitted events are
/// deferred to the pending array; txn_exit() flushes them to the ring.
void txn_enter() noexcept;
void txn_exit() noexcept;

/// Records a named aggregate counter (e.g. the run's StatSheet totals) to
/// be embedded in the exported trace, so offline checkers can cross-check
/// event counts against the run's own statistics.
void set_meta(const char* key, std::uint64_t value);
std::map<std::string, std::uint64_t> meta();

/// Mid-run-safe counters over every registered thread.
Telemetry telemetry();

/// Drains every registered buffer. Requires quiescence (all emitting
/// threads joined).
std::vector<ThreadTrace> drain();

/// Zeroes every buffer and clears the meta map. Requires quiescence.
void reset();

TraceSummary summarize(const std::vector<ThreadTrace>& traces);

/// Chrome trace_event JSON (chrome://tracing, Perfetto, tools/trace_view.py).
/// Returns false if the file could not be written.
bool write_chrome_trace(const std::string& path,
                        const std::vector<ThreadTrace>& traces,
                        const std::map<std::string, std::uint64_t>& meta_counters);

/// Flat telemetry JSON (counts + latency quantiles); the block
/// tools/bench_report.py folds into BENCH_<label>.json.
bool write_telemetry_json(const std::string& path, const TraceSummary& s,
                          const std::map<std::string, std::uint64_t>& meta_counters);

/// Drains and exports per environment: PHTM_TRACE_OUT names the Chrome
/// trace file, PHTM_TRACE_TELEMETRY the telemetry JSON. No-op (returns
/// false) when neither is set. Registered via atexit() when the first
/// thread registers, so any instrumented binary exports on request without
/// per-main wiring; callable manually for deterministic placement.
bool finalize_from_env();

// --- instrumentation macros ----------------------------------------------

#if defined(PHTM_TRACE) && PHTM_TRACE

#define PHTM_TRACE_TX_BEGIN() ::phtm::obs::tx_begin()
#define PHTM_TRACE_TX_COMMIT(path)                         \
  ::phtm::obs::emit(::phtm::obs::EventKind::kTxCommit,     \
                    static_cast<std::uint8_t>(path), 0, 0)
#define PHTM_TRACE_TX_ABORT(cause, code, line)             \
  ::phtm::obs::emit(::phtm::obs::EventKind::kTxAbort,      \
                    static_cast<std::uint8_t>(cause),      \
                    static_cast<std::uint64_t>(code),      \
                    static_cast<std::uint64_t>(line))
#define PHTM_TRACE_PATH(path)                              \
  ::phtm::obs::emit(::phtm::obs::EventKind::kPathEnter,    \
                    static_cast<std::uint8_t>(path), 0, 0)
#define PHTM_TRACE_SUB_BEGIN(seg)                          \
  ::phtm::obs::emit(::phtm::obs::EventKind::kSubBegin, 0,  \
                    static_cast<std::uint64_t>(seg), 0)
#define PHTM_TRACE_SUB_COMMIT(seg)                         \
  ::phtm::obs::emit(::phtm::obs::EventKind::kSubCommit, 0, \
                    static_cast<std::uint64_t>(seg), 0)
#define PHTM_TRACE_SUB_ABORT(seg, cause)                   \
  ::phtm::obs::emit(::phtm::obs::EventKind::kSubAbort,     \
                    static_cast<std::uint8_t>(cause),      \
                    static_cast<std::uint64_t>(seg), 0)
#define PHTM_TRACE_RING_PUBLISH(ts, bits, shard)           \
  ::phtm::obs::emit(::phtm::obs::EventKind::kRingPublish,  \
                    static_cast<std::uint8_t>(shard),      \
                    static_cast<std::uint64_t>(ts),        \
                    static_cast<std::uint64_t>(bits))
#define PHTM_TRACE_RING_VALIDATE(result, watermark, shard) \
  ::phtm::obs::emit(::phtm::obs::EventKind::kRingValidate, \
                    static_cast<std::uint8_t>(result),     \
                    static_cast<std::uint64_t>(watermark), \
                    static_cast<std::uint64_t>(shard))
#define PHTM_TRACE_DOOM(victim, code, line)                \
  ::phtm::obs::emit(::phtm::obs::EventKind::kDoom,         \
                    static_cast<std::uint8_t>(code),       \
                    static_cast<std::uint64_t>(victim),    \
                    static_cast<std::uint64_t>(line))
#define PHTM_TRACE_GLOBAL_ABORT() \
  ::phtm::obs::emit(::phtm::obs::EventKind::kGlobalAbort, 0, 0, 0)
#define PHTM_TRACE_FALLBACK(reason)                        \
  ::phtm::obs::emit(::phtm::obs::EventKind::kFallback,     \
                    static_cast<std::uint8_t>(reason), 0, 0)
#define PHTM_TRACE_SERVER_SHED(id, delay_ns)               \
  ::phtm::obs::emit(::phtm::obs::EventKind::kServerShed, 0,\
                    static_cast<std::uint64_t>(id),        \
                    static_cast<std::uint64_t>(delay_ns))
#define PHTM_TRACE_SERVER_DEGRADE(state)                   \
  ::phtm::obs::emit(::phtm::obs::EventKind::kServerDegrade,\
                    static_cast<std::uint8_t>(state), 0, 0)
#define PHTM_TRACE_PERSIST(op)                             \
  ::phtm::obs::emit(::phtm::obs::EventKind::kPersist,      \
                    static_cast<std::uint8_t>(op), 0, 0)
#define PHTM_TRACE_CRASH() \
  ::phtm::obs::emit(::phtm::obs::EventKind::kCrash, 0, 0, 0)
#define PHTM_TRACE_RECOVERY(rolled_back, torn)             \
  ::phtm::obs::emit(::phtm::obs::EventKind::kRecovery, 0,  \
                    static_cast<std::uint64_t>(rolled_back),\
                    static_cast<std::uint64_t>(torn))
#define PHTM_TRACE_TXN_ENTER() ::phtm::obs::txn_enter()
#define PHTM_TRACE_TXN_EXIT() ::phtm::obs::txn_exit()
#define PHTM_TRACE_META(key, value) ::phtm::obs::set_meta((key), (value))

#else  // !PHTM_TRACE

// No-op expansions: arguments are evaluated exactly zero times, matching
// the contract of util/mc_hooks.hpp (pinned by tests/obs_macros_test.cpp).
#define PHTM_TRACE_TX_BEGIN() ((void)0)
#define PHTM_TRACE_TX_COMMIT(path) ((void)0)
#define PHTM_TRACE_TX_ABORT(cause, code, line) ((void)0)
#define PHTM_TRACE_PATH(path) ((void)0)
#define PHTM_TRACE_SUB_BEGIN(seg) ((void)0)
#define PHTM_TRACE_SUB_COMMIT(seg) ((void)0)
#define PHTM_TRACE_SUB_ABORT(seg, cause) ((void)0)
#define PHTM_TRACE_RING_PUBLISH(ts, bits, shard) ((void)0)
#define PHTM_TRACE_RING_VALIDATE(result, watermark, shard) ((void)0)
#define PHTM_TRACE_DOOM(victim, code, line) ((void)0)
#define PHTM_TRACE_GLOBAL_ABORT() ((void)0)
#define PHTM_TRACE_FALLBACK(reason) ((void)0)
#define PHTM_TRACE_SERVER_SHED(id, delay_ns) ((void)0)
#define PHTM_TRACE_SERVER_DEGRADE(state) ((void)0)
#define PHTM_TRACE_PERSIST(op) ((void)0)
#define PHTM_TRACE_CRASH() ((void)0)
#define PHTM_TRACE_RECOVERY(rolled_back, torn) ((void)0)
#define PHTM_TRACE_TXN_ENTER() ((void)0)
#define PHTM_TRACE_TXN_EXIT() ((void)0)
#define PHTM_TRACE_META(key, value) ((void)0)

#endif  // PHTM_TRACE

}  // namespace phtm::obs
