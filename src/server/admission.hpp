// Envoy-style admission control for the transaction server.
//
// Two mechanisms, composed by server.hpp (DESIGN.md "Serving
// architecture"):
//
//   - Resource / ResourceManager: bounded budgets (max in-flight, max
//     pending, max retries) in the shape of Envoy's ResourceManagerImpl —
//     a current/max pair per budget, checked before the work is created
//     and released when it completes. Like the original, the check and
//     the increment are separate atomic operations: under races the
//     budget may briefly overshoot by the number of racing admitters,
//     which is deliberate (an exact gate would put a CAS loop on every
//     request for a bound that is heuristic anyway).
//
//   - OverloadController: a three-state hysteresis machine (normal ->
//     degraded -> shedding) driven by the contention manager's per-cause
//     population signals (core/signals.hpp) plus queue fill. Escalation
//     is immediate — overload must be cut off within one poll — while
//     de-escalation requires `cool_polls` consecutive calm polls, so the
//     controller cannot flap across a threshold. Degraded forces the
//     backend off the hardware fast path (tm::Backend::set_degraded);
//     shedding additionally rejects new arrivals and drops queued
//     requests that have already waited past the shed threshold.
//
// This layer is control-plane code: it runs once per request (not per
// transactional access), so it uses plain seq_cst std::atomic operations
// throughout — none of the hot-path relaxed-ordering machinery of
// src/core is warranted here.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/signals.hpp"

namespace phtm::server {

/// One bounded budget: a current/max pair. can_admit() is a pre-check,
/// not a reservation — callers that admit must inc() and later dec().
class Resource {
 public:
  explicit Resource(std::uint64_t max) noexcept : max_(max) {}

  bool can_admit() const noexcept { return count_.load() < max_; }
  void inc() noexcept { count_.fetch_add(1); }
  void dec() noexcept { count_.fetch_sub(1); }

  std::uint64_t count() const noexcept { return count_.load(); }
  std::uint64_t max() const noexcept { return max_; }

 private:
  const std::uint64_t max_;
  std::atomic<std::uint64_t> count_{0};
};

/// The server's budget set (Envoy ResourceManager shape).
struct ResourceLimits {
  std::uint64_t max_in_flight = 256;  ///< admitted and not yet finished
  std::uint64_t max_pending = 128;    ///< admitted and not yet executing
  std::uint64_t max_retries = 32;     ///< concurrent re-submissions
};

class ResourceManager {
 public:
  explicit ResourceManager(const ResourceLimits& l) noexcept
      : in_flight_(l.max_in_flight),
        pending_(l.max_pending),
        retries_(l.max_retries) {}

  Resource& in_flight() noexcept { return in_flight_; }
  Resource& pending() noexcept { return pending_; }
  Resource& retries() noexcept { return retries_; }

 private:
  Resource in_flight_;
  Resource pending_;
  Resource retries_;
};

/// Overload-controller states, ordered by severity. The numeric values
/// are part of the trace vocabulary (obs kServerDegrade aux byte,
/// "server/degrade/<state>" — keep in sync with server_state_name in
/// src/obs/trace.cpp and tools/trace_view.py).
enum class OverloadState : unsigned {
  kNormal = 0,    ///< full service: fast path on, all arrivals admitted
  kDegraded,      ///< force-partitioned: backend fast path suppressed
  kShedding,      ///< degraded + reject arrivals + drop stale queued work
  kStateCount,
};

inline const char* to_string(OverloadState s) noexcept {
  switch (s) {
    case OverloadState::kNormal: return "normal";
    case OverloadState::kDegraded: return "degraded";
    case OverloadState::kShedding: return "shedding";
    default: return "?";
  }
}

/// Thresholds mapping the per-cause signals to state transitions.
/// Degrade-class evidence (capacity flap, quarantine pressure) says the
/// hardware fast path is wasted effort — force-partitioned execution
/// fixes that without refusing work. Shed-class evidence (glock convoy,
/// queue fill) says the process cannot absorb the offered load at all —
/// only admission-level rejection helps.
struct OverloadConfig {
  double degrade_capacity_hi = 1.0;   ///< capacity aborts per commit
  double degrade_quarantine_hi = 0.05;///< quarantine fallbacks per commit
  double shed_convoy_hi = 0.5;        ///< glock-routed fraction of commits
  double shed_queue_hi = 0.9;         ///< pending-queue fill fraction
  /// De-escalation: every trigger must read below `calm_frac` x its hi
  /// threshold for `cool_polls` consecutive polls before stepping down
  /// one state (hysteresis: the up and down thresholds never meet).
  double calm_frac = 0.5;
  unsigned cool_polls = 3;
};

/// Three-state hysteresis machine. Single-caller contract: update() is
/// invoked from the server's controller thread only; state() may be read
/// from any thread.
class OverloadController {
 public:
  explicit OverloadController(const OverloadConfig& cfg = {}) noexcept
      : cfg_(cfg) {}

  /// One poll: fold the window's signals and the queue fill into a state.
  /// Returns the (possibly unchanged) state after the transition rules.
  OverloadState update(const core::PolicySignals& sig,
                       double queue_fill) noexcept {
    const bool shed_evidence = sig.glock_convoy >= cfg_.shed_convoy_hi ||
                               queue_fill >= cfg_.shed_queue_hi;
    const bool degrade_evidence =
        sig.capacity_flap >= cfg_.degrade_capacity_hi ||
        sig.quarantine_pressure >= cfg_.degrade_quarantine_hi;
    const bool calm =
        sig.glock_convoy < cfg_.shed_convoy_hi * cfg_.calm_frac &&
        queue_fill < cfg_.shed_queue_hi * cfg_.calm_frac &&
        sig.capacity_flap < cfg_.degrade_capacity_hi * cfg_.calm_frac &&
        sig.quarantine_pressure <
            cfg_.degrade_quarantine_hi * cfg_.calm_frac;

    OverloadState s = state();
    if (shed_evidence) {
      s = OverloadState::kShedding;          // escalate immediately
      calm_streak_ = 0;
    } else if (degrade_evidence && s == OverloadState::kNormal) {
      s = OverloadState::kDegraded;          // escalate immediately
      calm_streak_ = 0;
    } else if (calm) {
      if (++calm_streak_ >= cfg_.cool_polls && s != OverloadState::kNormal) {
        // Step down one state per cool period, never two at once: a
        // shedding server re-proves itself in degraded mode first.
        s = s == OverloadState::kShedding ? OverloadState::kDegraded
                                          : OverloadState::kNormal;
        calm_streak_ = 0;
      }
    } else {
      calm_streak_ = 0;                      // mixed evidence: hold state
    }
    state_.store(static_cast<unsigned>(s));
    return s;
  }

  OverloadState state() const noexcept {
    return static_cast<OverloadState>(state_.load());
  }

  /// Test/bench hook: pin the state machine (e.g. deterministic shed
  /// coverage without manufacturing a convoy). Resets the calm streak.
  void force_state(OverloadState s) noexcept {
    state_.store(static_cast<unsigned>(s));
    calm_streak_ = 0;
  }

 private:
  OverloadConfig cfg_;
  std::atomic<unsigned> state_{static_cast<unsigned>(OverloadState::kNormal)};
  unsigned calm_streak_ = 0;  ///< controller-thread-only
};

}  // namespace phtm::server
