// Bounded MPMC request queue for the transaction server.
//
// A mutex/condvar ring, deliberately boring: the queue hands requests to
// worker threads that then run transactions taking microseconds to
// milliseconds, so queue overhead is noise — and a blocking pop is
// exactly what an idle worker should do (burning a core spinning on an
// empty queue would distort the latency measurements the server exists
// to take). Capacity is fixed at construction; try_push never blocks
// (the admission layer turns a full queue into a typed rejection, never
// back-pressure into the open-loop generator).
//
// src/server is serving-layer code, not protocol code: the R4 rule
// barring blocking primitives applies to the TM protocol headers
// (src/core|stm|sim|sig), not here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace phtm::server {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Current occupancy (racy by nature; used for fill-fraction signals).
  std::size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return count_;
  }

  double fill() const {
    return static_cast<double>(size()) / static_cast<double>(capacity());
  }

  /// Non-blocking bounded push. False when full or closed — the caller
  /// (admission layer) accounts the rejection; nothing ever waits to
  /// enqueue, so the queue cannot grow without bound by construction.
  bool try_push(T v) {
    {
      std::lock_guard<std::mutex> g(mu_);
      if (closed_ || count_ == ring_.size()) return false;
      ring_[(head_ + count_) % ring_.size()] = std::move(v);
      ++count_;
    }
    nonempty_.notify_one();
    return true;
  }

  /// Blocking pop: waits for an element or close(). False only when the
  /// queue is closed *and* drained — workers exit on false.
  bool pop(T& out) {
    std::unique_lock<std::mutex> g(mu_);
    nonempty_.wait(g, [&] { return count_ > 0 || closed_; });
    if (count_ == 0) return false;
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return true;
  }

  /// Wake every waiter; pops drain the remaining elements then fail.
  void close() {
    {
      std::lock_guard<std::mutex> g(mu_);
      closed_ = true;
    }
    nonempty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> g(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable nonempty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace phtm::server
