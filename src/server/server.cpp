#include "server/server.hpp"

#include <cassert>
#include <chrono>
#include <cstring>

#include "obs/trace.hpp"

namespace phtm::server {
namespace {

/// Steady-clock now in ns — same epoch run_open_loop stamps scheduled_ns
/// with, so (now_ns() - scheduled_ns) is the true sojourn time.
std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TxnServer::TxnServer(tm::Backend& backend, const ServerConfig& cfg)
    : backend_(backend),
      cfg_(cfg),
      queue_(cfg.queue_capacity),
      rm_(cfg.limits),
      controller_(cfg.overload),
      slots_(cfg.workers == 0 ? 1 : cfg.workers) {
  if (cfg_.workers == 0) cfg_.workers = 1;
}

TxnServer::~TxnServer() { stop(); }

void TxnServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  control_stop_.store(false);
  threads_.reserve(cfg_.workers);
  for (unsigned t = 0; t < cfg_.workers; ++t)
    threads_.emplace_back([this, t] { worker_main(t); });
  control_thread_ = std::thread([this] { control_main(); });
}

void TxnServer::stop() {
  if (!running_.load()) return;
  // Closing the queue wakes idle workers; already-accepted requests are
  // drained (executed or shed) before the pops start failing.
  queue_.close();
  for (std::thread& th : threads_) th.join();
  threads_.clear();
  control_stop_.store(true);
  if (control_thread_.joinable()) control_thread_.join();
  running_.store(false);
}

AdmitResult TxnServer::submit(const tm::Txn& txn, unsigned phase,
                              std::uint64_t scheduled_ns, bool is_retry) {
  assert(phase < kMaxPhases);
  assert(txn.locals_bytes <= kMaxLocalBytes);
  submitted_.fetch_add(1);
  PhaseSheet& ps = phases_[phase];

  if (controller_.state() == OverloadState::kShedding) {
    rejected_overload_.fetch_add(1);
    ps.rejected.fetch_add(1);
    return AdmitResult::kRejectedOverload;
  }
  if (is_retry && !rm_.retries().can_admit()) {
    rejected_retry_.fetch_add(1);
    ps.rejected.fetch_add(1);
    return AdmitResult::kRejectedRetry;
  }
  if (!rm_.in_flight().can_admit()) {
    rejected_in_flight_.fetch_add(1);
    ps.rejected.fetch_add(1);
    return AdmitResult::kRejectedInFlight;
  }
  if (!rm_.pending().can_admit()) {
    rejected_pending_.fetch_add(1);
    ps.rejected.fetch_add(1);
    return AdmitResult::kRejectedPending;
  }

  Request r;
  r.txn = txn;
  if (txn.locals != nullptr && txn.locals_bytes > 0)
    std::memcpy(r.locals, txn.locals, txn.locals_bytes);
  // The queue copies the request; the worker re-points txn.locals at the
  // inline buffer after popping. Null it here so a stale caller pointer
  // can never be dereferenced by mistake.
  r.txn.locals = nullptr;
  r.id = next_id_.fetch_add(1);
  r.scheduled_ns = scheduled_ns;
  r.phase = phase;
  r.retry = is_retry;

  rm_.in_flight().inc();
  rm_.pending().inc();
  if (is_retry) rm_.retries().inc();

  if (!queue_.try_push(std::move(r))) {
    rm_.in_flight().dec();
    rm_.pending().dec();
    if (is_retry) rm_.retries().dec();
    rejected_pending_.fetch_add(1);
    ps.rejected.fetch_add(1);
    return AdmitResult::kRejectedPending;
  }
  accepted_.fetch_add(1);
  ps.accepted.fetch_add(1);
  if (is_retry) retries_admitted_.fetch_add(1);
  return AdmitResult::kAccepted;
}

void TxnServer::worker_main(unsigned tid) {
  WorkerSlot& slot = slots_[tid];
  slot.worker = backend_.make_worker(tid);
  slot.ready.store(true);
  Request r;
  while (queue_.pop(r)) {
    rm_.pending().dec();
    PhaseSheet& ps = phases_[r.phase];
    const std::uint64_t delay_ns =
        now_ns() > r.scheduled_ns ? now_ns() - r.scheduled_ns : 0;
    if (controller_.state() == OverloadState::kShedding &&
        delay_ns > cfg_.shed_delay_ns) {
      // Stale under shedding: this request can no longer finish inside
      // the objective — answer it with a drop, not a late commit.
      shed_.fetch_add(1);
      ps.shed.fetch_add(1);
      PHTM_TRACE_SERVER_SHED(r.id, delay_ns);
    } else {
      r.txn.locals = r.locals;
      backend_.execute(*slot.worker, r.txn);
      committed_.fetch_add(1);
      ps.committed.fetch_add(1);
      if (r.phase < kMaxPhases)
        slot.latency_ns[r.phase].record(now_ns() - r.scheduled_ns);
    }
    rm_.in_flight().dec();
    if (r.retry) rm_.retries().dec();
  }
}

void TxnServer::control_main() {
  StatSheet prev = backend_stats();
  while (!control_stop_.load()) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(cfg_.poll_period_us));
    const StatSheet cur = backend_stats();
    const core::PolicySignals sig =
        core::PolicySignals::from_delta(core::stat_delta(prev, cur));
    prev = cur;
    const OverloadState old = controller_.state();
    const OverloadState s = controller_.update(sig, queue_.fill());
    if (s != old) apply_state(s);
  }
}

void TxnServer::apply_state(OverloadState s) {
  // Single apply path for controller transitions and force_state: the
  // backend toggle, the transition counter and the trace event stay 1:1
  // (tools/trace_view.py --check reconciles event counts against the
  // stats_server_degrades_* meta keys).
  backend_.set_degraded(s != OverloadState::kNormal);
  degrades_[static_cast<unsigned>(s)].fetch_add(1);
  PHTM_TRACE_SERVER_DEGRADE(static_cast<unsigned>(s));
}

void TxnServer::force_state(OverloadState s) {
  const OverloadState old = controller_.state();
  controller_.force_state(s);
  if (s != old) apply_state(s);
}

ServerTotals TxnServer::counters() const {
  ServerTotals t;
  t.submitted = submitted_.load();
  t.accepted = accepted_.load();
  t.rejected_overload = rejected_overload_.load();
  t.rejected_in_flight = rejected_in_flight_.load();
  t.rejected_pending = rejected_pending_.load();
  t.rejected_retry = rejected_retry_.load();
  t.committed = committed_.load();
  t.shed = shed_.load();
  t.retries_admitted = retries_admitted_.load();
  for (unsigned i = 0; i < static_cast<unsigned>(OverloadState::kStateCount);
       ++i)
    t.degrades[i] = degrades_[i].load();
  return t;
}

PhaseTotals TxnServer::phase_totals(unsigned phase) const {
  assert(phase < kMaxPhases);
  const PhaseSheet& ps = phases_[phase];
  PhaseTotals t;
  t.accepted = ps.accepted.load();
  t.committed = ps.committed.load();
  t.shed = ps.shed.load();
  t.rejected = ps.rejected.load();
  for (const WorkerSlot& s : slots_)
    if (s.ready.load()) t.latency_ns.merge(s.latency_ns[phase]);
  return t;
}

StatSheet TxnServer::backend_stats() const {
  StatSheet sum{};
  for (const WorkerSlot& s : slots_)
    if (s.ready.load()) sum += s.worker->stats().snapshot();
  return sum;
}

}  // namespace phtm::server
