// TxnServer: a multi-worker transaction service over a tm::Backend.
//
// Topology (DESIGN.md "Serving architecture"):
//
//   open-loop generator --> submit() --> [admission] --> bounded queue
//                                            |                |
//                                         rejects       N worker threads
//                                                       (backend.execute)
//                                                            |
//                                    controller thread <-- StatSheets
//                                    (signals -> degrade/shed decisions)
//
// submit() is the admission layer: it consults the overload controller
// and the ResourceManager budgets, then either enqueues a copy of the
// request (accepted) or returns a typed rejection. Workers drain the
// queue and run transactions to commit; under shedding, queued requests
// whose delay already exceeds the shed threshold are dropped at dispatch
// (a request that has waited past the latency objective is better
// answered "no" immediately than "yes" too late — and shedding them is
// what keeps the *accepted* requests' tail inside the SLO).
//
// The controller thread polls the workers' StatSheets (mid-run-safe
// snapshots), folds the deltas into the per-cause contention signals
// (core/signals.hpp), and walks the overload state machine; state
// transitions toggle the backend's degraded mode and are traced as
// server/degrade events. Every shed is traced as server/shed. Both event
// families reconcile 1:1 against the counters this class keeps
// (tools/trace_view.py --check).
//
// Conservation invariant (checked by tests/server_integration_test.cpp):
//     submitted == accepted + rejected        (at submit time)
//     accepted  == committed + shed           (after stop())
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "server/admission.hpp"
#include "server/queue.hpp"
#include "tm/backend.hpp"
#include "util/cacheline.hpp"
#include "util/histogram.hpp"

namespace phtm::server {

/// Admission verdict for one submitted request.
enum class AdmitResult : unsigned {
  kAccepted = 0,
  kRejectedOverload,   ///< controller in shedding state
  kRejectedInFlight,   ///< max in-flight budget exhausted
  kRejectedPending,    ///< pending budget or queue capacity exhausted
  kRejectedRetry,      ///< retry budget exhausted (retry submissions only)
};

struct ServerConfig {
  unsigned workers = 2;
  std::size_t queue_capacity = 128;
  ResourceLimits limits{};
  OverloadConfig overload{};
  /// Shedding drops a queued request at dispatch once its queue delay
  /// exceeds this bound. Set it below the latency SLO minus the typical
  /// service time: then every request the server *does* execute can
  /// still finish inside the objective.
  std::uint64_t shed_delay_ns = 2'000'000;
  std::uint64_t poll_period_us = 1000;  ///< controller poll period
};

/// Aggregate request accounting (all plain totals; see counters()).
struct ServerTotals {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_in_flight = 0;
  std::uint64_t rejected_pending = 0;
  std::uint64_t rejected_retry = 0;
  std::uint64_t committed = 0;
  std::uint64_t shed = 0;
  std::uint64_t retries_admitted = 0;
  std::uint64_t degrades[static_cast<unsigned>(OverloadState::kStateCount)]{};

  std::uint64_t rejected() const noexcept {
    return rejected_overload + rejected_in_flight + rejected_pending +
           rejected_retry;
  }
};

/// Per-phase view assembled after stop(): counts plus the accepted-
/// request latency distribution (scheduled arrival -> commit).
struct PhaseTotals {
  std::uint64_t accepted = 0;
  std::uint64_t committed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  Histogram latency_ns;
};

class TxnServer {
 public:
  static constexpr unsigned kMaxPhases = 8;
  static constexpr std::size_t kMaxLocalBytes = 256;

  /// The backend (and its runtime) must outlive the server. Worker slots
  /// are created lazily inside the worker threads via make_worker.
  TxnServer(tm::Backend& backend, const ServerConfig& cfg);
  ~TxnServer();

  TxnServer(const TxnServer&) = delete;
  TxnServer& operator=(const TxnServer&) = delete;

  void start();
  /// Drains the queue (accepted requests still execute or shed), joins
  /// workers and the controller. Idempotent.
  void stop();

  /// Admission: copy `txn` (locals included, <= kMaxLocalBytes) into the
  /// queue or reject. `scheduled_ns` is the open-loop arrival instant
  /// latency is measured from; `phase` tags the soak phase (< kMaxPhases).
  /// `is_retry` charges the retry budget on top of the normal checks.
  AdmitResult submit(const tm::Txn& txn, unsigned phase,
                     std::uint64_t scheduled_ns, bool is_retry = false);

  /// Controller state as of the last poll.
  OverloadState state() const noexcept { return controller_.state(); }

  /// Test hook: pin the overload state machine (applies side effects —
  /// backend degrade toggle, transition counter, trace event).
  void force_state(OverloadState s);

  ServerTotals counters() const;
  /// Valid after stop(): per-phase counts + merged latency histograms.
  PhaseTotals phase_totals(unsigned phase) const;

  /// Aggregated worker statistics (mid-run safe).
  StatSheet backend_stats() const;

  const ServerConfig& config() const noexcept { return cfg_; }
  double queue_fill() const { return queue_.fill(); }

 private:
  struct Request {
    tm::Txn txn{};  ///< locals re-pointed at req.locals on dispatch
    unsigned char locals[kMaxLocalBytes];
    std::uint64_t id = 0;
    std::uint64_t scheduled_ns = 0;
    unsigned phase = 0;
    bool retry = false;
  };

  /// One worker thread's slot: the backend worker (created inside the
  /// thread, owned here so the controller can keep polling its StatSheet
  /// until the server dies) and the per-phase latency histograms (owner-
  /// written, merged after join).
  struct alignas(kCacheLineBytes) WorkerSlot {
    std::unique_ptr<tm::Worker> worker;
    std::atomic<bool> ready{false};
    Histogram latency_ns[kMaxPhases];
  };

  /// Per-phase atomic counters.
  struct alignas(kCacheLineBytes) PhaseSheet {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> committed{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> rejected{0};
  };

  void worker_main(unsigned tid);
  void control_main();
  void apply_state(OverloadState s);

  tm::Backend& backend_;
  ServerConfig cfg_;
  BoundedQueue<Request> queue_;
  ResourceManager rm_;
  OverloadController controller_;

  std::vector<WorkerSlot> slots_;
  std::vector<std::thread> threads_;
  std::thread control_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> control_stop_{false};

  std::atomic<std::uint64_t> next_id_{0};
  // Aggregate counters (control-plane: one bump per request, seq_cst).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_in_flight_{0};
  std::atomic<std::uint64_t> rejected_pending_{0};
  std::atomic<std::uint64_t> rejected_retry_{0};
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> retries_admitted_{0};
  std::atomic<std::uint64_t>
      degrades_[static_cast<unsigned>(OverloadState::kStateCount)]{};
  PhaseSheet phases_[kMaxPhases];
};

}  // namespace phtm::server
