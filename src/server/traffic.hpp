// Open-loop traffic generation for the transaction server.
//
// Arrivals are a Poisson process at each phase's configured rate: the
// generator draws exponential inter-arrival gaps from a deterministic
// per-run RNG, builds an *absolute* arrival schedule, and submits each
// request when its scheduled instant passes — whether or not earlier
// requests have finished. This open-loop discipline is what makes the
// measured tail latencies honest: a closed-loop driver (next request
// only after the previous response) silently throttles itself exactly
// when the server is slow, hiding the queueing delay that overload
// actually inflicts on real arrivals (coordinated omission). For the
// same reason, request latency is measured from the *scheduled* arrival
// instant, not from whenever the generator thread got around to calling
// submit.
//
// When the generator falls behind schedule (submission itself outpaced
// by the configured rate), it does not sleep — the backlog of due
// arrivals is submitted immediately and the lateness is visible in the
// measured latencies, never discarded.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace phtm::server {

/// One segment of the soak schedule (EXPERIMENTS.md "Server soak").
struct Phase {
  std::string name;       ///< "warmup", "sustained", "burst", ...
  double rate_tps = 0;    ///< offered load, transactions per second
  double duration_s = 0;  ///< phase length in wall seconds
};

/// Exponential inter-arrival gap for a Poisson process at `rate_tps`.
inline double exp_gap_s(Rng& rng, double rate_tps) noexcept {
  // Clamp the uniform away from 0: -log(0) is inf and a zero draw has
  // probability 2^-53 anyway.
  double u = rng.uniform();
  if (u < 1e-12) u = 1e-12;
  return -std::log(u) / rate_tps;
}

/// Drives `phases` against `submit(phase_index, scheduled_ns)`.
/// `scheduled_ns` is the request's intended arrival on the steady clock —
/// the timestamp latency must be measured from. `on_phase(i)` fires at
/// each phase boundary (before its first arrival). The generator runs on
/// the calling thread and returns the per-phase offered counts.
template <typename SubmitFn, typename PhaseFn>
std::vector<std::uint64_t> run_open_loop(const std::vector<Phase>& phases,
                                         std::uint64_t seed,
                                         SubmitFn&& submit,
                                         PhaseFn&& on_phase) {
  using clock = std::chrono::steady_clock;
  Rng rng(seed);
  std::vector<std::uint64_t> offered(phases.size(), 0);
  const auto t0 = clock::now();
  double next_s = 0;  // schedule offset from t0, seconds
  double phase_end_s = 0;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const Phase& ph = phases[p];
    on_phase(static_cast<unsigned>(p));
    const double start_s = phase_end_s;
    phase_end_s += ph.duration_s;
    if (ph.rate_tps <= 0) {  // silent phase (pure drain): just wait it out
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<clock::duration>(
                   std::chrono::duration<double>(phase_end_s)));
      next_s = phase_end_s;
      continue;
    }
    if (next_s < start_s) next_s = start_s;
    for (;;) {
      next_s += exp_gap_s(rng, ph.rate_tps);
      if (next_s >= phase_end_s) break;
      const auto due =
          t0 + std::chrono::duration_cast<clock::duration>(
                   std::chrono::duration<double>(next_s));
      // Open loop: sleep only if the arrival is in the future; a backlog
      // of due arrivals goes out immediately.
      if (due > clock::now()) std::this_thread::sleep_until(due);
      const std::uint64_t sched_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              due.time_since_epoch())
              .count());
      ++offered[p];
      submit(static_cast<unsigned>(p), sched_ns);
    }
    // Let the phase's tail arrivals actually reach phase_end before the
    // next phase is announced.
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<clock::duration>(
                 std::chrono::duration<double>(phase_end_s)));
  }
  return offered;
}

}  // namespace phtm::server
