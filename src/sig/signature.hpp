// Cache-aligned Bloom-filter signatures (Sec. 5.1 of the paper).
//
// PART-HTM tracks read/write sets and the shared write-lock table as
// fixed-size bit arrays with a single hash function: 2048 bits = 4 cache
// lines of filter by default. Signatures are deliberately *not* precise —
// false conflicts from hash aliasing are part of the protocol the paper
// evaluates, and the signature-size ablation bench sweeps `Bits`.
//
// Sparsity: a typical transaction sets a handful of bits, so every scan
// that walked all `kWords` words was paying for emptiness. Each signature
// therefore carries an occupancy mask (`occ_`, one bit per 64-bit word)
// and the bulk operations iterate only populated words, falling back to an
// 8x-unrolled, auto-vectorizable full scan when both operands are dense.
//
// Occupancy invariant: a word with a clear occupancy bit is zero. For
// signatures mutated only through this class's plain interface the mask is
// exact (bit set <=> word nonzero). Shared signatures whose words are also
// mutated externally (transactionally routed stores, nontx_fetch_and lock
// release) keep a *conservative superset*: extra mask bits over zero words
// are legal and only cost a wasted word load; a nonzero word without its
// mask bit is a protocol bug (a conflict scan would miss it). See
// DESIGN.md, "Performance engineering".
//
// Two access modes exist for the same storage:
//   - plain methods (add/intersects/...) for thread-local signatures and
//     for code already inside a hardware transaction that routes each word
//     through the HTM simulator;
//   - atomic_* methods for the *shared* write-locks-signature when it is
//     manipulated from the software side of the protocol (Fig. 1 lines
//     48-49 and 54-55).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>

#include "util/cacheline.hpp"
#include "util/hash.hpp"

namespace phtm {

template <unsigned Bits>
class alignas(kCacheLineBytes) BloomSig {
  static_assert(Bits % 64 == 0 && Bits >= 64, "Bits must be a multiple of 64");
  static_assert(Bits / 64 <= 64, "occupancy mask is a single 64-bit word");

 public:
  static constexpr unsigned kBits = Bits;
  static constexpr unsigned kWords = Bits / 64;

  /// Past this many populated words the word-indexed loop loses to the
  /// unrolled full scan (which the compiler turns into wide vector ops).
  static constexpr int kDenseCutoff =
      kWords <= 8 ? static_cast<int>(kWords) : static_cast<int>(kWords / 4);

  /// Single hash function mapping an address to a bit index.
  /// Addresses are reduced to their cache-line id first: hardware detects
  /// conflicts at line granularity anyway, so finer signature tracking
  /// would only saturate the filter faster without adding precision.
  static unsigned bit_of(const void* addr) noexcept {
    return static_cast<unsigned>(
        mix64(reinterpret_cast<std::uintptr_t>(addr) >> 6) % Bits);
  }

  // --- sharding (sharded commit pipeline; DESIGN.md) ---
  //
  // The word space is split into kShards contiguous word groups; group s
  // covers words [s*kWordsPerShard, (s+1)*kWordsPerShard). The default
  // signature (32 words, 4 shards) puts exactly one cache line of filter in
  // each shard, so per-shard structures (write-lock tables, ring slots)
  // never share a filter line across shards. The address hash already
  // scatters uniformly over the whole bit space, so the partition doubles
  // as an address partition.

  /// Number of commit-pipeline shards. Degenerates to 1 for signatures too
  /// small to split (ablation sweeps instantiate BloomSig down to 64 bits).
  static constexpr unsigned kShards = (kWords % 4 == 0) ? 4u : 1u;
  static constexpr unsigned kWordsPerShard = kWords / kShards;

  /// Occupancy-mask projection of shard `s`: which occupancy bits (= word
  /// indices) belong to the shard.
  static constexpr std::uint64_t shard_word_mask(unsigned s) noexcept {
    constexpr std::uint64_t group =
        kWordsPerShard >= 64 ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << kWordsPerShard) - 1;
    return group << (s * kWordsPerShard);
  }

  static constexpr unsigned shard_of_word(unsigned w) noexcept {
    return w / kWordsPerShard;
  }

  /// Shard an address's signature bit lands in.
  static unsigned shard_of(const void* addr) noexcept {
    return shard_of_word(bit_of(addr) / 64);
  }

  /// Shard bitmap (bit s set <=> shard s intersected) of an occupancy mask.
  static constexpr std::uint64_t shard_mask_of(std::uint64_t occ) noexcept {
    std::uint64_t m = 0;
    for (unsigned s = 0; s < kShards; ++s)
      if (occ & shard_word_mask(s)) m |= std::uint64_t{1} << s;
    return m;
  }

  /// Shards this signature's occupancy actually intersects. The occupancy
  /// may be a conservative superset (shared signatures), so the result is a
  /// superset too — safe for "which shards must I touch" decisions.
  std::uint64_t shard_mask() const noexcept { return shard_mask_of(occ_); }

  void clear() noexcept {
    if (std::popcount(occ_) >= kDenseCutoff) {
      std::memset(words_, 0, sizeof(words_));
    } else {
      for (std::uint64_t occ = occ_; occ != 0; occ &= occ - 1)
        words_[std::countr_zero(occ)] = 0;
    }
    occ_ = 0;
  }

  /// Set bit `b` directly (callers that already hashed, e.g. the in-HTM
  /// signature mirrors). Keeps the occupancy mask exact.
  void set_bit(unsigned b) noexcept {
    words_[b / 64] |= (std::uint64_t{1} << (b % 64));
    occ_ |= (std::uint64_t{1} << (b / 64));
  }

  void add(const void* addr) noexcept { set_bit(bit_of(addr)); }

  bool maybe_contains(const void* addr) const noexcept {
    const unsigned b = bit_of(addr);
    return (words_[b / 64] >> (b % 64)) & 1u;
  }

  bool empty() const noexcept {
    // Verify under the mask instead of trusting it: exact even on masks
    // that are conservative supersets (shared signatures).
    for (std::uint64_t occ = occ_; occ != 0; occ &= occ - 1)
      if (words_[std::countr_zero(occ)] != 0) return false;
    return true;
  }

  /// Bitwise intersection test (Fig. 1 lines 7, 27, 37).
  bool intersects(const BloomSig& o) const noexcept {
    const std::uint64_t both = occ_ & o.occ_;
    if (both == 0) return false;
    if (std::popcount(both) >= kDenseCutoff)
      return intersects_dense(o);
    for (std::uint64_t m = both; m != 0; m &= m - 1) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(m));
      if (words_[w] & o.words_[w]) return true;
    }
    return false;
  }

  /// this |= o (aggregate write-set accumulation, Fig. 1 line 32).
  void union_with(const BloomSig& o) noexcept {
    if (std::popcount(o.occ_) >= kDenseCutoff) {
      for (unsigned i = 0; i < kWords; ++i) words_[i] |= o.words_[i];
    } else {
      for (std::uint64_t m = o.occ_; m != 0; m &= m - 1) {
        const unsigned w = static_cast<unsigned>(std::countr_zero(m));
        words_[w] |= o.words_[w];
      }
    }
    occ_ |= o.occ_;
  }

  /// this &= ~o. Used to mask a transaction's own locks out of the global
  /// lock table before validation (Fig. 1 line 26, `write_locks - agg`).
  void subtract(const BloomSig& o) noexcept {
    for (std::uint64_t m = occ_ & o.occ_; m != 0; m &= m - 1) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(m));
      words_[w] &= ~o.words_[w];
      if (words_[w] == 0) occ_ &= ~(std::uint64_t{1} << w);
    }
  }

  bool operator==(const BloomSig& o) const noexcept {
    // Words outside both masks are zero on both sides by the occupancy
    // invariant; masks themselves may differ in superset bits.
    for (std::uint64_t m = occ_ | o.occ_; m != 0; m &= m - 1) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(m));
      if (words_[w] != o.words_[w]) return false;
    }
    return true;
  }

  unsigned popcount() const noexcept {
    unsigned n = 0;
    for (std::uint64_t m = occ_; m != 0; m &= m - 1)
      n += static_cast<unsigned>(
          __builtin_popcountll(words_[std::countr_zero(m)]));
    return n;
  }

  /// Population restricted to the words selected by `word_mask` (per-shard
  /// accounting on trace/publish records).
  unsigned popcount(std::uint64_t word_mask) const noexcept {
    unsigned n = 0;
    for (std::uint64_t m = occ_ & word_mask; m != 0; m &= m - 1)
      n += static_cast<unsigned>(
          __builtin_popcountll(words_[std::countr_zero(m)]));
    return n;
  }

  // --- software-side atomic operations on shared signatures ---

  /// Atomically set every bit of `o` in this signature (lock acquisition on
  /// the software side; the HTM side does the same through monitored writes).
  /// The occupancy bits are set *before* the word bits so a concurrent
  /// snapshot/scan that observes a new word value always holds its mask bit;
  /// the reverse order could leak a nonzero word outside the mask.
  void atomic_union_with(const BloomSig& o) noexcept {
    if (o.occ_ == 0) return;
    __atomic_fetch_or(&occ_, o.occ_, __ATOMIC_ACQ_REL);
    for (std::uint64_t m = o.occ_; m != 0; m &= m - 1) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(m));
      if (o.words_[w])
        __atomic_fetch_or(&words_[w], o.words_[w], __ATOMIC_ACQ_REL);
    }
  }

  /// Atomically clear every bit of `o` (lock release, Fig. 1 line 49).
  /// Like the paper's bitwise removal, aliased bits owned by another
  /// in-flight transaction can be cleared too; the protocol tolerates the
  /// resulting (rare) false unlock exactly as the original does. The
  /// occupancy mask is left alone — clearing it could race a concurrent
  /// atomic_union_with on an aliased word; a stale superset bit is benign.
  void atomic_subtract(const BloomSig& o) noexcept {
    for (std::uint64_t m = o.occ_; m != 0; m &= m - 1) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(m));
      if (o.words_[w])
        __atomic_fetch_and(&words_[w], ~o.words_[w], __ATOMIC_ACQ_REL);
    }
  }

  /// Snapshot this (shared) signature with word-atomic loads into `out`, a
  /// caller-owned (typically worker-persistent and reused) signature. The
  /// result's occupancy mask is recomputed from the loaded values, so a
  /// conservative source mask yields an exact snapshot. Touches only words
  /// occupied on either side — for sparse signatures this is a handful of
  /// loads and stores, where re-materializing a zeroed `BloomSig` per call
  /// would pay a full-width store sweep.
  void atomic_snapshot_into(BloomSig& out) const noexcept {
    const std::uint64_t src_occ = __atomic_load_n(&occ_, __ATOMIC_ACQUIRE);
    std::uint64_t res = 0;
    for (std::uint64_t m = src_occ | out.occ_; m != 0; m &= m - 1) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(m));
      const std::uint64_t v =
          (src_occ >> w) & 1
              ? __atomic_load_n(&words_[w], __ATOMIC_ACQUIRE)
              : 0;
      out.words_[w] = v;  // also zeroes words only the old snapshot held
      if (v != 0) res |= std::uint64_t{1} << w;
    }
    out.occ_ = res;
  }

  /// By-value convenience form of atomic_snapshot_into (tests, cold paths).
  BloomSig atomic_snapshot() const noexcept {
    BloomSig s;
    atomic_snapshot_into(s);
    return s;
  }

  /// Word-atomic copy-in for a seqlock-guarded slot. Relaxed on purpose:
  /// the enclosing sequence word (busy/final protocol) carries all the
  /// ordering; these stores only need to be tear-free per word so a
  /// validator racing the republication reads *some* word values and is
  /// then sent back by its sequence recheck. Words populated by the retired
  /// occupant but not by `o` are explicitly zeroed (the union of the two
  /// masks covers every possibly-nonzero word).
  void atomic_assign(const BloomSig& o) noexcept {
    // relaxed: seqlock-guarded slot republication; the caller's sequence
    // word carries the ordering and validators discard torn reads.
    const std::uint64_t old_occ = __atomic_load_n(&occ_, __ATOMIC_RELAXED);
    for (std::uint64_t m = old_occ | o.occ_; m != 0; m &= m - 1) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(m));
      // relaxed: see above — per-word tear-freedom is all that is needed.
      __atomic_store_n(&words_[w], o.words_[w], __ATOMIC_RELAXED);
    }
    // relaxed: see above.
    __atomic_store_n(&occ_, o.occ_, __ATOMIC_RELAXED);
  }

  /// Word-atomic intersection of a seqlock-guarded slot (this) with a
  /// private signature. Relaxed for the same reason as atomic_assign: the
  /// caller revalidates the slot's sequence word after the scan and
  /// discards the result if the slot was republished mid-read.
  bool atomic_intersects(const BloomSig& o) const noexcept {
    // relaxed: seqlock-guarded scan; a mask read from a republication in
    // flight produces a result the caller's sequence recheck discards.
    const std::uint64_t occ = __atomic_load_n(&occ_, __ATOMIC_RELAXED);
    for (std::uint64_t m = occ & o.occ_; m != 0; m &= m - 1) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(m));
      // relaxed: see above.
      if (__atomic_load_n(&words_[w], __ATOMIC_RELAXED) & o.words_[w])
        return true;
    }
    return false;
  }

  /// Raw word storage, exposed so transactional code can route word
  /// accesses through the HTM simulator (keeping them "monitored").
  /// Code that *sets* bits through this pointer must keep the occupancy
  /// invariant by also updating `*occ_addr()` (conservatively is fine).
  std::uint64_t* words() noexcept { return words_; }
  const std::uint64_t* words() const noexcept { return words_; }

  /// The occupancy mask (bit w set => words()[w] may be nonzero).
  std::uint64_t occupancy() const noexcept { return occ_; }

  /// Address of the occupancy mask, for transactionally routed updates
  /// alongside raw words() stores.
  std::uint64_t* occ_addr() noexcept { return &occ_; }

 private:
  /// Full scan for dense operands: no early exit inside the unrolled block,
  /// so the compiler vectorizes the AND+OR reduction (8 words = one or two
  /// vector registers per step; see the PHTM_NATIVE build option).
  bool intersects_dense(const BloomSig& o) const noexcept {
    if constexpr (kWords % 8 == 0) {
      for (unsigned i = 0; i < kWords; i += 8) {
        std::uint64_t acc = 0;
        for (unsigned j = 0; j < 8; ++j) acc |= words_[i + j] & o.words_[i + j];
        if (acc != 0) return true;
      }
      return false;
    } else {
      for (unsigned i = 0; i < kWords; ++i)
        if (words_[i] & o.words_[i]) return true;
      return false;
    }
  }

  std::uint64_t words_[kWords]{};
  std::uint64_t occ_ = 0;
};

/// Default protocol signature: 2048 bits = 4 cache lines of filter plus the
/// occupancy line (paper Sec. 5.1 sizes the filter; the mask is ours).
using Signature = BloomSig<2048>;

static_assert(sizeof(Signature) == 5 * kCacheLineBytes);

}  // namespace phtm
