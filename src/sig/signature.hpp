// Cache-aligned Bloom-filter signatures (Sec. 5.1 of the paper).
//
// PART-HTM tracks read/write sets and the shared write-lock table as
// fixed-size bit arrays with a single hash function: 2048 bits = 4 cache
// lines by default. Signatures are deliberately *not* precise — false
// conflicts from hash aliasing are part of the protocol the paper evaluates,
// and the signature-size ablation bench sweeps `Bits`.
//
// Two access modes exist for the same storage:
//   - plain methods (add/intersects/...) for thread-local signatures and
//     for code already inside a hardware transaction that routes each word
//     through the HTM simulator;
//   - atomic_* methods for the *shared* write-locks-signature when it is
//     manipulated from the software side of the protocol (Fig. 1 lines
//     48-49 and 54-55).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "util/cacheline.hpp"
#include "util/hash.hpp"

namespace phtm {

template <unsigned Bits>
class alignas(kCacheLineBytes) BloomSig {
  static_assert(Bits % 64 == 0 && Bits >= 64, "Bits must be a multiple of 64");

 public:
  static constexpr unsigned kBits = Bits;
  static constexpr unsigned kWords = Bits / 64;

  /// Single hash function mapping an address to a bit index.
  /// Addresses are reduced to their cache-line id first: hardware detects
  /// conflicts at line granularity anyway, so finer signature tracking
  /// would only saturate the filter faster without adding precision.
  static unsigned bit_of(const void* addr) noexcept {
    return static_cast<unsigned>(
        mix64(reinterpret_cast<std::uintptr_t>(addr) >> 6) % Bits);
  }

  void clear() noexcept { std::memset(words_, 0, sizeof(words_)); }

  void add(const void* addr) noexcept {
    const unsigned b = bit_of(addr);
    words_[b / 64] |= (std::uint64_t{1} << (b % 64));
  }

  bool maybe_contains(const void* addr) const noexcept {
    const unsigned b = bit_of(addr);
    return (words_[b / 64] >> (b % 64)) & 1u;
  }

  bool empty() const noexcept {
    for (const auto w : words_)
      if (w != 0) return false;
    return true;
  }

  /// Bitwise intersection test (Fig. 1 lines 7, 27, 37).
  bool intersects(const BloomSig& o) const noexcept {
    for (unsigned i = 0; i < kWords; ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  /// this |= o (aggregate write-set accumulation, Fig. 1 line 32).
  void union_with(const BloomSig& o) noexcept {
    for (unsigned i = 0; i < kWords; ++i) words_[i] |= o.words_[i];
  }

  /// this &= ~o. Used to mask a transaction's own locks out of the global
  /// lock table before validation (Fig. 1 line 26, `write_locks - agg`).
  void subtract(const BloomSig& o) noexcept {
    for (unsigned i = 0; i < kWords; ++i) words_[i] &= ~o.words_[i];
  }

  bool operator==(const BloomSig& o) const noexcept {
    return std::memcmp(words_, o.words_, sizeof(words_)) == 0;
  }

  unsigned popcount() const noexcept {
    unsigned n = 0;
    for (const auto w : words_) n += static_cast<unsigned>(__builtin_popcountll(w));
    return n;
  }

  // --- software-side atomic operations on shared signatures ---

  /// Atomically set every bit of `o` in this signature (lock acquisition on
  /// the software side; the HTM side does the same through monitored writes).
  void atomic_union_with(const BloomSig& o) noexcept {
    for (unsigned i = 0; i < kWords; ++i)
      if (o.words_[i])
        __atomic_fetch_or(&words_[i], o.words_[i], __ATOMIC_ACQ_REL);
  }

  /// Atomically clear every bit of `o` (lock release, Fig. 1 line 49).
  /// Like the paper's bitwise removal, aliased bits owned by another
  /// in-flight transaction can be cleared too; the protocol tolerates the
  /// resulting (rare) false unlock exactly as the original does.
  void atomic_subtract(const BloomSig& o) noexcept {
    for (unsigned i = 0; i < kWords; ++i)
      if (o.words_[i])
        __atomic_fetch_and(&words_[i], ~o.words_[i], __ATOMIC_ACQ_REL);
  }

  /// Snapshot this (shared) signature with word-atomic loads.
  BloomSig atomic_snapshot() const noexcept {
    BloomSig s;
    for (unsigned i = 0; i < kWords; ++i)
      s.words_[i] = __atomic_load_n(&words_[i], __ATOMIC_ACQUIRE);
    return s;
  }

  /// Word-atomic copy-in for a seqlock-guarded slot. Relaxed on purpose:
  /// the enclosing sequence word (busy/final protocol) carries all the
  /// ordering; these stores only need to be tear-free per word so a
  /// validator racing the republication reads *some* word values and is
  /// then sent back by its sequence recheck.
  void atomic_assign(const BloomSig& o) noexcept {
    for (unsigned i = 0; i < kWords; ++i)
      __atomic_store_n(&words_[i], o.words_[i], __ATOMIC_RELAXED);
  }

  /// Word-atomic intersection of a seqlock-guarded slot (this) with a
  /// private signature. Relaxed for the same reason as atomic_assign: the
  /// caller revalidates the slot's sequence word after the scan and
  /// discards the result if the slot was republished mid-read.
  bool atomic_intersects(const BloomSig& o) const noexcept {
    for (unsigned i = 0; i < kWords; ++i)
      if (__atomic_load_n(&words_[i], __ATOMIC_RELAXED) & o.words_[i])
        return true;
    return false;
  }

  /// Raw word storage, exposed so transactional code can route word
  /// accesses through the HTM simulator (keeping them "monitored").
  std::uint64_t* words() noexcept { return words_; }
  const std::uint64_t* words() const noexcept { return words_; }

 private:
  std::uint64_t words_[kWords]{};
};

/// Default protocol signature: 2048 bits, 4 cache lines (paper Sec. 5.1).
using Signature = BloomSig<2048>;

static_assert(sizeof(Signature) == 4 * kCacheLineBytes);

}  // namespace phtm
