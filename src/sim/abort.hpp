// Abort taxonomy of the simulated best-effort HTM.
//
// Mirrors Intel RTM status semantics: a transaction fails with a cause
// (conflict / capacity / explicit / other) and, for explicit aborts, a user
// code. The simulator additionally reports the conflicting cache line when
// it is known, which PART-HTM-O uses to distinguish timestamp-subscription
// aborts from data conflicts (Fig. 2 lines 23-24, 36-39).
#pragma once

#include <cstdint>

namespace phtm::sim {

enum class AbortCode : std::uint8_t {
  kNone = 0,
  kConflict,   ///< another transaction or non-transactional access collided
  kCapacity,   ///< cache model overflow (write L1 / associativity / read L2)
  kExplicit,   ///< xabort() with a user code
  kOther,      ///< timer-quantum expiry or asynchronous interrupt
};

inline const char* to_string(AbortCode c) {
  switch (c) {
    case AbortCode::kNone: return "none";
    case AbortCode::kConflict: return "conflict";
    case AbortCode::kCapacity: return "capacity";
    case AbortCode::kExplicit: return "explicit";
    case AbortCode::kOther: return "other";
  }
  return "?";
}

struct AbortStatus {
  AbortCode code = AbortCode::kNone;
  std::uint32_t xabort_code = 0;    ///< user payload for kExplicit
  std::uint64_t conflict_line = 0;  ///< cache-line id for kConflict, else 0

  bool is(AbortCode c) const noexcept { return code == c; }
};

/// Thrown inside a hardware attempt to unwind to the begin point; callers
/// never see it — HtmRuntime::attempt catches it and returns AbortStatus.
struct TxAbort {
  AbortStatus status;
};

/// Packing of doom words: [code:8 | line:56]. Zero means "not doomed";
/// kCommitSentinel means "commit has latched, dooming is no longer possible".
inline constexpr std::uint64_t kCommitSentinel = ~std::uint64_t{0};

inline std::uint64_t pack_doom(AbortCode c, std::uint64_t line) noexcept {
  return (static_cast<std::uint64_t>(c) << 56) | (line & ((std::uint64_t{1} << 56) - 1));
}

inline AbortCode doom_code(std::uint64_t packed) noexcept {
  return static_cast<AbortCode>(packed >> 56);
}

inline std::uint64_t doom_line(std::uint64_t packed) noexcept {
  return packed & ((std::uint64_t{1} << 56) - 1);
}

}  // namespace phtm::sim
