// Resource model of the simulated best-effort HTM (Sec. 2 of the paper).
//
// The three abort causes the paper's evaluation turns on are produced by
// three explicit knobs:
//   - write capacity: written lines must fit an L1-sized, set-associative
//     model (any modelled eviction of a written line aborts);
//   - read capacity: reads may spill past L1 into an L2-sized budget that
//     is *shared* between concurrently running hardware transactions
//     (reproducing the >8-thread cliff of Fig. 3b and the hyper-threading
//     effect of Fig. 5f);
//   - duration: every transactional access and unit of in-transaction
//     computation costs ticks; exceeding the quantum models the timer
//     interrupt, and a small per-access probability models asynchronous
//     interrupts.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/fault.hpp"

namespace phtm::sim {

/// Persistence-domain model (CLWB+SFENCE on ADR — see sim/persist.hpp).
/// Plain data in every build; consulted only by the persist library flavor
/// (PHTM_PERSIST=1), same pattern as FaultPlan below.
struct PersistConfig {
  /// CLWB issue cost: paid per pwb (burn_work ticks).
  std::uint64_t flush_latency_ticks = 40;
  /// SFENCE drain cost: paid per pfence; psync pays double (ADR drain).
  std::uint64_t fence_cost_ticks = 100;
  /// Write-backs the flush queue holds before the oldest line spontaneously
  /// drains to the durable image (cache-eviction analogue).
  unsigned flush_queue_depth = 64;
};

struct HtmConfig {
  // --- write-set (L1) model ---
  unsigned write_lines_cap = 512;  ///< total L1 lines (32 KB / 64 B)
  unsigned assoc_sets = 64;        ///< L1 sets
  unsigned assoc_ways = 8;         ///< L1 ways; >ways written lines in a set aborts

  // --- read-set spill model ---
  // TSX read sets spill past L1 into shared cache levels with imprecise
  // tracking, so single transactions can read far beyond 32 KB; the budget
  // here models the shared-level share and shrinks with concurrency, which
  // is what produces the paper's >8-thread capacity cliff (Fig. 3b).
  unsigned read_lines_cap = 32768;       ///< shared-level budget in lines
  bool scale_read_cap_with_conc = true;  ///< divide budget by active txns

  // --- duration model ---
  std::uint64_t tick_budget = 50'000;    ///< ticks until the timer fires
  double random_other_per_access = 0.0;  ///< async-interrupt probability

  // --- topology ---
  bool hyperthread_pairs = false;  ///< HT siblings share an L1 when both txn
  /// Sibling mapping: the stride is the modeled core count. Linux-style
  /// enumeration puts the second hyperthread of core k at slot k + stride,
  /// so slot s pairs with s + stride when s % (2*stride) < stride and with
  /// s - stride otherwise (ht_sibling_of below; works for any stride, not
  /// just powers of two). On a 4c/8t part, with <=4 threads no
  /// two share a core — the paper's hyper-threading capacity effect
  /// appears only beyond 4 threads (Fig. 5f).
  unsigned ht_sibling_stride = 4;

  /// Hyper-thread sibling of `slot` under this profile (see
  /// ht_sibling_stride). Addition-based, correct for any stride — an XOR
  /// only matches the Linux-style pairing for power-of-two strides.
  unsigned ht_sibling_of(unsigned slot) const noexcept {
    const unsigned stride = ht_sibling_stride;
    if (stride == 0) return slot;
    return (slot % (2 * stride)) < stride ? slot + stride : slot - stride;
  }

  std::uint64_t seed = 1;

  // --- fault injection (chaos harness) ---
  // Plain data in every build; consulted only by the chaos library flavor
  // (PHTM_FAULTS=1).  See sim/fault.hpp for the determinism contract.
  FaultPlan faults;

  // --- persistence domain (durable flavor) ---
  // Plain data in every build; consulted only by the persist library
  // flavor (PHTM_PERSIST=1). Per-profile values model the gap between a
  // DIMM-class device (haswell/xeon defaults) and the synthetic machines.
  PersistConfig persist;

  /// Intel i7-4770 profile used for most of the paper's plots:
  /// 4 cores, 8 hardware threads, HT pairs share the 32 KB L1.
  static HtmConfig haswell4c8t() {
    HtmConfig c;
    c.hyperthread_pairs = true;
    return c;
  }

  /// Intel Xeon E7-8880v3 profile (18 cores, HT disabled in the paper).
  static HtmConfig xeon18c() {
    HtmConfig c;
    c.hyperthread_pairs = false;
    c.read_lines_cap = 100'000;  // much larger shared cache per socket
    c.persist.flush_latency_ticks = 60;  // DIMM farther from the core
    c.persist.fence_cost_ticks = 140;
    c.persist.flush_queue_depth = 128;
    return c;
  }

  /// Same Xeon with hyper-threading on: 36 hardware contexts, siblings of
  /// core k at index k + 18 (Linux-style enumeration, as in haswell4c8t).
  /// The 16+-thread sweeps of the sharded commit pipeline run here and on
  /// the sim*c profiles below.
  static HtmConfig xeon18c36t() {
    HtmConfig c = xeon18c();
    c.hyperthread_pairs = true;
    c.ht_sibling_stride = 18;
    return c;
  }

  /// Synthetic 32-context flat machine (no HT pairing): per-socket shared
  /// cache scaled with the core count so the read budget per context
  /// matches xeon18c at equal occupancy.
  static HtmConfig sim32c() {
    HtmConfig c;
    c.hyperthread_pairs = false;
    c.read_lines_cap = 180'000;
    return c;
  }

  /// Synthetic 64-context flat machine — the largest profile the runtime
  /// supports (kMaxSlots = 64 reader-bitmap bits). Used by the thread-sweep
  /// benches to drive the monitor table and the sharded ring at full
  /// occupancy.
  static HtmConfig sim64c() {
    HtmConfig c;
    c.hyperthread_pairs = false;
    c.read_lines_cap = 360'000;
    c.persist.flush_queue_depth = 256;  // deeper write-pending queue
    return c;
  }

  /// Deterministic profile for unit tests: no random aborts, generous
  /// duration so only the knob under test fires. Persistence costs are
  /// token (1/2 ticks) so durable-protocol tests stay fast.
  static HtmConfig testing() {
    HtmConfig c;
    c.random_other_per_access = 0.0;
    c.tick_budget = 1'000'000'000;
    c.persist.flush_latency_ticks = 1;
    c.persist.fence_cost_ticks = 2;
    c.persist.flush_queue_depth = 16;
    return c;
  }

  static HtmConfig by_name(const std::string& name) {
    if (name == "haswell4c8t") return haswell4c8t();
    if (name == "xeon18c") return xeon18c();
    if (name == "xeon18c36t") return xeon18c36t();
    if (name == "sim32c") return sim32c();
    if (name == "sim64c") return sim64c();
    if (name == "testing") return testing();
    throw std::invalid_argument(
        "unknown HTM profile \"" + name +
        "\" (valid: haswell4c8t, xeon18c, xeon18c36t, sim32c, sim64c, "
        "testing)");
  }
};

}  // namespace phtm::sim
