// FaultEngine implementation.  Compiled ONLY into the chaos library
// flavor (phtm_sim_chaos); an ordinary build that accidentally grows a
// reference to phtm::chaos fails at link, and the
// fault_compiled_out_symbols test pins the absence of these symbols.
#include "sim/fault.hpp"

#include <cassert>

namespace phtm::sim {

const char* to_string(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::kHwBegin: return "hw_begin";
    case FaultSite::kHwAccess: return "hw_access";
    case FaultSite::kHwCommit: return "hw_commit";
    case FaultSite::kSubBoundary: return "sub_boundary";
    case FaultSite::kGlockHeld: return "glock_held";
    case FaultSite::kCrashPoint: return "crash_point";
  }
  return "?";
}

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kAbortConflict: return "abort_conflict";
    case FaultKind::kAbortCapacity: return "abort_capacity";
    case FaultKind::kAbortOther: return "abort_other";
    case FaultKind::kDoomStorm: return "doom_storm";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCapacityFlap: return "capacity_flap";
    case FaultKind::kRingPressure: return "ring_pressure";
    case FaultKind::kCrash: return "crash";
  }
  return "?";
}

}  // namespace phtm::sim

namespace phtm::chaos {

FaultEngine::FaultEngine(const sim::FaultPlan& plan) : plan_(plan) {
  // Per-slot streams: same plan seed → same decisions per slot, whatever
  // the cross-thread interleaving does.
  for (unsigned s = 0; s < kMaxSlots; ++s)
    slots_[s].rng.reseed(plan_.seed * 0x9e3779b97f4a7c15ull + s);
}

sim::FaultDecision FaultEngine::visit(sim::FaultSite site,
                                      unsigned slot) noexcept {
  assert(slot < kMaxSlots);
  if (!plan_.enabled) return {};
  SlotState& st = slots_[slot];
  const std::uint64_t visit_no = ++st.visits[static_cast<unsigned>(site)];
  for (const sim::FaultInjector& inj : plan_.injectors) {
    if (inj.site != site || inj.kind == sim::FaultKind::kNone) continue;
    if ((inj.thread_mask & (std::uint64_t{1} << (slot % 64))) == 0) continue;
    bool fire = inj.period != 0 && visit_no % inj.period == 0;
    if (!fire && inj.prob > 0.0) fire = st.rng.uniform() < inj.prob;
    if (!fire) continue;
    ++st.injected[static_cast<unsigned>(inj.kind)];
    if (inj.kind == sim::FaultKind::kCapacityFlap) {
      // Flap is stateful, not an event: firing toggles the divisor the
      // capacity model reads until the next firing (odd epochs starved).
      const std::uint64_t div = inj.arg != 0 ? inj.arg : 4;
      st.flap_divisor = st.flap_divisor == 1 ? div : 1;
      continue;  // later injectors at this site may still fire an event
    }
    return {inj.kind, inj.arg};
  }
  return {};
}

std::uint64_t FaultEngine::capacity_divisor(unsigned slot) const noexcept {
  assert(slot < kMaxSlots);
  return slots_[slot].flap_divisor;
}

std::uint64_t FaultEngine::injected(sim::FaultKind kind) const noexcept {
  std::uint64_t n = 0;
  for (const SlotState& st : slots_)
    n += st.injected[static_cast<unsigned>(kind)];
  return n;
}

}  // namespace phtm::chaos
