// Deterministic fault injection for the simulated HTM (chaos harness).
//
// A FaultPlan is plain data carried by HtmConfig: a seed plus a list of
// injectors, each naming a protocol site, the threads it applies to, a
// firing rule (every Nth visit to the site, or a probability draw, or
// both) and the fault to inject.  The plan travels through every build,
// but it is *acted on* only by the chaos library flavor
// (src/core/CMakeLists.txt builds phtm_{sim,tm,core}_chaos with
// PHTM_FAULTS=1): in ordinary builds no hook is compiled, fault.cpp is
// not in the link, and the fault_compiled_out_symbols test pins that a
// plain test binary contains no phtm::chaos symbols at all.
//
// Determinism contract: a decision depends only on (plan.seed, slot id,
// per-slot visit ordinal).  Each slot draws from its own RNG stream —
// separate from the Slot's abort RNG, so enabling a plan never perturbs
// the baseline simulation's random sequence — which makes per-thread
// fault streams independent of the cross-thread interleaving and lets a
// chaos failure replay from its printed seed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/cacheline.hpp"
#include "util/rng.hpp"

namespace phtm::sim {

/// Protocol sites a fault can attach to.  Hardware-level sites live in
/// the simulator (sim/runtime.cpp); protocol-level sites live in the
/// PART-HTM backend (core/part_htm.cpp).
enum class FaultSite : std::uint8_t {
  kHwBegin,      ///< hardware txn entry, after the doom latch opens
  kHwAccess,     ///< every transactional read/subscribe/write
  kHwCommit,     ///< hardware commit point, before the doom latch closes
  kSubBoundary,  ///< partitioned path, between sub-transactions
  kGlockHeld,    ///< slow path, while the global lock is held
  kCrashPoint,   ///< durable commit protocol steps (persist flavor only)
};
inline constexpr unsigned kFaultSiteCount = 6;

enum class FaultKind : std::uint8_t {
  kNone,
  kAbortConflict,  ///< spurious abort, reported as a conflict
  kAbortCapacity,  ///< spurious abort, reported as capacity
  kAbortOther,     ///< spurious abort, reported as other (interrupt-like)
  kDoomStorm,      ///< doom every other in-flight hardware txn
  kStall,          ///< burn `arg` simulator ticks in place (preemption)
  kCapacityFlap,   ///< halve capacity on odd firing epochs (see below)
  kRingPressure,   ///< burn a global-ring slot with an empty entry
  kCrash,          ///< freeze the persist domain (whole-machine crash)
};
inline constexpr unsigned kFaultKindCount = 9;

const char* to_string(FaultSite s) noexcept;
const char* to_string(FaultKind k) noexcept;

/// One injector: at `site`, on threads in `thread_mask`, fire every
/// `period`-th visit (0 = disabled) and/or with probability `prob` per
/// visit, injecting `kind` with parameter `arg`.
struct FaultInjector {
  FaultSite site = FaultSite::kHwBegin;
  FaultKind kind = FaultKind::kNone;
  std::uint64_t thread_mask = ~std::uint64_t{0};  ///< bit s = slot s
  std::uint64_t period = 0;  ///< fire when visit % period == 0 (0 = off)
  double prob = 0.0;         ///< independent per-visit firing probability
  std::uint64_t arg = 0;     ///< kind-specific (stall ticks, flap divisor)
};

/// Carried by HtmConfig.  Inert unless `enabled` and the build is a
/// chaos flavor (PHTM_FAULTS=1).
struct FaultPlan {
  bool enabled = false;
  std::uint64_t seed = 1;
  std::vector<FaultInjector> injectors;

  FaultPlan& add(const FaultInjector& inj) {
    // span-waiver: chaos plans are built at configure time, before any
    // transaction runs; tmcheck's name-based call graph conservatively
    // links this `add` with the LineSet/Signature overloads used in-span.
    injectors.push_back(inj);
    enabled = true;
    return *this;
  }
};

/// Outcome of consulting the engine at a site: the first matching
/// injector that fires this visit (kind == kNone when none fired).
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  std::uint64_t arg = 0;
};

}  // namespace phtm::sim

namespace phtm::chaos {

/// Decision engine for a FaultPlan.  Lives in its own namespace so the
/// fault_compiled_out_symbols check can pin "no 4phtm5chaos symbols" in
/// plain builds without tripping over the plan data types above (which
/// HtmConfig carries everywhere).  Defined in fault.cpp, which only the
/// chaos library flavor compiles.
class FaultEngine {
 public:
  explicit FaultEngine(const sim::FaultPlan& plan);

  /// Consult the plan at `site` on behalf of `slot`.  Owner-only per-slot
  /// state (visit counters, RNG): each slot is driven by exactly one
  /// thread, so no atomics are needed.
  sim::FaultDecision visit(sim::FaultSite site, unsigned slot) noexcept;

  /// Capacity divisor currently in force for `slot` (kCapacityFlap):
  /// 1 when no flap is active, the injector's arg (default 4) on odd
  /// firing epochs.  Epochs advance with kHwBegin visits.
  std::uint64_t capacity_divisor(unsigned slot) const noexcept;

  /// Total number of injections of `kind` across all slots (test
  /// observability; call only after the worker threads have joined).
  std::uint64_t injected(sim::FaultKind kind) const noexcept;

  static constexpr unsigned kMaxSlots = 64;

 private:
  struct alignas(kCacheLineBytes) SlotState {
    Rng rng;
    std::uint64_t visits[sim::kFaultSiteCount] = {};
    std::uint64_t injected[sim::kFaultKindCount] = {};
    std::uint64_t flap_divisor = 1;  ///< current kCapacityFlap divisor
  };

  sim::FaultPlan plan_;
  SlotState slots_[kMaxSlots];
};

}  // namespace phtm::chaos
