// Per-transaction cache-line set with read/write flags and an L1
// set-associativity occupancy model.
//
// Open-addressing table keyed by line id; each transactional access first
// consults this set so the (locked) global monitor table is touched only on
// the *first* access to each line — matching hardware, where a line already
// in the transactional cache needs no new coherence traffic.
//
// clear() is O(1): slots carry an epoch stamp and stale slots count as
// empty, so per-attempt setup costs nothing even for large tables (a
// hardware transaction's begin is nearly free; the simulator's must be too).
#pragma once

#include <cstdint>
#include <vector>

#include "util/hash.hpp"

namespace phtm::sim {

class LineSet {
 public:
  enum : std::uint8_t { kRead = 1, kWrite = 2 };

  explicit LineSet(std::size_t initial_capacity = 4096) { reset(initial_capacity); }

  void clear() noexcept {
    if (++epoch_ == 0) {  // epoch wrap: genuinely reset stamps
      std::fill(epochs_.begin(), epochs_.end(), 0u);
      epoch_ = 1;
    }
    count_ = 0;
    n_read_ = n_write_ = 0;
    order_.clear();
  }

  /// Returns previous flags for `line` (0 if absent) and sets `flag`.
  std::uint8_t add(std::uint64_t line, std::uint8_t flag) {
    if ((count_ + 1) * 10 >= lines_.size() * 7) grow();
    std::size_t i = phtm::hash_line(line) & mask_;
    for (;;) {
      if (epochs_[i] != epoch_) {
        lines_[i] = line;
        flags_[i] = flag;
        epochs_[i] = epoch_;
        ++count_;
        // span-waiver: LineSet is the simulator's own footprint model, not
        // guest transactional state; order_ keeps its capacity across
        // reset(), so steady-state push is allocation-free.
        order_.push_back(line);
        if (flag & kRead) ++n_read_;
        if (flag & kWrite) ++n_write_;
        return 0;
      }
      if (lines_[i] == line) {
        const std::uint8_t prev = flags_[i];
        if ((flag & kRead) && !(prev & kRead)) ++n_read_;
        if ((flag & kWrite) && !(prev & kWrite)) ++n_write_;
        flags_[i] = prev | flag;
        return prev;
      }
      i = (i + 1) & mask_;
    }
  }

  std::uint8_t flags_of(std::uint64_t line) const noexcept {
    std::size_t i = phtm::hash_line(line) & mask_;
    for (;;) {
      if (epochs_[i] != epoch_) return 0;
      if (lines_[i] == line) return flags_[i];
      i = (i + 1) & mask_;
    }
  }

  /// Distinct lines touched, in first-touch order (used to unregister from
  /// the monitor table on commit/abort).
  const std::vector<std::uint64_t>& touched() const noexcept { return order_; }

  std::size_t distinct_lines() const noexcept { return count_; }
  std::size_t read_lines() const noexcept { return n_read_; }
  std::size_t write_lines() const noexcept { return n_write_; }

 private:
  void reset(std::size_t cap) {
    std::size_t n = 16;
    while (n < cap) n <<= 1;
    lines_.assign(n, 0);
    flags_.assign(n, 0);
    epochs_.assign(n, 0);
    mask_ = n - 1;
    epoch_ = 1;
    count_ = 0;
    n_read_ = n_write_ = 0;
    order_.clear();
  }

  void grow() {
    std::vector<std::uint64_t> old_lines = std::move(lines_);
    std::vector<std::uint8_t> old_flags = std::move(flags_);
    std::vector<std::uint32_t> old_epochs = std::move(epochs_);
    const std::size_t n = old_lines.size() * 2;
    // span-waiver: simulator-table growth (cold, amortized); this is the
    // bookkeeping that *measures* footprints, never rolled-back guest state.
    lines_.assign(n, 0);
    flags_.assign(n, 0);
    epochs_.assign(n, 0);
    mask_ = n - 1;
    for (std::size_t j = 0; j < old_lines.size(); ++j) {
      if (old_epochs[j] != epoch_) continue;
      std::size_t i = phtm::hash_line(old_lines[j]) & mask_;
      while (epochs_[i] == epoch_) i = (i + 1) & mask_;
      lines_[i] = old_lines[j];
      flags_[i] = old_flags[j];
      epochs_[i] = epoch_;
    }
  }

  std::vector<std::uint64_t> lines_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint32_t> epochs_;
  std::vector<std::uint64_t> order_;
  std::size_t mask_ = 0;
  std::uint32_t epoch_ = 1;
  std::size_t count_ = 0;
  std::size_t n_read_ = 0;
  std::size_t n_write_ = 0;
};

/// Occupancy counters for the L1 associativity model: a write to a set that
/// already holds `ways` written lines models the eviction of a dirty
/// transactional line, which aborts the transaction (Sec. 2).
class AssocModel {
 public:
  void configure(unsigned sets, unsigned ways) {
    occupancy_.assign(sets, 0);
    ways_ = ways;
  }

  void clear() noexcept { std::fill(occupancy_.begin(), occupancy_.end(), 0); }

  /// Account a newly *written* line; returns false on modelled eviction.
  bool add_written_line(std::uint64_t line) noexcept {
    // Hash before reducing: line ids are host heap addresses, and a plain
    // modulo would tie the modeled set index to allocator placement (a
    // power-of-two allocation stride aliases every write into one set).
    auto& occ = occupancy_[phtm::hash_line(line) % occupancy_.size()];
    if (occ >= ways_) return false;
    ++occ;
    return true;
  }

 private:
  std::vector<std::uint16_t> occupancy_;
  unsigned ways_ = 8;
};

}  // namespace phtm::sim
