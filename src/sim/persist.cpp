#include "sim/persist.hpp"

#include "obs/trace.hpp"
#include "sim/runtime.hpp"

namespace phtm::persist {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Per-address crash coin flip: pure function of (seed, addr), independent
/// of container iteration order, so a torn prefix replays exactly from the
/// seed alone.
bool crash_keeps(std::uint64_t seed, const std::uint64_t* addr) {
  return (splitmix64(seed ^ reinterpret_cast<std::uint64_t>(addr)) & 1) != 0;
}

}  // namespace

void PersistDomain::configure(const sim::PersistConfig& cfg) {
  LockGuard<Spinlock> g(lock_);
  cfg_ = cfg;
}

void PersistDomain::drain_locked(Image& im) {
  for (std::uint64_t* addr : im.order) im.durable[addr] = im.pending[addr];
  im.pending.clear();
  im.order.clear();
}

void PersistDomain::pwb(std::uint64_t* addr, StatSheet* st) {
  // raw-atomic: capture the word's current volatile value at pwb time (the
  // model's CLWB snapshot semantics, header comment).
  // relaxed: value capture only — persistence ordering comes from pfence,
  // never from the write-back itself.
  const std::uint64_t val = __atomic_load_n(addr, __ATOMIC_RELAXED);
  std::uint64_t lat = 0;
  {
    LockGuard<Spinlock> g(lock_);
    lat = cfg_.flush_latency_ticks;
    auto [it, fresh] = live_.pending.emplace(addr, val);
    if (fresh) {
      live_.order.push_back(addr);
    } else {
      it->second = val;
    }
    // Finite flush queue: overflowing spontaneously evicts the oldest
    // entry into the durable image (a line written back long before any
    // fence — pwb'd state may persist at ANY later moment).
    while (live_.order.size() > cfg_.flush_queue_depth) {
      std::uint64_t* oldest = live_.order.front();
      live_.order.pop_front();
      live_.durable[oldest] = live_.pending[oldest];
      live_.pending.erase(oldest);
    }
    ++pwbs_;
    ticks_ += lat;
  }
  sim::burn_work(lat);
  PHTM_TRACE_PERSIST(PersistOp::kPwb);
  if (st) st->add_persist(PersistOp::kPwb);
}

void PersistDomain::fence_impl(StatSheet* st, bool sync) {
  std::uint64_t cost = 0;
  {
    LockGuard<Spinlock> g(lock_);
    drain_locked(live_);
    // psync additionally waits out the ADR capacitor path; model that as a
    // second fence worth of latency.
    cost = sync ? 2 * cfg_.fence_cost_ticks : cfg_.fence_cost_ticks;
    if (sync) {
      ++psyncs_;
    } else {
      ++pfences_;
    }
    ticks_ += cost;
  }
  sim::burn_work(cost);
  PHTM_TRACE_PERSIST(sync ? PersistOp::kPsync : PersistOp::kPfence);
  if (st) st->add_persist(sync ? PersistOp::kPsync : PersistOp::kPfence);
}

void PersistDomain::pfence(StatSheet* st) { fence_impl(st, /*sync=*/false); }
void PersistDomain::psync(StatSheet* st) { fence_impl(st, /*sync=*/true); }

void PersistDomain::format(std::uint64_t* addr, std::uint64_t val) {
  LockGuard<Spinlock> g(lock_);
  live_.durable[addr] = val;
}

std::uint64_t PersistDomain::durable(const std::uint64_t* addr) const {
  LockGuard<Spinlock> g(lock_);
  const auto it =
      live_.durable.find(const_cast<std::uint64_t*>(addr));
  return it == live_.durable.end() ? 0 : it->second;
}

std::vector<std::pair<std::uint64_t*, std::uint64_t>>
PersistDomain::snapshot_durable() const {
  LockGuard<Spinlock> g(lock_);
  std::vector<std::pair<std::uint64_t*, std::uint64_t>> out;
  out.reserve(live_.durable.size());
  for (const auto& [addr, val] : live_.durable) out.emplace_back(addr, val);
  return out;
}

void PersistDomain::freeze(StatSheet* st) {
  {
    LockGuard<Spinlock> g(lock_);
    if (frozen_) return;  // first crash seam wins
    frozen_ = true;
    frozen_img_ = live_;
    ++crashes_;
  }
  PHTM_TRACE_CRASH();
  if (st) st->add_crash();
}

bool PersistDomain::frozen() const {
  LockGuard<Spinlock> g(lock_);
  return frozen_;
}

void PersistDomain::crash(std::uint64_t seed) {
  crash_keep([seed](const std::uint64_t* addr) {
    return crash_keeps(seed, addr);
  });
}

void PersistDomain::crash_keep(
    const std::function<bool(const std::uint64_t*)>& keep) {
  LockGuard<Spinlock> g(lock_);
  if (!frozen_) frozen_img_ = live_;
  live_.durable = frozen_img_.durable;
  for (std::uint64_t* addr : frozen_img_.order) {
    if (keep(addr)) live_.durable[addr] = frozen_img_.pending[addr];
  }
  live_.pending.clear();
  live_.order.clear();
  frozen_img_ = Image{};
  frozen_ = false;
}

std::size_t PersistDomain::pending_size() const {
  LockGuard<Spinlock> g(lock_);
  return frozen_ ? frozen_img_.order.size() : live_.order.size();
}

std::uint64_t PersistDomain::pwbs() const {
  LockGuard<Spinlock> g(lock_);
  return pwbs_;
}
std::uint64_t PersistDomain::pfences() const {
  LockGuard<Spinlock> g(lock_);
  return pfences_;
}
std::uint64_t PersistDomain::psyncs() const {
  LockGuard<Spinlock> g(lock_);
  return psyncs_;
}
std::uint64_t PersistDomain::crashes() const {
  LockGuard<Spinlock> g(lock_);
  return crashes_;
}
std::uint64_t PersistDomain::ticks() const {
  LockGuard<Spinlock> g(lock_);
  return ticks_;
}

sim::PersistConfig PersistDomain::config() const {
  LockGuard<Spinlock> g(lock_);
  return cfg_;
}

}  // namespace phtm::persist
