// Simulated persistence domain: pwb/pfence/psync over a crash-truncatable
// flush queue.
//
// Models the CLWB+SFENCE discipline of eADR-less persistent memory on an
// ADR platform:
//
//  - `pwb(addr)` (persist write-back, CLWB) captures the *current* volatile
//    value of a word and places it on the flush queue ("pending"). A word
//    stored after its pwb is NOT durable until pwb'd again — the model
//    captures the value at pwb time, which is the discipline persistent
//    software must program to anyway (a line may be written back at any
//    moment after the CLWB retires).
//  - `pfence` (SFENCE) drains the whole flush queue into the durable image:
//    on ADR, once the fence retires every previously flushed line is inside
//    the persistence domain. `psync` is the same drain with the stronger
//    cost of waiting out the ADR capacitor path (PSYNC/fdatasync analogue).
//  - A crash freezes the domain at an arbitrary instant: everything durable
//    stays, and each *pending* word independently either made it back or is
//    lost (a seeded per-address coin flip, or an explicit keep-predicate for
//    deterministic torn-write tests). This is the adversary recovery code
//    must survive: fences order persistence, nothing else does.
//  - The flush queue has finite depth (`flush_queue_depth`): overflowing it
//    spontaneously drains the oldest entry, modeling a line evicted by the
//    cache long before any fence — code may never rely on a pwb'd value
//    NOT being durable yet.
//
// Threading: one domain is shared by every worker (it models the memory
// controller). All state is behind a simulator-internal spinlock; the
// latency costs (burn_work) are paid outside it.
//
// The domain is only linked in the PHTM_PERSIST=1 flavor (persist.cpp is in
// no other flavor's build — a stray reference from a plain build fails
// loudly at link time, same pattern as sim/fault.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/config.hpp"
#include "util/annotations.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"

namespace phtm::persist {

/// The persistence domain: durable image + bounded flush queue.
class alignas(kCacheLineBytes) PersistDomain {
 public:
  PersistDomain() = default;
  explicit PersistDomain(const sim::PersistConfig& cfg) : cfg_(cfg) {}

  /// Replace the latency/queue model (setup-time only).
  void configure(const sim::PersistConfig& cfg);

  /// Persist write-back: capture *addr's current volatile value onto the
  /// flush queue. Durable only after a later pfence/psync (or spontaneous
  /// eviction). Emits one kPersist trace event and bumps st (if given).
  void pwb(std::uint64_t* addr, StatSheet* st = nullptr);

  /// Persist fence: drain every pending write-back into the durable image.
  void pfence(StatSheet* st = nullptr);

  /// Persist sync: pfence plus the full ADR drain cost.
  void psync(StatSheet* st = nullptr);

  /// Seed the durable image directly (mkfs analogue): used by harnesses to
  /// register a word with its initial durable value. Not counted/traced.
  void format(std::uint64_t* addr, std::uint64_t val);

  /// The word's durable value (0 if never formatted/persisted — persistent
  /// memory is presented zeroed, like the TM heap).
  std::uint64_t durable(const std::uint64_t* addr) const;

  /// Entire durable image, for discard-volatile-state restoration.
  std::vector<std::pair<std::uint64_t*, std::uint64_t>> snapshot_durable() const;

  /// Mark the crash instant: snapshot durable image + flush queue. Later
  /// persist operations keep running on the live state but can no longer
  /// affect the frozen image — a multi-threaded workload can finish its
  /// round normally after one thread hits a crash seam, and everything it
  /// does after the freeze is exactly the work a real crash would have
  /// lost. Idempotent (the first freeze wins). Emits one kCrash event.
  void freeze(StatSheet* st = nullptr);
  bool frozen() const;

  /// Take the crash: durable image := frozen durable image + a per-address
  /// coin-flip subset of the frozen flush queue (hash of (seed, addr), so
  /// the torn prefix is replayable and iteration-order independent). Clears
  /// the queue and unfreezes. Freezes first if nobody did.
  void crash(std::uint64_t seed);

  /// Deterministic crash: `keep` decides per pending address. For
  /// constructing exact torn-record scenarios in tests.
  void crash_keep(const std::function<bool(const std::uint64_t*)>& keep);

  /// Flush-queue occupancy (frozen queue if frozen — what a crash sees).
  std::size_t pending_size() const;

  std::uint64_t pwbs() const;
  std::uint64_t pfences() const;
  std::uint64_t psyncs() const;
  std::uint64_t crashes() const;
  /// Modeled persistence latency paid so far (ticks).
  std::uint64_t ticks() const;

  sim::PersistConfig config() const;

 private:
  struct Image {
    std::unordered_map<std::uint64_t*, std::uint64_t> durable;
    std::unordered_map<std::uint64_t*, std::uint64_t> pending;
    std::deque<std::uint64_t*> order;  ///< pending keys, oldest first
  };

  void drain_locked(Image& im) PHTM_REQUIRES(lock_);
  void fence_impl(StatSheet* st, bool sync);

  mutable Spinlock lock_;
  sim::PersistConfig cfg_ PHTM_GUARDED_BY(lock_);
  Image live_ PHTM_GUARDED_BY(lock_);
  Image frozen_img_ PHTM_GUARDED_BY(lock_);
  bool frozen_ PHTM_GUARDED_BY(lock_) = false;
  std::uint64_t pwbs_ PHTM_GUARDED_BY(lock_) = 0;
  std::uint64_t pfences_ PHTM_GUARDED_BY(lock_) = 0;
  std::uint64_t psyncs_ PHTM_GUARDED_BY(lock_) = 0;
  std::uint64_t crashes_ PHTM_GUARDED_BY(lock_) = 0;
  std::uint64_t ticks_ PHTM_GUARDED_BY(lock_) = 0;
};

}  // namespace phtm::persist
