// phtm_profiles: dump the machine profiles (sim/config.hpp) as JSON.
//
// Single source of truth for the static-analysis tooling: tools/tmfoot
// reads the capacity parameters (write_lines_cap, assoc_sets, assoc_ways,
// read_lines_cap) from this binary's output — generated into the build
// tree as profiles.json — instead of re-parsing config.hpp. A committed
// fallback copy lives at tools/tmfoot/profiles.json; tmfoot cross-checks
// the two and fails on drift, so the fallback can never silently go stale.
#include <cstdio>

#include "sim/config.hpp"

namespace {

void dump(const char* name, const phtm::sim::HtmConfig& c, bool last) {
  std::printf(
      "  \"%s\": {\n"
      "   \"write_lines_cap\": %u,\n"
      "   \"assoc_sets\": %u,\n"
      "   \"assoc_ways\": %u,\n"
      "   \"read_lines_cap\": %u,\n"
      "   \"scale_read_cap_with_conc\": %s,\n"
      "   \"tick_budget\": %llu,\n"
      "   \"hyperthread_pairs\": %s,\n"
      "   \"ht_sibling_stride\": %u,\n"
      "   \"persist_flush_latency_ticks\": %llu,\n"
      "   \"persist_fence_cost_ticks\": %llu,\n"
      "   \"persist_flush_queue_depth\": %u\n"
      "  }%s\n",
      name, c.write_lines_cap, c.assoc_sets, c.assoc_ways, c.read_lines_cap,
      c.scale_read_cap_with_conc ? "true" : "false",
      static_cast<unsigned long long>(c.tick_budget),
      c.hyperthread_pairs ? "true" : "false", c.ht_sibling_stride,
      static_cast<unsigned long long>(c.persist.flush_latency_ticks),
      static_cast<unsigned long long>(c.persist.fence_cost_ticks),
      c.persist.flush_queue_depth, last ? "" : ",");
}

}  // namespace

int main() {
  std::printf("{\n \"schema\": 1,\n \"profiles\": {\n");
  dump("haswell4c8t", phtm::sim::HtmConfig::haswell4c8t(), false);
  dump("xeon18c", phtm::sim::HtmConfig::xeon18c(), false);
  dump("xeon18c36t", phtm::sim::HtmConfig::xeon18c36t(), false);
  dump("sim32c", phtm::sim::HtmConfig::sim32c(), false);
  dump("sim64c", phtm::sim::HtmConfig::sim64c(), false);
  dump("testing", phtm::sim::HtmConfig::testing(), true);
  std::printf(" }\n}\n");
  return 0;
}
