#include "sim/runtime.hpp"

#include <bit>

#include "obs/trace.hpp"
#include "util/annotations.hpp"
#include "util/mc_hooks.hpp"

namespace phtm::sim {

namespace {
constexpr std::uint64_t bit_of_slot(unsigned slot) {
  return std::uint64_t{1} << slot;
}
}  // namespace

// Hardware-level fault-injection sites (chaos flavor only; expands to
// nothing elsewhere, pinned by the fault_compiled_out_symbols test).
#if defined(PHTM_FAULTS) && PHTM_FAULTS
#define PHTM_FAULT_HW(rt, site, slot) (rt).fault_hw_point((site), (slot))
#define PHTM_FAULT_CAP_DIV(rt, slot) \
  ((rt).fault_ != nullptr ? (rt).fault_->capacity_divisor(slot) : 1u)
#else
#define PHTM_FAULT_HW(rt, site, slot) ((void)0)
#define PHTM_FAULT_CAP_DIV(rt, slot) (std::uint64_t{1})
#endif

HtmRuntime::HtmRuntime(HtmConfig cfg)
    : cfg_(cfg),
      slots_(std::make_unique<Slot[]>(kMaxSlots)),
      buckets_(std::make_unique<Bucket[]>(kBucketCount)) {
  for (unsigned s = 0; s < kMaxSlots; ++s) {
    slots_[s].assoc.configure(cfg_.assoc_sets, cfg_.assoc_ways);
    slots_[s].rng.reseed(cfg_.seed * 0x9e3779b97f4a7c15ull + s + 1);
  }
#if defined(PHTM_FAULTS) && PHTM_FAULTS
  if (cfg_.faults.enabled)
    fault_ = std::make_unique<chaos::FaultEngine>(cfg_.faults);
#endif
}

#if defined(PHTM_FAULTS) && PHTM_FAULTS
void HtmRuntime::fault_hw_point(FaultSite site, unsigned slot) {
  if (fault_ == nullptr) return;
  const FaultDecision d = fault_->visit(site, slot);
  switch (d.kind) {
    case FaultKind::kNone:
    case FaultKind::kCapacityFlap:   // stateful: read via capacity_divisor
    case FaultKind::kRingPressure:   // protocol-level, core hooks only
    case FaultKind::kCrash:          // fired at crash_seam() only, never here
      return;
    case FaultKind::kAbortConflict:
      throw TxAbort{AbortStatus{AbortCode::kConflict, 0, 0}};
    case FaultKind::kAbortCapacity:
      throw TxAbort{AbortStatus{AbortCode::kCapacity, 0, 0}};
    case FaultKind::kAbortOther:
      throw TxAbort{AbortStatus{AbortCode::kOther, 0, 0}};
    case FaultKind::kStall:
      // Preemption mid-transaction: the stalled core keeps accruing ticks,
      // so a long enough stall fires the modelled timer interrupt.
      tick(slot, d.arg != 0 ? d.arg : 1000);
      return;
    case FaultKind::kDoomStorm:
      // Coherence storm: doom every other in-flight hardware transaction
      // (cross-slot CAS; latched committers survive, as on real hardware).
      for (unsigned v = 0; v < kMaxSlots; ++v)
        if (v != slot) try_doom(v, AbortCode::kConflict, 0);
      return;
  }
}
#endif

HtmRuntime::~HtmRuntime() {
  // A chunk lives either in exactly one bucket chain or, after
  // locked_trim unlinked it, in the retired list — never both — so each
  // is freed exactly once, here, after every Thread has released its slot.
  for (unsigned i = 0; i < kBucketCount; ++i) {
    MonChunk* c = buckets_[i].head.next.load(std::memory_order_acquire);
    while (c != nullptr) {
      MonChunk* next = c->next.load(std::memory_order_acquire);
      delete c;
      // relaxed: monotonic statistics counter; orders nothing.
      mon_chunks_freed_.fetch_add(1, std::memory_order_relaxed);
      c = next;
    }
  }
  LockGuard<Spinlock> g(retire_lock_);
  for (const RetiredChunk& r : retired_) {
    delete r.chunk;
    // relaxed: monotonic statistics counter; orders nothing.
    mon_chunks_freed_.fetch_add(1, std::memory_order_relaxed);
  }
  retired_.clear();
}

unsigned HtmRuntime::acquire_slot() {
  LockGuard<Spinlock> g(slot_alloc_lock_);
  for (unsigned s = 0; s < kMaxSlots; ++s) {
    if (!(slot_used_ & bit_of_slot(s))) {
      slot_used_ |= bit_of_slot(s);
      return s;
    }
  }
  assert(false && "more than 64 concurrent HTM threads");
  return 0;
}

void HtmRuntime::release_slot(unsigned slot) {
  LockGuard<Spinlock> g(slot_alloc_lock_);
  slot_used_ &= ~bit_of_slot(slot);
}

unsigned HtmRuntime::bucket_index(std::uint64_t line) noexcept {
  return static_cast<unsigned>(hash_line(line) & (kBucketCount - 1));
}

HtmRuntime::Bucket& HtmRuntime::bucket_of(std::uint64_t line) noexcept {
  return buckets_[bucket_index(line)];
}

void HtmRuntime::pin_epoch(unsigned slot) noexcept {
  auto& ann = slots_[slot].reclaim_epoch;
  std::uint64_t e = mon_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    // Announce-then-verify: the announcement must be globally visible
    // before the epoch can advance past it, or a thread stalled between
    // the load and the store could pin an epoch whose grace period has
    // already elapsed. Both sides seq_cst, Dekker pair with the
    // announcement scan in try_advance_epoch. The loop re-runs at most
    // once per concurrent advance (advances are rare: one per trim).
    ann.store(e, std::memory_order_seq_cst);
    const std::uint64_t now = mon_epoch_.load(std::memory_order_seq_cst);
    if (now == e) return;
    e = now;
  }
}

void HtmRuntime::unpin_epoch(unsigned slot) noexcept {
  // release: everything this traversal read from bucket chains is ordered
  // before the announcement clears (the advance scan acquires it).
  slots_[slot].reclaim_epoch.store(0, std::memory_order_release);
}

// Reclamation step 2 of 3: one epoch advance. Succeeds only when every
// slot's announcement is idle (0) or already at the current epoch — i.e.
// no lock-free traversal that pinned an older epoch is still running. CAS
// rather than fetch_add so racing advancers cannot skip an epoch, which
// would cut a grace period short.
bool HtmRuntime::try_advance_epoch() noexcept {
  std::uint64_t e = mon_epoch_.load(std::memory_order_seq_cst);
  for (unsigned s = 0; s < kMaxSlots; ++s) {
    const std::uint64_t a =
        slots_[s].reclaim_epoch.load(std::memory_order_seq_cst);
    if (a != 0 && a != e) return false;
  }
  return mon_epoch_.compare_exchange_strong(e, e + 1,
                                            std::memory_order_seq_cst);
}

// Reclamation step 3 of 3: delete every retired chunk stamped two or more
// epochs behind. Advancing past the stamp epoch required every traversal
// pinned at it to finish; advancing once more means any traversal pinned
// since then started after the unlink and re-validates identities through
// the tag seqlock anyway. Nothing can still hold a pointer in.
void HtmRuntime::free_retired() {
  const std::uint64_t global = mon_epoch_.load(std::memory_order_seq_cst);
  LockGuard<Spinlock> g(retire_lock_);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < retired_.size(); ++i) {
    if (retired_[i].epoch + 2 <= global) {
      delete retired_[i].chunk;
      // relaxed: monotonic statistics counter; orders nothing.
      mon_chunks_freed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      retired_[kept++] = retired_[i];
    }
  }
  retired_.resize(kept);
}

void HtmRuntime::mon_quiesce() {
  for (int i = 0; i < 2; ++i)
    if (!try_advance_epoch()) break;
  free_retired();
}

// Reclamation step 1 of 3: find the longest suffix of `b`'s overflow chain
// whose entries are all dead (no writer, no reader) or never claimed, cut
// it out of the chain and move its chunks to the retired list stamped with
// the current epoch. Only whole suffixes go, so the claimed-entry prefix
// invariant survives; the head chunk is inline in the bucket and never
// reclaimed. The suffix's internal next pointers stay intact — a reader
// that loaded the old link before the cut may keep walking the dead
// chunks until its grace period elapses.
void HtmRuntime::locked_trim(Bucket& b) {
  MonChunk* const first = b.head.next.load(std::memory_order_acquire);
  if (first == nullptr) return;  // steady state: no overflow chunks
  MonChunk* pred = &b.head;
  MonChunk* cut_pred = nullptr;
  for (MonChunk* c = first; c != nullptr;
       c = c->next.load(std::memory_order_acquire)) {
    bool dead = true;
    for (auto& e : c->entries) {
      if (e.tag.load(std::memory_order_acquire) == 0) break;  // unclaimed tail
      if (e.writer.load(std::memory_order_acquire) != 0 ||
          e.readers.load(std::memory_order_seq_cst) != 0) {
        dead = false;
        break;
      }
    }
    if (!dead)
      cut_pred = nullptr;
    else if (cut_pred == nullptr)
      cut_pred = pred;
    pred = c;
  }
  if (cut_pred == nullptr) return;
  MonChunk* const cut = cut_pred->next.load(std::memory_order_acquire);
  // Identity seqlock, write side (the same Dekker pair as the retag path
  // in locked_find_or_claim): flip every claimed entry in the suffix to an
  // odd tag, then re-check its reader bitmap. A lock-free reader
  // registering concurrently either left its bit visible to the re-check
  // here, or sees the odd tag on its own re-check and undoes the bit.
  for (MonChunk* c = cut; c != nullptr;
       c = c->next.load(std::memory_order_acquire)) {
    for (auto& e : c->entries) {
      const std::uint32_t t0 = e.tag.load(std::memory_order_acquire);
      if (t0 == 0) break;
      e.tag.store(t0 + 1, std::memory_order_seq_cst);
      if (e.readers.load(std::memory_order_seq_cst) != 0) {
        // A late reader won the race: the suffix is live after all.
        // Restore every tag we flipped to the next even value (so that
        // reader's re-check still rejects and re-registers under the
        // lock) and keep the chain as is.
        e.tag.store(t0 + 2, std::memory_order_release);
        for (MonChunk* u = cut; u != nullptr;
             u = u->next.load(std::memory_order_acquire)) {
          for (auto& r : u->entries) {
            const std::uint32_t t = r.tag.load(std::memory_order_acquire);
            if (t == 0) break;
            if (t & 1u) r.tag.store(t + 1, std::memory_order_release);
          }
        }
        return;
      }
    }
  }
  // Every suffix entry is odd-tagged with an empty reader bitmap: no
  // lock-free registration can succeed against it any more, and writers
  // would need this bucket lock. Unlink and retire.
  cut_pred->next.store(nullptr, std::memory_order_release);
  const std::uint64_t epoch = mon_epoch_.load(std::memory_order_seq_cst);
  {
    LockGuard<Spinlock> g(retire_lock_);
    for (MonChunk* c = cut; c != nullptr;
         c = c->next.load(std::memory_order_acquire))
      retired_.push_back(RetiredChunk{c, epoch});
  }
  try_advance_epoch();
  free_retired();
}

bool HtmRuntime::try_doom(unsigned victim, AbortCode code, std::uint64_t line) {
  std::uint64_t expect = 0;
  if (slots_[victim].doom.compare_exchange_strong(expect, pack_doom(code, line),
                                                  std::memory_order_acq_rel)) {
    // trace-deferred: the doomer may itself be inside a hardware
    // transaction (a monitored access invalidating a conflicting victim);
    // the tracer defers the record until the outcome in that case — a doom
    // is a real side effect either way (the CAS above is not rolled back).
    PHTM_TRACE_DOOM(victim, code, line);
    return true;
  }
  if (expect == kCommitSentinel) {
    // Doom-latch edge, acquire side: observing the sentinel orders this
    // thread after everything the committer did before latching (the CAS
    // above read the sentinel with acquire). The caller may now wait for —
    // or rely on — the victim's publication.
    PHTM_ANNOTATE_HAPPENS_AFTER(&slots_[victim].doom);
    return false;
  }
  // Already doomed by someone else: as good as doomed by us.
  return true;
}

void HtmRuntime::check_doomed(unsigned slot) {
  const std::uint64_t d = slots_[slot].doom.load(std::memory_order_acquire);
  if (d != 0) {
    assert(d != kCommitSentinel && "doom word latched while still running");
    throw TxAbort{AbortStatus{doom_code(d), 0, doom_line(d)}};
  }
}

void HtmRuntime::tick(unsigned slot, std::uint64_t n) {
  Slot& s = slots_[slot];
  s.ticks += n;
  if (s.ticks > cfg_.tick_budget) {
    // Timer interrupt: the OS scheduler preempts the core; any in-flight
    // hardware transaction is aborted (Sec. 2 "resource limitation").
    throw TxAbort{AbortStatus{AbortCode::kOther, 0, 0}};
  }
  if (cfg_.random_other_per_access > 0.0 &&
      s.rng.uniform() < cfg_.random_other_per_access * static_cast<double>(n)) {
    throw TxAbort{AbortStatus{AbortCode::kOther, 0, 0}};
  }
}

unsigned HtmRuntime::effective_write_cap(unsigned slot) const {
  unsigned cap = static_cast<unsigned>(cfg_.write_lines_cap /
                                       PHTM_FAULT_CAP_DIV(*this, slot));
  if (cfg_.hyperthread_pairs) {
    const unsigned sibling = cfg_.ht_sibling_of(slot);
    // relaxed: capacity heuristic; a stale sibling flag only mis-sizes the
    // modelled cap for one attempt, it orders nothing.
    if (sibling < kMaxSlots && slots_[sibling].in_txn.load(std::memory_order_relaxed))
      cap /= 2;  // HT sibling shares the L1
  }
  return cap;
}

unsigned HtmRuntime::effective_read_cap(unsigned slot) const {
  std::uint64_t cap = cfg_.read_lines_cap / PHTM_FAULT_CAP_DIV(*this, slot);
  if (cfg_.scale_read_cap_with_conc) {
    // relaxed: capacity heuristic (shared-L2 pressure model); staleness is
    // harmless for the same reason as the sibling flag above.
    const unsigned c = active_.load(std::memory_order_relaxed);
    cap /= (c == 0 ? 1 : c);
  }
  if (cfg_.hyperthread_pairs) {
    const unsigned sibling = cfg_.ht_sibling_of(slot);
    // relaxed: capacity heuristic; a stale sibling flag only mis-sizes the
    // modelled cap for one attempt, it orders nothing.
    if (sibling < kMaxSlots && slots_[sibling].in_txn.load(std::memory_order_relaxed))
      cap /= 2;
  }
  // Even under extreme sharing a transaction keeps some private lines.
  return static_cast<unsigned>(cap < 64 ? 64 : cap);
}

HtmRuntime::MonEntry* HtmRuntime::probe_entry(Bucket& b, std::uint64_t line,
                                              std::uint32_t& tag_out) noexcept {
  for (MonChunk* c = &b.head; c != nullptr;
       c = c->next.load(std::memory_order_acquire)) {
    for (auto& e : c->entries) {
      const std::uint32_t tag = e.tag.load(std::memory_order_acquire);
      if (tag == 0) return nullptr;  // end of the claimed prefix
      if (tag & 1u) continue;        // identity change in flight
      if (e.line.load(std::memory_order_acquire) != line) continue;
      tag_out = tag;
      return &e;
    }
  }
  return nullptr;
}

HtmRuntime::MonEntry& HtmRuntime::locked_find_or_claim(Bucket& b,
                                                       std::uint64_t line) {
  for (;;) {
    MonEntry* dead = nullptr;
    MonEntry* unclaimed = nullptr;
    MonChunk* last = nullptr;
    for (MonChunk* c = &b.head; c != nullptr && unclaimed == nullptr;
         c = c->next.load(std::memory_order_acquire)) {
      last = c;
      for (auto& e : c->entries) {
        const std::uint32_t tag = e.tag.load(std::memory_order_acquire);
        if (tag == 0) {
          unclaimed = &e;  // claimed entries form a prefix: no match beyond
          break;
        }
        if (e.line.load(std::memory_order_acquire) == line) return e;
        if (dead == nullptr && !(tag & 1u) &&
            e.writer.load(std::memory_order_acquire) == 0 &&
            e.readers.load(std::memory_order_seq_cst) == 0) {
          dead = &e;
        }
      }
    }
    // Prefer reviving a dead entry over growing the claimed prefix; chain a
    // new chunk only when the bucket is completely full.
    MonEntry* target = dead != nullptr ? dead : unclaimed;
    if (target == nullptr) {
      // span-waiver: monitor-table growth is the simulator's conflict-
      // detection infrastructure, not guest transactional state; the chunk
      // is published under the bucket lock and reclaimed only through the
      // epoch scheme (locked_trim), so there is nothing to roll back.
      auto* c = new MonChunk;
      // relaxed: monotonic statistics counter; orders nothing.
      mon_chunks_allocated_.fetch_add(1, std::memory_order_relaxed);
      target = &c->entries[0];
      target->tag.store(1, std::memory_order_release);
      target->line.store(line, std::memory_order_release);
      target->tag.store(2, std::memory_order_release);
      // Publish the chunk only after its first entry is fully formed.
      last->next.store(c, std::memory_order_release);
      return *target;
    }
    // Identity seqlock, write side. The odd store and the deadness recheck
    // form a Dekker pair with the reader fast path (readers.fetch_or then
    // tag recheck, both seq_cst): either the late reader's bit is visible
    // here and the retag is abandoned, or the reader's recheck sees the odd
    // tag and undoes its registration. Field stores are release so a reader
    // that observes any new field value is guaranteed to observe the tag
    // change on its recheck.
    const std::uint32_t t0 = target->tag.load(std::memory_order_acquire);
    target->tag.store(t0 + 1, std::memory_order_seq_cst);
    if (target != unclaimed &&
        target->readers.load(std::memory_order_seq_cst) != 0) {
      target->tag.store(t0 + 2, std::memory_order_release);  // revived; rescan
      continue;
    }
    target->readers.store(0, std::memory_order_release);
    target->writer.store(0, std::memory_order_release);
    target->line.store(line, std::memory_order_release);
    target->tag.store(t0 + 2, std::memory_order_release);
    return *target;
  }
}

bool HtmRuntime::fast_register_read(unsigned slot, std::uint64_t line) noexcept {
  Bucket& b = bucket_of(line);
  // Pinned for the whole lock-free window: the probe may walk overflow
  // chunks a concurrent locked_trim unlinks, and the undo below touches
  // the entry again after the identity re-check fails. Until the unpin,
  // no chunk retired under this (or a later) epoch can be freed.
  pin_epoch(slot);
  bool ok = false;
  std::uint32_t tag = 0;
  if (MonEntry* e = probe_entry(b, line, tag)) {
    const std::uint64_t bit = bit_of_slot(slot);
    e->readers.fetch_or(bit, std::memory_order_seq_cst);
    // Dekker pair with the locked write path: a registering writer stores
    // `writer` before sweeping `readers`; we set our reader bit before
    // loading `writer`. Both sides seq_cst, so at least one observes the
    // other — a concurrent conflicting writer either dooms us or is seen
    // here (and doomed on the locked path).
    const std::uint32_t w = e->writer.load(std::memory_order_seq_cst);
    if (e->tag.load(std::memory_order_seq_cst) != tag) {
      // The entry changed identity under us: the bit may sit in an entry
      // now monitoring a different line, where nothing would ever clear
      // it. Undo and re-register under the bucket lock.
      e->readers.fetch_and(~bit, std::memory_order_acq_rel);
    } else {
      // A conflicting writer must be doomed under the lock.
      ok = (w == 0 || w - 1 == slot);
    }
  }
  unpin_epoch(slot);
  return ok;
}

void HtmRuntime::register_read_line(unsigned slot, std::uint64_t line) {
  // Lock-free fast path: the line is already monitored with no conflicting
  // writer — read-read sharing, the steady state of a read-dominated mix,
  // never serializes on the bucket lock.
  if (fast_register_read(slot, line)) return;
  bool self_abort = false;
  {
    Bucket& b = bucket_of(line);
    LockGuard<Spinlock> g(b.lock);
    MonEntry& e = locked_find_or_claim(b, line);
    const std::uint32_t w = e.writer.load(std::memory_order_acquire);
    if (w != 0 && w - 1 != slot) {
      // Requester wins: doom the transaction holding the line in its write
      // set, unless it has latched its commit (then we must back off — its
      // publication of this very line may be in flight).
      if (try_doom(w - 1, AbortCode::kConflict, line)) {
        e.writer.store(0, std::memory_order_release);
      } else {
        self_abort = true;
      }
    }
    if (!self_abort) e.readers.fetch_or(bit_of_slot(slot), std::memory_order_seq_cst);
  }
  if (self_abort) throw TxAbort{AbortStatus{AbortCode::kConflict, 0, line}};
}

void HtmRuntime::register_write_line(unsigned slot, std::uint64_t line) {
  bool self_abort = false;
  {
    Bucket& b = bucket_of(line);
    LockGuard<Spinlock> g(b.lock);
    MonEntry& e = locked_find_or_claim(b, line);
    const std::uint32_t w = e.writer.load(std::memory_order_acquire);
    if (w != 0 && w - 1 != slot) {
      if (try_doom(w - 1, AbortCode::kConflict, line)) {
        e.writer.store(0, std::memory_order_release);
      } else {
        self_abort = true;
      }
    }
    if (!self_abort) {
      // Claim the line as writer *before* sweeping readers: this store and
      // the reader fast path's readers.fetch_or are a Dekker pair (both
      // seq_cst), so a reader registering concurrently either sees this
      // writer and takes the locked path, or its bit is visible to the
      // sweep below.
      e.writer.store(slot + 1, std::memory_order_seq_cst);
      std::uint64_t others =
          e.readers.load(std::memory_order_seq_cst) & ~bit_of_slot(slot);
      while (others != 0) {
        const unsigned r = static_cast<unsigned>(std::countr_zero(others));
        others &= others - 1;
        if (try_doom(r, AbortCode::kConflict, line)) {
          e.readers.fetch_and(~bit_of_slot(r), std::memory_order_acq_rel);
        }
        // A reader whose commit has latched is serialized before this
        // write; it publishes nothing for this line, so we may proceed.
      }
    }
  }
  if (self_abort) throw TxAbort{AbortStatus{AbortCode::kConflict, 0, line}};
}

void HtmRuntime::unregister_lines(unsigned slot) {
  Slot& s = slots_[slot];
  const std::uint64_t bit = bit_of_slot(slot);
  for (const std::uint64_t line : s.lines.touched()) {
    Bucket& b = bucket_of(line);
    if (!(s.lines.flags_of(line) & LineSet::kWrite)) {
      // Read-only line: clear the reader bit lock-free. While our bit is
      // set the entry cannot be retagged or trimmed (both require
      // readers == 0), so the probe either finds the line's entry or the
      // bit is already gone (cleared by a dooming writer after it doomed
      // us) — but chunks *before* ours in the chain may be trim
      // candidates, so the walk itself needs the epoch pin.
      pin_epoch(slot);
      std::uint32_t tag = 0;
      if (MonEntry* e = probe_entry(b, line, tag)) {
        e->readers.fetch_and(~bit, std::memory_order_acq_rel);
      }
      unpin_epoch(slot);
      continue;
    }
    LockGuard<Spinlock> g(b.lock);
    std::uint32_t tag = 0;
    MonEntry* e = probe_entry(b, line, tag);
    if (e != nullptr) {
      if (e->writer.load(std::memory_order_acquire) == slot + 1) {
        e->writer.store(0, std::memory_order_release);
      }
      e->readers.fetch_and(~bit, std::memory_order_acq_rel);
    }
    // This write-set entry just died; reclaim any fully-dead overflow
    // suffix while the bucket lock is already held.
    locked_trim(b);
  }
}

void HtmRuntime::begin(unsigned slot) {
  Slot& s = slots_[slot];
  assert(!s.active && "nested hardware transactions are not supported");
  s.active = true;
  s.wbuf.clear();
  s.lines.clear();
  s.assoc.clear();
  s.ticks = 0;
  // relaxed: active_/in_txn feed capacity heuristics and advisory gates
  // only; begins_ is a statistics counter. The protocol's ordering runs
  // through the doom word and the monitor-table locks, not these.
  active_.fetch_add(1, std::memory_order_relaxed);
  s.in_txn.store(true, std::memory_order_relaxed);
  begins_.fetch_add(1, std::memory_order_relaxed);
  // Opening the doom word is the linearization point at which others may
  // start aborting us; registrations only appear after this.
  s.doom.store(0, std::memory_order_release);
}

void HtmRuntime::commit(unsigned slot) {
  Slot& s = slots_[slot];
  // Commit-point faults fire before the doom latch: the transaction is
  // still doomable, so an injected abort unwinds like any hardware abort.
  PHTM_FAULT_HW(*this, FaultSite::kHwCommit, slot);
  // mc-yield: the doom-latch CAS decides the doom-vs-commit race, and the
  // subsequent write-buffer publication makes every speculative store
  // visible — a composite footprint, hence the null address (dependent with
  // everything under the explorer's relation).
  PHTM_MC_YIELD(kHwCommit, nullptr);
  std::uint64_t expect = 0;
  // Doom-latch edge, release side: the successful CAS below (release half
  // of acq_rel) is what makes every speculative state transition of this
  // transaction visible to threads that later observe the sentinel.
  PHTM_ANNOTATE_HAPPENS_BEFORE(&s.doom);
  if (!s.doom.compare_exchange_strong(expect, kCommitSentinel,
                                      std::memory_order_acq_rel)) {
    // Doomed before the commit could latch.
    throw TxAbort{AbortStatus{doom_code(expect), 0, doom_line(expect)}};
  }
  // From here on nobody can doom us; transactional accessors that meet our
  // registrations self-abort, and software accessors proceed knowing the
  // publication below is word-atomic.
  s.wbuf.publish();
  unregister_lines(slot);
  // relaxed: same advisory/statistics roles as in begin().
  s.in_txn.store(false, std::memory_order_relaxed);
  active_.fetch_sub(1, std::memory_order_relaxed);
  commits_.fetch_add(1, std::memory_order_relaxed);
  s.active = false;
}

void HtmRuntime::cleanup_aborted(unsigned slot) {
  Slot& s = slots_[slot];
  // Unregister while the doom word still carries a non-sentinel value:
  // doomers that race with this cleanup must see "already doomed" (and
  // proceed), not "committing" (which would make them self-abort). For
  // self-aborts the word may still be 0 — a late doom CAS then succeeds,
  // which is equally fine since we are aborting anyway.
  unregister_lines(slot);
  // Only after no monitor entry can lead to us, park the word.
  s.doom.store(kCommitSentinel, std::memory_order_release);
  s.wbuf.clear();
  // relaxed: same advisory/statistics roles as in begin().
  s.in_txn.store(false, std::memory_order_relaxed);
  active_.fetch_sub(1, std::memory_order_relaxed);
  s.active = false;
}

HtmResult HtmRuntime::attempt_impl(unsigned slot, BodyFn fn, void* ctx) {
  begin(slot);
  // Tracer txn guard: events emitted between here and the outcome are
  // buffered thread-locally and flushed after commit/cleanup, so the
  // speculative window never writes the trace ring (lint rule R7's
  // buffered-pre-commit / flushed-post-outcome contract).
  PHTM_TRACE_TXN_ENTER();
  HtmOps ops(*this, slot);
  try {
    PHTM_FAULT_HW(*this, FaultSite::kHwBegin, slot);
    fn(ctx, ops);
    commit(slot);
    PHTM_TRACE_TXN_EXIT();
    return HtmResult{true, {}};
  } catch (const TxAbort& a) {
    cleanup_aborted(slot);
    PHTM_TRACE_TXN_EXIT();
    return HtmResult{false, a.status};
  }
}

// --- strong-atomicity software accessors ---

void HtmRuntime::invalidate_line(std::uint64_t line, bool is_write) {
  for (;;) {
    bool writer_committing = false;
    {
      Bucket& b = bucket_of(line);
      LockGuard<Spinlock> g(b.lock);
      std::uint32_t tag = 0;
      MonEntry* found = probe_entry(b, line, tag);
      if (found == nullptr) return;
      MonEntry& e = *found;
      const std::uint32_t w = e.writer.load(std::memory_order_acquire);
      if (w != 0) {
        // Non-transactional access to a line in a transaction's write set
        // aborts the transaction (TSX strong atomicity).
        if (try_doom(w - 1, AbortCode::kConflict, line)) {
          e.writer.store(0, std::memory_order_release);
        } else {
          // The writer has latched its commit: its publication of this line
          // is in flight. Hardware commits are atomic, so *any* software
          // access must serialize after the publication completes — a read
          // could otherwise observe the pre-commit value of a line whose
          // transaction is already (indivisibly) committed, and a write
          // could be overwritten by the in-flight buffered value.
          writer_committing = true;
        }
      }
      if (!writer_committing && is_write) {
        std::uint64_t readers = e.readers.load(std::memory_order_seq_cst);
        while (readers != 0) {
          const unsigned r = static_cast<unsigned>(std::countr_zero(readers));
          readers &= readers - 1;
          if (try_doom(r, AbortCode::kConflict, line)) {
            e.readers.fetch_and(~bit_of_slot(r), std::memory_order_acq_rel);
          }
        }
      }
    }
    if (!writer_committing) return;
    // mc-yield: waiting out a latched committer's publication; progress
    // requires the committer to run, so this must deschedule under mc.
    PHTM_MC_SPIN(nullptr);
    // spin-waiver: bounded by the latched committer's publication, a
    // finite straight-line sequence with no locks — there is no
    // starvation mode to escalate out of at this layer.
    cpu_relax();  // wait for the committer to publish and unregister
  }
}

std::uint64_t HtmRuntime::nontx_load(const std::uint64_t* addr) {
  // mc-yield: software read of a protocol word; invalidation + load execute
  // as one atomic step after the scheduler resumes this thread.
  PHTM_MC_YIELD(kNtLoad, addr);
  // relaxed: advisory fast-out only. A stale zero skips the invalidation,
  // which is indistinguishable from this access having been ordered before
  // the transaction's first conflicting registration (see DESIGN.md).
  if (active_.load(std::memory_order_relaxed) != 0)
    invalidate_line(line_of(addr), /*is_write=*/false);
  return __atomic_load_n(addr, __ATOMIC_ACQUIRE);
}

void HtmRuntime::nontx_store(std::uint64_t* addr, std::uint64_t val) {
  // mc-yield: software store to a protocol word (aborts conflicting
  // hardware transactions; orders against validators and readers).
  PHTM_MC_YIELD(kNtStore, addr);
  // relaxed: advisory fast-out only. A stale zero skips the invalidation,
  // which is indistinguishable from this access having been ordered before
  // the transaction's first conflicting registration (see DESIGN.md).
  if (active_.load(std::memory_order_relaxed) != 0)
    invalidate_line(line_of(addr), /*is_write=*/true);
  __atomic_store_n(addr, val, __ATOMIC_RELEASE);
}

bool HtmRuntime::nontx_cas(std::uint64_t* addr, std::uint64_t expect,
                           std::uint64_t desired) {
  // mc-yield: global-lock acquisition and doom-CAS-shaped software RMWs
  // race against every subscriber of the word.
  PHTM_MC_YIELD(kNtRmw, addr);
  // relaxed: advisory fast-out only. A stale zero skips the invalidation,
  // which is indistinguishable from this access having been ordered before
  // the transaction's first conflicting registration (see DESIGN.md).
  if (active_.load(std::memory_order_relaxed) != 0)
    invalidate_line(line_of(addr), /*is_write=*/true);
  return __atomic_compare_exchange_n(addr, &expect, desired, false,
                                     __ATOMIC_ACQ_REL, __ATOMIC_ACQUIRE);
}

std::uint64_t HtmRuntime::nontx_fetch_add(std::uint64_t* addr, std::uint64_t delta) {
  // mc-yield: timestamp reservation / active_tx population RMW — the
  // paper's "atomic" block, raced by fast-path subscribers.
  PHTM_MC_YIELD(kNtRmw, addr);
  // relaxed: advisory fast-out only. A stale zero skips the invalidation,
  // which is indistinguishable from this access having been ordered before
  // the transaction's first conflicting registration (see DESIGN.md).
  if (active_.load(std::memory_order_relaxed) != 0)
    invalidate_line(line_of(addr), /*is_write=*/true);
  return __atomic_fetch_add(addr, delta, __ATOMIC_ACQ_REL);
}

std::uint64_t HtmRuntime::nontx_fetch_or(std::uint64_t* addr, std::uint64_t bits) {
  // mc-yield: software-side lock-table bit set (write-locks announce).
  PHTM_MC_YIELD(kNtRmw, addr);
  // relaxed: advisory fast-out only. A stale zero skips the invalidation,
  // which is indistinguishable from this access having been ordered before
  // the transaction's first conflicting registration (see DESIGN.md).
  if (active_.load(std::memory_order_relaxed) != 0)
    invalidate_line(line_of(addr), /*is_write=*/true);
  return __atomic_fetch_or(addr, bits, __ATOMIC_ACQ_REL);
}

std::uint64_t HtmRuntime::nontx_fetch_and(std::uint64_t* addr, std::uint64_t bits) {
  // mc-yield: software-side lock-table bit clear (write-locks release).
  PHTM_MC_YIELD(kNtRmw, addr);
  // relaxed: advisory fast-out only. A stale zero skips the invalidation,
  // which is indistinguishable from this access having been ordered before
  // the transaction's first conflicting registration (see DESIGN.md).
  if (active_.load(std::memory_order_relaxed) != 0)
    invalidate_line(line_of(addr), /*is_write=*/true);
  return __atomic_fetch_and(addr, bits, __ATOMIC_ACQ_REL);
}

// --- HtmOps ---

std::uint64_t HtmOps::read(const std::uint64_t* addr) {
  // mc-yield: transactional load — the doom check, read-set registration
  // (which may doom a conflicting writer) and the load itself form one
  // atomic step, exactly as a coherence transaction serializes on hardware.
  PHTM_MC_YIELD(kHwRead, addr);
  rt_.check_doomed(slot_);
  PHTM_FAULT_HW(rt_, FaultSite::kHwAccess, slot_);
  Slot& s = rt_.slots_[slot_];
  std::uint64_t v;
  if (s.wbuf.get(addr, v)) {
    // Own speculative write: served from L1, no new coherence traffic.
    rt_.tick(slot_, 1);
    return v;
  }
  const std::uint64_t line = line_of(addr);
  const std::uint8_t prev = s.lines.add(line, LineSet::kRead);
  if (prev == 0) {
    // First touch of this line: model read-capacity before claiming it.
    if (s.lines.read_lines() > rt_.effective_read_cap(slot_))
      throw TxAbort{AbortStatus{AbortCode::kCapacity, 0, line}};
    rt_.register_read_line(slot_, line);
  }
  // If the line was already in our write set we own it as writer; no
  // monitor update is needed for reading another word of it.
  v = __atomic_load_n(addr, __ATOMIC_ACQUIRE);
  rt_.tick(slot_, 1);
  return v;
}

void HtmOps::subscribe(const std::uint64_t* addr) {
  // mc-yield: read-set registration; dooms a conflicting writer.
  PHTM_MC_YIELD(kHwSubscribe, addr);
  rt_.check_doomed(slot_);
  PHTM_FAULT_HW(rt_, FaultSite::kHwAccess, slot_);
  Slot& s = rt_.slots_[slot_];
  const std::uint64_t line = line_of(addr);
  const std::uint8_t prev = s.lines.add(line, LineSet::kRead);
  if (prev == 0) {
    if (s.lines.read_lines() > rt_.effective_read_cap(slot_))
      throw TxAbort{AbortStatus{AbortCode::kCapacity, 0, line}};
    rt_.register_read_line(slot_, line);
  }
  rt_.tick(slot_, 1);
}

void HtmOps::write(std::uint64_t* addr, std::uint64_t val) {
  // mc-yield: transactional store — write-set registration dooms readers
  // and writers of the line even though the value stays buffered.
  PHTM_MC_YIELD(kHwWrite, addr);
  rt_.check_doomed(slot_);
  PHTM_FAULT_HW(rt_, FaultSite::kHwAccess, slot_);
  Slot& s = rt_.slots_[slot_];
  const std::uint64_t line = line_of(addr);
  const std::uint8_t prev = s.lines.add(line, LineSet::kWrite);
  if (!(prev & LineSet::kWrite)) {
    // First write to this line: it must fit the L1 model as a dirty line.
    if (!s.assoc.add_written_line(line) ||
        s.lines.write_lines() > rt_.effective_write_cap(slot_))
      throw TxAbort{AbortStatus{AbortCode::kCapacity, 0, line}};
    rt_.register_write_line(slot_, line);
  }
  s.wbuf.put(addr, val);
  rt_.tick(slot_, 1);
}

void HtmOps::work(std::uint64_t n) {
  rt_.check_doomed(slot_);
  rt_.tick(slot_, n);
  burn_work(n);
}

void HtmOps::xabort(std::uint32_t code) {
  throw TxAbort{AbortStatus{AbortCode::kExplicit, code, 0}};
}

void burn_work(std::uint64_t n) {
  // Register-only dependent chain: ~1ns per unit, linear in n. The single
  // volatile store keeps the optimizer honest without putting memory
  // traffic inside the loop (which would make the per-unit cost depend on
  // store-forwarding behavior and break calibration).
  std::uint64_t x = n + 1;
  for (std::uint64_t i = 0; i < n; ++i) x = (x ^ i) + (x >> 7);
  volatile std::uint64_t sink = x;
  (void)sink;
}

}  // namespace phtm::sim
