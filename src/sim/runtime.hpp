// Simulated best-effort hardware transactional memory.
//
// The runtime gives every algorithm in this repository the same RTM-shaped
// contract real TSX gives PART-HTM:
//
//   - eager, cache-line-granular conflict detection ("requester wins": the
//     transaction that receives the conflicting coherence request is the
//     one that aborts, as on Intel TSX);
//   - speculative writes are invisible until commit (private write buffer);
//   - no commit guarantee: capacity, duration and asynchronous-event aborts
//     per the HtmConfig resource model;
//   - strong atomicity: *software* accesses that go through the nontx_*
//     helpers abort conflicting hardware transactions, exactly as
//     non-transactional coherence traffic does on real hardware. All
//     software sides of the TM protocols in this repo use these helpers.
//
// Usage:
//     HtmRuntime rt(HtmConfig::haswell4c8t());
//     HtmRuntime::Thread th(rt);               // one per OS thread
//     HtmResult r = rt.attempt(th, [&](HtmOps& ops) {
//       auto v = ops.read(&x);
//       ops.write(&y, v + 1);
//     });
//     if (!r.committed) { /* inspect r.abort */ }
//
// Aborts unwind via an internal exception; user code must be exception
// neutral inside the body (RAII only, no catching of TxAbort).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/abort.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "sim/lineset.hpp"
#include "sim/writebuf.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace phtm::sim {

class HtmRuntime;
class HtmOps;

struct HtmResult {
  bool committed = false;
  AbortStatus abort{};
};

/// Per-transaction state of one hardware-thread slot. At most 64 slots per
/// runtime (reader bitmaps are one word).
struct alignas(kCacheLineBytes) Slot {
  // 0 = doomable (running); packed code = doomed; kCommitSentinel = latched
  // for commit or idle. Doomers CAS 0 -> packed; commit CASes 0 -> sentinel.
  std::atomic<std::uint64_t> doom{kCommitSentinel};
  std::atomic<bool> in_txn{false};
  // Epoch announcement for monitor-table chunk reclamation: 0 = not inside
  // a lock-free bucket-chain traversal; otherwise the global mon_epoch_
  // value this slot pinned before traversing without the bucket lock. A
  // nonzero lagging announcement blocks epoch advance, which keeps every
  // retired chunk this traversal could still reference unreclaimed.
  std::atomic<std::uint64_t> reclaim_epoch{0};

  // Private (owner-thread-only) transaction state.
  WriteBuf wbuf;
  LineSet lines;
  AssocModel assoc;
  std::uint64_t ticks = 0;
  Rng rng;
  bool active = false;  // owner-local "inside attempt" flag (assertions)
};

/// Simulated best-effort HTM device; one per experiment.
class HtmRuntime {
 public:
  explicit HtmRuntime(HtmConfig cfg = HtmConfig{});
  ~HtmRuntime();

  HtmRuntime(const HtmRuntime&) = delete;
  HtmRuntime& operator=(const HtmRuntime&) = delete;

  /// RAII registration of the calling OS thread; holds a slot id.
  class Thread {
   public:
    explicit Thread(HtmRuntime& rt) : rt_(rt), slot_(rt.acquire_slot()) {}
    ~Thread() { rt_.release_slot(slot_); }
    Thread(const Thread&) = delete;
    Thread& operator=(const Thread&) = delete;

    unsigned slot() const noexcept { return slot_; }
    HtmRuntime& runtime() const noexcept { return rt_; }

   private:
    HtmRuntime& rt_;
    unsigned slot_;
  };

  /// Run `body` as one hardware attempt. Returns commit/abort status; never
  /// throws TxAbort to the caller.
  template <typename F>
  HtmResult attempt(Thread& th, F&& body) {
    using Fn = std::remove_reference_t<F>;
    return attempt_impl(
        th.slot(), [](void* f, HtmOps& ops) { (*static_cast<Fn*>(f))(ops); },
        const_cast<void*>(static_cast<const void*>(&body)));
  }

  // --- strong-atomicity software accessors (see header comment) ---
  std::uint64_t nontx_load(const std::uint64_t* addr);
  void nontx_store(std::uint64_t* addr, std::uint64_t val);
  bool nontx_cas(std::uint64_t* addr, std::uint64_t expect, std::uint64_t desired);
  std::uint64_t nontx_fetch_add(std::uint64_t* addr, std::uint64_t delta);
  std::uint64_t nontx_fetch_or(std::uint64_t* addr, std::uint64_t bits);
  std::uint64_t nontx_fetch_and(std::uint64_t* addr, std::uint64_t bits);

  const HtmConfig& config() const noexcept { return cfg_; }

  /// Hardware transactions currently executing (drives the shared-cache
  /// read-budget model).
  unsigned active_txns() const noexcept {
    // relaxed: advisory population count; callers tolerate staleness.
    return active_.load(std::memory_order_relaxed);
  }

  // Debug/test counters.
  // relaxed: monotonic statistics; read for reporting only.
  std::uint64_t total_begins() const noexcept { return begins_.load(std::memory_order_relaxed); }
  std::uint64_t total_commits() const noexcept { return commits_.load(std::memory_order_relaxed); }

  // Monitor-table chunk reclamation introspection (tests; DESIGN.md
  // "Sharded commit pipeline", reclamation epochs).
  // relaxed: monotonic statistics; read for reporting only.
  std::uint64_t mon_chunks_allocated() const noexcept {
    return mon_chunks_allocated_.load(std::memory_order_relaxed);
  }
  std::uint64_t mon_chunks_freed() const noexcept {
    return mon_chunks_freed_.load(std::memory_order_relaxed);
  }
  /// Current reclamation epoch (starts at 1; advances only when no slot's
  /// announcement lags behind it).
  std::uint64_t mon_epoch() const noexcept {
    return mon_epoch_.load(std::memory_order_seq_cst);
  }
  /// Advance the reclamation epoch as far as announcements allow and free
  /// every retired chunk whose grace period has elapsed. Safe concurrently
  /// (it may then free less); tests call it from quiescence for an exact
  /// allocated == freed + live accounting.
  void mon_quiesce();
  /// Monitor-table bucket a line maps to (tests craft colliding lines).
  static unsigned bucket_index(std::uint64_t line) noexcept;

#if defined(PHTM_FAULTS) && PHTM_FAULTS
  /// Fault-injection engine, chaos builds only (nullptr when the config's
  /// plan is disabled).  Protocol-level hooks in core consult it directly;
  /// hardware-level sites are injected inside this runtime.
  chaos::FaultEngine* fault_engine() noexcept { return fault_.get(); }
#endif

 private:
  friend class HtmOps;

  /// One monitored cache line. The entry's *identity* (`line`) is published
  /// through `tag`, a seqlock: 0 = never claimed, odd = claim/retag in
  /// flight (bucket lock held), even >= 2 = stable. Readers register on the
  /// reader bitmap lock-free (fetch_or) after validating the identity and
  /// revalidate `tag` afterwards; every identity change and every writer
  /// mutation holds the bucket lock. Cache-line aligned: entries are
  /// RMW-shared across threads and must not false-share (lint R2).
  struct alignas(kCacheLineBytes) MonEntry {
    std::atomic<std::uint32_t> tag{0};
    std::atomic<std::uint32_t> writer{0};   // slot + 1; 0 = none
    std::atomic<std::uint64_t> line{0};
    std::atomic<std::uint64_t> readers{0};  // bitmap over slots
  };
  /// Entry storage grows by chaining fixed chunks so entry addresses stay
  /// stable while any traversal can reach them — lock-free readers may
  /// hold an entry pointer across a concurrent retag and rely on the tag
  /// seqlock for identity; chunk *memory* is protected by epoch-based
  /// reclamation (pin_epoch / locked_trim below): a chunk is deleted only
  /// two epoch advances after it was unlinked, and advances wait out every
  /// pinned traversal. Claimed entries form a prefix of the chain (claims
  /// take the first unclaimed slot; retags reuse dead entries in place),
  /// so scans stop at the first tag == 0.
  struct alignas(kCacheLineBytes) MonChunk {
    static constexpr unsigned kEntries = 4;
    MonEntry entries[kEntries];
    std::atomic<MonChunk*> next{nullptr};
  };
  struct alignas(kCacheLineBytes) Bucket {
    Spinlock lock;
    MonChunk head;
  };

  static constexpr unsigned kMaxSlots = 64;
  static constexpr unsigned kBucketCount = 4096;  // power of two

  using BodyFn = void (*)(void*, HtmOps&);
  HtmResult attempt_impl(unsigned slot, BodyFn fn, void* ctx);

  unsigned acquire_slot();
  void release_slot(unsigned slot);

  void begin(unsigned slot);
  void commit(unsigned slot);           // throws TxAbort if doomed
  void cleanup_aborted(unsigned slot);  // releases registrations after doom

  // Monitor-table operations (called with no bucket lock held; read
  // registration and read-only unregistration are lock-free in the common
  // case, everything else locks exactly one bucket internally). They throw
  // TxAbort on self-abort.
  void register_read_line(unsigned slot, std::uint64_t line);
  void register_write_line(unsigned slot, std::uint64_t line);
  void unregister_lines(unsigned slot);

  /// Scan `b` for a stable entry monitoring `line`. Lock-free; returns
  /// nullptr on miss or when the matching entry's identity is in flight.
  /// On hit, `tag_out` holds the even tag the identity was validated under.
  MonEntry* probe_entry(Bucket& b, std::uint64_t line,
                        std::uint32_t& tag_out) noexcept;
  /// Find the entry for `line`, claiming or retagging a slot (possibly in a
  /// freshly chained chunk) if the line is not monitored. Bucket lock held.
  MonEntry& locked_find_or_claim(Bucket& b, std::uint64_t line)
      PHTM_REQUIRES(b.lock);
  /// Lock-free read registration; true on success, false = take the locked
  /// path (first touch, identity churn, or a conflicting writer to doom).
  bool fast_register_read(unsigned slot, std::uint64_t line) noexcept;

  // Epoch-based reclamation of overflow chunks (3-epoch EBR). Lock-free
  // traversals pin the current epoch in their slot's announcement;
  // locked_trim unlinks fully-dead suffix chunks and retires them under
  // the current epoch; a retired chunk is deleted only after the epoch
  // advanced twice past its stamp (try_advance_epoch refuses to advance
  // while any announcement lags), i.e. after every traversal that could
  // still hold a pointer into it has unpinned.
  void pin_epoch(unsigned slot) noexcept;
  void unpin_epoch(unsigned slot) noexcept;
  /// Unlink and retire the longest fully-dead suffix of `b`'s overflow
  /// chain (claimed entries stay a prefix: only whole dead tails go).
  void locked_trim(Bucket& b) PHTM_REQUIRES(b.lock);
  /// One epoch advance; false when a lagging announcement (or a raced
  /// advance) blocks it.
  bool try_advance_epoch() noexcept;
  /// Delete retired chunks whose stamp is >= 2 epochs old.
  void free_retired();

  /// Doom `victim` with cause `code` on `line`. Returns false iff the victim
  /// has latched its commit and can no longer be doomed.
  bool try_doom(unsigned victim, AbortCode code, std::uint64_t line);

  void check_doomed(unsigned slot);
  void tick(unsigned slot, std::uint64_t n);

  unsigned effective_write_cap(unsigned slot) const;
  unsigned effective_read_cap(unsigned slot) const;

#if defined(PHTM_FAULTS) && PHTM_FAULTS
  /// Consult the engine at a hardware-level site; may throw TxAbort
  /// (spurious aborts, stall-exhausted duration) or doom other slots.
  void fault_hw_point(FaultSite site, unsigned slot);
#endif

  Bucket& bucket_of(std::uint64_t line) noexcept;
  /// Doom every conflicting transaction for a software access.
  void invalidate_line(std::uint64_t line, bool is_write);

  HtmConfig cfg_;
  std::unique_ptr<Slot[]> slots_;
  std::unique_ptr<Bucket[]> buckets_;

  Spinlock slot_alloc_lock_;
  std::uint64_t slot_used_ PHTM_GUARDED_BY(slot_alloc_lock_) = 0;  // bitmap

  // Each counter owns a cache line: active_ is read on every nontx_*
  // access while begins_/commits_ are bumped once per transaction —
  // co-locating them would put a store-invalidation on the hottest
  // software-side read path.
  alignas(kCacheLineBytes) std::atomic<unsigned> active_{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> begins_{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> commits_{0};

  // --- monitor-table chunk reclamation (see pin_epoch above) ---
  struct RetiredChunk {
    MonChunk* chunk;
    std::uint64_t epoch;  // mon_epoch_ value at retire time
  };
  // Own cache line: read (seq_cst) by every pin on the lock-free read
  // fast path; sharing it with the retire list would put the retire
  // lock's churn on that path.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> mon_epoch_{1};
  Spinlock retire_lock_;
  std::vector<RetiredChunk> retired_ PHTM_GUARDED_BY(retire_lock_);
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> mon_chunks_allocated_{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> mon_chunks_freed_{0};

#if defined(PHTM_FAULTS) && PHTM_FAULTS
  // Chaos flavor only: the member itself is compiled out elsewhere so the
  // unique_ptr's destructor cannot pull phtm::chaos symbols into plain
  // builds (library flavors never mix in one binary — see
  // src/core/CMakeLists.txt and the fault_compiled_out_symbols test).
  std::unique_ptr<chaos::FaultEngine> fault_;
#endif
};

/// Per-access operations available inside a hardware attempt.
class HtmOps {
 public:
  HtmOps(HtmRuntime& rt, unsigned slot) : rt_(rt), slot_(slot) {}

  /// Transactional word read (monitored).
  std::uint64_t read(const std::uint64_t* addr);

  /// Add `addr`'s cache line to the read set without returning a value
  /// ("subscribe"). After subscribing, the caller may read any word of the
  /// line with plain atomic loads: conflict semantics are identical to
  /// read() — a latched committer blocks registration until its publication
  /// completes, and later writers doom this transaction — but the simulator
  /// charges the line once instead of per word, matching hardware (where
  /// monitoring a resident line is free).
  void subscribe(const std::uint64_t* addr);

  /// Transactional word write (buffered until commit, monitored).
  void write(std::uint64_t* addr, std::uint64_t val);

  /// In-transaction computation: costs `n` ticks against the duration
  /// budget and burns a proportional number of host cycles.
  void work(std::uint64_t n);

  /// Explicit abort with a user code (maps to _xabort(imm8)).
  [[noreturn]] void xabort(std::uint32_t code);

  unsigned slot() const noexcept { return slot_; }

 private:
  HtmRuntime& rt_;
  unsigned slot_;
};

/// Burn roughly `n` units of CPU work outside any transaction (used by the
/// software framework to run de-transactionalized computation).
void burn_work(std::uint64_t n);

}  // namespace phtm::sim
