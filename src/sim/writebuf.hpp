// Private write buffer of a simulated hardware transaction.
//
// Real HTM isolates speculative stores in L1 until commit; the simulator
// buffers word writes here and publishes them (in program order) only at
// commit, so concurrent software never observes a live transaction's
// writes — the property PART-HTM's software framework relies on.
//
// clear() is O(1) via epoch-stamped slots (see lineset.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "util/hash.hpp"

namespace phtm::sim {

class WriteBuf {
 public:
  explicit WriteBuf(std::size_t initial_capacity = 1024) { reset(initial_capacity); }

  void clear() noexcept {
    if (++epoch_ == 0) {
      std::fill(epochs_.begin(), epochs_.end(), 0u);
      epoch_ = 1;
    }
    cells_.clear();
  }

  /// Buffer `val` for `addr` (8-byte-aligned word). Last write wins.
  void put(std::uint64_t* addr, std::uint64_t val) {
    if ((cells_.size() + 1) * 10 >= slots_.size() * 7) grow();
    std::size_t i = phtm::hash_addr(addr) & mask_;
    for (;;) {
      if (epochs_[i] != epoch_) {
        slots_[i] = static_cast<std::uint32_t>(cells_.size());
        epochs_[i] = epoch_;
        // span-waiver: the write buffer *is* the simulated transactional
        // store; cells_ retains capacity across reset(), so steady-state
        // put is allocation-free host bookkeeping.
        cells_.push_back({addr, val});
        return;
      }
      if (cells_[slots_[i]].addr == addr) {
        cells_[slots_[i]].val = val;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Look up a buffered value; true if found.
  bool get(const std::uint64_t* addr, std::uint64_t& out) const noexcept {
    std::size_t i = phtm::hash_addr(addr) & mask_;
    for (;;) {
      if (epochs_[i] != epoch_) return false;
      if (cells_[slots_[i]].addr == addr) {
        out = cells_[slots_[i]].val;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Publish all buffered writes to memory in first-write order with
  /// release semantics.
  void publish() const noexcept {
    for (const auto& c : cells_) __atomic_store_n(c.addr, c.val, __ATOMIC_RELEASE);
  }

  std::size_t size() const noexcept { return cells_.size(); }
  bool empty() const noexcept { return cells_.empty(); }

  struct Cell {
    std::uint64_t* addr;
    std::uint64_t val;
  };
  const std::vector<Cell>& cells() const noexcept { return cells_; }

 private:
  void reset(std::size_t cap) {
    std::size_t n = 16;
    while (n < cap) n <<= 1;
    slots_.assign(n, 0);
    epochs_.assign(n, 0);
    mask_ = n - 1;
    epoch_ = 1;
    cells_.clear();
  }

  void grow() {
    const std::size_t n = slots_.size() * 2;
    // span-waiver: simulator-table growth (cold, amortized), host-side only.
    slots_.assign(n, 0);
    epochs_.assign(n, 0);
    mask_ = n - 1;
    for (std::uint32_t idx = 0; idx < cells_.size(); ++idx) {
      std::size_t i = phtm::hash_addr(cells_[idx].addr) & mask_;
      while (epochs_[i] == epoch_) i = (i + 1) & mask_;
      slots_[i] = idx;
      epochs_[i] = epoch_;
    }
  }

  std::vector<std::uint32_t> slots_;
  std::vector<std::uint32_t> epochs_;
  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  std::uint32_t epoch_ = 1;
};

}  // namespace phtm::sim
