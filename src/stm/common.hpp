// Shared pieces of the software TM baselines.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/runtime.hpp"
#include "tm/api.hpp"
#include "util/stats.hpp"

namespace phtm::stm {

/// Software-side abort: unwinds the transaction body to the backend's retry
/// loop. Distinct from sim::TxAbort (which never escapes the simulator).
struct StmAbort {
  AbortCause cause = AbortCause::kConflict;
};

/// Value-based read log (NOrec-style validation).
class ReadLog {
 public:
  struct Entry {
    const std::uint64_t* addr;
    std::uint64_t val;
  };

  void clear() noexcept { entries_.clear(); }
  void push(const std::uint64_t* addr, std::uint64_t val) {
    // span-waiver: the software read log is the partitioned path's own
    // metadata (paper Sec. 5.1); entries_ keeps its capacity across
    // clear(), so steady-state push does not allocate.
    entries_.push_back({addr, val});
  }
  const std::vector<Entry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
};

/// Map a simulator abort cause onto the stats taxonomy.
inline AbortCause to_cause(const sim::AbortStatus& s) {
  switch (s.code) {
    case sim::AbortCode::kConflict: return AbortCause::kConflict;
    case sim::AbortCode::kCapacity: return AbortCause::kCapacity;
    case sim::AbortCode::kExplicit: return AbortCause::kExplicit;
    default: return AbortCause::kOther;
  }
}

/// Ctx adapter running every access through a live hardware transaction.
class HtmCtx final : public tm::Ctx {
 public:
  explicit HtmCtx(sim::HtmOps& ops) : ops_(ops) {}

  std::uint64_t read(const std::uint64_t* addr) override { return ops_.read(addr); }
  void write(std::uint64_t* addr, std::uint64_t val) override {
    ops_.write(addr, val);
  }
  void work(std::uint64_t n) override { ops_.work(n); }

 private:
  sim::HtmOps& ops_;
};

/// Explicit-abort codes used by the hybrid schemes in this repo.
enum XAbortCode : std::uint32_t {
  kXGlockHeld = 1,   ///< global-lock subscription fired
  kXSeqlockHeld,     ///< NOrec clock held by a software committer
  kXLocked,          ///< PART-HTM pre-commit validation found a lock
  kXLockedByOther,   ///< PART-HTM-O encounter-time lock hit
};

}  // namespace phtm::stm
