// Hardware Lock Elision on the simulated best-effort HTM (paper Sec. 2).
//
// HLE wraps an existing lock-based critical section: the section first runs
// as a hardware transaction that merely *subscribes* the lock word (readers
// of the elided lock see it free), and only if the speculative trial fails
// is the lock actually acquired. Unlike RTM, HLE retries exactly once —
// the ISA falls back to the real lock on the first abort.
//
// PartHleMutex implements the extension the paper points out is simple:
// when HLE's single speculative trial fails *for resource reasons*, run the
// section through PART-HTM's partitioned machinery instead of taking the
// lock (the section body must then be segment-aware, i.e. a tm::Txn).
#pragma once

#include "core/part_htm.hpp"
#include "stm/common.hpp"
#include "tm/direct.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace phtm::stm {

/// Classic HLE: one speculative trial, then the real lock.
class HleMutex {
 public:
  explicit HleMutex(sim::HtmRuntime& rt) : rt_(rt) {}

  /// Run `body(tm::Ctx&)` as an elided critical section.
  /// Returns true iff the execution was elided (committed in hardware).
  template <typename F>
  bool critical(sim::HtmRuntime::Thread& th, F&& body) {
    // Lemming guard: never speculate while the lock is held.
    // spin-waiver: competitor backend modeling plain HLE, which has no
    // fairness layer; the holder runs one finite uninstrumented section
    // and releases unconditionally.
    while (rt_.nontx_load(&lock_.value) != 0) cpu_relax();
    const sim::HtmResult r = rt_.attempt(th, [&](sim::HtmOps& ops) {
      if (ops.read(&lock_.value) != 0) ops.xabort(kXGlockHeld);
      HtmCtx ctx(ops);
      body(static_cast<tm::Ctx&>(ctx));
    });
    if (r.committed) return true;
    // Single trial failed: take the lock for real. Acquisition aborts every
    // still-speculating subscriber (strong atomicity), as HLE requires.
    // spin-waiver: unfair CAS acquire is HLE's actual fallback semantics —
    // this backend exists to measure it, not to fix it.
    while (!rt_.nontx_cas(&lock_.value, 0, 1)) cpu_relax();
    tm::DirectCtx ctx;
    body(static_cast<tm::Ctx&>(ctx));
    rt_.nontx_store(&lock_.value, 0);
    return false;
  }

  bool locked() const {
    // raw-atomic: test-only observer of the lock word; a snapshot needs no
    // strong-atomicity invalidation.
    return __atomic_load_n(&lock_.value, __ATOMIC_ACQUIRE) != 0;
  }

 private:
  sim::HtmRuntime& rt_;
  mutable Padded<std::uint64_t> lock_{0};
};

/// PART-HTM applied to lock elision: speculative trial -> partitioned
/// execution on resource failure -> real lock only as the last resort.
/// Sections are expressed as tm::Txn so the partitioned path can split
/// them; statistics land in the caller's Worker like any backend.
class PartHleMutex {
 public:
  PartHleMutex(sim::HtmRuntime& rt, const tm::BackendConfig& cfg = {})
      : backend_(rt, hle_config(cfg), core::PartHtmBackend::Mode::kSerializable,
                 /*no_fast=*/false) {}

  /// One elided critical section; commits exactly once via fast (elided) /
  /// partitioned / lock path.
  void critical(tm::Worker& w, const tm::Txn& section) {
    backend_.execute(w, section);
  }

  std::unique_ptr<tm::Worker> make_worker(unsigned tid) {
    return backend_.make_worker(tid);
  }

 private:
  static tm::BackendConfig hle_config(tm::BackendConfig cfg) {
    cfg.htm_retries = 1;  // HLE's single speculative trial
    return cfg;
  }
  core::PartHtmBackend backend_;
};

}  // namespace phtm::stm
