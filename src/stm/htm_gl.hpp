// HTM-GL: best-effort HTM with the default global-lock fallback path.
//
// The paper's baseline competitor: each transaction is attempted as a
// single hardware transaction up to `htm_retries` times (subscribing the
// global lock at begin), then falls back to mutual exclusion under the
// global lock. Avoids the lemming effect by never starting a hardware
// attempt while the lock is held [38].
#pragma once

#include "obs/trace.hpp"
#include "stm/common.hpp"
#include "tm/backend.hpp"
#include "tm/direct.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace phtm::stm {

class HtmGlBackend final : public tm::Backend {
 public:
  HtmGlBackend(sim::HtmRuntime& rt, const tm::BackendConfig& cfg)
      : rt_(rt), retries_(cfg.htm_retries) {}

  const char* name() const override { return "HTM-GL"; }

  std::unique_ptr<tm::Worker> make_worker(unsigned tid) override {
    return std::make_unique<W>(tid, rt_);
  }

  void execute(tm::Worker& wb, const tm::Txn& txn) override {
    W& w = static_cast<W&>(wb);
    PHTM_TRACE_TX_BEGIN();
    if (!txn.irrevocable) {
      w.snap.save(txn);
      Backoff backoff;
      PHTM_TRACE_PATH(CommitPath::kHtm);
      for (unsigned attempt = 0; attempt < retries_; ++attempt) {
        // Lemming-effect avoidance: do not even begin while the lock is held.
        // spin-waiver: HTM-GL is the paper's baseline with a deliberately
        // unfair global-lock fallback; each holder runs one finite
        // uninstrumented transaction and releases unconditionally.
        while (rt_.nontx_load(&glock_.value) != 0) cpu_relax();
        const sim::HtmResult r = rt_.attempt(w.th, [&](sim::HtmOps& ops) {
          if (ops.read(&glock_.value) != 0) ops.xabort(kXGlockHeld);
          HtmCtx ctx(ops);
          tm::run_all_segments(ctx, txn);
        });
        if (r.committed) {
          w.stats().record_commit(CommitPath::kHtm);
          PHTM_TRACE_TX_COMMIT(CommitPath::kHtm);
          return;
        }
        w.stats().record_abort(to_cause(r.abort));
        PHTM_TRACE_TX_ABORT(to_cause(r.abort), r.abort.xabort_code,
                            r.abort.conflict_line);
        w.snap.restore(txn);
        // The paper's configuration retries a fixed 5 times before falling
        // back, regardless of abort cause (Sec. 7).
        backoff.pause();
      }
    }
    // Fallback: single global lock, uninstrumented execution.
    PHTM_TRACE_PATH(CommitPath::kGlobalLock);
    // spin-waiver: unfair CAS acquire is the baseline's published design
    // (Sec. 7); PART-HTM's ticketed slow path is the fix under measurement.
    while (!rt_.nontx_cas(&glock_.value, 0, 1)) cpu_relax();
    tm::DirectCtx ctx(rt_);  // strong-atomicity routed (see DirectCtx)
    tm::run_all_segments(ctx, txn);
    rt_.nontx_store(&glock_.value, 0);
    w.stats().record_commit(CommitPath::kGlobalLock);
    PHTM_TRACE_TX_COMMIT(CommitPath::kGlobalLock);
  }

 private:
  struct W final : tm::Worker {
    W(unsigned tid, sim::HtmRuntime& rt) : Worker(tid), th(rt) {}
    sim::HtmRuntime::Thread th;
    tm::LocalsSnapshot snap;
  };

  sim::HtmRuntime& rt_;
  unsigned retries_;
  Padded<std::uint64_t> glock_{0};
};

}  // namespace phtm::stm
