// NOrec [Dalessandro et al., PPoPP'10]: single global sequence lock,
// value-based validation, lazy redo log, no ownership records.
//
// All memory traffic goes through the HTM runtime's strong-atomicity
// helpers so the same implementation doubles as the software side of the
// hybrid NOrecRH (where hardware transactions run concurrently). When no
// hardware transaction is active the helpers degrade to plain atomics.
#pragma once

#include "obs/trace.hpp"
#include "sim/writebuf.hpp"
#include "stm/common.hpp"
#include "tm/costs.hpp"
#include "tm/backend.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace phtm::stm {

class NorecBackend : public tm::Backend {
 public:
  explicit NorecBackend(sim::HtmRuntime& rt) : rt_(rt) {}

  const char* name() const override { return "NOrec"; }

  std::unique_ptr<tm::Worker> make_worker(unsigned tid) override {
    return std::make_unique<W>(tid);
  }

  void execute(tm::Worker& wb, const tm::Txn& txn) override {
    W& w = static_cast<W&>(wb);
    PHTM_TRACE_TX_BEGIN();
    PHTM_TRACE_PATH(CommitPath::kSoftware);
    Backoff backoff;
    for (;;) {
      w.snap.save(txn);
      if (try_once(w, txn)) {
        w.stats().record_commit(CommitPath::kSoftware);
        PHTM_TRACE_TX_COMMIT(CommitPath::kSoftware);
        return;
      }
      w.snap.restore(txn);
      backoff.pause();
    }
  }

 protected:
  struct W : tm::Worker {
    explicit W(unsigned tid) : Worker(tid) {}
    ReadLog rlog;
    sim::WriteBuf redo;
    tm::LocalsSnapshot snap;
    std::uint64_t start = 0;
  };

  class SoftCtx final : public tm::Ctx {
   public:
    SoftCtx(NorecBackend& b, W& w) : b_(b), w_(w) {}
    std::uint64_t read(const std::uint64_t* addr) override {
      sim::burn_work(tm::kStmAccessCost);  // calibration, see tm/costs.hpp
      return b_.tx_read(w_, addr);
    }
    void write(std::uint64_t* addr, std::uint64_t val) override {
      sim::burn_work(tm::kStmAccessCost);
      w_.redo.put(addr, val);
    }
    void work(std::uint64_t n) override { sim::burn_work(n); }
    // raw-atomic: uninstrumented escape hatch by contract (private scratch
    // only, see tm::Ctx::raw_read); NOrec runs no hardware transactions, so
    // there is no speculative writer to invalidate.
    std::uint64_t raw_read(const std::uint64_t* addr) override {
      sim::burn_work(tm::kRawAccessCost);
      return __atomic_load_n(addr, __ATOMIC_ACQUIRE);
    }
    void raw_write(std::uint64_t* addr, std::uint64_t val) override {
      sim::burn_work(tm::kRawAccessCost);
      // raw-atomic: see raw_read above.
      __atomic_store_n(addr, val, __ATOMIC_RELEASE);
    }

   private:
    NorecBackend& b_;
    W& w_;
  };

  /// One software attempt; false = aborted (stats recorded).
  bool try_once(W& w, const tm::Txn& txn) {
    w.rlog.clear();
    w.redo.clear();
    w.start = wait_even();
    try {
      SoftCtx ctx(*this, w);
      tm::run_all_segments(ctx, txn);
      software_commit(w);
      return true;
    } catch (const StmAbort& a) {
      w.stats().record_abort(a.cause);
      PHTM_TRACE_TX_ABORT(a.cause, 0, 0);
      return false;
    }
  }

  std::uint64_t wait_even() {
    for (;;) {
      const std::uint64_t s = rt_.nontx_load(&seq_.value);
      if ((s & 1) == 0) return s;
      // spin-waiver: seqlock wait — the committer holding the odd clock
      // runs a finite write-back and bumps it back to even unconditionally.
      cpu_relax();
    }
  }

  /// Re-validate the read log against memory; returns the (even) clock the
  /// validation is consistent with, or throws.
  std::uint64_t validate(W& w) {
    for (;;) {
      const std::uint64_t s = wait_even();
      bool ok = true;
      for (const auto& e : w.rlog.entries()) {
        if (rt_.nontx_load(e.addr) != e.val) {
          ok = false;
          break;
        }
      }
      if (rt_.nontx_load(&seq_.value) != s) continue;  // raced a committer
      if (!ok) throw StmAbort{AbortCause::kConflict};
      return s;
    }
  }

  std::uint64_t tx_read(W& w, const std::uint64_t* addr) {
    std::uint64_t v;
    if (w.redo.get(addr, v)) return v;
    v = rt_.nontx_load(addr);
    while (rt_.nontx_load(&seq_.value) != w.start) {
      w.start = validate(w);
      v = rt_.nontx_load(addr);
    }
    w.rlog.push(addr, v);
    return v;
  }

  virtual void software_commit(W& w) {
    if (w.redo.empty()) return;  // read-only commits are free
    while (!rt_.nontx_cas(&seq_.value, w.start, w.start + 1))
      w.start = validate(w);
    // Clock held (odd): write back and release.
    for (const auto& c : w.redo.cells()) rt_.nontx_store(c.addr, c.val);
    rt_.nontx_store(&seq_.value, w.start + 2);
  }

  sim::HtmRuntime& rt_;
  Padded<std::uint64_t> seq_{0};  ///< global sequence lock (even = free)
};

}  // namespace phtm::stm
