// NOrecRH — Reduced Hardware NOrec [Matveev & Shavit, TRANSACT'14].
//
// Hybrid TM: a transaction first runs entirely in hardware (subscribing
// NOrec's sequence lock, bumping it at commit so concurrent software
// readers revalidate), and after `htm_retries` failures it runs the NOrec
// software path whose *commit write-back executes as a small hardware
// transaction* — the "reduced hardware transaction" — publishing the write
// set atomically. If even the write-back does not fit in hardware, it
// degrades to a plain software write-back under the held clock, which is
// still safe.
#pragma once

#include "stm/norec.hpp"

namespace phtm::stm {

class NorecRhBackend final : public NorecBackend {
 public:
  NorecRhBackend(sim::HtmRuntime& rt, const tm::BackendConfig& cfg)
      : NorecBackend(rt), retries_(cfg.htm_retries) {}

  const char* name() const override { return "NOrecRH"; }

  std::unique_ptr<tm::Worker> make_worker(unsigned tid) override {
    return std::make_unique<Wh>(tid, rt_);
  }

  void execute(tm::Worker& wb, const tm::Txn& txn) override {
    Wh& w = static_cast<Wh&>(wb);
    PHTM_TRACE_TX_BEGIN();
    if (!txn.irrevocable) {
      w.snap.save(txn);
      Backoff backoff;
      PHTM_TRACE_PATH(CommitPath::kHtm);
      for (unsigned attempt = 0; attempt < retries_; ++attempt) {
        // Lemming guard.
        // spin-waiver: the odd clock is held only across a committer's
        // finite write-back, which restores it to even unconditionally.
        while (rt_.nontx_load(&seq_.value) & 1) cpu_relax();
        const sim::HtmResult r = rt_.attempt(w.th, [&](sim::HtmOps& ops) {
          const std::uint64_t s = ops.read(&seq_.value);
          if (s & 1) ops.xabort(kXSeqlockHeld);
          CountingHtmCtx ctx(ops);
          tm::run_all_segments(ctx, txn);
          // Writers bump the clock so software readers revalidate against
          // the values this commit publishes.
          if (ctx.wrote) ops.write(&seq_.value, s + 2);
        });
        if (r.committed) {
          w.stats().record_commit(CommitPath::kHtm);
          PHTM_TRACE_TX_COMMIT(CommitPath::kHtm);
          return;
        }
        w.stats().record_abort(to_cause(r.abort));
        PHTM_TRACE_TX_ABORT(to_cause(r.abort), r.abort.xabort_code,
                            r.abort.conflict_line);
        w.snap.restore(txn);
        backoff.pause();
      }
    }
    // Software phase (NOrec semantics, reduced-hardware commit).
    PHTM_TRACE_PATH(CommitPath::kSoftware);
    Backoff backoff;
    for (;;) {
      w.snap.save(txn);
      if (try_once(w, txn)) {
        w.stats().record_commit(CommitPath::kSoftware);
        PHTM_TRACE_TX_COMMIT(CommitPath::kSoftware);
        return;
      }
      w.snap.restore(txn);
      backoff.pause();
    }
  }

 private:
  struct Wh final : W {
    Wh(unsigned tid, sim::HtmRuntime& rt) : W(tid), th(rt) {}
    sim::HtmRuntime::Thread th;
  };

  class CountingHtmCtx final : public tm::Ctx {
   public:
    explicit CountingHtmCtx(sim::HtmOps& ops) : ops_(ops) {}
    std::uint64_t read(const std::uint64_t* addr) override { return ops_.read(addr); }
    void write(std::uint64_t* addr, std::uint64_t val) override {
      wrote = true;
      ops_.write(addr, val);
    }
    void work(std::uint64_t n) override { ops_.work(n); }
    bool wrote = false;

   private:
    sim::HtmOps& ops_;
  };

  void software_commit(W& wbase) override {
    Wh& w = static_cast<Wh&>(wbase);
    if (w.redo.empty()) return;
    while (!rt_.nontx_cas(&seq_.value, w.start, w.start + 1))
      w.start = validate(w);
    // Clock held: publish the redo log as one small hardware transaction.
    const sim::HtmResult r = rt_.attempt(w.th, [&](sim::HtmOps& ops) {
      // tmfoot: bound(512) — write-capacity-enforced: a redo log past
      // write_lines_cap cannot commit in HTM; the capacity abort lands in
      // the nontx software write-back below, which is equally correct.
      for (const auto& c : w.redo.cells()) ops.write(c.addr, c.val);
    });
    if (!r.committed) {
      // Fits-in-hardware is only an optimization; under the held clock a
      // software write-back is equally correct.
      for (const auto& c : w.redo.cells()) rt_.nontx_store(c.addr, c.val);
    }
    rt_.nontx_store(&seq_.value, w.start + 2);
  }

  unsigned retries_;
};

}  // namespace phtm::stm
