// RingSTM [Spear, Michael, von Praun — SPAA'08], single-writer variant.
//
// Commits serialize through a global timestamp; each writing commit
// publishes its Bloom write signature into a circular ring, and readers
// validate by intersecting their read signature with every ring entry that
// appeared since their start time. The paper's PART-HTM borrows exactly
// this ring (same size, same signatures), so this baseline shares the ring
// abstraction with src/core: the Signature type, the kBusy seqlock bit and
// the ValResult verdict taxonomy all come from core::GlobalRing — only the
// publication discipline differs (single-writer redo write-back here,
// HTM/eager-write publication there).
//
// Implementation notes (standard RingSTM subtleties):
//  - per-entry sequence numbers act as seqlocks: an entry is valid for
//    timestamp i only while seq == i; a writer reusing the slot first sets
//    seq = busy so validators detect rollover instead of reading torn
//    signatures;
//  - `last_complete` serializes write-back: a commit's redo stores begin
//    only after every logically earlier commit finished its own, so
//    overlapping commits can never interleave their stores (write-only
//    commits are mutually invisible to validation), and a transaction's
//    start time never covers a commit whose write-back is still in flight
//    (which could otherwise serve stale reads).
#pragma once

#include <vector>

#include "core/ring.hpp"
#include "obs/trace.hpp"
#include "sig/signature.hpp"
#include "sim/writebuf.hpp"
#include "stm/common.hpp"
#include "tm/costs.hpp"
#include "tm/backend.hpp"
#include "util/cacheline.hpp"
#include "util/mc_hooks.hpp"
#include "util/spinlock.hpp"

namespace phtm::stm {

class RingStmBackend final : public tm::Backend {
 public:
  RingStmBackend(sim::HtmRuntime& rt, const tm::BackendConfig& cfg)
      : rt_(rt), ring_(cfg.ring_entries) {
    // Genesis entry: timestamp 0, empty signature, complete.
  }

  const char* name() const override { return "RingSTM"; }

#if defined(PHTM_MC) && PHTM_MC
  // mc-yield: test-only fault injection. Setting this reintroduces the PR-1
  // torn-write-back bug by undoing both halves of its fix: check() advances
  // start times past commits whose write-back is still in flight, and
  // commit() no longer waits for logically earlier commits to retire before
  // starting its own stores. (Either half alone is masked by the other —
  // the start cap already serializes committers through the timestamp CAS.)
  // The model-checker acceptance test uses this to prove the explorer finds
  // the tearing interleaving and prints a replay seed. Exists only in mc
  // builds; production code has no such switch.
  inline static bool mc_fault_torn_writeback = false;
#endif

  std::unique_ptr<tm::Worker> make_worker(unsigned tid) override {
    return std::make_unique<W>(tid);
  }

  void execute(tm::Worker& wb, const tm::Txn& txn) override {
    W& w = static_cast<W&>(wb);
    PHTM_TRACE_TX_BEGIN();
    PHTM_TRACE_PATH(CommitPath::kSoftware);
    Backoff backoff;
    for (;;) {
      w.snap.save(txn);
      w.rsig.clear();
      w.wsig.clear();
      w.redo.clear();
      // mc-yield: start-time acquisition — races every retiring write-back.
      PHTM_MC_YIELD(kRawLoad, &last_complete_.value);
      w.start = last_complete_.value.load(std::memory_order_acquire);
      try {
        SoftCtx ctx(*this, w);
        tm::run_all_segments(ctx, txn);
        commit(w);
        w.stats().record_commit(CommitPath::kSoftware);
        PHTM_TRACE_TX_COMMIT(CommitPath::kSoftware);
        return;
      } catch (const StmAbort& a) {
        w.stats().record_abort(a.cause);
        PHTM_TRACE_TX_ABORT(a.cause, 0, 0);
        if (a.cause == AbortCause::kOther) w.stats().add_ring_rollover();
        w.snap.restore(txn);
        backoff.pause();
      }
    }
  }

 private:
  // Shared ring vocabulary (see header comment): the busy bit and the
  // validation verdicts are core::GlobalRing's, not a local reinvention.
  static constexpr std::uint64_t kBusy = core::GlobalRing::kBusy;
  using ValResult = core::ValResult;

  struct alignas(kCacheLineBytes) RingEntry {
    // shared-atomic: pure-software STM metadata — RingSTM never mixes these
    // words with hardware transactions, so std::atomic is the whole story.
    std::atomic<std::uint64_t> seq{0};
    Signature sig;
  };

  struct W final : tm::Worker {
    explicit W(unsigned tid) : Worker(tid) {}
    Signature rsig, wsig;
    sim::WriteBuf redo;
    tm::LocalsSnapshot snap;
    std::uint64_t start = 0;
  };

  class SoftCtx final : public tm::Ctx {
   public:
    SoftCtx(RingStmBackend& b, W& w) : b_(b), w_(w) {}
    std::uint64_t read(const std::uint64_t* addr) override {
      sim::burn_work(tm::kStmAccessCost);  // calibration, see tm/costs.hpp
      return b_.tx_read(w_, addr);
    }
    void write(std::uint64_t* addr, std::uint64_t val) override {
      sim::burn_work(tm::kStmAccessCost);
      w_.wsig.add(addr);
      w_.redo.put(addr, val);
    }
    void work(std::uint64_t n) override { sim::burn_work(n); }
    // raw-atomic: uninstrumented escape hatch by contract (private scratch
    // only, see tm::Ctx::raw_read); RingSTM runs no hardware transactions,
    // so there is no speculative writer to invalidate.
    std::uint64_t raw_read(const std::uint64_t* addr) override {
      sim::burn_work(tm::kRawAccessCost);
      return __atomic_load_n(addr, __ATOMIC_ACQUIRE);
    }
    void raw_write(std::uint64_t* addr, std::uint64_t val) override {
      sim::burn_work(tm::kRawAccessCost);
      // raw-atomic: see raw_read above.
      __atomic_store_n(addr, val, __ATOMIC_RELEASE);
    }

   private:
    RingStmBackend& b_;
    W& w_;
  };

  RingEntry& entry_of(std::uint64_t ts) { return ring_[ts % ring_.size()]; }

  /// Validate the read signature against every commit since w.start and
  /// advance the start time on success. Reports through the shared
  /// core::ValResult taxonomy (kRollover covers slot reuse and window
  /// overflow, exactly as in core::GlobalRing::validate); check() maps the
  /// verdict onto this backend's abort causes.
  ValResult validate_window(W& w) {
    // mc-yield: the timestamp read anchors the validation window against
    // concurrent commit reservations.
    PHTM_MC_YIELD(kRawLoad, &timestamp_.value);
    const std::uint64_t ts = timestamp_.value.load(std::memory_order_acquire);
    if (ts == w.start) return ValResult::kOk;
    if (ts - w.start >= ring_.size()) return ValResult::kRollover;
    for (std::uint64_t i = w.start + 1; i <= ts; ++i) {
      RingEntry& e = entry_of(i);
      // mc-yield: seqlock read side — races the entry's (re)publisher.
      PHTM_MC_YIELD(kRawLoad, &e.seq);
      for (;;) {
        const std::uint64_t s = e.seq.load(std::memory_order_acquire);
        if (s == i) break;
        if ((s & ~kBusy) > i) return ValResult::kRollover;  // slot reused
        // mc-yield: waiting out an in-flight publication; only the
        // publisher can complete the entry, so force a deschedule.
        PHTM_MC_SPIN(&e.seq);
        // spin-waiver: publication in flight — the publisher's fill is a
        // finite store sequence ending in the closing seq store.
        cpu_relax();
      }
      // Word-atomic scan: a writer reusing this slot republishes the
      // signature while we may still be reading it; the seq recheck below
      // discards any value read from a republication in flight.
      // mc-yield: the scan races a republication; the recheck is the read
      // side of the seqlock.
      PHTM_MC_YIELD(kRawLoad, &e.sig);
      const bool hit = e.sig.atomic_intersects(w.rsig);
      PHTM_MC_YIELD(kRawLoad, &e.seq);  // mc-yield: seqlock recheck
      if (e.seq.load(std::memory_order_acquire) != i)
        return ValResult::kRollover;  // torn: slot reused mid-check
      if (hit) {
#if defined(PHTM_MC) && PHTM_MC
        // Fair-schedule reduction (mc builds only). A conflicting retry
        // re-observes the same window until the blocking commit's write-back
        // retires, so idle retries form an infinite unfair cycle in the
        // explorer. Waiting here collapses those redundant retries; the
        // abort (and its history fragment) is unchanged.
        while (last_complete_.value.load(std::memory_order_acquire) < i) {
          // mc-yield: only the blocking committer's retirement store can
          // change the recheck; it retires unconditionally — deadlock-free.
          PHTM_MC_SPIN(&last_complete_.value);
          // spin-waiver: mc-only wait, bounded by the blocking committer's
          // unconditional retirement (see the deadlock-free note above).
          cpu_relax();
        }
#endif
        return ValResult::kConflict;
      }
    }
    // Advance only past fully written-back commits: an entry between
    // last_complete and ts has published its signature but may still be
    // writing back, and covering it with w.start would let a later read
    // return that commit's *pre*-write-back value with no revalidation.
    // Entries in (last_complete, ts] simply get re-scanned by the next
    // check until their write-back retires.
    // mc-yield: start-advance decision point — races retiring write-backs.
    PHTM_MC_YIELD(kRawLoad, &last_complete_.value);
    const std::uint64_t lc =
        last_complete_.value.load(std::memory_order_acquire);
    w.start = lc < ts ? lc : ts;
#if defined(PHTM_MC) && PHTM_MC
    // Fault injection (see mc_fault_torn_writeback): the pre-fix code
    // advanced straight to the raw timestamp, letting a committer win the
    // CAS while its predecessor's write-back was still in flight.
    if (mc_fault_torn_writeback) w.start = ts;
#endif
    return ValResult::kOk;
  }

  /// Throwing wrapper: kConflict aborts with the conflict cause, kRollover
  /// with kOther (execute() counts kOther as a ring rollover).
  void check(W& w) {
    const ValResult v = validate_window(w);
    if (v != ValResult::kOk)
      throw StmAbort{v == ValResult::kConflict ? AbortCause::kConflict
                                               : AbortCause::kOther};
  }

  std::uint64_t tx_read(W& w, const std::uint64_t* addr) {
    std::uint64_t v;
    if (w.redo.get(addr, v)) return v;
    v = rt_.nontx_load(addr);
    w.rsig.add(addr);
    // Poll-on-read: any commit that appeared since start must not overlap
    // what we have read (including this address).
    check(w);
    return v;
  }

  void commit(W& w) {
    if (w.redo.empty()) return;  // read-only
    std::uint64_t ts;
    for (;;) {
      check(w);
      ts = w.start;
      std::uint64_t expect = ts;
      // mc-yield: the timestamp CAS is the commit linearization race.
      PHTM_MC_YIELD(kRawStore, &timestamp_.value);
      if (timestamp_.value.compare_exchange_weak(expect, ts + 1,
                                                 std::memory_order_acq_rel))
        break;
      // Lost the race: the retry cannot succeed while last_complete still
      // equals our start (check() caps w.start at last_complete, and the
      // CAS needs start == timestamp, which some winner moved past us).
      // The winner's retirement is what unblocks us — wait for it instead
      // of burning no-progress retries (which would hand the explorer an
      // unfair infinite schedule).
      while (last_complete_.value.load(std::memory_order_acquire) == ts) {
        // mc-yield: no-progress retry cycle; only a retirement store can
        // change the outcome — force a deschedule.
        PHTM_MC_SPIN(&last_complete_.value);
        // spin-waiver: bounded by the CAS winner's write-back, which
        // retires unconditionally and advances last_complete past ts.
        cpu_relax();
      }
    }
    const std::uint64_t mine = ts + 1;
    RingEntry& e = entry_of(mine);
    // Wait for the retired occupant's write-back before reusing the slot.
    if (mine >= ring_.size()) {
      const std::uint64_t retired = mine - ring_.size();
      while (last_complete_.value.load(std::memory_order_acquire) < retired) {
        // mc-yield: waiting for the retired occupant's write-back; only
        // that committer can advance last_complete — force a deschedule.
        PHTM_MC_SPIN(&last_complete_.value);
        // spin-waiver: retirement is monotone and unconditional — every
        // committer ahead of `retired` finishes its finite write-back.
        cpu_relax();
      }
    }
    // mc-yield: seqlock write side — busy opens the republication window.
    PHTM_MC_YIELD(kRawStore, &e.seq);
    e.seq.store(mine | kBusy, std::memory_order_release);
    // mc-yield: republication races validators' word-atomic scans.
    PHTM_MC_YIELD(kRawStore, &e.sig);
    e.sig.atomic_assign(w.wsig);
    PHTM_MC_YIELD(kRawStore, &e.seq);  // mc-yield: seqlock close
    e.seq.store(mine, std::memory_order_release);
    // Single-writer write-back discipline: stores may only *start* once
    // every logically earlier commit has finished its own write-back.
    // Overlapping write-only commits never see each other in validation
    // (their read signatures are empty), so this ordering is the only thing
    // keeping their redo logs from interleaving in memory — waiting here
    // merely for *completion* (i.e. after our own stores) admits torn
    // results.
#if defined(PHTM_MC) && PHTM_MC
    const bool wait_for_predecessors = !mc_fault_torn_writeback;
#else
    constexpr bool wait_for_predecessors = true;
#endif
    if (wait_for_predecessors) {
      while (last_complete_.value.load(std::memory_order_acquire) != ts) {
        // mc-yield: single-writer write-back gate; only the predecessor's
        // retirement store can release it — force a deschedule.
        PHTM_MC_SPIN(&last_complete_.value);
        // spin-waiver: FIFO hand-off by timestamp order — the predecessor's
        // finite write-back ends in its retirement store, releasing us.
        cpu_relax();
      }
    }
    for (const auto& c : w.redo.cells()) rt_.nontx_store(c.addr, c.val);
    // mc-yield: retirement store — releases successors' write-back gates.
    PHTM_MC_YIELD(kRawStore, &last_complete_.value);
    last_complete_.value.store(mine, std::memory_order_release);
  }

  sim::HtmRuntime& rt_;
  std::vector<RingEntry> ring_;
  // shared-atomic: same as RingEntry::seq — software-only STM metadata.
  Padded<std::atomic<std::uint64_t>> timestamp_{};
  Padded<std::atomic<std::uint64_t>> last_complete_{};
};

}  // namespace phtm::stm
