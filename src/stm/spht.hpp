// SpHT — Split Hardware Transactions [Lev & Maessen, PPoPP'08; paper
// Sec. 3, ref. 23]: the *lazy* alternative to PART-HTM's eager partitioned
// path, implemented here so the paper's comparison argument can be
// measured (bench_ablation_spht).
//
// Like PART-HTM, SpHT splits a transaction into a sequence of sub-HTM
// transactions. Unlike PART-HTM, writes are never published early:
//
//   - during a segment, writes execute in place (consuming HTM write
//     capacity) but are *undone* inside the sub-transaction right before
//     its commit, so memory never shows uncommitted state — no locks, no
//     isolation framework needed;
//   - at the start of every subsequent sub-transaction the accumulated
//     redo log is *replayed* in place (and re-hidden at its end), so reads
//     in later segments see the transaction's own writes;
//   - each sub-transaction re-validates the accumulated value-based read
//     log, which keeps the whole-transaction snapshot consistent;
//   - the final sub-transaction replays the redo log and simply commits,
//     publishing everything atomically through the HTM.
//
// The structural consequence the paper points out: every later
// sub-transaction carries the transaction's *entire accumulated* write set
// (replay) and read set (validation), so when a transaction aborts for
// resource limitations caused by transactional work — not ancillary
// computation — splitting does not shrink the footprint that matters, and
// SpHT degrades to its fallback. PART-HTM's eager sub-transactions stay
// small instead.
//
// Fallback policy mirrors the repo's other hybrids: `htm_retries` full-HTM
// attempts, then the split execution, then the global lock.
#pragma once

#include <vector>

#include "obs/trace.hpp"
#include "sim/writebuf.hpp"
#include "stm/common.hpp"
#include "tm/backend.hpp"
#include "tm/direct.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace phtm::stm {

class SphtBackend final : public tm::Backend {
 public:
  SphtBackend(sim::HtmRuntime& rt, const tm::BackendConfig& cfg)
      : rt_(rt), cfg_(cfg) {}

  const char* name() const override { return "SpHT"; }

  std::unique_ptr<tm::Worker> make_worker(unsigned tid) override {
    return std::make_unique<W>(tid, rt_);
  }

  void execute(tm::Worker& wb, const tm::Txn& txn) override {
    W& w = static_cast<W&>(wb);
    PHTM_TRACE_TX_BEGIN();
    if (!txn.irrevocable) {
      // Phase 1: plain full-HTM attempts.
      w.txn_snap.save(txn);
      Backoff backoff;
      PHTM_TRACE_PATH(CommitPath::kHtm);
      for (unsigned a = 0; a < cfg_.htm_retries; ++a) {
        // Lemming guard.
        // spin-waiver: competitor backend with SpHT's published unfair
        // fallback; the holder runs one finite uninstrumented transaction.
        while (rt_.nontx_load(&glock_.value) != 0) cpu_relax();
        const sim::HtmResult r = rt_.attempt(w.th, [&](sim::HtmOps& ops) {
          if (ops.read(&glock_.value) != 0) ops.xabort(kXGlockHeld);
          HtmCtx ctx(ops);
          tm::run_all_segments(ctx, txn);
        });
        if (r.committed) {
          w.stats().record_commit(CommitPath::kHtm);
          PHTM_TRACE_TX_COMMIT(CommitPath::kHtm);
          return;
        }
        w.stats().record_abort(to_cause(r.abort));
        PHTM_TRACE_TX_ABORT(to_cause(r.abort), r.abort.xabort_code,
                            r.abort.conflict_line);
        w.txn_snap.restore(txn);
        if (r.abort.code == sim::AbortCode::kCapacity ||
            r.abort.code == sim::AbortCode::kOther)
          break;  // resource failure: try the split execution
        backoff.pause();
      }
      // Phase 2: split execution.
      PHTM_TRACE_PATH(CommitPath::kSoftware);
      Backoff backoff2;
      for (unsigned g = 0; g < cfg_.partitioned_retries; ++g) {
        if (split_once(w, txn)) {
          w.stats().record_commit(CommitPath::kSoftware);
          PHTM_TRACE_TX_COMMIT(CommitPath::kSoftware);
          return;
        }
        w.txn_snap.restore(txn);
        backoff2.pause();
      }
    }
    // Phase 3: global lock.
    PHTM_TRACE_PATH(CommitPath::kGlobalLock);
    // spin-waiver: unfair CAS acquire matches the competitor design under
    // measurement; PART-HTM's ticketed slow path is the contrast case.
    while (!rt_.nontx_cas(&glock_.value, 0, 1)) cpu_relax();
    tm::DirectCtx ctx(rt_);  // strong-atomicity routed (see DirectCtx)
    tm::run_all_segments(ctx, txn);
    rt_.nontx_store(&glock_.value, 0);
    w.stats().record_commit(CommitPath::kGlobalLock);
    PHTM_TRACE_TX_COMMIT(CommitPath::kGlobalLock);
  }

 private:
  struct UndoEnt {
    std::uint64_t* addr;
    std::uint64_t old;
  };

  struct W final : tm::Worker {
    W(unsigned tid, sim::HtmRuntime& rt) : Worker(tid), th(rt) {}
    sim::HtmRuntime::Thread th;
    ReadLog rlog;        // accumulated value-based read log
    sim::WriteBuf redo;  // accumulated redo log
    // Per-attempt state (discarded on sub-abort):
    ReadLog rlog_staged;
    std::vector<sim::WriteBuf::Cell> redo_staged;
    std::vector<UndoEnt> hide_undo;  // displaced values, execution order
    tm::LocalsSnapshot txn_snap, seg_snap;
  };

  /// Per-segment context: writes execute in place transactionally (logged
  /// for hiding + redo), clean reads are value-logged for validation.
  class SegCtx final : public tm::Ctx {
   public:
    SegCtx(W& w, sim::HtmOps& ops) : w_(w), ops_(ops) {}

    std::uint64_t read(const std::uint64_t* addr) override {
      // Own writes are physically in memory right now (replayed or written
      // in place), so the transactional read returns them directly; only
      // reads of clean locations enter the validation log.
      const std::uint64_t v = ops_.read(addr);
      std::uint64_t buffered;
      if (!w_.redo.get(addr, buffered) && !staged_contains(addr))
        w_.rlog_staged.push(addr, v);
      return v;
    }

    void write(std::uint64_t* addr, std::uint64_t val) override {
      // span-waiver: hide_undo/redo_staged are the split path's own
      // software logs; both vectors keep their capacity across clear(),
      // so steady-state staging is allocation-free.
      w_.hide_undo.push_back({addr, ops_.read(addr)});
      ops_.write(addr, val);  // in place: consumes sub-HTM write capacity
      w_.redo_staged.push_back({addr, val});
    }

    void work(std::uint64_t n) override { ops_.work(n); }

    std::uint64_t raw_read(const std::uint64_t* addr) override {
      return ops_.read(addr);
    }
    void raw_write(std::uint64_t* addr, std::uint64_t val) override {
      ops_.write(addr, val);
    }

   private:
    bool staged_contains(const std::uint64_t* addr) const {
      for (const auto& c : w_.redo_staged)
        if (c.addr == addr) return true;
      return false;
    }
    W& w_;
    sim::HtmOps& ops_;
  };

  enum : std::uint32_t { kXInvalid = 201 };

  /// One split execution attempt; false = abort (validation failed or a
  /// sub-transaction exhausted its retries).
  bool split_once(W& w, const tm::Txn& txn) {
    w.rlog.clear();
    w.redo.clear();
    unsigned seg = 0;
    bool more = true;
    while (more) {
      w.seg_snap.save(txn);
      bool more_out = false;
      unsigned tries = 0;
      for (;;) {
        w.rlog_staged.clear();
        w.redo_staged.clear();
        w.hide_undo.clear();
        PHTM_TRACE_SUB_BEGIN(seg);
        const sim::HtmResult r = rt_.attempt(w.th, [&](sim::HtmOps& ops) {
          if (ops.read(&glock_.value) != 0) ops.xabort(kXGlockHeld);
          // (a) validate the accumulated read log by value;
          // tmfoot: bound(100000) — read-capacity-enforced: a read log past
          // the largest profile's read_lines_cap aborts rather than commits
          // (retries exhaust into a full transaction restart).
          for (const auto& e : w.rlog.entries())
            if (ops.read(e.addr) != e.val) ops.xabort(kXInvalid);
          // (b) replay the accumulated redo log in place — this is the
          //     footprint that grows with the transaction;
          // tmfoot: bound(512) — write-capacity-enforced: replaying more
          // than write_lines_cap lines capacity-aborts instead of committing.
          for (const auto& c : w.redo.cells()) {
            // span-waiver: hide_undo retains capacity across transactions.
            w.hide_undo.push_back({c.addr, ops.read(c.addr)});
            ops.write(c.addr, c.val);
          }
          // (c) run the segment (its writes also enter hide_undo);
          SegCtx ctx(w, ops);
          more_out = txn.step(ctx, txn.env, txn.locals, seg);
          // (d) intermediate sub-transactions hide every write again
          //     (reverse order restores the oldest displaced value); the
          //     final one publishes by committing.
          if (more_out) {
            // tmfoot: bound(512) — hide_undo holds one entry per in-place
            // write this sub-HTM already performed, so a committable
            // sub-transaction has at most write_lines_cap entries.
            for (auto it = w.hide_undo.rbegin(); it != w.hide_undo.rend(); ++it)
              ops.write(it->addr, it->old);
          }
        });
        if (r.committed) {
          PHTM_TRACE_SUB_COMMIT(seg);
          break;
        }
        w.stats().record_abort(to_cause(r.abort));
        PHTM_TRACE_SUB_ABORT(seg, to_cause(r.abort));
        PHTM_TRACE_TX_ABORT(to_cause(r.abort), r.abort.xabort_code,
                            r.abort.conflict_line);
        w.seg_snap.restore(txn);
        if (r.abort.code == sim::AbortCode::kExplicit &&
            r.abort.xabort_code == kXInvalid)
          return false;  // snapshot broken: restart the whole transaction
        if (++tries >= cfg_.sub_htm_retries) return false;
        // spin-waiver: single pause between budget-bounded retries (the
        // `tries` cap above), not a wait on shared state.
        cpu_relax();
      }
      // Merge staged logs (sub-transaction committed).
      for (const auto& e : w.rlog_staged.entries()) w.rlog.push(e.addr, e.val);
      for (const auto& c : w.redo_staged) w.redo.put(c.addr, c.val);
      more = more_out;
      ++seg;
    }
    return true;
  }

  sim::HtmRuntime& rt_;
  tm::BackendConfig cfg_;
  Padded<std::uint64_t> glock_{0};
};

}  // namespace phtm::stm
