#include "tm/backend.hpp"

namespace phtm::tm {

const char* to_string(Algo a) {
  switch (a) {
    case Algo::kSeq: return "Sequential";
    case Algo::kHtmGl: return "HTM-GL";
    case Algo::kPartHtm: return "Part-HTM";
    case Algo::kPartHtmO: return "Part-HTM-O";
    case Algo::kPartHtmNoFast: return "Part-HTM-no-fast";
    case Algo::kRingStm: return "RingSTM";
    case Algo::kNorec: return "NOrec";
    case Algo::kNorecRh: return "NOrecRH";
    case Algo::kSpht: return "SpHT";
    default: return "?";
  }
}

bool parse_algo(const std::string& name, Algo& out) {
  for (unsigned i = 0; i < static_cast<unsigned>(Algo::kAlgoCount); ++i) {
    if (name == to_string(static_cast<Algo>(i))) {
      out = static_cast<Algo>(i);
      return true;
    }
  }
  // Friendly lowercase aliases for CLI use.
  if (name == "seq") { out = Algo::kSeq; return true; }
  if (name == "htm-gl" || name == "htmgl") { out = Algo::kHtmGl; return true; }
  if (name == "part-htm" || name == "parthtm") { out = Algo::kPartHtm; return true; }
  if (name == "part-htm-o" || name == "parthtmo") { out = Algo::kPartHtmO; return true; }
  if (name == "part-htm-no-fast" || name == "nofast") { out = Algo::kPartHtmNoFast; return true; }
  if (name == "ringstm" || name == "ring") { out = Algo::kRingStm; return true; }
  if (name == "norec") { out = Algo::kNorec; return true; }
  if (name == "norecrh" || name == "norec-rh") { out = Algo::kNorecRh; return true; }
  if (name == "spht") { out = Algo::kSpht; return true; }
  return false;
}

}  // namespace phtm::tm
