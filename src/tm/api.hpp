// Unified transaction API every backend (PART-HTM, PART-HTM-O, HTM-GL,
// RingSTM, NOrec, NOrecRH, sequential) executes against.
//
// A transaction is a *step function* invoked once per segment:
//
//     bool step(Ctx&, const void* env, void* locals, unsigned seg);
//
// It executes exactly segment `seg` and returns true iff another segment
// follows. Single-segment transactions just do all their work at seg==0 and
// return false. Segment boundaries are PART-HTM's partition points (the
// paper's manually placed, profiler-derived breaking points); every other
// backend simply runs all segments back to back inside one transaction.
//
//  - `env` is immutable shared context (tables, arrays, parameters).
//  - `locals` is the transaction's mutable cross-segment state and must be
//    trivially copyable: the framework snapshots and restores it around
//    hardware attempts, emulating the register/stack rollback real HTM
//    performs. Anything a segment mutates that must survive a retry lives
//    here.
//
// All shared-memory accesses inside a step go through Ctx; 8-byte words are
// the access granularity (the paper's protocol is word/address based).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace phtm::tm {

/// Per-access operations a transaction body may perform.
class Ctx {
 public:
  virtual ~Ctx() = default;

  virtual std::uint64_t read(const std::uint64_t* addr) = 0;
  virtual void write(std::uint64_t* addr, std::uint64_t val) = 0;

  /// Computation of cost `n` (simulated cycles). On hardware paths it burns
  /// transaction-duration budget; the partitioned path's software framework
  /// and STM paths run it outside any hardware transaction.
  virtual void work(std::uint64_t n) = 0;

  /// Deliberately *uninstrumented* accesses — the "manual barrier" escape
  /// hatch STAMP applications use for private buffers and racy snapshots
  /// (e.g. Labyrinth's grid copy). Software TMs perform them as plain
  /// memory operations (no logging, no validation); on hardware paths they
  /// are still monitored by the HTM itself — real hardware cannot opt out —
  /// so they keep consuming capacity and duration budget. Defaults to the
  /// instrumented accessors; backends override.
  virtual std::uint64_t raw_read(const std::uint64_t* addr) { return read(addr); }
  virtual void raw_write(std::uint64_t* addr, std::uint64_t val) {
    write(addr, val);
  }

  // Typed helpers for 8-byte trivially-copyable values (double, int64...).
  template <typename T>
  T get(const T* p) {
    static_assert(sizeof(T) == 8 && std::is_trivially_copyable_v<T>);
    return std::bit_cast<T>(read(reinterpret_cast<const std::uint64_t*>(p)));
  }
  template <typename T>
  void put(T* p, T v) {
    static_assert(sizeof(T) == 8 && std::is_trivially_copyable_v<T>);
    write(reinterpret_cast<std::uint64_t*>(p), std::bit_cast<std::uint64_t>(v));
  }
};

/// Segment classification for PART-HTM's partitioned path.
enum class SegKind {
  kHw = 0,  ///< transactional segment: runs as a sub-HTM transaction
  kSw,      ///< compute-only segment: the software framework runs it outside
            ///< any hardware transaction (paper Sec. 4, "Non-transactional
            ///< Code"). Must only touch locals; shared accesses here are
            ///< uninstrumented — the paper's documented limitation.
};

/// One transaction instance handed to a backend for execution-to-commit.
struct Txn {
  /// Executes segment `seg`; returns true iff more segments follow.
  bool (*step)(Ctx&, const void* env, void* locals, unsigned seg) = nullptr;
  const void* env = nullptr;
  void* locals = nullptr;
  std::size_t locals_bytes = 0;  ///< size of the trivially-copyable blob
  bool irrevocable = false;      ///< force the global-lock path (syscalls...)
  /// Optional classifier; null means every segment is transactional. Only
  /// PART-HTM's partitioned path distinguishes: all other paths/backends
  /// run software segments inline. Receives the locals as they stand when
  /// the segment is about to run, so applications with data-dependent
  /// segment counts can classify by execution phase.
  SegKind (*seg_kind)(const void* env, const void* locals, unsigned seg) = nullptr;
};

/// Snapshot/restore of a transaction's locals blob (register rollback).
class LocalsSnapshot {
 public:
  void save(const Txn& t) {
    buf_.resize(t.locals_bytes);
    if (t.locals_bytes) std::memcpy(buf_.data(), t.locals, t.locals_bytes);
  }
  void restore(const Txn& t) const {
    if (t.locals_bytes) std::memcpy(t.locals, buf_.data(), t.locals_bytes);
  }

 private:
  std::vector<char> buf_;
};

/// Convenience: run every segment of `t` against `ctx` (used by backends
/// that execute the whole transaction in one shot).
inline void run_all_segments(Ctx& ctx, const Txn& t) {
  unsigned seg = 0;
  while (t.step(ctx, t.env, t.locals, seg)) ++seg;
}

}  // namespace phtm::tm
