// Backend interface: a TM algorithm that executes transactions to commit.
//
// One Backend instance owns the algorithm's *global* metadata (locks,
// clocks, rings, signatures) plus a reference to the HtmRuntime when the
// algorithm uses hardware transactions. Each OS thread obtains a Worker
// (per-thread descriptor: signatures, logs, RNG, stats) and calls
// execute(), which retries internally until the transaction commits.
#pragma once

#include <memory>
#include <string>

#include "sim/runtime.hpp"
#include "tm/api.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace phtm::tm {

/// All algorithms in the evaluation (Sec. 7's competitor list).
enum class Algo {
  kSeq = 0,       ///< single-thread direct execution (speed-up baseline)
  kHtmGl,         ///< HTM, 5 retries, global-lock fallback
  kPartHtm,       ///< PART-HTM (serializable)
  kPartHtmO,      ///< PART-HTM-O (opaque)
  kPartHtmNoFast, ///< PART-HTM that skips the fast path (Fig. 3b variant)
  kRingStm,       ///< RingSTM
  kNorec,         ///< NOrec
  kNorecRh,       ///< Reduced-hardware NOrec
  kSpht,          ///< Split Hardware Transactions (lazy splitting, [23])
  kAlgoCount,
};

const char* to_string(Algo a);
bool parse_algo(const std::string& name, Algo& out);

/// Per-thread execution state; backends subclass this.
class Worker {
 public:
  explicit Worker(unsigned tid) : tid_(tid) { rng_.reseed(0x7f4a7c15u + tid); }
  virtual ~Worker() = default;

  unsigned tid() const noexcept { return tid_; }
  StatSheet& stats() noexcept { return stats_; }
  const StatSheet& stats() const noexcept { return stats_; }
  Rng& rng() noexcept { return rng_; }

 private:
  unsigned tid_;
  StatSheet stats_{};
  Rng rng_;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const = 0;

  /// Create the calling thread's worker (registers an HTM slot if needed).
  virtual std::unique_ptr<Worker> make_worker(unsigned tid) = 0;

  /// Execute `txn` until it commits. Retry policy, path selection and stats
  /// recording are internal; `w` must have been produced by make_worker of
  /// this backend and be used by one thread only.
  virtual void execute(Worker& w, const Txn& txn) = 0;

  /// Degraded mode: an external overload controller (src/server) asking the
  /// backend to stop burning hardware fast-path attempts and run
  /// force-partitioned until the pressure clears. Advisory and idempotent;
  /// backends without a fast path ignore it (default no-op). May be called
  /// from any thread while workers are executing.
  virtual void set_degraded(bool) noexcept {}
  virtual bool degraded() const noexcept { return false; }
};

/// Cause-aware contention-management knobs (PART-HTM's policy engine,
/// src/core/policy.hpp; DESIGN.md "Robustness & contention management").
/// Defaults reproduce the historical fixed policy: 5 attempts on
/// conflict-shaped aborts, immediate failover on resource-shaped ones.
struct PolicyConfig {
  // Fast-path per-cause attempt budgets (total attempts, not extra
  // retries). A mixed abort history draws from each cause's own budget.
  // Conflict- and explicit-shaped aborts use BackendConfig::htm_retries
  // (the knob the ablation benches sweep); only resource-shaped causes
  // have their own budgets here.
  unsigned htm_capacity_retries = 1;  ///< footprint aborts: don't re-burn
  unsigned htm_other_retries = 1;     ///< timer/async events

  // Sub-HTM per-cause budgets for the partitioned path. Conflict-shaped
  // sub-aborts use BackendConfig::sub_htm_retries (the paper's knob).
  unsigned sub_capacity_retries = 2;  ///< segments are small; 1 resize try
  unsigned sub_other_retries = 4;

  // Capped exponential backoff between conflict-shaped retries, with
  // deterministic per-thread jitter (same shape as util::Backoff, but the
  // jitter stream is owned by the worker, so runs replay exactly).
  unsigned backoff_min_spins = 32;
  unsigned backoff_max_spins = 1u << 14;

  // Bounded-wait starvation detector: a guarded spin loop that exceeds
  // this many polls escalates to the ticketed slow path.
  std::uint64_t spin_escalation_bound = 1u << 20;

  // Graceful degradation: after this many consecutive fast-path resource
  // failures a site is quarantined to the software paths; every
  // `quarantine_probe_period`-th transaction probes the hardware again
  // and a single clean commit re-admits the site.
  unsigned quarantine_after = 16;
  unsigned quarantine_probe_period = 64;
};

/// Knobs shared by backend constructors (ablation benches sweep these).
struct BackendConfig {
  unsigned htm_retries = 5;         ///< hardware attempts before fallback
  unsigned partitioned_retries = 5; ///< global retries before the slow path
  unsigned sub_htm_retries = 10;    ///< sub-HTM attempts before global abort
  unsigned ring_entries = 1024;     ///< global ring size (power of two)
  bool validate_after_each_sub = true;  ///< paper default (Sec. 5.3.6)
  PolicyConfig policy;              ///< contention-manager knobs
};

/// Build a backend over `rt`. The returned object owns all global metadata.
std::unique_ptr<Backend> make_backend(Algo algo, sim::HtmRuntime& rt,
                                      const BackendConfig& cfg = {});

}  // namespace phtm::tm
