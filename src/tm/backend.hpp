// Backend interface: a TM algorithm that executes transactions to commit.
//
// One Backend instance owns the algorithm's *global* metadata (locks,
// clocks, rings, signatures) plus a reference to the HtmRuntime when the
// algorithm uses hardware transactions. Each OS thread obtains a Worker
// (per-thread descriptor: signatures, logs, RNG, stats) and calls
// execute(), which retries internally until the transaction commits.
#pragma once

#include <memory>
#include <string>

#include "sim/runtime.hpp"
#include "tm/api.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace phtm::tm {

/// All algorithms in the evaluation (Sec. 7's competitor list).
enum class Algo {
  kSeq = 0,       ///< single-thread direct execution (speed-up baseline)
  kHtmGl,         ///< HTM, 5 retries, global-lock fallback
  kPartHtm,       ///< PART-HTM (serializable)
  kPartHtmO,      ///< PART-HTM-O (opaque)
  kPartHtmNoFast, ///< PART-HTM that skips the fast path (Fig. 3b variant)
  kRingStm,       ///< RingSTM
  kNorec,         ///< NOrec
  kNorecRh,       ///< Reduced-hardware NOrec
  kSpht,          ///< Split Hardware Transactions (lazy splitting, [23])
  kAlgoCount,
};

const char* to_string(Algo a);
bool parse_algo(const std::string& name, Algo& out);

/// Per-thread execution state; backends subclass this.
class Worker {
 public:
  explicit Worker(unsigned tid) : tid_(tid) { rng_.reseed(0x7f4a7c15u + tid); }
  virtual ~Worker() = default;

  unsigned tid() const noexcept { return tid_; }
  StatSheet& stats() noexcept { return stats_; }
  const StatSheet& stats() const noexcept { return stats_; }
  Rng& rng() noexcept { return rng_; }

 private:
  unsigned tid_;
  StatSheet stats_{};
  Rng rng_;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const = 0;

  /// Create the calling thread's worker (registers an HTM slot if needed).
  virtual std::unique_ptr<Worker> make_worker(unsigned tid) = 0;

  /// Execute `txn` until it commits. Retry policy, path selection and stats
  /// recording are internal; `w` must have been produced by make_worker of
  /// this backend and be used by one thread only.
  virtual void execute(Worker& w, const Txn& txn) = 0;
};

/// Knobs shared by backend constructors (ablation benches sweep these).
struct BackendConfig {
  unsigned htm_retries = 5;         ///< hardware attempts before fallback
  unsigned partitioned_retries = 5; ///< global retries before the slow path
  unsigned sub_htm_retries = 10;    ///< sub-HTM attempts before global abort
  unsigned ring_entries = 1024;     ///< global ring size (power of two)
  bool validate_after_each_sub = true;  ///< paper default (Sec. 5.3.6)
};

/// Build a backend over `rt`. The returned object owns all global metadata.
std::unique_ptr<Backend> make_backend(Algo algo, sim::HtmRuntime& rt,
                                      const BackendConfig& cfg = {});

}  // namespace phtm::tm
