// Type-safe construction of tm::Txn from C++ callables.
//
// The raw Txn contract (function pointer + void* env/locals) keeps the hot
// path allocation-free, but hand-writing the casts is noisy. TxnOf<Env, L>
// recovers type safety at zero runtime cost:
//
//     struct Env { std::uint64_t* cells; };
//     struct L   { std::uint64_t sum; };
//
//     auto txn = tm::TxnOf<Env, L>::make(
//         env, locals,
//         [](tm::Ctx& c, const Env& e, L& l, unsigned seg) {
//           l.sum += c.read(e.cells + seg);
//           return seg + 1 < 4;
//         });
//
// The lambda must be captureless (it becomes the step function pointer);
// anything it needs goes through Env (immutable, shared) or L (mutable,
// trivially copyable, rolled back on retry).
#pragma once

#include <type_traits>

#include "tm/api.hpp"

namespace phtm::tm {

struct NoLocals {};

template <typename Env, typename Locals = NoLocals>
struct TxnOf {
  static_assert(std::is_trivially_copyable_v<Locals>,
                "transaction locals must be trivially copyable (the framework "
                "snapshots them around hardware attempts)");

  /// Build a Txn whose step is `fn(Ctx&, const Env&, Locals&, unsigned)`.
  /// `fn` must be convertible to a plain function pointer (captureless).
  template <typename Fn>
  static Txn make(const Env& env, Locals& locals, Fn /*fn*/,
                  bool irrevocable = false) {
    using FnPtr = bool (*)(Ctx&, const Env&, Locals&, unsigned);
    static_assert(std::is_convertible_v<Fn, FnPtr>,
                  "step lambda must be captureless");
    Txn t;
    t.step = &invoke<Fn>;
    t.env = &env;
    t.locals = &locals;
    t.locals_bytes = sizeof(Locals);
    t.irrevocable = irrevocable;
    return t;
  }

  /// Single-segment convenience: `fn(Ctx&, const Env&, Locals&)`.
  template <typename Fn>
  static Txn make_flat(const Env& env, Locals& locals, Fn /*fn*/,
                       bool irrevocable = false) {
    using FnPtr = void (*)(Ctx&, const Env&, Locals&);
    static_assert(std::is_convertible_v<Fn, FnPtr>,
                  "step lambda must be captureless");
    Txn t;
    t.step = &invoke_flat<Fn>;
    t.env = &env;
    t.locals = &locals;
    t.locals_bytes = sizeof(Locals);
    t.irrevocable = irrevocable;
    return t;
  }

 private:
  template <typename Fn>
  static bool invoke(Ctx& c, const void* env, void* locals, unsigned seg) {
    constexpr auto fn = static_cast<bool (*)(Ctx&, const Env&, Locals&, unsigned)>(Fn{});
    return fn(c, *static_cast<const Env*>(env), *static_cast<Locals*>(locals), seg);
  }

  template <typename Fn>
  static bool invoke_flat(Ctx& c, const void* env, void* locals, unsigned) {
    constexpr auto fn = static_cast<void (*)(Ctx&, const Env&, Locals&)>(Fn{});
    fn(c, *static_cast<const Env*>(env), *static_cast<Locals*>(locals));
    return false;
  }
};

}  // namespace phtm::tm
