// Simulator cost calibration.
//
// The HTM simulator's bookkeeping makes a *monitored* access cost ~40-190ns
// of host time (first-touch of a line pays monitor registration; repeat
// accesses ~9ns), while a plain host load costs ~1ns. On real hardware the
// instrumented/uninstrumented gap is nowhere near that large: an in-HTM
// access is cache-speed, an STM read is a handful of instructions, a
// global-lock path access is a plain load. If left uncorrected, the
// simulator would systematically favor whichever algorithm does the least
// *simulated* work — inverting exactly the economics the paper measures.
//
// The constants below add compensating work (units of sim::burn_work, ~0.9ns
// each) so per-access costs land at realistic ratios, anchored on the
// measured monitored-access cost (see sim_cost_test.cpp):
//
//   monitored access (avg mix)   ~1.0x   (baseline, no burn)
//   direct/global-lock access    ~1.0x   -> kDirectAccessCost
//   NOrec/RingSTM read or write  ~1.5-3x -> kStmAccessCost (plus their real
//                                           logging/validation host work)
//   raw ("manual barrier") access ~1.0x  -> kRawAccessCost
#pragma once

#include <cstdint>

namespace phtm::tm {

/// Uninstrumented access on a software path (slow path, GL fallback,
/// sequential baseline).
inline constexpr std::uint64_t kDirectAccessCost = 34;

/// Extra cost of an instrumented STM access beyond the logging work the
/// backend already performs.
inline constexpr std::uint64_t kStmAccessCost = 90;

/// Plain access through Ctx::raw_read/raw_write on software paths.
inline constexpr std::uint64_t kRawAccessCost = 34;

}  // namespace phtm::tm
