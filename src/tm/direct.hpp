// Direct (uninstrumented) execution context and the sequential baseline.
//
// DirectCtx is also reused by every global-lock path in the repository
// (PART-HTM's slow path, HTM-GL's fallback): under mutual exclusion the
// paper runs transactions without instrumentation (Fig. 1 lines 63-64).
#pragma once

#include "obs/trace.hpp"
#include "sim/runtime.hpp"
#include "tm/api.hpp"
#include "tm/backend.hpp"
#include "tm/costs.hpp"

namespace phtm::tm {

/// Plain word-atomic loads/stores; no logging, no conflict detection.
/// Burns kDirectAccessCost so the uninstrumented path costs what it would
/// on real hardware relative to a monitored access (see tm/costs.hpp).
///
/// When constructed with a runtime, accesses go through the
/// strong-atomicity helpers: required for every *global-lock* execution,
/// because although the lock acquisition aborts all hardware subscribers,
/// a transaction whose commit has already latched is indivisibly committed
/// and its publication must be waited out — plain loads could otherwise
/// observe its pre-commit values. Contexts touching only private data
/// (software segments, the sequential baseline) may omit the runtime.
class DirectCtx final : public Ctx {
 public:
  DirectCtx() = default;
  explicit DirectCtx(sim::HtmRuntime& rt) : rt_(&rt) {}

  std::uint64_t read(const std::uint64_t* addr) override {
    sim::burn_work(kDirectAccessCost);
    if (rt_) return rt_->nontx_load(addr);
    // raw-atomic: runtime-less DirectCtx touches only private data (class
    // comment above) — there is no concurrent hardware transaction.
    return __atomic_load_n(addr, __ATOMIC_ACQUIRE);
  }
  void write(std::uint64_t* addr, std::uint64_t val) override {
    sim::burn_work(kDirectAccessCost);
    if (rt_) {
      rt_->nontx_store(addr, val);
      return;
    }
    // raw-atomic: see read above.
    __atomic_store_n(addr, val, __ATOMIC_RELEASE);
  }
  void work(std::uint64_t n) override { sim::burn_work(n); }

 private:
  sim::HtmRuntime* rt_ = nullptr;
};

/// Sequential baseline: the paper's "sequential (non-transactional)
/// execution" reference for the STAMP/EigenBench speed-up plots. Only valid
/// single-threaded.
class SeqBackend final : public Backend {
 public:
  const char* name() const override { return "Sequential"; }

  std::unique_ptr<Worker> make_worker(unsigned tid) override {
    return std::make_unique<Worker>(tid);
  }

  void execute(Worker& w, const Txn& txn) override {
    PHTM_TRACE_TX_BEGIN();
    DirectCtx ctx;
    run_all_segments(ctx, txn);
    w.stats().record_commit(CommitPath::kSoftware);
    PHTM_TRACE_TX_COMMIT(CommitPath::kSoftware);
  }
};

}  // namespace phtm::tm
