#include "tm/heap.hpp"

#include <cassert>
#include <cstring>

#include "util/cacheline.hpp"
#include "util/hash.hpp"

namespace phtm::tm {

TmHeap& TmHeap::instance() {
  static TmHeap heap;
  return heap;
}

TmHeap::TmHeap() {
  fallback_ = std::make_unique<std::uint64_t[]>(kFallbackLocks);
  std::memset(fallback_.get(), 0, kFallbackLocks * 8);
}

void* TmHeap::alloc(std::size_t bytes) {
  const std::size_t words = (bytes + 7) / 8;
  // Round allocations to whole cache lines so unrelated objects never share
  // a (conflict-granularity) line.
  const std::size_t line_words = kCacheLineBytes / 8;
  const std::size_t rounded = (words + line_words - 1) / line_words * line_words;

  std::lock_guard<std::mutex> g(alloc_mu_);
  // relaxed: writers hold alloc_mu_, so this read is mutex-ordered; the
  // atomic exists for the lock-free reader in shadow_of().
  const std::size_t count = region_count_.load(std::memory_order_relaxed);
  if (count != 0) {
    Region& r = regions_[cur_region_];
    if (cur_used_words_ + rounded <= r.words) {
      std::uint64_t* p = reinterpret_cast<std::uint64_t*>(r.base) + cur_used_words_;
      cur_used_words_ += rounded;
      return p;
    }
  }
  assert(count < kMaxRegions && "TmHeap region table exhausted");
  const std::size_t slab_words = rounded > kSlabWords ? rounded : kSlabWords;
  // operator new[] only guarantees 16-byte alignment; over-allocate and
  // round the usable base up to a cache line.
  auto data = std::make_unique<std::uint64_t[]>(slab_words + kCacheLineBytes / 8);
  auto shadow = std::make_unique<std::uint64_t[]>(slab_words);
  std::memset(data.get(), 0, (slab_words + kCacheLineBytes / 8) * 8);
  std::memset(shadow.get(), 0, slab_words * 8);
  Region& r = regions_[count];
  r.base = (reinterpret_cast<std::uintptr_t>(data.get()) + kCacheLineBytes - 1) &
           ~std::uintptr_t{kCacheLineBytes - 1};
  r.words = slab_words;
  r.shadow = shadow.get();
  owned_.push_back(std::move(data));
  owned_.push_back(std::move(shadow));
  cur_region_ = count;
  cur_used_words_ = rounded;
  // Publish after the descriptor is fully written.
  region_count_.store(count + 1, std::memory_order_release);
  return reinterpret_cast<std::uint64_t*>(r.base);
}

std::uint64_t* TmHeap::shadow_of(const void* addr) const {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::size_t count = region_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    const Region& r = regions_[i];
    if (a >= r.base && a < r.base + r.words * 8) return r.shadow + (a - r.base) / 8;
  }
  return fallback_.get() + (hash_addr(addr) & (kFallbackLocks - 1));
}

bool TmHeap::contains(const void* addr) const {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::size_t count = region_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    const Region& r = regions_[i];
    if (a >= r.base && a < r.base + r.words * 8) return true;
  }
  return false;
}

}  // namespace phtm::tm
