// TM heap: the allocator all benchmark applications draw shared
// transactional data from.
//
// Besides alignment guarantees, the heap maintains a *shadow word* for every
// data word. PART-HTM-O's address-embedded write locks (paper Sec. 5.5)
// steal the LSB of a wrapped pointer; addressing real host memory makes bit
// stealing on arbitrary application data UB, so this repo stores the same
// one-lock-per-address bit in the co-located shadow word instead (see
// DESIGN.md, substitution table). Semantics are identical: one lock per
// word address, zero hash aliasing, one extra memory indirection per access.
//
// shadow_of() sits on PART-HTM-O's per-access hot path, so region lookup is
// lock-free: slabs are published into a fixed-capacity descriptor array
// with release stores and only ever appended.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace phtm::tm {

class TmHeap {
 public:
  /// Process-wide heap used by apps/benches; tests may build private heaps.
  static TmHeap& instance();

  TmHeap();
  TmHeap(const TmHeap&) = delete;
  TmHeap& operator=(const TmHeap&) = delete;

  /// Allocate `bytes` of zeroed, 64-byte-aligned shared memory.
  void* alloc(std::size_t bytes);

  template <typename T>
  T* alloc_array(std::size_t n) {
    return static_cast<T*>(alloc(n * sizeof(T)));
  }

  /// The shadow lock word co-located with the data word holding `addr`.
  /// Falls back to a hashed global lock table for non-heap addresses (only
  /// relevant if an application puts TM data outside the heap).
  std::uint64_t* shadow_of(const void* addr) const;

  bool contains(const void* addr) const;

 private:
  struct Region {
    std::uintptr_t base = 0;
    std::size_t words = 0;
    std::uint64_t* shadow = nullptr;
  };

  static constexpr std::size_t kSlabWords = (64u << 20) / 8;  // 64 MiB slabs
  static constexpr std::size_t kMaxRegions = 64;
  static constexpr std::size_t kFallbackLocks = 1u << 16;

  std::mutex alloc_mu_;
  std::vector<std::unique_ptr<std::uint64_t[]>> owned_;  // keeps slabs alive
  std::size_t cur_used_words_ = 0;
  std::size_t cur_region_ = 0;

  Region regions_[kMaxRegions];
  // shared-atomic: allocator bookkeeping (publication counter for the
  // lock-free shadow_of() reader), not transactional data.
  std::atomic<std::size_t> region_count_{0};

  std::unique_ptr<std::uint64_t[]> fallback_;
};

}  // namespace phtm::tm
