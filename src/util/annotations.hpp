// Race-annotation layer: dynamic-analysis hooks behind no-op macros.
//
// Every cross-thread happens-before edge in this repository is carried by
// C++/GCC atomics, which ThreadSanitizer models natively. The macros here
// serve three purposes on top of that:
//
//  1. *Document* the two protocol edges that correctness hangs on — the
//     doom/commit latch (sim/runtime.cpp) and ring publication
//     (core/ring.hpp) — at the exact source line where each side of the
//     edge executes. Under TSan the annotations re-assert edges the atomics
//     already establish (harmless); without sanitizers they compile to
//     nothing.
//  2. Mark *benign* races explicitly. A racy-by-design access (e.g. an
//     approximate statistics read) must carry
//     PHTM_ANNOTATE_BENIGN_RACE_SIZED at its declaration, with the
//     justification in the description string — never a tsan.supp entry.
//     Suppressions hide every future bug on the same symbol; annotations
//     hide exactly the bytes they name (policy enforced by tools/lint_tm.py:
//     no `race:phtm::` suppressions).
//  3. Give tests a stable seam: the negative harness
//     (tests/tsan_negative_fixture.cpp) races through these wrappers to
//     prove they do not silence TSan, and tests/annotations_test.cpp pins
//     the no-op contract of the unsanitized build.
//
// Detection: PHTM_TSAN_ENABLED is 1 when the TU is compiled with
// -fsanitize=thread (GCC defines __SANITIZE_THREAD__; Clang exposes
// __has_feature(thread_sanitizer)), independent of the build system, so
// manual flag experiments behave like the `tsan` preset.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_THREAD__)
#define PHTM_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PHTM_TSAN_ENABLED 1
#endif
#endif
#ifndef PHTM_TSAN_ENABLED
#define PHTM_TSAN_ENABLED 0
#endif

#if PHTM_TSAN_ENABLED

// Dynamic-annotation entry points exported by the TSan runtime (libtsan's
// Annotate* interface and the lower-level __tsan_* hooks). Declared here
// instead of including a sanitizer header so the unsanitized build needs no
// sanitizer toolchain files at all.
extern "C" {
void AnnotateHappensBefore(const char* file, int line, const volatile void* addr);
void AnnotateHappensAfter(const char* file, int line, const volatile void* addr);
void AnnotateBenignRaceSized(const char* file, int line, const volatile void* addr,
                             unsigned long size, const char* description);
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}

/// Release side of a happens-before edge keyed on `addr`.
#define PHTM_ANNOTATE_HAPPENS_BEFORE(addr) \
  AnnotateHappensBefore(__FILE__, __LINE__, (const volatile void*)(addr))

/// Acquire side of a happens-before edge keyed on `addr`.
#define PHTM_ANNOTATE_HAPPENS_AFTER(addr) \
  AnnotateHappensAfter(__FILE__, __LINE__, (const volatile void*)(addr))

/// Declare [addr, addr+size) intentionally racy; `desc` states why the race
/// is benign. Scoped to exactly these bytes — prefer this over tsan.supp.
#define PHTM_ANNOTATE_BENIGN_RACE_SIZED(addr, size, desc)                      \
  AnnotateBenignRaceSized(__FILE__, __LINE__, (const volatile void*)(addr),    \
                          (unsigned long)(size), (desc))

/// Raw TSan acquire/release hooks for code that implements its own
/// synchronization primitive (same semantics as the Annotate* pair, without
/// the file/line bookkeeping).
#define PHTM_TSAN_ACQUIRE(addr) __tsan_acquire((void*)(addr))
#define PHTM_TSAN_RELEASE(addr) __tsan_release((void*)(addr))

#else  // !PHTM_TSAN_ENABLED

// No-op expansions. Each evaluates its arguments exactly zero times and
// yields void, so annotated code compiles identically (including in
// constant-folding and dead-store terms) with and without sanitizers;
// tests/annotations_test.cpp pins this contract with side-effecting
// argument expressions.
#define PHTM_ANNOTATE_HAPPENS_BEFORE(addr) ((void)0)
#define PHTM_ANNOTATE_HAPPENS_AFTER(addr) ((void)0)
#define PHTM_ANNOTATE_BENIGN_RACE_SIZED(addr, size, desc) ((void)0)
#define PHTM_TSAN_ACQUIRE(addr) ((void)0)
#define PHTM_TSAN_RELEASE(addr) ((void)0)

#endif  // PHTM_TSAN_ENABLED

// ---------------------------------------------------------------------------
// Clang thread-safety analysis (-Wthread-safety).
//
// Static lock-discipline checking, orthogonal to the dynamic TSan layer
// above: the compiler proves at build time that every access to a
// GUARDED_BY field happens while the named capability is held, and that
// ACQUIRE/RELEASE functions pair up on every path. GCC (and pre-attribute
// Clang) sees empty expansions, so the annotations are zero-cost outside
// a Clang build; CMake adds -Wthread-safety only for Clang.
//
// Only the simulator's true blocking primitives are annotated — the
// monitor-table bucket spinlock and the slot-allocation spinlock
// (sim/runtime.hpp). The protocol layer's ownership story is words +
// atomics, which this analysis cannot model; that side is covered by
// tools/tmcheck instead.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PHTM_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef PHTM_TS_ATTR
#define PHTM_TS_ATTR(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability (e.g. Spinlock).
#define PHTM_CAPABILITY(name) PHTM_TS_ATTR(capability(name))
/// Marks an RAII type that acquires in its ctor and releases in its dtor.
#define PHTM_SCOPED_CAPABILITY PHTM_TS_ATTR(scoped_lockable)
/// Field/function access requires the capability to be held.
#define PHTM_GUARDED_BY(x) PHTM_TS_ATTR(guarded_by(x))
#define PHTM_PT_GUARDED_BY(x) PHTM_TS_ATTR(pt_guarded_by(x))
/// Function acquires/releases the capability (itself when no arg).
#define PHTM_ACQUIRE(...) PHTM_TS_ATTR(acquire_capability(__VA_ARGS__))
#define PHTM_RELEASE(...) PHTM_TS_ATTR(release_capability(__VA_ARGS__))
#define PHTM_TRY_ACQUIRE(...) PHTM_TS_ATTR(try_acquire_capability(__VA_ARGS__))
/// Caller must already hold / must NOT hold the capability.
#define PHTM_REQUIRES(...) PHTM_TS_ATTR(requires_capability(__VA_ARGS__))
#define PHTM_EXCLUDES(...) PHTM_TS_ATTR(locks_excluded(__VA_ARGS__))
/// Escape hatch for code the analysis cannot follow (must be justified).
#define PHTM_NO_THREAD_SAFETY_ANALYSIS PHTM_TS_ATTR(no_thread_safety_analysis)
