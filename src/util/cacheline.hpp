// Cache-line geometry and padding helpers shared by every layer.
//
// All conflict detection in the HTM simulator is cache-line granular, and
// all hot shared metadata (signatures, ring entries, per-thread counters)
// is laid out in whole cache lines to keep simulated and real false sharing
// under the library's control.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace phtm {

/// Cache-line size assumed throughout (Intel L1D line).
inline constexpr std::size_t kCacheLineBytes = 64;

/// log2(kCacheLineBytes); used to derive line ids from addresses.
inline constexpr unsigned kCacheLineShift = 6;

static_assert((std::size_t{1} << kCacheLineShift) == kCacheLineBytes);

/// Identifier of the cache line containing `addr`.
inline std::uint64_t line_of(const void* addr) noexcept {
  return reinterpret_cast<std::uintptr_t>(addr) >> kCacheLineShift;
}

/// Number of distinct cache lines covered by [addr, addr+bytes).
inline std::uint64_t lines_spanned(const void* addr, std::size_t bytes) noexcept {
  if (bytes == 0) return 0;
  const auto first = line_of(addr);
  const auto last =
      (reinterpret_cast<std::uintptr_t>(addr) + bytes - 1) >> kCacheLineShift;
  return last - first + 1;
}

/// A value padded out to exclusively own one (or more) cache line(s).
/// Used for per-thread counters and global single-word metadata so that
/// unrelated updates never share a line.
template <typename T>
struct alignas(kCacheLineBytes) Padded {
  T value{};
  char pad_[kCacheLineBytes - (sizeof(T) % kCacheLineBytes == 0
                                   ? kCacheLineBytes
                                   : sizeof(T) % kCacheLineBytes)]{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

static_assert(sizeof(Padded<std::uint64_t>) == kCacheLineBytes);

/// CPU relax hint for spin loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

}  // namespace phtm
