// Minimal command-line option parsing for bench/example binaries.
//
// Supports `--key value`, `--key=value` and bare `--flag`; unknown keys are
// collected so google-benchmark flags can pass through untouched.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace phtm {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        positional_.push_back(a);
        continue;
      }
      a = a.substr(2);
      const auto eq = a.find('=');
      if (eq != std::string::npos) {
        kv_[a.substr(0, eq)] = a.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[a] = argv[++i];
      } else {
        kv_[a] = "1";
      }
    }
  }

  bool has(const std::string& k) const { return kv_.count(k) != 0; }

  std::string get(const std::string& k, const std::string& dflt = "") const {
    const auto it = kv_.find(k);
    return it == kv_.end() ? dflt : it->second;
  }

  std::int64_t get_int(const std::string& k, std::int64_t dflt) const {
    const auto it = kv_.find(k);
    return it == kv_.end() ? dflt : std::stoll(it->second);
  }

  double get_double(const std::string& k, double dflt) const {
    const auto it = kv_.find(k);
    return it == kv_.end() ? dflt : std::stod(it->second);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace phtm
