// Small non-cryptographic hash utilities used by signatures and the
// simulator's monitor table.
#pragma once

#include <cstdint>

namespace phtm {

/// Finalizer from MurmurHash3 / splitmix64; good avalanche, cheap.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Hash an address (pointer value) to a uniformly distributed 64-bit value.
inline std::uint64_t hash_addr(const void* p) noexcept {
  return mix64(reinterpret_cast<std::uintptr_t>(p));
}

/// Hash a cache-line id.
inline std::uint64_t hash_line(std::uint64_t line) noexcept { return mix64(line); }

}  // namespace phtm
