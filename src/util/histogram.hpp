// Log-bucketed latency histogram (HdrHistogram-style, fixed footprint).
//
// Benchmarks record per-transaction latencies and report percentiles; the
// partitioned path's effect on tail latency (one long transaction becomes
// many short ones plus software glue) is only visible in p95/p99, not in
// throughput averages.
//
// Buckets: 64 powers of two, each split into 16 linear sub-buckets —
// <= 6.25% relative error over [1ns, ~584y]. record() is lock-free
// (per-thread instances are merged offline, like StatSheet).
#pragma once

#include <array>
#include <cstdint>

namespace phtm {

class Histogram {
 public:
  static constexpr unsigned kSub = 16;       // linear sub-buckets per octave
  static constexpr unsigned kOctaves = 64;
  static constexpr unsigned kBuckets = kSub * kOctaves;

  void record(std::uint64_t value) noexcept {
    ++counts_[bucket_of(value)];
    ++n_;
    total_ += value;
    if (value > max_) max_ = value;
    if (value < min_ || n_ == 1) min_ = value;
  }

  void merge(const Histogram& o) noexcept {
    for (unsigned i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    n_ += o.n_;
    total_ += o.total_;
    if (o.n_) {
      if (o.max_ > max_) max_ = o.max_;
      if (n_ == o.n_ || o.min_ < min_) min_ = o.min_;
    }
  }

  void clear() noexcept {
    counts_.fill(0);
    n_ = 0;
    total_ = 0;
    min_ = 0;
    max_ = 0;
  }

  std::uint64_t count() const noexcept { return n_; }
  std::uint64_t max() const noexcept { return max_; }
  std::uint64_t min() const noexcept { return min_; }
  double mean() const noexcept {
    return n_ ? static_cast<double>(total_) / static_cast<double>(n_) : 0.0;
  }

  /// Value at quantile q in [0,1] (upper bound of the containing bucket).
  std::uint64_t quantile(double q) const noexcept {
    if (n_ == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n_));
    if (rank >= n_) rank = n_ - 1;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > rank) return bucket_upper(i);
    }
    return max_;
  }

  // --- bucket math (exposed for tests) ---

  static unsigned bucket_of(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<unsigned>(v);  // exact small values
    const unsigned msb = 63 - static_cast<unsigned>(__builtin_clzll(v));
    const unsigned octave = msb - 3;  // values >= 16 start at octave 1
    const unsigned sub = static_cast<unsigned>((v >> (msb - 4)) & (kSub - 1));
    const unsigned idx = octave * kSub + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static std::uint64_t bucket_upper(unsigned idx) noexcept {
    if (idx < kSub) return idx;
    const unsigned octave = idx / kSub;
    const unsigned sub = idx % kSub;
    const unsigned msb = octave + 3;
    // Arithmetic add: for the top sub-bucket the increment carries into the
    // next octave (upper bound = 2^(msb+1) - 1).
    return (std::uint64_t{1} << msb) + (std::uint64_t{sub + 1} << (msb - 4)) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t n_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace phtm
