// Model-checker hook layer: schedule-exploration yield points behind no-op
// macros, mirroring util/annotations.hpp.
//
// The systematic interleaving explorer (src/mc/) runs 2-4 transactions under
// a cooperative virtual scheduler that context-switches ONLY at the protocol
// decision points marked by these macros. In ordinary builds every macro
// expands to `((void)0)` — zero argument evaluations, zero codegen — so the
// production libraries carry no trace of the instrumentation. The mc build
// (src/mc/CMakeLists.txt) recompiles the protocol translation units with
// `PHTM_MC=1`, turning each marker into a call into the scheduler.
//
// Two kinds of marker exist:
//
//  - PHTM_MC_YIELD(kind, addr): placed immediately BEFORE a shared-memory
//    protocol action. The scheduler parks the thread here; when the thread
//    is next scheduled it performs the action plus any purely thread-local
//    code up to its next marker as one atomic step. `addr` names the shared
//    word the action touches (the explorer's dependence relation is
//    cache-line granular); pass nullptr for composite actions whose
//    footprint spans many lines (e.g. the commit latch, which publishes the
//    whole write buffer) — a null footprint is treated as dependent with
//    everything, which is conservative and therefore sound.
//
//  - PHTM_MC_SPIN(addr): placed inside a spin-wait loop body, after the
//    condition on `addr` was observed to fail. A spin yield is a *forced*
//    deschedule: re-running the check with no intervening action cannot
//    change its outcome (one thread runs at a time), so the scheduler never
//    re-picks the spinning thread and never charges the switch as a
//    preemption — only the choice of successor thread is explored. If every
//    live thread is parked in a spin, the explorer reports a deadlock with
//    its replay seed.
//
// Placement policy is linted: tools/lint_tm.py rule R6 requires every
// PHTM_MC marker in a protocol header to carry an `mc-yield:` justification
// comment (same line or the comment block above) explaining why the point
// is a scheduling decision.
#pragma once

namespace phtm::mc {

/// Classification of a yield point; the explorer's dependence relation and
/// the replay trace printer both key on it.
enum class YieldKind : unsigned char {
  kHwRead = 0,    ///< HtmOps::read (monitored transactional load)
  kHwWrite,       ///< HtmOps::write (buffered transactional store)
  kHwSubscribe,   ///< HtmOps::subscribe (read-set registration only)
  kHwCommit,      ///< commit latch CAS + write-buffer publication
  kNtLoad,        ///< strong-atomicity software load
  kNtStore,       ///< strong-atomicity software store
  kNtRmw,         ///< strong-atomicity software RMW (cas/fetch-op)
  kRawLoad,       ///< designated raw atomic load (ring/lock-table scans)
  kRawStore,      ///< designated raw atomic store (STM metadata)
  kSpin,          ///< spin-wait recheck (forced deschedule, not a branch)
};

#if defined(PHTM_MC) && PHTM_MC

/// Defined by the mc scheduler (src/mc/sched.cpp). No-op for threads not
/// registered with an active exploration (e.g. the explorer main thread).
void yield_hook(YieldKind kind, const void* addr) noexcept;

#define PHTM_MC_YIELD(kind, addr) \
  ::phtm::mc::yield_hook(::phtm::mc::YieldKind::kind, \
                         static_cast<const void*>(addr))
#define PHTM_MC_SPIN(addr) \
  ::phtm::mc::yield_hook(::phtm::mc::YieldKind::kSpin, \
                         static_cast<const void*>(addr))

#else  // !PHTM_MC

// No-op expansions: arguments are evaluated exactly zero times, matching the
// contract of util/annotations.hpp (pinned by tests/annotations_test.cpp).
#define PHTM_MC_YIELD(kind, addr) ((void)0)
#define PHTM_MC_SPIN(addr) ((void)0)

#endif  // PHTM_MC

}  // namespace phtm::mc
