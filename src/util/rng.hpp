// Deterministic per-thread random number generation.
//
// Benchmarks and workload generators must be reproducible across runs and
// independent across threads; xoshiro256** seeded through splitmix64 gives
// both with no shared state.
#pragma once

#include <cstdint>

#include "util/hash.hpp"

namespace phtm {

/// xoshiro256** PRNG. Not thread-safe; create one per thread.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 stream to fill the state; guards against all-zero state.
    for (auto& w : s_) {
      seed = mix64(seed + 0x9e3779b97f4a7c15ull);
      w = seed | 1u;
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

  /// Uniform double in [0,1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace phtm
