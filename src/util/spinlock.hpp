// Spin locks used for simulator-internal critical sections.
//
// These protect *simulator bookkeeping* (monitor-table buckets, software
// commit of the global ring), never application data; hold times are a few
// dozen instructions so TTAS spinning is appropriate.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/annotations.hpp"
#include "util/cacheline.hpp"

namespace phtm {

/// Test-and-test-and-set spinlock, one cache line wide. A Clang
/// thread-safety capability: fields guarded by an instance are declared
/// PHTM_GUARDED_BY(that_lock) and checked by -Wthread-safety.
class PHTM_CAPABILITY("spinlock") alignas(kCacheLineBytes) Spinlock {
 public:
  void lock() noexcept PHTM_ACQUIRE() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // relaxed: TTAS inner spin; the acquiring exchange above provides the
      // ordering once the lock is observed free.
      // spin-waiver: simulator-internal lock with critical sections of a
      // few dozen instructions and no nesting; holders always release.
      while (locked_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }

  bool try_lock() noexcept PHTM_TRY_ACQUIRE(true) {
    // relaxed: contention probe only; acquisition ordering comes from the
    // exchange that follows.
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept PHTM_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> locked_{false};
};

/// RAII guard for Spinlock (and anything with lock/unlock).
template <typename L>
class PHTM_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(L& l) noexcept PHTM_ACQUIRE(l) : l_(l) { l_.lock(); }
  ~LockGuard() PHTM_RELEASE() { l_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  L& l_;
};

/// Bounded exponential backoff for transaction retry loops
/// (Fig. 1 line 59 `exp_backoff()`).
class Backoff {
 public:
  explicit Backoff(std::uint32_t min_spins = 32, std::uint32_t max_spins = 1u << 14)
      : cur_(min_spins), max_(max_spins) {}

  void pause() noexcept {
    // spin-waiver: bounded pause (cur_ iterations), not a wait on shared
    // state — it terminates unconditionally.
    for (std::uint32_t i = 0; i < cur_; ++i) cpu_relax();
    if (cur_ < max_) cur_ *= 2;
  }

  void reset(std::uint32_t min_spins = 32) noexcept { cur_ = min_spins; }

 private:
  std::uint32_t cur_;
  std::uint32_t max_;
};

}  // namespace phtm
