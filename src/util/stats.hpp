// Per-thread statistics sheets with lock-free recording and offline
// aggregation.
//
// Every TM backend records commits-per-path and aborts-per-cause here; the
// Table 1 reproduction and the abort-breakdown ablations are produced by
// aggregating these sheets.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/cacheline.hpp"

namespace phtm {

/// Why a hardware transaction aborted (mirrors the paper's taxonomy:
/// conflict / capacity / explicit / other).
enum class AbortCause : unsigned {
  kConflict = 0,   ///< data (or metadata false-) conflict with another txn
  kCapacity,       ///< write/read footprint exceeded the cache model
  kExplicit,       ///< software-requested abort (xabort)
  kOther,          ///< timer interrupt / asynchronous event
  kCauseCount,
};

/// Which execution path finally committed a transaction.
enum class CommitPath : unsigned {
  kHtm = 0,        ///< single hardware transaction (fast path / HTM-GL htm)
  kSoftware,       ///< partitioned path (Part-HTM) or STM execution
  kGlobalLock,     ///< slow path / global-lock fallback
  kPathCount,
};

inline const char* to_string(AbortCause c) {
  switch (c) {
    case AbortCause::kConflict: return "conflict";
    case AbortCause::kCapacity: return "capacity";
    case AbortCause::kExplicit: return "explicit";
    case AbortCause::kOther: return "other";
    default: return "?";
  }
}

inline const char* to_string(CommitPath p) {
  switch (p) {
    case CommitPath::kHtm: return "HTM";
    case CommitPath::kSoftware: return "SW";
    case CommitPath::kGlobalLock: return "GL";
    default: return "?";
  }
}

/// Why the contention manager left the hardware fast path (the decision
/// taxonomy of the policy state machine, DESIGN.md "Robustness &
/// contention management"). Recorded once per downgrade decision, not per
/// attempt.
enum class FallbackReason : unsigned {
  kConflictExhaustion = 0,  ///< conflict/explicit retry budget spent
  kPartitionedExhaustion,   ///< partitioned retry budget spent -> slow path
  kStarvation,              ///< bounded-wait detector escalated a spin loop
  kIrrevocable,             ///< transaction demanded the slow path up front
  kQuarantine,              ///< site degraded to software-only (probation)
  kReasonCount,
};

/// Persistence-domain operations (durable flavor, sim/persist.hpp). Each
/// op is traced as one kPersist event and counted here 1:1, same contract
/// as the abort/commit taxonomies above.
enum class PersistOp : unsigned {
  kPwb = 0,   ///< persist write-back (CLWB): word onto the flush queue
  kPfence,    ///< persist fence (SFENCE): drain the flush queue
  kPsync,     ///< persist sync: fence plus the full ADR drain
  kOpCount,
};

inline const char* to_string(PersistOp op) {
  switch (op) {
    case PersistOp::kPwb: return "pwb";
    case PersistOp::kPfence: return "pfence";
    case PersistOp::kPsync: return "psync";
    default: return "?";
  }
}

inline const char* to_string(FallbackReason r) {
  switch (r) {
    case FallbackReason::kConflictExhaustion: return "conflict_exhaustion";
    case FallbackReason::kPartitionedExhaustion: return "partitioned_exhaustion";
    case FallbackReason::kStarvation: return "starvation";
    case FallbackReason::kIrrevocable: return "irrevocable";
    case FallbackReason::kQuarantine: return "quarantine";
    default: return "?";
  }
}

/// One thread's counters; padded so threads never share lines.
///
/// Recording discipline: the sheet is single-writer (its owning thread),
/// but a telemetry drainer may snapshot() it mid-run. Increments therefore
/// go through relaxed atomic builtins — on every supported target this
/// compiles to the same load/add/store a plain `++` would, but the read in
/// a concurrent snapshot() is guaranteed un-torn (and TSan-clean), the
/// same discipline as the tracer cursors (src/obs/trace.hpp). The fields
/// stay plain uint64_t so offline aggregation (operator+=, tests) keeps
/// reading them directly once the writers are joined.
struct alignas(kCacheLineBytes) StatSheet {
  /// Commit-pipeline shard count mirrored here (util/ cannot include
  /// sig/signature.hpp without a layering inversion); a static_assert in
  /// core/part_htm.cpp pins the two together.
  static constexpr unsigned kRingShards = 4;

  std::uint64_t aborts[static_cast<unsigned>(AbortCause::kCauseCount)]{};
  std::uint64_t commits[static_cast<unsigned>(CommitPath::kPathCount)]{};
  std::uint64_t sub_htm_commits{};   ///< committed sub-HTM transactions
  std::uint64_t sub_htm_aborts{};    ///< aborted sub-HTM attempts
  std::uint64_t global_aborts{};     ///< partitioned-path global aborts
  std::uint64_t validations{};       ///< in-flight validations executed
  std::uint64_t ring_rollovers{};    ///< aborts due to ring overflow
  /// Per-shard software ring publications (slot fills at global commit).
  std::uint64_t ring_publishes_by_shard[kRingShards]{};
  /// Per-shard ring scans: shards a validation pass actually intersected
  /// (empty-shard watermark advances are free and not counted).
  std::uint64_t ring_validates_by_shard[kRingShards]{};
  std::uint64_t fallbacks[static_cast<unsigned>(FallbackReason::kReasonCount)]{};
  /// Persistence-domain ops by kind (durable flavor; zero elsewhere).
  std::uint64_t persists[static_cast<unsigned>(PersistOp::kOpCount)]{};
  std::uint64_t crashes{};     ///< injected crash freezes (kCrashPoint)
  std::uint64_t recoveries{};  ///< recover() passes executed

  void record_abort(AbortCause c) noexcept {
    bump(&aborts[static_cast<unsigned>(c)]);
  }
  void record_commit(CommitPath p) noexcept {
    bump(&commits[static_cast<unsigned>(p)]);
  }
  void record_fallback(FallbackReason r) noexcept {
    bump(&fallbacks[static_cast<unsigned>(r)]);
  }
  void add_sub_htm_commit() noexcept { bump(&sub_htm_commits); }
  void add_sub_htm_abort() noexcept { bump(&sub_htm_aborts); }
  void add_global_abort() noexcept { bump(&global_aborts); }
  void add_validation() noexcept { bump(&validations); }
  void add_ring_rollover() noexcept { bump(&ring_rollovers); }
  void add_ring_publish(unsigned shard) noexcept {
    bump(&ring_publishes_by_shard[shard]);
  }
  void add_ring_validate(unsigned shard) noexcept {
    bump(&ring_validates_by_shard[shard]);
  }
  void add_persist(PersistOp op) noexcept {
    bump(&persists[static_cast<unsigned>(op)]);
  }
  void add_crash() noexcept { bump(&crashes); }
  void add_recovery() noexcept { bump(&recoveries); }

  /// Torn-read-safe copy for a drainer polling a live sheet: every field is
  /// read with a relaxed atomic load, pairing with bump()'s stores. Counts
  /// from distinct fields may be skewed by in-flight recording (it is a
  /// moving snapshot), but each count is a value the writer actually stored.
  StatSheet snapshot() const noexcept {
    StatSheet s;
    for (unsigned i = 0; i < static_cast<unsigned>(AbortCause::kCauseCount); ++i)
      s.aborts[i] = read(&aborts[i]);
    for (unsigned i = 0; i < static_cast<unsigned>(CommitPath::kPathCount); ++i)
      s.commits[i] = read(&commits[i]);
    s.sub_htm_commits = read(&sub_htm_commits);
    s.sub_htm_aborts = read(&sub_htm_aborts);
    s.global_aborts = read(&global_aborts);
    s.validations = read(&validations);
    s.ring_rollovers = read(&ring_rollovers);
    for (unsigned i = 0; i < kRingShards; ++i) {
      s.ring_publishes_by_shard[i] = read(&ring_publishes_by_shard[i]);
      s.ring_validates_by_shard[i] = read(&ring_validates_by_shard[i]);
    }
    for (unsigned i = 0; i < static_cast<unsigned>(FallbackReason::kReasonCount); ++i)
      s.fallbacks[i] = read(&fallbacks[i]);
    for (unsigned i = 0; i < static_cast<unsigned>(PersistOp::kOpCount); ++i)
      s.persists[i] = read(&persists[i]);
    s.crashes = read(&crashes);
    s.recoveries = read(&recoveries);
    return s;
  }

  std::uint64_t total_aborts() const noexcept {
    std::uint64_t t = 0;
    for (auto a : aborts) t += a;
    return t;
  }
  std::uint64_t total_commits() const noexcept {
    std::uint64_t t = 0;
    for (auto c : commits) t += c;
    return t;
  }

  StatSheet& operator+=(const StatSheet& o) noexcept {
    for (unsigned i = 0; i < static_cast<unsigned>(AbortCause::kCauseCount); ++i)
      aborts[i] += o.aborts[i];
    for (unsigned i = 0; i < static_cast<unsigned>(CommitPath::kPathCount); ++i)
      commits[i] += o.commits[i];
    sub_htm_commits += o.sub_htm_commits;
    sub_htm_aborts += o.sub_htm_aborts;
    global_aborts += o.global_aborts;
    validations += o.validations;
    ring_rollovers += o.ring_rollovers;
    for (unsigned i = 0; i < kRingShards; ++i) {
      ring_publishes_by_shard[i] += o.ring_publishes_by_shard[i];
      ring_validates_by_shard[i] += o.ring_validates_by_shard[i];
    }
    for (unsigned i = 0; i < static_cast<unsigned>(FallbackReason::kReasonCount); ++i)
      fallbacks[i] += o.fallbacks[i];
    for (unsigned i = 0; i < static_cast<unsigned>(PersistOp::kOpCount); ++i)
      persists[i] += o.persists[i];
    crashes += o.crashes;
    recoveries += o.recoveries;
    return *this;
  }

 private:
  // raw-atomic: single-writer counter bump — relaxed load+store of the
  // owner's own field (never a contended RMW), paired with the relaxed
  // loads in snapshot() so a concurrent drainer cannot tear the read.
  // relaxed: counters are monotone and advisory; a drainer that misses the
  // latest bump reads a slightly stale total, never a torn or invented one.
  static void bump(std::uint64_t* c) noexcept {
    __atomic_store_n(c, __atomic_load_n(c, __ATOMIC_RELAXED) + 1,
                     __ATOMIC_RELAXED);
  }
  // raw-atomic: relaxed: snapshot read side of bump() (see above).
  static std::uint64_t read(const std::uint64_t* c) noexcept {
    return __atomic_load_n(c, __ATOMIC_RELAXED);
  }
};

/// Aggregated view with the percentages Table 1 reports.
struct StatSummary {
  StatSheet total{};

  static StatSummary aggregate(const std::vector<StatSheet>& sheets) {
    StatSummary s;
    for (const auto& sh : sheets) s.total += sh;
    return s;
  }

  double abort_pct(AbortCause c) const {
    const auto t = total.total_aborts();
    if (t == 0) return 0.0;
    return 100.0 * static_cast<double>(total.aborts[static_cast<unsigned>(c)]) /
           static_cast<double>(t);
  }

  double commit_pct(CommitPath p) const {
    const auto t = total.total_commits();
    if (t == 0) return 0.0;
    return 100.0 * static_cast<double>(total.commits[static_cast<unsigned>(p)]) /
           static_cast<double>(t);
  }
};

}  // namespace phtm
