// Fixed-width text table printer for benchmark harness output.
//
// Benchmarks print paper-shaped rows (series per algorithm, one column per
// thread count) so EXPERIMENTS.md can quote them directly.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace phtm {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int prec = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> w(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
        if (r[c].size() > w[c]) w[c] = r[c].size();

    auto line = [&] {
      os << '+';
      for (auto cw : w) os << std::string(cw + 2, '-') << '+';
      os << '\n';
    };
    auto row = [&](const std::vector<std::string>& r) {
      os << '|';
      for (std::size_t c = 0; c < w.size(); ++c) {
        const std::string& cell = c < r.size() ? r[c] : std::string{};
        os << ' ' << cell << std::string(w[c] - cell.size() + 1, ' ') << '|';
      }
      os << '\n';
    };
    line();
    row(header_);
    line();
    for (const auto& r : rows_) row(r);
    line();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace phtm
