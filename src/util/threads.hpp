// Thread-team runner used by tests and benchmarks.
//
// Starts N workers behind a barrier, runs a timed or count-bounded region,
// and joins; benchmark throughput is (total commits) / (wall time of the
// timed region).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/cacheline.hpp"

namespace phtm {

/// Sense-reversing barrier for small thread counts.
class alignas(kCacheLineBytes) Barrier {
 public:
  explicit Barrier(unsigned parties) : parties_(parties) {}

  void arrive_and_wait() noexcept {
    // relaxed: sense only flips in phases this thread itself participates
    // in; the acq_rel fetch_add below orders the arrival.
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      // relaxed: reset is ordered before release by the sense store below;
      // waiters of the *next* phase synchronize on that store.
      count_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense)
        std::this_thread::yield();
    }
  }

 private:
  const unsigned parties_;
  std::atomic<unsigned> count_{0};
  std::atomic<bool> sense_{false};
};

/// Runs `body(tid)` on `nthreads` threads; all start together.
inline void run_threads(unsigned nthreads,
                        const std::function<void(unsigned)>& body) {
  Barrier start(nthreads);
  std::vector<std::thread> ts;
  ts.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) {
    ts.emplace_back([&, t] {
      start.arrive_and_wait();
      body(t);
    });
  }
  for (auto& th : ts) th.join();
}

/// Timed throughput region: workers loop `body(tid)` until `stop` is set by
/// the controller after `duration`. Returns elapsed seconds.
inline double run_timed(unsigned nthreads, std::chrono::milliseconds duration,
                        const std::function<void(unsigned, std::atomic<bool>&)>& body) {
  std::atomic<bool> stop{false};
  Barrier start(nthreads + 1);
  std::vector<std::thread> ts;
  ts.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) {
    ts.emplace_back([&, t] {
      start.arrive_and_wait();
      body(t, stop);
    });
  }
  start.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(duration);
  stop.store(true, std::memory_order_release);
  for (auto& th : ts) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace phtm
