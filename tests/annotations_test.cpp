// Contract tests for the race-annotation layer (util/annotations.hpp).
//
// Without sanitizers the macros must be *exact* no-ops: void-typed, zero
// argument evaluations, usable as single statements. Under
// PHTM_SANITIZE=thread they forward to the TSan runtime — then the
// companion negative harness (tsan_negative_check.cmake around
// tsan_negative_fixture.cpp) proves a race still fires *through* the
// wrappers, i.e. the layer never silences the sanitizer.

#include "util/annotations.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>

namespace {

#if !PHTM_TSAN_ENABLED

TEST(Annotations, DisabledOutsideSanitizedBuilds) {
  EXPECT_EQ(PHTM_TSAN_ENABLED, 0);
}

TEST(Annotations, NoOpMacrosEvaluateArgumentsZeroTimes) {
  int side_effects = 0;
  std::uint64_t word = 0;
  PHTM_ANNOTATE_HAPPENS_BEFORE((++side_effects, &word));
  PHTM_ANNOTATE_HAPPENS_AFTER((++side_effects, &word));
  PHTM_ANNOTATE_BENIGN_RACE_SIZED((++side_effects, &word),
                                  (++side_effects, sizeof(word)),
                                  "must not evaluate");
  PHTM_TSAN_ACQUIRE((++side_effects, &word));
  PHTM_TSAN_RELEASE((++side_effects, &word));
  EXPECT_EQ(side_effects, 0);
  EXPECT_EQ(word, 0u);
}

#else  // PHTM_TSAN_ENABLED

TEST(Annotations, EnabledUnderTsan) {
  EXPECT_EQ(PHTM_TSAN_ENABLED, 1);
}

TEST(Annotations, HappensBeforeEdgeIsEstablished) {
  // A plain-variable handoff carried *only* by an annotation edge: without
  // the wrappers reaching the TSan runtime this test would be reported as a
  // race and fail via halt_on_error.
  std::uint64_t payload = 0;
  std::uint64_t sync_token = 0;
  std::atomic<bool> published{false};
  std::thread producer([&] {
    payload = 42;
    PHTM_ANNOTATE_HAPPENS_BEFORE(&sync_token);
    published.store(true, std::memory_order_relaxed);
  });
  while (!published.load(std::memory_order_relaxed)) std::this_thread::yield();
  PHTM_ANNOTATE_HAPPENS_AFTER(&sync_token);
  EXPECT_EQ(payload, 42u);
  producer.join();
}

TEST(Annotations, BenignRaceAnnotationScopesToTheNamedBytes) {
  static std::uint64_t racy_word = 0;
  PHTM_ANNOTATE_BENIGN_RACE_SIZED(&racy_word, sizeof(racy_word),
                                  "test: intentionally racy counter");
  std::thread other([&] { racy_word = 1; });
  racy_word = 2;  // unsynchronized on purpose; annotated benign
  other.join();
  EXPECT_NE(racy_word, 0u);
}

#endif  // PHTM_TSAN_ENABLED

TEST(Annotations, UsableAsSingleStatement) {
  // Must parse as one statement (no stray braces/semicolon issues).
  std::uint64_t word = 0;
  if (word == 0)
    PHTM_ANNOTATE_HAPPENS_BEFORE(&word);
  else
    PHTM_ANNOTATE_HAPPENS_AFTER(&word);
  for (int i = 0; i < 1; ++i) PHTM_TSAN_RELEASE(&word);
  SUCCEED();
}

TEST(Annotations, AcceptsConstAndVolatilePointees) {
  const std::uint64_t cword = 0;
  volatile std::uint64_t vword = 0;
  PHTM_ANNOTATE_HAPPENS_BEFORE(&cword);
  PHTM_ANNOTATE_HAPPENS_AFTER(&vword);
  PHTM_ANNOTATE_BENIGN_RACE_SIZED(&cword, sizeof(cword), "const pointee");
  EXPECT_EQ(cword + vword, 0u);  // also keeps both used in no-op builds
}

}  // namespace
