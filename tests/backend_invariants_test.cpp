// Cross-backend invariant suite: every TM algorithm in the repository must
// provide atomic, isolated, serializable transactions. Each test is
// instantiated for all 7 concurrent backends (TEST_P), so an invariant
// violation pinpoints the offending protocol.
#include "test_common.hpp"

#include <numeric>

namespace phtm::test {
namespace {

using tm::Ctx;

class BackendInvariants : public testing::TestWithParam<tm::Algo> {};

// --- 1. Lost-update freedom: concurrent increments of one counter --------

TEST_P(BackendInvariants, CounterIncrementsAreNotLost) {
  BackendHarness h(GetParam());
  auto* counter = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);
  *counter = 0;

  constexpr unsigned kThreads = 6;
  constexpr unsigned kPerThread = 300;

  struct Env {
    std::uint64_t* counter;
  } env{counter};

  h.run(kThreads, [&](unsigned, tm::Worker& w) {
    for (unsigned i = 0; i < kPerThread; ++i) {
      tm::Txn t = make_txn(
          +[](Ctx& c, const void* e, void*, unsigned) {
            auto* cnt = static_cast<const Env*>(e)->counter;
            c.write(cnt, c.read(cnt) + 1);
            return false;
          },
          &env, nullptr, 0);
      h.backend().execute(w, t);
    }
  });

  EXPECT_EQ(*counter, std::uint64_t{kThreads} * kPerThread);
}

// --- 2. Multi-segment atomicity: all-or-nothing across partitions --------

TEST_P(BackendInvariants, MultiSegmentTransactionIsAtomic) {
  BackendHarness h(GetParam());
  constexpr unsigned kCells = 4;
  auto* cells = tm::TmHeap::instance().alloc_array<std::uint64_t>(kCells);

  struct Env {
    std::uint64_t* cells;
  } env{cells};

  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 200;

  h.run(kThreads, [&](unsigned, tm::Worker& w) {
    for (unsigned i = 0; i < kPerThread; ++i) {
      // One segment per cell: under PART-HTM each runs as its own sub-HTM
      // transaction, yet all four increments must commit together.
      tm::Txn t = make_txn(
          +[](Ctx& c, const void* e, void*, unsigned seg) {
            auto* cell = static_cast<const Env*>(e)->cells + seg;
            c.write(cell, c.read(cell) + 1);
            return seg + 1 < kCells;
          },
          &env, nullptr, 0);
      h.backend().execute(w, t);
    }
  });

  for (unsigned i = 0; i < kCells; ++i)
    EXPECT_EQ(cells[i], std::uint64_t{kThreads} * kPerThread) << "cell " << i;
}

// --- 3. Isolation: transfers preserve the bank's total --------------------

TEST_P(BackendInvariants, BankTransfersPreserveTotalAndReadersSeeIt) {
  BackendHarness h(GetParam());
  constexpr unsigned kAccounts = 64;
  constexpr std::uint64_t kInitial = 1000;
  auto* accounts = tm::TmHeap::instance().alloc_array<std::uint64_t>(kAccounts);
  for (unsigned i = 0; i < kAccounts; ++i) accounts[i] = kInitial;

  struct Env {
    std::uint64_t* accounts;
  } env{accounts};
  struct Locals {
    std::uint64_t from, to, amount, observed_total;
  };

  constexpr unsigned kThreads = 6;
  constexpr unsigned kPerThread = 250;
  std::atomic<std::uint64_t> bad_observations{0};

  h.run(kThreads, [&](unsigned, tm::Worker& w) {
    Locals l{};
    for (unsigned i = 0; i < kPerThread; ++i) {
      if (i % 4 == 3) {
        // Read-only audit: a committed snapshot must sum to the invariant.
        l.observed_total = 0;
        tm::Txn t = make_txn(
            +[](Ctx& c, const void* e, void* lp, unsigned) {
              auto& loc = *static_cast<Locals*>(lp);
              auto* acc = static_cast<const Env*>(e)->accounts;
              std::uint64_t sum = 0;
              for (unsigned a = 0; a < kAccounts; ++a) sum += c.read(acc + a);
              loc.observed_total = sum;
              return false;
            },
            &env, &l, sizeof(l));
        h.backend().execute(w, t);
        if (l.observed_total != std::uint64_t{kAccounts} * kInitial)
          bad_observations.fetch_add(1);
      } else {
        l.from = w.rng().below(kAccounts);
        l.to = w.rng().below(kAccounts);
        l.amount = w.rng().below(20);
        tm::Txn t = make_txn(
            +[](Ctx& c, const void* e, void* lp, unsigned) {
              auto& loc = *static_cast<Locals*>(lp);
              auto* acc = static_cast<const Env*>(e)->accounts;
              const std::uint64_t f = c.read(acc + loc.from);
              if (f >= loc.amount) {
                c.write(acc + loc.from, f - loc.amount);
                c.write(acc + loc.to, c.read(acc + loc.to) + loc.amount);
              }
              return false;
            },
            &env, &l, sizeof(l));
        h.backend().execute(w, t);
      }
    }
  });

  EXPECT_EQ(bad_observations.load(), 0u);
  std::uint64_t total = 0;
  for (unsigned i = 0; i < kAccounts; ++i) total += accounts[i];
  EXPECT_EQ(total, std::uint64_t{kAccounts} * kInitial);
}

// --- 4. Resource-failure transactions still commit correctly -------------
// Write sets larger than the simulated L1 force HTM-GL to its lock path and
// PART-HTM to the partitioned path; the result must be identical.

TEST_P(BackendInvariants, OversizedWriteSetCommitsAtomically) {
  BackendHarness h(GetParam());
  // 1024 lines of writes: double the simulated L1 write capacity (512).
  constexpr unsigned kWords = 1024 * 8;
  constexpr unsigned kSegments = 16;
  auto* arr = tm::TmHeap::instance().alloc_array<std::uint64_t>(kWords);

  struct Env {
    std::uint64_t* arr;
  } env{arr};
  struct Locals {
    std::uint64_t stamp;
  };

  constexpr unsigned kThreads = 3;
  constexpr unsigned kPerThread = 8;

  h.run(kThreads, [&](unsigned tid, tm::Worker& w) {
    Locals l{};
    for (unsigned i = 0; i < kPerThread; ++i) {
      l.stamp = (std::uint64_t{tid} << 32) | (i + 1);
      tm::Txn t = make_txn(
          +[](Ctx& c, const void* e, void* lp, unsigned seg) {
            auto* a = static_cast<const Env*>(e)->arr;
            const auto stamp = static_cast<Locals*>(lp)->stamp;
            const unsigned chunk = kWords / kSegments;
            for (unsigned k = seg * chunk; k < (seg + 1) * chunk; ++k)
              c.write(a + k, stamp);
            return seg + 1 < kSegments;
          },
          &env, &l, sizeof(l));
      h.backend().execute(w, t);
    }
  });

  // Atomicity: after quiescence the whole array carries one single stamp.
  const std::uint64_t first = arr[0];
  for (unsigned k = 0; k < kWords; ++k)
    ASSERT_EQ(arr[k], first) << "torn transaction visible at word " << k;
}

// --- 5. Locals rollback: aborted attempts must not leak into locals -------

TEST_P(BackendInvariants, LocalsAreRolledBackAcrossRetries) {
  BackendHarness h(GetParam());
  auto* cell = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);

  struct Env {
    std::uint64_t* cell;
  } env{cell};
  struct Locals {
    std::uint64_t additions;  // must end exactly 1 per executed transaction
  };

  constexpr unsigned kThreads = 6;
  constexpr unsigned kPerThread = 200;
  std::atomic<std::uint64_t> leaked{0};

  h.run(kThreads, [&](unsigned, tm::Worker& w) {
    Locals l{};
    for (unsigned i = 0; i < kPerThread; ++i) {
      l.additions = 0;
      tm::Txn t = make_txn(
          +[](Ctx& c, const void* e, void* lp, unsigned) {
            auto& loc = *static_cast<Locals*>(lp);
            auto* cl = static_cast<const Env*>(e)->cell;
            loc.additions += 1;  // would exceed 1 if retries leaked
            c.write(cl, c.read(cl) + 1);
            return false;
          },
          &env, &l, sizeof(l));
      h.backend().execute(w, t);
      if (l.additions != 1) leaked.fetch_add(1);
    }
  });

  EXPECT_EQ(leaked.load(), 0u);
  EXPECT_EQ(*cell, std::uint64_t{kThreads} * kPerThread);
}

// --- 6. Write-after-read within one transaction reads its own writes ------

TEST_P(BackendInvariants, ReadYourOwnWrites) {
  BackendHarness h(GetParam());
  auto* cell = tm::TmHeap::instance().alloc_array<std::uint64_t>(4);

  struct Env {
    std::uint64_t* cell;
  } env{cell};
  struct Locals {
    std::uint64_t seen1, seen2;
  } l{};

  tm::Txn t = make_txn(
      +[](Ctx& c, const void* e, void* lp, unsigned seg) {
        auto& loc = *static_cast<Locals*>(lp);
        auto* cl = static_cast<const Env*>(e)->cell;
        if (seg == 0) {
          c.write(cl, 42);
          loc.seen1 = c.read(cl);  // own write, same segment
          return true;
        }
        loc.seen2 = c.read(cl);  // own write, previous segment (published
                                 // eagerly under PART-HTM, buffered in STMs)
        c.write(cl + 1, loc.seen2 + 1);
        return false;
      },
      &env, &l, sizeof(l));

  h.run(1, [&](unsigned, tm::Worker& w) { h.backend().execute(w, t); });

  EXPECT_EQ(l.seen1, 42u);
  EXPECT_EQ(l.seen2, 42u);
  EXPECT_EQ(cell[1], 43u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendInvariants,
                         testing::ValuesIn(concurrent_algos()), algo_param_name);

}  // namespace
}  // namespace phtm::test
