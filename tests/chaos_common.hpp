// Shared scaffolding for the chaos suites (tests/chaos_*).
//
// The chaos tests drive the PART-HTM backend on *real* threads while the
// fault-injection layer (sim/fault.hpp, chaos library flavor only)
// perturbs the protocol, and assert two properties per scenario:
//
//  - liveness: every transaction commits, and the total retry work stays
//    under an explicit bound (no livelock under any injector);
//  - correctness: per-round transaction histories, captured with the model
//    checker's Recorder (src/mc/history.hpp, header-only here), admit a
//    sequential witness — the same serializability/opacity verdict the
//    cooperative explorer computes, replayed on chaos traces.
//
// Under preemptive scheduling the Recorder's stamps carry no cross-thread
// ordering claim, so every begin/end stamp is zeroed before checking: the
// real-time constraints in mc/opacity.hpp become vacuous (0 < 0 is false)
// and the verdict is pure serializability/opacity, which is sound — it
// only admits more witnesses.
//
// Every suite seeds its fault plans from chaos_seed(): PHTM_CHAOS_SEED in
// the environment, or a fixed default. The seed is printed once so any
// failure replays exactly (see EXPERIMENTS.md, "Chaos harness").
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/part_htm.hpp"
#include "mc/history.hpp"
#include "mc/opacity.hpp"
#include "sim/config.hpp"
#include "sim/runtime.hpp"
#include "tm/heap.hpp"
#include "util/threads.hpp"

#if !defined(PHTM_FAULTS) || !PHTM_FAULTS
#error "chaos tests must link the chaos library flavor (PHTM_FAULTS=1)"
#endif

namespace phtm::test {

/// Replayable seed for every chaos fault plan: PHTM_CHAOS_SEED wins,
/// otherwise a fixed default. Printed once per process for replay.
inline std::uint64_t chaos_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("PHTM_CHAOS_SEED");
    const std::uint64_t v =
        env != nullptr ? std::strtoull(env, nullptr, 10) : 20260806ull;
    std::printf("[chaos] fault-plan seed = %llu "
                "(replay with PHTM_CHAOS_SEED=%llu)\n",
                static_cast<unsigned long long>(v),
                static_cast<unsigned long long>(v));
    std::fflush(stdout);
    return v;
  }();
  return seed;
}

/// Round-based history harness: each round runs one transaction per thread
/// against a PART-HTM backend, records every tracked access through the
/// model checker's Recorder, and checks the round's history for a
/// sequential witness. Rounds are independent (the recorder resets), so
/// the n! witness search stays exact and instant.
class ChaosHistoryHarness {
 public:
  static constexpr unsigned kCells = 8;

  ChaosHistoryHarness(const sim::HtmConfig& cfg, unsigned threads,
                      core::PartHtmBackend::Mode mode =
                          core::PartHtmBackend::Mode::kSerializable,
                      tm::BackendConfig bcfg = {})
      : rt_(cfg),
        backend_(rt_, bcfg, mode, /*no_fast=*/false),
        threads_(threads),
        opaque_(mode == core::PartHtmBackend::Mode::kOpaque) {
    cells_ = tm::TmHeap::instance().alloc_array<std::uint64_t>(kCells * 8);
    for (unsigned i = 0; i < kCells; ++i) cells_[i * 8] = 0;
    for (unsigned t = 0; t < threads; ++t)
      workers_.push_back(backend_.make_worker(t));
  }

  sim::HtmRuntime& runtime() noexcept { return rt_; }
  core::PartHtmBackend& backend() noexcept { return backend_; }

  /// Mark one thread's transactions irrevocable (forced slow path) — the
  /// glock-convoy scenarios pin every other thread behind that holder.
  void set_irrevocable(unsigned tid) { irrevocable_tid_ = static_cast<int>(tid); }

  /// Aggregate abort count across all workers so far (liveness bound).
  std::uint64_t total_aborts() const {
    std::uint64_t n = 0;
    for (const auto& w : workers_) n += w->stats().total_aborts();
    return n;
  }

  std::uint64_t total_commits(CommitPath p) const {
    std::uint64_t n = 0;
    for (const auto& w : workers_)
      n += w->stats().commits[static_cast<unsigned>(p)];
    return n;
  }

  /// One round: every thread executes one two-segment read-modify-write
  /// transaction over the shared cells; returns the history verdict.
  mc::HistoryVerdict run_round(unsigned round) {
    mc::Recorder rec;
    rec.reset(threads_);

    struct Env {
      std::uint64_t* cells;
      mc::Recorder* rec;
    } env{cells_, &rec};
    struct L {
      mc::TxLog log;  ///< must head the blob: abort paths roll nops back
      std::uint64_t tid;
      std::uint64_t a, b;
    };
    static_assert(std::is_trivially_copyable_v<L>);

    std::vector<std::pair<const std::uint64_t*, std::uint64_t>> initial;
    for (unsigned i = 0; i < kCells; ++i)
      initial.emplace_back(&cells_[i * 8], cells_[i * 8]);

    run_threads(threads_, [&](unsigned tid) {
      L l{};
      l.tid = tid;
      l.a = tid % kCells;
      l.b = (tid + 1 + round) % kCells;
      tm::Txn t;
      t.step = +[](tm::Ctx& c, const void* e, void* lp, unsigned seg) {
        const Env& en = *static_cast<const Env*>(e);
        L& loc = *static_cast<L*>(lp);
        const unsigned tid = static_cast<unsigned>(loc.tid);
        std::uint64_t* cell =
            &en.cells[(seg == 0 ? loc.a : loc.b) * 8];
        const std::uint64_t v =
            mc::rec_read(c, *en.rec, tid, loc.log, cell);
        mc::rec_write(c, *en.rec, tid, loc.log, cell, v + 1);
        return seg == 0;
      };
      t.env = &env;
      t.locals = &l;
      t.locals_bytes = sizeof(L);
      t.irrevocable = static_cast<int>(tid) == irrevocable_tid_;
      backend_.execute(*workers_[tid], t);
      rec.finish(tid, l.log);
    });

    mc::HistoryInput in;
    in.initial = std::move(initial);
    for (unsigned i = 0; i < kCells; ++i)
      in.final_mem.emplace_back(&cells_[i * 8], cells_[i * 8]);
    in.check_opacity = opaque_;
    for (unsigned tid = 0; tid < threads_; ++tid) {
      const mc::TxRecord& r = rec.record(tid);
      EXPECT_TRUE(r.committed) << "tid " << tid << " never committed";
      // Zeroed stamps: disable real-time constraints (see header comment).
      in.txns.push_back(mc::CommittedTx{tid, r.mirror, 0, 0});
      for (mc::Fragment f : r.fragments) {
        f.begin_step = 0;
        f.end_step = 0;
        in.fragments.push_back(std::move(f));
      }
    }
    return mc::check_history(in);
  }

  /// Run `rounds` rounds, asserting every round's history verdict.
  void run_checked(unsigned rounds) {
    for (unsigned r = 0; r < rounds; ++r) {
      const mc::HistoryVerdict v = run_round(r);
      ASSERT_TRUE(v.ok) << "round " << r << ": " << v.diagnosis
                        << "\nreplay with PHTM_CHAOS_SEED="
                        << chaos_seed();
    }
  }

 private:
  sim::HtmRuntime rt_;
  core::PartHtmBackend backend_;
  unsigned threads_;
  bool opaque_;
  int irrevocable_tid_ = -1;
  std::uint64_t* cells_ = nullptr;
  std::vector<std::unique_ptr<tm::Worker>> workers_;
};

}  // namespace phtm::test
