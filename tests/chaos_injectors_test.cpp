// Chaos suite: every fault injector (sim/fault.hpp) driven against the
// full PART-HTM three-path stack, asserting liveness (every transaction
// commits; total retry work stays under an explicit bound) and
// correctness (per-round histories admit a sequential witness — the model
// checker's serializability/opacity verdict replayed on chaos traces).
// All plans seed from chaos_seed(); a failure replays by exporting
// PHTM_CHAOS_SEED with the printed value.
#include "chaos_common.hpp"

#include <atomic>

namespace phtm::test {
namespace {

using sim::FaultInjector;
using sim::FaultKind;
using sim::FaultSite;

// Liveness ceiling per executed transaction: the contention manager caps
// fast attempts (htm_retries + resource budgets), partitioned retries
// (partitioned_retries globals x per-segment sub budgets) and always
// terminates in the ticketed slow path, so per-transaction aborts are
// bounded by a small constant. 256 is ~1.5x the worst stacked budget
// under default knobs — exceeding it means a retry loop lost its bound.
constexpr std::uint64_t kAbortsPerTxnBound = 256;

TEST(ChaosInjectors, SpuriousPeriodicAbortsStayLiveAndSerializable) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.faults.seed = chaos_seed();
  cfg.faults.add({FaultSite::kHwAccess, FaultKind::kAbortConflict,
                  /*thread_mask=*/~std::uint64_t{0}, /*period=*/7});
  constexpr unsigned kThreads = 4, kRounds = 25;
  ChaosHistoryHarness h(cfg, kThreads);
  h.run_checked(kRounds);
  auto* eng = h.runtime().fault_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_GT(eng->injected(FaultKind::kAbortConflict), 0u);
  EXPECT_LE(h.total_aborts(), kAbortsPerTxnBound * kThreads * kRounds);
}

TEST(ChaosInjectors, DoomStormFromOneThreadCannotBreakHistories) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.faults.seed = chaos_seed();
  // Thread slot 0 dooms every other in-flight hardware transaction at
  // every 4th of its own commit points.
  cfg.faults.add({FaultSite::kHwCommit, FaultKind::kDoomStorm,
                  /*thread_mask=*/1, /*period=*/4});
  constexpr unsigned kThreads = 4, kRounds = 25;
  ChaosHistoryHarness h(cfg, kThreads);
  h.run_checked(kRounds);
  auto* eng = h.runtime().fault_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_GT(eng->injected(FaultKind::kDoomStorm), 0u);
  EXPECT_LE(h.total_aborts(), kAbortsPerTxnBound * kThreads * kRounds);
}

TEST(ChaosInjectors, RingWraparoundPressureDegradesGracefully) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.faults.seed = chaos_seed();
  // Half of all hardware commits fail as capacity, pushing work onto the
  // partitioned path; every sub-transaction boundary burns a slot of an
  // 8-entry ring, so validators keep hitting rollover.
  cfg.faults.add({FaultSite::kHwCommit, FaultKind::kAbortCapacity,
                  /*thread_mask=*/~std::uint64_t{0}, /*period=*/0,
                  /*prob=*/0.5});
  cfg.faults.add({FaultSite::kSubBoundary, FaultKind::kRingPressure,
                  /*thread_mask=*/~std::uint64_t{0}, /*period=*/1});
  tm::BackendConfig bcfg;
  bcfg.ring_entries = 8;
  constexpr unsigned kThreads = 4, kRounds = 20;
  ChaosHistoryHarness h(cfg, kThreads,
                        core::PartHtmBackend::Mode::kSerializable, bcfg);
  h.run_checked(kRounds);
  auto* eng = h.runtime().fault_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_GT(eng->injected(FaultKind::kRingPressure), 0u);
  EXPECT_GT(eng->injected(FaultKind::kAbortCapacity), 0u);
  EXPECT_LE(h.total_aborts(), kAbortsPerTxnBound * kThreads * kRounds);
}

/// Per-shard wraparound at full occupancy: 16 threads, 8-entry shard
/// rings, ring-pressure burning a slot in *every* shard at each
/// sub-transaction boundary, and half of all hardware commits bounced to
/// the partitioned path. Every transaction increments counters in two
/// *different* commit-pipeline shards, so commits keep exercising the
/// cross-shard reserve-all/validate-all protocol while each shard's ring
/// rolls over independently underneath the validators. Correctness is
/// checked by conservation instead of a round history — the sequential
/// witness search is n! in transactions per round and does not scale to
/// 16 — which still catches the failure modes wraparound can cause: a
/// validator reading a reused slot as live loses an update, and a commit
/// serialized differently in its two shards double-applies or drops one.
TEST(ChaosInjectors, PerShardWraparoundAt16ThreadsKeepsConservation) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.faults.seed = chaos_seed();
  cfg.faults.add({FaultSite::kHwCommit, FaultKind::kAbortCapacity,
                  /*thread_mask=*/~std::uint64_t{0}, /*period=*/0,
                  /*prob=*/0.5});
  cfg.faults.add({FaultSite::kSubBoundary, FaultKind::kRingPressure,
                  /*thread_mask=*/~std::uint64_t{0}, /*period=*/1});
  tm::BackendConfig bcfg;
  bcfg.ring_entries = 8;  // per shard: every shard wraps every round
  sim::HtmRuntime rt(cfg);
  core::PartHtmBackend backend(rt, bcfg,
                               core::PartHtmBackend::Mode::kSerializable,
                               /*no_fast=*/false);

  // One counter line per commit-pipeline shard (the Bloom hash decides a
  // line's shard; a 64-line pool always covers all four).
  static constexpr unsigned kShards = core::ShardedRing::kShards;
  auto* pool = tm::TmHeap::instance().alloc_array<std::uint64_t>(64 * 8);
  std::uint64_t* counter[kShards] = {};
  for (unsigned i = 0; i < 64; ++i) {
    const unsigned s = Signature::shard_of(&pool[i * 8]);
    if (counter[s] == nullptr) counter[s] = &pool[i * 8];
  }
  for (unsigned s = 0; s < kShards; ++s) {
    ASSERT_NE(counter[s], nullptr) << "no pool line hashed into shard " << s;
    *counter[s] = 0;
  }

  struct Env {
    std::uint64_t* const* counter;
  } env{counter};
  struct L {
    std::uint64_t a, b;
  };

  constexpr unsigned kThreads = 16, kPer = 30;
  run_threads(kThreads, [&](unsigned tid) {
    auto w = backend.make_worker(tid);
    for (unsigned i = 0; i < kPer; ++i) {
      L l{(tid + i) % kShards, (tid + i + 1) % kShards};
      tm::Txn t;
      t.step = +[](tm::Ctx& c, const void* e, void* lp, unsigned seg) {
        const auto* cs = static_cast<const Env*>(e)->counter;
        const auto* loc = static_cast<const L*>(lp);
        std::uint64_t* cell = cs[seg == 0 ? loc->a : loc->b];
        c.write(cell, c.read(cell) + 1);
        return seg == 0;
      };
      t.env = &env;
      t.locals = &l;
      t.locals_bytes = sizeof(l);
      backend.execute(*w, t);
    }
    // Liveness: per-thread retry work stays bounded under the pressure.
    EXPECT_LE(w->stats().total_aborts(), kAbortsPerTxnBound * kPer);
  });

  auto* eng = rt.fault_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_GT(eng->injected(FaultKind::kRingPressure), 0u);
  EXPECT_GT(eng->injected(FaultKind::kAbortCapacity), 0u);
  std::uint64_t total = 0;
  for (unsigned s = 0; s < kShards; ++s) total += rt.nontx_load(counter[s]);
  EXPECT_EQ(total, 2ull * kThreads * kPer)
      << "a committed increment was lost under per-shard wraparound";
}

TEST(ChaosInjectors, GlockConvoyWithStalledHolderDrains) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.faults.seed = chaos_seed();
  // The slow-path holder is preempted while the lock is asserted: every
  // other thread convoys behind the glock until the stall ends.
  cfg.faults.add({FaultSite::kGlockHeld, FaultKind::kStall,
                  /*thread_mask=*/~std::uint64_t{0}, /*period=*/1,
                  /*prob=*/0.0, /*arg=*/20'000});
  constexpr unsigned kThreads = 4, kRounds = 20;
  ChaosHistoryHarness h(cfg, kThreads);
  h.set_irrevocable(0);  // thread 0 takes the slow path every round
  h.run_checked(kRounds);
  auto* eng = h.runtime().fault_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_GT(eng->injected(FaultKind::kStall), 0u);
  EXPECT_GE(h.total_commits(CommitPath::kGlobalLock), kRounds);
  EXPECT_LE(h.total_aborts(), kAbortsPerTxnBound * kThreads * kRounds);
}

TEST(ChaosInjectors, StalledThreadDegradesWithoutBlockingOthers) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.faults.seed = chaos_seed();
  cfg.tick_budget = 20'000;  // stalls must be able to exhaust the quantum
  // Thread slot 0 is preempted inside every 3rd hardware access, burning
  // more than the whole duration quantum.
  cfg.faults.add({FaultSite::kHwAccess, FaultKind::kStall,
                  /*thread_mask=*/1, /*period=*/3, /*prob=*/0.0,
                  /*arg=*/50'000});
  constexpr unsigned kThreads = 4, kRounds = 20;
  // Opaque mode: the history check also places every aborted attempt's
  // fragment on a consistent witness prefix.
  ChaosHistoryHarness h(cfg, kThreads, core::PartHtmBackend::Mode::kOpaque);
  h.run_checked(kRounds);
  auto* eng = h.runtime().fault_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_GT(eng->injected(FaultKind::kStall), 0u);
  EXPECT_LE(h.total_aborts(), kAbortsPerTxnBound * kThreads * kRounds);
}

// Capacity flapping: on odd firing epochs the effective footprint budget
// shrinks by the injector's divisor, so a transaction that fits fine in
// even epochs keeps bouncing to the software paths in odd ones. Single
// thread, so the whole run is deterministic in the plan seed.
TEST(ChaosInjectors, CapacityFlapForcesSoftwarePathsButCommits) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.faults.seed = chaos_seed();
  cfg.faults.add({FaultSite::kHwBegin, FaultKind::kCapacityFlap,
                  /*thread_mask=*/~std::uint64_t{0}, /*period=*/2,
                  /*prob=*/0.0, /*arg=*/64});
  sim::HtmRuntime rt(cfg);
  tm::BackendConfig bcfg;
  core::PartHtmBackend backend(rt, bcfg,
                               core::PartHtmBackend::Mode::kSerializable,
                               /*no_fast=*/false);
  auto w = backend.make_worker(0);

  constexpr unsigned kLines = 40;  // > 512/64 flapped lines, < 512 plain
  auto* cells = tm::TmHeap::instance().alloc_array<std::uint64_t>(kLines * 8);
  struct Env {
    std::uint64_t* cells;
  } env{cells};

  constexpr unsigned kTxns = 60;
  for (unsigned i = 0; i < kTxns; ++i) {
    tm::Txn t;
    t.step = +[](tm::Ctx& c, const void* e, void*, unsigned) {
      auto* cl = static_cast<const Env*>(e)->cells;
      for (unsigned k = 0; k < kLines; ++k)
        c.write(cl + k * 8, c.read(cl + k * 8) + 1);
      return false;
    };
    t.env = &env;
    backend.execute(*w, t);
  }

  auto* eng = rt.fault_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_GT(eng->injected(FaultKind::kCapacityFlap), 0u);
  EXPECT_GT(w->stats().aborts[static_cast<unsigned>(AbortCause::kCapacity)], 0u);
  EXPECT_EQ(w->stats().total_commits(), kTxns);
  // Flapped epochs must have pushed commits off the fast path...
  EXPECT_GT(kTxns - w->stats().commits[static_cast<unsigned>(CommitPath::kHtm)],
            0u);
  // ...without quarantining the site forever: even epochs still commit in
  // hardware.
  EXPECT_GT(w->stats().commits[static_cast<unsigned>(CommitPath::kHtm)], 0u);
  for (unsigned k = 0; k < kLines; ++k) EXPECT_EQ(cells[k * 8], kTxns);
  EXPECT_LE(w->stats().total_aborts(), kAbortsPerTxnBound * kTxns);
}

// Determinism contract (sim/fault.hpp): a decision depends only on
// (plan seed, slot, per-slot visit ordinal), so two identical
// single-threaded runs inject identical fault streams.
TEST(ChaosInjectors, SameSeedReplaysTheExactFaultStream) {
  const auto run = [](std::uint64_t seed) {
    sim::HtmConfig cfg = sim::HtmConfig::testing();
    cfg.faults.seed = seed;
    cfg.faults.add({FaultSite::kHwAccess, FaultKind::kAbortConflict,
                    /*thread_mask=*/~std::uint64_t{0}, /*period=*/0,
                    /*prob=*/0.3});
    cfg.faults.add({FaultSite::kHwBegin, FaultKind::kCapacityFlap,
                    /*thread_mask=*/~std::uint64_t{0}, /*period=*/2,
                    /*prob=*/0.0, /*arg=*/64});
    sim::HtmRuntime rt(cfg);
    core::PartHtmBackend backend(rt, {},
                                 core::PartHtmBackend::Mode::kSerializable,
                                 /*no_fast=*/false);
    auto w = backend.make_worker(0);
    auto* cells = tm::TmHeap::instance().alloc_array<std::uint64_t>(8 * 8);
    struct Env {
      std::uint64_t* cells;
    } env{cells};
    for (unsigned i = 0; i < 50; ++i) {
      tm::Txn t;
      t.step = +[](tm::Ctx& c, const void* e, void*, unsigned) {
        auto* cl = static_cast<const Env*>(e)->cells;
        for (unsigned k = 0; k < 8; ++k)
          c.write(cl + k * 8, c.read(cl + k * 8) + 1);
        return false;
      };
      t.env = &env;
      backend.execute(*w, t);
    }
    struct Tally {
      std::uint64_t injected_conflict, injected_flap, aborts;
    };
    return Tally{rt.fault_engine()->injected(FaultKind::kAbortConflict),
                 rt.fault_engine()->injected(FaultKind::kCapacityFlap),
                 w->stats().total_aborts()};
  };

  const auto a = run(chaos_seed());
  const auto b = run(chaos_seed());
  EXPECT_GT(a.injected_conflict, 0u);
  EXPECT_EQ(a.injected_conflict, b.injected_conflict);
  EXPECT_EQ(a.injected_flap, b.injected_flap);
  EXPECT_EQ(a.aborts, b.aborts);
}

TEST(ChaosInjectors, DisabledPlanBuildsNoEngine) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  EXPECT_EQ(rt.fault_engine(), nullptr);
}

}  // namespace
}  // namespace phtm::test
