// Anti-starvation regression suite (chaos flavor; runs under the default
// AND sanitizer lanes — the chaos libraries build everywhere).
//
// The scenario the cause-aware contention manager exists for: one large
// transaction that can only commit through the partitioned path keeps
// getting invalidated by a stream of small fast-path transactions. The
// old fixed policy could retry that loser unboundedly; the policy engine
// (src/core/policy.hpp) caps every budget and escalates through the
// ticketed slow path, so the large transaction must commit within a small
// explicit attempt bound no matter how hot the stream runs.
#include "chaos_common.hpp"

#include <atomic>

namespace phtm::test {
namespace {

TEST(ChaosLiveness, LargePartitionedTxnCommitsBoundedlyUnderFastStream) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  core::PartHtmBackend backend(rt, {},
                               core::PartHtmBackend::Mode::kSerializable,
                               /*no_fast=*/false);

  // Shared array: the large transaction walks all of it; the streamers
  // hammer single cells of it, invalidating the walker's validation window.
  constexpr unsigned kLines = 600;  // > write_lines_cap -> never fits fast
  constexpr unsigned kSegs = 6;     // 100 lines per sub-HTM segment: fits
  auto* cells = tm::TmHeap::instance().alloc_array<std::uint64_t>(kLines * 8);

  struct Env {
    std::uint64_t* cells;
  };
  Env env{cells};

  constexpr unsigned kBigTxns = 8;
  constexpr unsigned kStreamers = 3;
  // Budget arithmetic, default knobs: <= htm_retries fast attempts, then
  // <= partitioned_retries globals x kSegs segments x (sub_htm_retries +
  // resource budgets) sub attempts, then the slow path commits
  // unconditionally. ~1000 stacked worst case; 2000 leaves slack without
  // masking an unbounded loop.
  constexpr std::uint64_t kBigAbortBound = kBigTxns * 2000;

  std::atomic<bool> big_done{false};
  std::atomic<std::uint64_t> big_aborts{0};
  std::atomic<std::uint64_t> stream_commits{0};

  run_threads(1 + kStreamers, [&](unsigned tid) {
    auto w = backend.make_worker(tid);
    if (tid == 0) {
      // The large transaction: read-modify-write every line, kSegs
      // segments of kLines/kSegs lines each.
      for (unsigned i = 0; i < kBigTxns; ++i) {
        tm::Txn t;
        t.step = +[](tm::Ctx& c, const void* e, void*, unsigned seg) {
          auto* cl = static_cast<const Env*>(e)->cells;
          const unsigned per = kLines / kSegs;
          for (unsigned k = seg * per; k < (seg + 1) * per; ++k)
            c.write(cl + k * 8, c.read(cl + k * 8) + 1);
          return seg + 1 < kSegs;
        };
        t.env = &env;
        backend.execute(*w, t);
      }
      big_aborts.store(w->stats().total_aborts());
      big_done.store(true, std::memory_order_release);
    } else {
      // Streamers: tiny fast-path transactions on scattered cells, running
      // until the large transaction has finished all its commits.
      struct L {
        std::uint64_t cell;
      } l{};
      std::uint64_t n = 0;
      while (!big_done.load(std::memory_order_acquire)) {
        l.cell = (tid * 97 + n * 13) % kLines;
        tm::Txn t;
        t.step = +[](tm::Ctx& c, const void* e, void* lp, unsigned) {
          auto* cl = static_cast<const Env*>(e)->cells;
          std::uint64_t* p = cl + static_cast<L*>(lp)->cell * 8;
          c.write(p, c.read(p) + 1);
          return false;
        };
        t.env = &env;
        t.locals = &l;
        t.locals_bytes = sizeof(l);
        backend.execute(*w, t);
        ++n;
      }
      stream_commits.fetch_add(w->stats().total_commits());
    }
  });

  // Liveness: the large transaction finished (run_threads joined), within
  // the policy's stacked budgets.
  EXPECT_LE(big_aborts.load(), kBigAbortBound)
      << "large partitioned transaction retried past every policy budget";
  // The stream was genuinely hot while it ran.
  EXPECT_GT(stream_commits.load(), 0u);

  // Correctness: each line carries the kBigTxns walker increments plus
  // however many streamer commits hit it; sum over all lines must equal
  // total committed increments (no lost updates on either side).
  std::uint64_t sum = 0;
  for (unsigned k = 0; k < kLines; ++k) sum += cells[k * 8];
  EXPECT_EQ(sum, std::uint64_t{kBigTxns} * kLines + stream_commits.load());
}

// The ticketed slow path serves escalating transactions in arrival order:
// with every thread forced irrevocable there is nothing but the slow path,
// and all of them must drain with zero aborts (FIFO hand-offs, no CAS
// lottery).
TEST(ChaosLiveness, TicketedSlowPathDrainsAllComersWithoutRetries) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  core::PartHtmBackend backend(rt, {},
                               core::PartHtmBackend::Mode::kSerializable,
                               /*no_fast=*/false);
  auto* counter = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);

  constexpr unsigned kThreads = 4, kPer = 200;
  std::atomic<std::uint64_t> aborts{0};
  run_threads(kThreads, [&](unsigned tid) {
    auto w = backend.make_worker(tid);
    for (unsigned i = 0; i < kPer; ++i) {
      tm::Txn t;
      t.step = +[](tm::Ctx& c, const void* e, void*, unsigned) {
        auto* p = static_cast<std::uint64_t*>(const_cast<void*>(e));
        c.write(p, c.read(p) + 1);
        return false;
      };
      t.env = counter;
      t.irrevocable = true;
      backend.execute(*w, t);
    }
    aborts.fetch_add(w->stats().total_aborts());
    EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kGlobalLock)],
              kPer);
  });
  EXPECT_EQ(aborts.load(), 0u);
  EXPECT_EQ(*counter, std::uint64_t{kThreads} * kPer);
}

}  // namespace
}  // namespace phtm::test
