// Unit tests for PART-HTM's global ring + timestamp (core/ring.hpp) and the
// undo log (core/undo.hpp).
#include <gtest/gtest.h>

#include "core/ring.hpp"
#include "core/undo.hpp"
#include "tm/heap.hpp"
#include "util/threads.hpp"

namespace phtm::core {
namespace {

TEST(GlobalRing, SoftwareReserveFillValidate) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(8);
  alignas(64) std::uint64_t obj[16];

  Signature wsig;
  wsig.add(&obj[0]);
  const std::uint64_t ts = ring.reserve(rt);
  EXPECT_EQ(ts, 1u);
  ring.fill_slot(rt, ts, wsig);

  // A reader of a different line passes; a reader of obj's line conflicts.
  Signature clean, dirty;
  clean.add(&obj[8]);
  dirty.add(&obj[0]);
  std::uint64_t start = 0;
  EXPECT_EQ(ring.validate(rt, start, clean), ValResult::kOk);
  EXPECT_EQ(start, 1u);
  start = 0;
  EXPECT_EQ(ring.validate(rt, start, dirty), ValResult::kConflict);
}

TEST(GlobalRing, ValidateAdvancesStartAndIsIdempotent) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(8);
  alignas(64) std::uint64_t obj[8];
  Signature wsig;
  wsig.add(&obj[0]);
  for (int i = 0; i < 3; ++i) ring.fill_slot(rt, ring.reserve(rt), wsig);

  Signature rsig;  // empty: conflicts with nothing
  std::uint64_t start = 0;
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kOk);
  EXPECT_EQ(start, 3u);
  // No new commits: validation is a no-op.
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kOk);
  EXPECT_EQ(start, 3u);
}

TEST(GlobalRing, RolloverDetected) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(4);
  Signature empty;
  for (int i = 0; i < 6; ++i) ring.fill_slot(rt, ring.reserve(rt), empty);
  std::uint64_t start = 0;  // 6 commits > ring size 4: unvalidatable
  Signature rsig;
  alignas(64) std::uint64_t obj[8];
  rsig.add(&obj[0]);  // non-empty: the window must genuinely be scanned
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kRollover);
  // An empty read signature is vacuously consistent with every entry, so
  // the watermark advances past the rollover in O(1) instead of aborting.
  start = 0;
  Signature none;
  EXPECT_EQ(ring.validate(rt, start, none), ValResult::kOk);
  EXPECT_EQ(start, 6u);
}

TEST(GlobalRing, LimitBoundsValidationRange) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(8);
  alignas(64) std::uint64_t obj[8];
  Signature wsig;
  wsig.add(&obj[0]);
  ring.fill_slot(rt, ring.reserve(rt), Signature{});  // ts 1: clean
  ring.fill_slot(rt, ring.reserve(rt), wsig);         // ts 2: conflicting
  Signature rsig;
  rsig.add(&obj[0]);
  std::uint64_t start = 0;
  // Limited to ts 1 the conflicting entry is out of range.
  EXPECT_EQ(ring.validate(rt, start, rsig, /*limit=*/1), ValResult::kOk);
  EXPECT_EQ(start, 1u);
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kConflict);
}

TEST(GlobalRing, HtmPublicationVisibleToValidators) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  sim::HtmRuntime::Thread th(rt);
  GlobalRing ring(8);
  alignas(64) std::uint64_t obj[8];
  Signature wsig;
  wsig.add(&obj[0]);
  const auto r = rt.attempt(th, [&](sim::HtmOps& ops) {
    ring.publish_in_htm(ops, wsig, /*busy code=*/9);
  });
  ASSERT_TRUE(r.committed);
  Signature rsig;
  rsig.add(&obj[0]);
  std::uint64_t start = 0;
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kConflict);
}

TEST(GlobalRing, ConcurrentCommittersGetUniqueOrderedSlots) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(1024);
  constexpr unsigned kThreads = 6;
  constexpr unsigned kPer = 400;
  run_threads(kThreads, [&](unsigned tid) {
    alignas(64) std::uint64_t obj[8];
    Signature wsig;
    wsig.add(&obj[tid % 8]);
    for (unsigned i = 0; i < kPer; ++i) ring.fill_slot(rt, ring.reserve(rt), wsig);
  });
  // All reserved timestamps were filled: a full validation pass from an
  // empty read signature must terminate with kOk at the final timestamp.
  Signature rsig;
  std::uint64_t start = rt.nontx_load(ring.timestamp_addr()) - 100;
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kOk);
  EXPECT_EQ(start, std::uint64_t{kThreads} * kPer);
}

TEST(UndoLog, StagePromoteDiscard) {
  UndoLog log;
  std::uint64_t a = 1, b = 2;
  log.stage(&a, 1);
  EXPECT_TRUE(log.staged_contains(&a));
  EXPECT_FALSE(log.self_locked(&a));  // not yet committed
  log.promote_staged();
  EXPECT_TRUE(log.self_locked(&a));
  EXPECT_FALSE(log.staged_contains(&a));
  log.stage(&b, 2);
  log.discard_staged();
  EXPECT_FALSE(log.self_locked(&b));
  ASSERT_EQ(log.committed().size(), 1u);
  EXPECT_EQ(log.committed()[0].addr, &a);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_FALSE(log.self_locked(&a));
}

TEST(UndoLog, ReverseTraversalRestoresOldest) {
  UndoLog log;
  std::uint64_t x = 0;
  // Two sub-transactions each overwrote x; the log keeps both pre-values.
  log.stage(&x, 10);  // value before first write
  log.promote_staged();
  log.stage(&x, 20);  // value before second write (i.e. first write's value)
  log.promote_staged();
  x = 30;
  const auto& entries = log.committed();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it)
    *it->addr = it->old_val;
  EXPECT_EQ(x, 10u) << "rollback must restore the pre-transaction value";
}

TEST(UndoLog, SelfLockSetGrows) {
  UndoLog log;
  std::vector<std::uint64_t> words(500);
  for (auto& w : words) {
    log.stage(&w, 0);
    log.promote_staged();
  }
  for (auto& w : words) EXPECT_TRUE(log.self_locked(&w));
  std::uint64_t other;
  EXPECT_FALSE(log.self_locked(&other));
}

}  // namespace
}  // namespace phtm::core
