// Unit tests for PART-HTM's global ring + timestamp (core/ring.hpp) and the
// undo log (core/undo.hpp).
#include <gtest/gtest.h>

#include "core/ring.hpp"
#include "core/undo.hpp"
#include "tm/heap.hpp"
#include "util/threads.hpp"

namespace phtm::core {
namespace {

TEST(GlobalRing, SoftwareReserveFillValidate) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(8);
  alignas(64) std::uint64_t obj[16];

  Signature wsig;
  wsig.add(&obj[0]);
  const std::uint64_t ts = ring.reserve(rt);
  EXPECT_EQ(ts, 1u);
  ring.fill_slot(rt, ts, wsig);

  // A reader of a different line passes; a reader of obj's line conflicts.
  Signature clean, dirty;
  clean.add(&obj[8]);
  dirty.add(&obj[0]);
  std::uint64_t start = 0;
  EXPECT_EQ(ring.validate(rt, start, clean), ValResult::kOk);
  EXPECT_EQ(start, 1u);
  start = 0;
  EXPECT_EQ(ring.validate(rt, start, dirty), ValResult::kConflict);
}

TEST(GlobalRing, ValidateAdvancesStartAndIsIdempotent) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(8);
  alignas(64) std::uint64_t obj[8];
  Signature wsig;
  wsig.add(&obj[0]);
  for (int i = 0; i < 3; ++i) ring.fill_slot(rt, ring.reserve(rt), wsig);

  Signature rsig;  // empty: conflicts with nothing
  std::uint64_t start = 0;
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kOk);
  EXPECT_EQ(start, 3u);
  // No new commits: validation is a no-op.
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kOk);
  EXPECT_EQ(start, 3u);
}

TEST(GlobalRing, RolloverDetected) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(4);
  Signature empty;
  for (int i = 0; i < 6; ++i) ring.fill_slot(rt, ring.reserve(rt), empty);
  std::uint64_t start = 0;  // 6 commits > ring size 4: unvalidatable
  Signature rsig;
  alignas(64) std::uint64_t obj[8];
  rsig.add(&obj[0]);  // non-empty: the window must genuinely be scanned
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kRollover);
  // An empty read signature is vacuously consistent with every entry, so
  // the watermark advances past the rollover in O(1) instead of aborting.
  start = 0;
  Signature none;
  EXPECT_EQ(ring.validate(rt, start, none), ValResult::kOk);
  EXPECT_EQ(start, 6u);
}

TEST(GlobalRing, LimitBoundsValidationRange) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(8);
  alignas(64) std::uint64_t obj[8];
  Signature wsig;
  wsig.add(&obj[0]);
  ring.fill_slot(rt, ring.reserve(rt), Signature{});  // ts 1: clean
  ring.fill_slot(rt, ring.reserve(rt), wsig);         // ts 2: conflicting
  Signature rsig;
  rsig.add(&obj[0]);
  std::uint64_t start = 0;
  // Limited to ts 1 the conflicting entry is out of range.
  EXPECT_EQ(ring.validate(rt, start, rsig, /*limit=*/1), ValResult::kOk);
  EXPECT_EQ(start, 1u);
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kConflict);
}

TEST(GlobalRing, RevokeSlotRetractsEntry) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(8);
  alignas(64) std::uint64_t obj[8];
  Signature wsig;
  wsig.add(&obj[0]);
  // Fill-then-validate commit protocol: the entry is published before the
  // publisher knows whether it commits...
  const std::uint64_t ts = ring.reserve(rt);
  ring.fill_slot(rt, ts, wsig);
  Signature rsig;
  rsig.add(&obj[0]);
  std::uint64_t start = 0;
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kConflict);
  // ...and a failed commit retracts it, so the rolled-back signature stops
  // producing phantom conflicts while the watermark still advances.
  ring.revoke_slot(rt, ts);
  start = 0;
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kOk);
  EXPECT_EQ(start, 1u);
}

TEST(GlobalRing, RevokeAfterSlotReclaimIsNoOp) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(2);
  alignas(64) std::uint64_t obj[8];
  Signature empty, wsig;
  wsig.add(&obj[0]);
  const std::uint64_t ts1 = ring.reserve(rt);
  ring.fill_slot(rt, ts1, empty);
  ring.fill_slot(rt, ring.reserve(rt), empty);
  const std::uint64_t ts3 = ring.reserve(rt);  // reuses ts1's slot
  ring.fill_slot(rt, ts3, wsig);
  // A late revocation of ts1 must not clobber the slot's new occupant.
  ring.revoke_slot(rt, ts1);
  Signature rsig;
  rsig.add(&obj[0]);
  std::uint64_t start = 2;
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kConflict)
      << "revoking a reclaimed slot must leave the new entry intact";
}

TEST(GlobalRing, HtmPublicationVisibleToValidators) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  sim::HtmRuntime::Thread th(rt);
  GlobalRing ring(8);
  alignas(64) std::uint64_t obj[8];
  Signature wsig;
  wsig.add(&obj[0]);
  const auto r = rt.attempt(th, [&](sim::HtmOps& ops) {
    ring.publish_in_htm(ops, wsig, /*busy code=*/9);
  });
  ASSERT_TRUE(r.committed);
  Signature rsig;
  rsig.add(&obj[0]);
  std::uint64_t start = 0;
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kConflict);
}

TEST(GlobalRing, ConcurrentCommittersGetUniqueOrderedSlots) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  GlobalRing ring(1024);
  constexpr unsigned kThreads = 6;
  constexpr unsigned kPer = 400;
  run_threads(kThreads, [&](unsigned tid) {
    alignas(64) std::uint64_t obj[8];
    Signature wsig;
    wsig.add(&obj[tid % 8]);
    for (unsigned i = 0; i < kPer; ++i) ring.fill_slot(rt, ring.reserve(rt), wsig);
  });
  // All reserved timestamps were filled: a full validation pass from an
  // empty read signature must terminate with kOk at the final timestamp.
  Signature rsig;
  std::uint64_t start = rt.nontx_load(ring.timestamp_addr()) - 100;
  EXPECT_EQ(ring.validate(rt, start, rsig), ValResult::kOk);
  EXPECT_EQ(start, std::uint64_t{kThreads} * kPer);
}

// Probe `lines` (64 distinct cache lines) for one whose signature bit lands
// in `shard`; the Bloom hash spreads lines across the word groups, so a
// 64-line pool always covers all four shards.
std::uint64_t* line_in_shard(std::uint64_t (&lines)[64][8], unsigned shard) {
  for (auto& line : lines)
    if (Signature::shard_of(&line[0]) == shard) return &line[0];
  return nullptr;
}

TEST(ShardedRing, ShardMappingHelpers) {
  // Word groups partition the signature: each word belongs to exactly one
  // shard, the per-shard masks are disjoint and cover all words.
  std::uint64_t all = 0;
  for (unsigned s = 0; s < Signature::kShards; ++s) {
    const std::uint64_t m = Signature::shard_word_mask(s);
    EXPECT_EQ(all & m, 0u) << "shard word masks must be disjoint";
    all |= m;
  }
  EXPECT_EQ(all, (Signature::kWords >= 64
                      ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << Signature::kWords) - 1));
  for (unsigned w = 0; w < Signature::kWords; ++w) {
    const unsigned s = Signature::shard_of_word(w);
    ASSERT_LT(s, Signature::kShards);
    EXPECT_NE(Signature::shard_word_mask(s) & (std::uint64_t{1} << w), 0u);
  }
  // shard_mask_of reports exactly the intersected groups.
  EXPECT_EQ(Signature::shard_mask_of(0), 0u);
  EXPECT_EQ(Signature::shard_mask_of(Signature::shard_word_mask(0)), 1u);
}

TEST(ShardedRing, SignatureShardOfMatchesOccupancy) {
  alignas(64) std::uint64_t lines[64][8];
  for (unsigned s = 0; s < Signature::kShards; ++s) {
    std::uint64_t* addr = line_in_shard(lines, s);
    ASSERT_NE(addr, nullptr) << "no probe line hashed into shard " << s;
    Signature sig;
    sig.add(addr);
    EXPECT_EQ(sig.shard_mask(), std::uint64_t{1} << s)
        << "a single address must occupy exactly its own shard";
  }
}

TEST(ShardedRing, PerShardRolloverIsIndependent) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  ShardedRing ring(4);
  alignas(64) std::uint64_t lines[64][8];
  std::uint64_t* in0 = line_in_shard(lines, 0);
  std::uint64_t* in1 = line_in_shard(lines, 1);
  ASSERT_NE(in0, nullptr);
  ASSERT_NE(in1, nullptr);

  // Roll shard 0's ring over (6 commits > 4 entries); shard 1 never moves.
  Signature w0;
  w0.add(in0);
  for (int i = 0; i < 6; ++i)
    ring.shard(0).fill_slot(rt, ring.shard(0).reserve(rt), w0,
                            Signature::shard_word_mask(0));

  Signature r0, r1;
  r0.add(in0);
  r1.add(in1);
  std::uint64_t start = 0;
  EXPECT_EQ(ring.shard(0).validate(rt, start, r0, ~std::uint64_t{0},
                                   Signature::shard_word_mask(0)),
            ValResult::kRollover)
      << "a reader of shard 0 must see shard 0's rollover";
  // The same reader against shard 1: nothing committed there, O(1) kOk.
  start = 0;
  EXPECT_EQ(ring.shard(1).validate(rt, start, r0, ~std::uint64_t{0},
                                   Signature::shard_word_mask(1)),
            ValResult::kOk)
      << "shard 1's ring is untouched by shard 0's rollover";
  EXPECT_EQ(start, 0u);
  // A reader whose footprint lives wholly in shard 1 advances past shard
  // 0's entire history in O(1): its masked occupancy there is empty.
  start = 0;
  EXPECT_EQ(ring.shard(0).validate(rt, start, r1, ~std::uint64_t{0},
                                   Signature::shard_word_mask(0)),
            ValResult::kOk)
      << "masked-empty readers are immune to foreign-shard rollover";
  EXPECT_EQ(start, 6u);
}

TEST(ShardedRing, HtmPublishTargetsOnlyIntersectedShards) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  sim::HtmRuntime::Thread th(rt);
  ShardedRing ring(8);
  alignas(64) std::uint64_t lines[64][8];
  std::uint64_t* in2 = line_in_shard(lines, 2);
  ASSERT_NE(in2, nullptr);
  Signature wsig;
  wsig.add(in2);
  const auto r = rt.attempt(th, [&](sim::HtmOps& ops) {
    ring.publish_in_htm(ops, wsig, /*busy code=*/9);
  });
  ASSERT_TRUE(r.committed);
  for (unsigned s = 0; s < ShardedRing::kShards; ++s)
    EXPECT_EQ(rt.nontx_load(ring.timestamp_addr(s)), s == 2 ? 1u : 0u)
        << "only the written shard's timestamp may advance (shard " << s
        << ")";
  // And the publication is visible to a validator of that shard.
  Signature rsig;
  rsig.add(in2);
  std::uint64_t start = 0;
  EXPECT_EQ(ring.shard(2).validate(rt, start, rsig, ~std::uint64_t{0},
                                   Signature::shard_word_mask(2)),
            ValResult::kConflict);
}

TEST(UndoLog, StagePromoteDiscard) {
  UndoLog log;
  std::uint64_t a = 1, b = 2;
  log.stage(&a, 1);
  EXPECT_TRUE(log.staged_contains(&a));
  EXPECT_FALSE(log.self_locked(&a));  // not yet committed
  log.promote_staged();
  EXPECT_TRUE(log.self_locked(&a));
  EXPECT_FALSE(log.staged_contains(&a));
  log.stage(&b, 2);
  log.discard_staged();
  EXPECT_FALSE(log.self_locked(&b));
  ASSERT_EQ(log.committed().size(), 1u);
  EXPECT_EQ(log.committed()[0].addr, &a);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_FALSE(log.self_locked(&a));
}

TEST(UndoLog, ReverseTraversalRestoresOldest) {
  UndoLog log;
  std::uint64_t x = 0;
  // Two sub-transactions each overwrote x; the log keeps both pre-values.
  log.stage(&x, 10);  // value before first write
  log.promote_staged();
  log.stage(&x, 20);  // value before second write (i.e. first write's value)
  log.promote_staged();
  x = 30;
  const auto& entries = log.committed();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it)
    *it->addr = it->old_val;
  EXPECT_EQ(x, 10u) << "rollback must restore the pre-transaction value";
}

TEST(UndoLog, SelfLockSetGrows) {
  UndoLog log;
  std::vector<std::uint64_t> words(500);
  for (auto& w : words) {
    log.stage(&w, 0);
    log.promote_staged();
  }
  for (auto& w : words) EXPECT_TRUE(log.self_locked(&w));
  std::uint64_t other;
  EXPECT_FALSE(log.self_locked(&other));
}

}  // namespace
}  // namespace phtm::core
