// Exhaustive durable-opacity model check of the WAL commit protocol at
// preemption bound 2: two disjoint-write scripted transactions, every
// interleaving with at most two context switches, every crash prefix,
// a spread of tear seeds — recovery must always land on a state some
// confirmed-superset prefix of the committed history explains.
//
// The negative control removes the data fence (step 4) from the protocol
// and shows the checker catches the resulting torn state deterministically
// (an adversarial flush order stands in for the 2^-35 coin-flip corner).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/durable.hpp"
#include "mc/durable.hpp"
#include "sim/config.hpp"
#include "sim/persist.hpp"

namespace phtm::test {
namespace {

using persist::DurableLog;
using persist::PersistDomain;
using persist::RecordKind;
using persist::RecoveryReport;

sim::PersistConfig fast_cfg() {
  sim::PersistConfig c;
  c.flush_latency_ticks = 1;
  c.fence_cost_ticks = 2;
  c.flush_queue_depth = 64;
  return c;
}

/// One scripted single-word transaction, decomposed into the durable
/// commit protocol's persist-ordering steps (mirrors part_htm.cpp's
/// persist_sub_commit + persist_commit_record for one segment):
///   0 volatile write   1 undo-chunk append   2 pfence (chunk durable)
///   3 data pwb         4 pfence (data durable)
///   5 Commit append    6 pfence (record durable = confirmed)
struct Script {
  std::uint64_t* addr = nullptr;
  std::uint64_t newv = 0;
  std::uint64_t seq = 0;
  core::UndoLog::Entry e{};
};

constexpr unsigned kSteps = 7;

void run_step(PersistDomain& dom, DurableLog& log, Script& s, unsigned k) {
  switch (k) {
    case 0:
      s.e = {s.addr, *s.addr};
      *s.addr = s.newv;
      break;
    case 1:
      s.seq = log.alloc_seq();
      log.append_undo_chunk(dom, nullptr, s.seq, &s.e, 1);
      break;
    case 2:
    case 4:
    case 6:
      dom.pfence();
      break;
    case 3:
      dom.pwb(s.addr);
      break;
    case 5:
      log.append_outcome(dom, nullptr, RecordKind::kCommit, s.seq, nullptr);
      break;
  }
}

/// All interleavings of two 7-step transactions with <= 2 context
/// switches: A^7B^7, B^7A^7, and the block shapes X^a Y^7 X^(7-a).
std::vector<std::string> schedules() {
  std::vector<std::string> out;
  auto shape = [&out](char x, char y, unsigned a) {
    std::string s(a, x);
    s += std::string(kSteps, y);
    s += std::string(kSteps - a, x);
    out.push_back(s);
  };
  shape('A', 'B', kSteps);  // 1 switch: A then B
  shape('B', 'A', kSteps);
  for (unsigned a = 1; a < kSteps; ++a) {  // 2 switches
    shape('A', 'B', a);
    shape('B', 'A', a);
  }
  return out;
}

TEST(DurableOpacityModel, EveryBound2PrefixCrashIsDurablyOpaque) {
  std::uint64_t points = 0;
  for (const std::string& sched : schedules()) {
    for (unsigned prefix = 0; prefix <= sched.size(); ++prefix) {
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SCOPED_TRACE(::testing::Message() << "sched=" << sched << " prefix="
                                          << prefix << " seed=" << seed);
        PersistDomain dom(fast_cfg());
        DurableLog log(16);
        std::uint64_t x = 0, y = 0;
        dom.format(&x, 0);
        dom.format(&y, 0);
        Script a{&x, 1};
        Script b{&y, 2};
        unsigned na = 0, nb = 0;
        for (unsigned i = 0; i < prefix; ++i) {
          if (sched[i] == 'A')
            run_step(dom, log, a, na++);
          else
            run_step(dom, log, b, nb++);
        }
        dom.freeze();
        dom.crash(seed);
        const RecoveryReport rep = persist::recover(dom, log);
        ASSERT_TRUE(rep.complete);

        mc::DurableInput in;
        in.initial = {{&x, 0}, {&y, 0}};
        in.txns.push_back(
            mc::CommittedTx{0, {mc::McOp{&x, 1, 0, true}}, 0, 0});
        in.txns.push_back(
            mc::CommittedTx{1, {mc::McOp{&y, 2, 0, true}}, 0, 0});
        // Confirmed = finished the whole protocol before the crash; plus
        // anything recovery itself reports committed — a restarted client
        // reading the log would be told those committed, so durability is
        // owed even when the confirming fence never ran (a torn record
        // that happened to fully persist).
        if (na == kSteps) in.must_include.push_back(0);
        if (nb == kSteps) in.must_include.push_back(1);
        for (std::uint64_t s : rep.committed) {
          if (a.seq != 0 && s == a.seq && na < kSteps)
            in.must_include.push_back(0);
          if (b.seq != 0 && s == b.seq && nb < kSteps)
            in.must_include.push_back(1);
        }
        in.recovered = {{&x, x}, {&y, y}};
        const mc::DurableVerdict v = mc::check_durable(in);
        EXPECT_TRUE(v.ok) << v.diagnosis;
        ++points;
      }
    }
  }
  // Coverage sanity: 14 schedules x 15 prefixes x 8 seeds.
  EXPECT_EQ(points, 14u * 15u * 8u);
}

/// Runs the single-transaction protocol with or without the data fence
/// (step 4), crashes under an adversarial flush order that persists the
/// commit record's cell but drops the data word, recovers, and returns
/// the checker's verdict.
mc::DurableVerdict fence_experiment(bool with_data_fence) {
  PersistDomain dom(fast_cfg());
  DurableLog log(16);
  std::uint64_t x = 0;
  dom.format(&x, 0);
  Script a{&x, 1};
  for (unsigned k : {0u, 1u, 2u, 3u}) run_step(dom, log, a, k);
  if (with_data_fence) run_step(dom, log, a, 4);
  run_step(dom, log, a, 5);
  // Crash before the confirming fence. Adversary: the record cell's lines
  // reach the media, the data line does not — exactly the reordering the
  // data fence exists to forbid.
  dom.freeze();
  const std::uint64_t* rec_cell = log.cell(1);  // cell 0 = chunk, 1 = record
  dom.crash_keep([rec_cell](const std::uint64_t* p) {
    return p >= rec_cell && p < rec_cell + DurableLog::kCellWords;
  });
  const RecoveryReport rep = persist::recover(dom, log);
  EXPECT_TRUE(rep.complete);
  // The record fully persisted, so recovery reports the commit either way.
  EXPECT_EQ(rep.committed.size(), 1u);

  mc::DurableInput in;
  in.initial = {{&x, 0}};
  in.txns.push_back(mc::CommittedTx{0, {mc::McOp{&x, 1, 0, true}}, 0, 0});
  in.must_include.push_back(0);  // recovery told the client "committed"
  in.recovered = {{&x, x}};
  return mc::check_durable(in);
}

TEST(DurableOpacityModel, RemovedDataFenceIsCaughtDeterministically) {
  // Broken ordering (no fence between data pwb and record append): the
  // committed transaction's write is missing from the recovered state.
  // No seeds involved — the adversarial schedule makes the catch
  // deterministic; run it twice to demonstrate replayability.
  for (int rerun = 0; rerun < 2; ++rerun) {
    const mc::DurableVerdict bad = fence_experiment(/*with_data_fence=*/false);
    EXPECT_FALSE(bad.ok)
        << "rerun " << rerun
        << ": checker accepted a commit record whose data never persisted";
  }
  // Control: with the fence the same adversary has nothing to reorder —
  // the data word was already durable when the record was appended.
  const mc::DurableVerdict good = fence_experiment(/*with_data_fence=*/true);
  EXPECT_TRUE(good.ok) << good.diagnosis;
}

}  // namespace
}  // namespace phtm::test
