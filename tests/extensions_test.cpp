// Tests for the extension features: HLE / Part-HLE lock elision and the
// adaptive partitioner.
#include <gtest/gtest.h>

#include <atomic>

#include "core/adaptive.hpp"
#include "stm/hle.hpp"
#include "test_common.hpp"

namespace phtm::test {
namespace {

// --- HLE --------------------------------------------------------------------

TEST(Hle, UncontendedSectionsAreElided) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  sim::HtmRuntime::Thread th(rt);
  stm::HleMutex mu(rt);
  auto* x = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);
  unsigned elided = 0;
  for (int i = 0; i < 100; ++i)
    elided += mu.critical(th, [&](tm::Ctx& c) { c.put(x, c.get(x) + 1); });
  EXPECT_EQ(*x, 100u);
  EXPECT_EQ(elided, 100u);
  EXPECT_FALSE(mu.locked());
}

TEST(Hle, OversizedSectionFallsBackToTheLock) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.write_lines_cap = 8;
  sim::HtmRuntime rt(cfg);
  sim::HtmRuntime::Thread th(rt);
  stm::HleMutex mu(rt);
  auto* arr = tm::TmHeap::instance().alloc_array<std::uint64_t>(32 * 8);
  const bool elided = mu.critical(th, [&](tm::Ctx& c) {
    for (unsigned i = 0; i < 32; ++i)
      c.put(arr + i * 8, std::uint64_t{1});  // 32 lines > tiny L1
  });
  EXPECT_FALSE(elided);
  for (unsigned i = 0; i < 32; ++i) EXPECT_EQ(arr[i * 8], 1u);
  EXPECT_FALSE(mu.locked());
}

TEST(Hle, MutualExclusionUnderContention) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  stm::HleMutex mu(rt);
  auto* x = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);
  constexpr unsigned kThreads = 6, kPer = 500;
  run_threads(kThreads, [&](unsigned) {
    sim::HtmRuntime::Thread th(rt);
    for (unsigned i = 0; i < kPer; ++i)
      mu.critical(th, [&](tm::Ctx& c) { c.put(x, c.get(x) + 1); });
  });
  EXPECT_EQ(*x, std::uint64_t{kThreads} * kPer);
}

TEST(PartHle, ResourceFailingSectionAvoidsTheLock) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  // Big enough for a 16-line segment plus PART-HTM's metadata lines, far
  // too small for the 64-line whole section.
  cfg.write_lines_cap = 32;
  sim::HtmRuntime rt(cfg);
  stm::PartHleMutex mu(rt);
  auto* arr = tm::TmHeap::instance().alloc_array<std::uint64_t>(64 * 8);
  auto w = mu.make_worker(0);
  tm::Txn section;
  section.step = +[](tm::Ctx& c, const void* e, void*, unsigned seg) {
    auto* a = static_cast<std::uint64_t*>(const_cast<void*>(e));
    for (unsigned i = 0; i < 16; ++i) c.write(a + (seg * 16 + i) * 8, 1);
    return seg + 1 < 4;
  };
  section.env = arr;
  mu.critical(*w, section);
  for (unsigned i = 0; i < 64; ++i) EXPECT_EQ(arr[i * 8], 1u);
  // The section exceeded HLE's speculative capacity yet committed on the
  // partitioned path, not under the lock.
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kSoftware)], 1u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kGlobalLock)], 0u);
}

// --- adaptive partitioner ----------------------------------------------------

TEST(Adaptive, CapacityAbortsHalveTheSegment) {
  core::AdaptivePartitioner p(/*initial=*/1024, /*min=*/64, /*max=*/4096);
  EXPECT_EQ(p.ops_per_segment(), 1024u);
  p.on_abort(AbortCause::kCapacity);
  EXPECT_EQ(p.ops_per_segment(), 512u);
  p.on_abort(AbortCause::kOther);
  EXPECT_EQ(p.ops_per_segment(), 256u);
  // Conflicts leave the size alone.
  p.on_abort(AbortCause::kConflict);
  EXPECT_EQ(p.ops_per_segment(), 256u);
  // Floor.
  for (int i = 0; i < 10; ++i) p.on_abort(AbortCause::kCapacity);
  EXPECT_EQ(p.ops_per_segment(), 64u);
}

TEST(Adaptive, CommitStreaksGrowTheSegment) {
  core::AdaptivePartitioner p(128, 64, 1024, /*grow_streak=*/4);
  // Fast-path commits carry weight 4: the 4th reaches the 4*4 threshold.
  for (int i = 0; i < 3; ++i) p.on_commit(CommitPath::kHtm);
  EXPECT_EQ(p.ops_per_segment(), 128u);  // streak not reached
  p.on_commit(CommitPath::kHtm);
  EXPECT_EQ(p.ops_per_segment(), 256u);
  // Clean partitioned commits probe upward 4x more slowly (weight 1).
  for (int i = 0; i < 15; ++i) p.on_commit(CommitPath::kSoftware);
  EXPECT_EQ(p.ops_per_segment(), 256u);
  p.on_commit(CommitPath::kSoftware);
  EXPECT_EQ(p.ops_per_segment(), 512u);
  // A global-lock commit resets the streak entirely.
  for (int i = 0; i < 3; ++i) p.on_commit(CommitPath::kHtm);
  p.on_commit(CommitPath::kGlobalLock);
  p.on_commit(CommitPath::kHtm);
  EXPECT_EQ(p.ops_per_segment(), 512u);
  // Cap.
  for (int i = 0; i < 100; ++i) p.on_commit(CommitPath::kHtm);
  EXPECT_EQ(p.ops_per_segment(), 1024u);
}

TEST(Adaptive, FeedbackScopeDerivesDeltas) {
  core::AdaptivePartitioner p(1024, 64, 4096);
  StatSheet sheet;
  {
    core::AdaptiveFeedback fb(p, sheet);
    sheet.record_abort(AbortCause::kCapacity);
    sheet.record_commit(CommitPath::kSoftware);
  }
  EXPECT_EQ(p.ops_per_segment(), 512u);
}

TEST(Adaptive, ConvergesOnAWorkloadEndToEnd) {
  // Oversized transaction under a small L1: starting from a far-too-coarse
  // granularity, repeated executions must drive the segment size down until
  // the partitioned path stops seeing capacity aborts.
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.write_lines_cap = 64;
  sim::HtmRuntime rt(cfg);
  auto be = tm::make_backend(tm::Algo::kPartHtm, rt, {});
  auto* arr = tm::TmHeap::instance().alloc_array<std::uint64_t>(4096);
  auto w = be->make_worker(0);
  core::AdaptivePartitioner part(/*initial=*/4096, /*min=*/16, /*max=*/8192);

  struct Env {
    std::uint64_t* arr;
  } env{arr};
  struct L {
    std::uint64_t ops_per_seg;
  };

  for (int i = 0; i < 60; ++i) {
    L l{part.ops_per_segment()};
    tm::Txn t;
    t.step = +[](tm::Ctx& c, const void* ep, void* lp, unsigned seg) {
      auto* a = static_cast<const Env*>(ep)->arr;
      const std::uint64_t per = static_cast<L*>(lp)->ops_per_seg;
      const std::uint64_t lo = seg * per;
      const std::uint64_t hi = lo + per < 512 ? lo + per : 512;
      for (std::uint64_t k = lo; k < hi; ++k) c.write(a + k * 8, k);
      return hi < 512;  // 512 total lines >> 32-line L1
    };
    t.env = &env;
    t.locals = &l;
    t.locals_bytes = sizeof(l);
    {
      core::AdaptiveFeedback fb(part, w->stats());
      be->execute(*w, t);
    }
  }
  // Must have converged to something the partitioned path can commit.
  // The very first executions may still end under the lock while the
  // controller is ratcheting down; after convergence everything commits on
  // the partitioned path.
  EXPECT_LE(part.ops_per_segment(), 64u);
  EXPECT_GE(w->stats().commits[static_cast<unsigned>(CommitPath::kSoftware)], 50u);
  EXPECT_LE(w->stats().commits[static_cast<unsigned>(CommitPath::kGlobalLock)], 5u);
}

}  // namespace
}  // namespace phtm::test
