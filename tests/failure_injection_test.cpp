// Failure injection: every backend must stay correct when the simulated
// hardware is actively hostile — tiny capacities, aggressive timer quanta,
// high asynchronous-interrupt rates, minuscule rings — and when
// irrevocable transactions storm the global lock.
#include "test_common.hpp"

namespace phtm::test {
namespace {

using tm::Ctx;

class FailureInjection : public testing::TestWithParam<tm::Algo> {};

sim::HtmConfig hostile_config() {
  sim::HtmConfig cfg;
  cfg.write_lines_cap = 24;
  cfg.assoc_sets = 8;
  cfg.assoc_ways = 4;
  cfg.read_lines_cap = 256;
  cfg.tick_budget = 600;
  cfg.random_other_per_access = 1e-3;  // constant interrupt drizzle
  cfg.hyperthread_pairs = true;
  cfg.ht_sibling_stride = 2;
  return cfg;
}

TEST_P(FailureInjection, CountersSurviveHostileHardware) {
  tm::BackendConfig bcfg;
  bcfg.ring_entries = 16;  // rollover-prone ring
  BackendHarness h(GetParam(), hostile_config(), bcfg);
  auto* counters = tm::TmHeap::instance().alloc_array<std::uint64_t>(4 * 8);

  struct Env {
    std::uint64_t* counters;
  } env{counters};

  constexpr unsigned kThreads = 5;
  constexpr unsigned kPer = 150;
  h.run(kThreads, [&](unsigned, tm::Worker& w) {
    for (unsigned i = 0; i < kPer; ++i) {
      // Mix of sizes: small txns, multi-segment txns, compute-heavy txns.
      tm::Txn t = make_txn(
          +[](Ctx& c, const void* e, void*, unsigned seg) {
            auto* cn = static_cast<const Env*>(e)->counters;
            c.write(cn + seg * 8, c.read(cn + seg * 8) + 1);
            if (seg == 1) c.work(500);  // approaches the tiny quantum by itself
            return seg + 1 < 4;
          },
          &env, nullptr, 0);
      h.backend().execute(w, t);
    }
  });
  for (unsigned k = 0; k < 4; ++k)
    EXPECT_EQ(counters[k * 8], std::uint64_t{kThreads} * kPer) << "cell " << k;
}

TEST_P(FailureInjection, IrrevocableStormsPreserveAtomicity) {
  BackendHarness h(GetParam(), hostile_config());
  auto* cells = tm::TmHeap::instance().alloc_array<std::uint64_t>(2 * 8);

  struct Env {
    std::uint64_t* cells;
  } env{cells};

  constexpr unsigned kThreads = 4;
  constexpr unsigned kPer = 120;
  h.run(kThreads, [&](unsigned tid, tm::Worker& w) {
    for (unsigned i = 0; i < kPer; ++i) {
      tm::Txn t = make_txn(
          +[](Ctx& c, const void* e, void*, unsigned) {
            auto* cl = static_cast<const Env*>(e)->cells;
            c.write(cl, c.read(cl) + 1);
            c.write(cl + 8, c.read(cl + 8) + 1);
            return false;
          },
          &env, nullptr, 0);
      // Every third transaction demands irrevocability (system calls...).
      t.irrevocable = (tid + i) % 3 == 0;
      h.backend().execute(w, t);
    }
  });
  EXPECT_EQ(cells[0], std::uint64_t{kThreads} * kPer);
  EXPECT_EQ(cells[8], cells[0]);
}

TEST_P(FailureInjection, OversizedUnderHostileResourcesStillAtomic) {
  BackendHarness h(GetParam(), hostile_config());
  constexpr unsigned kWords = 64 * 8;  // 64 lines >> 24-line L1
  auto* arr = tm::TmHeap::instance().alloc_array<std::uint64_t>(kWords);

  struct Env {
    std::uint64_t* arr;
  } env{arr};
  struct L {
    std::uint64_t stamp;
  };

  constexpr unsigned kThreads = 3;
  h.run(kThreads, [&](unsigned tid, tm::Worker& w) {
    L l{};
    for (unsigned i = 1; i <= 10; ++i) {
      l.stamp = (std::uint64_t{tid + 1} << 32) | i;
      tm::Txn t = make_txn(
          +[](Ctx& c, const void* e, void* lp, unsigned seg) {
            auto* a = static_cast<const Env*>(e)->arr;
            const auto stamp = static_cast<L*>(lp)->stamp;
            for (unsigned k = 0; k < 8; ++k)
              c.write(a + (seg * 8 + k) * 8, stamp);
            return seg + 1 < 8;
          },
          &env, &l, sizeof(l));
      h.backend().execute(w, t);
    }
  });
  const std::uint64_t first = arr[0];
  for (unsigned k = 0; k < 64; ++k) ASSERT_EQ(arr[k * 8], first);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FailureInjection,
                         testing::ValuesIn(concurrent_algos()), algo_param_name);

// Deterministic injections of each abort cause through the simulator knobs.
TEST(FailureInjectionSim, EveryKnobProducesItsCause) {
  using sim::AbortCode;
  // Associativity.
  {
    sim::HtmConfig cfg = sim::HtmConfig::testing();
    cfg.assoc_sets = 2;
    cfg.assoc_ways = 1;
    sim::HtmRuntime rt(cfg);
    sim::HtmRuntime::Thread th(rt);
    auto* a = tm::TmHeap::instance().alloc_array<std::uint64_t>(64 * 8);
    // Two lines mapping to the same set of the 2-set model; set indexing
    // hashes the line id, so find a colliding pair by hash.
    std::uint64_t* same_set[2] = {a, nullptr};
    for (unsigned i = 1; i < 64 && same_set[1] == nullptr; ++i)
      if (phtm::hash_line(phtm::line_of(a + i * 8)) % cfg.assoc_sets ==
          phtm::hash_line(phtm::line_of(a)) % cfg.assoc_sets)
        same_set[1] = a + i * 8;
    ASSERT_NE(same_set[1], nullptr);
    const auto r = rt.attempt(th, [&](sim::HtmOps& ops) {
      ops.write(same_set[0], 1);
      ops.write(same_set[1], 1);
    });
    EXPECT_EQ(r.abort.code, AbortCode::kCapacity);
  }
  // Quantum.
  {
    sim::HtmConfig cfg = sim::HtmConfig::testing();
    cfg.tick_budget = 10;
    sim::HtmRuntime rt(cfg);
    sim::HtmRuntime::Thread th(rt);
    const auto r = rt.attempt(th, [&](sim::HtmOps& ops) { ops.work(11); });
    EXPECT_EQ(r.abort.code, AbortCode::kOther);
  }
  // Interrupt rate of 1: the very first access faults.
  {
    sim::HtmConfig cfg = sim::HtmConfig::testing();
    cfg.random_other_per_access = 1.0;
    sim::HtmRuntime rt(cfg);
    sim::HtmRuntime::Thread th(rt);
    auto* a = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);
    const auto r = rt.attempt(th, [&](sim::HtmOps& ops) { ops.read(a); });
    EXPECT_EQ(r.abort.code, AbortCode::kOther);
  }
}

}  // namespace
}  // namespace phtm::test
