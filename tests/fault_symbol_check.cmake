# Asserts that a plain (non-chaos) binary carries no fault-engine symbols:
# without PHTM_FAULTS the injection hooks are no-ops, sim/fault.cpp is not
# in the link, and nothing may reference phtm::chaos. A match means an
# injection site leaked past the macro gate (or a plain library started
# consulting the engine unconditionally) — the fault layer is no longer
# zero-cost when unset.
#
# Usage: cmake -DNM=<nm> -DBINARY=<file> -P fault_symbol_check.cmake
if(NOT EXISTS "${BINARY}")
  message(FATAL_ERROR "binary not found: ${BINARY}")
endif()

execute_process(COMMAND "${NM}" "${BINARY}"
                OUTPUT_VARIABLE symbols
                RESULT_VARIABLE rv
                ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "nm failed on ${BINARY}: ${err}")
endif()

# The phtm::chaos namespace mangles as ...N4phtm5chaos...; any hit means
# fault-engine code was linked in.
string(REGEX MATCHALL "[^\n]*4phtm5chaos[^\n]*" hits "${symbols}")
if(hits)
  list(LENGTH hits n)
  list(GET hits 0 first)
  message(FATAL_ERROR
          "plain binary contains ${n} fault-engine symbol(s), e.g.: ${first}")
endif()
message(STATUS "no fault-engine symbols in ${BINARY}")
