// Unit tests for the TM heap and its shadow lock words.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "tm/heap.hpp"
#include "util/cacheline.hpp"
#include "util/threads.hpp"

namespace phtm::tm {
namespace {

TEST(TmHeap, AllocationsAreZeroedAndLineAligned) {
  auto& h = TmHeap::instance();
  auto* a = h.alloc_array<std::uint64_t>(100);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % kCacheLineBytes, 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], 0u);
}

TEST(TmHeap, DistinctAllocationsNeverShareALine) {
  auto& h = TmHeap::instance();
  auto* a = h.alloc_array<std::uint64_t>(1);
  auto* b = h.alloc_array<std::uint64_t>(1);
  EXPECT_NE(line_of(a), line_of(b));
}

TEST(TmHeap, ShadowIsPerWordAndStable) {
  auto& h = TmHeap::instance();
  auto* a = h.alloc_array<std::uint64_t>(16);
  auto* s0 = h.shadow_of(a);
  auto* s1 = h.shadow_of(a + 1);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(s0 + 1, s1) << "shadow words are co-located by address arithmetic";
  EXPECT_EQ(h.shadow_of(a), s0) << "mapping must be stable";
  EXPECT_EQ(*s0, 0u);
}

TEST(TmHeap, ContainsDistinguishesHeapMemory) {
  auto& h = TmHeap::instance();
  auto* a = h.alloc_array<std::uint64_t>(4);
  std::uint64_t stack_word = 0;
  EXPECT_TRUE(h.contains(a));
  EXPECT_TRUE(h.contains(a + 3));
  EXPECT_FALSE(h.contains(&stack_word));
}

TEST(TmHeap, NonHeapAddressesGetFallbackLocks) {
  auto& h = TmHeap::instance();
  std::uint64_t stack_word = 0;
  auto* s = h.shadow_of(&stack_word);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(h.shadow_of(&stack_word), s);
}

TEST(TmHeap, LargeAllocationSpansOwnSlab) {
  auto& h = TmHeap::instance();
  const std::size_t big = 80u << 20;  // 80 MiB > slab size
  auto* p = static_cast<std::uint64_t*>(h.alloc(big));
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(h.contains(p));
  EXPECT_TRUE(h.contains(reinterpret_cast<char*>(p) + big - 8));
  // Shadow works across the whole region.
  EXPECT_NE(h.shadow_of(p + (big / 8) - 1), nullptr);
}

TEST(TmHeap, ConcurrentAllocationIsSafe) {
  auto& h = TmHeap::instance();
  std::vector<std::uint64_t*> ptrs[8];
  run_threads(8, [&](unsigned tid) {
    for (int i = 0; i < 200; ++i)
      ptrs[tid].push_back(h.alloc_array<std::uint64_t>(8 + tid));
  });
  // All distinct, all contained, shadows resolvable.
  std::set<std::uint64_t*> all;
  for (auto& v : ptrs)
    for (auto* p : v) {
      EXPECT_TRUE(all.insert(p).second);
      EXPECT_TRUE(h.contains(p));
      EXPECT_NE(h.shadow_of(p), nullptr);
    }
}

}  // namespace
}  // namespace phtm::tm
