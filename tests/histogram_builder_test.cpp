// Unit tests for the latency histogram and the type-safe Txn builder.
#include <gtest/gtest.h>

#include "test_common.hpp"
#include "tm/builder.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace phtm {
namespace {

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_DOUBLE_EQ(h.mean(), 7.5);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.99), 15u);
}

TEST(Histogram, BucketBoundsContainValues) {
  Rng rng(17);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.next() >> (rng.below(60));
    const unsigned b = Histogram::bucket_of(v);
    EXPECT_GE(Histogram::bucket_upper(b), v) << "v=" << v << " b=" << b;
    if (b > 0 && b < Histogram::kBuckets - 1) {
      EXPECT_LT(Histogram::bucket_upper(b - 1), v) << "v=" << v;
    }
  }
}

TEST(Histogram, QuantilesWithinRelativeError) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  // p50 ~ 50000, p99 ~ 99000, each within the 6.25% bucket error.
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50000.0, 50000 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99000.0, 99000 * 0.07);
  EXPECT_EQ(h.max(), 100000u);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Histogram a, b, both;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(1 << 20);
    ((i % 2) ? a : b).record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_EQ(a.min(), both.min());
  for (double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_EQ(a.quantile(q), both.quantile(q));
}

TEST(TxnBuilder, MultiSegmentTypedStep) {
  test::BackendHarness h(tm::Algo::kPartHtm);
  struct Env {
    std::uint64_t* cells;
  };
  struct L {
    std::uint64_t sum;
  };
  auto* cells = tm::TmHeap::instance().alloc_array<std::uint64_t>(4 * 8);
  for (int i = 0; i < 4; ++i) cells[i * 8] = i + 1;
  Env env{cells};
  L l{};
  tm::Txn t = tm::TxnOf<Env, L>::make(
      env, l, [](tm::Ctx& c, const Env& e, L& loc, unsigned seg) {
        loc.sum += c.read(e.cells + seg * 8);
        c.write(e.cells + seg * 8, loc.sum);
        return seg + 1 < 4;
      });
  h.run(1, [&](unsigned, tm::Worker& w) { h.backend().execute(w, t); });
  EXPECT_EQ(l.sum, 1u + 2 + 3 + 4);
  EXPECT_EQ(cells[3 * 8], 10u);
}

TEST(TxnBuilder, FlatSingleSegment) {
  test::BackendHarness h(tm::Algo::kNorec);
  struct Env {
    std::uint64_t* x;
  };
  struct L {
    std::uint64_t seen;
  };
  auto* x = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);
  *x = 41;
  Env env{x};
  L l{};
  tm::Txn t = tm::TxnOf<Env, L>::make_flat(
      env, l, [](tm::Ctx& c, const Env& e, L& loc) {
        loc.seen = c.read(e.x);
        c.write(e.x, loc.seen + 1);
      });
  h.run(1, [&](unsigned, tm::Worker& w) { h.backend().execute(w, t); });
  EXPECT_EQ(l.seen, 41u);
  EXPECT_EQ(*x, 42u);
}

TEST(TxnBuilder, IrrevocableFlagPropagates) {
  struct Env {
    int dummy;
  };
  struct L {
    int dummy;
  };
  Env env{};
  L l{};
  tm::Txn t = tm::TxnOf<Env, L>::make(
      env, l, [](tm::Ctx&, const Env&, L&, unsigned) { return false; },
      /*irrevocable=*/true);
  EXPECT_TRUE(t.irrevocable);
  EXPECT_EQ(t.locals_bytes, sizeof(L));
}

}  // namespace
}  // namespace phtm
