// Unit tests for the history checker (src/mc/history.hpp, opacity.hpp)
// against hand-built histories — no scheduler involved, so every accept /
// reject decision is auditable by eye.
#include <gtest/gtest.h>

#include "mc/opacity.hpp"

namespace phtm::mc {
namespace {

// A tiny word arena; only the addresses matter to the checker.
struct Arena {
  std::uint64_t w[4] = {0, 0, 0, 0};
  std::uint64_t* x() { return &w[0]; }
  std::uint64_t* y() { return &w[1]; }
};

McOp rd(const std::uint64_t* a, std::uint64_t v, std::uint64_t step) {
  return McOp{a, v, step, /*is_write=*/false};
}
McOp wr(const std::uint64_t* a, std::uint64_t v, std::uint64_t step) {
  return McOp{a, v, step, /*is_write=*/true};
}

HistoryInput base(Arena& ar) {
  HistoryInput in;
  in.initial = {{ar.x(), 0}, {ar.y(), 0}};
  in.final_mem = {{ar.x(), 0}, {ar.y(), 0}};
  return in;
}

TEST(McChecker, EmptyHistoryIsSerializable) {
  Arena ar;
  const HistoryVerdict v = check_history(base(ar));
  EXPECT_TRUE(v.ok) << v.diagnosis;
}

TEST(McChecker, SerialWriterThenReaderAccepted) {
  Arena ar;
  HistoryInput in = base(ar);
  // T0 writes x=1,y=1 (steps 1-2, commits at 3); T1 reads 1,1 (steps 4-5).
  in.txns.push_back({0, {wr(ar.x(), 1, 1), wr(ar.y(), 1, 2)}, 1, 3});
  in.txns.push_back({1, {rd(ar.x(), 1, 4), rd(ar.y(), 1, 5)}, 4, 6});
  in.final_mem = {{ar.x(), 1}, {ar.y(), 1}};
  const HistoryVerdict v = check_history(in);
  ASSERT_TRUE(v.ok) << v.diagnosis;
  EXPECT_EQ(v.witness, (std::vector<unsigned>{0, 1}));
}

TEST(McChecker, TornReadRejected) {
  Arena ar;
  HistoryInput in = base(ar);
  // T1 observes x after T0's write but y before it: no serial order works.
  in.txns.push_back({0, {wr(ar.x(), 1, 1), wr(ar.y(), 1, 2)}, 1, 3});
  in.txns.push_back({1, {rd(ar.x(), 1, 4), rd(ar.y(), 0, 5)}, 4, 6});
  in.final_mem = {{ar.x(), 1}, {ar.y(), 1}};
  const HistoryVerdict v = check_history(in);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.diagnosis.find("not serializable"), std::string::npos);
}

TEST(McChecker, RealTimeOrderForbidsOtherwiseValidWitness) {
  Arena ar;
  HistoryInput in = base(ar);
  // Value-wise T1 (reads 0) would have to serialize before T0 (writes 1),
  // but T1 began strictly after T0 committed — no admissible witness.
  in.txns.push_back({0, {wr(ar.x(), 1, 1)}, 1, 2});
  in.txns.push_back({1, {rd(ar.x(), 0, 3)}, 3, 4});
  in.final_mem = {{ar.x(), 1}, {ar.y(), 0}};
  const HistoryVerdict v = check_history(in);
  EXPECT_FALSE(v.ok);
}

TEST(McChecker, ConcurrentStaleReaderMaySerializeFirst) {
  Arena ar;
  HistoryInput in = base(ar);
  // Same values, but T1 overlapped T0 (began before T0 committed): placing
  // T1 first explains its stale read.
  in.txns.push_back({0, {wr(ar.x(), 1, 2)}, 2, 4});
  in.txns.push_back({1, {rd(ar.x(), 0, 1)}, 1, 3});
  in.final_mem = {{ar.x(), 1}, {ar.y(), 0}};
  const HistoryVerdict v = check_history(in);
  ASSERT_TRUE(v.ok) << v.diagnosis;
  EXPECT_EQ(v.witness, (std::vector<unsigned>{1, 0}));
}

TEST(McChecker, FinalMemoryMismatchRejected) {
  Arena ar;
  HistoryInput in = base(ar);
  in.txns.push_back({0, {wr(ar.x(), 1, 1)}, 1, 2});
  in.final_mem = {{ar.x(), 2}, {ar.y(), 0}};  // lost/extra update
  const HistoryVerdict v = check_history(in);
  EXPECT_FALSE(v.ok);
}

TEST(McChecker, OwnWritesShadowGlobalState) {
  Arena ar;
  HistoryInput in = base(ar);
  in.txns.push_back(
      {0, {wr(ar.x(), 5, 1), rd(ar.x(), 5, 2), wr(ar.x(), 6, 3)}, 1, 4});
  in.final_mem = {{ar.x(), 6}, {ar.y(), 0}};
  const HistoryVerdict v = check_history(in);
  EXPECT_TRUE(v.ok) << v.diagnosis;
}

TEST(McChecker, UntrackedAddressDiagnosed) {
  Arena ar;
  std::uint64_t stray = 0;
  HistoryInput in = base(ar);
  in.txns.push_back({0, {rd(&stray, 0, 1)}, 1, 2});
  const HistoryVerdict v = check_history(in);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.diagnosis.find("untracked"), std::string::npos);
}

// ---- opacity --------------------------------------------------------------

TEST(McChecker, ZombieFragmentViolatesOpacity) {
  Arena ar;
  HistoryInput in = base(ar);
  in.check_opacity = true;
  in.txns.push_back({0, {wr(ar.x(), 1, 2), wr(ar.y(), 1, 3)}, 2, 5});
  in.final_mem = {{ar.x(), 1}, {ar.y(), 1}};
  // An aborted attempt that saw x after T0's write but y before it: no
  // witness prefix (neither {} nor {T0}) explains both reads.
  Fragment f;
  f.ops = {rd(ar.x(), 1, 4), rd(ar.y(), 0, 4)};
  f.begin_step = 1;
  f.end_step = 4;
  in.fragments.push_back(f);
  const HistoryVerdict v = check_history(in);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.diagnosis.find("opacity"), std::string::npos);
}

TEST(McChecker, ConsistentFragmentSatisfiesOpacity) {
  Arena ar;
  HistoryInput in = base(ar);
  in.check_opacity = true;
  in.txns.push_back({0, {wr(ar.x(), 1, 2), wr(ar.y(), 1, 3)}, 2, 5});
  in.final_mem = {{ar.x(), 1}, {ar.y(), 1}};
  Fragment f;  // consistent pre-state snapshot: prefix k=0 explains it
  f.ops = {rd(ar.x(), 0, 1), rd(ar.y(), 0, 1)};
  f.begin_step = 1;
  f.end_step = 1;
  in.fragments.push_back(f);
  const HistoryVerdict v = check_history(in);
  EXPECT_TRUE(v.ok) << v.diagnosis;
}

TEST(McChecker, FragmentRealTimeIntervalConstrainsPrefix) {
  Arena ar;
  HistoryInput in = base(ar);
  in.check_opacity = true;
  // T0 committed entirely before the fragment began, so prefix k=0 is not
  // admissible: the fragment's stale reads cannot be explained.
  in.txns.push_back({0, {wr(ar.x(), 1, 1), wr(ar.y(), 1, 2)}, 1, 3});
  in.final_mem = {{ar.x(), 1}, {ar.y(), 1}};
  Fragment f;
  f.ops = {rd(ar.x(), 0, 4), rd(ar.y(), 0, 5)};
  f.begin_step = 4;
  f.end_step = 5;
  in.fragments.push_back(f);
  const HistoryVerdict v = check_history(in);
  EXPECT_FALSE(v.ok);
}

// Serializability (check_opacity=false) must ignore fragments entirely.
TEST(McChecker, SerializabilityIgnoresZombies) {
  Arena ar;
  HistoryInput in = base(ar);
  in.txns.push_back({0, {wr(ar.x(), 1, 2), wr(ar.y(), 1, 3)}, 2, 5});
  in.final_mem = {{ar.x(), 1}, {ar.y(), 1}};
  Fragment f;
  f.ops = {rd(ar.x(), 1, 4), rd(ar.y(), 0, 4)};
  f.begin_step = 1;
  f.end_step = 4;
  in.fragments.push_back(f);
  const HistoryVerdict v = check_history(in);
  EXPECT_TRUE(v.ok) << v.diagnosis;
}

// ---- recorder -------------------------------------------------------------

TEST(McRecorder, RollbackSuffixBecomesFragment) {
  Arena ar;
  Recorder rec;
  rec.reset(1);
  TxLog log;
  rec.note(0, log, rd(ar.x(), 0, 0));
  rec.note(0, log, rd(ar.y(), 7, 0));
  // Hardware rollback: the locals snapshot restore rewinds the in-locals
  // count; the mirror keeps both ops.
  log.nops = 0;
  rec.note(0, log, rd(ar.x(), 1, 0));  // retry's first op triggers harvest
  rec.finish(0, log);
  const TxRecord& r = rec.record(0);
  ASSERT_EQ(r.fragments.size(), 1u);
  EXPECT_EQ(r.fragments[0].ops.size(), 2u);
  EXPECT_EQ(r.fragments[0].ops[1].val, 7u);
  ASSERT_EQ(r.mirror.size(), 1u);
  EXPECT_EQ(r.mirror[0].val, 1u);
  EXPECT_TRUE(r.committed);
  EXPECT_GT(r.end_step, r.mirror[0].step);
}

TEST(McRecorder, TrailingRollbackHarvestedAtFinish) {
  Arena ar;
  Recorder rec;
  rec.reset(1);
  TxLog log;
  rec.note(0, log, wr(ar.x(), 1, 0));
  log.nops = 0;  // aborted after its last recorded op
  rec.finish(0, log);
  const TxRecord& r = rec.record(0);
  ASSERT_EQ(r.fragments.size(), 1u);
  EXPECT_TRUE(r.mirror.empty());
}

}  // namespace
}  // namespace phtm::mc
