// End-to-end tests of the schedule explorer (src/mc) against the scenario
// library. These run the real protocol stack (compiled with PHTM_MC=1)
// under the cooperative scheduler and exhaustively enumerate interleavings
// up to a preemption bound.
//
// The acceptance bar: every protocol scenario explores to completion with
// every history accepted, and the deliberately re-introduced torn-write-back
// bug (RingSTM skipping its single-writer gate — the PR-1 race) is caught
// with a deterministic replay seed.
#include <gtest/gtest.h>

#include <cstdlib>

#include "mc/sched.hpp"

namespace phtm::mc {
namespace {

ExploreOptions bounded(unsigned bound) {
  ExploreOptions o;
  o.preemption_bound = bound;
  return o;
}

/// PHTM_MC_PREEMPTIONS overrides the default bound (CI's extended job sets
/// it higher; the quick suite runs at 2).
unsigned env_bound(unsigned def) {
  if (const char* s = std::getenv("PHTM_MC_PREEMPTIONS"))
    return static_cast<unsigned>(std::strtoul(s, nullptr, 10));
  return def;
}

class McScenarioClean : public ::testing::TestWithParam<const char*> {};

TEST_P(McScenarioClean, ExhaustiveAtBoundTwoAllHistoriesAccepted) {
  const McScenario* sc = find_scenario(GetParam());
  ASSERT_NE(sc, nullptr);
  const ExploreStats st = explore(*sc, bounded(env_bound(2)));
  EXPECT_TRUE(st.complete) << "exploration truncated (schedules=" << st.schedules << ")";
  EXPECT_FALSE(st.violation)
      << st.violation_kind << ": " << st.violation_detail
      << "\nreplay seed: " << st.violation_seed;
  // Exhaustive means many schedules, not one happy path. The smallest
  // scenario (two write-only RingSTM transactions, sleep sets on) explores
  // 41 schedules at bound 2; every PART-HTM scenario is well into the
  // hundreds or thousands.
  EXPECT_GT(st.schedules, 30u);
}

INSTANTIATE_TEST_SUITE_P(Protocol, McScenarioClean,
                         ::testing::Values("fast_fast_ring", "part_vs_fast",
                                           "slow_quiesce", "undo_rollback",
                                           "opaque_zombie",
                                           "two_shard_opacity",
                                           "two_shard_writers",
                                           "ringstm_writeback"),
                         [](const auto& info) { return info.param; });

TEST(McExplore, SeededFaultIsCaughtWithReplayableSchedule) {
  const McScenario* sc = find_scenario("ringstm_writeback_fault");
  ASSERT_NE(sc, nullptr);

  const ExploreStats st = explore(*sc, bounded(2));
  ASSERT_TRUE(st.violation)
      << "torn write-back not found in " << st.schedules << " schedules";
  EXPECT_EQ(st.violation_kind, "history");
  ASSERT_FALSE(st.violation_seed.empty());

  // The printed seed must reproduce the violation deterministically.
  ExploreOptions replay;
  replay.replay = st.violation_seed;
  const ExploreStats re = explore(*sc, replay);
  EXPECT_EQ(re.schedules, 1u);
  ASSERT_TRUE(re.violation) << "seed did not reproduce the violation";
  EXPECT_EQ(re.violation_kind, "history");
  EXPECT_EQ(re.violation_seed, st.violation_seed);
}

TEST(McExplore, SleepSetsPruneButStillFindTheBug) {
  const McScenario* sc = find_scenario("ringstm_writeback_fault");
  ASSERT_NE(sc, nullptr);
  ExploreOptions without = bounded(2);
  without.sleep_sets = false;
  const ExploreStats st_with = explore(*sc, bounded(2));
  const ExploreStats st_without = explore(*sc, without);
  EXPECT_TRUE(st_with.violation);
  EXPECT_TRUE(st_without.violation);

  // On the clean sibling, pruning must reduce work without losing
  // completeness.
  const McScenario* clean = find_scenario("ringstm_writeback");
  ASSERT_NE(clean, nullptr);
  ExploreOptions clean_without = bounded(2);
  clean_without.sleep_sets = false;
  const ExploreStats a = explore(*clean, bounded(2));
  const ExploreStats b = explore(*clean, clean_without);
  EXPECT_TRUE(a.complete);
  EXPECT_TRUE(b.complete);
  EXPECT_FALSE(a.violation);
  EXPECT_FALSE(b.violation);
  EXPECT_GT(a.sleep_pruned, 0u);
  EXPECT_LE(a.schedules, b.schedules);
}

TEST(McExplore, UndoRollbackScenarioExercisesRetraction) {
  // The clean sweep above already proves every interleaving of the
  // global-abort rollback keeps the history serializable; this pins the
  // scenario's own coverage invariants (the writer really did global-abort
  // and really did retract its write-locks) via the scenario invariant,
  // which explore() evaluates after every schedule — a violation would have
  // surfaced there. Run a single default schedule and sanity-check stats.
  const McScenario* sc = find_scenario("undo_rollback");
  ASSERT_NE(sc, nullptr);
  ExploreOptions one = bounded(0);
  one.max_schedules = 1;
  const ExploreStats st = explore(*sc, one);
  EXPECT_FALSE(st.violation)
      << st.violation_kind << ": " << st.violation_detail;
  EXPECT_EQ(st.schedules, 1u);
}

TEST(McExplore, ReplayPastSeedContinuesWithDefaults) {
  // A short prefix seed: the run must complete (defaults after the prefix)
  // and stay clean.
  const McScenario* sc = find_scenario("part_vs_fast");
  ASSERT_NE(sc, nullptr);
  ExploreOptions o;
  o.replay = "0,1,0";
  const ExploreStats st = explore(*sc, o);
  EXPECT_EQ(st.schedules, 1u);
  EXPECT_FALSE(st.violation)
      << st.violation_kind << ": " << st.violation_detail;
}

}  // namespace
}  // namespace phtm::mc
