// Integration tests for the micro-benchmark applications (NRW, linked list,
// EigenBench) across backends.
#include <gtest/gtest.h>

#include "apps/eigenbench.hpp"
#include "apps/list.hpp"
#include "apps/nrw.hpp"
#include "test_common.hpp"

namespace phtm::test {
namespace {

class MicroApps : public testing::TestWithParam<tm::Algo> {};

TEST_P(MicroApps, NrwConfigAWritesLand) {
  sim::HtmRuntime rt(sim::HtmConfig::xeon18c());
  auto be = tm::make_backend(GetParam(), rt, {});
  apps::NrwApp app(apps::NrwApp::Config::a(), 4);
  run_threads(4, [&](unsigned tid) {
    auto w = be->make_worker(tid);
    apps::NrwApp::Locals l;
    for (int i = 0; i < 50; ++i) {
      tm::Txn t = app.make_txn(tid, l);
      be->execute(*w, t);
    }
  });
  // Every thread's slice got its writes.
  for (unsigned tid = 0; tid < 4; ++tid)
    EXPECT_NE(app.dst()[tid * (100000 / 4)], 0u) << "thread " << tid;
}

TEST_P(MicroApps, NrwConfigBOversizedReadsCommit) {
  sim::HtmRuntime rt(sim::HtmConfig::xeon18c());
  auto be = tm::make_backend(GetParam(), rt, {});
  apps::NrwApp::Config cfg = apps::NrwApp::Config::b();
  cfg.array_size = 20000;  // keep the test quick; still >> any L1
  cfg.n_reads = 20000;
  apps::NrwApp app(cfg, 2);
  run_threads(2, [&](unsigned tid) {
    auto w = be->make_worker(tid);
    apps::NrwApp::Locals l;
    for (int i = 0; i < 3; ++i) {
      tm::Txn t = app.make_txn(tid, l);
      be->execute(*w, t);
    }
  });
  EXPECT_NE(app.dst()[0], 0u);
}

TEST_P(MicroApps, NrwConfigCDurationBoundCommits) {
  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
  auto be = tm::make_backend(GetParam(), rt, {});
  apps::NrwApp app(apps::NrwApp::Config::c(), 2);
  run_threads(2, [&](unsigned tid) {
    auto w = be->make_worker(tid);
    apps::NrwApp::Locals l;
    for (int i = 0; i < 5; ++i) {
      tm::Txn t = app.make_txn(tid, l);
      be->execute(*w, t);
    }
  });
  // dst[base+i] = src[base+i]*3+1 for the written prefix.
  for (unsigned tid = 0; tid < 2; ++tid) {
    const std::uint64_t base = tid * 50000;
    EXPECT_EQ(app.dst()[base], base * 3 + 1);
    EXPECT_EQ(app.dst()[base + 99], (base + 99) * 3 + 1);
  }
}

TEST_P(MicroApps, ListStaysSortedAndSizeBalanced) {
  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
  auto be = tm::make_backend(GetParam(), rt, {});
  apps::ListApp::Config cfg;
  cfg.initial_size = 300;
  apps::ListApp app(cfg);
  std::atomic<std::int64_t> net{0};  // inserts - removes that took effect
  run_threads(4, [&](unsigned tid) {
    auto w = be->make_worker(tid);
    apps::ListApp::NodePool pool;
    apps::ListApp::Locals l;
    std::int64_t mine = 0;
    for (int i = 0; i < 300; ++i) {
      tm::Txn t = app.make_txn(w->rng(), pool, l);
      be->execute(*w, t);
      if (l.op == apps::ListApp::kInsert && l.result) ++mine;
      if (l.op == apps::ListApp::kRemove && l.result) --mine;
      app.finish(l, pool);
    }
    net.fetch_add(mine);
  });
  EXPECT_TRUE(app.sorted_and_unique());
  EXPECT_EQ(app.size(), 300u + net.load());
}

TEST_P(MicroApps, ListContainsAgreesWithSequentialCheck) {
  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
  auto be = tm::make_backend(GetParam(), rt, {});
  apps::ListApp::Config cfg;
  cfg.initial_size = 100;
  cfg.write_pct = 0;  // read-only: the set is static
  apps::ListApp app(cfg);
  auto w = be->make_worker(0);
  apps::ListApp::NodePool pool;
  apps::ListApp::Locals l;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    tm::Txn t = app.make_txn(rng, pool, l);
    be->execute(*w, t);
    EXPECT_EQ(l.result != 0, app.contains_seq(l.key)) << "key " << l.key;
  }
}

TEST_P(MicroApps, EigenMixedAndHotComplete) {
  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
  auto be = tm::make_backend(GetParam(), rt, {});
  for (const auto cfg :
       {apps::EigenApp::Config::mixed(), apps::EigenApp::Config::hot()}) {
    apps::EigenApp::Config c2 = cfg;
    if (c2.mode == apps::EigenApp::Mode::kHot) {
      c2.hot_reads = 1000;  // keep the hot config quick
    }
    apps::EigenApp app(c2, 2);
    std::atomic<std::uint64_t> done{0};
    run_threads(2, [&](unsigned tid) {
      auto w = be->make_worker(tid);
      Rng rng(tid + 1);
      apps::EigenApp::Locals l;
      const int n = c2.mode == apps::EigenApp::Mode::kHot ? 4 : 40;
      for (int i = 0; i < n; ++i) {
        tm::Txn t = app.make_txn(tid, rng, l);
        be->execute(*w, t);
        done.fetch_add(1);
      }
    });
    EXPECT_GT(done.load(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, MicroApps,
                         testing::ValuesIn(concurrent_algos()), algo_param_name);

}  // namespace
}  // namespace phtm::test
