// Compiled-out contract of the PHTM_TRACE_* macros (mirrors
// annotations_test.cpp for the mc hooks): in a build without PHTM_TRACE the
// macros must expand to `((void)0)` — evaluating their arguments exactly
// zero times — so instrumentation sites in protocol headers cost literally
// nothing. The binary-level half of the contract (no phtm::obs symbols get
// linked into untraced binaries) is the trace_compiled_out_symbols test in
// tests/CMakeLists.txt.
//
// This file links the *plain* libraries on purpose; under a whole-tree
// -DPHTM_TRACE=ON configure the macros are live and the zero-evaluation
// expectation does not apply, so the suite skips itself.

#include <gtest/gtest.h>

#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace {

using phtm::AbortCause;
using phtm::CommitPath;

#if defined(PHTM_TRACE) && PHTM_TRACE

TEST(TraceMacrosCompiledOut, SkippedInTraceEnabledBuild) {
  GTEST_SKIP() << "macros are live under -DPHTM_TRACE=ON";
}

#else

TEST(TraceMacrosCompiledOut, ArgumentsAreNeverEvaluated) {
  int evals = 0;
  // [[maybe_unused]] is the test passing at compile time: zero-evaluation
  // macros leave the counting lambda with no uses at all.
  [[maybe_unused]] auto count = [&evals](auto v) {
    ++evals;
    return v;
  };

  PHTM_TRACE_TX_BEGIN();
  PHTM_TRACE_TX_COMMIT(count(CommitPath::kHtm));
  PHTM_TRACE_TX_ABORT(count(AbortCause::kConflict), count(0u), count(0u));
  PHTM_TRACE_PATH(count(CommitPath::kSoftware));
  PHTM_TRACE_SUB_BEGIN(count(0u));
  PHTM_TRACE_SUB_COMMIT(count(0u));
  PHTM_TRACE_SUB_ABORT(count(0u), count(AbortCause::kCapacity));
  PHTM_TRACE_RING_PUBLISH(count(0u), count(0u), count(0u));
  PHTM_TRACE_RING_VALIDATE(count(0u), count(0u), count(0u));
  PHTM_TRACE_DOOM(count(0u), count(0u), count(0u));
  PHTM_TRACE_GLOBAL_ABORT();
  PHTM_TRACE_TXN_ENTER();
  PHTM_TRACE_TXN_EXIT();
  PHTM_TRACE_META(count("key"), count(0u));

  EXPECT_EQ(evals, 0) << "a compiled-out trace macro evaluated an argument";
}

TEST(TraceMacrosCompiledOut, UsableAsSingleStatement) {
  // Must parse as one statement in unbraced if/else chains.
  if (false)
    PHTM_TRACE_TX_BEGIN();
  else
    PHTM_TRACE_GLOBAL_ABORT();
  SUCCEED();
}

#endif  // PHTM_TRACE

}  // namespace
