// Tracer unit and integration tests. This binary links the PHTM_TRACE=1
// flavor of the protocol stack (phtm_core_obs et al., see
// src/obs/CMakeLists.txt), so the PHTM_TRACE_* macros are live and every
// backend emits typed events; the suite pins:
//  - exact ring-rollover loss accounting on a standalone buffer;
//  - per-thread emission-order preservation through a multi-thread drain;
//  - the 1:1 invariant between trace events and StatSheet counters
//    (every record_abort/record_commit site has an adjacent emission), for
//    every concurrent backend — this is what lets tools/trace_view.py
//    cross-check a trace against the run's aggregate statistics;
//  - the in-txn deferral contract (events buffered between txn_enter and
//    txn_exit, pending-array overflow accounted exactly);
//  - mid-run telemetry polling racing live emitters (meaningful under the
//    tsan preset: the poller touches only the relaxed cursor/drop atomics).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "test_common.hpp"
#include "tm/heap.hpp"
#include "util/stats.hpp"
#include "util/threads.hpp"

namespace {

using namespace phtm;
using namespace phtm::obs;

/// Drained traces keyed down to the ones that saw any events (the registry
/// keeps buffers of threads from earlier tests in this process; reset()
/// zeroes them but they stay registered).
std::vector<ThreadTrace> active_traces() {
  std::vector<ThreadTrace> out;
  for (auto& t : drain())
    if (t.emitted > 0) out.push_back(std::move(t));
  return out;
}

TEST(TraceBufferTest, RolloverAccountsLossExactly) {
  TraceBuffer buf(/*tid=*/0, /*capacity=*/64);
  ASSERT_EQ(buf.capacity(), 64u);  // already a power of two

  const std::uint64_t total = 64 + 17;
  for (std::uint64_t i = 0; i < total; ++i) {
    Event e{};
    e.ns = i;
    e.a0 = i;
    e.kind = EventKind::kTxBegin;
    buf.push(e);
  }

  EXPECT_EQ(buf.emitted(), total);
  EXPECT_EQ(buf.dropped(), 17u);  // exactly the overwritten prefix

  const auto events = buf.snapshot_events();
  ASSERT_EQ(events.size(), 64u);
  // Survivors are the newest `capacity` records, still in emission order.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].a0, 17 + i);
}

TEST(TraceBufferTest, CapacityRoundsUpToPowerOfTwo) {
  TraceBuffer buf(/*tid=*/0, /*capacity=*/100);
  EXPECT_EQ(buf.capacity(), 128u);
}

TEST(TraceBufferTest, NoLossBelowCapacity) {
  TraceBuffer buf(/*tid=*/0, /*capacity=*/128);
  for (std::uint64_t i = 0; i < 100; ++i) {
    Event e{};
    e.a0 = i;
    e.kind = EventKind::kTxCommit;
    buf.push(e);
  }
  EXPECT_EQ(buf.emitted(), 100u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_EQ(buf.snapshot_events().size(), 100u);
}

TEST(TraceRegistryTest, MultiThreadDrainPreservesPerThreadOrder) {
  reset();
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;

  run_threads(kThreads, [&](unsigned tid) {
    for (std::uint64_t i = 0; i < kPerThread; ++i)
      emit(EventKind::kSubBegin, static_cast<std::uint8_t>(tid),
           /*a0=*/i, /*a1=*/tid);
  });

  const auto traces = active_traces();
  ASSERT_EQ(traces.size(), kThreads);
  std::vector<bool> tid_seen(64, false);
  for (const auto& t : traces) {
    EXPECT_EQ(t.emitted, kPerThread);
    EXPECT_EQ(t.dropped, 0u);
    ASSERT_EQ(t.events.size(), kPerThread);
    // All events of one buffer belong to one emitter, in emission order.
    const auto owner = t.events.front().a1;
    EXPECT_LT(owner, std::uint64_t{64});
    EXPECT_FALSE(tid_seen[owner]) << "two buffers for one thread";
    tid_seen[owner] = true;
    std::uint64_t last_ns = 0;
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      EXPECT_EQ(t.events[i].a0, i) << "emission order lost";
      EXPECT_EQ(t.events[i].a1, owner) << "foreign event in buffer";
      EXPECT_GE(t.events[i].ns, last_ns) << "time ran backwards";
      last_ns = t.events[i].ns;
    }
  }
}

TEST(TraceRegistryTest, InTxnEventsAreDeferredAndFlushed) {
  reset();
  const Telemetry t0 = telemetry();

  txn_enter();
  for (int i = 0; i < 3; ++i) emit(EventKind::kDoom, 1, i, 0);
  // Deferred: nothing has reached the ring yet.
  EXPECT_EQ(telemetry().emitted, t0.emitted);
  txn_exit();
  EXPECT_EQ(telemetry().emitted, t0.emitted + 3);
  EXPECT_EQ(telemetry().dropped, t0.dropped);
}

TEST(TraceRegistryTest, PendingOverflowIsAccountedExactly) {
  reset();
  const Telemetry t0 = telemetry();

  constexpr std::uint64_t kBurst = 4096;  // far over the pending-array cap
  txn_enter();
  for (std::uint64_t i = 0; i < kBurst; ++i)
    emit(EventKind::kDoom, 0, i, 0);
  txn_exit();

  const Telemetry t1 = telemetry();
  const std::uint64_t flushed = t1.emitted - t0.emitted;
  const std::uint64_t lost = t1.dropped - t0.dropped;
  EXPECT_GT(lost, 0u) << "burst did not overflow the pending array";
  EXPECT_EQ(flushed + lost, kBurst) << "events vanished unaccounted";
}

TEST(TraceRegistryTest, TelemetryPollerRacesLiveEmitters) {
  reset();
  constexpr unsigned kEmitters = 3;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<unsigned> running{kEmitters};

  // The poller participates via run_threads as thread 0; it reads only the
  // cursor/drop atomics, which is the documented mid-run contract.
  std::uint64_t polls = 0;
  run_threads(kEmitters + 1, [&](unsigned tid) {
    if (tid == 0) {
      std::uint64_t last = 0;
      // do-while: poll at least once even if the emitters outrace this
      // thread's first scheduling quantum on a loaded host.
      do {
        const Telemetry t = telemetry();
        EXPECT_GE(t.emitted, last) << "telemetry went backwards";
        last = t.emitted;
        ++polls;
      } while (running.load(std::memory_order_acquire) != 0);
    } else {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        emit(EventKind::kRingValidate, 0, i, 0);
      running.fetch_sub(1, std::memory_order_release);
    }
  });

  EXPECT_GT(polls, 0u);
  std::uint64_t total = 0;
  for (const auto& t : active_traces()) total += t.emitted;
  EXPECT_EQ(total, kEmitters * kPerThread);
}

// --- trace/stats consistency across every concurrent backend --------------

struct Env {
  std::uint64_t* arr;
};

/// Three-segment read-modify-write over shared words: enough contention for
/// aborts on every backend, enough segments for the partitioned path.
bool contended_step(tm::Ctx& c, const void* e, void*, unsigned seg) {
  auto* a = static_cast<const Env*>(e)->arr;
  const std::uint64_t v = c.read(a + 8 * seg);
  c.work(16);
  c.write(a + 8 * seg, v + 1);
  return seg + 1 < 3;
}

class TraceStatsConsistency : public testing::TestWithParam<tm::Algo> {};

/// The acceptance invariant behind tools/trace_view.py --check: with zero
/// drops, the trace's per-cause abort counts and per-path commit counts
/// equal the run's aggregate StatSheet exactly — every recording site
/// emits, every emission is recorded.
TEST_P(TraceStatsConsistency, EventCountsMatchAggregateCounters) {
  reset();
  constexpr unsigned kThreads = 4;
  constexpr unsigned kRounds = 400;

  test::BackendHarness h(GetParam());
  auto* arr = tm::TmHeap::instance().alloc_array<std::uint64_t>(8 * 3);
  for (unsigned i = 0; i < 8 * 3; ++i) arr[i] = 0;
  Env env{arr};

  const StatSummary stats = h.run(kThreads, [&](unsigned, tm::Worker& w) {
    for (unsigned i = 0; i < kRounds; ++i) {
      tm::Txn t = test::make_txn(&contended_step, &env, nullptr, 0);
      h.backend().execute(w, t);
    }
  });

  const auto traces = active_traces();
  const TraceSummary ts = summarize(traces);
  ASSERT_EQ(ts.dropped, 0u) << "raise PHTM_TRACE_BUF for this workload";

  // Every execute() commits exactly once (all backends retry to completion).
  EXPECT_EQ(ts.tx_begins, std::uint64_t{kThreads} * kRounds);
  for (unsigned p = 0; p < 3; ++p)
    EXPECT_EQ(ts.commits[p], stats.total.commits[p])
        << "commit path " << to_string(static_cast<CommitPath>(p));
  for (unsigned c = 0; c < 4; ++c)
    EXPECT_EQ(ts.aborts[c], stats.total.aborts[c])
        << "abort cause " << to_string(static_cast<AbortCause>(c));

  // Sub-HTM boundary events agree with the dedicated counters where the
  // backend maintains them (the PART-HTM variants).
  if (stats.total.sub_htm_commits > 0) {
    EXPECT_EQ(ts.sub_commits, stats.total.sub_htm_commits);
  }
  if (stats.total.global_aborts > 0) {
    EXPECT_EQ(ts.global_aborts, stats.total.global_aborts);
  }
  // Ring events are per *shard scanned*: one kRingValidate per shard a
  // validation pass actually intersected (untouched shards advance silently)
  // and one kRingPublish per written shard's slot fill — each 1:1 with the
  // shard-aware StatSheet counters.
  std::uint64_t ev_validates = 0;
  for (unsigned v = 0; v < 3; ++v) ev_validates += ts.ring_validates[v];
  std::uint64_t by_shard = 0;
  for (unsigned s = 0; s < TraceSummary::kRingShards; ++s) {
    by_shard += ts.ring_validates_by_shard[s];
    EXPECT_EQ(ts.ring_validates_by_shard[s],
              stats.total.ring_validates_by_shard[s])
        << "ring validate scans, shard " << s;
    EXPECT_EQ(ts.ring_publishes_by_shard[s],
              stats.total.ring_publishes_by_shard[s])
        << "ring publishes, shard " << s;
  }
  EXPECT_EQ(ev_validates, by_shard);
  // A validation pass scans between zero and kRingShards shards.
  EXPECT_LE(ev_validates,
            stats.total.validations * TraceSummary::kRingShards);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TraceStatsConsistency,
                         testing::ValuesIn(test::concurrent_algos()),
                         test::algo_param_name);

/// summarize() must agree with what the exporters serialize; spot-check the
/// summary math on a hand-built trace.
TEST(TraceSummaryTest, CountsAndLatenciesFromHandBuiltTrace) {
  ThreadTrace t;
  t.tid = 0;
  t.emitted = 5;
  auto push = [&t](EventKind k, std::uint8_t aux, std::uint64_t ns) {
    Event e{};
    e.ns = ns;
    e.kind = k;
    e.aux = aux;
    e.txn = 1;
    t.events.push_back(e);
  };
  push(EventKind::kTxBegin, 0, 1000);
  push(EventKind::kPathEnter, 0, 1001);
  push(EventKind::kTxAbort, static_cast<std::uint8_t>(AbortCause::kCapacity),
       1500);
  push(EventKind::kPathEnter, 1, 1501);
  push(EventKind::kTxCommit, static_cast<std::uint8_t>(CommitPath::kSoftware),
       3000);

  const TraceSummary s = summarize({t});
  EXPECT_EQ(s.events, 5u);
  EXPECT_EQ(s.tx_begins, 1u);
  EXPECT_EQ(s.aborts[static_cast<unsigned>(AbortCause::kCapacity)], 1u);
  EXPECT_EQ(s.commits[static_cast<unsigned>(CommitPath::kSoftware)], 1u);
  EXPECT_EQ(s.path_enters[0], 1u);
  EXPECT_EQ(s.path_enters[1], 1u);
  // Latency attribution: from the owning kTxBegin.
  const auto& h =
      s.commit_latency_ns[static_cast<unsigned>(CommitPath::kSoftware)];
  ASSERT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 2000u);
  const auto& ha =
      s.abort_latency_ns[static_cast<unsigned>(AbortCause::kCapacity)];
  ASSERT_EQ(ha.count(), 1u);
  EXPECT_EQ(ha.max(), 500u);
}

}  // namespace
