// PART-HTM-specific behavior: path selection, lock-table hygiene, undo on
// global abort, software segments, irrevocability, and the PART-HTM-O
// opacity property.
#include <gtest/gtest.h>

#include <atomic>

#include "core/part_htm.hpp"
#include "test_common.hpp"

namespace phtm::test {
namespace {

using core::PartHtmBackend;

std::unique_ptr<PartHtmBackend> make_part(sim::HtmRuntime& rt,
                                          PartHtmBackend::Mode mode,
                                          bool no_fast = false,
                                          tm::BackendConfig cfg = {}) {
  return std::make_unique<PartHtmBackend>(rt, cfg, mode, no_fast);
}

// --- path selection -------------------------------------------------------

TEST(PartHtm, SmallTransactionsCommitOnFastPath) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  auto be = make_part(rt, PartHtmBackend::Mode::kSerializable);
  auto* x = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);
  auto w = be->make_worker(0);
  for (int i = 0; i < 50; ++i) {
    tm::Txn t;
    t.step = +[](tm::Ctx& c, const void* e, void*, unsigned) {
      auto* p = static_cast<std::uint64_t*>(const_cast<void*>(e));
      c.write(p, c.read(p) + 1);
      return false;
    };
    t.env = x;
    be->execute(*w, t);
  }
  EXPECT_EQ(*x, 50u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kHtm)], 50u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kSoftware)], 0u);
}

TEST(PartHtm, OversizedTransactionsTakePartitionedPathNotLock) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.write_lines_cap = 32;  // tiny L1: 64-line write set cannot fit
  sim::HtmRuntime rt(cfg);
  auto be = make_part(rt, PartHtmBackend::Mode::kSerializable);
  auto* arr = tm::TmHeap::instance().alloc_array<std::uint64_t>(64 * 8);
  auto w = be->make_worker(0);
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* e, void*, unsigned seg) {
    auto* a = static_cast<std::uint64_t*>(const_cast<void*>(e));
    for (unsigned i = 0; i < 16; ++i) c.write(a + (seg * 16 + i) * 8, 1);
    return seg + 1 < 4;  // 4 segments x 16 lines
  };
  t.env = arr;
  be->execute(*w, t);
  for (unsigned i = 0; i < 64; ++i) EXPECT_EQ(arr[i * 8], 1u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kSoftware)], 1u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kGlobalLock)], 0u);
  EXPECT_GE(w->stats().sub_htm_commits, 4u);
  // The discovery abort must be a capacity abort.
  EXPECT_GE(w->stats().aborts[static_cast<unsigned>(AbortCause::kCapacity)], 1u);
}

TEST(PartHtm, NoFastVariantSkipsHardwareTrial) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  auto be = make_part(rt, PartHtmBackend::Mode::kSerializable, /*no_fast=*/true);
  auto* x = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);
  auto w = be->make_worker(0);
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* e, void*, unsigned) {
    auto* p = static_cast<std::uint64_t*>(const_cast<void*>(e));
    c.write(p, c.read(p) + 1);
    return false;
  };
  t.env = x;
  be->execute(*w, t);
  EXPECT_EQ(*x, 1u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kHtm)], 0u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kSoftware)], 1u);
}

TEST(PartHtm, IrrevocableTakesSlowPath) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  auto be = make_part(rt, PartHtmBackend::Mode::kSerializable);
  auto* x = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);
  auto w = be->make_worker(0);
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* e, void*, unsigned) {
    auto* p = static_cast<std::uint64_t*>(const_cast<void*>(e));
    c.write(p, 5);
    return false;
  };
  t.env = x;
  t.irrevocable = true;
  be->execute(*w, t);
  EXPECT_EQ(*x, 5u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kGlobalLock)], 1u);
}

// --- metadata hygiene -----------------------------------------------------

TEST(PartHtm, WriteLocksReleasedAfterPartitionedCommit) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.write_lines_cap = 16;
  sim::HtmRuntime rt(cfg);
  auto be = make_part(rt, PartHtmBackend::Mode::kSerializable);
  auto* arr = tm::TmHeap::instance().alloc_array<std::uint64_t>(32 * 8);
  auto w = be->make_worker(0);
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* e, void*, unsigned seg) {
    auto* a = static_cast<std::uint64_t*>(const_cast<void*>(e));
    for (unsigned i = 0; i < 8; ++i) c.write(a + (seg * 8 + i) * 8, 1);
    return seg + 1 < 4;
  };
  t.env = arr;
  be->execute(*w, t);
  EXPECT_TRUE(be->write_locks_empty())
      << "lock table must be clean after commit";
}

TEST(PartHtm, SoftwareSegmentsRunOutsidePartitionedHardware) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.tick_budget = 3000;  // the compute segment alone would blow this
  sim::HtmRuntime rt(cfg);
  auto be = make_part(rt, PartHtmBackend::Mode::kSerializable,
                      /*no_fast=*/true);  // go straight to the partitioned path
  auto* x = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);
  auto w = be->make_worker(0);
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* e, void*, unsigned seg) {
    auto* p = static_cast<std::uint64_t*>(const_cast<void*>(e));
    if (seg == 0) {
      c.write(p, c.read(p) + 1);
      return true;
    }
    if (seg == 1) {
      c.work(50'000);  // would abort any hardware transaction (OTHER)
      return true;
    }
    c.write(p, c.read(p) + 1);
    return false;
  };
  t.seg_kind = +[](const void*, const void*, unsigned seg) {
    return seg == 1 ? tm::SegKind::kSw : tm::SegKind::kHw;
  };
  t.env = x;
  be->execute(*w, t);
  EXPECT_EQ(*x, 2u);
  // If the work segment had run in hardware, the transaction could only
  // have completed on the slow path.
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kSoftware)], 1u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kGlobalLock)], 0u);
}

// --- abort handling -------------------------------------------------------

TEST(PartHtm, SubHtmExhaustionRollsBackUndoLogAndRetractsLocks) {
  // Deterministic, single-threaded companion to the model-checker scenario
  // `undo_rollback` (src/mc/scenario.cpp): segment 0 eagerly writes x and
  // announces its write lock; segment 1 can never fit the duration quantum,
  // so every sub-HTM attempt aborts, the retries exhaust, and the attempt
  // global-aborts. The undo log must restore x and the lock table must be
  // retracted before the transaction re-executes — each fresh execution
  // records the x it reads, so a leaked eager write is directly visible.
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.tick_budget = 80;  // seg 0 fits; seg 1 (work = 4x budget) never does
  sim::HtmRuntime rt(cfg);
  tm::BackendConfig bc;
  bc.htm_retries = 1;
  bc.partitioned_retries = 1;
  bc.sub_htm_retries = 2;
  auto be = make_part(rt, PartHtmBackend::Mode::kSerializable, false, bc);
  auto* x = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);
  auto* y = tm::TmHeap::instance().alloc_array<std::uint64_t>(16);
  struct E {
    std::uint64_t* x;
    std::uint64_t* y;
    std::uint64_t seen[8];
    unsigned n = 0;
  } env{x, y + 8, {}, 0};  // y+8: one full line away from y's base
  auto w = be->make_worker(0);
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* ep, void*, unsigned seg) {
    E& e = *const_cast<E*>(static_cast<const E*>(ep));
    if (seg == 0) {
      // The side channel survives rollback: plain store into the env.
      e.seen[e.n++ % 8] = c.read(e.x);
      c.write(e.x, 1);
      return true;
    }
    c.work(320);  // guaranteed duration abort inside any sub-HTM attempt
    c.write(e.y, 1);
    return false;
  };
  t.env = &env;
  be->execute(*w, t);

  // Committed (on the slow path, after the partitioned path gave up).
  EXPECT_EQ(*x, 1u);
  EXPECT_EQ(env.y[0], 1u);
  EXPECT_GE(w->stats().global_aborts, 1u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kGlobalLock)], 1u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kHtm)], 0u);
  // Undo witness: every execution, including the final slow-path one, read
  // x = 0 — the aborted attempt's eager write never leaked.
  ASSERT_GE(env.n, 2u);
  for (unsigned i = 0; i < env.n && i < 8; ++i)
    EXPECT_EQ(env.seen[i], 0u) << "execution " << i << " saw a leaked write";
  // Lock witness: the aborted attempt's write-lock bits were retracted (the
  // slow path takes no locks, so any residue is the aborted attempt's).
  EXPECT_TRUE(be->write_locks_empty())
      << "write-locks signature not retracted after global abort";
}

TEST(PartHtm, GlobalAbortRestoresEagerWrites) {
  // Two workers: A partitions and writes x in its first segment, then stalls
  // on a flag; B overwrites one of A's read locations forcing A's in-flight
  // validation to fail; A must roll x back before retrying.
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  sim::HtmRuntime rt(cfg);
  tm::BackendConfig bcfg;
  bcfg.validate_after_each_sub = true;
  auto be = make_part(rt, PartHtmBackend::Mode::kSerializable,
                      /*no_fast=*/true, bcfg);
  auto* mem = tm::TmHeap::instance().alloc_array<std::uint64_t>(16);
  std::uint64_t* x = mem;       // written by A (eagerly published)
  std::uint64_t* y = mem + 8;   // read by A, written by B

  std::atomic<int> phase{0};
  std::atomic<bool> first_pass{true};

  struct E {
    std::uint64_t *x, *y;
    std::atomic<int>* phase;
    std::atomic<bool>* first_pass;
  } env{x, y, &phase, &first_pass};

  std::thread ta([&] {
    auto w = be->make_worker(0);
    tm::Txn t;
    t.step = +[](tm::Ctx& c, const void* ep, void*, unsigned seg) {
      const E& e = *static_cast<const E*>(ep);
      if (seg == 0) {
        c.read(e.y);          // dependency on y
        c.write(e.x, 42);     // eagerly published at sub-commit
        return true;
      }
      // On the first global execution only: park between the segments so
      // the main thread can interfere. Retries skip the handshake.
      if (e.first_pass->exchange(false)) {
        e.phase->store(2);
        while (e.phase->load() != 3) cpu_relax();
      }
      c.write(e.x, 43);
      return false;
    };
    t.env = &env;
    be->execute(*w, t);
    EXPECT_GE(w->stats().global_aborts, 1u);
  });

  // Wait for A to park between its two segments; its first sub-HTM commit
  // has eagerly published x = 42 by then.
  while (phase.load() != 2) cpu_relax();
  EXPECT_EQ(__atomic_load_n(x, __ATOMIC_ACQUIRE), 42u);
  // Invalidate A: overwrite y (a location A read).
  {
    auto wb = be->make_worker(1);
    struct E {
      std::uint64_t* y;
    } env{y};
    tm::Txn t;
    t.step = +[](tm::Ctx& c, const void* ep, void*, unsigned) {
      c.write(static_cast<const E*>(ep)->y, 7);
      return false;
    };
    t.env = &env;
    be->execute(*wb, t);
  }
  // A has not committed yet but had published x=42; after we release it, A
  // must detect the invalidation, roll back x, and re-execute to completion.
  phase.store(3);
  ta.join();
  EXPECT_EQ(*x, 43u);
  EXPECT_EQ(*y, 7u);
}

// --- opacity (PART-HTM-O) --------------------------------------------------

struct OpacityEnv {
  std::uint64_t* a;
  std::uint64_t* b;
  std::atomic<std::uint64_t>* inconsistencies;
};
struct OpacityLocals {
  std::uint64_t va;
};

/// Readers pull a then b in separate segments and count observed snapshot
/// violations through a non-transactional side channel (locals would be
/// rolled back, the side channel survives aborts).
bool opacity_reader_step(tm::Ctx& c, const void* ep, void* lp, unsigned seg) {
  const OpacityEnv& e = *static_cast<const OpacityEnv*>(ep);
  OpacityLocals& l = *static_cast<OpacityLocals*>(lp);
  if (seg == 0) {
    l.va = c.read(e.a);
    return true;
  }
  const std::uint64_t vb = c.read(e.b);
  if (l.va + vb != 1000) e.inconsistencies->fetch_add(1);
  return false;
}

bool opacity_writer_step(tm::Ctx& c, const void* ep, void*, unsigned seg) {
  const OpacityEnv& e = *static_cast<const OpacityEnv*>(ep);
  if (seg == 0) {
    c.write(e.a, c.read(e.a) + 10);
    return true;
  }
  c.write(e.b, c.read(e.b) - 10);
  return false;
}

TEST(PartHtmO, NoSegmentEverRunsOnAnInvalidSnapshot) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  auto be = make_part(rt, PartHtmBackend::Mode::kOpaque, /*no_fast=*/true);
  auto* mem = tm::TmHeap::instance().alloc_array<std::uint64_t>(16);
  mem[0] = 400;
  mem[8] = 600;  // invariant: a + b == 1000
  std::atomic<std::uint64_t> inconsistencies{0};
  OpacityEnv env{mem, mem + 8, &inconsistencies};

  run_threads(4, [&](unsigned tid) {
    auto w = be->make_worker(tid);
    OpacityLocals l{};
    for (int i = 0; i < 400; ++i) {
      tm::Txn t;
      t.step = (tid % 2 == 0) ? &opacity_reader_step : &opacity_writer_step;
      t.env = &env;
      t.locals = &l;
      t.locals_bytes = sizeof(l);
      be->execute(*w, t);
    }
  });

  EXPECT_EQ(mem[0] + mem[8], 1000u);
  // Opacity: even transactions that later abort never observed a broken
  // snapshot across their segments.
  EXPECT_EQ(inconsistencies.load(), 0u);
}

TEST(PartHtmO, EncounterTimeLocksKeepShadowClean) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.write_lines_cap = 16;
  sim::HtmRuntime rt(cfg);
  auto be = make_part(rt, PartHtmBackend::Mode::kOpaque);
  auto* arr = tm::TmHeap::instance().alloc_array<std::uint64_t>(64 * 8);
  auto w = be->make_worker(0);
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* e, void*, unsigned seg) {
    auto* a = static_cast<std::uint64_t*>(const_cast<void*>(e));
    for (unsigned i = 0; i < 16; ++i) c.write(a + (seg * 16 + i) * 8, 2);
    return seg + 1 < 4;
  };
  t.env = arr;
  be->execute(*w, t);
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(arr[i * 8], 2u);
    EXPECT_EQ(*tm::TmHeap::instance().shadow_of(arr + i * 8), 0u)
        << "shadow lock " << i << " leaked";
  }
}

}  // namespace
}  // namespace phtm::test
