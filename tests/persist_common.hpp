// Shared scaffolding for the recovery suites (tests/persist_*,
// tests/recovery_*, tests/durable_opacity_*).
//
// The persist tests drive the PART-HTM backend in durable mode (persist
// library flavor: PHTM_FAULTS=1 + PHTM_PERSIST=1) on real threads while
// the fault layer's kCrashPoint seams freeze the persistence domain
// mid-protocol, then take the crash, run recovery, and check DURABLE
// OPACITY: the recovered state must be explainable by a confirmed-superset
// subset of the committed history (mc/durable.hpp).
//
// Freeze-and-continue: a kCrash decision freezes the domain (the crash
// instant) but execution continues normally — everything after the freeze
// is exactly the work a real crash would have lost. The harness joins the
// round's threads, takes the crash (PersistDomain::crash), recovers, and
// checks the freeze round's transactions against the volatile snapshot
// taken at the round boundary (rounds are joined, so the snapshot is a
// consistent durable prefix: every earlier round's transaction was
// confirmed durable long before the freeze).
//
// Seeds follow the chaos protocol (chaos_common.hpp): PHTM_CHAOS_SEED or
// the fixed default, printed once for replay.
#pragma once

#include "chaos_common.hpp"

#include "core/durable.hpp"
#include "mc/durable.hpp"
#include "sim/persist.hpp"

#if !defined(PHTM_PERSIST) || !PHTM_PERSIST
#error "persist tests must link the persist library flavor (PHTM_PERSIST=1)"
#endif

namespace phtm::test {

/// Round-based durable-history harness: each round runs one two-segment
/// read-modify-write transaction per thread (same shape as the chaos
/// harness), captures the ops through the model checker's Recorder, and
/// remembers per transaction whether its commit was confirmed durable
/// (execute() returned while the domain was still unfrozen — its commit
/// record was fenced strictly before the crash instant).
class PersistHarness {
 public:
  static constexpr unsigned kCells = 8;

  explicit PersistHarness(const sim::HtmConfig& cfg, unsigned threads,
                          core::PartHtmBackend::Mode mode =
                              core::PartHtmBackend::Mode::kSerializable,
                          std::size_t log_cells = 4096)
      : rt_(cfg),
        backend_(rt_, tm::BackendConfig{}, mode, /*no_fast=*/false),
        dlog_(log_cells),
        threads_(threads) {
    dom_.configure(cfg.persist);
    cells_ = tm::TmHeap::instance().alloc_array<std::uint64_t>(kCells * 8);
    for (unsigned i = 0; i < kCells; ++i) {
      cells_[i * 8] = 0;
      dom_.format(&cells_[i * 8], 0);  // mkfs: register the durable words
    }
    backend_.set_persist(&dom_, &dlog_);
    for (unsigned t = 0; t < threads; ++t)
      workers_.push_back(backend_.make_worker(t));
  }

  sim::HtmRuntime& runtime() noexcept { return rt_; }
  core::PartHtmBackend& backend() noexcept { return backend_; }
  persist::PersistDomain& domain() noexcept { return dom_; }
  persist::DurableLog& log() noexcept { return dlog_; }
  std::uint64_t* cell(unsigned i) noexcept { return &cells_[i * 8]; }

  /// Aggregate worker stat sheets (persist op counters etc.). Call after
  /// the round's threads joined.
  StatSheet stats() const {
    StatSheet s;
    for (const auto& w : workers_) s += w->stats();
    return s;
  }

  struct RoundResult {
    std::vector<mc::CommittedTx> txns;  ///< stamps zeroed (preemptive run)
    std::vector<unsigned> confirmed;    ///< indices confirmed durable
    /// Volatile cell snapshot at the round boundary BEFORE this round —
    /// the consistent durable prefix the round's survivors extend.
    std::vector<std::pair<const std::uint64_t*, std::uint64_t>> pre;
    bool froze = false;  ///< the domain froze during this round
  };

  /// One round: every thread executes one two-segment increment of two
  /// cells; per-thread confirmation is sampled right after execute().
  RoundResult run_round(unsigned round) {
    RoundResult out;
    for (unsigned i = 0; i < kCells; ++i)
      out.pre.emplace_back(&cells_[i * 8], cells_[i * 8]);

    mc::Recorder rec;
    rec.reset(threads_);
    struct Env {
      std::uint64_t* cells;
      mc::Recorder* rec;
    } env{cells_, &rec};
    struct L {
      mc::TxLog log;
      std::uint64_t tid;
      std::uint64_t a, b;
    };
    static_assert(std::is_trivially_copyable_v<L>);

    std::vector<char> conf(threads_, 0);
    run_threads(threads_, [&](unsigned tid) {
      L l{};
      l.tid = tid;
      l.a = tid % kCells;
      l.b = (tid + 1 + round) % kCells;
      tm::Txn t;
      t.step = +[](tm::Ctx& c, const void* e, void* lp, unsigned seg) {
        const Env& en = *static_cast<const Env*>(e);
        L& loc = *static_cast<L*>(lp);
        const unsigned tid = static_cast<unsigned>(loc.tid);
        std::uint64_t* cell = &en.cells[(seg == 0 ? loc.a : loc.b) * 8];
        const std::uint64_t v = mc::rec_read(c, *en.rec, tid, loc.log, cell);
        mc::rec_write(c, *en.rec, tid, loc.log, cell, v + 1);
        return seg == 0;
      };
      t.env = &env;
      t.locals = &l;
      t.locals_bytes = sizeof(L);
      backend_.execute(*workers_[tid], t);
      rec.finish(tid, l.log);
      // Confirmation sample: if the domain is not frozen now, this
      // transaction's commit record was fenced before the crash instant
      // (pfence precedes execute() returning precedes this load) — a
      // real client was told "committed" and durability is owed.
      conf[tid] = dom_.frozen() ? 0 : 1;
    });

    for (unsigned tid = 0; tid < threads_; ++tid) {
      const mc::TxRecord& r = rec.record(tid);
      EXPECT_TRUE(r.committed) << "tid " << tid << " never committed";
      out.txns.push_back(mc::CommittedTx{tid, r.mirror, 0, 0});
      if (conf[tid]) out.confirmed.push_back(tid);
    }
    out.froze = dom_.frozen();
    return out;
  }

  /// Run rounds until the fault plan freezes the domain; returns the
  /// freeze round's result (froze == true) or the last round's (froze ==
  /// false) after `max_rounds`.
  RoundResult run_until_frozen(unsigned max_rounds) {
    RoundResult last;
    for (unsigned r = 0; r < max_rounds; ++r) {
      last = run_round(r);
      if (last.froze) return last;
    }
    return last;
  }

  /// Durable-opacity input for a freeze round: survivors must extend the
  /// pre-round snapshot, include every harness-confirmed transaction and
  /// every transaction recovery itself reported committed (a post-restart
  /// client would be told those committed), and reproduce the recovered
  /// cells exactly.
  mc::DurableVerdict check_round(const RoundResult& r,
                                 const persist::RecoveryReport& rep,
                                 const std::vector<std::uint64_t>& txn_seqs =
                                     {}) const {
    mc::DurableInput in;
    in.initial = r.pre;
    in.txns = r.txns;
    in.must_include = r.confirmed;
    for (std::size_t i = 0; i < txn_seqs.size(); ++i) {
      if (txn_seqs[i] == 0) continue;
      for (std::uint64_t s : rep.committed)
        if (s == txn_seqs[i]) {
          bool dup = false;
          for (unsigned m : in.must_include) dup = dup || m == i;
          if (!dup) in.must_include.push_back(static_cast<unsigned>(i));
        }
    }
    for (unsigned i = 0; i < kCells; ++i)
      in.recovered.emplace_back(&cells_[i * 8], cells_[i * 8]);
    return mc::check_durable(in);
  }

 private:
  sim::HtmRuntime rt_;
  core::PartHtmBackend backend_;
  persist::PersistDomain dom_;
  persist::DurableLog dlog_;
  unsigned threads_;
  std::uint64_t* cells_ = nullptr;
  std::vector<std::unique_ptr<tm::Worker>> workers_;
};

}  // namespace phtm::test
