// Unit tests for the simulated persistence domain (sim/persist.hpp):
// pwb value-capture semantics, fence drains, finite flush-queue eviction,
// freeze-and-continue isolation and seeded crash determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/persist.hpp"

namespace phtm::test {
namespace {

using persist::PersistDomain;

sim::PersistConfig fast_cfg(unsigned depth = 64) {
  sim::PersistConfig c;
  c.flush_latency_ticks = 1;
  c.fence_cost_ticks = 2;
  c.flush_queue_depth = depth;
  return c;
}

TEST(PersistDomain, PwbCapturesValueAtPwbTimeNotFenceTime) {
  PersistDomain dom(fast_cfg());
  std::uint64_t x = 1;
  dom.pwb(&x);
  x = 2;  // store after the write-back: NOT covered by the earlier pwb
  dom.pfence();
  EXPECT_EQ(dom.durable(&x), 1u);
  dom.pwb(&x);
  dom.pfence();
  EXPECT_EQ(dom.durable(&x), 2u);
}

TEST(PersistDomain, RePwbBeforeFenceUpdatesPendingValueInPlace) {
  PersistDomain dom(fast_cfg());
  std::uint64_t x = 1;
  dom.pwb(&x);
  x = 7;
  dom.pwb(&x);  // same word again: pending entry updated, one queue slot
  EXPECT_EQ(dom.pending_size(), 1u);
  dom.pfence();
  EXPECT_EQ(dom.durable(&x), 7u);
}

TEST(PersistDomain, UnpersistedWordReadsZeroLikeFreshMedia) {
  PersistDomain dom(fast_cfg());
  std::uint64_t x = 42;
  EXPECT_EQ(dom.durable(&x), 0u);
  dom.format(&x, 42);
  EXPECT_EQ(dom.durable(&x), 42u);
}

TEST(PersistDomain, FiniteQueueEvictsOldestSpontaneously) {
  PersistDomain dom(fast_cfg(/*depth=*/4));
  std::vector<std::uint64_t> words(8);
  for (unsigned i = 0; i < 8; ++i) {
    words[i] = 100 + i;
    dom.pwb(&words[i]);
  }
  EXPECT_EQ(dom.pending_size(), 4u);
  // The four oldest write-backs were evicted into the durable image long
  // before any fence — pwb'd state may persist at ANY later moment.
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(dom.durable(&words[i]), 100 + i);
  // A crash that keeps nothing pending still finds the evicted words.
  dom.crash_keep([](const std::uint64_t*) { return false; });
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(dom.durable(&words[i]), 100 + i);
  for (unsigned i = 4; i < 8; ++i) EXPECT_EQ(dom.durable(&words[i]), 0u);
}

TEST(PersistDomain, FreezeIsolatesPostFreezeProgress) {
  PersistDomain dom(fast_cfg());
  std::uint64_t x = 5, y = 6;
  dom.pwb(&x);
  dom.freeze();  // crash instant: x pending, y unknown
  EXPECT_TRUE(dom.frozen());
  // Post-freeze execution continues but is work the crash will lose.
  dom.pfence();
  dom.pwb(&y);
  dom.pfence();
  EXPECT_EQ(dom.durable(&y), 6u);  // live image advanced...
  dom.crash_keep([](const std::uint64_t*) { return true; });
  // ...but the crash lands on the frozen image: x (pending, kept), no y.
  EXPECT_EQ(dom.durable(&x), 5u);
  EXPECT_EQ(dom.durable(&y), 0u);
  EXPECT_FALSE(dom.frozen());
}

TEST(PersistDomain, FreezeIsIdempotentFirstWins) {
  PersistDomain dom(fast_cfg());
  std::uint64_t x = 1;
  dom.pwb(&x);
  dom.freeze();
  dom.pfence();
  dom.freeze();  // second freeze: no-op, the first image stands
  EXPECT_EQ(dom.crashes(), 1u);
  dom.crash_keep([](const std::uint64_t*) { return false; });
  EXPECT_EQ(dom.durable(&x), 0u);  // x was pending (not durable) at freeze
}

TEST(PersistDomain, SeededCrashIsDeterministicPerAddress) {
  // Two identical executions with the same seed must produce identical
  // durable images (the torn prefix is a pure function of (seed, addr)).
  std::vector<std::uint64_t> words(32, 9);
  auto run = [&](std::uint64_t seed) {
    PersistDomain dom(fast_cfg());
    for (auto& w : words) dom.pwb(&w);
    dom.crash(seed);
    std::vector<std::uint64_t> image;
    for (auto& w : words) image.push_back(dom.durable(&w));
    return image;
  };
  const auto a = run(77), b = run(77), c = run(78);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c) << "distinct seeds should tear differently (32 coin flips)";
  // A seeded crash keeps a strict subset in general: some word survives,
  // some word is lost, across these 32 pending entries.
  bool kept = false, lost = false;
  for (auto v : a) (v == 9 ? kept : lost) = true;
  EXPECT_TRUE(kept);
  EXPECT_TRUE(lost);
}

TEST(PersistDomain, CountersAndTicksAdvance) {
  PersistDomain dom(fast_cfg());
  StatSheet st;
  std::uint64_t x = 3;
  dom.pwb(&x, &st);
  dom.pfence(&st);
  dom.psync(&st);
  EXPECT_EQ(dom.pwbs(), 1u);
  EXPECT_EQ(dom.pfences(), 1u);
  EXPECT_EQ(dom.psyncs(), 1u);
  EXPECT_EQ(st.persists[static_cast<unsigned>(PersistOp::kPwb)], 1u);
  EXPECT_EQ(st.persists[static_cast<unsigned>(PersistOp::kPfence)], 1u);
  EXPECT_EQ(st.persists[static_cast<unsigned>(PersistOp::kPsync)], 1u);
  // testing-profile-shaped costs: 1 (pwb) + 2 (fence) + 4 (sync = 2x).
  EXPECT_EQ(dom.ticks(), 1u + 2u + 4u);
}

}  // namespace
}  // namespace phtm::test
