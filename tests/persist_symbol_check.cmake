# Asserts that a plain (non-durable) binary carries no persistence-layer
# symbols: without PHTM_PERSIST the durable commit protocol is compiled
# out, sim/persist.cpp is not in the link, and nothing may reference
# phtm::persist. A match means a persist call leaked past the macro gate
# (or a plain library started touching the domain unconditionally) — the
# durable layer is no longer zero-cost when unset.
#
# Usage: cmake -DNM=<nm> -DBINARY=<file> -P persist_symbol_check.cmake
if(NOT EXISTS "${BINARY}")
  message(FATAL_ERROR "binary not found: ${BINARY}")
endif()

execute_process(COMMAND "${NM}" "${BINARY}"
                OUTPUT_VARIABLE symbols
                RESULT_VARIABLE rv
                ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "nm failed on ${BINARY}: ${err}")
endif()

# The phtm::persist namespace mangles as ...N4phtm7persist...; any hit
# means durable-layer code was linked in.
string(REGEX MATCHALL "[^\n]*4phtm7persist[^\n]*" hits "${symbols}")
if(hits)
  list(LENGTH hits n)
  list(GET hits 0 first)
  message(FATAL_ERROR
          "plain binary contains ${n} persist-layer symbol(s), e.g.: ${first}")
endif()
message(STATUS "no persist-layer symbols in ${BINARY}")
