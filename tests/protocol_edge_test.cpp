// Protocol edge cases: eager-value isolation around a live lock holder,
// and global-ring publication integrity under concurrent mixed publishers.
#include "test_common.hpp"

#include "core/part_htm.hpp"
#include "core/ring.hpp"

namespace phtm::test {
namespace {

// A partitioned transaction eagerly publishes x = POISON in its first
// sub-transaction (holding the write lock), then overwrites it with FINAL
// in a second segment. Concurrent readers — fast path or partitioned —
// must only ever *commit* observations of OLD or FINAL, never the locked
// intermediate. Run for both PART-HTM (commit-time detection) and
// PART-HTM-O (encounter-time detection).
class EagerIsolation : public testing::TestWithParam<tm::Algo> {};

TEST_P(EagerIsolation, LockedIntermediateValueNeverCommits) {
  constexpr std::uint64_t kOld = 7, kPoison = 666, kFinal = 42;
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  // The writer's compute segment must not fit one hardware transaction,
  // or the fast path would commit it atomically and no eager value would
  // ever be published.
  cfg.tick_budget = 1500;
  sim::HtmRuntime rt(cfg);
  auto be = tm::make_backend(GetParam(), rt, {});
  auto* x = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);

  for (int round = 0; round < 30; ++round) {
    *x = kOld;
    std::atomic<std::uint64_t> bad{0};
    std::atomic<bool> writer_done{false};

    struct WEnv {
      std::uint64_t* x;
    } wenv{x};

    std::thread writer([&] {
      auto w = be->make_worker(0);
      tm::Txn t;
      t.step = +[](tm::Ctx& c, const void* e, void*, unsigned seg) {
        auto* px = static_cast<const WEnv*>(e)->x;
        if (seg == 0) {
          c.write(px, kPoison);  // eagerly published + locked when partitioned
          return true;
        }
        c.work(2000);  // widen the locked window
        c.write(px, kFinal);
        return false;
      };
      t.env = &wenv;
      be->execute(*w, t);
      writer_done.store(true);
    });

    {
      auto w = be->make_worker(1);
      struct REnv {
        std::uint64_t* x;
      } renv{x};
      struct L {
        std::uint64_t seen;
      } l{};
      while (!writer_done.load()) {
        tm::Txn t;
        t.step = +[](tm::Ctx& c, const void* e, void* lp, unsigned) {
          static_cast<L*>(lp)->seen =
              c.read(static_cast<const REnv*>(e)->x);
          return false;
        };
        t.env = &renv;
        t.locals = &l;
        t.locals_bytes = sizeof(l);
        be->execute(*w, t);
        if (l.seen != kOld && l.seen != kFinal) bad.fetch_add(1);
      }
    }
    writer.join();
    EXPECT_EQ(bad.load(), 0u) << "committed a locked intermediate value";
    EXPECT_EQ(*x, kFinal);
  }
}

INSTANTIATE_TEST_SUITE_P(PartHtmModes, EagerIsolation,
                         testing::Values(tm::Algo::kPartHtm, tm::Algo::kPartHtmO,
                                         tm::Algo::kPartHtmNoFast),
                         algo_param_name);

// Ring integrity: concurrent software fillers must never let a validator
// read a torn signature. Each committer publishes a signature whose bits
// all come from its own address pool; validators probe with a bit no
// writer ever sets — any reported conflict must therefore be a torn read.
TEST(RingStress, ValidatorsNeverSeePhantomBits) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  core::GlobalRing ring(32);  // small: constant slot reuse
  // Writer bit pool plus candidate probe lines. Signature bits hash the
  // (ASLR-randomized) load address, so any one fixed probe cell aliases the
  // pool on a few percent of runs — pick a candidate that provably doesn't.
  alignas(64) static std::uint64_t writer_pool[64 * 8];
  alignas(64) static std::uint64_t probe_cells[16 * 8];

  Signature pool_bits;
  for (int i = 0; i < 64; ++i) pool_bits.add(&writer_pool[i * 8]);
  Signature probe;
  unsigned probe_idx = 0;
  for (; probe_idx < 16; ++probe_idx) {
    Signature cand;
    cand.add(&probe_cells[probe_idx * 8]);
    if (!pool_bits.intersects(cand)) {
      probe = cand;
      break;
    }
  }
  ASSERT_LT(probe_idx, 16u) << "every probe candidate aliased the pool";

  std::atomic<std::uint64_t> phantom{0};
  std::atomic<bool> stop{false};

  run_threads(6, [&](unsigned tid) {
    if (tid < 4) {
      // Committers.
      Rng rng(tid + 1);
      for (int i = 0; i < 2000; ++i) {
        Signature wsig;
        for (int b = 0; b < 8; ++b)
          wsig.add(&writer_pool[rng.below(64) * 8]);
        ring.fill_slot(rt, ring.reserve(rt), wsig);
      }
      stop.store(true);
    } else {
      // Validators.
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t start = rt.nontx_load(ring.timestamp_addr());
        start = start > 8 ? start - 8 : 0;
        const auto v = ring.validate(rt, start, probe);
        if (v == core::ValResult::kConflict) phantom.fetch_add(1);
      }
    }
  });

  EXPECT_EQ(phantom.load(), 0u) << "validator observed a torn ring entry";
}

// Mixed publication: hardware and software committers interleave on the
// same ring; every reserved timestamp must become a readable entry and the
// final timestamp must equal the number of publications.
TEST(RingStress, MixedHtmAndSoftwarePublication) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  core::GlobalRing ring(1024);
  alignas(64) static std::uint64_t obj[8];
  Signature wsig;
  wsig.add(&obj[0]);

  constexpr unsigned kThreads = 6;
  constexpr unsigned kPer = 300;
  std::atomic<std::uint64_t> htm_published{0};
  run_threads(kThreads, [&](unsigned tid) {
    sim::HtmRuntime::Thread th(rt);
    for (unsigned i = 0; i < kPer; ++i) {
      if (tid % 2 == 0) {
        ring.fill_slot(rt, ring.reserve(rt), wsig);
      } else {
        // Hardware publication retries on conflicts/busy slots.
        for (;;) {
          const auto r = rt.attempt(th, [&](sim::HtmOps& ops) {
            ring.publish_in_htm(ops, wsig, /*busy code=*/1);
          });
          if (r.committed) break;
        }
        htm_published.fetch_add(1);
      }
    }
  });

  const std::uint64_t ts = rt.nontx_load(ring.timestamp_addr());
  EXPECT_EQ(ts, std::uint64_t{kThreads} * kPer);
  EXPECT_GT(htm_published.load(), 0u);
  // The most recent window validates cleanly against a non-aliasing probe.
  alignas(64) std::uint64_t other[8];
  Signature probe;
  probe.add(&other[0]);
  if (!probe.intersects(wsig)) {
    std::uint64_t start = ts - 16;
    EXPECT_EQ(ring.validate(rt, start, probe), core::ValResult::kOk);
    EXPECT_EQ(start, ts);
  }
}

}  // namespace
}  // namespace phtm::test
