// Regression stress tests for the simulator's doom/commit latch and the
// ring's publication protocol — the two happens-before edges everything
// else leans on (DESIGN.md, "Memory model & analysis tooling").
//
// These tests are written to be meaningful twice over:
//  - under the tsan preset they drive the exact interleavings TSan needs to
//    observe to vet the edges (doomer vs. latched committer, software
//    invalidation vs. in-flight publication, validator vs. slot reuse);
//  - in ordinary builds the conservation invariants below catch lost or
//    torn updates directly (a doomed transaction whose buffered writes
//    leak, a software increment overwritten by an in-flight publication, a
//    validator reading a half-filled ring slot).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/ring.hpp"
#include "sig/signature.hpp"
#include "sim/config.hpp"
#include "sim/runtime.hpp"
#include "util/annotations.hpp"
#include "util/threads.hpp"

namespace {

using phtm::Signature;
using phtm::core::GlobalRing;
using phtm::core::ValResult;
using phtm::run_threads;
using namespace phtm::sim;

// Keep wall time sane on small machines; sanitizer lanes multiply the cost.
#if PHTM_TSAN_ENABLED || defined(__SANITIZE_ADDRESS__)
constexpr unsigned kRounds = 600;
#else
constexpr unsigned kRounds = 4000;
#endif

/// Hardware increments versus software increments on the same word: every
/// committed transactional +1 and every nontx_fetch_add +1 must survive.
/// This hammers try_doom vs. the commit latch (the software side either
/// dooms the writer or waits out its publication — losing either update
/// means the latch edge broke).
TEST(RaceStress, CommitLatchVsStrongAtomicity) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.seed = 7;
  HtmRuntime rt(cfg);
  alignas(64) static std::uint64_t counter;
  counter = 0;

  constexpr unsigned kThreads = 4;
  std::vector<std::uint64_t> done(kThreads, 0);
  run_threads(kThreads, [&](unsigned tid) {
    std::uint64_t mine = 0;
    if (tid % 2 == 0) {
      HtmRuntime::Thread th(rt);
      for (unsigned i = 0; i < kRounds; ++i) {
        const HtmResult r = rt.attempt(th, [&](HtmOps& ops) {
          const std::uint64_t v = ops.read(&counter);
          ops.write(&counter, v + 1);
        });
        if (r.committed) ++mine;
      }
    } else {
      for (unsigned i = 0; i < kRounds; ++i) {
        rt.nontx_fetch_add(&counter, 1);
        ++mine;
      }
    }
    done[tid] = mine;
  });

  std::uint64_t expected = 0;
  for (const auto d : done) expected += d;
  EXPECT_EQ(rt.nontx_load(&counter), expected);
}

/// Multi-line transactional read-modify-writes racing software CAS loops
/// across a small array: total conservation across all words. Exercises
/// register_write_line doom chains, reader-bitmap dooming, and
/// invalidate_line's wait-for-committer loop on overlapping lines.
TEST(RaceStress, MixedTransactionalAndSoftwareRmw) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.seed = 11;
  HtmRuntime rt(cfg);
  constexpr unsigned kWords = 8;
  alignas(64) static std::uint64_t words[kWords];
  for (auto& w : words) w = 0;

  constexpr unsigned kThreads = 4;
  std::vector<std::uint64_t> added(kThreads, 0);
  run_threads(kThreads, [&](unsigned tid) {
    std::uint64_t mine = 0;
    std::uint64_t x = 0x9e3779b97f4a7c15ull * (tid + 1);
    auto next = [&x] {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      return x;
    };
    if (tid % 2 == 0) {
      HtmRuntime::Thread th(rt);
      for (unsigned i = 0; i < kRounds; ++i) {
        const unsigned a = next() % kWords;
        const unsigned b = next() % kWords;
        const HtmResult r = rt.attempt(th, [&](HtmOps& ops) {
          ops.write(&words[a], ops.read(&words[a]) + 1);
          ops.write(&words[b], ops.read(&words[b]) + 1);
        });
        if (r.committed) mine += 2;
      }
    } else {
      for (unsigned i = 0; i < kRounds; ++i) {
        std::uint64_t* w = &words[next() % kWords];
        for (;;) {
          const std::uint64_t v = rt.nontx_load(w);
          if (rt.nontx_cas(w, v, v + 1)) break;
        }
        ++mine;
      }
    }
    added[tid] = mine;
  });

  std::uint64_t expected = 0;
  for (const auto a : added) expected += a;
  std::uint64_t total = 0;
  for (auto& w : words) total += rt.nontx_load(&w);
  EXPECT_EQ(total, expected);
}

/// Software ring publication vs. concurrent validators. Writers publish
/// signatures that touch only their own designated word; a validator whose
/// read signature is disjoint from every writer's must never observe a
/// conflict — a kConflict here means it read a torn or reused slot as live.
TEST(RaceStress, RingPublicationNeverTearsForValidators) {
  HtmConfig cfg = HtmConfig::testing();
  HtmRuntime rt(cfg);
  GlobalRing ring(64);

  constexpr unsigned kThreads = 4;
  constexpr unsigned kWriters = 2;
  // Writer w sets only signature word w (bit positions 64*w..64*w+63), so a
  // read signature over word kWriters+1 can never truly intersect.
  run_threads(kThreads, [&](unsigned tid) {
    if (tid < kWriters) {
      Signature sig;
      // Any address whose signature bit lands in this writer's private
      // word; scan for one deterministically.
      for (std::uintptr_t p = 64; sig.empty(); p += 64) {
        const unsigned bit = Signature::bit_of(reinterpret_cast<void*>(p));
        if (bit / 64 == tid) sig.add(reinterpret_cast<void*>(p));
      }
      for (unsigned i = 0; i < kRounds; ++i) {
        const std::uint64_t ts = ring.reserve(rt);
        ring.fill_slot(rt, ts, sig);
      }
    } else {
      Signature rsig;
      for (std::uintptr_t p = 64; rsig.empty(); p += 64) {
        const unsigned bit = Signature::bit_of(reinterpret_cast<void*>(p));
        if (bit / 64 == kWriters + 1) rsig.add(reinterpret_cast<void*>(p));
      }
      std::uint64_t start = 0;
      for (unsigned i = 0; i < kRounds; ++i) {
        const ValResult v = ring.validate(rt, start, rsig);
        EXPECT_NE(v, ValResult::kConflict)
            << "validator with a disjoint read signature saw a conflict: "
               "torn or stale ring entry observed as live";
        if (v == ValResult::kRollover) {
          // Fell a full ring behind the writers: legal; resynchronize.
          start = rt.nontx_load(ring.timestamp_addr());
        }
      }
    }
  });
}

/// Validators must detect intersecting publications: with every writer
/// publishing the same signature word a validator subscribed to, kOk may
/// only be returned for an empty window.
TEST(RaceStress, RingValidationCatchesConflicts) {
  HtmConfig cfg = HtmConfig::testing();
  HtmRuntime rt(cfg);
  GlobalRing ring(64);

  Signature shared;
  shared.add(&ring);  // arbitrary address; all parties use the same one

  constexpr unsigned kThreads = 3;
  run_threads(kThreads, [&](unsigned tid) {
    if (tid == 0) {
      for (unsigned i = 0; i < kRounds; ++i) {
        const std::uint64_t ts = ring.reserve(rt);
        ring.fill_slot(rt, ts, shared);
      }
    } else {
      std::uint64_t start = rt.nontx_load(ring.timestamp_addr());
      for (unsigned i = 0; i < kRounds; ++i) {
        const std::uint64_t before = start;
        const ValResult v = ring.validate(rt, start, shared);
        if (v == ValResult::kOk) {
          EXPECT_EQ(start, before)
              << "validate() advanced past a window containing a "
                 "conflicting publication without reporting it";
        } else {
          start = rt.nontx_load(ring.timestamp_addr());
        }
      }
    }
  });
}

}  // namespace
