// Regression stress tests for the simulator's doom/commit latch and the
// ring's publication protocol — the two happens-before edges everything
// else leans on (DESIGN.md, "Memory model & analysis tooling").
//
// These tests are written to be meaningful twice over:
//  - under the tsan preset they drive the exact interleavings TSan needs to
//    observe to vet the edges (doomer vs. latched committer, software
//    invalidation vs. in-flight publication, validator vs. slot reuse);
//  - in ordinary builds the conservation invariants below catch lost or
//    torn updates directly (a doomed transaction whose buffered writes
//    leak, a software increment overwritten by an in-flight publication, a
//    validator reading a half-filled ring slot).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/ring.hpp"
#include "sig/signature.hpp"
#include "sim/config.hpp"
#include "sim/runtime.hpp"
#include "stm/ringstm.hpp"
#include "test_common.hpp"
#include "tm/backend.hpp"
#include "tm/heap.hpp"
#include "util/annotations.hpp"
#include "util/stats.hpp"
#include "util/threads.hpp"

namespace {

using phtm::Signature;
using phtm::core::GlobalRing;
using phtm::core::ValResult;
using phtm::run_threads;
using namespace phtm::sim;

// Keep wall time sane on small machines; sanitizer lanes multiply the cost.
// PHTM_STRESS_ITERS overrides the default round count — turn it up for soak
// runs (the CI extended job, overnight TSan sessions) or down when iterating
// locally; 0/garbage falls back to the build-appropriate default.
unsigned stress_rounds() {
#if PHTM_TSAN_ENABLED || defined(__SANITIZE_ADDRESS__)
  constexpr unsigned kDefault = 600;
#else
  constexpr unsigned kDefault = 4000;
#endif
  static const unsigned rounds = [] {
    if (const char* s = std::getenv("PHTM_STRESS_ITERS")) {
      const unsigned long v = std::strtoul(s, nullptr, 10);
      if (v > 0) return static_cast<unsigned>(v);
    }
    return kDefault;
  }();
  return rounds;
}

/// Hardware increments versus software increments on the same word: every
/// committed transactional +1 and every nontx_fetch_add +1 must survive.
/// This hammers try_doom vs. the commit latch (the software side either
/// dooms the writer or waits out its publication — losing either update
/// means the latch edge broke).
TEST(RaceStress, CommitLatchVsStrongAtomicity) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.seed = 7;
  HtmRuntime rt(cfg);
  alignas(64) static std::uint64_t counter;
  counter = 0;

  constexpr unsigned kThreads = 4;
  std::vector<std::uint64_t> done(kThreads, 0);
  run_threads(kThreads, [&](unsigned tid) {
    std::uint64_t mine = 0;
    if (tid % 2 == 0) {
      HtmRuntime::Thread th(rt);
      for (unsigned i = 0; i < stress_rounds(); ++i) {
        const HtmResult r = rt.attempt(th, [&](HtmOps& ops) {
          const std::uint64_t v = ops.read(&counter);
          ops.write(&counter, v + 1);
        });
        if (r.committed) ++mine;
      }
    } else {
      for (unsigned i = 0; i < stress_rounds(); ++i) {
        rt.nontx_fetch_add(&counter, 1);
        ++mine;
      }
    }
    done[tid] = mine;
  });

  std::uint64_t expected = 0;
  for (const auto d : done) expected += d;
  EXPECT_EQ(rt.nontx_load(&counter), expected);
}

/// Multi-line transactional read-modify-writes racing software CAS loops
/// across a small array: total conservation across all words. Exercises
/// register_write_line doom chains, reader-bitmap dooming, and
/// invalidate_line's wait-for-committer loop on overlapping lines.
TEST(RaceStress, MixedTransactionalAndSoftwareRmw) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.seed = 11;
  HtmRuntime rt(cfg);
  constexpr unsigned kWords = 8;
  alignas(64) static std::uint64_t words[kWords];
  for (auto& w : words) w = 0;

  constexpr unsigned kThreads = 4;
  std::vector<std::uint64_t> added(kThreads, 0);
  run_threads(kThreads, [&](unsigned tid) {
    std::uint64_t mine = 0;
    std::uint64_t x = 0x9e3779b97f4a7c15ull * (tid + 1);
    auto next = [&x] {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      return x;
    };
    if (tid % 2 == 0) {
      HtmRuntime::Thread th(rt);
      for (unsigned i = 0; i < stress_rounds(); ++i) {
        const unsigned a = next() % kWords;
        const unsigned b = next() % kWords;
        const HtmResult r = rt.attempt(th, [&](HtmOps& ops) {
          ops.write(&words[a], ops.read(&words[a]) + 1);
          ops.write(&words[b], ops.read(&words[b]) + 1);
        });
        if (r.committed) mine += 2;
      }
    } else {
      for (unsigned i = 0; i < stress_rounds(); ++i) {
        std::uint64_t* w = &words[next() % kWords];
        for (;;) {
          const std::uint64_t v = rt.nontx_load(w);
          if (rt.nontx_cas(w, v, v + 1)) break;
        }
        ++mine;
      }
    }
    added[tid] = mine;
  });

  std::uint64_t expected = 0;
  for (const auto a : added) expected += a;
  std::uint64_t total = 0;
  for (auto& w : words) total += rt.nontx_load(&w);
  EXPECT_EQ(total, expected);
}

/// Software ring publication vs. concurrent validators. Writers publish
/// signatures that touch only their own designated word; a validator whose
/// read signature is disjoint from every writer's must never observe a
/// conflict — a kConflict here means it read a torn or reused slot as live.
TEST(RaceStress, RingPublicationNeverTearsForValidators) {
  HtmConfig cfg = HtmConfig::testing();
  HtmRuntime rt(cfg);
  GlobalRing ring(64);

  constexpr unsigned kThreads = 4;
  constexpr unsigned kWriters = 2;
  // Writer w sets only signature word w (bit positions 64*w..64*w+63), so a
  // read signature over word kWriters+1 can never truly intersect.
  run_threads(kThreads, [&](unsigned tid) {
    if (tid < kWriters) {
      Signature sig;
      // Any address whose signature bit lands in this writer's private
      // word; scan for one deterministically.
      for (std::uintptr_t p = 64; sig.empty(); p += 64) {
        const unsigned bit = Signature::bit_of(reinterpret_cast<void*>(p));
        if (bit / 64 == tid) sig.add(reinterpret_cast<void*>(p));
      }
      for (unsigned i = 0; i < stress_rounds(); ++i) {
        const std::uint64_t ts = ring.reserve(rt);
        ring.fill_slot(rt, ts, sig);
      }
    } else {
      Signature rsig;
      for (std::uintptr_t p = 64; rsig.empty(); p += 64) {
        const unsigned bit = Signature::bit_of(reinterpret_cast<void*>(p));
        if (bit / 64 == kWriters + 1) rsig.add(reinterpret_cast<void*>(p));
      }
      std::uint64_t start = 0;
      for (unsigned i = 0; i < stress_rounds(); ++i) {
        const ValResult v = ring.validate(rt, start, rsig);
        EXPECT_NE(v, ValResult::kConflict)
            << "validator with a disjoint read signature saw a conflict: "
               "torn or stale ring entry observed as live";
        if (v == ValResult::kRollover) {
          // Fell a full ring behind the writers: legal; resynchronize.
          start = rt.nontx_load(ring.timestamp_addr());
        }
      }
    }
  });
}

/// Regression test for two TSan-surfaced races in the RingSTM baseline
/// (both fixed in stm/ringstm.hpp; the tsan lane caught the first as a
/// torn-commit assertion in the oversized-write-set invariant and the
/// second as a data-race report in the kmeans app run):
///  1. write-back started before the predecessor commit's write-back had
///     completed, so overlapping *write-only* commits — invisible to each
///     other's validation, their read signatures being empty — interleaved
///     their redo-log stores and left a torn final state;
///  2. slot signatures were republished with plain stores while a
///     validator in its seqlock recheck window was still scanning the
///     retired occupant's words.
/// A tiny ring forces slot reuse every few commits so both code paths run
/// hot; the barrier gives every round a quiescent point at which the array
/// must carry exactly one commit's stamp.
TEST(RaceStress, RingStmOverlappingWriteBacksStaySerialized) {
  HtmConfig cfg = HtmConfig::testing();
  HtmRuntime rt(cfg);
  phtm::tm::BackendConfig bcfg;
  bcfg.ring_entries = 8;  // force republication while validators scan
  phtm::stm::RingStmBackend backend(rt, bcfg);

  constexpr unsigned kWords = 2048;  // 256 lines: a long write-back window
  auto* arr = phtm::tm::TmHeap::instance().alloc_array<std::uint64_t>(kWords);
  for (unsigned i = 0; i < kWords; ++i) arr[i] = 0;

  struct Env {
    std::uint64_t* arr;
  };
  struct Locals {
    std::uint64_t stamp;
  };

  constexpr unsigned kThreads = 3;
  const unsigned rounds = stress_rounds() / 15;
  phtm::Barrier round_barrier(kThreads);
  run_threads(kThreads, [&](unsigned tid) {
    auto w = backend.make_worker(tid);
    Env env{arr};
    Locals l{};
    for (unsigned round = 0; round < rounds; ++round) {
      l.stamp = (std::uint64_t{tid} << 32) | (round + 1);
      phtm::tm::Txn t = phtm::test::make_txn(
          +[](phtm::tm::Ctx& c, const void* e, void* lp, unsigned) {
            auto* a = static_cast<const Env*>(e)->arr;
            const auto stamp = static_cast<Locals*>(lp)->stamp;
            for (unsigned k = 0; k < kWords; ++k) c.write(a + k, stamp);
            return false;
          },
          &env, &l, sizeof(l));
      backend.execute(*w, t);
      round_barrier.arrive_and_wait();
      // All three commits returned, so all write-backs have retired; the
      // array must be uniformly stamped by whichever commit came last.
      if (tid == 0) {
        const std::uint64_t first = rt.nontx_load(&arr[0]);
        for (unsigned k = 1; k < kWords; ++k)
          EXPECT_EQ(rt.nontx_load(&arr[k]), first)
              << "torn RingSTM write-back at word " << k << ", round "
              << round;
      }
      round_barrier.arrive_and_wait();
    }
  });
}

/// Hammers the monitor table's lock-free read-registration fast path
/// (fast_register_read: reader-bitmap fetch_or + writer check + identity-tag
/// recheck) from several threads sharing the same lines, while one writer
/// repeatedly claims them — read-read sharing must stay coherent with
/// writer dooming even though readers take no bucket lock. Each reader also
/// subscribes a rotating churn line so entries keep dying and bucket slots
/// keep getting retagged for new lines underneath concurrent fast-path
/// probes. Invariants:
///  - a committed reader's snapshot of the shared lines is consistent (the
///    writer stamps all of them in one transaction, so seeing a mix means a
///    reader survived a write it should have been doomed by or vice versa);
///  - every committed writer increment survives (a lost doom would let a
///    stale writer publish over a newer value).
TEST(RaceStress, LockFreeReadRegistrationVsWriterDooming) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.seed = 23;
  HtmRuntime rt(cfg);

  constexpr unsigned kShared = 4;
  alignas(64) static std::uint64_t shared_lines[kShared][8];
  for (auto& l : shared_lines) l[0] = 0;
  constexpr unsigned kChurn = 4096;  // distinct lines: forces entry retags
  auto* churn = phtm::tm::TmHeap::instance().alloc_array<std::uint64_t>(kChurn * 8);

  constexpr unsigned kThreads = 4;  // thread 0 writes, the rest read
  std::uint64_t writer_commits = 0;
  run_threads(kThreads, [&](unsigned tid) {
    HtmRuntime::Thread th(rt);
    if (tid == 0) {
      std::uint64_t mine = 0;
      for (unsigned i = 0; i < stress_rounds(); ++i) {
        const HtmResult r = rt.attempt(th, [&](HtmOps& ops) {
          const std::uint64_t v = ops.read(&shared_lines[0][0]);
          for (unsigned k = 0; k < kShared; ++k)
            ops.write(&shared_lines[k][0], v + 1);
        });
        if (r.committed) ++mine;
      }
      writer_commits = mine;
    } else {
      for (unsigned i = 0; i < stress_rounds(); ++i) {
        std::uint64_t snap[kShared];
        const HtmResult r = rt.attempt(th, [&](HtmOps& ops) {
          ops.subscribe(&churn[((i * (2 * tid + 1)) % kChurn) * 8]);
          for (unsigned k = 0; k < kShared; ++k)
            snap[k] = ops.read(&shared_lines[k][0]);
        });
        if (r.committed) {
          for (unsigned k = 1; k < kShared; ++k)
            EXPECT_EQ(snap[k], snap[0])
                << "committed reader saw a torn multi-line write (round "
                << i << ")";
        }
      }
    }
  });

  for (unsigned k = 0; k < kShared; ++k)
    EXPECT_EQ(rt.nontx_load(&shared_lines[k][0]), writer_commits)
        << "a committed writer increment was lost on line " << k;
}

/// A telemetry drainer polling StatSheet::snapshot() while the owning
/// thread records: snapshot values must be monotonic (each count is a value
/// the writer actually stored — no torn or out-of-thin-air reads), and the
/// final sheet must hold exactly what the writer recorded. Under the tsan
/// preset this is the regression test for the snapshot/bump atomic
/// discipline (plain `++` here was a data race the mid-run telemetry
/// reader could tear).
TEST(RaceStress, StatSheetSnapshotVsLiveRecording) {
  phtm::StatSheet sheet;
  std::atomic<bool> done{false};
  const unsigned rounds = stress_rounds();

  run_threads(2, [&](unsigned tid) {
    if (tid == 0) {
      for (unsigned i = 0; i < rounds; ++i) {
        sheet.record_commit(phtm::CommitPath::kSoftware);
        sheet.record_abort(phtm::AbortCause::kConflict);
        sheet.add_validation();
      }
      done.store(true, std::memory_order_release);
    } else {
      std::uint64_t last_commits = 0, last_aborts = 0;
      while (!done.load(std::memory_order_acquire)) {
        const phtm::StatSheet s = sheet.snapshot();
        const auto commits = s.total_commits();
        const auto aborts = s.total_aborts();
        EXPECT_GE(commits, last_commits) << "snapshot went backwards";
        EXPECT_GE(aborts, last_aborts) << "snapshot went backwards";
        EXPECT_LE(commits, rounds);
        EXPECT_LE(aborts, rounds);
        last_commits = commits;
        last_aborts = aborts;
      }
    }
  });

  const phtm::StatSheet final_s = sheet.snapshot();
  EXPECT_EQ(final_s.total_commits(), rounds);
  EXPECT_EQ(final_s.total_aborts(), rounds);
  EXPECT_EQ(final_s.validations, rounds);
}

/// 16-thread hammer on the sharded commit pipeline (DESIGN.md, "Sharded
/// commit pipeline"): writers increment counter pairs living in *different*
/// shards, so every software commit runs the cross-shard protocol —
/// reserve a timestamp in both shard rings, validate every shard, fill
/// both slots. Readers sum all four per-shard counters in one transaction.
/// Invariants:
///  - conservation: every committed increment survives (a lost update means
///    two cross-shard commits serialized differently in different shards);
///  - cross-shard atomicity: each commit adds exactly +1 to two counters,
///    so every consistent snapshot's total is even — an odd sum means a
///    reader validated shard A before and shard B after a commit that
///    spanned both without being sent back.
TEST(RaceStress, ShardedCrossShardCommitsStaySerializable) {
  using phtm::core::ShardedRing;
  static_assert(ShardedRing::kShards == 4,
                "test maps one counter per commit-pipeline shard");
  static constexpr unsigned kShards = ShardedRing::kShards;

  // One counter line per shard, probed out of a heap pool (the Bloom hash
  // decides the shard of a line).
  auto* pool = phtm::tm::TmHeap::instance().alloc_array<std::uint64_t>(64 * 8);
  std::uint64_t* counter[kShards] = {};
  for (unsigned i = 0; i < 64; ++i) {
    const unsigned s = Signature::shard_of(&pool[i * 8]);
    if (counter[s] == nullptr) counter[s] = &pool[i * 8];
  }
  for (unsigned s = 0; s < kShards; ++s) {
    ASSERT_NE(counter[s], nullptr) << "no pool line hashed into shard " << s;
    *counter[s] = 0;
  }

  struct Env {
    std::uint64_t* const* counter;
  };
  struct Locals {
    unsigned a, b;       // incrementer: the two shards to bump
    std::uint64_t sum;   // reader: snapshot total
  };
  Env env{counter};

  // no-fast keeps every commit on the partitioned (software) path, where
  // the cross-shard reservation/validation protocol lives.
  phtm::test::BackendHarness h(phtm::tm::Algo::kPartHtmNoFast);
  constexpr unsigned kThreads = 16;
  constexpr unsigned kWriters = 12;
  const unsigned rounds = stress_rounds() / 20;
  std::vector<std::uint64_t> commits(kThreads, 0);
  std::atomic<bool> torn{false};
  h.run(kThreads, [&](unsigned tid, phtm::tm::Worker& w) {
    Locals l{};
    if (tid < kWriters) {
      for (unsigned i = 0; i < rounds; ++i) {
        l.a = (tid + i) % kShards;
        l.b = (tid + i + 1) % kShards;  // always a *different* shard
        phtm::tm::Txn t = phtm::test::make_txn(
            +[](phtm::tm::Ctx& c, const void* e, void* lp, unsigned) {
              const auto* cs = static_cast<const Env*>(e)->counter;
              const auto* loc = static_cast<Locals*>(lp);
              c.write(cs[loc->a], c.read(cs[loc->a]) + 1);
              c.write(cs[loc->b], c.read(cs[loc->b]) + 1);
              return false;
            },
            &env, &l, sizeof(l));
        h.backend().execute(w, t);
        commits[tid] += 1;
      }
    } else {
      for (unsigned i = 0; i < rounds; ++i) {
        phtm::tm::Txn t = phtm::test::make_txn(
            +[](phtm::tm::Ctx& c, const void* e, void* lp, unsigned) {
              const auto* cs = static_cast<const Env*>(e)->counter;
              std::uint64_t sum = 0;
              for (unsigned s = 0; s < kShards; ++s) sum += c.read(cs[s]);
              static_cast<Locals*>(lp)->sum = sum;
              return false;
            },
            &env, &l, sizeof(l));
        h.backend().execute(w, t);
        if (l.sum % 2 != 0) torn.store(true, std::memory_order_relaxed);
      }
    }
  });

  EXPECT_FALSE(torn.load())
      << "a reader observed an odd counter total: a cross-shard commit was "
         "visible in one shard but not the other";
  std::uint64_t expected = 0;
  for (const auto c : commits) expected += 2 * c;
  std::uint64_t total = 0;
  for (unsigned s = 0; s < kShards; ++s)
    total += h.runtime().nontx_load(counter[s]);
  EXPECT_EQ(total, expected) << "a committed cross-shard increment was lost";
}

/// Validators must detect intersecting publications: with every writer
/// publishing the same signature word a validator subscribed to, kOk may
/// only be returned for an empty window.
TEST(RaceStress, RingValidationCatchesConflicts) {
  HtmConfig cfg = HtmConfig::testing();
  HtmRuntime rt(cfg);
  GlobalRing ring(64);

  Signature shared;
  shared.add(&ring);  // arbitrary address; all parties use the same one

  constexpr unsigned kThreads = 3;
  run_threads(kThreads, [&](unsigned tid) {
    if (tid == 0) {
      for (unsigned i = 0; i < stress_rounds(); ++i) {
        const std::uint64_t ts = ring.reserve(rt);
        ring.fill_slot(rt, ts, shared);
      }
    } else {
      std::uint64_t start = rt.nontx_load(ring.timestamp_addr());
      for (unsigned i = 0; i < stress_rounds(); ++i) {
        const std::uint64_t before = start;
        const ValResult v = ring.validate(rt, start, shared);
        if (v == ValResult::kOk) {
          EXPECT_EQ(start, before)
              << "validate() advanced past a window containing a "
                 "conflicting publication without reporting it";
        } else {
          start = rt.nontx_load(ring.timestamp_addr());
        }
      }
    }
  });
}

}  // namespace
