// Crash-seed matrix over the backend's kCrashPoint seams: for a sweep of
// fault-plan periods, freeze the persistence domain at a different point
// in the durable commit protocol, take the seeded crash, recover, and
// require (a) durable opacity of the recovered state against the freeze
// round's history, (b) the per-cell conservation ledger, and (c) recovery
// idempotence under a re-crash. Replay any failure with
// PHTM_CHAOS_SEED=<seed> (banner printed by chaos_seed()).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "persist_common.hpp"

namespace phtm::test {
namespace {

sim::HtmConfig crash_cfg(std::uint64_t period) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.faults.seed = chaos_seed();
  cfg.faults.add({sim::FaultSite::kCrashPoint, sim::FaultKind::kCrash,
                  /*thread_mask=*/~0ull, period});
  return cfg;
}

/// Per-cell increment counts for a round's transactions: each transaction
/// adds exactly one to cell tid%kCells and one to cell (tid+1+round)%kCells
/// — but the round index is already folded into RoundResult::txns' ops, so
/// count from the recorded ops instead of re-deriving the shape.
std::vector<std::uint64_t> cell_incs(const PersistHarness& h,
                                     const std::vector<mc::CommittedTx>& txns,
                                     const std::vector<unsigned>* only) {
  std::vector<std::uint64_t> inc(PersistHarness::kCells, 0);
  for (unsigned i = 0; i < txns.size(); ++i) {
    if (only != nullptr) {
      bool in = false;
      for (unsigned m : *only) in = in || m == i;
      if (!in) continue;
    }
    for (const auto& op : txns[i].ops) {
      if (!op.is_write) continue;
      for (unsigned c = 0; c < PersistHarness::kCells; ++c)
        if (op.addr == const_cast<PersistHarness&>(h).cell(c)) ++inc[c];
    }
  }
  return inc;
}

void run_matrix_point(std::uint64_t period, core::PartHtmBackend::Mode mode) {
  SCOPED_TRACE(::testing::Message()
               << "period=" << period << " seed=" << chaos_seed() << " mode="
               << (mode == core::PartHtmBackend::Mode::kOpaque ? "opaque"
                                                               : "serializable"));
  PersistHarness h(crash_cfg(period), /*threads=*/4, mode);
  const auto r = h.run_until_frozen(/*max_rounds=*/30);
  ASSERT_TRUE(r.froze) << "fault plan never fired at kCrashPoint";

  // Take the crash the freeze captured, then recover.
  h.domain().crash(chaos_seed() + period);
  StatSheet sheet;
  const persist::RecoveryReport rep = h.backend().recover_durable(&sheet);
  ASSERT_TRUE(rep.complete);
  EXPECT_EQ(sheet.recoveries, 1u);
  EXPECT_EQ(h.stats().crashes, 1u);

  // (a) Durable opacity: recovered cells explainable by a subset of the
  // freeze round's committed transactions that includes every confirmed
  // one, applied to the pre-round snapshot.
  const mc::DurableVerdict v = h.check_round(r, rep);
  EXPECT_TRUE(v.ok) << v.diagnosis;

  // (b) Conservation ledger: for every cell,
  //     pre + confirmed_incs <= recovered <= pre + executed_incs.
  // Confirmed transactions were durably committed before the crash
  // instant; rollback can only shed unconfirmed increments, never more.
  const auto lo = cell_incs(h, r.txns, &r.confirmed);
  const auto hi = cell_incs(h, r.txns, nullptr);
  for (unsigned c = 0; c < PersistHarness::kCells; ++c) {
    const std::uint64_t pre = r.pre[c].second;
    const std::uint64_t now = *h.cell(c);
    EXPECT_GE(now, pre + lo[c]) << "cell " << c << " lost a confirmed commit";
    EXPECT_LE(now, pre + hi[c]) << "cell " << c << " over-counts";
  }

  // (c) Idempotence: crash again immediately after recovery (nothing
  // running) and recover — the state must not move.
  std::vector<std::uint64_t> before;
  for (unsigned c = 0; c < PersistHarness::kCells; ++c)
    before.push_back(*h.cell(c));
  h.domain().crash(chaos_seed() + period + 1);
  const persist::RecoveryReport rep2 = h.backend().recover_durable();
  EXPECT_TRUE(rep2.complete);
  EXPECT_TRUE(rep2.rolled_back.empty())
      << "second recovery replayed undo again: recovery is not idempotent";
  for (unsigned c = 0; c < PersistHarness::kCells; ++c)
    EXPECT_EQ(*h.cell(c), before[c]) << "cell " << c << " moved on re-recovery";
}

TEST(RecoveryCrashMatrix, EverySeamPeriodRecoversConsistently) {
  for (std::uint64_t period : {1ull, 2ull, 3ull, 5ull, 7ull, 13ull})
    run_matrix_point(period, core::PartHtmBackend::Mode::kSerializable);
}

TEST(RecoveryCrashMatrix, OpaqueModeSeams) {
  // Opaque mode uses per-address encounter locks and the re-write
  // re-staging path; exercise a couple of matrix points there too.
  for (std::uint64_t period : {2ull, 5ull})
    run_matrix_point(period, core::PartHtmBackend::Mode::kOpaque);
}

TEST(RecoveryCrashMatrix, SurvivorsAccumulateAcrossRounds) {
  // No faults: several clean rounds, then an explicit freeze+crash at a
  // round boundary. Everything executed is confirmed, so recovery must
  // keep every increment — the strongest form of the ledger.
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  PersistHarness h(cfg, /*threads=*/4);
  PersistHarness::RoundResult last;
  std::vector<std::uint64_t> expect(PersistHarness::kCells, 0);
  for (unsigned round = 0; round < 3; ++round) {
    last = h.run_round(round);
    ASSERT_FALSE(last.froze);
    ASSERT_EQ(last.confirmed.size(), 4u);
    const auto inc = cell_incs(h, last.txns, nullptr);
    for (unsigned c = 0; c < PersistHarness::kCells; ++c) expect[c] += inc[c];
  }
  h.domain().freeze();
  h.domain().crash(chaos_seed());
  const persist::RecoveryReport rep = h.backend().recover_durable();
  ASSERT_TRUE(rep.complete);
  EXPECT_TRUE(rep.rolled_back.empty());
  for (unsigned c = 0; c < PersistHarness::kCells; ++c)
    EXPECT_EQ(*h.cell(c), expect[c]) << "cell " << c;
  const mc::DurableVerdict v = h.check_round(last, rep);
  EXPECT_TRUE(v.ok) << v.diagnosis;
}

}  // namespace
}  // namespace phtm::test
