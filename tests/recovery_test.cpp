// Deterministic write-ahead-log and recovery scenarios (core/durable.hpp)
// driven directly against a PersistDomain + DurableLog: torn commit
// records, unresolved-transaction rollback, double undo replay, and
// re-crash in the middle of recovery (idempotence).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/durable.hpp"
#include "sim/config.hpp"
#include "sim/persist.hpp"

namespace phtm::test {
namespace {

using persist::DurableLog;
using persist::PersistDomain;
using persist::RecordKind;
using persist::RecoveryReport;

sim::PersistConfig fast_cfg() {
  sim::PersistConfig c;
  c.flush_latency_ticks = 1;
  c.fence_cost_ticks = 2;
  c.flush_queue_depth = 64;
  return c;
}

/// One correctly WAL-ordered single-word transaction against dom/log:
/// x: old -> val. Stops after `upto` protocol steps (0..5) so tests can
/// crash at every window. Returns the transaction's seq.
std::uint64_t wal_txn(PersistDomain& dom, DurableLog& log, std::uint64_t* x,
                      std::uint64_t val, unsigned upto = 5) {
  const std::uint64_t seq = log.alloc_seq();
  core::UndoLog::Entry e{x, *x};
  *x = val;                                                // step 0: write
  if (upto < 1) return seq;
  log.append_undo_chunk(dom, nullptr, seq, &e, 1);         // step 1: chunk
  if (upto < 2) return seq;
  dom.pfence();                                            // step 2: fence
  if (upto < 3) return seq;
  dom.pwb(x);                                              // step 3: data
  if (upto < 4) return seq;
  dom.pfence();                                            // step 4: fence
  if (upto < 5) return seq;
  log.append_outcome(dom, nullptr, RecordKind::kCommit, seq, nullptr);
  dom.pfence();                                            // step 5: record
  return seq;
}

TEST(Recovery, CommittedTransactionSurvivesCleanCrash) {
  PersistDomain dom(fast_cfg());
  DurableLog log(64);
  std::uint64_t x = 5;
  dom.format(&x, 5);
  const std::uint64_t seq = wal_txn(dom, log, &x, 6);
  dom.crash(/*seed=*/1);  // nothing pending: the fence drained everything
  x = 0xdead;             // volatile state is garbage after a crash
  const RecoveryReport rep = persist::recover(dom, log);
  EXPECT_TRUE(rep.complete);
  ASSERT_EQ(rep.committed.size(), 1u);
  EXPECT_EQ(rep.committed[0], seq);
  EXPECT_TRUE(rep.rolled_back.empty());
  EXPECT_EQ(rep.torn_cells, 0u);
  EXPECT_EQ(x, 6u);               // volatile restored from durable
  EXPECT_EQ(dom.durable(&x), 6u);
}

TEST(Recovery, UnresolvedTransactionRollsBackAndAppendsAbort) {
  PersistDomain dom(fast_cfg());
  DurableLog log(64);
  std::uint64_t x = 5;
  dom.format(&x, 5);
  const std::uint64_t seq =
      wal_txn(dom, log, &x, 6, /*upto=*/4);  // data durable, no record
  dom.crash(1);
  const RecoveryReport rep = persist::recover(dom, log);
  EXPECT_TRUE(rep.complete);
  ASSERT_EQ(rep.rolled_back.size(), 1u);
  EXPECT_EQ(rep.rolled_back[0], seq);
  EXPECT_EQ(x, 5u);
  EXPECT_EQ(dom.durable(&x), 5u);
  // The rollback is durable: a second recovery finds an Abort record and
  // replays nothing (idempotence).
  dom.crash(2);
  const RecoveryReport rep2 = persist::recover(dom, log);
  EXPECT_TRUE(rep2.complete);
  EXPECT_TRUE(rep2.rolled_back.empty());
  ASSERT_EQ(rep2.aborted.size(), 1u);
  EXPECT_EQ(rep2.aborted[0], seq);
  EXPECT_EQ(x, 5u);
}

TEST(Recovery, TornCommitRecordMeansRollback) {
  PersistDomain dom(fast_cfg());
  DurableLog log(64);
  std::uint64_t x = 5;
  dom.format(&x, 5);
  const std::uint64_t seq = wal_txn(dom, log, &x, 6, /*upto=*/4);
  log.append_outcome(dom, nullptr, RecordKind::kCommit, seq, nullptr);
  // No fence after the record: its 34 cell words are pending. Crash with
  // the checksum word lost — a torn record, which must read as ABSENT.
  const std::uint64_t* drop = &log.cell(1)[DurableLog::kCellWords - 1];
  dom.crash_keep([drop](const std::uint64_t* a) { return a != drop; });
  const RecoveryReport rep = persist::recover(dom, log);
  EXPECT_TRUE(rep.complete);
  EXPECT_EQ(rep.torn_cells, 1u);
  ASSERT_EQ(rep.rolled_back.size(), 1u);
  EXPECT_EQ(rep.rolled_back[0], seq);
  EXPECT_EQ(x, 5u) << "a torn commit record must not commit the data";
}

TEST(Recovery, TornRecordThatFullyPersistedCommits) {
  PersistDomain dom(fast_cfg());
  DurableLog log(64);
  std::uint64_t x = 5;
  dom.format(&x, 5);
  (void)wal_txn(dom, log, &x, 6, /*upto=*/4);
  log.append_outcome(dom, nullptr, RecordKind::kCommit, log.alloc_seq() - 1,
                     nullptr);
  dom.crash_keep([](const std::uint64_t*) { return true; });  // all made it
  const RecoveryReport rep = persist::recover(dom, log);
  EXPECT_EQ(rep.committed.size(), 1u);
  EXPECT_EQ(x, 6u);
}

TEST(Recovery, DoubleUndoReplayIsIdempotent) {
  // Re-crash in the middle of recovery: the first pass restores a prefix
  // of the undo pairs (step budget), the crash tears its write-backs, and
  // the second pass replays everything again — same final state.
  PersistDomain dom(fast_cfg());
  DurableLog log(64);
  std::uint64_t w[3] = {10, 20, 30};
  for (auto& v : w) dom.format(&v, v);
  const std::uint64_t seq = log.alloc_seq();
  core::UndoLog::Entry es[3] = {{&w[0], 10}, {&w[1], 20}, {&w[2], 30}};
  w[0] = 11;
  w[1] = 21;
  w[2] = 31;
  log.append_undo_chunk(dom, nullptr, seq, es, 3);
  dom.pfence();
  for (auto& v : w) dom.pwb(&v);
  dom.pfence();  // data durable, no outcome record: unresolved
  dom.crash(1);

  // First recovery pass: budget of 2 steps — restores two pairs, then
  // "crashes" again before the Abort record could be written.
  const RecoveryReport rep1 = persist::recover(dom, log, nullptr,
                                               /*max_steps=*/2);
  EXPECT_FALSE(rep1.complete);
  EXPECT_TRUE(rep1.rolled_back.empty());
  dom.crash(99);  // tear the partial pass's write-backs arbitrarily

  const RecoveryReport rep2 = persist::recover(dom, log);
  EXPECT_TRUE(rep2.complete);
  ASSERT_EQ(rep2.rolled_back.size(), 1u);
  EXPECT_EQ(rep2.rolled_back[0], seq);
  EXPECT_EQ(w[0], 10u);
  EXPECT_EQ(w[1], 20u);
  EXPECT_EQ(w[2], 30u);
  for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(dom.durable(&w[i]), es[i].old_val);

  // Third pass (nothing to do): state unchanged, transaction resolved.
  dom.crash(123);
  const RecoveryReport rep3 = persist::recover(dom, log);
  EXPECT_TRUE(rep3.complete);
  EXPECT_TRUE(rep3.rolled_back.empty());
  ASSERT_EQ(rep3.aborted.size(), 1u);
  EXPECT_EQ(w[0], 10u);
  EXPECT_EQ(w[1], 20u);
  EXPECT_EQ(w[2], 30u);
}

TEST(Recovery, MultiChunkRollbackRestoresOldestValueLast) {
  // Same word re-written across two chunks (two "segments"): replay must
  // go newest chunk first so the oldest displaced value lands last.
  PersistDomain dom(fast_cfg());
  DurableLog log(64);
  std::uint64_t x = 1;
  dom.format(&x, 1);
  const std::uint64_t seq = log.alloc_seq();
  core::UndoLog::Entry e1{&x, 1};
  x = 2;
  log.append_undo_chunk(dom, nullptr, seq, &e1, 1);
  dom.pfence();
  dom.pwb(&x);
  core::UndoLog::Entry e2{&x, 2};  // second segment displaces our own 2
  x = 3;
  log.append_undo_chunk(dom, nullptr, seq, &e2, 1);
  dom.pfence();
  dom.pwb(&x);
  dom.pfence();
  dom.crash(7);
  const RecoveryReport rep = persist::recover(dom, log);
  EXPECT_TRUE(rep.complete);
  ASSERT_EQ(rep.rolled_back.size(), 1u);
  EXPECT_EQ(x, 1u) << "reverse replay must restore the pre-transaction value";
}

TEST(Recovery, TornUndoChunkImpliesItsDataNeverPersisted) {
  // WAL ordering argument: a chunk is fenced before its data words are
  // even pwb'd, so a crash that tears the chunk finds the data still old.
  // Recovery must treat the torn chunk as absent and the state is already
  // consistent.
  PersistDomain dom(fast_cfg());
  DurableLog log(64);
  std::uint64_t x = 5;
  dom.format(&x, 5);
  const std::uint64_t seq = log.alloc_seq();
  core::UndoLog::Entry e{&x, 5};
  x = 6;
  log.append_undo_chunk(dom, nullptr, seq, &e, 1);
  // Crash BEFORE the chunk fence: cell words pending, data never pwb'd.
  const std::uint64_t* keep_not = &log.cell(0)[0];  // lose the head word
  dom.crash_keep([keep_not](const std::uint64_t* a) { return a != keep_not; });
  const RecoveryReport rep = persist::recover(dom, log);
  EXPECT_TRUE(rep.complete);
  EXPECT_EQ(rep.torn_cells, 1u);
  EXPECT_TRUE(rep.rolled_back.empty());
  EXPECT_EQ(x, 5u);
  EXPECT_EQ(dom.durable(&x), 5u);
}

TEST(Recovery, CursorAndSeqResumeAfterSurvivingCells) {
  PersistDomain dom(fast_cfg());
  DurableLog log(64);
  std::uint64_t x = 5;
  dom.format(&x, 5);
  (void)wal_txn(dom, log, &x, 6);  // cells 0 (chunk) + 1 (commit), seq 1
  dom.crash(3);
  const RecoveryReport rep = persist::recover(dom, log);
  EXPECT_EQ(rep.next_cell, 2u);
  EXPECT_EQ(rep.next_seq, 2u);
  // A post-recovery transaction appends past the survivors with a fresh
  // seq; a second recovery sees both transactions.
  const std::uint64_t seq2 = wal_txn(dom, log, &x, 7);
  EXPECT_EQ(seq2, 2u);
  dom.crash(4);
  const RecoveryReport rep2 = persist::recover(dom, log);
  EXPECT_EQ(rep2.committed.size(), 2u);
  EXPECT_EQ(x, 7u);
}

TEST(Recovery, LogFullThrows) {
  PersistDomain dom(fast_cfg());
  DurableLog log(1);
  std::uint64_t x = 1;
  core::UndoLog::Entry e{&x, 1};
  log.append_undo_chunk(dom, nullptr, 1, &e, 1);
  EXPECT_THROW(log.append_outcome(dom, nullptr, RecordKind::kCommit, 1, nullptr),
               std::runtime_error);
}

}  // namespace
}  // namespace phtm::test
