// Serializability property tests (paper Sec. 6.1).
//
// Rather than checking data-structure invariants only at quiescence, these
// tests extract per-transaction observations and verify that a valid serial
// order exists:
//
//  - TicketOrder: every transaction atomically reads-and-increments a
//    ticket; serializability implies the multiset of observed tickets is
//    exactly {0..N-1} with no duplicates (catches lost updates *and* stale
//    snapshots).
//  - RotatingPermutation: writers rotate a permutation stored in K cells;
//    any committed read snapshot must be one of the rotations (catches torn
//    multi-location updates).
//
// Instantiated over every backend.
#include "test_common.hpp"

#include <algorithm>
#include <mutex>

namespace phtm::test {
namespace {

using tm::Ctx;

class Serializability : public testing::TestWithParam<tm::Algo> {};

TEST_P(Serializability, TicketOrderIsADenseUniqueSequence) {
  BackendHarness h(GetParam());
  auto* ticket = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);

  constexpr unsigned kThreads = 6;
  constexpr unsigned kPer = 400;
  std::vector<std::uint64_t> seen[kThreads];

  struct Env {
    std::uint64_t* ticket;
  } env{ticket};
  struct L {
    std::uint64_t got;
  };

  h.run(kThreads, [&](unsigned tid, tm::Worker& w) {
    L l{};
    for (unsigned i = 0; i < kPer; ++i) {
      tm::Txn t = make_txn(
          +[](Ctx& c, const void* e, void* lp, unsigned) {
            auto* tk = static_cast<const Env*>(e)->ticket;
            const std::uint64_t v = c.read(tk);
            c.write(tk, v + 1);
            static_cast<L*>(lp)->got = v;
            return false;
          },
          &env, &l, sizeof(l));
      h.backend().execute(w, t);
      seen[tid].push_back(l.got);
    }
  });

  std::vector<std::uint64_t> all;
  for (auto& v : seen) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), std::size_t{kThreads} * kPer);
  for (std::size_t i = 0; i < all.size(); ++i)
    ASSERT_EQ(all[i], i) << "duplicate or skipped ticket (lost update / stale read)";
  EXPECT_EQ(*ticket, std::uint64_t{kThreads} * kPer);
}

TEST_P(Serializability, SnapshotsAreAlwaysSomeRotation) {
  BackendHarness h(GetParam());
  constexpr unsigned kCells = 16;  // spread across segments below
  auto* cells = tm::TmHeap::instance().alloc_array<std::uint64_t>(kCells * 8);
  for (unsigned i = 0; i < kCells; ++i) cells[i * 8] = i;  // identity rotation

  struct Env {
    std::uint64_t* cells;
  } env{cells};
  struct L {
    std::uint64_t snap[kCells];
    std::uint64_t first;
  };

  constexpr unsigned kThreads = 6;
  constexpr unsigned kPer = 250;
  std::atomic<std::uint64_t> bad_snapshots{0};

  h.run(kThreads, [&](unsigned tid, tm::Worker& w) {
    L l{};
    for (unsigned i = 0; i < kPer; ++i) {
      if (tid % 2 == 0) {
        // Writer: rotate the permutation by one, split over two segments so
        // PART-HTM runs it as two sub-HTM transactions.
        tm::Txn t = make_txn(
            +[](Ctx& c, const void* e, void* lp, unsigned seg) {
              auto* cl = static_cast<const Env*>(e)->cells;
              auto& loc = *static_cast<L*>(lp);
              if (seg == 0) {
                loc.first = c.read(cl);
                for (unsigned k = 0; k < kCells / 2; ++k)
                  c.write(cl + k * 8, c.read(cl + (k + 1) % kCells * 8));
                return true;
              }
              for (unsigned k = kCells / 2; k < kCells - 1; ++k)
                c.write(cl + k * 8, c.read(cl + (k + 1) * 8));
              c.write(cl + (kCells - 1) * 8, loc.first);
              return false;
            },
            &env, &l, sizeof(l));
        h.backend().execute(w, t);
      } else {
        // Reader: snapshot all cells (two segments as well).
        tm::Txn t = make_txn(
            +[](Ctx& c, const void* e, void* lp, unsigned seg) {
              auto* cl = static_cast<const Env*>(e)->cells;
              auto& loc = *static_cast<L*>(lp);
              const unsigned lo = seg == 0 ? 0 : kCells / 2;
              const unsigned hi = seg == 0 ? kCells / 2 : kCells;
              for (unsigned k = lo; k < hi; ++k) loc.snap[k] = c.read(cl + k * 8);
              return seg == 0;
            },
            &env, &l, sizeof(l));
        h.backend().execute(w, t);
        // Validity: the snapshot must be a rotation of 0..kCells-1.
        const std::uint64_t shift = l.snap[0];
        bool ok = shift < kCells;
        for (unsigned k = 0; ok && k < kCells; ++k)
          ok = l.snap[k] == (shift + k) % kCells;
        if (!ok) bad_snapshots.fetch_add(1);
      }
    }
  });

  EXPECT_EQ(bad_snapshots.load(), 0u);
  // Final state is still a rotation.
  const std::uint64_t shift = cells[0];
  ASSERT_LT(shift, kCells);
  for (unsigned k = 0; k < kCells; ++k)
    EXPECT_EQ(cells[k * 8], (shift + k) % kCells);
}

// Write skew probe: serializable TMs must not allow the classic write-skew
// anomaly (each txn reads both cells, writes one; invariant x + y <= 1).
TEST_P(Serializability, NoWriteSkew) {
  BackendHarness h(GetParam());
  auto* mem = tm::TmHeap::instance().alloc_array<std::uint64_t>(16);
  std::uint64_t* x = mem;
  std::uint64_t* y = mem + 8;

  struct Env {
    std::uint64_t *x, *y;
  } env{x, y};
  struct L {
    std::uint64_t which;
  };

  constexpr unsigned kThreads = 4;
  constexpr unsigned kPer = 400;

  h.run(kThreads, [&](unsigned tid, tm::Worker& w) {
    L l{tid % 2};
    for (unsigned i = 0; i < kPer; ++i) {
      tm::Txn t = make_txn(
          +[](Ctx& c, const void* e, void* lp, unsigned) {
            const Env& en = *static_cast<const Env*>(e);
            auto& loc = *static_cast<L*>(lp);
            const std::uint64_t sum = c.read(en.x) + c.read(en.y);
            if (sum == 0) {
              // Claim one side only if the other is free.
              c.write(loc.which ? en.x : en.y, 1);
            } else {
              // Release whatever is held so the race keeps replaying.
              c.write(en.x, 0);
              c.write(en.y, 0);
            }
            return false;
          },
          &env, &l, sizeof(l));
      h.backend().execute(w, t);
      // Invariant check must itself be transactional: PART-HTM's eager
      // partitioned writes are (by design, Sec. 4 "Strong Atomicity")
      // visible to raw peeks before the global transaction commits.
      struct A {
        std::uint64_t sum;
      } a{};
      tm::Txn audit = make_txn(
          +[](Ctx& c, const void* e, void* lp, unsigned) {
            const Env& en = *static_cast<const Env*>(e);
            static_cast<A*>(lp)->sum = c.read(en.x) + c.read(en.y);
            return false;
          },
          &env, &a, sizeof(a));
      h.backend().execute(w, audit);
      ASSERT_LE(a.sum, 1u) << "write skew";
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, Serializability,
                         testing::ValuesIn(concurrent_algos()), algo_param_name);

}  // namespace
}  // namespace phtm::test
