// Unit tests for the serving layer's admission machinery: resource
// budgets, the bounded request queue, the overload state machine's
// hysteresis, and the StatSheet -> PolicySignals mapping it consumes.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/signals.hpp"
#include "server/admission.hpp"
#include "server/queue.hpp"

namespace phtm::server {
namespace {

TEST(Resource, BudgetExhaustion) {
  Resource r(2);
  EXPECT_TRUE(r.can_admit());
  r.inc();
  EXPECT_TRUE(r.can_admit());
  r.inc();
  EXPECT_FALSE(r.can_admit());  // at max: full
  EXPECT_EQ(r.count(), 2u);
  r.dec();
  EXPECT_TRUE(r.can_admit());   // release reopens the budget
  EXPECT_EQ(r.count(), 1u);
}

TEST(Resource, ZeroBudgetAdmitsNothing) {
  Resource r(0);
  EXPECT_FALSE(r.can_admit());
}

TEST(ResourceManager, ThreeIndependentBudgets) {
  ResourceLimits lim;
  lim.max_in_flight = 2;
  lim.max_pending = 1;
  lim.max_retries = 1;
  ResourceManager rm(lim);
  rm.in_flight().inc();
  rm.pending().inc();
  EXPECT_TRUE(rm.in_flight().can_admit());   // 1 of 2
  EXPECT_FALSE(rm.pending().can_admit());    // 1 of 1
  EXPECT_TRUE(rm.retries().can_admit());     // untouched
  EXPECT_EQ(rm.in_flight().max(), 2u);
  EXPECT_EQ(rm.pending().max(), 1u);
  EXPECT_EQ(rm.retries().max(), 1u);
}

TEST(BoundedQueue, PendingOverflowRejects) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: non-blocking rejection
  EXPECT_DOUBLE_EQ(q.fill(), 1.0);
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);  // FIFO
  EXPECT_TRUE(q.try_push(3));
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, CloseDrainsThenFails) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(7));
  ASSERT_TRUE(q.try_push(8));
  q.close();
  EXPECT_FALSE(q.try_push(9));  // closed: no new work
  int v = 0;
  EXPECT_TRUE(q.pop(v));   // accepted work still drains
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(q.pop(v));  // drained + closed: workers exit
}

TEST(BoundedQueue, CloseWakesBlockedPopper) {
  BoundedQueue<int> q(1);
  std::thread t([&] {
    int v = 0;
    EXPECT_FALSE(q.pop(v));  // blocks until close, then fails
  });
  q.close();
  t.join();
}

// --- Overload state machine -------------------------------------------

core::PolicySignals calm_signals() { return {}; }  // all-zero rates

core::PolicySignals capacity_storm() {
  core::PolicySignals s;
  s.commits = 100;
  s.capacity_flap = 2.0;  // two capacity aborts per commit
  return s;
}

core::PolicySignals glock_storm() {
  core::PolicySignals s;
  s.commits = 100;
  s.glock_convoy = 0.8;  // most commits routed through the global lock
  return s;
}

TEST(OverloadController, StartsNormal) {
  OverloadController c;
  EXPECT_EQ(c.state(), OverloadState::kNormal);
}

TEST(OverloadController, DegradeEvidenceEscalatesImmediately) {
  OverloadController c;
  EXPECT_EQ(c.update(capacity_storm(), 0.0), OverloadState::kDegraded);
}

TEST(OverloadController, ShedEvidenceEscalatesImmediately) {
  OverloadController c;
  // Straight from normal to shedding: a glock convoy (or a filling
  // queue) cannot wait for an intermediate degrade poll.
  EXPECT_EQ(c.update(glock_storm(), 0.0), OverloadState::kShedding);
  OverloadController c2;
  EXPECT_EQ(c2.update(calm_signals(), 0.95), OverloadState::kShedding);
}

TEST(OverloadController, DeescalationNeedsCoolPollsAndStepsOneState) {
  OverloadConfig cfg;
  cfg.cool_polls = 3;
  OverloadController c(cfg);
  ASSERT_EQ(c.update(glock_storm(), 0.0), OverloadState::kShedding);
  // Two calm polls: not enough.
  EXPECT_EQ(c.update(calm_signals(), 0.0), OverloadState::kShedding);
  EXPECT_EQ(c.update(calm_signals(), 0.0), OverloadState::kShedding);
  // Third calm poll steps down exactly one state, never two.
  EXPECT_EQ(c.update(calm_signals(), 0.0), OverloadState::kDegraded);
  EXPECT_EQ(c.update(calm_signals(), 0.0), OverloadState::kDegraded);
  EXPECT_EQ(c.update(calm_signals(), 0.0), OverloadState::kDegraded);
  EXPECT_EQ(c.update(calm_signals(), 0.0), OverloadState::kNormal);
}

TEST(OverloadController, MixedEvidenceHoldsStateAndResetsStreak) {
  OverloadConfig cfg;
  cfg.cool_polls = 2;
  OverloadController c(cfg);
  ASSERT_EQ(c.update(glock_storm(), 0.0), OverloadState::kShedding);
  // Below the hi thresholds but above calm_frac x hi: hysteresis band.
  core::PolicySignals mid;
  mid.commits = 100;
  mid.glock_convoy = cfg.shed_convoy_hi * 0.7;
  EXPECT_EQ(c.update(calm_signals(), 0.0), OverloadState::kShedding);
  EXPECT_EQ(c.update(mid, 0.0), OverloadState::kShedding);  // streak reset
  EXPECT_EQ(c.update(calm_signals(), 0.0), OverloadState::kShedding);
  EXPECT_EQ(c.update(calm_signals(), 0.0), OverloadState::kDegraded);
}

TEST(OverloadController, DegradeEvidenceDoesNotDowngradeShedding) {
  OverloadController c;
  ASSERT_EQ(c.update(glock_storm(), 0.0), OverloadState::kShedding);
  // Capacity trouble while shedding is not a reason to re-admit load.
  EXPECT_EQ(c.update(capacity_storm(), 0.0), OverloadState::kShedding);
}

TEST(OverloadController, ForceStatePinsAndUpdateResumes) {
  OverloadController c;
  c.force_state(OverloadState::kShedding);
  EXPECT_EQ(c.state(), OverloadState::kShedding);
  // The machine keeps operating from the pinned state.
  EXPECT_EQ(c.update(glock_storm(), 0.0), OverloadState::kShedding);
}

// --- StatSheet -> PolicySignals ---------------------------------------

TEST(PolicySignals, FromDeltaNormalizesPerCommit) {
  StatSheet d{};
  d.commits[static_cast<unsigned>(CommitPath::kHtm)] = 60;
  d.commits[static_cast<unsigned>(CommitPath::kSoftware)] = 30;
  d.commits[static_cast<unsigned>(CommitPath::kGlobalLock)] = 10;
  d.aborts[static_cast<unsigned>(AbortCause::kCapacity)] = 200;
  d.fallbacks[static_cast<unsigned>(FallbackReason::kConflictExhaustion)] = 5;
  d.fallbacks[static_cast<unsigned>(FallbackReason::kStarvation)] = 5;
  d.fallbacks[static_cast<unsigned>(FallbackReason::kQuarantine)] = 10;
  const core::PolicySignals s = core::PolicySignals::from_delta(d);
  EXPECT_EQ(s.commits, 100u);
  EXPECT_DOUBLE_EQ(s.capacity_flap, 2.0);        // 200 / 100
  EXPECT_DOUBLE_EQ(s.glock_convoy, 0.2);         // (10 + 5 + 5) / 100
  EXPECT_DOUBLE_EQ(s.quarantine_pressure, 0.1);  // 10 / 100
}

TEST(PolicySignals, EmptyWindowYieldsNoEvidence) {
  StatSheet d{};
  d.aborts[static_cast<unsigned>(AbortCause::kCapacity)] = 50;  // no commits
  const core::PolicySignals s = core::PolicySignals::from_delta(d);
  EXPECT_EQ(s.commits, 0u);
  EXPECT_DOUBLE_EQ(s.capacity_flap, 0.0);
  EXPECT_DOUBLE_EQ(s.glock_convoy, 0.0);
  EXPECT_DOUBLE_EQ(s.quarantine_pressure, 0.0);
}

TEST(PolicySignals, StatDeltaClampsAtZero) {
  StatSheet a{}, b{};
  a.commits[static_cast<unsigned>(CommitPath::kHtm)] = 10;
  b.commits[static_cast<unsigned>(CommitPath::kHtm)] = 3;
  // A torn snapshot can transiently read lower than the previous poll.
  a.aborts[static_cast<unsigned>(AbortCause::kConflict)] = 1;
  b.aborts[static_cast<unsigned>(AbortCause::kConflict)] = 4;
  const StatSheet d = core::stat_delta(a, b);
  EXPECT_EQ(d.commits[static_cast<unsigned>(CommitPath::kHtm)], 7u);
  EXPECT_EQ(d.aborts[static_cast<unsigned>(AbortCause::kConflict)], 0u);
}

}  // namespace
}  // namespace phtm::server
