// Integration tests for the transaction server over a real PART-HTM
// backend on the simulated HTM runtime: multi-worker execution with the
// request-conservation invariant, bounded-queue admission under flood,
// deterministic shedding, and the degrade toggle's effect on path
// selection.
//
// Conservation (the serving layer's ledger):
//     submitted == accepted + rejected        (at submit time)
//     accepted  == committed + shed           (after stop())
#include <gtest/gtest.h>

#include <cstdint>

#include "server/server.hpp"
#include "sim/config.hpp"
#include "sim/runtime.hpp"
#include "tm/api.hpp"
#include "tm/backend.hpp"
#include "tm/heap.hpp"

namespace phtm::server {
namespace {

// Shared-counter increment: the smallest transaction with a real
// read-modify-write conflict between workers.
struct CounterEnv {
  std::uint64_t* cell;
};
struct CounterLocals {
  std::uint64_t tmp;
};

bool counter_step(tm::Ctx& c, const void* envp, void* lp, unsigned) {
  const CounterEnv& e = *static_cast<const CounterEnv*>(envp);
  CounterLocals& l = *static_cast<CounterLocals*>(lp);
  l.tmp = c.read(e.cell);
  c.write(e.cell, l.tmp + 1);
  return false;
}

// Controller config that can never move on its own: thresholds no real
// run reaches and a cool-down no test outlasts. The conflict-heavy
// counter transactions produce genuine glock-convoy evidence, so a live
// controller would escalate mid-test and break the deterministic
// ledgers; these tests drive state only through force_state().
OverloadConfig frozen_controller() {
  OverloadConfig c;
  c.degrade_capacity_hi = 1e18;
  c.degrade_quarantine_hi = 1e18;
  c.shed_convoy_hi = 1e18;
  c.shed_queue_hi = 1e18;
  c.cool_polls = 1u << 30;
  return c;
}

struct Fixture {
  sim::HtmRuntime rt{sim::HtmConfig::haswell4c8t()};
  std::unique_ptr<tm::Backend> backend =
      tm::make_backend(tm::Algo::kPartHtm, rt, {});
  std::uint64_t* cell = tm::TmHeap::instance().alloc_array<std::uint64_t>(1);
  CounterEnv env{cell};

  Fixture() { *cell = 0; }

  tm::Txn txn() {
    tm::Txn t;
    t.env = &env;
    // submit() copies these bytes into the request's inline buffer; the
    // worker never touches this instance.
    t.locals = &scratch;
    t.locals_bytes = sizeof(CounterLocals);
    t.step = &counter_step;
    return t;
  }

  CounterLocals scratch{};
};

TEST(ServerIntegration, MultiWorkerConservationAndEffect) {
  Fixture fx;
  ServerConfig cfg;
  cfg.overload = frozen_controller();
  cfg.workers = 4;
  cfg.queue_capacity = 64;
  cfg.limits.max_pending = 64;
  cfg.limits.max_in_flight = 64;
  TxnServer srv(*fx.backend, cfg);
  srv.start();

  constexpr std::uint64_t kTxns = 500;
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < kTxns; ++i) {
    // Retry a full queue rather than counting on draining speed: this
    // test is about execution, the flood test below is about rejection.
    while (srv.submit(fx.txn(), /*phase=*/0, /*scheduled_ns=*/0) !=
           AdmitResult::kAccepted) {
    }
    ++accepted;
  }
  srv.stop();  // drains: every accepted request executes

  const ServerTotals t = srv.counters();
  EXPECT_EQ(t.accepted, accepted);
  EXPECT_EQ(t.submitted, t.accepted + t.rejected());
  EXPECT_EQ(t.accepted, t.committed + t.shed);
  EXPECT_EQ(t.shed, 0u);  // never left normal state
  EXPECT_EQ(t.committed, kTxns);
  // The transactions really ran, exactly once each.
  EXPECT_EQ(*fx.cell, kTxns);
  // Per-phase ledger agrees with the aggregate one.
  const PhaseTotals p0 = srv.phase_totals(0);
  EXPECT_EQ(p0.accepted, kTxns);
  EXPECT_EQ(p0.committed, kTxns);
  EXPECT_EQ(p0.latency_ns.count(), kTxns);
}

TEST(ServerIntegration, FloodRejectsBeyondBudgetsQueueStaysBounded) {
  Fixture fx;
  ServerConfig cfg;
  cfg.overload = frozen_controller();
  cfg.workers = 2;
  cfg.queue_capacity = 4;
  cfg.limits.max_pending = 4;
  cfg.limits.max_in_flight = 8;
  TxnServer srv(*fx.backend, cfg);

  // Flood before start(): no worker drains, so the 20 submissions race
  // nothing and the outcome is deterministic — first 4 fill the pending
  // budget, the rest bounce.
  constexpr std::uint64_t kFlood = 20;
  std::uint64_t accepted = 0, rejected = 0;
  for (std::uint64_t i = 0; i < kFlood; ++i) {
    if (srv.submit(fx.txn(), 0, 0) == AdmitResult::kAccepted)
      ++accepted;
    else
      ++rejected;
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(rejected, kFlood - 4);
  EXPECT_LE(srv.queue_fill(), 1.0);  // bounded by construction

  srv.start();
  srv.stop();  // drain the four accepted requests

  const ServerTotals t = srv.counters();
  EXPECT_EQ(t.submitted, kFlood);
  EXPECT_EQ(t.submitted, t.accepted + t.rejected());
  EXPECT_EQ(t.accepted, t.committed + t.shed);
  EXPECT_EQ(t.committed, 4u);
  EXPECT_EQ(*fx.cell, 4u);
}

TEST(ServerIntegration, RetryBudgetCapsRetrySubmissions) {
  Fixture fx;
  ServerConfig cfg;
  cfg.overload = frozen_controller();
  cfg.workers = 1;
  cfg.limits.max_retries = 0;  // no retry budget at all
  TxnServer srv(*fx.backend, cfg);
  EXPECT_EQ(srv.submit(fx.txn(), 0, 0, /*is_retry=*/true),
            AdmitResult::kRejectedRetry);
  // Non-retry traffic is unaffected by the retry budget.
  EXPECT_EQ(srv.submit(fx.txn(), 0, 0), AdmitResult::kAccepted);
  srv.start();
  srv.stop();
  const ServerTotals t = srv.counters();
  EXPECT_EQ(t.rejected_retry, 1u);
  EXPECT_EQ(t.committed, 1u);
  EXPECT_EQ(t.submitted, t.accepted + t.rejected());
}

TEST(ServerIntegration, ForcedSheddingDropsStaleQueuedWork) {
  Fixture fx;
  ServerConfig cfg;
  cfg.overload = frozen_controller();
  cfg.workers = 2;
  cfg.queue_capacity = 16;
  cfg.limits.max_pending = 16;
  cfg.shed_delay_ns = 0;  // any queue delay is already too stale
  TxnServer srv(*fx.backend, cfg);

  // Queue a backlog while no worker runs, then flip to shedding before
  // start(): every queued request is past the (zero) shed bound when a
  // worker finally picks it up, so all of them shed deterministically.
  constexpr std::uint64_t kQueued = 8;
  for (std::uint64_t i = 0; i < kQueued; ++i)
    ASSERT_EQ(srv.submit(fx.txn(), 0, 0), AdmitResult::kAccepted);
  srv.force_state(OverloadState::kShedding);
  EXPECT_EQ(srv.state(), OverloadState::kShedding);

  // New arrivals are refused at admission while shedding (rejected, not
  // shed — the ledger distinguishes the two).
  EXPECT_EQ(srv.submit(fx.txn(), 0, 0), AdmitResult::kRejectedOverload);

  srv.start();
  srv.stop();

  const ServerTotals t = srv.counters();
  EXPECT_EQ(t.accepted, kQueued);
  EXPECT_EQ(t.shed, kQueued);
  EXPECT_EQ(t.committed, 0u);
  EXPECT_EQ(*fx.cell, 0u);  // nothing executed
  EXPECT_EQ(t.rejected_overload, 1u);
  EXPECT_EQ(t.submitted, t.accepted + t.rejected());
  // Exactly one transition into shedding was applied (1:1 with the
  // server/degrade trace event in instrumented builds).
  EXPECT_EQ(t.degrades[static_cast<unsigned>(OverloadState::kShedding)], 1u);
}

TEST(ServerIntegration, DegradedModeForcesSoftwarePaths) {
  Fixture fx;
  ServerConfig cfg;
  cfg.overload = frozen_controller();
  cfg.workers = 2;
  TxnServer srv(*fx.backend, cfg);
  srv.force_state(OverloadState::kDegraded);
  EXPECT_TRUE(fx.backend->degraded());  // toggle reached the backend
  srv.start();

  constexpr std::uint64_t kTxns = 200;
  for (std::uint64_t i = 0; i < kTxns; ++i)
    while (srv.submit(fx.txn(), 0, 0) != AdmitResult::kAccepted) {
    }
  srv.stop();

  EXPECT_EQ(*fx.cell, kTxns);
  // Degraded means no hardware fast path: every commit took the
  // partitioned (SW) or global-lock path.
  const StatSheet s = srv.backend_stats();
  EXPECT_EQ(s.commits[static_cast<unsigned>(CommitPath::kHtm)], 0u);
  EXPECT_EQ(s.total_commits(), kTxns);

  // And the flag clears on the way back to normal.
  srv.force_state(OverloadState::kNormal);
  EXPECT_FALSE(fx.backend->degraded());
}

}  // namespace
}  // namespace phtm::server
