// Unit and property tests for the Bloom signatures (paper Sec. 5.1).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <memory>

#include "sig/signature.hpp"
#include "util/rng.hpp"
#include "util/threads.hpp"

namespace phtm {
namespace {

TEST(Signature, LayoutIsFourCacheLinesPlusOccupancy) {
  // Four cache lines of filter (paper Sec. 5.1) plus one line holding the
  // word-occupancy mask that makes the sparse fast paths possible.
  EXPECT_EQ(sizeof(Signature), 320u);
  EXPECT_EQ(Signature::kBits, 2048u);
  EXPECT_EQ(Signature::kWords, 32u);
  auto sig = std::make_unique<Signature>();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(sig.get()) % 64, 0u);
}

TEST(Signature, NoFalseNegatives) {
  Signature s;
  alignas(64) std::uint64_t data[512];
  for (auto& d : data) s.add(&d);
  for (auto& d : data) EXPECT_TRUE(s.maybe_contains(&d));
}

TEST(Signature, EmptyAndClear) {
  Signature s;
  EXPECT_TRUE(s.empty());
  std::uint64_t x;
  s.add(&x);
  EXPECT_FALSE(s.empty());
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.popcount(), 0u);
}

TEST(Signature, LineGranularity) {
  // Two words of the same cache line map to the same bit: hardware detects
  // conflicts at line granularity, the signature must not be finer.
  alignas(64) std::uint64_t line[8];
  EXPECT_EQ(Signature::bit_of(&line[0]), Signature::bit_of(&line[7]));
}

TEST(Signature, IntersectionMatchesSharedAddresses) {
  Signature a, b, c;
  alignas(64) std::uint64_t blk[24];  // 3 distinct lines
  a.add(&blk[0]);
  b.add(&blk[8]);
  c.add(&blk[0]);
  EXPECT_FALSE(a.intersects(b));  // different lines, different bits (whp)
  EXPECT_TRUE(a.intersects(c));
}

TEST(Signature, UnionAndSubtract) {
  Signature a, b;
  alignas(64) std::uint64_t blk[16];
  a.add(&blk[0]);
  b.add(&blk[8]);
  Signature u = a;
  u.union_with(b);
  EXPECT_TRUE(u.maybe_contains(&blk[0]));
  EXPECT_TRUE(u.maybe_contains(&blk[8]));
  u.subtract(a);
  EXPECT_FALSE(u.maybe_contains(&blk[0]));
  EXPECT_TRUE(u.maybe_contains(&blk[8]));
}

TEST(Signature, AtomicOpsAreThreadSafe) {
  Signature shared;
  constexpr unsigned kThreads = 8;
  // Each thread ORs its own bit pattern in, then clears it; the final
  // signature must be empty and no intermediate op may corrupt others.
  run_threads(kThreads, [&](unsigned tid) {
    Signature mine;
    alignas(64) std::uint64_t dummy;
    (void)dummy;
    // Build a per-thread pattern that cannot alias across threads by
    // construction: all bits live in word `tid`.
    for (unsigned k = 0; k < 8; ++k) mine.set_bit(tid * 64 + k * 7);
    for (int round = 0; round < 1000; ++round) {
      shared.atomic_union_with(mine);
      shared.atomic_subtract(mine);
    }
  });
  EXPECT_TRUE(shared.atomic_snapshot().empty());
}

// Property: false-positive (aliasing) rate of the 2048-bit filter stays
// near the analytic Bloom bound for the footprints the paper's protocol
// carries (tens of lines per transaction).
TEST(SignatureProperty, FalsePositiveRateNearAnalytic) {
  Rng rng(99);
  const unsigned kInserted = 64;
  int fp = 0;
  const int kProbes = 20000;
  Signature s;
  for (unsigned i = 0; i < kInserted; ++i)
    s.add(reinterpret_cast<void*>(rng.next() << 6));
  for (int i = 0; i < kProbes; ++i)
    if (s.maybe_contains(reinterpret_cast<void*>((rng.next() | 0x8000000000ull) << 6)))
      ++fp;
  const double rate = static_cast<double>(fp) / kProbes;
  const double analytic = 1.0 - std::exp(-static_cast<double>(kInserted) / 2048.0);
  EXPECT_NEAR(rate, analytic, 0.02);
}

// Naive dense reference implementation: plain word array, no occupancy
// tracking, every operation a full-width loop. The sparse implementation
// must be observationally identical to it.
struct RefSig {
  std::uint64_t words[Signature::kWords]{};

  void add(const void* addr) {
    const unsigned b = Signature::bit_of(addr);
    words[b / 64] |= std::uint64_t{1} << (b % 64);
  }
  void set_bit(unsigned b) { words[b / 64] |= std::uint64_t{1} << (b % 64); }
  void clear() {
    for (auto& w : words) w = 0;
  }
  void union_with(const RefSig& o) {
    for (unsigned w = 0; w < Signature::kWords; ++w) words[w] |= o.words[w];
  }
  void subtract(const RefSig& o) {
    for (unsigned w = 0; w < Signature::kWords; ++w) words[w] &= ~o.words[w];
  }
  bool intersects(const RefSig& o) const {
    for (unsigned w = 0; w < Signature::kWords; ++w)
      if (words[w] & o.words[w]) return true;
    return false;
  }
  bool empty() const {
    for (const auto w : words)
      if (w != 0) return false;
    return true;
  }
  unsigned popcount() const {
    unsigned n = 0;
    for (const auto w : words) n += static_cast<unsigned>(std::popcount(w));
    return n;
  }
};

// Property: a long randomized stream of mixed operations drives the sparse
// signature and the dense reference in lockstep; after every operation the
// words must match and the occupancy mask must honor its contract — always
// sound (clear bit => zero word), and exact (set bit => nonzero word) until
// an atomic_subtract leaves it a superset (cleared again by clear()).
TEST(SignatureProperty, SparseMatchesDenseReferenceOverMixedOps) {
  Rng rng(20260806);
  constexpr int kOps = 1000000;
  constexpr int kSigs = 4;
  Signature sig[kSigs];
  RefSig ref[kSigs];
  bool exact[kSigs] = {true, true, true, true};

  auto addr = [&]() {
    // A modest pool of lines so signatures reach interesting densities.
    return reinterpret_cast<const void*>(((rng.next() % 4096) + 1) << 6);
  };
  auto check = [&](int i, int op) {
    const std::uint64_t occ = sig[i].occupancy();
    for (unsigned w = 0; w < Signature::kWords; ++w) {
      if (sig[i].words()[w] != ref[i].words[w]) {
        FAIL() << "word mismatch: op " << op << " sig " << i << " word " << w;
      }
      const bool occ_bit = ((occ >> w) & 1) != 0;
      if (!occ_bit && ref[i].words[w] != 0) {
        FAIL() << "occupancy unsound: op " << op << " sig " << i << " word " << w;
      }
      if (exact[i] && occ_bit && ref[i].words[w] == 0) {
        FAIL() << "occupancy not exact: op " << op << " sig " << i << " word " << w;
      }
    }
  };

  for (int op = 0; op < kOps; ++op) {
    const int i = static_cast<int>(rng.next() % kSigs);
    const int j = static_cast<int>(rng.next() % kSigs);
    switch (rng.next() % 10) {
      case 0: {
        const void* a = addr();
        sig[i].add(a);
        ref[i].add(a);
        break;
      }
      case 1: {
        const unsigned b = static_cast<unsigned>(rng.next() % Signature::kBits);
        sig[i].set_bit(b);
        ref[i].set_bit(b);
        break;
      }
      case 2:
        sig[i].clear();
        ref[i].clear();
        exact[i] = true;
        break;
      case 3:
        sig[i].union_with(sig[j]);
        ref[i].union_with(ref[j]);
        exact[i] = exact[i] && exact[j];
        break;
      case 4:
        if (i != j) {
          sig[i].subtract(sig[j]);
          ref[i].subtract(ref[j]);
        }
        break;
      case 5:
        ASSERT_EQ(sig[i].intersects(sig[j]), ref[i].intersects(ref[j]))
            << "op " << op;
        break;
      case 6:
        ASSERT_EQ(sig[i].empty(), ref[i].empty()) << "op " << op;
        ASSERT_EQ(sig[i].popcount(), ref[i].popcount()) << "op " << op;
        break;
      case 7: {
        const void* a = addr();
        const unsigned b = Signature::bit_of(a);
        const bool expect =
            (ref[i].words[b / 64] >> (b % 64)) & 1;
        ASSERT_EQ(sig[i].maybe_contains(a), expect) << "op " << op;
        break;
      }
      case 8: {
        // Single-threaded, so the atomic variants must agree with the
        // plain reference semantics; atomic_subtract leaves the occupancy
        // a (documented) superset.
        sig[i].atomic_union_with(sig[j]);
        ref[i].union_with(ref[j]);
        exact[i] = exact[i] && exact[j];
        break;
      }
      case 9:
        if (i != j) {
          sig[i].atomic_subtract(sig[j]);
          ref[i].subtract(ref[j]);
          exact[i] = false;
        }
        break;
    }
    check(i, op);
    if ((op & 0xffff) == 0) {
      // Snapshots recompute an exact mask regardless of superset state.
      const Signature snap = sig[i].atomic_snapshot();
      const std::uint64_t socc = snap.occupancy();
      for (unsigned w = 0; w < Signature::kWords; ++w) {
        ASSERT_EQ(snap.words()[w], ref[i].words[w]);
        ASSERT_EQ(((socc >> w) & 1) != 0, ref[i].words[w] != 0);
      }
    }
  }
}

// Ablation sizes compile and behave.
TEST(SignatureProperty, SmallerFiltersAliasMore) {
  Rng rng(5);
  auto rate_for = [&](auto sig, unsigned inserted) {
    for (unsigned i = 0; i < inserted; ++i)
      sig.add(reinterpret_cast<void*>(rng.next() << 6));
    int fp = 0;
    for (int i = 0; i < 5000; ++i)
      if (sig.maybe_contains(reinterpret_cast<void*>(rng.next() << 6))) ++fp;
    return fp / 5000.0;
  };
  const double r256 = rate_for(BloomSig<256>{}, 64);
  const double r4096 = rate_for(BloomSig<4096>{}, 64);
  EXPECT_GT(r256, r4096);
}

}  // namespace
}  // namespace phtm
