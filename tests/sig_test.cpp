// Unit and property tests for the Bloom signatures (paper Sec. 5.1).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sig/signature.hpp"
#include "util/rng.hpp"
#include "util/threads.hpp"

namespace phtm {
namespace {

TEST(Signature, LayoutIsFourCacheLines) {
  EXPECT_EQ(sizeof(Signature), 256u);
  EXPECT_EQ(Signature::kBits, 2048u);
  EXPECT_EQ(Signature::kWords, 32u);
  auto sig = std::make_unique<Signature>();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(sig.get()) % 64, 0u);
}

TEST(Signature, NoFalseNegatives) {
  Signature s;
  alignas(64) std::uint64_t data[512];
  for (auto& d : data) s.add(&d);
  for (auto& d : data) EXPECT_TRUE(s.maybe_contains(&d));
}

TEST(Signature, EmptyAndClear) {
  Signature s;
  EXPECT_TRUE(s.empty());
  std::uint64_t x;
  s.add(&x);
  EXPECT_FALSE(s.empty());
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.popcount(), 0u);
}

TEST(Signature, LineGranularity) {
  // Two words of the same cache line map to the same bit: hardware detects
  // conflicts at line granularity, the signature must not be finer.
  alignas(64) std::uint64_t line[8];
  EXPECT_EQ(Signature::bit_of(&line[0]), Signature::bit_of(&line[7]));
}

TEST(Signature, IntersectionMatchesSharedAddresses) {
  Signature a, b, c;
  alignas(64) std::uint64_t blk[24];  // 3 distinct lines
  a.add(&blk[0]);
  b.add(&blk[8]);
  c.add(&blk[0]);
  EXPECT_FALSE(a.intersects(b));  // different lines, different bits (whp)
  EXPECT_TRUE(a.intersects(c));
}

TEST(Signature, UnionAndSubtract) {
  Signature a, b;
  alignas(64) std::uint64_t blk[16];
  a.add(&blk[0]);
  b.add(&blk[8]);
  Signature u = a;
  u.union_with(b);
  EXPECT_TRUE(u.maybe_contains(&blk[0]));
  EXPECT_TRUE(u.maybe_contains(&blk[8]));
  u.subtract(a);
  EXPECT_FALSE(u.maybe_contains(&blk[0]));
  EXPECT_TRUE(u.maybe_contains(&blk[8]));
}

TEST(Signature, AtomicOpsAreThreadSafe) {
  Signature shared;
  constexpr unsigned kThreads = 8;
  // Each thread ORs its own bit pattern in, then clears it; the final
  // signature must be empty and no intermediate op may corrupt others.
  run_threads(kThreads, [&](unsigned tid) {
    Signature mine;
    alignas(64) std::uint64_t dummy;
    (void)dummy;
    // Build a per-thread pattern that cannot alias across threads by
    // construction: set bit (tid * 64 + k).
    for (unsigned k = 0; k < 8; ++k)
      mine.words()[tid] |= std::uint64_t{1} << (k * 7);
    for (int round = 0; round < 1000; ++round) {
      shared.atomic_union_with(mine);
      shared.atomic_subtract(mine);
    }
  });
  EXPECT_TRUE(shared.atomic_snapshot().empty());
}

// Property: false-positive (aliasing) rate of the 2048-bit filter stays
// near the analytic Bloom bound for the footprints the paper's protocol
// carries (tens of lines per transaction).
TEST(SignatureProperty, FalsePositiveRateNearAnalytic) {
  Rng rng(99);
  const unsigned kInserted = 64;
  int fp = 0;
  const int kProbes = 20000;
  Signature s;
  for (unsigned i = 0; i < kInserted; ++i)
    s.add(reinterpret_cast<void*>(rng.next() << 6));
  for (int i = 0; i < kProbes; ++i)
    if (s.maybe_contains(reinterpret_cast<void*>((rng.next() | 0x8000000000ull) << 6)))
      ++fp;
  const double rate = static_cast<double>(fp) / kProbes;
  const double analytic = 1.0 - std::exp(-static_cast<double>(kInserted) / 2048.0);
  EXPECT_NEAR(rate, analytic, 0.02);
}

// Ablation sizes compile and behave.
TEST(SignatureProperty, SmallerFiltersAliasMore) {
  Rng rng(5);
  auto rate_for = [&](auto sig, unsigned inserted) {
    for (unsigned i = 0; i < inserted; ++i)
      sig.add(reinterpret_cast<void*>(rng.next() << 6));
    int fp = 0;
    for (int i = 0; i < 5000; ++i)
      if (sig.maybe_contains(reinterpret_cast<void*>(rng.next() << 6))) ++fp;
    return fp / 5000.0;
  };
  const double r256 = rate_for(BloomSig<256>{}, 64);
  const double r4096 = rate_for(BloomSig<4096>{}, 64);
  EXPECT_GT(r256, r4096);
}

}  // namespace
}  // namespace phtm
