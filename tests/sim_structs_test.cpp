// Unit tests for the simulator's per-transaction containers (LineSet,
// WriteBuf, AssocModel) — in particular the O(1) epoch-based clear.
#include <gtest/gtest.h>

#include "sim/config.hpp"
#include "sim/lineset.hpp"
#include "sim/writebuf.hpp"
#include "util/rng.hpp"

namespace phtm::sim {
namespace {

TEST(LineSet, AddTracksFlagsAndCounts) {
  LineSet s;
  EXPECT_EQ(s.add(10, LineSet::kRead), 0);
  EXPECT_EQ(s.add(10, LineSet::kRead), LineSet::kRead);
  EXPECT_EQ(s.add(10, LineSet::kWrite), LineSet::kRead);
  EXPECT_EQ(s.flags_of(10), LineSet::kRead | LineSet::kWrite);
  EXPECT_EQ(s.flags_of(11), 0);
  EXPECT_EQ(s.distinct_lines(), 1u);
  EXPECT_EQ(s.read_lines(), 1u);
  EXPECT_EQ(s.write_lines(), 1u);
  s.add(11, LineSet::kWrite);
  EXPECT_EQ(s.write_lines(), 2u);
  EXPECT_EQ(s.read_lines(), 1u);
}

TEST(LineSet, ClearIsCompleteAndCheap) {
  LineSet s;
  for (std::uint64_t i = 0; i < 100; ++i) s.add(i, LineSet::kRead);
  s.clear();
  EXPECT_EQ(s.distinct_lines(), 0u);
  EXPECT_TRUE(s.touched().empty());
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(s.flags_of(i), 0);
  // Entries survive re-adding after clear (epoch discrimination).
  s.add(5, LineSet::kWrite);
  EXPECT_EQ(s.flags_of(5), LineSet::kWrite);
  EXPECT_EQ(s.write_lines(), 1u);
}

TEST(LineSet, GrowPreservesContents) {
  LineSet s(16);
  Rng rng(3);
  std::vector<std::uint64_t> lines;
  for (int i = 0; i < 5000; ++i) lines.push_back(rng.next());
  for (const auto l : lines) s.add(l, LineSet::kRead);
  for (const auto l : lines) EXPECT_NE(s.flags_of(l) & LineSet::kRead, 0);
}

TEST(LineSet, TouchedPreservesFirstTouchOrder) {
  LineSet s;
  s.add(30, LineSet::kRead);
  s.add(10, LineSet::kWrite);
  s.add(30, LineSet::kWrite);  // repeat must not duplicate
  s.add(20, LineSet::kRead);
  ASSERT_EQ(s.touched().size(), 3u);
  EXPECT_EQ(s.touched()[0], 30u);
  EXPECT_EQ(s.touched()[1], 10u);
  EXPECT_EQ(s.touched()[2], 20u);
}

TEST(LineSet, EpochWrapIsHandled) {
  LineSet s(16);
  // Force many epochs; far beyond a uint8 but cheap for uint32 sanity.
  for (int e = 0; e < 100000; ++e) {
    s.clear();
    s.add(static_cast<std::uint64_t>(e), LineSet::kRead);
    ASSERT_EQ(s.distinct_lines(), 1u);
  }
}

TEST(WriteBuf, PutGetLastWriteWins) {
  WriteBuf w;
  std::uint64_t a = 0, b = 0;
  w.put(&a, 1);
  w.put(&b, 2);
  w.put(&a, 3);
  std::uint64_t v;
  ASSERT_TRUE(w.get(&a, v));
  EXPECT_EQ(v, 3u);
  ASSERT_TRUE(w.get(&b, v));
  EXPECT_EQ(v, 2u);
  std::uint64_t c;
  EXPECT_FALSE(w.get(&c, v));
  EXPECT_EQ(w.size(), 2u);
}

TEST(WriteBuf, PublishWritesAllInFirstWriteOrder) {
  WriteBuf w;
  std::uint64_t cells[3] = {};
  w.put(&cells[2], 30);
  w.put(&cells[0], 10);
  w.put(&cells[2], 31);  // updated in place, keeps first-write position
  w.put(&cells[1], 20);
  ASSERT_EQ(w.cells().size(), 3u);
  EXPECT_EQ(w.cells()[0].addr, &cells[2]);
  EXPECT_EQ(w.cells()[0].val, 31u);
  w.publish();
  EXPECT_EQ(cells[0], 10u);
  EXPECT_EQ(cells[1], 20u);
  EXPECT_EQ(cells[2], 31u);
}

TEST(WriteBuf, ClearDropsEverything) {
  WriteBuf w;
  std::uint64_t a = 0;
  w.put(&a, 1);
  w.clear();
  std::uint64_t v;
  EXPECT_FALSE(w.get(&a, v));
  EXPECT_TRUE(w.empty());
  w.publish();
  EXPECT_EQ(a, 0u);
}

TEST(WriteBuf, GrowKeepsAllCells) {
  WriteBuf w(16);
  std::vector<std::uint64_t> mem(4000);
  for (std::size_t i = 0; i < mem.size(); ++i) w.put(&mem[i], i + 1);
  std::uint64_t v;
  for (std::size_t i = 0; i < mem.size(); ++i) {
    ASSERT_TRUE(w.get(&mem[i], v));
    EXPECT_EQ(v, i + 1);
  }
}

// Line ids that land in `set` under the model's hashed indexing.
std::vector<std::uint64_t> lines_in_set(unsigned sets, unsigned set,
                                        unsigned count) {
  std::vector<std::uint64_t> v;
  for (std::uint64_t line = 0; v.size() < count; ++line)
    if (phtm::hash_line(line) % sets == set) v.push_back(line);
  return v;
}

TEST(AssocModel, EvictsBeyondWays) {
  constexpr unsigned kSets = 4, kWays = 2;
  AssocModel m;
  m.configure(kSets, kWays);
  const auto same_set = lines_in_set(kSets, 0, kWays + 1);
  const auto other_set = lines_in_set(kSets, 1, 1);
  EXPECT_TRUE(m.add_written_line(same_set[0]));
  EXPECT_TRUE(m.add_written_line(same_set[1]));
  EXPECT_FALSE(m.add_written_line(same_set[2]));  // third way: eviction
  EXPECT_TRUE(m.add_written_line(other_set[0]));  // different set
  m.clear();
  EXPECT_TRUE(m.add_written_line(same_set[2]));
}

// The ways+1'th write into one modeled set aborts even when the line ids are
// a regular allocator stride: indexing hashes the line id first, so the
// colliding lines are found by their hash, not by `line % sets` arithmetic.
TEST(AssocModel, ModeledEvictionAtWaysPlusOneCollidingWrites) {
  constexpr unsigned kSets = 64, kWays = 8;
  AssocModel m;
  m.configure(kSets, kWays);
  const auto colliding = lines_in_set(kSets, 17, kWays + 1);
  for (unsigned i = 0; i < kWays; ++i)
    EXPECT_TRUE(m.add_written_line(colliding[i])) << "way " << i;
  EXPECT_FALSE(m.add_written_line(colliding[kWays]));
}

// Conversely, a power-of-two allocation stride no longer aliases the whole
// write set into one modeled set: under the old `line % sets` indexing every
// one of these writes hit set 0 and the transaction aborted at ways+1 lines
// regardless of the cache's true capacity.
TEST(AssocModel, HashedIndexingDecouplesStrideFromSets) {
  constexpr unsigned kSets = 64, kWays = 2;
  AssocModel m;
  m.configure(kSets, kWays);
  unsigned ok = 0;
  for (std::uint64_t i = 0; i < 16; ++i)
    ok += m.add_written_line(i * kSets) ? 1u : 0u;
  EXPECT_GT(ok, kWays);  // strided writes spread across sets
}

TEST(HtmConfigByName, ResolvesEveryKnownProfile) {
  EXPECT_TRUE(HtmConfig::by_name("haswell4c8t").hyperthread_pairs);
  EXPECT_FALSE(HtmConfig::by_name("xeon18c").hyperthread_pairs);
  EXPECT_EQ(HtmConfig::by_name("testing").random_other_per_access, 0.0);
}

TEST(HtmConfigByName, UnknownNameThrowsWithValidNames) {
  try {
    HtmConfig::by_name("haswe11");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("haswe11"), std::string::npos) << msg;
    for (const char* valid : {"haswell4c8t", "xeon18c", "testing"})
      EXPECT_NE(msg.find(valid), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace phtm::sim
