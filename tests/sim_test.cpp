// Unit tests for the best-effort HTM simulator: the abort taxonomy
// (conflict / capacity / explicit / other), speculation isolation, strong
// atomicity and the commit-latch protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/runtime.hpp"
#include "tm/heap.hpp"
#include "util/threads.hpp"

namespace phtm::sim {
namespace {

std::uint64_t* fresh_words(std::size_t n) {
  return tm::TmHeap::instance().alloc_array<std::uint64_t>(n);
}

TEST(Sim, HtSiblingMappingPairsLinuxStyleForAnyStride) {
  // xeon18c36t's stride (18, the core count) is not a power of two: the
  // mapping must still put core k's second hyperthread at slot k + 18
  // (an XOR-based pairing gets e.g. 2<->16 wrong and pairs slots 32-35
  // outside the 36 modeled contexts).
  const HtmConfig c = HtmConfig::xeon18c36t();
  ASSERT_EQ(c.ht_sibling_stride, 18u);
  for (unsigned k = 0; k < 18; ++k) {
    EXPECT_EQ(c.ht_sibling_of(k), k + 18);
    EXPECT_EQ(c.ht_sibling_of(k + 18), k);
  }
  // Any slot the runtime can hand out maps to a distinct partner, and the
  // pairing is an involution (slots past the modeled contexts tile the
  // same 2*stride-block pattern).
  for (unsigned s = 0; s < 64; ++s) {  // kMaxSlots
    const unsigned sib = c.ht_sibling_of(s);
    EXPECT_NE(sib, s);
    EXPECT_EQ(c.ht_sibling_of(sib), s) << "slot " << s;
  }
  // The power-of-two haswell profile keeps its established pairing.
  const HtmConfig h = HtmConfig::haswell4c8t();
  for (unsigned k = 0; k < 4; ++k) EXPECT_EQ(h.ht_sibling_of(k), k + 4);
}

TEST(Sim, CommitPublishesWrites) {
  HtmRuntime rt(HtmConfig::testing());
  HtmRuntime::Thread th(rt);
  auto* x = fresh_words(2);
  const auto r = rt.attempt(th, [&](HtmOps& ops) {
    ops.write(x, 7);
    ops.write(x + 1, ops.read(x) + 1);  // read own write
  });
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(x[0], 7u);
  EXPECT_EQ(x[1], 8u);
}

TEST(Sim, AbortDiscardsWrites) {
  HtmRuntime rt(HtmConfig::testing());
  HtmRuntime::Thread th(rt);
  auto* x = fresh_words(1);
  const auto r = rt.attempt(th, [&](HtmOps& ops) {
    ops.write(x, 99);
    ops.xabort(42);
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.abort.code, AbortCode::kExplicit);
  EXPECT_EQ(r.abort.xabort_code, 42u);
  EXPECT_EQ(*x, 0u) << "speculative write leaked";
}

TEST(Sim, SpeculativeWritesInvisibleToOtherThreads) {
  HtmRuntime rt(HtmConfig::testing());
  auto* x = fresh_words(1);
  std::atomic<int> phase{0};
  std::atomic<std::uint64_t> observed{~0ull};
  std::thread writer([&] {
    HtmRuntime::Thread th(rt);
    rt.attempt(th, [&](HtmOps& ops) {
      ops.write(x, 5);
      phase.store(1);
      while (phase.load() != 2) cpu_relax();  // hold the txn open
      ops.xabort(1);                          // never commit
    });
    phase.store(3);
  });
  while (phase.load() != 1) cpu_relax();
  observed = __atomic_load_n(x, __ATOMIC_ACQUIRE);  // raw peek, no doom
  phase.store(2);
  writer.join();
  EXPECT_EQ(observed.load(), 0u);
}

TEST(Sim, WriteCapacityAborts) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.write_lines_cap = 16;
  HtmRuntime rt(cfg);
  HtmRuntime::Thread th(rt);
  auto* arr = fresh_words(8 * 64);
  const auto r = rt.attempt(th, [&](HtmOps& ops) {
    for (unsigned i = 0; i < 32; ++i) ops.write(arr + i * 8, i);  // 32 lines
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.abort.code, AbortCode::kCapacity);
  for (unsigned i = 0; i < 32; ++i) EXPECT_EQ(arr[i * 8], 0u);
}

TEST(Sim, AssociativityEvictionAborts) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.assoc_sets = 4;
  cfg.assoc_ways = 2;
  cfg.write_lines_cap = 1024;  // total cap must not be the trigger
  HtmRuntime rt(cfg);
  HtmRuntime::Thread th(rt);
  auto* arr = fresh_words(8 * 64);
  // Three lines mapping to the same modeled set. Set indexing hashes the
  // line id, so collisions are found by hash rather than address stride.
  std::vector<std::uint64_t*> same_set;
  for (unsigned i = 0; i < 64 && same_set.size() < 3; ++i)
    if (phtm::hash_line(line_of(arr + i * 8)) % cfg.assoc_sets == 0)
      same_set.push_back(arr + i * 8);
  ASSERT_EQ(same_set.size(), 3u);
  const auto r = rt.attempt(th, [&](HtmOps& ops) {
    for (auto* p : same_set) ops.write(p, 1);
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.abort.code, AbortCode::kCapacity);
}

TEST(Sim, ReadCapacityScalesWithConcurrency) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.read_lines_cap = 256;
  cfg.scale_read_cap_with_conc = true;
  HtmRuntime rt(cfg);
  // Alone: 200 read lines fit (budget 256/1).
  {
    HtmRuntime::Thread th(rt);
    auto* arr = fresh_words(8 * 256);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      for (unsigned i = 0; i < 200; ++i) ops.read(arr + i * 8);
    });
    EXPECT_TRUE(r.committed);
  }
  // With a second transaction active the budget halves and 200 lines spill
  // (floor at 64 lines stays below 200).
  std::atomic<int> phase{0};
  std::thread occupant([&] {
    HtmRuntime::Thread th(rt);
    rt.attempt(th, [&](HtmOps& ops) {
      ops.read(fresh_words(1));
      phase.store(1);
      while (phase.load() != 2) cpu_relax();
    });
  });
  while (phase.load() != 1) cpu_relax();
  {
    HtmRuntime::Thread th(rt);
    auto* arr = fresh_words(8 * 256);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      for (unsigned i = 0; i < 200; ++i) ops.read(arr + i * 8);
    });
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.abort.code, AbortCode::kCapacity);
  }
  phase.store(2);
  occupant.join();
}

TEST(Sim, TickBudgetFiresTimerAbort) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.tick_budget = 100;
  HtmRuntime rt(cfg);
  HtmRuntime::Thread th(rt);
  const auto r = rt.attempt(th, [&](HtmOps& ops) { ops.work(200); });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.abort.code, AbortCode::kOther);
}

TEST(Sim, RandomInterruptsEventuallyFire) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.random_other_per_access = 0.05;
  HtmRuntime rt(cfg);
  HtmRuntime::Thread th(rt);
  auto* x = fresh_words(1);
  int aborts = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      for (int k = 0; k < 20; ++k) ops.read(x);
    });
    if (!r.committed) {
      EXPECT_EQ(r.abort.code, AbortCode::kOther);
      ++aborts;
    }
  }
  EXPECT_GT(aborts, 0);
  EXPECT_LT(aborts, 200);
}

TEST(Sim, RequesterWinsConflict) {
  HtmRuntime rt(HtmConfig::testing());
  auto* x = fresh_words(1);
  std::atomic<int> phase{0};
  AbortStatus victim_abort{};
  std::thread holder([&] {
    HtmRuntime::Thread th(rt);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      ops.read(x);
      phase.store(1);
      while (phase.load() != 2) cpu_relax();
      ops.read(x);  // doomed by the requester's write by now
    });
    EXPECT_FALSE(r.committed);
    victim_abort = r.abort;
    phase.store(3);
  });
  while (phase.load() != 1) cpu_relax();
  HtmRuntime::Thread th2(rt);
  const auto r2 = rt.attempt(th2, [&](HtmOps& ops) { ops.write(x, 1); });
  EXPECT_TRUE(r2.committed) << "requester should win";
  phase.store(2);
  holder.join();
  EXPECT_EQ(victim_abort.code, AbortCode::kConflict);
  EXPECT_EQ(victim_abort.conflict_line, line_of(x));
}

TEST(Sim, StrongAtomicityNontxStoreAbortsReader) {
  HtmRuntime rt(HtmConfig::testing());
  auto* x = fresh_words(1);
  std::atomic<int> phase{0};
  std::thread reader([&] {
    HtmRuntime::Thread th(rt);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      ops.read(x);
      phase.store(1);
      while (phase.load() != 2) cpu_relax();
      ops.read(x);
    });
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.abort.code, AbortCode::kConflict);
  });
  while (phase.load() != 1) cpu_relax();
  rt.nontx_store(x, 9);  // non-transactional write: strong atomicity
  phase.store(2);
  reader.join();
  EXPECT_EQ(*x, 9u);
}

TEST(Sim, NontxLoadDoomsWriterButNotReader) {
  HtmRuntime rt(HtmConfig::testing());
  auto* x = fresh_words(1);
  auto* y = fresh_words(1);
  std::atomic<int> phase{0};
  std::thread txn([&] {
    HtmRuntime::Thread th(rt);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      ops.read(y);      // reader of y: must survive a nontx load
      ops.write(x, 3);  // writer of x: must be doomed by a nontx load
      phase.store(1);
      while (phase.load() != 2) cpu_relax();
      ops.read(x);
    });
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.abort.code, AbortCode::kConflict);
  });
  while (phase.load() != 1) cpu_relax();
  EXPECT_EQ(rt.nontx_load(y), 0u);  // reading a read-set line dooms nobody...
  EXPECT_EQ(rt.nontx_load(x), 0u);  // ...reading a write-set line dooms the txn
  phase.store(2);
  txn.join();
}

TEST(Sim, SubscribeDetectsLaterWrites) {
  HtmRuntime rt(HtmConfig::testing());
  auto* x = fresh_words(1);
  std::atomic<int> phase{0};
  std::thread sub([&] {
    HtmRuntime::Thread th(rt);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      ops.subscribe(x);
      phase.store(1);
      while (phase.load() != 2) cpu_relax();
      ops.read(x);  // doom must be delivered here
    });
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.abort.code, AbortCode::kConflict);
    EXPECT_EQ(r.abort.conflict_line, line_of(x));
  });
  while (phase.load() != 1) cpu_relax();
  rt.nontx_store(x, 1);
  phase.store(2);
  sub.join();
}

TEST(Sim, ExplicitAbortCarriesUserCode) {
  HtmRuntime rt(HtmConfig::testing());
  HtmRuntime::Thread th(rt);
  const auto r = rt.attempt(th, [&](HtmOps& ops) { ops.xabort(123); });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.abort.code, AbortCode::kExplicit);
  EXPECT_EQ(r.abort.xabort_code, 123u);
}

TEST(Sim, CountersTrackBeginsAndCommits) {
  HtmRuntime rt(HtmConfig::testing());
  HtmRuntime::Thread th(rt);
  auto* x = fresh_words(1);
  const auto b0 = rt.total_begins();
  const auto c0 = rt.total_commits();
  rt.attempt(th, [&](HtmOps& ops) { ops.write(x, 1); });
  rt.attempt(th, [&](HtmOps& ops) {
    ops.read(x);
    ops.xabort(1);
  });
  EXPECT_EQ(rt.total_begins(), b0 + 2);
  EXPECT_EQ(rt.total_commits(), c0 + 1);
  EXPECT_EQ(rt.active_txns(), 0u);
}

/// Probe `pool` (pool_lines distinct heap cache lines) for `want` lines
/// that hash into one monitor bucket. Deterministic given the pool: with a
/// mean of pool_lines/4096 lines per bucket, some bucket always reaches
/// the small counts the reclamation tests need.
std::vector<std::uint64_t*> colliding_lines(std::uint64_t* pool,
                                            unsigned pool_lines,
                                            unsigned want) {
  std::unordered_map<unsigned, std::vector<std::uint64_t*>> per_bucket;
  for (unsigned i = 0; i < pool_lines; ++i) {
    auto& v = per_bucket[HtmRuntime::bucket_index(line_of(pool + i * 8))];
    v.push_back(pool + i * 8);
    if (v.size() == want) return v;
  }
  return {};
}

/// Epoch-based reclamation of monitor-table overflow chunks, deterministic
/// path: 9 lines colliding in one monitor bucket chain two overflow chunks
/// past the 4 inline head entries. (The lines share an L1 associativity set
/// too — bucket index and set index both reduce the same line hash — so the
/// transaction writes one line and *reads* the rest; read entries occupy
/// the chain all the same.) After the entries die, a one-line write
/// transaction's unregister runs the trailing trim with everything dead,
/// unlinking + retiring the whole suffix, which two grace-period advances
/// (mon_quiesce) then free. Re-claiming the same lines afterwards is the
/// ABA regression: the rebuilt chain must publish correctly even when the
/// allocator hands back the just-freed chunk memory.
TEST(Sim, MonitorChunkEpochReclamation) {
  HtmRuntime rt(HtmConfig::testing());
  HtmRuntime::Thread th(rt);
  constexpr unsigned kLines = 9;  // 4 inline + 4 + 1 => two overflow chunks
  auto* pool = fresh_words(40960 * 8);
  const std::vector<std::uint64_t*> lines = colliding_lines(pool, 40960, kLines);
  ASSERT_EQ(lines.size(), kLines) << "probe pool too small to collide";

  const auto alloc0 = rt.mon_chunks_allocated();
  const auto freed0 = rt.mon_chunks_freed();
  auto touch_all = [&](std::uint64_t v) {
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      ops.write(lines[0], v);
      for (unsigned i = 1; i < kLines; ++i) ops.read(lines[i]);
    });
    ASSERT_TRUE(r.committed);
  };
  auto drain = [&] {
    // One write in the hot bucket: its unregister's trim sees every entry
    // dead (no iteration-order dependence) and unlinks the whole suffix.
    const auto r =
        rt.attempt(th, [&](HtmOps& ops) { ops.write(lines[0], 0); });
    ASSERT_TRUE(r.committed);
    rt.mon_quiesce();
  };

  touch_all(1);
  const auto grown = rt.mon_chunks_allocated() - alloc0;
  EXPECT_GE(grown, 2u) << "9 colliding live lines must chain overflow chunks";
  drain();
  EXPECT_EQ(rt.mon_chunks_freed() - freed0, grown)
      << "a fully dead overflow chain survived trim + quiesce";

  // ABA half: same lines again, through (likely reused) chunk memory.
  touch_all(2);
  EXPECT_EQ(rt.nontx_load(lines[0]), 2u) << "re-claimed line lost its write";
  EXPECT_GE(rt.mon_chunks_allocated() - alloc0, 2 * grown)
      << "the freed chain must be rebuilt from fresh chunks, not revived";
  drain();
  EXPECT_EQ(rt.mon_chunks_freed() - freed0, rt.mon_chunks_allocated() - alloc0);
}

// Stress: concurrent increments through raw HTM attempts must not lose
// updates even under heavy doom/retry traffic (commit-latch correctness).
TEST(SimStress, NoLostUpdatesUnderContention) {
  HtmRuntime rt(HtmConfig::testing());
  auto* counter = fresh_words(1);
  constexpr unsigned kThreads = 8;
  constexpr unsigned kPer = 3000;
  run_threads(kThreads, [&](unsigned) {
    HtmRuntime::Thread th(rt);
    for (unsigned i = 0; i < kPer; ++i) {
      for (;;) {
        const auto r = rt.attempt(th, [&](HtmOps& ops) {
          ops.write(counter, ops.read(counter) + 1);
        });
        if (r.committed) break;
      }
    }
  });
  EXPECT_EQ(*counter, std::uint64_t{kThreads} * kPer);
}

// Stress: mixed transactional and non-transactional RMWs on one word.
TEST(SimStress, MixedTxAndNontxRmw) {
  HtmRuntime rt(HtmConfig::testing());
  auto* counter = fresh_words(1);
  constexpr unsigned kThreads = 6;
  constexpr unsigned kPer = 2000;
  run_threads(kThreads, [&](unsigned tid) {
    HtmRuntime::Thread th(rt);
    for (unsigned i = 0; i < kPer; ++i) {
      if (tid % 2 == 0) {
        rt.nontx_fetch_add(counter, 1);
      } else {
        for (;;) {
          const auto r = rt.attempt(th, [&](HtmOps& ops) {
            ops.write(counter, ops.read(counter) + 1);
          });
          if (r.committed) break;
        }
      }
    }
  });
  EXPECT_EQ(*counter, std::uint64_t{kThreads} * kPer);
}

// Stress: overflow-chunk reclamation racing registration. Every thread
// writes a rotating 6-line window of 12 lines that all collide into one
// monitor bucket, so the bucket's chain keeps growing past its inline
// entries, dying, getting trimmed and being rebuilt — concurrently with
// the other threads' epoch-pinned lock-free probes of the same chain.
// Conservation of the shared counter catches reclamation bugs directly: a
// chunk freed under a live reader (use-after-free of its entries) or an
// ABA'd entry (a stale claim surviving into a reused chunk) breaks the
// doom protocol and loses an update.
TEST(SimStress, MonitorReclamationChurnKeepsConservation) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.seed = 31;
  HtmRuntime rt(cfg);
  auto* counter = fresh_words(1);
  constexpr unsigned kCollide = 12;
  auto* pool = fresh_words(65536 * 8);
  const std::vector<std::uint64_t*> lines =
      colliding_lines(pool, 65536, kCollide);
  ASSERT_EQ(lines.size(), kCollide) << "probe pool too small to collide";

  constexpr unsigned kThreads = 8;
  constexpr unsigned kPer = 1500;
  std::vector<std::uint64_t> commits(kThreads, 0);
  run_threads(kThreads, [&](unsigned tid) {
    HtmRuntime::Thread th(rt);
    std::uint64_t mine = 0;
    for (unsigned i = 0; i < kPer; ++i) {
      const unsigned base = i * 5 + tid;  // rotate the window per round
      const auto r = rt.attempt(th, [&](HtmOps& ops) {
        const std::uint64_t v = ops.read(counter);
        for (unsigned k = 0; k < 6; ++k)
          ops.write(lines[(base + k) % kCollide], v);
        ops.write(counter, v + 1);
      });
      if (r.committed) ++mine;
    }
    commits[tid] = mine;
  });

  std::uint64_t expected = 0;
  for (const auto c : commits) expected += c;
  EXPECT_EQ(rt.nontx_load(counter), expected)
      << "an update was lost under chunk-reclamation churn";
  EXPECT_GT(rt.mon_chunks_allocated(), 0u)
      << "the hammer never grew a chain — it is not testing reclamation";

  // Deterministic drain: with the churn over every entry is dead, so one
  // single-line write transaction's unregister runs the hot bucket's trim
  // with no reader in flight and unlinks the whole overflow chain. After
  // the quiesce every chunk ever allocated must be freed.
  {
    HtmRuntime::Thread th(rt);
    const auto r =
        rt.attempt(th, [&](HtmOps& ops) { ops.write(lines[0], 0); });
    ASSERT_TRUE(r.committed);
  }
  rt.mon_quiesce();
  EXPECT_EQ(rt.mon_chunks_freed(), rt.mon_chunks_allocated());
}

}  // namespace
}  // namespace phtm::sim
