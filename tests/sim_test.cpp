// Unit tests for the best-effort HTM simulator: the abort taxonomy
// (conflict / capacity / explicit / other), speculation isolation, strong
// atomicity and the commit-latch protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/runtime.hpp"
#include "tm/heap.hpp"
#include "util/threads.hpp"

namespace phtm::sim {
namespace {

std::uint64_t* fresh_words(std::size_t n) {
  return tm::TmHeap::instance().alloc_array<std::uint64_t>(n);
}

TEST(Sim, CommitPublishesWrites) {
  HtmRuntime rt(HtmConfig::testing());
  HtmRuntime::Thread th(rt);
  auto* x = fresh_words(2);
  const auto r = rt.attempt(th, [&](HtmOps& ops) {
    ops.write(x, 7);
    ops.write(x + 1, ops.read(x) + 1);  // read own write
  });
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(x[0], 7u);
  EXPECT_EQ(x[1], 8u);
}

TEST(Sim, AbortDiscardsWrites) {
  HtmRuntime rt(HtmConfig::testing());
  HtmRuntime::Thread th(rt);
  auto* x = fresh_words(1);
  const auto r = rt.attempt(th, [&](HtmOps& ops) {
    ops.write(x, 99);
    ops.xabort(42);
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.abort.code, AbortCode::kExplicit);
  EXPECT_EQ(r.abort.xabort_code, 42u);
  EXPECT_EQ(*x, 0u) << "speculative write leaked";
}

TEST(Sim, SpeculativeWritesInvisibleToOtherThreads) {
  HtmRuntime rt(HtmConfig::testing());
  auto* x = fresh_words(1);
  std::atomic<int> phase{0};
  std::atomic<std::uint64_t> observed{~0ull};
  std::thread writer([&] {
    HtmRuntime::Thread th(rt);
    rt.attempt(th, [&](HtmOps& ops) {
      ops.write(x, 5);
      phase.store(1);
      while (phase.load() != 2) cpu_relax();  // hold the txn open
      ops.xabort(1);                          // never commit
    });
    phase.store(3);
  });
  while (phase.load() != 1) cpu_relax();
  observed = __atomic_load_n(x, __ATOMIC_ACQUIRE);  // raw peek, no doom
  phase.store(2);
  writer.join();
  EXPECT_EQ(observed.load(), 0u);
}

TEST(Sim, WriteCapacityAborts) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.write_lines_cap = 16;
  HtmRuntime rt(cfg);
  HtmRuntime::Thread th(rt);
  auto* arr = fresh_words(8 * 64);
  const auto r = rt.attempt(th, [&](HtmOps& ops) {
    for (unsigned i = 0; i < 32; ++i) ops.write(arr + i * 8, i);  // 32 lines
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.abort.code, AbortCode::kCapacity);
  for (unsigned i = 0; i < 32; ++i) EXPECT_EQ(arr[i * 8], 0u);
}

TEST(Sim, AssociativityEvictionAborts) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.assoc_sets = 4;
  cfg.assoc_ways = 2;
  cfg.write_lines_cap = 1024;  // total cap must not be the trigger
  HtmRuntime rt(cfg);
  HtmRuntime::Thread th(rt);
  auto* arr = fresh_words(8 * 64);
  // Three lines mapping to the same modeled set. Set indexing hashes the
  // line id, so collisions are found by hash rather than address stride.
  std::vector<std::uint64_t*> same_set;
  for (unsigned i = 0; i < 64 && same_set.size() < 3; ++i)
    if (phtm::hash_line(line_of(arr + i * 8)) % cfg.assoc_sets == 0)
      same_set.push_back(arr + i * 8);
  ASSERT_EQ(same_set.size(), 3u);
  const auto r = rt.attempt(th, [&](HtmOps& ops) {
    for (auto* p : same_set) ops.write(p, 1);
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.abort.code, AbortCode::kCapacity);
}

TEST(Sim, ReadCapacityScalesWithConcurrency) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.read_lines_cap = 256;
  cfg.scale_read_cap_with_conc = true;
  HtmRuntime rt(cfg);
  // Alone: 200 read lines fit (budget 256/1).
  {
    HtmRuntime::Thread th(rt);
    auto* arr = fresh_words(8 * 256);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      for (unsigned i = 0; i < 200; ++i) ops.read(arr + i * 8);
    });
    EXPECT_TRUE(r.committed);
  }
  // With a second transaction active the budget halves and 200 lines spill
  // (floor at 64 lines stays below 200).
  std::atomic<int> phase{0};
  std::thread occupant([&] {
    HtmRuntime::Thread th(rt);
    rt.attempt(th, [&](HtmOps& ops) {
      ops.read(fresh_words(1));
      phase.store(1);
      while (phase.load() != 2) cpu_relax();
    });
  });
  while (phase.load() != 1) cpu_relax();
  {
    HtmRuntime::Thread th(rt);
    auto* arr = fresh_words(8 * 256);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      for (unsigned i = 0; i < 200; ++i) ops.read(arr + i * 8);
    });
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.abort.code, AbortCode::kCapacity);
  }
  phase.store(2);
  occupant.join();
}

TEST(Sim, TickBudgetFiresTimerAbort) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.tick_budget = 100;
  HtmRuntime rt(cfg);
  HtmRuntime::Thread th(rt);
  const auto r = rt.attempt(th, [&](HtmOps& ops) { ops.work(200); });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.abort.code, AbortCode::kOther);
}

TEST(Sim, RandomInterruptsEventuallyFire) {
  HtmConfig cfg = HtmConfig::testing();
  cfg.random_other_per_access = 0.05;
  HtmRuntime rt(cfg);
  HtmRuntime::Thread th(rt);
  auto* x = fresh_words(1);
  int aborts = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      for (int k = 0; k < 20; ++k) ops.read(x);
    });
    if (!r.committed) {
      EXPECT_EQ(r.abort.code, AbortCode::kOther);
      ++aborts;
    }
  }
  EXPECT_GT(aborts, 0);
  EXPECT_LT(aborts, 200);
}

TEST(Sim, RequesterWinsConflict) {
  HtmRuntime rt(HtmConfig::testing());
  auto* x = fresh_words(1);
  std::atomic<int> phase{0};
  AbortStatus victim_abort{};
  std::thread holder([&] {
    HtmRuntime::Thread th(rt);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      ops.read(x);
      phase.store(1);
      while (phase.load() != 2) cpu_relax();
      ops.read(x);  // doomed by the requester's write by now
    });
    EXPECT_FALSE(r.committed);
    victim_abort = r.abort;
    phase.store(3);
  });
  while (phase.load() != 1) cpu_relax();
  HtmRuntime::Thread th2(rt);
  const auto r2 = rt.attempt(th2, [&](HtmOps& ops) { ops.write(x, 1); });
  EXPECT_TRUE(r2.committed) << "requester should win";
  phase.store(2);
  holder.join();
  EXPECT_EQ(victim_abort.code, AbortCode::kConflict);
  EXPECT_EQ(victim_abort.conflict_line, line_of(x));
}

TEST(Sim, StrongAtomicityNontxStoreAbortsReader) {
  HtmRuntime rt(HtmConfig::testing());
  auto* x = fresh_words(1);
  std::atomic<int> phase{0};
  std::thread reader([&] {
    HtmRuntime::Thread th(rt);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      ops.read(x);
      phase.store(1);
      while (phase.load() != 2) cpu_relax();
      ops.read(x);
    });
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.abort.code, AbortCode::kConflict);
  });
  while (phase.load() != 1) cpu_relax();
  rt.nontx_store(x, 9);  // non-transactional write: strong atomicity
  phase.store(2);
  reader.join();
  EXPECT_EQ(*x, 9u);
}

TEST(Sim, NontxLoadDoomsWriterButNotReader) {
  HtmRuntime rt(HtmConfig::testing());
  auto* x = fresh_words(1);
  auto* y = fresh_words(1);
  std::atomic<int> phase{0};
  std::thread txn([&] {
    HtmRuntime::Thread th(rt);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      ops.read(y);      // reader of y: must survive a nontx load
      ops.write(x, 3);  // writer of x: must be doomed by a nontx load
      phase.store(1);
      while (phase.load() != 2) cpu_relax();
      ops.read(x);
    });
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.abort.code, AbortCode::kConflict);
  });
  while (phase.load() != 1) cpu_relax();
  EXPECT_EQ(rt.nontx_load(y), 0u);  // reading a read-set line dooms nobody...
  EXPECT_EQ(rt.nontx_load(x), 0u);  // ...reading a write-set line dooms the txn
  phase.store(2);
  txn.join();
}

TEST(Sim, SubscribeDetectsLaterWrites) {
  HtmRuntime rt(HtmConfig::testing());
  auto* x = fresh_words(1);
  std::atomic<int> phase{0};
  std::thread sub([&] {
    HtmRuntime::Thread th(rt);
    const auto r = rt.attempt(th, [&](HtmOps& ops) {
      ops.subscribe(x);
      phase.store(1);
      while (phase.load() != 2) cpu_relax();
      ops.read(x);  // doom must be delivered here
    });
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.abort.code, AbortCode::kConflict);
    EXPECT_EQ(r.abort.conflict_line, line_of(x));
  });
  while (phase.load() != 1) cpu_relax();
  rt.nontx_store(x, 1);
  phase.store(2);
  sub.join();
}

TEST(Sim, ExplicitAbortCarriesUserCode) {
  HtmRuntime rt(HtmConfig::testing());
  HtmRuntime::Thread th(rt);
  const auto r = rt.attempt(th, [&](HtmOps& ops) { ops.xabort(123); });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.abort.code, AbortCode::kExplicit);
  EXPECT_EQ(r.abort.xabort_code, 123u);
}

TEST(Sim, CountersTrackBeginsAndCommits) {
  HtmRuntime rt(HtmConfig::testing());
  HtmRuntime::Thread th(rt);
  auto* x = fresh_words(1);
  const auto b0 = rt.total_begins();
  const auto c0 = rt.total_commits();
  rt.attempt(th, [&](HtmOps& ops) { ops.write(x, 1); });
  rt.attempt(th, [&](HtmOps& ops) {
    ops.read(x);
    ops.xabort(1);
  });
  EXPECT_EQ(rt.total_begins(), b0 + 2);
  EXPECT_EQ(rt.total_commits(), c0 + 1);
  EXPECT_EQ(rt.active_txns(), 0u);
}

// Stress: concurrent increments through raw HTM attempts must not lose
// updates even under heavy doom/retry traffic (commit-latch correctness).
TEST(SimStress, NoLostUpdatesUnderContention) {
  HtmRuntime rt(HtmConfig::testing());
  auto* counter = fresh_words(1);
  constexpr unsigned kThreads = 8;
  constexpr unsigned kPer = 3000;
  run_threads(kThreads, [&](unsigned) {
    HtmRuntime::Thread th(rt);
    for (unsigned i = 0; i < kPer; ++i) {
      for (;;) {
        const auto r = rt.attempt(th, [&](HtmOps& ops) {
          ops.write(counter, ops.read(counter) + 1);
        });
        if (r.committed) break;
      }
    }
  });
  EXPECT_EQ(*counter, std::uint64_t{kThreads} * kPer);
}

// Stress: mixed transactional and non-transactional RMWs on one word.
TEST(SimStress, MixedTxAndNontxRmw) {
  HtmRuntime rt(HtmConfig::testing());
  auto* counter = fresh_words(1);
  constexpr unsigned kThreads = 6;
  constexpr unsigned kPer = 2000;
  run_threads(kThreads, [&](unsigned tid) {
    HtmRuntime::Thread th(rt);
    for (unsigned i = 0; i < kPer; ++i) {
      if (tid % 2 == 0) {
        rt.nontx_fetch_add(counter, 1);
      } else {
        for (;;) {
          const auto r = rt.attempt(th, [&](HtmOps& ops) {
            ops.write(counter, ops.read(counter) + 1);
          });
          if (r.committed) break;
        }
      }
    }
  });
  EXPECT_EQ(*counter, std::uint64_t{kThreads} * kPer);
}

}  // namespace
}  // namespace phtm::sim
