// Skip-list application tests: structural invariants under concurrency on
// every backend, plus sequential-semantics agreement.
#include <gtest/gtest.h>

#include "apps/skiplist.hpp"
#include "test_common.hpp"

namespace phtm::test {
namespace {

class SkipList : public testing::TestWithParam<tm::Algo> {};

TEST_P(SkipList, StructureSurvivesConcurrentMutation) {
  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
  auto be = tm::make_backend(GetParam(), rt, {});
  apps::SkipListApp::Config cfg;
  cfg.initial_size = 400;
  apps::SkipListApp app(cfg);

  std::atomic<std::int64_t> net{0};
  run_threads(4, [&](unsigned tid) {
    auto w = be->make_worker(tid);
    apps::SkipListApp::NodePool pool;
    apps::SkipListApp::Locals l;
    std::int64_t mine = 0;
    for (int i = 0; i < 250; ++i) {
      tm::Txn t = app.make_txn(w->rng(), pool, l);
      be->execute(*w, t);
      if (l.op == apps::SkipListApp::kInsert && l.result) ++mine;
      if (l.op == apps::SkipListApp::kRemove && l.result) --mine;
      app.finish(l, pool);
    }
    net.fetch_add(mine);
  });

  EXPECT_TRUE(app.sorted_and_unique());
  EXPECT_TRUE(app.towers_consistent());
  EXPECT_EQ(app.size(), 400u + net.load());
}

TEST_P(SkipList, ContainsAgreesWithSequentialScan) {
  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
  auto be = tm::make_backend(GetParam(), rt, {});
  apps::SkipListApp::Config cfg;
  cfg.initial_size = 128;
  cfg.write_pct = 0;
  apps::SkipListApp app(cfg);
  auto w = be->make_worker(0);
  apps::SkipListApp::NodePool pool;
  apps::SkipListApp::Locals l;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    tm::Txn t = app.make_txn(rng, pool, l);
    be->execute(*w, t);
    EXPECT_EQ(l.result != 0, app.contains_seq(l.key)) << "key " << l.key;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SkipList,
                         testing::ValuesIn(concurrent_algos()), algo_param_name);

// Sequential unit checks of tower mechanics.
TEST(SkipListSeq, InsertRemoveRoundTrip) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  auto be = tm::make_backend(tm::Algo::kSeq, rt, {});
  apps::SkipListApp::Config cfg;
  cfg.initial_size = 0;
  cfg.key_space = 64;
  apps::SkipListApp app(cfg);
  auto w = be->make_worker(0);
  apps::SkipListApp::NodePool pool;
  apps::SkipListApp::Locals l;
  Rng rng(5);

  // Insert keys 1..40 (driving the op through the public txn path would be
  // random; use the pool/locals contract directly instead).
  unsigned inserted = 0;
  for (int round = 0; round < 2000 && inserted < 40; ++round) {
    tm::Txn t = app.make_txn(rng, pool, l);
    be->execute(*w, t);
    if (l.op == apps::SkipListApp::kInsert && l.result) ++inserted;
    if (l.op == apps::SkipListApp::kRemove && l.result) --inserted;
    app.finish(l, pool);
    ASSERT_TRUE(app.sorted_and_unique());
    ASSERT_TRUE(app.towers_consistent());
  }
  EXPECT_EQ(app.size(), inserted);
}

}  // namespace
}  // namespace phtm::test
