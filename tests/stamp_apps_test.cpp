// Integration tests: every STAMP-style application must complete and pass
// its own semantic verification on every backend, single- and
// multi-threaded. This exercises the full stack (apps -> TM API -> paths ->
// HTM simulator) under real workloads.
#include <gtest/gtest.h>

#include "apps/stamp/stamp.hpp"
#include "test_common.hpp"

namespace phtm::test {
namespace {

struct Case {
  std::string app;
  tm::Algo algo;
  unsigned threads;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  // Full backend matrix at 4 threads for the two poles of the workload
  // spectrum (short-conflicting vs resource-bound), plus every app on the
  // three most distinct backends.
  for (const auto algo : concurrent_algos()) {
    cases.push_back({"kmeans-high", algo, 4});
    cases.push_back({"labyrinth", algo, 4});
  }
  for (const auto& app : apps::stamp_app_names()) {
    cases.push_back({app, tm::Algo::kHtmGl, 4});
    cases.push_back({app, tm::Algo::kPartHtm, 4});
    cases.push_back({app, tm::Algo::kPartHtmO, 2});
    cases.push_back({app, tm::Algo::kNorec, 2});
  }
  // Drop duplicates from the two generators above.
  std::vector<Case> unique_cases;
  for (const auto& c : cases) {
    bool dup = false;
    for (const auto& u : unique_cases)
      if (u.app == c.app && u.algo == c.algo && u.threads == c.threads) dup = true;
    if (!dup) unique_cases.push_back(c);
  }
  return unique_cases;
}

std::string case_name(const testing::TestParamInfo<Case>& info) {
  std::string n = info.param.app + "_" + tm::to_string(info.param.algo) + "_t" +
                  std::to_string(info.param.threads);
  for (auto& c : n)
    if (c == '-') c = '_';
  return n;
}

class StampAppTest : public testing::TestWithParam<Case> {};

TEST_P(StampAppTest, RunsAndVerifies) {
  const Case& cs = GetParam();
  auto app = apps::make_stamp_app(cs.app);
  ASSERT_NE(app, nullptr);

  sim::HtmRuntime rt(sim::HtmConfig::haswell4c8t());
  auto backend = tm::make_backend(cs.algo, rt, {});
  app->init(cs.threads, /*seed=*/42);
  run_threads(cs.threads, [&](unsigned tid) {
    auto w = backend->make_worker(tid);
    app->run_thread(*backend, *w, tid, cs.threads);
  });
  EXPECT_TRUE(app->verify()) << cs.app << " on " << tm::to_string(cs.algo);
}

INSTANTIATE_TEST_SUITE_P(Apps, StampAppTest, testing::ValuesIn(make_cases()),
                         case_name);

// The sequential baseline must also pass every app's verification.
TEST(StampAppTest, SequentialBaselineVerifies) {
  for (const auto& name : apps::stamp_app_names()) {
    auto app = apps::make_stamp_app(name);
    sim::HtmRuntime rt(sim::HtmConfig::testing());
    auto backend = tm::make_backend(tm::Algo::kSeq, rt, {});
    app->init(1, 42);
    auto w = backend->make_worker(0);
    app->run_thread(*backend, *w, 0, 1);
    EXPECT_TRUE(app->verify()) << name << " (sequential)";
  }
}

}  // namespace
}  // namespace phtm::test
