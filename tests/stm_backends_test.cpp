// Backend-specific behavior of the baselines: NOrec's value-based
// validation, RingSTM's ring mechanics, NOrecRH's hybrid phases and
// HTM-GL's fallback policy.
#include <gtest/gtest.h>

#include "test_common.hpp"

namespace phtm::test {
namespace {

std::uint64_t* heap_words(std::size_t n) {
  return tm::TmHeap::instance().alloc_array<std::uint64_t>(n);
}

tm::Txn increment_txn(std::uint64_t* cell) {
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* e, void*, unsigned) {
    auto* p = static_cast<std::uint64_t*>(const_cast<void*>(e));
    c.write(p, c.read(p) + 1);
    return false;
  };
  t.env = cell;
  return t;
}

// --- HTM-GL ----------------------------------------------------------------

TEST(HtmGl, SmallTxnsCommitInHardware) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  auto be = tm::make_backend(tm::Algo::kHtmGl, rt, {});
  auto* x = heap_words(1);
  auto w = be->make_worker(0);
  for (int i = 0; i < 20; ++i) {
    auto t = increment_txn(x);
    be->execute(*w, t);
  }
  EXPECT_EQ(*x, 20u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kHtm)], 20u);
}

TEST(HtmGl, CapacityOverflowFallsBackToGlobalLockAfterRetries) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.write_lines_cap = 8;
  sim::HtmRuntime rt(cfg);
  tm::BackendConfig bcfg;
  bcfg.htm_retries = 5;
  auto be = tm::make_backend(tm::Algo::kHtmGl, rt, bcfg);
  auto* arr = heap_words(32 * 8);
  auto w = be->make_worker(0);
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* e, void*, unsigned) {
    auto* a = static_cast<std::uint64_t*>(const_cast<void*>(e));
    for (unsigned i = 0; i < 32; ++i) c.write(a + i * 8, 1);
    return false;
  };
  t.env = arr;
  be->execute(*w, t);
  for (unsigned i = 0; i < 32; ++i) EXPECT_EQ(arr[i * 8], 1u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kGlobalLock)], 1u);
  // The paper's configuration burns the full retry budget before falling
  // back (Sec. 7).
  EXPECT_EQ(w->stats().aborts[static_cast<unsigned>(AbortCause::kCapacity)], 5u);
}

TEST(HtmGl, IrrevocableGoesStraightToLock) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  auto be = tm::make_backend(tm::Algo::kHtmGl, rt, {});
  auto* x = heap_words(1);
  auto w = be->make_worker(0);
  auto t = increment_txn(x);
  t.irrevocable = true;
  be->execute(*w, t);
  EXPECT_EQ(w->stats().total_aborts(), 0u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kGlobalLock)], 1u);
}

// --- NOrec ------------------------------------------------------------------

TEST(Norec, ReadOnlyTransactionsCommitWithoutClockTraffic) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  auto be = tm::make_backend(tm::Algo::kNorec, rt, {});
  auto* x = heap_words(1);
  *x = 3;
  struct L {
    std::uint64_t seen;
  } l{};
  auto w = be->make_worker(0);
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* e, void* lp, unsigned) {
    static_cast<L*>(lp)->seen =
        c.read(static_cast<const std::uint64_t*>(e));
    return false;
  };
  t.env = x;
  t.locals = &l;
  t.locals_bytes = sizeof(l);
  be->execute(*w, t);
  EXPECT_EQ(l.seen, 3u);
  EXPECT_EQ(w->stats().total_aborts(), 0u);
}

TEST(Norec, WriterInvalidatesConcurrentReaderByValue) {
  // A reader stalls between its two reads; a writer changes both words; the
  // reader's value-based validation must abort and retry, and the retried
  // execution observes a consistent pair.
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  auto be = tm::make_backend(tm::Algo::kNorec, rt, {});
  auto* mem = heap_words(16);
  mem[0] = 1;
  mem[8] = 99;
  struct E {
    std::uint64_t* a;
    std::uint64_t* b;
    std::atomic<int>* phase;
  };
  std::atomic<int> phase{0};
  E env{mem, mem + 8, &phase};
  struct L {
    std::uint64_t va, vb;
  } l{};

  std::thread reader([&] {
    auto w = be->make_worker(0);
    tm::Txn t;
    t.step = +[](tm::Ctx& c, const void* ep, void* lp, unsigned) {
      const E& e = *static_cast<const E*>(ep);
      L& loc = *static_cast<L*>(lp);
      loc.va = c.read(e.a);
      if (e.phase->load() == 0) {
        e.phase->store(1);
        while (e.phase->load() != 2) cpu_relax();
      }
      loc.vb = c.read(e.b);
      return false;
    };
    t.env = &env;
    t.locals = &l;
    t.locals_bytes = sizeof(l);
    be->execute(*w, t);
  });
  while (phase.load() != 1) cpu_relax();
  {
    auto w2 = be->make_worker(1);
    tm::Txn t;
    t.step = +[](tm::Ctx& c, const void* ep, void*, unsigned) {
      const E& e = *static_cast<const E*>(ep);
      c.write(e.a, 2);
      c.write(e.b, 98);
      return false;
    };
    t.env = &env;
    be->execute(*w2, t);
  }
  phase.store(2);
  reader.join();
  EXPECT_EQ(l.va + l.vb, 100u) << "reader must observe a consistent snapshot";
  EXPECT_EQ(l.va, 2u) << "retry reads the post-writer values";
}

// --- RingSTM ----------------------------------------------------------------

TEST(RingStm, SmallRingRollsOverGracefully) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  tm::BackendConfig bcfg;
  bcfg.ring_entries = 4;
  auto be = tm::make_backend(tm::Algo::kRingStm, rt, bcfg);
  auto* arr = heap_words(64);
  constexpr unsigned kThreads = 4;
  run_threads(kThreads, [&](unsigned tid) {
    auto w = be->make_worker(tid);
    for (int i = 0; i < 500; ++i) {
      auto t = increment_txn(arr + (tid % 4) * 8);
      be->execute(*w, t);
    }
  });
  std::uint64_t total = 0;
  for (int i = 0; i < 4; ++i) total += arr[i * 8];
  EXPECT_EQ(total, kThreads * 500u);
}

// --- NOrecRH ----------------------------------------------------------------

TEST(NorecRh, HardwarePhaseCommitsSmallTxns) {
  sim::HtmRuntime rt(sim::HtmConfig::testing());
  auto be = tm::make_backend(tm::Algo::kNorecRh, rt, {});
  auto* x = heap_words(1);
  auto w = be->make_worker(0);
  for (int i = 0; i < 10; ++i) {
    auto t = increment_txn(x);
    be->execute(*w, t);
  }
  EXPECT_EQ(*x, 10u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kHtm)], 10u);
}

TEST(NorecRh, OversizedTxnsUseSoftwarePhaseWithReducedHardwareCommit) {
  sim::HtmConfig cfg = sim::HtmConfig::testing();
  cfg.write_lines_cap = 8;
  sim::HtmRuntime rt(cfg);
  auto be = tm::make_backend(tm::Algo::kNorecRh, rt, {});
  auto* arr = heap_words(32 * 8);
  auto w = be->make_worker(0);
  tm::Txn t;
  t.step = +[](tm::Ctx& c, const void* e, void*, unsigned) {
    auto* a = static_cast<std::uint64_t*>(const_cast<void*>(e));
    for (unsigned i = 0; i < 32; ++i) c.write(a + i * 8, 7);
    return false;
  };
  t.env = arr;
  be->execute(*w, t);
  for (unsigned i = 0; i < 32; ++i) EXPECT_EQ(arr[i * 8], 7u);
  EXPECT_EQ(w->stats().commits[static_cast<unsigned>(CommitPath::kSoftware)], 1u);
}

}  // namespace
}  // namespace phtm::test
