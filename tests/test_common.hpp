// Shared helpers for the test suites: fixtures that run transactions on a
// backend from many threads and the list of concurrent algorithms every
// cross-backend invariant suite is instantiated over.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/runtime.hpp"
#include "tm/api.hpp"
#include "tm/backend.hpp"
#include "tm/heap.hpp"
#include "util/threads.hpp"

namespace phtm::test {

/// Every concurrent algorithm (kSeq is only a baseline and single-threaded).
inline std::vector<tm::Algo> concurrent_algos() {
  return {tm::Algo::kHtmGl,   tm::Algo::kPartHtm, tm::Algo::kPartHtmO,
          tm::Algo::kPartHtmNoFast, tm::Algo::kRingStm, tm::Algo::kNorec,
          tm::Algo::kNorecRh, tm::Algo::kSpht};
}

inline std::string algo_param_name(const testing::TestParamInfo<tm::Algo>& info) {
  std::string n = tm::to_string(info.param);
  for (auto& c : n)
    if (c == '-') c = '_';
  return n;
}

/// Runs `per_thread(tid, worker)` on `threads` threads against one backend
/// built over a deterministic-config runtime; returns aggregated stats.
class BackendHarness {
 public:
  explicit BackendHarness(tm::Algo algo,
                          sim::HtmConfig cfg = sim::HtmConfig::testing(),
                          tm::BackendConfig bcfg = {})
      : rt_(cfg), backend_(tm::make_backend(algo, rt_, bcfg)) {}

  tm::Backend& backend() { return *backend_; }
  sim::HtmRuntime& runtime() { return rt_; }

  StatSummary run(unsigned threads,
                  const std::function<void(unsigned, tm::Worker&)>& per_thread) {
    std::vector<StatSheet> sheets(threads);
    run_threads(threads, [&](unsigned tid) {
      auto w = backend_->make_worker(tid);
      per_thread(tid, *w);
      sheets[tid] = w->stats();
    });
    return StatSummary::aggregate(sheets);
  }

 private:
  sim::HtmRuntime rt_;
  std::unique_ptr<tm::Backend> backend_;
};

/// Shorthand for a captureless-lambda step function.
using StepFn = bool (*)(tm::Ctx&, const void*, void*, unsigned);

inline tm::Txn make_txn(StepFn fn, const void* env, void* locals,
                        std::size_t locals_bytes) {
  tm::Txn t;
  t.step = fn;
  t.env = env;
  t.locals = locals;
  t.locals_bytes = locals_bytes;
  return t;
}

}  // namespace phtm::test
