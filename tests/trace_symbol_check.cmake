# Asserts that an untraced binary carries no tracer symbols: with
# PHTM_TRACE off the macros are no-ops, so nothing references src/obs and
# the linker must drop the phtm_obs archive members entirely. A match here
# means an instrumentation site leaked past the macro gate (or a plain
# library started calling the tracer unconditionally).
#
# Usage: cmake -DNM=<nm> -DBINARY=<file> -P trace_symbol_check.cmake
if(NOT EXISTS "${BINARY}")
  message(FATAL_ERROR "binary not found: ${BINARY}")
endif()

execute_process(COMMAND "${NM}" "${BINARY}"
                OUTPUT_VARIABLE symbols
                RESULT_VARIABLE rv
                ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "nm failed on ${BINARY}: ${err}")
endif()

# The phtm::obs namespace mangles as ...N4phtm3obs...; any hit means obs
# code was linked in.
string(REGEX MATCHALL "[^\n]*4phtm3obs[^\n]*" hits "${symbols}")
if(hits)
  list(LENGTH hits n)
  list(GET hits 0 first)
  message(FATAL_ERROR
          "untraced binary contains ${n} tracer symbol(s), e.g.: ${first}")
endif()
message(STATUS "no tracer symbols in ${BINARY}")
