# Driver for the TSan negative test: runs the deliberately racy fixture and
# PASSES only if ThreadSanitizer killed it (nonzero exit). A zero exit means
# the race went unreported — the annotation layer or sanitizer wiring is
# suppressing real findings.
if(NOT DEFINED FIXTURE)
  message(FATAL_ERROR "usage: cmake -DFIXTURE=<path> -P tsan_negative_check.cmake")
endif()

execute_process(COMMAND "${FIXTURE}"
                RESULT_VARIABLE fixture_rv
                OUTPUT_VARIABLE fixture_out
                ERROR_VARIABLE fixture_err)

if(fixture_rv EQUAL 0)
  message(FATAL_ERROR
          "TSan did NOT fire on the deliberately racy fixture.\n"
          "stdout:\n${fixture_out}\nstderr:\n${fixture_err}")
endif()

if(NOT fixture_err MATCHES "ThreadSanitizer: data race")
  message(FATAL_ERROR
          "fixture failed (exit ${fixture_rv}) but not with a TSan data-race "
          "report.\nstdout:\n${fixture_out}\nstderr:\n${fixture_err}")
endif()

message(STATUS "TSan fired through the annotation wrappers as expected "
               "(exit ${fixture_rv})")
