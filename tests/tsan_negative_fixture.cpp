// Deliberately racy fixture for the TSan negative test (built only under
// PHTM_SANITIZE=thread; see tests/CMakeLists.txt).
//
// Two threads increment a plain word with no synchronization while using
// the annotation wrappers *around* the race in ways that must NOT silence
// it:
//   - a happens-before edge is announced on an unrelated key (annotating
//     one location must not order another);
//   - a benign-race annotation covers an unrelated word (the annotation is
//     byte-ranged, not translation-unit-ranged).
//
// Expected behavior: TSan reports the race on g_racy and, with
// TSAN_OPTIONS=halt_on_error=1 exitcode=66, the process exits nonzero.
// tsan_negative_check.cmake inverts that exit code. If this fixture ever
// exits 0, the annotation layer (or the sanitizer wiring) is eating real
// races — exactly the regression this harness exists to catch.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>

#include "util/annotations.hpp"

#if !PHTM_TSAN_ENABLED
#error "tsan_negative_fixture must be compiled with -fsanitize=thread"
#endif

namespace {
std::uint64_t g_racy = 0;          // the intended race
std::uint64_t g_unrelated = 0;     // benign-annotated; never raced upon
std::uint64_t g_edge_key = 0;      // HB edge key, unrelated to g_racy
}  // namespace

int main() {
  PHTM_ANNOTATE_BENIGN_RACE_SIZED(&g_unrelated, sizeof(g_unrelated),
                                  "negative-test: covers g_unrelated only");
  std::atomic<bool> go{false};
  std::thread other([&] {
    while (!go.load(std::memory_order_relaxed)) std::this_thread::yield();
    PHTM_ANNOTATE_HAPPENS_AFTER(&g_edge_key);
    for (int i = 0; i < 1000; ++i) g_racy += 1;  // racy on purpose
  });
  PHTM_ANNOTATE_HAPPENS_BEFORE(&g_edge_key);
  go.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) g_racy += 1;  // racy on purpose
  other.join();
  std::printf("no TSan report; g_racy=%llu\n",
              static_cast<unsigned long long>(g_racy));
  return 0;
}
