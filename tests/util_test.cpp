// Unit tests for the utility layer.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>

#include "util/cacheline.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/threads.hpp"

namespace phtm {
namespace {

TEST(Cacheline, PaddedOwnsWholeLines) {
  EXPECT_EQ(sizeof(Padded<std::uint64_t>), kCacheLineBytes);
  EXPECT_EQ(sizeof(Padded<char>), kCacheLineBytes);
  struct Big {
    char b[70];
  };
  EXPECT_EQ(sizeof(Padded<Big>) % kCacheLineBytes, 0u);
  EXPECT_GE(sizeof(Padded<Big>), 2 * kCacheLineBytes);
}

TEST(Cacheline, LineOfGroupsBy64Bytes) {
  alignas(64) char buf[256];
  EXPECT_EQ(line_of(buf), line_of(buf + 63));
  EXPECT_EQ(line_of(buf) + 1, line_of(buf + 64));
  EXPECT_EQ(lines_spanned(buf, 0), 0u);
  EXPECT_EQ(lines_spanned(buf, 1), 1u);
  EXPECT_EQ(lines_spanned(buf, 64), 1u);
  EXPECT_EQ(lines_spanned(buf, 65), 2u);
  EXPECT_EQ(lines_spanned(buf + 60, 8), 2u);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());  // overwhelmingly likely
  }
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const auto v = r.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, UniformCoversBucketsEvenly) {
  Rng r(1234);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[static_cast<int>(r.uniform() * 10)];
  for (const int b : buckets) {
    EXPECT_GT(b, n / 10 - n / 50);
    EXPECT_LT(b, n / 10 + n / 50);
  }
}

TEST(Spinlock, MutualExclusionUnderContention) {
  Spinlock lock;
  std::uint64_t counter = 0;  // deliberately non-atomic
  run_threads(8, [&](unsigned) {
    for (int i = 0; i < 20000; ++i) {
      LockGuard<Spinlock> g(lock);
      ++counter;
    }
  });
  EXPECT_EQ(counter, 160000u);
}

TEST(Spinlock, TryLockFailsWhenHeld) {
  Spinlock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Barrier, AllThreadsArriveBeforeAnyContinues) {
  constexpr unsigned kThreads = 6;
  Barrier bar(kThreads);
  std::atomic<int> before{0}, after{0};
  std::atomic<bool> violation{false};
  run_threads(kThreads, [&](unsigned) {
    for (int round = 0; round < 50; ++round) {
      before.fetch_add(1);
      bar.arrive_and_wait();
      if (before.load() % kThreads != 0) violation.store(true);
      bar.arrive_and_wait();
      after.fetch_add(1);
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(after.load(), static_cast<int>(kThreads) * 50);
}

TEST(Stats, PercentagesSumAndAggregate) {
  StatSheet a, b;
  a.record_abort(AbortCause::kConflict);
  a.record_abort(AbortCause::kCapacity);
  a.record_commit(CommitPath::kHtm);
  b.record_abort(AbortCause::kCapacity);
  b.record_commit(CommitPath::kGlobalLock);
  b.record_commit(CommitPath::kSoftware);
  const auto s = StatSummary::aggregate({a, b});
  EXPECT_EQ(s.total.total_aborts(), 3u);
  EXPECT_EQ(s.total.total_commits(), 3u);
  EXPECT_DOUBLE_EQ(s.abort_pct(AbortCause::kCapacity), 200.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.commit_pct(CommitPath::kHtm), 100.0 / 3.0);
}

TEST(Stats, EmptySheetsGiveZeroPercentages) {
  const auto s = StatSummary::aggregate({});
  EXPECT_DOUBLE_EQ(s.abort_pct(AbortCause::kConflict), 0.0);
  EXPECT_DOUBLE_EQ(s.commit_pct(CommitPath::kHtm), 0.0);
}

TEST(Cli, ParsesKeyValueFormsAndFlags) {
  // A bare token after an option is greedily taken as its value (documented
  // behavior), so positionals must precede options or follow `--k=v` forms.
  const char* argv[] = {"prog", "pos", "--size", "100", "--name=abc", "--flag"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("size", 0), 100);
  EXPECT_EQ(cli.get("name"), "abc");
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get("flag"), "1");
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos");
}

TEST(Table, AlignsColumnsAndFormatsNumbers) {
  Table t({"name", "value"});
  t.add_row({"x", Table::num(1.23456, 2)});
  t.add_row({"longer-name", "99"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_EQ(Table::num(2.0 / 3.0, 3), "0.667");
}

TEST(Threads, RunTimedStopsWorkers) {
  std::atomic<std::uint64_t> iters{0};
  const double secs = run_timed(4, std::chrono::milliseconds(50),
                                [&](unsigned, std::atomic<bool>& stop) {
                                  while (!stop.load(std::memory_order_relaxed))
                                    iters.fetch_add(1, std::memory_order_relaxed);
                                });
  EXPECT_GE(secs, 0.045);
  EXPECT_GT(iters.load(), 0u);
}

}  // namespace
}  // namespace phtm
