#!/usr/bin/env python3
"""Run the benchmark suite and fold the results into a schema-stable JSON
report (BENCH_<label>.json).

Two result sources are combined:

  * bench_hotpath — a google-benchmark binary; run with --benchmark_out and
    the per-benchmark ns/op numbers are lifted from its JSON report.
  * the per-figure binaries (bench_fig3_nrw, ...) — print paper-shaped
    series tables and, when PHTM_BENCH_JSON is set, append each series as a
    JSON line; this script sets that knob and folds the lines in.

The output schema is intentionally flat and stable so successive reports
diff cleanly::

    {
      "schema": 1,
      "label": "...",            # from --label
      "commit": "...",           # git rev-parse HEAD (or "unknown")
      "config": {"build_type": ..., "quick": ..., "max_threads": ...,
                 "threads": ...},
      "hotpath": {"BM_SigIntersectsMiss/4": {"ns_per_op": 0.52}, ...},
      "figures": [{"figure": ..., "metric": ..., "algo": ...,
                   "series": {"1": ..., "2": ...}}, ...],
      "server": {"schema": 1, "phases": [...], "totals": {...},
                 "conservation_ok": true},           # --server[-only] runs
      "telemetry": {"bench_fig3_nrw": {...}, ...}   # trace builds only
    }

With --server the transaction-server soak (bench_server, EXPERIMENTS.md
"Server soak") also runs: the binary's PHTM_SERVER_JSON block — per-phase
offered/accepted/committed/shed/rejected counts, committed throughput and
the p50/p99/p999 accepted-request latency tail against the SLO — is
schema-checked and folded in under "server". --server-only skips the
hotpath and figure benches (the CI server lane's mode). A soak that
violates request conservation fails the report outright.

When the build directory was configured with -DPHTM_TRACE=ON (detected
from CMakeCache.txt), each bench binary is run with PHTM_TRACE_TELEMETRY
pointing at a scratch file and the tracer's aggregate telemetry block
(src/obs/trace.cpp write_telemetry_json, schema 1: event/drop accounting,
per-cause abort and per-path commit totals, latency histograms) is folded
into the report under "telemetry", keyed by binary. Untraced builds omit
the "telemetry" key entirely and record config.trace = false.

Typical use (see EXPERIMENTS.md):

    tools/bench_report.py --label my-machine --build-dir build --out BENCH_my-machine.json
    tools/bench_report.py --label ci-smoke --quick ...   # fast smoke numbers
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Telemetry-block schema versions this tool understands (stamped by
# src/obs/trace.cpp write_telemetry_json). An unknown version means the
# block's shape changed — refuse rather than fold misread numbers into
# the report.
VALID_TELEMETRY_SCHEMAS = (1,)
# Server-soak block schema versions (stamped by bench/bench_server.cpp
# write_json). Same refuse-on-unknown discipline as telemetry.
VALID_SERVER_SCHEMAS = (1,)

HOTPATH_BIN = "bench_hotpath"
SERVER_BIN = "bench_server"
# Figure binaries folded into the report. Keep in sync with bench/CMakeLists.
FIGURE_BINS = [
    "bench_fig3_nrw",
    "bench_fig4_list",
    "bench_fig5_stamp",
    "bench_fig6_eigen",
]


def run(cmd, env, what):
    print(f"bench_report: running {what}: {' '.join(cmd)}", flush=True)
    proc = subprocess.run(cmd, env=env)
    if proc.returncode != 0:
        sys.exit(f"bench_report: {what} failed with exit code {proc.returncode}")


def run_with_telemetry(cmd, env, what, telemetry):
    """Run `cmd`; when `telemetry` is a dict (trace-enabled build), point
    PHTM_TRACE_TELEMETRY at a scratch file and fold the block the binary
    writes at exit into it under `what`."""
    if telemetry is None:
        run(cmd, env, what)
        return
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tel_path = tmp.name
    try:
        run(cmd, dict(env, PHTM_TRACE_TELEMETRY=tel_path), what)
        with open(tel_path, encoding="utf-8") as f:
            text = f.read().strip()
        if not text:
            # The binary never emitted an event (tracer not touched), so
            # the atexit exporter had nothing to finalize.
            print(f"bench_report: no telemetry from {what}", flush=True)
            return
        try:
            block = json.loads(text)
        except json.JSONDecodeError as e:
            sys.exit(f"bench_report: bad telemetry from {what}: {e}")
        schema = block.get("schema")
        if schema not in VALID_TELEMETRY_SCHEMAS:
            sys.exit(f"bench_report: telemetry from {what} has unknown "
                     f"schema version {schema!r}; this tool understands "
                     f"{list(VALID_TELEMETRY_SCHEMAS)} — update "
                     "tools/bench_report.py for the new block shape")
        telemetry[what] = block
    finally:
        os.unlink(tel_path)


def git_commit(root):
    try:
        out = subprocess.run(
            ["git", "-C", root, "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True)
        head = out.stdout.strip()
        dirty = subprocess.run(
            ["git", "-C", root, "status", "--porcelain"],
            capture_output=True, text=True, check=True)
        return head + "-dirty" if dirty.stdout.strip() else head
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def cache_entry(build_dir, key):
    cache = os.path.join(build_dir, "CMakeCache.txt")
    try:
        with open(cache, encoding="utf-8") as f:
            for line in f:
                if line.startswith(key + ":"):
                    return line.split("=", 1)[1].strip()
    except OSError:
        pass
    return None


def build_type(build_dir):
    val = cache_entry(build_dir, "CMAKE_BUILD_TYPE")
    if val is None:
        return "unknown"
    # Empty cache entry: the top-level CMakeLists defaulted the (non-cache)
    # variable to RelWithDebInfo.
    return val or "RelWithDebInfo"


def trace_enabled(build_dir):
    val = cache_entry(build_dir, "PHTM_TRACE")
    return val is not None and val.upper() in ("ON", "1", "TRUE", "YES")


def collect_hotpath(bench_dir, env, min_time, telemetry):
    binary = os.path.join(bench_dir, HOTPATH_BIN)
    if not os.path.exists(binary):
        sys.exit(f"bench_report: {binary} not found (build the bench targets first)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        run_with_telemetry(
            [binary, f"--benchmark_out={out_path}", "--benchmark_out_format=json",
             f"--benchmark_min_time={min_time}"], env, HOTPATH_BIN, telemetry)
        with open(out_path, encoding="utf-8") as f:
            report = json.load(f)
    finally:
        os.unlink(out_path)
    hotpath = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        ns = b["real_time"] if b.get("time_unit") == "ns" else None
        entry = {"ns_per_op": ns}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        hotpath[b["name"]] = entry
    return hotpath


def collect_figures(bench_dir, env, telemetry):
    figures = []
    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as tmp:
        series_path = tmp.name
    env = dict(env, PHTM_BENCH_JSON=series_path)
    try:
        for name in FIGURE_BINS:
            binary = os.path.join(bench_dir, name)
            if not os.path.exists(binary):
                print(f"bench_report: skipping {name} (not built)", flush=True)
                continue
            run_with_telemetry([binary], env, name, telemetry)
        with open(series_path, encoding="utf-8") as f:
            for ln, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    figures.append(json.loads(line))
                except json.JSONDecodeError as e:
                    sys.exit(f"bench_report: bad series line {ln}: {e}")
    finally:
        os.unlink(series_path)
    return figures


# Per-phase fields the soak block must carry for every phase — the report
# is only useful if successive runs expose the same columns.
SERVER_PHASE_KEYS = ("name", "rate_tps", "duration_s", "offered", "accepted",
                     "committed", "shed", "rejected", "throughput", "p50_us",
                     "p99_us", "p999_us", "slo_ok")


def check_server_block(block):
    schema = block.get("schema")
    if schema not in VALID_SERVER_SCHEMAS:
        sys.exit(f"bench_report: server block has unknown schema version "
                 f"{schema!r}; this tool understands "
                 f"{list(VALID_SERVER_SCHEMAS)} — update tools/bench_report.py "
                 "for the new block shape")
    for key in ("workers", "slo_p99_ms", "phases", "totals",
                "conservation_ok"):
        if key not in block:
            sys.exit(f"bench_report: server block missing {key!r}")
    if not isinstance(block["phases"], list) or not block["phases"]:
        sys.exit("bench_report: server block has no phases")
    for ph in block["phases"]:
        for key in SERVER_PHASE_KEYS:
            if key not in ph:
                sys.exit(f"bench_report: server phase "
                         f"{ph.get('name')!r} missing {key!r}")
    totals = block["totals"]
    for key in ("submitted", "accepted", "rejected", "committed", "shed",
                "degrades"):
        if key not in totals:
            sys.exit(f"bench_report: server totals missing {key!r}")
    if block["conservation_ok"] is not True:
        sys.exit("bench_report: server soak violated request conservation "
                 "(submitted != accepted + rejected or "
                 "accepted != committed + shed) — harness bug")


def collect_server(bench_dir, env, telemetry):
    binary = os.path.join(bench_dir, SERVER_BIN)
    if not os.path.exists(binary):
        sys.exit(f"bench_report: {binary} not found "
                 "(build the bench targets first)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        run_with_telemetry([binary], dict(env, PHTM_SERVER_JSON=out_path),
                           SERVER_BIN, telemetry)
        with open(out_path, encoding="utf-8") as f:
            try:
                block = json.load(f)
            except json.JSONDecodeError as e:
                sys.exit(f"bench_report: bad server block: {e}")
    finally:
        os.unlink(out_path)
    check_server_block(block)
    return block


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--label", required=True,
                    help="report label; output defaults to BENCH_<label>.json")
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory holding bench/ binaries")
    ap.add_argument("--out", default=None, help="output path")
    ap.add_argument("--quick", action="store_true",
                    help="fast smoke numbers (PHTM_QUICK=1, short min_time)")
    ap.add_argument("--max-threads", type=int, default=None,
                    help="cap the figure benches' thread sweep")
    ap.add_argument("--threads", default=None, metavar="LIST",
                    help="explicit thread-sweep axis for the figure benches, "
                         "comma-separated (sets PHTM_BENCH_THREADS, e.g. "
                         "'1,4,16,64'); replaces each figure's default sweep")
    ap.add_argument("--skip-figures", action="store_true",
                    help="hotpath micro-benchmarks only")
    ap.add_argument("--server", action="store_true",
                    help="also run the transaction-server soak "
                         "(bench_server) and fold its block in")
    ap.add_argument("--server-only", action="store_true",
                    help="run only the server soak (implies --server; "
                         "skips hotpath and figures)")
    args = ap.parse_args()
    if args.server_only:
        args.server = True

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    bench_dir = os.path.join(args.build_dir, "bench")
    out_path = args.out or f"BENCH_{args.label}.json"

    env = dict(os.environ)
    if args.quick:
        env["PHTM_QUICK"] = "1"
    if args.max_threads is not None:
        env["PHTM_MAX_THREADS"] = str(args.max_threads)
    if args.threads is not None:
        env["PHTM_BENCH_THREADS"] = args.threads

    trace = trace_enabled(args.build_dir)
    telemetry = {} if trace else None

    report = {
        "schema": 1,
        "label": args.label,
        "commit": git_commit(root),
        "config": {
            "build_type": build_type(args.build_dir),
            "quick": bool(args.quick),
            "max_threads": args.max_threads,
            "threads": args.threads,
            "trace": trace,
        },
        "hotpath": {} if args.server_only
                   else collect_hotpath(bench_dir, env,
                                        "0.02" if args.quick else "0.2",
                                        telemetry),
        "figures": [] if args.skip_figures or args.server_only
                   else collect_figures(bench_dir, env, telemetry),
    }
    if args.server:
        report["server"] = collect_server(bench_dir, env, telemetry)
    if telemetry:
        report["telemetry"] = telemetry
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_report: wrote {out_path}", flush=True)


if __name__ == "__main__":
    main()
