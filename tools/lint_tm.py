#!/usr/bin/env python3
"""TM-protocol lint: static checks of this repository's concurrency discipline.

The PART-HTM protocol keeps its correctness argument in a small number of
mechanical rules (DESIGN.md, "Memory model & analysis tooling").  This
checker enforces them over the source tree so a refactor cannot silently
drop one.  It runs as the `lint_tm` CTest target in every CI lane.

Rules
-----
R1  nontx discipline (src/core, src/stm, src/tm):
    The TM-protocol layer must route shared-word accesses through the
    simulator's strong-atomicity helpers (rt.nontx_*), a hardware
    transaction (ops.read/ops.write/ops.subscribe), or the designated
    signature/ring helpers.  A raw `__atomic_*` builtin is allowed only
    with a `// raw-atomic:` justification comment on the same line or
    within the preceding comment block (<= RULE_WINDOW lines above).

R1b shared-atomic declarations (src/core, src/stm, src/tm):
    Declaring a `std::atomic` member in the protocol layer needs a
    `// shared-atomic:` justification — protocol-shared words are plain
    uint64_t accessed via nontx_*; a std::atomic member is reserved for
    self-contained mechanisms (tuning knobs, software-TM metadata) and the
    justification must say which.

R2  cache-line alignment (src/core, src/stm, src/sim, src/sig, src/util):
    Every struct/class that declares a std::atomic member is shared
    mutable state and must be alignas(kCacheLineBytes), or pad the member
    itself (alignas on the member / Padded<...>), so unrelated shared words
    never share a conflict-granularity line.

R3  relaxed justification (all of src/):
    Every `memory_order_relaxed` needs a `// relaxed:` comment (same line
    or <= RULE_WINDOW lines above) explaining why dropping the ordering is
    sound.  Un-justified relaxed atomics are where fences go missing.

R4  no blocking mutexes in protocol headers (src/core, src/stm, src/sim,
    src/sig): `<mutex>` / `<shared_mutex>` must not be included.  The
    protocol is lock-free except for the simulator-internal spinlocks;
    an OS mutex in a protocol header is a design regression.

R5  suppression hygiene (tsan.supp): no `race:phtm` entries.  Races in our
    own code are fixed or annotated at the site (util/annotations.hpp),
    never suppressed wholesale — a symbol-level suppression would hide
    every future bug on the same code path.

R7  no trace emission inside HTM-simulated critical sections (src/core,
    src/stm, src/sim, src/tm, src/sig):
    A PHTM_TRACE_* emission macro must not appear inside an rt.attempt()
    lambda, an HtmOps:: method body, or a class holding an HtmOps&
    (the transactional execution contexts).  On real hardware the
    tracer's ring store would become transactional state — rolled back
    on abort, inflating the footprint the paper's capacity argument is
    about — so events from speculative regions are buffered pre-commit
    and flushed post-outcome (obs::txn_enter/txn_exit; the runtime's
    pending array).  PHTM_TRACE_TXN_ENTER/EXIT and PHTM_TRACE_META are
    exempt (they are the buffering mechanism / run-level metadata); a
    site that deliberately relies on the runtime's dynamic deferral
    carries a `// trace-deferred:` justification.

R6  annotation/instrumentation discipline (all of src/, excluding the
    macro definition headers and the model checker itself):
    a) Every PHTM_ANNOTATE_HAPPENS_BEFORE must have a matching
       PHTM_ANNOTATE_HAPPENS_AFTER somewhere in the tree, and vice versa.
       Pairing is by the trailing member/identifier of the address
       expression (`&s.doom` pairs with `&slots_[victim].doom`): an
       unpaired annotation either tells TSan about an edge nobody observes
       (silencing real races) or trusts an edge nobody publishes.
    b) Every PHTM_MC_YIELD / PHTM_MC_SPIN marker needs an `mc-yield:`
       justification comment (same line or <= RULE_WINDOW lines above)
       saying why that point is a scheduling decision.  The model checker
       only switches threads at these markers, so an unjustified marker is
       an unreviewed hole (or an unreviewed blind spot) in the explored
       interleaving space.
    c) Happens-before annotations must name an edge from the reviewed
       inventory (KNOWN_HB_EDGE_TAILS).  The annotations tell TSan (and the
       reader) about synchronization the memory model cannot see; each such
       edge is an argued exception documented in DESIGN.md, so a new tail
       is a new correctness argument — add it to the inventory alongside
       that write-up, don't just annotate.
    d) Some fields must never carry HB annotations or MC markers
       (ANNOTATION_FORBIDDEN_TAILS): the monitor table's seqlock-guarded
       entry fields (tag/readers/writer) are natively std::atomic with
       load-bearing orderings — an annotation there would paper over a
       missing ordering instead of surfacing it — and the ring-validation
       watermark (validated_ts) is owner-private, so an annotation would
       invent a cross-thread edge where none exists.

R8  spin discipline (all of src/, except the cpu_relax definition header):
    Every `cpu_relax()` poll site is a wait loop until proven otherwise,
    and an unbounded wait loop is a starvation bug waiting for the right
    convoy.  Each site must carry, within RULE_WINDOW lines, either a
    `spin-escalates:` marker (the loop polls a bounded-wait detector —
    core::BoundedSpin — and escalates to the ticketed slow path when the
    bound is spent) or a `spin-waiver:` comment arguing why the wait is
    finite without one (bounded pause, monotone drain, FIFO hand-off).

Exit status: 0 clean, 1 violations (one line each on stdout), 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# How far above an occurrence a justification comment may sit (a small
# comment block covering a short cluster of related operations).
RULE_WINDOW = 6

PROTOCOL_ACCESS_DIRS = ("src/core", "src/stm", "src/tm")
ALIGNMENT_DIRS = ("src/core", "src/stm", "src/sim", "src/sig", "src/util")
PROTOCOL_HEADER_DIRS = ("src/core", "src/stm", "src/sim", "src/sig")
TRACE_EMISSION_DIRS = ("src/core", "src/stm", "src/sim", "src/tm", "src/sig")

# Macro definition headers: R6 skips them (they define, not use, the markers).
R6_EXEMPT_FILES = ("src/util/annotations.hpp", "src/util/mc_hooks.hpp")
R6_EXEMPT_DIRS = ("src/mc",)

# R8 skips the header that *defines* cpu_relax (a definition is not a spin).
R8_EXEMPT_FILES = ("src/util/cacheline.hpp",)

# R6c: the reviewed happens-before edge inventory. Keys are the pairing
# tails (trailing member of the annotated address); values say which
# DESIGN.md-documented edge the annotation encodes.
KNOWN_HB_EDGE_TAILS = {
    "doom": "doom-latch edge: doomer's store vs. the doomed owner's cleanup",
    "seq": "ring-slot seqlock: publisher's closing seq store vs. a "
           "validator's recheck",
}

# R6d: fields that must never be annotated or marked, with the reason.
ANNOTATION_FORBIDDEN_TAILS = {
    "tag": "monitor-entry identity seqlock word — natively std::atomic; fix "
           "the ordering, don't annotate over it",
    "readers": "monitor-entry reader bitmap — natively std::atomic; fix the "
               "ordering, don't annotate over it",
    "writer": "monitor-entry writer slot — natively std::atomic; fix the "
              "ordering, don't annotate over it",
    "validated_ts": "owner-private ring-validation watermark — no "
                    "cross-thread edge exists to annotate",
}

RAW_ATOMIC_RE = re.compile(r"\b__atomic_\w+")
ATOMIC_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:alignas\([^)]*\)\s+)?(?:Padded<\s*)?std::atomic<")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
MUTEX_INCLUDE_RE = re.compile(r'#\s*include\s*<(mutex|shared_mutex)>')
HB_ANNOT_RE = re.compile(r"\bPHTM_ANNOTATE_HAPPENS_(BEFORE|AFTER)\s*\(([^()]*)\)")
MC_MARKER_RE = re.compile(r"\bPHTM_MC_(?:YIELD|SPIN)\s*\(([^()]*)\)")
# Trailing identifier of an address expression: the pairing key for R6a.
ADDR_TAIL_RE = re.compile(r"(\w+)\W*$")
STRUCT_RE = re.compile(r"^\s*(?:template\s*<[^>]*>\s*)?(struct|class)\s+"
                       r"(?:alignas\([^)]*\)\s+)?(\w+)")
# R7: emission macros (the buffering/metadata macros are exempt).
TRACE_EMIT_RE = re.compile(r"\bPHTM_TRACE_(?!TXN_ENTER\b|TXN_EXIT\b|META\b)\w+\s*\(")
ATTEMPT_CALL_RE = re.compile(r"\.attempt\s*\(")
HTMOPS_METHOD_RE = re.compile(r"\bHtmOps::\w+\s*\(")
HTMOPS_MEMBER_RE = re.compile(r"\bHtmOps&\s+\w+\s*[;=]")
# Function definition taking an HtmOps& parameter (lambdas are already
# covered by the .attempt() span; '[' excludes them here).
HTMOPS_PARAM_RE = re.compile(r"\w+\s*\([^)]*\bHtmOps&\s+\w+\s*[,)]")
# R8: spin-loop poll sites.
CPU_RELAX_RE = re.compile(r"\bcpu_relax\s*\(")


def strip_line_comment(line: str) -> str:
    """Drop a trailing // comment (good enough: no multiline strings here)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def brace_span_end(lines: list[str], start: int) -> int:
    """Last line (0-based, inclusive) of the brace block opening at or after
    lines[start]; the end of the file if the block never closes."""
    depth = 0
    opened = False
    for i in range(start, len(lines)):
        for ch in strip_line_comment(lines[i]):
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
                if opened and depth <= 0:
                    return i
    return len(lines) - 1


def has_marker(lines: list[str], i: int, marker: str) -> bool:
    """Is `marker` present on line i or within RULE_WINDOW lines above it?"""
    lo = max(0, i - RULE_WINDOW)
    return any(marker in lines[j] for j in range(lo, i + 1))


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.errors: list[str] = []
        # R6a: (kind, tail) -> first occurrence, collected across the tree.
        self.hb_annotations: list[tuple[str, str, Path, int]] = []

    def err(self, path: Path, lineno: int, rule: str, msg: str) -> None:
        rel = path.relative_to(self.root)
        self.errors.append(f"{rel}:{lineno}: [{rule}] {msg}")

    # -- R1 / R1b ----------------------------------------------------------
    def check_protocol_access(self, path: Path, lines: list[str]) -> None:
        for i, line in enumerate(lines):
            code = strip_line_comment(line)
            if RAW_ATOMIC_RE.search(code) and not has_marker(lines, i, "raw-atomic:"):
                self.err(path, i + 1, "R1",
                         "raw __atomic_* builtin in the protocol layer; route "
                         "through nontx_*/HtmOps or justify with '// raw-atomic:'")
            if ATOMIC_MEMBER_RE.search(code) and not has_marker(
                    lines, i, "shared-atomic:"):
                self.err(path, i + 1, "R1b",
                         "std::atomic member in the protocol layer; protocol-"
                         "shared words are plain uint64_t behind nontx_* — "
                         "justify with '// shared-atomic:'")

    # -- R2 ----------------------------------------------------------------
    def check_alignment(self, path: Path, lines: list[str]) -> None:
        # Track the innermost struct/class declaration preceding each atomic
        # member; brace counting keeps nesting honest enough for this tree.
        stack: list[tuple[str, bool, int]] = []  # (name, aligned, lineno)
        depth = 0
        pending: tuple[str, bool, int] | None = None
        for i, line in enumerate(lines):
            code = strip_line_comment(line)
            m = STRUCT_RE.match(code)
            if m and not code.rstrip().endswith(";"):
                pending = (m.group(2), "alignas" in code, i + 1)
            for ch in code:
                if ch == "{":
                    if pending is not None:
                        stack.append(pending)
                        pending = None
                    else:
                        stack.append(("", True, i + 1))  # non-type scope
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    if stack:
                        stack.pop()
            if ATOMIC_MEMBER_RE.search(code):
                member_padded = ("alignas" in code or "Padded<" in code)
                owner = next((s for s in reversed(stack) if s[0]), None)
                if owner and not owner[1] and not member_padded:
                    self.err(path, i + 1, "R2",
                             f"std::atomic member of '{owner[0]}' (line "
                             f"{owner[2]}) without alignas(kCacheLineBytes) on "
                             "the type or padding on the member")

    # -- R3 ----------------------------------------------------------------
    def check_relaxed(self, path: Path, lines: list[str]) -> None:
        for i, line in enumerate(lines):
            if RELAXED_RE.search(strip_line_comment(line)) and not has_marker(
                    lines, i, "relaxed:"):
                self.err(path, i + 1, "R3",
                         "memory_order_relaxed without a '// relaxed:' "
                         "justification comment")

    # -- R4 ----------------------------------------------------------------
    def check_mutex_includes(self, path: Path, lines: list[str]) -> None:
        for i, line in enumerate(lines):
            m = MUTEX_INCLUDE_RE.search(line)
            if m:
                self.err(path, i + 1, "R4",
                         f"protocol header includes <{m.group(1)}>; the "
                         "protocol layer is spinlock/atomic only")

    # -- R5 ----------------------------------------------------------------
    def check_suppressions(self) -> None:
        supp = self.root / "tsan.supp"
        if not supp.is_file():
            return
        for i, line in enumerate(supp.read_text().splitlines()):
            body = line.split("#", 1)[0].strip()
            if body.startswith("race:") and "phtm" in body:
                self.err(supp, i + 1, "R5",
                         "tsan.supp suppresses a phtm:: symbol; fix the race "
                         "or annotate the site (util/annotations.hpp) instead")

    # -- R7 ----------------------------------------------------------------
    def check_trace_emission(self, path: Path, lines: list[str]) -> None:
        # Forbidden spans: rt.attempt() lambdas, HtmOps method bodies, and
        # classes holding an HtmOps& — the transactional execution contexts.
        spans: list[tuple[int, int, str]] = []
        for i, line in enumerate(lines):
            code = strip_line_comment(line)
            if ATTEMPT_CALL_RE.search(code):
                spans.append((i, brace_span_end(lines, i),
                              "inside an rt.attempt() critical section"))
            if HTMOPS_METHOD_RE.search(code) and not code.rstrip().endswith(";"):
                spans.append((i, brace_span_end(lines, i),
                              "inside an HtmOps transactional-access method"))
            if (HTMOPS_PARAM_RE.search(code) and "[" not in code
                    and not code.rstrip().endswith(";")):
                spans.append((i, brace_span_end(lines, i),
                              "inside a function taking HtmOps& (runs under "
                              "the hardware transaction)"))
        # Classes holding an HtmOps& member are transactional execution
        # contexts (HtmCtx and friends); attribute the member to the
        # *innermost* enclosing class — a backend merely nesting such a
        # context class is not itself speculative.
        stack: list[list] = []  # [name, start_line, holds_ops]
        pending: tuple[str, int] | None = None
        for i, line in enumerate(lines):
            code = strip_line_comment(line)
            m = STRUCT_RE.match(code)
            if m and not code.rstrip().endswith(";"):
                pending = (m.group(2), i)
            if HTMOPS_MEMBER_RE.search(code):
                for s in reversed(stack):
                    if s[0]:
                        s[2] = True
                        break
            for ch in code:
                if ch == "{":
                    if pending is not None:
                        stack.append([pending[0], pending[1], False])
                        pending = None
                    else:
                        stack.append(["", i, False])
                elif ch == "}" and stack:
                    name, start, holds = stack.pop()
                    if name and holds:
                        spans.append((start, i,
                                      f"inside '{name}', which executes "
                                      "transactionally (holds an HtmOps&)"))
        if not spans:
            return
        for i, line in enumerate(lines):
            if not TRACE_EMIT_RE.search(strip_line_comment(line)):
                continue
            if has_marker(lines, i, "trace-deferred:"):
                continue
            for s, e, why in spans:
                if s <= i <= e:
                    self.err(path, i + 1, "R7",
                             f"PHTM_TRACE_* emission {why}; trace events from "
                             "speculative regions must be buffered pre-commit "
                             "and flushed post-outcome — emit after the "
                             "attempt returns, or justify a deliberate "
                             "deferral with '// trace-deferred:'")
                    break

    # -- R8 ----------------------------------------------------------------
    def check_spin_discipline(self, path: Path, lines: list[str]) -> None:
        for i, line in enumerate(lines):
            if not CPU_RELAX_RE.search(strip_line_comment(line)):
                continue
            if has_marker(lines, i, "spin-escalates:"):
                continue
            if has_marker(lines, i, "spin-waiver:"):
                continue
            self.err(path, i + 1, "R8",
                     "cpu_relax() poll without a starvation story: escalate "
                     "through a bounded-wait detector ('// spin-escalates:') "
                     "or argue the wait is finite ('// spin-waiver:')")

    # -- R6 ----------------------------------------------------------------
    def check_annotation_discipline(self, path: Path, lines: list[str]) -> None:
        for i, line in enumerate(lines):
            code = strip_line_comment(line)
            for m in HB_ANNOT_RE.finditer(code):
                tail = ADDR_TAIL_RE.search(m.group(2))
                if tail is None:
                    self.err(path, i + 1, "R6",
                             f"HAPPENS_{m.group(1)} with no identifiable "
                             "address expression")
                elif tail.group(1) in ANNOTATION_FORBIDDEN_TAILS:
                    self.err(path, i + 1, "R6",
                             f"HAPPENS_{m.group(1)} on '...{tail.group(1)}': "
                             f"{ANNOTATION_FORBIDDEN_TAILS[tail.group(1)]}")
                elif tail.group(1) not in KNOWN_HB_EDGE_TAILS:
                    self.err(path, i + 1, "R6",
                             f"HAPPENS_{m.group(1)} on '...{tail.group(1)}' is "
                             "not in the reviewed edge inventory "
                             "(KNOWN_HB_EDGE_TAILS); document the new edge in "
                             "DESIGN.md and add it there")
                else:
                    self.hb_annotations.append(
                        (m.group(1), tail.group(1), path, i + 1))
            mc = MC_MARKER_RE.search(code)
            if mc:
                if not has_marker(lines, i, "mc-yield:"):
                    self.err(path, i + 1, "R6",
                             "PHTM_MC yield/spin marker without an "
                             "'// mc-yield:' justification — every scheduling "
                             "decision point must say why it is one")
                mc_tail = ADDR_TAIL_RE.search(mc.group(1))
                if mc_tail and mc_tail.group(1) in ANNOTATION_FORBIDDEN_TAILS:
                    self.err(path, i + 1, "R6",
                             f"MC marker on '...{mc_tail.group(1)}': "
                             f"{ANNOTATION_FORBIDDEN_TAILS[mc_tail.group(1)]}")

    def check_annotation_pairing(self) -> None:
        tails = {"BEFORE": {}, "AFTER": {}}
        for kind, tail, path, lineno in self.hb_annotations:
            tails[kind].setdefault(tail, (path, lineno))
        for kind, other in (("BEFORE", "AFTER"), ("AFTER", "BEFORE")):
            for tail, (path, lineno) in tails[kind].items():
                if tail not in tails[other]:
                    self.err(path, lineno, "R6",
                             f"HAPPENS_{kind} on '...{tail}' has no matching "
                             f"HAPPENS_{other} anywhere in src/ — an unpaired "
                             "annotation edge hides or invents a "
                             "synchronization order")

    # ----------------------------------------------------------------------
    def run(self) -> int:
        src = self.root / "src"
        if not src.is_dir():
            print(f"lint_tm: no src/ under {self.root}", file=sys.stderr)
            return 2
        for path in sorted(src.rglob("*")):
            if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
                continue
            rel = path.relative_to(self.root).as_posix()
            lines = path.read_text().splitlines()
            if rel.startswith(PROTOCOL_ACCESS_DIRS):
                self.check_protocol_access(path, lines)
            if rel.startswith(ALIGNMENT_DIRS):
                self.check_alignment(path, lines)
            self.check_relaxed(path, lines)
            if rel.startswith(PROTOCOL_HEADER_DIRS) and path.suffix == ".hpp":
                self.check_mutex_includes(path, lines)
            if rel.startswith(TRACE_EMISSION_DIRS):
                self.check_trace_emission(path, lines)
            if rel not in R6_EXEMPT_FILES and not rel.startswith(R6_EXEMPT_DIRS):
                self.check_annotation_discipline(path, lines)
            if rel not in R8_EXEMPT_FILES:
                self.check_spin_discipline(path, lines)
        self.check_annotation_pairing()
        self.check_suppressions()

        if self.errors:
            for e in self.errors:
                print(e)
            print(f"lint_tm: {len(self.errors)} violation(s)", file=sys.stderr)
            return 1
        print("lint_tm: clean")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: the checkout containing this script)")
    args = ap.parse_args()
    return Linter(args.root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
